package ballsintoleaves

import (
	"testing"
)

// checkTight validates tight renaming on a public Result.
func checkTight(t *testing.T, res *Result, wantDecided int) {
	t.Helper()
	if len(res.Names) != wantDecided {
		t.Fatalf("%d names, want %d", len(res.Names), wantDecided)
	}
	seen := make(map[int]bool, len(res.Names))
	for id, name := range res.Names {
		if name < 1 || name > res.N {
			t.Fatalf("id %x decided %d outside 1..%d", id, name, res.N)
		}
		if seen[name] {
			t.Fatalf("duplicate name %d", name)
		}
		seen[name] = true
	}
}

func TestRenameDefaults(t *testing.T) {
	t.Parallel()
	res, err := Rename(64)
	if err != nil {
		t.Fatal(err)
	}
	checkTight(t, res, 64)
	if res.Rounds < 3 || res.Rounds > 15 {
		t.Fatalf("rounds = %d", res.Rounds)
	}
	if res.Algorithm != BallsIntoLeaves {
		t.Fatalf("algorithm = %v", res.Algorithm)
	}
}

func TestRenameAllAlgorithms(t *testing.T) {
	t.Parallel()
	for _, algo := range []Algorithm{BallsIntoLeaves, EarlyTerminating, RankDescent, DeterministicLevelDescent, NaiveRandom} {
		res, err := Rename(32, WithAlgorithm(algo), WithSeed(5))
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		checkTight(t, res, 32)
	}
}

func TestRenameAllEngines(t *testing.T) {
	t.Parallel()
	var rounds []int
	for _, eng := range []Engine{FastEngine, ReferenceEngine, ConcurrentEngine} {
		res, err := Rename(24, WithEngine(eng), WithSeed(9))
		if err != nil {
			t.Fatalf("%v: %v", eng, err)
		}
		checkTight(t, res, 24)
		rounds = append(rounds, res.Rounds)
	}
	if rounds[0] != rounds[1] || rounds[1] != rounds[2] {
		t.Fatalf("engines disagree on rounds: %v", rounds)
	}
}

func TestRenameEnginesProduceSameNames(t *testing.T) {
	t.Parallel()
	idsIn := []uint64{90, 10, 50, 30, 70, 20, 40, 60}
	fast, err := Rename(8, WithIDs(idsIn), WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Rename(8, WithIDs(idsIn), WithSeed(2), WithEngine(ReferenceEngine))
	if err != nil {
		t.Fatal(err)
	}
	for id, name := range fast.Names {
		if ref.Names[id] != name {
			t.Fatalf("id %d: fast %d, reference %d", id, name, ref.Names[id])
		}
	}
}

func TestRenameWithCrashes(t *testing.T) {
	t.Parallel()
	plans := []CrashPlan{
		RandomCrashes(10, 9, 3),
		SplitterCrash(1),
		RankShifterCrashes(),
		DeepTargetCrashes(2, 7),
		OnePerPhaseCrashes(),
	}
	for _, plan := range plans {
		res, err := Rename(32, WithCrashes(plan), WithSeed(4), WithInvariantChecks())
		if err != nil {
			t.Fatalf("%v: %v", plan, err)
		}
		checkTight(t, res, 32-len(res.Crashed))
		if plan.String() == "none" {
			t.Fatalf("plan %v stringifies as none", plan)
		}
	}
}

func TestRenameNaiveWithCrashesFallsBackToEngine(t *testing.T) {
	t.Parallel()
	res, err := Rename(24, WithAlgorithm(NaiveRandom), WithCrashes(RandomCrashes(6, 5, 1)))
	if err != nil {
		t.Fatal(err)
	}
	checkTight(t, res, 24-len(res.Crashed))
}

func TestRenameDeterministicReplay(t *testing.T) {
	t.Parallel()
	a, err := Rename(128, WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Rename(128, WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	if a.Rounds != b.Rounds || len(a.Names) != len(b.Names) {
		t.Fatal("replay diverged")
	}
	for id, name := range a.Names {
		if b.Names[id] != name {
			t.Fatalf("id %x: %d vs %d", id, name, b.Names[id])
		}
	}
}

func TestRenamePhaseMetrics(t *testing.T) {
	t.Parallel()
	res, err := Rename(256, WithPhaseMetrics())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PhaseStats) != res.Phases {
		t.Fatalf("%d phase stats for %d phases", len(res.PhaseStats), res.Phases)
	}
	last := res.PhaseStats[len(res.PhaseStats)-1]
	if last.AtLeaves != 256 {
		t.Fatalf("final at-leaves = %d", last.AtLeaves)
	}
}

func TestRenameOptionValidation(t *testing.T) {
	t.Parallel()
	if _, err := Rename(0); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := Rename(4, WithIDs([]uint64{1, 2, 3})); err == nil {
		t.Fatal("short id list accepted")
	}
	if _, err := Rename(2, WithIDs([]uint64{5, 5})); err == nil {
		t.Fatal("duplicate ids accepted")
	}
	if _, err := Rename(2, WithIDs([]uint64{0, 1})); err == nil {
		t.Fatal("zero id accepted")
	}
	if _, err := Rename(4, WithAlgorithm(Algorithm(99))); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if _, err := Rename(4, WithAlgorithm(NaiveRandom), WithEngine(ConcurrentEngine)); err == nil {
		t.Fatal("naive on concurrent engine accepted")
	}
	if _, err := Rename(4, WithPhaseMetrics(), WithEngine(ReferenceEngine)); err == nil {
		t.Fatal("metrics on reference engine accepted")
	}
}

func TestRenameWithTreeArity(t *testing.T) {
	t.Parallel()
	for _, k := range []int{2, 4, 16} {
		res, err := Rename(128, WithTreeArity(k), WithSeed(3), WithInvariantChecks())
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		checkTight(t, res, 128)
	}
	if _, err := Rename(4, WithTreeArity(1)); err == nil {
		t.Fatal("arity 1 accepted")
	}
	if _, err := Rename(4, WithTreeArity(4), WithAlgorithm(NaiveRandom)); err == nil {
		t.Fatal("arity with naive accepted")
	}
}

func TestRenameEarlyTerminatingConstantRounds(t *testing.T) {
	t.Parallel()
	res, err := Rename(512, WithAlgorithm(EarlyTerminating))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 3 {
		t.Fatalf("failure-free early-terminating rounds = %d, want 3", res.Rounds)
	}
}

func TestRenameLevelDescentLogRounds(t *testing.T) {
	t.Parallel()
	res, err := Rename(256, WithAlgorithm(DeterministicLevelDescent))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 17 { // 1 + 2*log2(256)
		t.Fatalf("level-descent rounds = %d, want 17", res.Rounds)
	}
}

func TestProtocolManualDrive(t *testing.T) {
	t.Parallel()
	// Drive three Protocol instances by hand, acting as the transport.
	const n = 3
	peerIDs := []uint64{100, 200, 300}
	procs := make([]*Protocol, n)
	for i, id := range peerIDs {
		p, err := NewProtocol(n, 42, id, BallsIntoLeaves)
		if err != nil {
			t.Fatal(err)
		}
		procs[i] = p
	}
	for round := 1; ; round++ {
		if round > 100 {
			t.Fatal("protocol did not terminate")
		}
		var msgs []Message
		for _, p := range procs {
			payload := p.Send(round)
			cp := make([]byte, len(payload))
			copy(cp, payload)
			msgs = append(msgs, Message{From: p.ID(), Payload: cp})
		}
		done := true
		for _, p := range procs {
			p.Deliver(round, msgs)
			if !p.Done() {
				done = false
			}
		}
		if done {
			break
		}
	}
	seen := make(map[int]bool)
	for _, p := range procs {
		name, ok := p.Decided()
		if !ok {
			t.Fatalf("process %d undecided", p.ID())
		}
		if name < 1 || name > n || seen[name] {
			t.Fatalf("bad name %d", name)
		}
		seen[name] = true
	}
}

func TestProtocolValidation(t *testing.T) {
	t.Parallel()
	if _, err := NewProtocol(4, 1, 0, BallsIntoLeaves); err == nil {
		t.Fatal("zero id accepted")
	}
	if _, err := NewProtocol(4, 1, 7, NaiveRandom); err == nil {
		t.Fatal("naive accepted by NewProtocol")
	}
	if _, err := NewProtocol(0, 1, 7, BallsIntoLeaves); err == nil {
		t.Fatal("n=0 accepted")
	}
	p, err := NewProtocol(4, 1, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.ID() != 7 {
		t.Fatalf("id = %d", p.ID())
	}
}

func TestAlgorithmAndEngineStrings(t *testing.T) {
	t.Parallel()
	if BallsIntoLeaves.String() != "balls-into-leaves" || NaiveRandom.String() != "naive-random" {
		t.Fatal("algorithm strings")
	}
	if FastEngine.String() != "fast" || ConcurrentEngine.String() != "concurrent" {
		t.Fatal("engine strings")
	}
	if Algorithm(99).String() == "" || Engine(99).String() == "" {
		t.Fatal("unknown strings empty")
	}
}
