package ballsintoleaves

import (
	"fmt"

	"ballsintoleaves/internal/adversary"
	"ballsintoleaves/internal/core"
	"ballsintoleaves/internal/ids"
	"ballsintoleaves/internal/proto"
)

// Algorithm selects which renaming algorithm Rename executes.
type Algorithm int

const (
	// BallsIntoLeaves is the paper's Algorithm 1: randomized
	// capacity-weighted descent, O(log log n) rounds w.h.p.
	BallsIntoLeaves Algorithm = iota + 1
	// EarlyTerminating is the §6 extension: a deterministic rank-indexed
	// first phase followed by randomized phases — O(1) rounds failure-free
	// and O(log log f) rounds w.h.p. with f crashes.
	EarlyTerminating
	// RankDescent applies the deterministic rank rule in every phase:
	// comparison-based and deterministic, O(1) rounds failure-free, with
	// round complexity degrading as crashes accumulate.
	RankDescent
	// DeterministicLevelDescent is the Θ(log n) deterministic comparator:
	// rank splitting with one level of descent per phase, the classical
	// structure of deterministic synchronous renaming.
	DeterministicLevelDescent
	// NaiveRandom is the flat baseline: propose uniformly random free
	// names until winning one; Θ(log n) rounds w.h.p.
	NaiveRandom
)

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case BallsIntoLeaves:
		return "balls-into-leaves"
	case EarlyTerminating:
		return "early-terminating"
	case RankDescent:
		return "rank-descent"
	case DeterministicLevelDescent:
		return "level-descent"
	case NaiveRandom:
		return "naive-random"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// strategy maps the public algorithm to the core path strategy.
func (a Algorithm) strategy() core.PathStrategy {
	switch a {
	case EarlyTerminating:
		return core.HybridPaths
	case RankDescent:
		return core.DeterministicPaths
	case DeterministicLevelDescent:
		return core.LevelDescent
	default:
		return core.RandomPaths
	}
}

// Engine selects the execution substrate.
type Engine int

const (
	// FastEngine is the cohort simulator: exact protocol semantics,
	// whole-system simulation, practical up to millions of processes.
	FastEngine Engine = iota + 1
	// ReferenceEngine drives one faithful state machine per process on the
	// single-threaded lock-step engine.
	ReferenceEngine
	// ConcurrentEngine runs one goroutine per process with channel links —
	// the paper's model rendered in Go concurrency.
	ConcurrentEngine
)

// String implements fmt.Stringer.
func (e Engine) String() string {
	switch e {
	case FastEngine:
		return "fast"
	case ReferenceEngine:
		return "reference"
	case ConcurrentEngine:
		return "concurrent"
	default:
		return fmt.Sprintf("Engine(%d)", int(e))
	}
}

// CrashPlan describes the failure environment of a run. Obtain one from
// NoCrashes, RandomCrashes, SplitterCrash, RankShifterCrashes,
// DeepTargetCrashes or OnePerPhaseCrashes.
type CrashPlan struct {
	name string
	mk   func() adversary.Strategy
}

func (p CrashPlan) isNone() bool { return p.mk == nil }

// build instantiates a fresh adversary (strategies are stateful).
func (p CrashPlan) build() adversary.Strategy {
	if p.mk == nil {
		return adversary.None{}
	}
	return p.mk()
}

// String names the plan.
func (p CrashPlan) String() string {
	if p.name == "" {
		return "none"
	}
	return p.name
}

// NoCrashes is the failure-free environment (the default).
func NoCrashes() CrashPlan { return CrashPlan{} }

// RandomCrashes crashes up to f processes spread over rounds 1..lastRound,
// with random victims and random partial delivery of their final
// broadcasts.
func RandomCrashes(f, lastRound int, seed uint64) CrashPlan {
	return CrashPlan{
		name: fmt.Sprintf("random(f=%d)", f),
		mk:   func() adversary.Strategy { return adversary.NewRandom(f, lastRound, seed) },
	}
}

// SplitterCrash is the paper's §6 pattern: in the given round (1 = the
// membership round), the lowest-labelled process crashes while delivering
// its broadcast to every second process by rank, forcing maximal rank
// disagreement from a single failure.
func SplitterCrash(round int) CrashPlan {
	return CrashPlan{
		name: fmt.Sprintf("splitter(round=%d)", round),
		mk:   func() adversary.Strategy { return &adversary.Splitter{Round: round} },
	}
}

// RankShifterCrashes crashes the lowest-labelled process every phase with
// alternating delivery, sustaining rank disagreement.
func RankShifterCrashes() CrashPlan {
	return CrashPlan{
		name: "rank-shifter",
		mk:   func() adversary.Strategy { return &adversary.RankShifter{} },
	}
}

// DeepTargetCrashes crashes up to perRound processes per round among those
// that already hold names, freeing leaves inconsistently across views.
func DeepTargetCrashes(perRound int, seed uint64) CrashPlan {
	return CrashPlan{
		name: fmt.Sprintf("deep-target(%d/round)", perRound),
		mk:   func() adversary.Strategy { return &adversary.DeepTarget{PerRound: perRound, Seed: seed} },
	}
}

// OnePerPhaseCrashes crashes the median-ranked process once per phase with
// half delivery — a slow-burn adversary.
func OnePerPhaseCrashes() CrashPlan {
	return CrashPlan{
		name: "one-per-phase",
		mk:   func() adversary.Strategy { return &adversary.OnePerPhase{} },
	}
}

// Option configures Rename.
type Option func(*options)

type options struct {
	n               int
	seed            uint64
	algorithm       Algorithm
	engine          Engine
	crashes         CrashPlan
	ids             []proto.ID
	budget          int
	maxRounds       int
	arity           int
	metrics         bool
	checkInvariants bool
}

// WithSeed sets the seed driving all randomness (default 0).
func WithSeed(seed uint64) Option { return func(o *options) { o.seed = seed } }

// WithAlgorithm selects the algorithm (default BallsIntoLeaves).
func WithAlgorithm(a Algorithm) Option { return func(o *options) { o.algorithm = a } }

// WithEngine selects the execution substrate (default FastEngine).
func WithEngine(e Engine) Option { return func(o *options) { o.engine = e } }

// WithCrashes installs a failure environment (default NoCrashes).
func WithCrashes(p CrashPlan) Option { return func(o *options) { o.crashes = p } }

// WithIDs supplies the processes' original identifiers (default: n distinct
// pseudo-random 64-bit ids derived from the seed). Must be distinct and
// non-zero, one per process.
func WithIDs(identifiers []uint64) Option {
	return func(o *options) {
		o.ids = make([]proto.ID, len(identifiers))
		for i, id := range identifiers {
			o.ids[i] = proto.ID(id)
		}
	}
}

// WithCrashBudget caps total crashes (default n-1, the model's maximum).
func WithCrashBudget(t int) Option { return func(o *options) { o.budget = t } }

// WithMaxRounds overrides the safety cap on rounds (default 10n+64).
func WithMaxRounds(r int) Option { return func(o *options) { o.maxRounds = r } }

// WithTreeArity sets the virtual tree's fan-out (default 2, the paper's
// binary tree; tree algorithms only). Higher arities shorten the tree but
// raise per-node contention — see experiment E13.
func WithTreeArity(k int) Option { return func(o *options) { o.arity = k } }

// WithPhaseMetrics enables per-phase tree statistics in the Result
// (FastEngine only).
func WithPhaseMetrics() Option { return func(o *options) { o.metrics = true } }

// WithInvariantChecks verifies the paper's Lemma 1 / Lemma 2 / view
// bookkeeping invariants at runtime (slower; for tests and debugging).
func WithInvariantChecks() Option { return func(o *options) { o.checkInvariants = true } }

// buildOptions applies defaults and validates.
func buildOptions(n int, opts []Option) (*options, error) {
	if n < 1 {
		return nil, fmt.Errorf("ballsintoleaves: n must be >= 1, got %d", n)
	}
	o := &options{
		n:         n,
		algorithm: BallsIntoLeaves,
		engine:    FastEngine,
	}
	for _, opt := range opts {
		opt(o)
	}
	if o.ids == nil {
		// Generated ids are distinct and non-zero by construction; only
		// user-supplied ids need validating.
		o.ids = ids.Random(n, o.seed^0x1dbadc0de)
	} else {
		if len(o.ids) != n {
			return nil, fmt.Errorf("ballsintoleaves: %d ids for n=%d", len(o.ids), n)
		}
		seen := make(map[proto.ID]bool, n)
		for _, id := range o.ids {
			if id == 0 {
				return nil, fmt.Errorf("ballsintoleaves: ids must be non-zero")
			}
			if seen[id] {
				return nil, fmt.Errorf("ballsintoleaves: duplicate id %v", id)
			}
			seen[id] = true
		}
	}
	switch o.algorithm {
	case BallsIntoLeaves, EarlyTerminating, RankDescent, DeterministicLevelDescent, NaiveRandom:
	default:
		return nil, fmt.Errorf("ballsintoleaves: unknown algorithm %v", o.algorithm)
	}
	if o.algorithm == NaiveRandom && o.engine == ConcurrentEngine {
		return nil, fmt.Errorf("ballsintoleaves: NaiveRandom supports FastEngine and ReferenceEngine only")
	}
	if o.arity != 0 && o.algorithm == NaiveRandom {
		return nil, fmt.Errorf("ballsintoleaves: tree arity does not apply to NaiveRandom")
	}
	if o.metrics && o.engine != FastEngine {
		return nil, fmt.Errorf("ballsintoleaves: phase metrics require FastEngine")
	}
	return o, nil
}
