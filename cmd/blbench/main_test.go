package main

import (
	"errors"
	"flag"
	"runtime"
	"strings"
	"testing"
)

func TestParseArgsDefaults(t *testing.T) {
	t.Parallel()
	cfg, err := parseArgs(nil)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.opt.Parallel != 1 {
		t.Fatalf("default parallel = %d, want 1 (sequential)", cfg.opt.Parallel)
	}
	if cfg.opt.Quick || cfg.opt.Seeds != 0 || cfg.opt.BaseSeed != 0 {
		t.Fatalf("opt = %+v", cfg.opt)
	}
	if len(cfg.selected) == 0 || cfg.selected[0].ID != "E1" {
		t.Fatalf("default selection = %+v", cfg.selected)
	}
	if cfg.list || cfg.csvDir != "" {
		t.Fatalf("cfg = %+v", cfg)
	}
}

// TestParseArgsParallel covers the -parallel flag added with the parallel
// experiment engine: 0 resolves to all CPUs, anything else is taken
// literally.
func TestParseArgsParallel(t *testing.T) {
	t.Parallel()
	cfg, err := parseArgs([]string{"-parallel", "0"})
	if err != nil {
		t.Fatal(err)
	}
	if want := runtime.GOMAXPROCS(0); cfg.opt.Parallel != want {
		t.Fatalf("-parallel 0 resolved to %d, want %d", cfg.opt.Parallel, want)
	}
	cfg, err = parseArgs([]string{"-parallel", "3", "-quick", "-seeds", "5", "-seed", "9"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.opt.Parallel != 3 || !cfg.opt.Quick || cfg.opt.Seeds != 5 || cfg.opt.BaseSeed != 9 {
		t.Fatalf("opt = %+v", cfg.opt)
	}
}

func TestParseArgsSelection(t *testing.T) {
	t.Parallel()
	cfg, err := parseArgs([]string{"-run", "E3, E1"})
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.selected) != 2 || cfg.selected[0].ID != "E3" || cfg.selected[1].ID != "E1" {
		t.Fatalf("selection = %+v", cfg.selected)
	}
	if _, err := parseArgs([]string{"-run", "E99"}); err == nil || !strings.Contains(err.Error(), "E99") {
		t.Fatalf("unknown experiment: err = %v", err)
	}
	if _, err := parseArgs([]string{"-bogus"}); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

func TestParseArgsListAndCSV(t *testing.T) {
	t.Parallel()
	cfg, err := parseArgs([]string{"-list", "-csv", "out"})
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.list || cfg.csvDir != "out" {
		t.Fatalf("cfg = %+v", cfg)
	}
}

func TestParseArgsHelpIsErrHelp(t *testing.T) {
	t.Parallel()
	if _, err := parseArgs([]string{"-h"}); !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("-h err = %v, want flag.ErrHelp", err)
	}
}
