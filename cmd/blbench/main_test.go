package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"runtime"
	"strings"
	"testing"
	"time"

	"ballsintoleaves/internal/stats"
	"ballsintoleaves/internal/workload"
)

func TestParseArgsDefaults(t *testing.T) {
	t.Parallel()
	cfg, err := parseArgs(nil)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.opt.Parallel != 1 {
		t.Fatalf("default parallel = %d, want 1 (sequential)", cfg.opt.Parallel)
	}
	if cfg.opt.Quick || cfg.opt.Seeds != 0 || cfg.opt.BaseSeed != 0 {
		t.Fatalf("opt = %+v", cfg.opt)
	}
	if len(cfg.selected) == 0 || cfg.selected[0].ID != "E1" {
		t.Fatalf("default selection = %+v", cfg.selected)
	}
	if cfg.list || cfg.csvDir != "" {
		t.Fatalf("cfg = %+v", cfg)
	}
}

// TestParseArgsParallel covers the -parallel flag added with the parallel
// experiment engine: 0 resolves to all CPUs, anything else is taken
// literally.
func TestParseArgsParallel(t *testing.T) {
	t.Parallel()
	cfg, err := parseArgs([]string{"-parallel", "0"})
	if err != nil {
		t.Fatal(err)
	}
	if want := runtime.GOMAXPROCS(0); cfg.opt.Parallel != want {
		t.Fatalf("-parallel 0 resolved to %d, want %d", cfg.opt.Parallel, want)
	}
	cfg, err = parseArgs([]string{"-parallel", "3", "-quick", "-seeds", "5", "-seed", "9"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.opt.Parallel != 3 || !cfg.opt.Quick || cfg.opt.Seeds != 5 || cfg.opt.BaseSeed != 9 {
		t.Fatalf("opt = %+v", cfg.opt)
	}
}

func TestParseArgsSelection(t *testing.T) {
	t.Parallel()
	cfg, err := parseArgs([]string{"-run", "E3, E1"})
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.selected) != 2 || cfg.selected[0].ID != "E3" || cfg.selected[1].ID != "E1" {
		t.Fatalf("selection = %+v", cfg.selected)
	}
	if _, err := parseArgs([]string{"-run", "E99"}); err == nil || !strings.Contains(err.Error(), "E99") {
		t.Fatalf("unknown experiment: err = %v", err)
	}
	if _, err := parseArgs([]string{"-bogus"}); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

func TestParseArgsListAndCSV(t *testing.T) {
	t.Parallel()
	cfg, err := parseArgs([]string{"-list", "-csv", "out"})
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.list || cfg.csvDir != "out" {
		t.Fatalf("cfg = %+v", cfg)
	}
}

// TestParseArgsJSON covers the -json flag: machine-readable output for
// tracking the perf trajectory as BENCH_*.json artifacts.
func TestParseArgsJSON(t *testing.T) {
	t.Parallel()
	cfg, err := parseArgs(nil)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.json {
		t.Fatal("json defaults to true")
	}
	cfg, err = parseArgs([]string{"-json", "-run", "E1"})
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.json || len(cfg.selected) != 1 {
		t.Fatalf("cfg = %+v", cfg)
	}
}

// TestWriteJSONShape pins the artifact schema: one object per experiment,
// with tables carried verbatim.
func TestWriteJSONShape(t *testing.T) {
	t.Parallel()
	tb := stats.NewTable("demo", "n", "rounds")
	tb.AddRow("8", "3.00")
	tb.AddNote("a note")
	e := workload.Experiment{ID: "EX", Title: "demo experiment"}
	var buf bytes.Buffer
	if err := writeJSON(&buf, e, []*stats.Table{tb}, 1500*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	var got jsonExperiment
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if got.Experiment != "EX" || got.Title != "demo experiment" || got.ElapsedMS != 1500 {
		t.Fatalf("got = %+v", got)
	}
	if len(got.Tables) != 1 || got.Tables[0].Title != "demo" ||
		len(got.Tables[0].Rows) != 1 || got.Tables[0].Rows[0][0] != "8" ||
		len(got.Tables[0].Notes) != 1 {
		t.Fatalf("tables = %+v", got.Tables)
	}
	if !strings.HasSuffix(buf.String(), "\n") || strings.Count(buf.String(), "\n") != 1 {
		t.Fatal("each experiment must be exactly one line")
	}
}

func TestParseArgsHelpIsErrHelp(t *testing.T) {
	t.Parallel()
	if _, err := parseArgs([]string{"-h"}); !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("-h err = %v, want flag.ErrHelp", err)
	}
}
