// Command blbench regenerates the paper-reproduction experiment tables
// (E1–E13, see DESIGN.md §5 and EXPERIMENTS.md).
//
// Usage:
//
//	blbench                  # run the full suite
//	blbench -run E1,E3       # selected experiments
//	blbench -quick           # smaller sweeps (CI scale)
//	blbench -seeds 10        # replicates per configuration
//	blbench -parallel 0      # fan replicates across all CPUs
//	blbench -csv out/        # also write one CSV per table
//	blbench -json            # one JSON object per experiment (for BENCH_*.json artifacts)
//	blbench -list            # list experiments
//
// Replicates of each configuration are independent simulations, so
// -parallel fans them across a worker pool; aggregation is seed-indexed,
// and the emitted tables are byte-identical at every parallelism level.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"ballsintoleaves/internal/stats"
	"ballsintoleaves/internal/workload"
)

// errFlagsReported marks parse failures the FlagSet already printed.
var errFlagsReported = errors.New("flag parsing failed")

// runConfig is the parsed and validated command line.
type runConfig struct {
	opt      workload.Options
	selected []workload.Experiment
	csvDir   string
	list     bool
	json     bool
}

// parseArgs parses args into a runConfig, resolving -parallel 0 to the CPU
// count and -run IDs against the experiment registry.
func parseArgs(args []string) (*runConfig, error) {
	fs := flag.NewFlagSet("blbench", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	var (
		run      = fs.String("run", "", "comma-separated experiment IDs (default: all)")
		quick    = fs.Bool("quick", false, "shrink sweeps and replicates")
		seeds    = fs.Int("seeds", 0, "replicates per configuration (0 = default)")
		seed     = fs.Uint64("seed", 0, "base seed offset")
		parallel = fs.Int("parallel", 1, "max concurrent replicate simulations (0 = all CPUs)")
		csv      = fs.String("csv", "", "directory to write per-table CSV files")
		list     = fs.Bool("list", false, "list experiments and exit")
		jsonOut  = fs.Bool("json", false, "emit one JSON object per experiment on stdout instead of text tables")
	)
	if err := fs.Parse(args); err != nil {
		// The FlagSet has already reported the problem (or printed the
		// -h usage) to stderr; mark it so main does not repeat it.
		return nil, errors.Join(errFlagsReported, err)
	}
	workers := *parallel
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	cfg := &runConfig{
		opt:      workload.Options{Quick: *quick, Seeds: *seeds, BaseSeed: *seed, Parallel: workers},
		selected: workload.All(),
		csvDir:   *csv,
		list:     *list,
		json:     *jsonOut,
	}
	if *run != "" {
		cfg.selected = cfg.selected[:0]
		for _, id := range strings.Split(*run, ",") {
			e, ok := workload.ByID(strings.TrimSpace(id))
			if !ok {
				return nil, fmt.Errorf("blbench: unknown experiment %q (try -list)", id)
			}
			cfg.selected = append(cfg.selected, e)
		}
	}
	return cfg, nil
}

func main() {
	cfg, err := parseArgs(os.Args[1:])
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(0)
		}
		if !errors.Is(err, errFlagsReported) {
			fmt.Fprintln(os.Stderr, err)
		}
		os.Exit(2)
	}

	if cfg.list {
		for _, e := range workload.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	if cfg.csvDir != "" {
		if err := os.MkdirAll(cfg.csvDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "blbench: %v\n", err)
			os.Exit(1)
		}
	}

	for _, e := range cfg.selected {
		start := time.Now()
		if !cfg.json {
			fmt.Printf("=== %s: %s\n", e.ID, e.Title)
		}
		tables, err := e.Run(cfg.opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "blbench: %s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		if cfg.json {
			if err := writeJSON(os.Stdout, e, tables, time.Since(start)); err != nil {
				fmt.Fprintf(os.Stderr, "blbench: %v\n", err)
				os.Exit(1)
			}
		}
		for i, tb := range tables {
			if !cfg.json {
				tb.Render(os.Stdout)
				fmt.Println()
			}
			if cfg.csvDir != "" {
				name := fmt.Sprintf("%s_%d.csv", e.ID, i+1)
				f, err := os.Create(filepath.Join(cfg.csvDir, name))
				if err != nil {
					fmt.Fprintf(os.Stderr, "blbench: %v\n", err)
					os.Exit(1)
				}
				tb.RenderCSV(f)
				if err := f.Close(); err != nil {
					fmt.Fprintf(os.Stderr, "blbench: %v\n", err)
					os.Exit(1)
				}
			}
		}
		if !cfg.json {
			fmt.Printf("(%s completed in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		}
	}
}

// jsonTable is the machine-readable rendering of one stats.Table.
type jsonTable struct {
	Title string     `json:"title"`
	Cols  []string   `json:"cols"`
	Rows  [][]string `json:"rows"`
	Notes []string   `json:"notes,omitempty"`
}

// jsonExperiment is one -json output line: everything a tracking pipeline
// needs to archive a run as a BENCH_<id>.json artifact.
type jsonExperiment struct {
	Experiment string      `json:"experiment"`
	Title      string      `json:"title"`
	ElapsedMS  int64       `json:"elapsed_ms"`
	Tables     []jsonTable `json:"tables"`
}

// writeJSON emits one experiment as a single JSON object on its own line.
func writeJSON(w io.Writer, e workload.Experiment, tables []*stats.Table, elapsed time.Duration) error {
	out := jsonExperiment{
		Experiment: e.ID,
		Title:      e.Title,
		ElapsedMS:  elapsed.Milliseconds(),
		Tables:     make([]jsonTable, len(tables)),
	}
	for i, tb := range tables {
		out.Tables[i] = jsonTable{Title: tb.Title, Cols: tb.Cols, Rows: tb.Rows, Notes: tb.Notes}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
