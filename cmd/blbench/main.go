// Command blbench regenerates the paper-reproduction experiment tables
// (E1–E13, see DESIGN.md §5 and EXPERIMENTS.md).
//
// Usage:
//
//	blbench                  # run the full suite
//	blbench -run E1,E3       # selected experiments
//	blbench -quick           # smaller sweeps (CI scale)
//	blbench -seeds 10        # replicates per configuration
//	blbench -parallel 0      # fan replicates across all CPUs
//	blbench -csv out/        # also write one CSV per table
//	blbench -list            # list experiments
//
// Replicates of each configuration are independent simulations, so
// -parallel fans them across a worker pool; aggregation is seed-indexed,
// and the emitted tables are byte-identical at every parallelism level.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"ballsintoleaves/internal/workload"
)

func main() {
	var (
		run      = flag.String("run", "", "comma-separated experiment IDs (default: all)")
		quick    = flag.Bool("quick", false, "shrink sweeps and replicates")
		seeds    = flag.Int("seeds", 0, "replicates per configuration (0 = default)")
		seed     = flag.Uint64("seed", 0, "base seed offset")
		parallel = flag.Int("parallel", 1, "max concurrent replicate simulations (0 = all CPUs)")
		csv      = flag.String("csv", "", "directory to write per-table CSV files")
		list     = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range workload.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	workers := *parallel
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	opt := workload.Options{Quick: *quick, Seeds: *seeds, BaseSeed: *seed, Parallel: workers}
	selected := workload.All()
	if *run != "" {
		selected = selected[:0]
		for _, id := range strings.Split(*run, ",") {
			e, ok := workload.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "blbench: unknown experiment %q (try -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	if *csv != "" {
		if err := os.MkdirAll(*csv, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "blbench: %v\n", err)
			os.Exit(1)
		}
	}

	for _, e := range selected {
		start := time.Now()
		fmt.Printf("=== %s: %s\n", e.ID, e.Title)
		tables, err := e.Run(opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "blbench: %s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		for i, tb := range tables {
			tb.Render(os.Stdout)
			fmt.Println()
			if *csv != "" {
				name := fmt.Sprintf("%s_%d.csv", e.ID, i+1)
				f, err := os.Create(filepath.Join(*csv, name))
				if err != nil {
					fmt.Fprintf(os.Stderr, "blbench: %v\n", err)
					os.Exit(1)
				}
				tb.RenderCSV(f)
				if err := f.Close(); err != nil {
					fmt.Fprintf(os.Stderr, "blbench: %v\n", err)
					os.Exit(1)
				}
			}
		}
		fmt.Printf("(%s completed in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
