// Command blserve runs the Balls-into-Leaves renaming protocol over real
// TCP sockets: one coordinator process admits n participants and drives
// lock-step rounds, and n client processes each execute the public
// ballsintoleaves.Protocol state machine end to end.
//
// Coordinator (picks the run configuration, distributed to clients):
//
//	blserve -listen 127.0.0.1:4710 -n 8 -seed 7
//	blserve -listen 127.0.0.1:4710 -n 8 -algo early
//
// Clients (one OS process per participant; only the address and a distinct
// non-zero ID are local):
//
//	blserve -connect 127.0.0.1:4710 -id 1
//	...
//	blserve -connect 127.0.0.1:4710 -id 8
//
// Crash injection reproduces the paper's failure model on the wire: the
// coordinator crashes the named participant mid-broadcast in the named
// round, relaying its final message to only alternating survivors —
// the same schedule internal/sim replays in the equivalence tests:
//
//	blserve -listen 127.0.0.1:4710 -n 8 -crash-round 3 -crash-id 5
//
// Exit codes: 0 on success (for a client: it decided a name), 3 for a
// client whose process crashed (injected or lost connection), 1 on errors,
// 2 on usage mistakes.
package main

import (
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"time"

	bil "ballsintoleaves"
	"ballsintoleaves/internal/adversary"
	"ballsintoleaves/internal/proto"
	"ballsintoleaves/internal/transport"
)

// errFlagsReported marks parse failures the FlagSet already printed.
var errFlagsReported = errors.New("flag parsing failed")

// config is the parsed command line, one of two modes.
type config struct {
	// Coordinator mode.
	listen     string
	n          int
	seed       uint64
	algo       bil.Algorithm
	crashRound int
	crashID    uint64
	quiet      bool

	// Client mode.
	connect string
	id      uint64

	timeout time.Duration
}

// parseFlags parses args into a validated config.
func parseFlags(args []string) (*config, error) {
	fs := flag.NewFlagSet("blserve", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	cfg := &config{}
	var algo string
	fs.StringVar(&cfg.listen, "listen", "", "coordinator mode: address to listen on")
	fs.IntVar(&cfg.n, "n", 8, "coordinator: number of participants to admit")
	fs.Uint64Var(&cfg.seed, "seed", 0, "coordinator: seed driving all randomness")
	fs.StringVar(&algo, "algo", "balls", "coordinator: algorithm: balls | early | rankdescent | leveldescent")
	fs.IntVar(&cfg.crashRound, "crash-round", 0, "coordinator: round in which to crash -crash-id mid-broadcast (0 = no injection)")
	fs.Uint64Var(&cfg.crashID, "crash-id", 0, "coordinator: participant ID to crash in -crash-round")
	fs.BoolVar(&cfg.quiet, "quiet", false, "coordinator: suppress per-round progress logging")
	fs.StringVar(&cfg.connect, "connect", "", "client mode: coordinator address to connect to")
	fs.Uint64Var(&cfg.id, "id", 0, "client: this process's distinct non-zero identifier")
	fs.DurationVar(&cfg.timeout, "timeout", 30*time.Second, "per-operation network timeout")
	if err := fs.Parse(args); err != nil {
		// The FlagSet has already reported the problem (or printed the
		// -h usage) to stderr; mark it so main does not repeat it.
		return nil, errors.Join(errFlagsReported, err)
	}
	var err error
	if cfg.algo, err = parseAlgo(algo); err != nil {
		return nil, err
	}
	switch {
	case cfg.listen == "" && cfg.connect == "":
		return nil, fmt.Errorf("blserve: one of -listen (coordinator) or -connect (client) is required")
	case cfg.listen != "" && cfg.connect != "":
		return nil, fmt.Errorf("blserve: -listen and -connect are mutually exclusive")
	case cfg.connect != "" && cfg.id == 0:
		return nil, fmt.Errorf("blserve: client mode requires a non-zero -id")
	case cfg.listen != "" && cfg.n < 1:
		return nil, fmt.Errorf("blserve: -n must be >= 1, got %d", cfg.n)
	case (cfg.crashRound != 0) != (cfg.crashID != 0):
		return nil, fmt.Errorf("blserve: -crash-round and -crash-id must be set together")
	case cfg.crashRound != 0 && cfg.connect != "":
		return nil, fmt.Errorf("blserve: crash injection is a coordinator flag")
	}
	return cfg, nil
}

// parseAlgo maps the flag spelling to the public Algorithm.
func parseAlgo(s string) (bil.Algorithm, error) {
	switch s {
	case "balls", "random":
		return bil.BallsIntoLeaves, nil
	case "early", "hybrid":
		return bil.EarlyTerminating, nil
	case "rankdescent", "deterministic":
		return bil.RankDescent, nil
	case "leveldescent", "level":
		return bil.DeterministicLevelDescent, nil
	default:
		return 0, fmt.Errorf("blserve: unknown algorithm %q", s)
	}
}

func main() {
	cfg, err := parseFlags(os.Args[1:])
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(0)
		}
		if !errors.Is(err, errFlagsReported) {
			fmt.Fprintln(os.Stderr, err)
		}
		os.Exit(2)
	}
	if cfg.listen != "" {
		os.Exit(coordinate(cfg))
	}
	os.Exit(serveClient(cfg))
}

// coordinate runs coordinator mode and returns the process exit code.
func coordinate(cfg *config) int {
	ln, err := net.Listen("tcp", cfg.listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "blserve: %v\n", err)
		return 1
	}
	defer ln.Close()

	ccfg := transport.CoordinatorConfig{
		Run:       transport.RunConfig{N: cfg.n, Seed: cfg.seed, Variant: uint64(cfg.algo)},
		IOTimeout: cfg.timeout,
	}
	if !cfg.quiet {
		ccfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "blserve: "+format+"\n", args...)
		}
	}
	if cfg.crashRound != 0 {
		scripted, err := adversary.NewScripted(cfg.crashRound, proto.ID(cfg.crashID))
		if err != nil {
			fmt.Fprintf(os.Stderr, "blserve: %v\n", err)
			return 2
		}
		ccfg.Net.Adversary = scripted
		fmt.Printf("fault injection: crash %d mid-broadcast in round %d\n", cfg.crashID, cfg.crashRound)
	}
	fmt.Printf("listening on %s: %v, n=%d, seed=%d\n", ln.Addr(), cfg.algo, cfg.n, cfg.seed)

	sum, err := transport.Serve(ln, ccfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "blserve: %v\n", err)
		return 1
	}

	fmt.Printf("\nrun complete: %d rounds, %d decided, %d crashed, %d messages (%.1f KB)\n",
		sum.Rounds, len(sum.Decisions), len(sum.Crashed), sum.Messages, float64(sum.Bytes)/1024)
	for _, d := range sum.Decisions {
		fmt.Printf("  %-16x -> name %3d  (decided in round %d)\n", uint64(d.ID), d.Name, d.Round)
	}
	for _, id := range sum.Crashed {
		fmt.Printf("  %-16x -> crashed\n", uint64(id))
	}
	// Serve validated the renaming conditions; say so explicitly since this
	// line is what operational smoke tests grep for.
	fmt.Printf("all %d decided names unique in 1..%d\n", len(sum.Decisions), cfg.n)
	return 0
}

// bilProcess adapts the public Protocol to the transport driver.
type bilProcess struct{ p *bil.Protocol }

func (a bilProcess) Send(round int) []byte { return a.p.Send(round) }
func (a bilProcess) Deliver(round int, msgs []proto.Message) {
	conv := make([]bil.Message, len(msgs))
	for i, m := range msgs {
		conv[i] = bil.Message{From: uint64(m.From), Payload: m.Payload}
	}
	a.p.Deliver(round, conv)
}
func (a bilProcess) Decided() (int, bool) { return a.p.Decided() }
func (a bilProcess) Done() bool           { return a.p.Done() }

// serveClient runs client mode and returns the process exit code.
func serveClient(cfg *config) int {
	c, err := dialRetry(cfg.connect, proto.ID(cfg.id), cfg.timeout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "blserve: %v\n", err)
		return 1
	}
	defer c.Close()

	run := c.Config()
	p, err := bil.NewProtocol(run.N, run.Seed, cfg.id, bil.Algorithm(run.Variant))
	if err != nil {
		fmt.Fprintf(os.Stderr, "blserve: %v\n", err)
		return 1
	}
	fmt.Printf("process %x joined: %v, n=%d, seed=%d\n", cfg.id, bil.Algorithm(run.Variant), run.N, run.Seed)

	res, err := transport.Run(c, bilProcess{p}, 10*run.N+64)
	if err != nil {
		fmt.Fprintf(os.Stderr, "blserve: %v\n", err)
		return 1
	}
	if res.Crashed {
		fmt.Printf("process %x crashed after %d rounds\n", cfg.id, res.Rounds)
		return 3
	}
	fmt.Printf("process %x decided name %d (round %d, halted after round %d)\n",
		cfg.id, res.Name, res.DecidedRound, res.Rounds)
	return 0
}

// dialRetry dials the coordinator, retrying briefly so clients may be
// started before (or while) the coordinator comes up.
func dialRetry(addr string, id proto.ID, timeout time.Duration) (*transport.Client, error) {
	deadline := time.Now().Add(timeout)
	for {
		c, err := transport.Dial(addr, id, timeout)
		if err == nil {
			return c, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("dial %s: %w", addr, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}
