package main

import (
	"errors"
	"flag"
	"testing"
	"time"

	bil "ballsintoleaves"
)

func TestParseFlagsCoordinator(t *testing.T) {
	t.Parallel()
	cfg, err := parseFlags([]string{"-listen", "127.0.0.1:4710", "-n", "8", "-seed", "7", "-algo", "early"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.listen != "127.0.0.1:4710" || cfg.n != 8 || cfg.seed != 7 || cfg.algo != bil.EarlyTerminating {
		t.Fatalf("cfg = %+v", cfg)
	}
	if cfg.timeout != 30*time.Second {
		t.Fatalf("default timeout = %v", cfg.timeout)
	}
}

func TestParseFlagsClient(t *testing.T) {
	t.Parallel()
	cfg, err := parseFlags([]string{"-connect", "127.0.0.1:4710", "-id", "5"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.connect != "127.0.0.1:4710" || cfg.id != 5 {
		t.Fatalf("cfg = %+v", cfg)
	}
}

func TestParseFlagsCrashInjection(t *testing.T) {
	t.Parallel()
	cfg, err := parseFlags([]string{"-listen", ":0", "-n", "4", "-crash-round", "3", "-crash-id", "2"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.crashRound != 3 || cfg.crashID != 2 {
		t.Fatalf("cfg = %+v", cfg)
	}
}

func TestParseFlagsRejectsInvalid(t *testing.T) {
	t.Parallel()
	cases := [][]string{
		{}, // no mode
		{"-listen", ":0", "-connect", ":0", "-id", "1"}, // both modes
		{"-connect", ":0"},                                                    // client without id
		{"-listen", ":0", "-n", "0"},                                          // bad n
		{"-listen", ":0", "-crash-round", "3"},                                // crash flags split
		{"-listen", ":0", "-crash-id", "3"},                                   // crash flags split
		{"-connect", ":0", "-id", "1", "-crash-round", "3", "-crash-id", "2"}, // injection on client
		{"-listen", ":0", "-algo", "bogus"},                                   // unknown algorithm
	}
	for _, args := range cases {
		if _, err := parseFlags(args); err == nil {
			t.Fatalf("args %v accepted", args)
		}
	}
}

func TestParseAlgo(t *testing.T) {
	t.Parallel()
	cases := map[string]bil.Algorithm{
		"balls":         bil.BallsIntoLeaves,
		"random":        bil.BallsIntoLeaves,
		"early":         bil.EarlyTerminating,
		"hybrid":        bil.EarlyTerminating,
		"rankdescent":   bil.RankDescent,
		"deterministic": bil.RankDescent,
		"leveldescent":  bil.DeterministicLevelDescent,
		"level":         bil.DeterministicLevelDescent,
	}
	for in, want := range cases {
		got, err := parseAlgo(in)
		if err != nil || got != want {
			t.Fatalf("parseAlgo(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parseAlgo("naive"); err == nil {
		t.Fatal("naive accepted (not a tree protocol)")
	}
}

func TestParseFlagsHelpIsErrHelp(t *testing.T) {
	t.Parallel()
	if _, err := parseFlags([]string{"-h"}); !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("-h err = %v, want flag.ErrHelp", err)
	}
}
