package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"net"
	"testing"
	"time"

	"ballsintoleaves/internal/faultnet"
	"ballsintoleaves/internal/namesvc"
)

func TestParseFlagsValidation(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name string
		args []string
	}{
		{"missing connect", nil},
		{"zero conns", []string{"-connect", "x:1", "-conns", "0"}},
		{"zero outstanding", []string{"-connect", "x:1", "-outstanding", "0"}},
		{"zero workers", []string{"-connect", "x:1", "-workers", "0"}},
		{"zero duration", []string{"-connect", "x:1", "-duration", "0s"}},
		{"negative warmup", []string{"-connect", "x:1", "-warmup", "-1s"}},
		{"negative rate", []string{"-connect", "x:1", "-rate", "-5"}},
		{"zero op-timeout", []string{"-connect", "x:1", "-session", "-op-timeout", "0s"}},
		{"address list without -session", []string{"-connect", "x:1,y:2"}},
	}
	for _, tc := range cases {
		if _, err := parseFlags(tc.args); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	if _, err := parseFlags([]string{"-h"}); !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("-h err = %v", err)
	}
	cfg, err := parseFlags([]string{"-connect", "h:1", "-conns", "2", "-outstanding", "8",
		"-duration", "250ms", "-rate", "1000", "-warmup", "100ms", "-workers", "3", "-json"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.conns != 2 || cfg.outstanding != 8 || cfg.duration != 250*time.Millisecond ||
		cfg.rate != 1000 || cfg.warmup != 100*time.Millisecond || cfg.workers != 3 || !cfg.json {
		t.Fatalf("cfg = %+v", cfg)
	}
	cfg, err = parseFlags([]string{"-connect", "a:1,b:2,c:3", "-session", "-op-timeout", "2s",
		"-duration", "250ms"})
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.session || cfg.opTimeout != 2*time.Second || cfg.connect != "a:1,b:2,c:3" {
		t.Fatalf("session cfg = %+v", cfg)
	}
}

// startDaemon brings up an in-process namesvc server for load runs.
func startDaemon(t *testing.T) string {
	t.Helper()
	svc, err := namesvc.New(namesvc.Config{Shards: 2, ShardCap: 256, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := namesvc.NewServer(namesvc.ServerConfig{Service: svc})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() {
		ln.Close()
		srv.Close()
	})
	return ln.Addr().String()
}

// TestClosedLoopRun drives a short closed-loop burst and checks the
// accounting: progress, zero duplicates, zero errors, latency recorded.
func TestClosedLoopRun(t *testing.T) {
	t.Parallel()
	addr := startDaemon(t)
	cfg, err := parseFlags([]string{"-connect", addr, "-conns", "2", "-outstanding", "16",
		"-duration", "300ms"})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := runLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.acquires == 0 {
		t.Fatal("no acquires completed")
	}
	if rep.duplicates != 0 || rep.errors != 0 {
		t.Fatalf("duplicates=%d errors=%d", rep.duplicates, rep.errors)
	}
	if rep.lat.Count() != rep.acquires {
		t.Fatalf("recorded %d latencies for %d acquires", rep.lat.Count(), rep.acquires)
	}
	if rep.lat.P99() <= 0 {
		t.Fatal("p99 latency not recorded")
	}
	if rep.svc.Epochs == 0 || rep.svc.Grants == 0 {
		t.Fatalf("server stats not collected: %+v", rep.svc)
	}
	// The JSON artifact rendering must round-trip as valid JSON with the
	// headline fields populated.
	var buf bytes.Buffer
	if err := rep.writeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if decoded["acquires"].(float64) == 0 || decoded["acquires_per_s"].(float64) <= 0 {
		t.Fatalf("artifact missing throughput: %s", buf.String())
	}
}

// TestClosedLoopWarmupAndWorkers drives the completion-worker path with a
// warmup window: warmup traffic flows (the server sees more grants than the
// report counts) but is excluded from the histogram and counters, and the
// JSON artifact records the warmup and worker configuration.
func TestClosedLoopWarmupAndWorkers(t *testing.T) {
	t.Parallel()
	addr := startDaemon(t)
	cfg, err := parseFlags([]string{"-connect", addr, "-conns", "2", "-outstanding", "16",
		"-workers", "2", "-warmup", "150ms", "-duration", "300ms"})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := runLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.acquires == 0 || rep.duplicates != 0 || rep.errors != 0 {
		t.Fatalf("acquires=%d duplicates=%d errors=%d", rep.acquires, rep.duplicates, rep.errors)
	}
	if rep.lat.Count() != rep.acquires {
		t.Fatalf("recorded %d latencies for %d measured acquires", rep.lat.Count(), rep.acquires)
	}
	// The warmup traffic reached the server but stayed out of the report.
	if rep.svc.Grants <= rep.acquires {
		t.Fatalf("server granted %d, report measured %d — warmup traffic unaccounted",
			rep.svc.Grants, rep.acquires)
	}
	var buf bytes.Buffer
	if err := rep.writeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if decoded["warmup_ms"].(float64) != 150 || decoded["workers"].(float64) != 2 ||
		decoded["conns"].(float64) != 2 || decoded["outstanding"].(float64) != 16 {
		t.Fatalf("artifact missing run configuration: %s", buf.String())
	}
}

// TestSessionModeRun drives the closed loop through self-healing sessions
// against a healthy daemon: same accounting guarantees as client mode,
// and no reconnects or timeouts on a fault-free link.
func TestSessionModeRun(t *testing.T) {
	t.Parallel()
	addr := startDaemon(t)
	cfg, err := parseFlags([]string{"-connect", addr, "-session", "-conns", "2",
		"-outstanding", "16", "-duration", "300ms"})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := runLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.acquires == 0 {
		t.Fatal("no acquires completed")
	}
	if rep.duplicates != 0 || rep.errors != 0 || rep.timeouts != 0 || rep.lost != 0 {
		t.Fatalf("duplicates=%d errors=%d timeouts=%d lost=%d",
			rep.duplicates, rep.errors, rep.timeouts, rep.lost)
	}
	if rep.sess.Reconnects != 0 {
		t.Fatalf("session counters %+v on a fault-free link", rep.sess)
	}
	var buf bytes.Buffer
	if err := rep.writeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
}

// TestSessionModeRidesThroughReset resets every connection mid-run; the
// sessions must self-heal — the run finishes with progress, zero
// duplicates, zero hard errors, and at least one reconnect on record.
// One connection keeps the active-name table single-writer so a grant
// revoked by the reset cannot race another connection's re-acquire.
func TestSessionModeRidesThroughReset(t *testing.T) {
	t.Parallel()
	addr := startDaemon(t)
	link := faultnet.NewLink("load")
	p, err := faultnet.NewProxy("127.0.0.1:0", addr, link)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	cfg, err := parseFlags([]string{"-connect", p.Addr(), "-session", "-conns", "1",
		"-outstanding", "8", "-duration", "900ms", "-op-timeout", "300ms", "-timeout", "2s"})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(300 * time.Millisecond)
		link.ResetConns()
	}()
	rep, err := runLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.acquires == 0 {
		t.Fatal("no acquires completed")
	}
	if rep.duplicates != 0 || rep.errors != 0 {
		t.Fatalf("duplicates=%d errors=%d riding through a reset", rep.duplicates, rep.errors)
	}
	if rep.sess.Reconnects == 0 {
		t.Fatalf("session counters %+v: reset survived without a recorded reconnect", rep.sess)
	}
}

// TestOpenLoopRun covers the -rate pacer path.
func TestOpenLoopRun(t *testing.T) {
	t.Parallel()
	addr := startDaemon(t)
	cfg, err := parseFlags([]string{"-connect", addr, "-conns", "1", "-outstanding", "32",
		"-duration", "200ms", "-rate", "2000"})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := runLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.acquires == 0 || rep.duplicates != 0 || rep.errors != 0 {
		t.Fatalf("acquires=%d duplicates=%d errors=%d", rep.acquires, rep.duplicates, rep.errors)
	}
	// Open loop may shed, but never more offers than the pacer made.
	if rep.acquires+rep.shed > 2000 {
		t.Fatalf("offered %d in 200ms at rate 2000/s", rep.acquires+rep.shed)
	}
}
