// Command blload is the load generator for the blnamed name-allocation
// daemon: it drives pipelined acquire/release traffic over real sockets and
// reports sustained throughput and the acquire-latency distribution
// (p50/p90/p99/p999) from a mergeable log-linear histogram
// (internal/stats.Histogram).
//
// Closed loop (default): each of -conns connections keeps -outstanding
// acquires in flight; every grant is released immediately and replaced, so
// offered load tracks service capacity. Completions are handed off to
// -workers goroutines per connection, so releases and follow-up acquires
// are issued off the client's read goroutine and a single connection can
// saturate the batched server front end:
//
//	blload -connect 127.0.0.1:4720 -conns 4 -outstanding 64 -workers 2 -duration 5s
//
// Open loop: -rate offers a fixed number of acquires per second across the
// connections regardless of completions (bounded by -outstanding per
// connection; acquires shed at the cap are reported, so coordinated
// omission is visible rather than hidden):
//
//	blload -connect 127.0.0.1:4720 -conns 4 -rate 50000 -duration 10s
//
// -warmup runs the same traffic for the given duration before measurement
// begins: operations issued during warmup are excluded from the histogram,
// the throughput window, and the duplicate/error accounting, so cold
// caches, pool growth, and epoch-size ramp-up do not pollute the report.
//
// -session switches every connection from a raw client to a self-healing
// namesvc.Session: per-op timeouts, reconnect with backoff and jitter,
// automatic leader-redirect following, and reclaim of held grants after a
// failover. -connect may then be a comma-separated list of cluster
// members, and the load rides through leader kills and partitions with no
// manual re-dial; op timeouts during a fault are reported separately and
// do not fail the run:
//
//	blload -session -connect 127.0.0.1:4750,127.0.0.1:4751,127.0.0.1:4752 \
//	    -op-timeout 2s -duration 30s
//
// Every grant is checked against a process-wide active-name table: a name
// granted while still active is a uniqueness violation. An entry is held
// from grant acknowledgement until its release is submitted (or the
// session reports the grant revoked), so the table tracks grants across
// session reconnects and the zero-duplicate assertion stays meaningful
// under chaos. The final report's "duplicates: 0" line is what CI's
// end-to-end smoke greps for; any duplicate or error makes blload exit 1.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ballsintoleaves/internal/namesvc"
	"ballsintoleaves/internal/stats"
)

// errFlagsReported marks parse failures the FlagSet already printed.
var errFlagsReported = errors.New("flag parsing failed")

// config is the parsed and validated command line.
type config struct {
	connect     string
	conns       int
	outstanding int
	workers     int
	duration    time.Duration
	warmup      time.Duration
	rate        int
	timeout     time.Duration
	session     bool
	opTimeout   time.Duration
	json        bool
	probe       bool
}

// parseFlags parses args into a validated config.
func parseFlags(args []string) (*config, error) {
	fs := flag.NewFlagSet("blload", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	cfg := &config{}
	fs.StringVar(&cfg.connect, "connect", "", "blnamed address to connect to (required)")
	fs.IntVar(&cfg.conns, "conns", 4, "concurrent connections")
	fs.IntVar(&cfg.outstanding, "outstanding", 64, "in-flight acquires per connection")
	fs.IntVar(&cfg.workers, "workers", 1,
		"completion-worker goroutines per connection issuing releases and chained acquires")
	fs.DurationVar(&cfg.duration, "duration", 5*time.Second, "measurement duration")
	fs.DurationVar(&cfg.warmup, "warmup", 0,
		"run this long before measuring; warmup ops are excluded from the histogram and duplicate accounting")
	fs.IntVar(&cfg.rate, "rate", 0, "open-loop offered acquires/s across all connections (0 = closed loop)")
	fs.DurationVar(&cfg.timeout, "timeout", 10*time.Second, "dial and write timeout")
	fs.BoolVar(&cfg.session, "session", false,
		"self-healing session mode: reconnect with backoff, follow leader redirects, and reclaim held grants after failover; -connect may be a comma-separated member list")
	fs.DurationVar(&cfg.opTimeout, "op-timeout", 10*time.Second,
		"session mode: per-operation deadline; timed-out ops are reported separately and do not fail the run")
	fs.BoolVar(&cfg.json, "json", false,
		"emit the report as one JSON object on stdout (for BENCH_*.json artifacts), after the text report on stderr")
	fs.BoolVar(&cfg.probe, "probe", false,
		"readiness probe: dial once, complete the hello/welcome handshake, exit 0 on success and 1 on failure (for CI startup polling; no load is generated)")
	if err := fs.Parse(args); err != nil {
		// The FlagSet has already reported the problem (or printed the
		// -h usage) to stderr; mark it so main does not repeat it.
		return nil, errors.Join(errFlagsReported, err)
	}
	switch {
	case cfg.connect == "":
		return nil, fmt.Errorf("blload: -connect is required")
	case cfg.conns < 1:
		return nil, fmt.Errorf("blload: -conns must be >= 1, got %d", cfg.conns)
	case cfg.outstanding < 1:
		return nil, fmt.Errorf("blload: -outstanding must be >= 1, got %d", cfg.outstanding)
	case cfg.workers < 1:
		return nil, fmt.Errorf("blload: -workers must be >= 1, got %d", cfg.workers)
	case cfg.duration <= 0:
		return nil, fmt.Errorf("blload: -duration must be positive, got %v", cfg.duration)
	case cfg.warmup < 0:
		return nil, fmt.Errorf("blload: -warmup must be >= 0, got %v", cfg.warmup)
	case cfg.rate < 0:
		return nil, fmt.Errorf("blload: -rate must be >= 0, got %d", cfg.rate)
	case cfg.opTimeout <= 0:
		return nil, fmt.Errorf("blload: -op-timeout must be positive, got %v", cfg.opTimeout)
	case !cfg.session && strings.Contains(cfg.connect, ","):
		return nil, fmt.Errorf("blload: a -connect address list requires -session")
	}
	return cfg, nil
}

// report is the outcome of one load run.
type report struct {
	cfg        *config
	elapsed    time.Duration
	acquires   uint64
	releases   uint64
	shed       uint64
	duplicates uint64
	errors     uint64
	timeouts   uint64                  // session ops that hit -op-timeout
	lost       uint64                  // grants the server revoked across a reconnect
	sess       namesvc.SessionCounters // aggregated across connections
	lat        stats.Histogram
	svc        namesvc.Stats
}

// print renders the human-readable report.
func (r *report) print(w *os.File) {
	secs := r.elapsed.Seconds()
	fmt.Fprintf(w, "ran %.2fs", secs)
	if r.cfg.warmup > 0 {
		fmt.Fprintf(w, " (after %v warmup)", r.cfg.warmup)
	}
	fmt.Fprintf(w, ": %d acquires (%.1f acquires/s), %d releases",
		r.acquires, float64(r.acquires)/secs, r.releases)
	if r.shed > 0 {
		fmt.Fprintf(w, ", %d shed at the in-flight cap", r.shed)
	}
	fmt.Fprintln(w)
	us := func(ns int64) float64 { return float64(ns) / 1e3 }
	fmt.Fprintf(w, "acquire latency: p50=%.0fµs p90=%.0fµs p99=%.0fµs p999=%.0fµs max=%.0fµs mean=%.0fµs\n",
		us(r.lat.P50()), us(r.lat.P90()), us(r.lat.P99()), us(r.lat.P999()), us(r.lat.Max()), r.lat.Mean()/1e3)
	fmt.Fprintf(w, "server: %d epochs, %d grants, %d releases, %d absorbed, %d assigned, %d free\n",
		r.svc.Epochs, r.svc.Grants, r.svc.Releases, r.svc.Absorbed, r.svc.Assigned, r.svc.Free)
	if r.cfg.session {
		fmt.Fprintf(w, "session: %d reconnects, %d redirects, %d reclaimed, %d lost, %d op timeouts\n",
			r.sess.Reconnects, r.sess.Redirects, r.sess.Reclaimed, r.lost, r.timeouts)
	}
	fmt.Fprintf(w, "duplicates: %d, errors: %d\n", r.duplicates, r.errors)
}

// jsonReport is the machine-readable rendering of one run, the blload
// counterpart of blbench's BENCH_*.json artifact lines.
type jsonReport struct {
	ElapsedMS   int64   `json:"elapsed_ms"`
	WarmupMS    int64   `json:"warmup_ms"`
	Conns       int     `json:"conns"`
	Outstanding int     `json:"outstanding"`
	Workers     int     `json:"workers"`
	Acquires    uint64  `json:"acquires"`
	AcquiresPS  float64 `json:"acquires_per_s"`
	Releases    uint64  `json:"releases"`
	Shed        uint64  `json:"shed,omitempty"`
	Duplicates  uint64  `json:"duplicates"`
	Errors      uint64  `json:"errors"`
	Timeouts    uint64  `json:"op_timeouts,omitempty"`
	Lost        uint64  `json:"grants_lost,omitempty"`
	Reconnects  uint64  `json:"session_reconnects,omitempty"`
	Redirects   uint64  `json:"session_redirects,omitempty"`
	Reclaimed   uint64  `json:"session_reclaimed,omitempty"`
	P50US       float64 `json:"latency_p50_us"`
	P90US       float64 `json:"latency_p90_us"`
	P99US       float64 `json:"latency_p99_us"`
	P999US      float64 `json:"latency_p999_us"`
	MaxUS       float64 `json:"latency_max_us"`
	MeanUS      float64 `json:"latency_mean_us"`
	SvcEpochs   uint64  `json:"server_epochs"`
	SvcGrants   uint64  `json:"server_grants"`
	SvcReleases uint64  `json:"server_releases"`
	SvcAbsorbed uint64  `json:"server_absorbed"`
	SvcAssigned int     `json:"server_assigned"`
	SvcFree     int     `json:"server_free"`
	// Latency is the raw histogram snapshot (non-empty buckets plus exact
	// aggregates), not just the quantiles above: artifacts from separate
	// runs — or from the simulator, which emits the same shape — merge
	// losslessly through stats.FromSnapshot + Histogram.Merge.
	Latency stats.Snapshot `json:"latency_ns"`
}

// writeJSON emits the report as a single JSON object.
func (r *report) writeJSON(w io.Writer) error {
	secs := r.elapsed.Seconds()
	us := func(ns int64) float64 { return float64(ns) / 1e3 }
	out := jsonReport{
		ElapsedMS:   r.elapsed.Milliseconds(),
		WarmupMS:    r.cfg.warmup.Milliseconds(),
		Conns:       r.cfg.conns,
		Outstanding: r.cfg.outstanding,
		Workers:     r.cfg.workers,
		Acquires:    r.acquires,
		AcquiresPS:  float64(r.acquires) / secs,
		Releases:    r.releases,
		Shed:        r.shed,
		Duplicates:  r.duplicates,
		Errors:      r.errors,
		Timeouts:    r.timeouts,
		Lost:        r.lost,
		Reconnects:  r.sess.Reconnects,
		Redirects:   r.sess.Redirects,
		Reclaimed:   r.sess.Reclaimed,
		P50US:       us(r.lat.P50()),
		P90US:       us(r.lat.P90()),
		P99US:       us(r.lat.P99()),
		P999US:      us(r.lat.P999()),
		MaxUS:       us(r.lat.Max()),
		MeanUS:      r.lat.Mean() / 1e3,
		SvcEpochs:   r.svc.Epochs,
		SvcGrants:   r.svc.Grants,
		SvcReleases: r.svc.Releases,
		SvcAbsorbed: r.svc.Absorbed,
		SvcAssigned: r.svc.Assigned,
		SvcFree:     r.svc.Free,
		Latency:     r.lat.Snapshot(),
	}
	return json.NewEncoder(w).Encode(out)
}

// loadConn is the client surface the load generator drives; it is
// satisfied by both the raw *namesvc.Client and the self-healing
// *namesvc.Session, so every path below is fault-mode-agnostic.
type loadConn interface {
	Acquire(client uint64, cb func(namesvc.Grant, error)) error
	Release(name int, cb func(error)) error
	StatsSync() (namesvc.Stats, error)
	Capacity() int
	Flush() error
	Close() error
	Wait()
}

// worker is one connection's driver. Grant callbacks run on the client's
// read goroutine, which owns the histogram and the acquire counter; in
// closed-loop mode each completion is handed to the connection's worker
// pool, which issues the release and the chained acquire — keeping the read
// goroutine free to drain response bursts while the workers fill the next
// request batch. (A session's callbacks run on its current client's read
// goroutine; reconnects swap that goroutine, but never overlap two.)
type worker struct {
	c        loadConn
	shared   *shared
	lat      stats.Histogram
	acquires uint64 // owned by the read goroutine
	releases atomic.Uint64
	inflight atomic.Int64
	comp     chan completion
	relCB    func(error)   // created once, shared by every release
	done     chan struct{} // closed when stopped and drained
	doneOnce sync.Once
}

// completion is one grant handed from the read goroutine to the worker
// pool, carrying whether its acquire was issued inside the measurement
// window so both halves of the operation are accounted under the same rule.
type completion struct {
	g        namesvc.Grant
	measured bool
}

// shared is the cross-worker state: stop/warm flags, duplicate detection,
// global counters.
type shared struct {
	stop     atomic.Bool
	warm     atomic.Bool // measurement window open; false during warmup
	clientID atomic.Uint64
	active   []atomic.Uint32 // 1+name -> held?
	dups     atomic.Uint64
	errs     atomic.Uint64
	shed     atomic.Uint64
	timeouts atomic.Uint64
	lost     atomic.Uint64
}

// countFailure classifies one failed operation: a session op that hit its
// deadline is an expected casualty of riding out a fault and is counted
// as a timeout; everything else is an error. Failures outside the
// measurement window, or after the stop flag (in-flight tails cut down by
// teardown), stay uncounted.
func (sh *shared) countFailure(err error, measured bool) {
	if !measured || sh.stop.Load() {
		return
	}
	if errors.Is(err, namesvc.ErrOpTimeout) {
		sh.timeouts.Add(1)
	} else {
		sh.errs.Add(1)
	}
}

// start claims one in-flight slot and fires its first acquire.
func (wk *worker) start(chain bool) {
	wk.inflight.Add(1)
	wk.fire(chain)
}

// fire issues one acquire on an already-claimed slot. The grant callback
// validates uniqueness and either retires the slot (open loop, or stopping)
// or hands the completion to the worker pool to release and re-fire.
// Warmup ops — issued before the measurement window opened — keep the
// pipeline hot but stay out of every statistic.
func (wk *worker) fire(chain bool) {
	sh := wk.shared
	client := sh.clientID.Add(1)
	measured := sh.warm.Load()
	t0 := time.Now()
	err := wk.c.Acquire(client, func(g namesvc.Grant, err error) {
		if err != nil {
			// Connection teardown after the run window is the expected way
			// in-flight tails end; only mid-run failures count (split into
			// timeouts and errors by countFailure).
			sh.countFailure(err, measured)
			wk.finish()
			return
		}
		if measured {
			wk.lat.Record(time.Since(t0).Nanoseconds())
			wk.acquires++
		}
		// The active table is maintained across warmup and measurement (a
		// held name is held regardless of when it was acquired); only the
		// violation count is gated. The entry stays held until the release
		// is submitted (see release) or the session reports the grant
		// revoked — in particular it stays held across a session
		// reconnect, so a name re-granted while its holder neither
		// released nor lost it is caught as a duplicate.
		if !sh.active[g.Name].CompareAndSwap(0, 1) && measured {
			sh.dups.Add(1)
		}
		if chain && !sh.stop.Load() {
			wk.comp <- completion{g, measured} // never blocks: cap covers every in-flight slot
			return
		}
		wk.release(g, measured)
		wk.finish()
	})
	if err != nil {
		sh.countFailure(err, measured)
		wk.finish()
	}
}

// release returns one granted name.
func (wk *worker) release(g namesvc.Grant, measured bool) {
	// Mark free before the release frame is sent: once the server
	// processes it the name may be re-granted to any connection, and the
	// table must already allow it.
	wk.shared.active[g.Name].Store(0)
	if err := wk.c.Release(g.Name, wk.relCB); err != nil {
		wk.shared.countFailure(err, measured)
		return
	}
	if measured {
		wk.releases.Add(1)
	}
}

// runWorker drains completions: one release plus one chained acquire per
// grant, issued off the read goroutine. Completions are drained in batches:
// once the channel runs dry the worker flushes the requests it just
// buffered (the read goroutine's own idle flush ran before these ops
// existed) and yields, so a saturating worker neither strands a batch in
// the write buffer nor starves the read goroutine on small-core machines.
func (wk *worker) runWorker(wg *sync.WaitGroup) {
	defer wg.Done()
	for cp := range wk.comp {
		for done := false; !done; {
			wk.release(cp.g, cp.measured)
			if wk.shared.stop.Load() {
				wk.finish()
			} else {
				wk.fire(true)
			}
			select {
			case next, ok := <-wk.comp:
				if !ok {
					return
				}
				cp = next
			default:
				done = true
			}
		}
		wk.c.Flush()
		runtime.Gosched()
	}
}

// finish retires one in-flight slot and signals drain completion.
func (wk *worker) finish() {
	if wk.inflight.Add(-1) == 0 && wk.shared.stop.Load() {
		wk.doneOnce.Do(func() { close(wk.done) })
	}
}

// runLoad executes one measurement run.
func runLoad(cfg *config) (*report, error) {
	sh := &shared{}
	sh.warm.Store(cfg.warmup == 0)
	var sessions []*namesvc.Session
	dialConn := func(i int) (loadConn, error) {
		if !cfg.session {
			return namesvc.Dial(cfg.connect, namesvc.ClientConfig{Timeout: cfg.timeout})
		}
		s, err := namesvc.DialSession(namesvc.SessionConfig{
			Addrs:          strings.Split(cfg.connect, ","),
			Client:         namesvc.ClientConfig{Timeout: cfg.timeout},
			OpTimeout:      cfg.opTimeout,
			ConnectTimeout: cfg.timeout,
			Seed:           uint64(i + 1),
			OnGrantLost: func(client uint64, name int) {
				// The server revoked this grant while the session was away;
				// the name may already belong to someone else, so the table
				// must stop counting it against this holder.
				sh.lost.Add(1)
				sh.active[name].Store(0)
			},
		})
		if err != nil {
			return nil, err
		}
		sessions = append(sessions, s)
		return s, nil
	}
	workers := make([]*worker, cfg.conns)
	for i := range workers {
		c, err := dialConn(i)
		if err != nil {
			for _, wk := range workers[:i] {
				wk.c.Close()
			}
			return nil, err
		}
		if sh.active == nil {
			sh.active = make([]atomic.Uint32, c.Capacity()+1)
		}
		wk := &worker{c: c, shared: sh,
			comp: make(chan completion, cfg.outstanding),
			done: make(chan struct{})}
		wk.relCB = func(err error) {
			if err != nil {
				sh.countFailure(err, true)
			}
		}
		workers[i] = wk
	}
	defer func() {
		for _, wk := range workers {
			wk.c.Close()
		}
	}()
	var workerWG sync.WaitGroup
	for _, wk := range workers {
		for w := 0; w < cfg.workers; w++ {
			workerWG.Add(1)
			go wk.runWorker(&workerWG)
		}
	}

	start := time.Now()
	var measureStart time.Time
	if cfg.rate == 0 {
		for _, wk := range workers {
			for i := 0; i < cfg.outstanding; i++ {
				wk.start(true)
			}
			wk.c.Flush()
		}
		if cfg.warmup > 0 {
			time.Sleep(cfg.warmup)
			sh.warm.Store(true)
		}
		measureStart = time.Now()
		time.Sleep(cfg.duration)
	} else {
		interval := time.Second / time.Duration(cfg.rate)
		if interval <= 0 {
			interval = time.Nanosecond
		}
		deadline := start.Add(cfg.warmup + cfg.duration)
		warmAt := start.Add(cfg.warmup)
		measureStart = warmAt
		next := 0
		for t := time.Now(); t.Before(deadline); t = time.Now() {
			if !sh.warm.Load() && !t.Before(warmAt) {
				sh.warm.Store(true)
			}
			wk := workers[next%len(workers)]
			next++
			if int(wk.inflight.Load()) >= cfg.outstanding {
				if sh.warm.Load() {
					sh.shed.Add(1)
				}
			} else {
				wk.start(false)
			}
			// Pace the offered load; Sleep granularity coarsens very high
			// rates, where bursts of catch-up issues approximate the rate.
			until := start.Add(time.Duration(next) * interval)
			if d := time.Until(until); d > 0 {
				time.Sleep(d)
			}
		}
		sh.warm.Store(true) // degenerate runs: never leave warmup unclosed
	}
	sh.stop.Store(true)
	elapsed := time.Since(measureStart)

	// Drain the in-flight tails so every grant has been released.
	drain := time.After(cfg.timeout)
	for _, wk := range workers {
		if wk.inflight.Load() == 0 {
			continue
		}
		wk.c.Flush()
		select {
		case <-wk.done:
		case <-drain:
		}
	}

	rep := &report{cfg: cfg, elapsed: elapsed}
	// Let the tail releases buffered on other connections reach the server
	// before sampling its counters: poll until Assigned is stable.
	if st, err := workers[0].c.StatsSync(); err == nil {
		for settle := 0; settle < 50; settle++ {
			time.Sleep(10 * time.Millisecond)
			next, err := workers[0].c.StatsSync()
			if err != nil {
				break
			}
			stable := next.Assigned == st.Assigned
			st = next
			if stable {
				break
			}
		}
		rep.svc = st
	}
	// The per-worker histograms and counters are owned by the clients' read
	// goroutines; stop those goroutines (even if the drain timed out with
	// acquires still in flight) before aggregating. The completion workers
	// go last: their channels can only be closed once no read goroutine is
	// left to send on them.
	for _, wk := range workers {
		wk.c.Close()
	}
	for _, wk := range workers {
		wk.c.Wait()
	}
	for _, wk := range workers {
		close(wk.comp)
	}
	workerWG.Wait()
	for _, wk := range workers {
		rep.acquires += wk.acquires
		rep.releases += wk.releases.Load()
		rep.lat.Merge(&wk.lat)
	}
	for _, s := range sessions {
		c := s.Counters()
		rep.sess.Reconnects += c.Reconnects
		rep.sess.Redirects += c.Redirects
		rep.sess.Reclaimed += c.Reclaimed
		rep.sess.Lost += c.Lost
		rep.sess.Retries += c.Retries
		rep.sess.Timeouts += c.Timeouts
	}
	rep.shed = sh.shed.Load()
	rep.duplicates = sh.dups.Load()
	rep.errors = sh.errs.Load()
	rep.timeouts = sh.timeouts.Load()
	rep.lost = sh.lost.Load()
	return rep, nil
}

func main() {
	cfg, err := parseFlags(os.Args[1:])
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(0)
		}
		if !errors.Is(err, errFlagsReported) {
			fmt.Fprintln(os.Stderr, err)
		}
		os.Exit(2)
	}
	if cfg.probe {
		addr, _, _ := strings.Cut(cfg.connect, ",")
		c, err := namesvc.Dial(addr, namesvc.ClientConfig{Timeout: cfg.timeout})
		if err != nil {
			fmt.Fprintf(os.Stderr, "blload: probe: %v\n", err)
			os.Exit(1)
		}
		c.Close()
		return
	}
	rep, err := runLoad(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "blload: %v\n", err)
		os.Exit(1)
	}
	if cfg.json {
		rep.print(os.Stderr)
		if err := rep.writeJSON(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "blload: %v\n", err)
			os.Exit(1)
		}
	} else {
		rep.print(os.Stdout)
	}
	if rep.duplicates > 0 || rep.errors > 0 {
		os.Exit(1)
	}
}
