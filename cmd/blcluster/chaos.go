// Chaos mode: run the cluster with every network link — client-facing
// and peer-to-peer — routed through in-process faultnet proxies, drive a
// compiled seed-deterministic fault schedule against it while
// self-healing Session clients churn grants, and check the chaos
// invariants at the end:
//
//   - zero duplicate grants across every session and fault,
//   - every pre-fault acknowledged grant accounted for: reclaimed and
//     releasable on the post-fault leader, or revoked with the loss
//     reported to its session — never silently gone,
//   - election stability: for scenarios that never unseat a healthy
//     leader (flapping-follower, asymmetric-split) the cluster term must
//     not move, leadership must not change hands, no holder grant may be
//     revoked, and the leader's read lease must never lapse — unless
//     -legacy-elections deliberately runs the pre-hardening behavior for
//     the before/after differential,
//   - with -retain-records, the leader's compaction floor advanced,
//   - byte-identical per-shard digests across all replicas after heal.
//
// Each invariant prints a greppable "blcluster: chaos invariant:" line;
// the run ends with "chaos: invariants hold" only if all of them do.
package main

import (
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"ballsintoleaves/internal/faultnet"
	"ballsintoleaves/internal/namesvc"
)

const (
	// chaosClientProxyOffset places node i's client-facing fault proxy on
	// base-port+200+i; sessions dial the proxy, never the daemon.
	chaosClientProxyOffset = 200
	// chaosPeerProxyOffset places the proxy carrying node i's replication
	// traffic toward peer j on base-port+300+i*n+j. Each ordered pair gets
	// its own proxy so a node can be cut off in one direction only.
	chaosPeerProxyOffset = 300

	// chaosHolderGrants is how many names the holder session acquires
	// before the first fault and must still hold after the last heal.
	chaosHolderGrants = 16
	// chaosChurnWorkers is how many sessions acquire/release continuously
	// through every fault.
	chaosChurnWorkers = 2
)

func (cfg *config) chaosClientAddr(i int) string {
	return fmt.Sprintf("%s:%d", cfg.host, cfg.basePort+chaosClientProxyOffset+i)
}

func (cfg *config) chaosPeerAddr(i, j int) string {
	return fmt.Sprintf("%s:%d", cfg.host, cfg.basePort+chaosPeerProxyOffset+i*cfg.n+j)
}

// chaosPeerList is node i's -peers view: itself at its real replication
// address (it binds it), every peer behind i's outbound proxy toward that
// peer, and every client address the proxied one — redirect hints must
// name addresses sessions can actually dial.
func (cfg *config) chaosPeerList(i int) string {
	members := make([]string, cfg.n)
	for j := range members {
		repl := cfg.replAddr(j)
		if j != i {
			repl = cfg.chaosPeerAddr(i, j)
		}
		members[j] = repl + "=" + cfg.chaosClientAddr(j)
	}
	return strings.Join(members, ",")
}

// nodeFaults is every link touching one node: its client link plus both
// directions of each peer route. It is the unit a schedule target
// resolves to — partitioning a node means partitioning all of these at
// the same instant, the way a real network cut behaves.
type nodeFaults struct {
	client *faultnet.Link
	out    []*faultnet.Link // out[j]: this node's route toward peer j (it dials)
	in     []*faultnet.Link // in[j]: peer j's route toward this node (j dials)
}

func (nf *nodeFaults) each(f func(*faultnet.Link)) {
	for _, l := range nf.out {
		if l != nil {
			f(l)
		}
	}
	for _, l := range nf.in {
		if l != nil {
			f(l)
		}
	}
	f(nf.client)
}

// partition cuts the node off. Full partitions also reset established
// flows so stream failures surface at once. One-way partitions deafen
// the node: traffic toward it vanishes while its own transmissions still
// deliver — the return direction drops on routes it dials, the forward
// direction on routes dialed toward it — and connections stay standing,
// so only timeouts, never connection errors, expose the fault. A
// deafened node is the election-stability worst case: it reaches every
// peer with (pre-)vote solicitations while hearing no leader itself.
func (nf *nodeFaults) partition(oneWay bool) {
	if !oneWay {
		nf.each(func(l *faultnet.Link) { l.Partition(false); l.ResetConns() })
		return
	}
	for _, l := range nf.out {
		if l != nil {
			l.SetDrop(faultnet.BtoA, true)
		}
	}
	for _, l := range nf.in {
		if l != nil {
			l.SetDrop(faultnet.AtoB, true)
		}
	}
	nf.client.SetDrop(faultnet.AtoB, true)
}

func (nf *nodeFaults) heal()  { nf.each(func(l *faultnet.Link) { l.Heal() }) }
func (nf *nodeFaults) reset() { nf.each(func(l *faultnet.Link) { l.ResetConns() }) }

func (nf *nodeFaults) latency(d time.Duration) {
	nf.each(func(l *faultnet.Link) {
		l.SetLatency(faultnet.AtoB, d)
		l.SetLatency(faultnet.BtoA, d)
	})
}

func (nf *nodeFaults) rate(bps int) {
	nf.each(func(l *faultnet.Link) {
		l.SetRate(faultnet.AtoB, bps)
		l.SetRate(faultnet.BtoA, bps)
	})
}

// chaosTable is the cross-session duplicate detector. The discipline is
// free-at-release-submit: an entry is held from grant acknowledgement
// until its release is submitted or the session reports the grant
// revoked (OnGrantLost). Revocation is asynchronous — the server frees a
// dead connection's names the moment teardown's releases commit, while
// the owning session only learns of the loss when its reclaim fails after
// a reconnect — so a legitimate re-grant can race the owner's OnGrantLost
// and look like a duplicate in the moment. duplicates() therefore
// reconciles at settlement: a suspect is a true duplicate only if the
// previous owner never reported that name revoked, meaning two sessions
// held acknowledged grants for one name at once.
type chaosTable struct {
	mu    sync.Mutex
	owner map[int]string // name -> holder label
	dups  []chaosDup
	lost  map[chaosDup]bool // (name, label) pairs the server revoked
}

type chaosDup struct {
	name int
	who  string // duplicates: the earlier owner; lost: the revoked owner
}

func newChaosTable() *chaosTable {
	return &chaosTable{owner: make(map[int]string), lost: make(map[chaosDup]bool)}
}

func (ct *chaosTable) granted(name int, who string) {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	if prev, ok := ct.owner[name]; ok {
		ct.dups = append(ct.dups, chaosDup{name, prev})
	}
	ct.owner[name] = who
}

// cleared records a release submission: the name may be re-granted from
// this moment on.
func (ct *chaosTable) cleared(name int, who string) {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	if ct.owner[name] == who {
		delete(ct.owner, name)
	}
}

// revoked records an OnGrantLost callback: the server took the name back
// from this session, so a grant that raced this notification was
// legitimate.
func (ct *chaosTable) revoked(name int, who string) {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	ct.lost[chaosDup{name, who}] = true
	if ct.owner[name] == who {
		delete(ct.owner, name)
	}
}

// duplicates reconciles the suspects against the revocations. Call it
// only after every session has settled — all reclaim passes done, all
// revocations delivered.
func (ct *chaosTable) duplicates() []string {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	var out []string
	for _, d := range ct.dups {
		if ct.lost[d] {
			continue // the earlier owner's grant was revoked: a re-grant, not a duplicate
		}
		out = append(out, fmt.Sprintf("name %d re-granted while still held by %s", d.name, d.who))
	}
	return out
}

// chaosRun executes the -chaos scenario end to end: proxies, daemons,
// session load, the schedule, the invariant checks, the drain.
func chaosRun(cfg *config) error {
	events, err := faultnet.Compile(cfg.chaos, cfg.chaosDur, cfg.chaosSeed)
	if err != nil {
		return err
	}
	if cfg.chaosPrint {
		for _, e := range events {
			fmt.Println(e)
		}
		return nil
	}
	fmt.Printf("blcluster: chaos schedule %q: seed %d, %d events over %v\n",
		cfg.chaos, cfg.chaosSeed, len(events), cfg.chaosDur)
	for _, e := range events {
		fmt.Printf("blcluster: chaos plan: %s\n", e)
	}

	// Every link gets its proxy before any daemon starts; proxies dial
	// their targets lazily, so order does not matter, but sessions must
	// only ever see proxied addresses.
	var proxies []*faultnet.Proxy
	defer func() {
		for _, p := range proxies {
			p.Close()
		}
	}()
	clientLinks := make([]*faultnet.Link, cfg.n)
	for i := 0; i < cfg.n; i++ {
		clientLinks[i] = faultnet.NewLink(fmt.Sprintf("client-%d", i))
		p, err := faultnet.NewProxy(cfg.chaosClientAddr(i), cfg.clientAddr(i), clientLinks[i])
		if err != nil {
			return fmt.Errorf("chaos: client proxy %d: %w", i, err)
		}
		proxies = append(proxies, p)
	}
	peerLinks := make([][]*faultnet.Link, cfg.n)
	for i := range peerLinks {
		peerLinks[i] = make([]*faultnet.Link, cfg.n)
		for j := 0; j < cfg.n; j++ {
			if j == i {
				continue
			}
			link := faultnet.NewLink(fmt.Sprintf("repl-%d->%d", i, j))
			p, err := faultnet.NewProxy(cfg.chaosPeerAddr(i, j), cfg.replAddr(j), link)
			if err != nil {
				return fmt.Errorf("chaos: peer proxy %d->%d: %w", i, j, err)
			}
			peerLinks[i][j] = link
			proxies = append(proxies, p)
		}
	}

	members := make([]*member, cfg.n)
	for i := 0; i < cfg.n; i++ {
		m, err := spawn(cfg, i, cfg.chaosPeerList(i))
		if err != nil {
			for _, prev := range members {
				if prev != nil {
					prev.cmd.Process.Kill()
					<-prev.done
				}
			}
			return fmt.Errorf("chaos: spawning node %d: %w", i, err)
		}
		members[i] = m
	}
	alive := func(i int) bool { return members[i].alive() }
	defer func() {
		for _, m := range members {
			if m.alive() {
				m.cmd.Process.Kill()
				<-m.done
			}
		}
	}()

	// The control plane — leader discovery, digest polling — dials the
	// daemons directly, outside the chaos: the harness must keep seeing
	// the cluster that the faulted clients cannot.
	leader, ok := awaitLeader(cfg, alive, 30*time.Second)
	if !ok {
		return fmt.Errorf("chaos: no leader elected within 30s")
	}
	fmt.Printf("blcluster: node %d is leader (%s)\n", leader, cfg.clientAddr(leader))
	follower := (leader + 1) % cfg.n

	// The pre-fault term anchors the election-disruption invariant: with
	// the hardening on, a scenario that never unseats a healthy leader
	// (follower flaps, a deafened follower) must end the run with zero
	// term movement anywhere in the cluster. The legacy differential and
	// leader-targeted scenarios report the movement without gating on it.
	preStats, err := nodeStats(cfg, leader)
	if err != nil {
		return fmt.Errorf("chaos: leader stats: %w", err)
	}
	termBefore := preStats.ReplTerm
	leaderHealthy := cfg.chaos == "flapping-follower" || cfg.chaos == "asymmetric-split"

	faultsFor := func(x int) *nodeFaults {
		nf := &nodeFaults{client: clientLinks[x], out: peerLinks[x], in: make([]*faultnet.Link, cfg.n)}
		for j := 0; j < cfg.n; j++ {
			if j != x {
				nf.in[j] = peerLinks[j][x]
			}
		}
		return nf
	}

	table := newChaosTable()
	sessionAddrs := make([]string, cfg.n)
	for i := range sessionAddrs {
		sessionAddrs[i] = cfg.chaosClientAddr(i)
	}
	sessionCfg := func(label string, seed uint64) namesvc.SessionConfig {
		return namesvc.SessionConfig{
			Addrs:          sessionAddrs,
			Client:         namesvc.ClientConfig{Timeout: 2 * time.Second},
			OpTimeout:      2 * time.Second,
			ConnectTimeout: 30 * time.Second,
			BackoffBase:    25 * time.Millisecond,
			BackoffMax:     500 * time.Millisecond,
			Seed:           seed,
			OnGrantLost:    func(client uint64, name int) { table.revoked(name, label) },
		}
	}

	// The holder session acquires before the first fault and holds across
	// every fault: its grants are the "every acknowledged grant is
	// accounted for" half of the invariant. A keepalive drives ops so the
	// session notices dead connections and self-heals without caller
	// traffic.
	holder, err := namesvc.DialSession(sessionCfg("holder", 1))
	if err != nil {
		return fmt.Errorf("chaos: dialing holder session: %w", err)
	}
	defer func() { holder.Close(); holder.Wait() }()
	for i := 0; i < chaosHolderGrants; i++ {
		g, err := holder.AcquireSync(uint64(101 + i))
		if err != nil {
			return fmt.Errorf("chaos: holder acquire %d: %w", i, err)
		}
		table.granted(g.Name, "holder")
	}
	// Baseline after the pre-fault acquires: redirects the holder takes
	// from here on happened under the schedule. On a healthy leader the
	// holder stays put, so any redirect means the leader bounced a read —
	// a revoked read lease — or leadership itself moved.
	holderBase := holder.Counters()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	churn := make([]*namesvc.Session, chaosChurnWorkers)
	for w := range churn {
		label := fmt.Sprintf("churn-%d", w)
		s, err := namesvc.DialSession(sessionCfg(label, uint64(10+w)))
		if err != nil {
			return fmt.Errorf("chaos: dialing %s: %w", label, err)
		}
		churn[w] = s
		defer func() { s.Close(); s.Wait() }()
		wg.Add(1)
		go func(s *namesvc.Session, label string, client uint64) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				client++
				g, err := s.AcquireSync(client)
				if err != nil {
					continue // timeouts and redirects during faults
				}
				table.granted(g.Name, label)
				table.cleared(g.Name, label) // free-at-release-submit
				s.ReleaseSync(g.Name)
			}
		}(s, label, uint64((w+1)*100000))
	}
	wg.Add(1)
	go func() { // holder keepalive
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(100 * time.Millisecond):
				holder.StatsSync()
			}
		}
	}()

	driver := faultnet.NewDriver(events, faultnet.ApplierFunc(func(e faultnet.Event) {
		x := leader
		if e.Target == "follower" {
			x = follower
		}
		nf := faultsFor(x)
		switch e.Action {
		case faultnet.ActPartition:
			nf.partition(e.OneWay)
		case faultnet.ActHeal:
			nf.heal()
		case faultnet.ActReset:
			nf.reset()
		case faultnet.ActLatency:
			nf.latency(e.Latency)
		case faultnet.ActRate:
			nf.rate(e.Rate)
		}
	}), func(format string, args ...any) {
		fmt.Printf("blcluster: "+format+"\n", args...)
	})
	driver.Run(nil)

	// Load rides past the final heal so fencing and catch-up happen under
	// traffic, then the churn drains.
	time.Sleep(time.Second)
	close(stop)
	wg.Wait()

	// Invariant: zero duplicate grants.
	dups := table.duplicates()
	fmt.Printf("blcluster: chaos invariant: duplicates: %d\n", len(dups))
	if len(dups) > 0 {
		for _, d := range dups {
			fmt.Fprintf(os.Stderr, "blcluster: chaos duplicate: %s\n", d)
		}
		return fmt.Errorf("chaos: %d duplicate grants", len(dups))
	}

	// Invariant: every pre-fault acknowledged grant is accounted for —
	// still held (reclaimed across every reconnect) and releasable, or
	// revoked by the server with the loss reported through OnGrantLost.
	// Nothing vanishes silently. Scenarios that never let a live leader
	// commit a dead connection's teardown releases (partition-leader cuts
	// the leader's peers and clients in the same instant) keep the revoked
	// count at zero.
	settleBy := time.Now().Add(20 * time.Second)
	for {
		if _, err := holder.StatsSync(); err == nil {
			break
		}
		if time.Now().After(settleBy) {
			return fmt.Errorf("chaos: holder session never re-reached a leader after the schedule")
		}
		time.Sleep(50 * time.Millisecond)
	}
	held := holder.Held()
	revoked := holder.Counters().Lost
	if uint64(len(held))+revoked != chaosHolderGrants {
		return fmt.Errorf("chaos: %d pre-fault grants unaccounted for: %d held + %d revoked, want %d",
			chaosHolderGrants-len(held)-int(revoked), len(held), revoked, chaosHolderGrants)
	}
	for name := range held {
		table.cleared(name, "holder")
		if err := holder.ReleaseSync(name); err != nil {
			return fmt.Errorf("chaos: releasing reclaimed grant %d: %w", name, err)
		}
	}
	fmt.Printf("blcluster: chaos invariant: %d pre-fault grants accounted for: %d reclaimed and released, %d revoked\n",
		chaosHolderGrants, len(held), revoked)

	// Churn stragglers — grants whose release timed out mid-fault — must
	// still be releasable through their own sessions (or revoked, in which
	// case OnGrantLost has already settled the accounting).
	var sess namesvc.SessionCounters
	for w, s := range churn {
		for name := range s.Held() {
			if err := s.ReleaseSync(name); err != nil {
				if _, still := s.Held()[name]; still {
					return fmt.Errorf("chaos: churn-%d releasing straggler %d: %w", w, name, err)
				}
			}
		}
		c := s.Counters()
		sess.Reconnects += c.Reconnects
		sess.Redirects += c.Redirects
		sess.Reclaimed += c.Reclaimed
		sess.Retries += c.Retries
		sess.Timeouts += c.Timeouts
	}
	hc := holder.Counters()
	sess.Reconnects += hc.Reconnects
	sess.Redirects += hc.Redirects
	sess.Reclaimed += hc.Reclaimed
	sess.Retries += hc.Retries
	sess.Timeouts += hc.Timeouts
	fmt.Printf("blcluster: chaos sessions: %d reconnects, %d redirects, %d reclaimed, %d retries, %d op timeouts\n",
		sess.Reconnects, sess.Redirects, sess.Reclaimed, sess.Retries, sess.Timeouts)

	// Invariant: election disruption. Terms are read through the control
	// plane, outside the chaos; the highest term anywhere in the cluster
	// minus the pre-fault term counts the elections the schedule forced.
	maxTerm := termBefore
	floors := make([]uint64, cfg.n)
	for i := 0; i < cfg.n; i++ {
		if !alive(i) {
			continue
		}
		st, err := nodeStats(cfg, i)
		if err != nil {
			return fmt.Errorf("chaos: node %d stats: %w", i, err)
		}
		fmt.Printf("blcluster: chaos node %d: term %d, %s, last election %q, compaction floor %d\n",
			i, st.ReplTerm, st.ReplRole, st.ElectionReason, st.CompactFloor)
		if st.ReplTerm > maxTerm {
			maxTerm = st.ReplTerm
		}
		floors[i] = st.CompactFloor
	}
	fmt.Printf("blcluster: chaos invariant: disruptive elections: %d (term %d -> %d)\n",
		maxTerm-termBefore, termBefore, maxTerm)
	postLeader, ok := findLeader(cfg, alive)
	if !ok {
		return fmt.Errorf("chaos: no leader after the schedule")
	}
	leaseRevocations := hc.Redirects - holderBase.Redirects
	fmt.Printf("blcluster: chaos invariant: lease revocations: %d\n", leaseRevocations)
	fmt.Printf("blcluster: chaos invariant: compaction floor: %d\n", floors[postLeader])
	if leaderHealthy && !cfg.legacyElections {
		switch {
		case maxTerm != termBefore:
			return fmt.Errorf("chaos: %d disruptive elections while the leader stayed healthy", maxTerm-termBefore)
		case postLeader != leader:
			return fmt.Errorf("chaos: leadership moved from node %d to node %d while the leader stayed healthy",
				leader, postLeader)
		case revoked != 0:
			return fmt.Errorf("chaos: %d holder grants revoked while the leader stayed healthy", revoked)
		case leaseRevocations != 0:
			return fmt.Errorf("chaos: the healthy leader bounced %d holder reads — its read lease lapsed", leaseRevocations)
		}
	}
	if cfg.retainRecords > 0 {
		if floors[postLeader] == 0 {
			return fmt.Errorf("chaos: compaction floor never advanced under -retain-records %d", cfg.retainRecords)
		}
		fmt.Printf("blcluster: chaos invariant: compaction floor advanced: %d\n", floors[postLeader])
	}

	// Invariant: every replica — the faulted node included — converges to
	// identical per-shard digests after heal.
	if err := awaitConvergence(cfg, alive, 30*time.Second); err != nil {
		return fmt.Errorf("chaos: %w", err)
	}

	fmt.Printf("blcluster: chaos: invariants hold (scenario %s, seed %d)\n", cfg.chaos, cfg.chaosSeed)
	if err := drainMembers(members); err != nil {
		return err
	}
	fmt.Println("blcluster: cluster shut down cleanly")
	return nil
}
