package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"net"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"ballsintoleaves/internal/namesvc"
)

func TestParseFlagsValidation(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name string
		args []string
	}{
		{"missing data-dir", nil},
		{"zero n", []string{"-n", "0", "-data-dir", "d"}},
		{"negative leader-wait", []string{"-leader", "-leader-wait", "-1s"}},
		{"unknown chaos scenario", []string{"-data-dir", "d", "-chaos", "nope"}},
		{"zero chaos duration", []string{"-data-dir", "d", "-chaos", "partition-leader", "-chaos-duration", "0s"}},
		{"chaos with kill script", []string{"-data-dir", "d", "-chaos", "partition-leader", "-kill-leader-after", "1s"}},
		{"chaos on too-small cluster", []string{"-data-dir", "d", "-chaos", "partition-leader", "-n", "2"}},
		{"chaos-print without chaos", []string{"-data-dir", "d", "-chaos-print"}},
		{"chaos proxy ports overflow", []string{"-data-dir", "d", "-chaos", "partition-leader", "-base-port", "65400"}},
	}
	for _, tc := range cases {
		if _, err := parseFlags(tc.args); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	if _, err := parseFlags([]string{"-h"}); !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("-h err = %v", err)
	}
	cfg, err := parseFlags([]string{"-data-dir", "d", "-chaos", "flapping-follower",
		"-chaos-duration", "9s", "-chaos-seed", "11"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.chaos != "flapping-follower" || cfg.chaosDur != 9*time.Second || cfg.chaosSeed != 11 {
		t.Fatalf("cfg = %+v", cfg)
	}
	// -chaos-print needs no data directory: nothing is spawned.
	if _, err := parseFlags([]string{"-chaos", "partition-leader", "-chaos-print"}); err != nil {
		t.Fatalf("-chaos-print rejected: %v", err)
	}
	// Chaos mode view wiring: each node sees itself at its real
	// replication address and every peer through its own outbound proxy,
	// with all client addresses proxied.
	cfg, err = parseFlags([]string{"-data-dir", "d", "-chaos", "partition-leader", "-base-port", "4000"})
	if err != nil {
		t.Fatal(err)
	}
	view := cfg.chaosPeerList(1)
	want := "127.0.0.1:4303=127.0.0.1:4200," + // node 0 via proxy 1->0
		"127.0.0.1:4101=127.0.0.1:4201," + // itself, real repl addr
		"127.0.0.1:4305=127.0.0.1:4202" // node 2 via proxy 1->2
	if view != want {
		t.Fatalf("chaosPeerList(1) = %q, want %q", view, want)
	}
}

// buildBinary compiles the package at pkgDir into dir and returns the
// binary's path.
func buildBinary(t *testing.T, dir, name, pkgDir string) string {
	t.Helper()
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skipf("go toolchain not on PATH: %v", err)
	}
	bin := filepath.Join(dir, name)
	out, err := exec.Command(goBin, "build", "-o", bin, pkgDir).CombinedOutput()
	if err != nil {
		t.Fatalf("go build %s: %v\n%s", pkgDir, err, out)
	}
	return bin
}

// freePorts grabs n distinct free TCP ports by binding and releasing
// them. The window between release and reuse is a benign race on
// loopback in CI.
func freePorts(t *testing.T, n int) []int {
	t.Helper()
	lns := make([]net.Listener, n)
	ports := make([]int, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		ports[i] = ln.Addr().(*net.TCPAddr).Port
	}
	for _, ln := range lns {
		ln.Close()
	}
	return ports
}

// node is one spawned blnamed cluster member under test control.
type node struct {
	cmd    *exec.Cmd
	addr   string // client address
	stderr *strings.Builder
	done   chan struct{} // closed when the process exits
	err    error         // Wait result, valid once done is closed
}

func (n *node) wait(t *testing.T, timeout time.Duration) error {
	t.Helper()
	select {
	case <-n.done:
		return n.err
	case <-time.After(timeout):
		t.Fatalf("node %s did not exit within %v", n.addr, timeout)
		return nil
	}
}

// startNode launches one blnamed -replicate member.
func startNode(t *testing.T, bin, dataDir, peers string, id int, clientAddr string) *node {
	t.Helper()
	cmd := exec.Command(bin,
		"-listen", clientAddr,
		"-shards", "2", "-shard-cap", "128", "-seed", "3", "-quiet",
		"-data-dir", filepath.Join(dataDir, fmt.Sprintf("node-%d", id)),
		"-fsync", "group", "-snapshot-every", "16",
		"-replicate", "-node-id", fmt.Sprint(id), "-peers", peers,
		"-election-timeout", "200ms")
	var errBuf strings.Builder
	cmd.Stderr = &errBuf
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	n := &node{cmd: cmd, addr: clientAddr, stderr: &errBuf, done: make(chan struct{})}
	go func() { n.err = cmd.Wait(); close(n.done) }()
	t.Cleanup(func() {
		select {
		case <-n.done:
		default:
			cmd.Process.Kill()
			<-n.done
		}
	})
	return n
}

// leaderOf polls the given client addresses until one reports itself
// leader in its welcome.
func leaderOf(t *testing.T, addrs []string, timeout time.Duration) int {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		for i, addr := range addrs {
			if addr == "" {
				continue
			}
			c, err := namesvc.Dial(addr, namesvc.ClientConfig{Timeout: time.Second})
			if err != nil {
				continue
			}
			role := c.Role()
			c.Close()
			if role == namesvc.RoleLeader {
				return i
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("no leader among %v within %v", addrs, timeout)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestKillLeaderFailover is the acceptance gate from the issue: kill -9
// the leader mid-epoch while live traffic runs, and require that a
// follower is elected, every acknowledged (quorum-committed) grant
// survives onto the new leader, nothing is ever double-granted, and the
// surviving replicas end byte-identical.
func TestKillLeaderFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills real processes")
	}
	t.Parallel()
	scratch := t.TempDir()
	bin := buildBinary(t, scratch, "blnamed", "../blnamed")

	ports := freePorts(t, 6)
	clientAddrs := make([]string, 3)
	peers := make([]string, 3)
	for i := 0; i < 3; i++ {
		clientAddrs[i] = fmt.Sprintf("127.0.0.1:%d", ports[i])
		peers[i] = fmt.Sprintf("127.0.0.1:%d=%s", ports[3+i], clientAddrs[i])
	}
	peerList := strings.Join(peers, ",")
	nodes := make([]*node, 3)
	for i := 0; i < 3; i++ {
		nodes[i] = startNode(t, bin, scratch, peerList, i, clientAddrs[i])
	}

	leader := leaderOf(t, clientAddrs, 30*time.Second)

	// Live load: two closed-loop workers acquiring names on separate
	// connections. Every grant they see acknowledged was quorum-committed
	// before delivery — that is the commit rule under test.
	var mu sync.Mutex
	granted := make(map[int]uint64) // name -> client; no releases, so every name is granted at most once
	var workers sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 2; w++ {
		workers.Add(1)
		go func(base uint64) {
			defer workers.Done()
			c, err := namesvc.Dial(clientAddrs[leader], namesvc.ClientConfig{Timeout: 5 * time.Second})
			if err != nil {
				t.Errorf("worker dial: %v", err)
				return
			}
			defer c.Close()
			for client := base; ; client++ {
				g, err := c.AcquireSync(client)
				if err != nil {
					return // the kill severed the connection; acknowledged grants stand
				}
				mu.Lock()
				prev, dup := granted[g.Name]
				granted[g.Name] = client
				mu.Unlock()
				if dup {
					t.Errorf("name %d granted to client %d while held by %d", g.Name, client, prev)
				}
				select {
				case <-stop:
					return
				default:
				}
			}
		}(uint64(1 + w*1_000_000))
	}

	// Let the cluster commit a body of grants, then kill the leader with
	// no warning — mid-epoch, with acquires still in flight.
	deadline := time.Now().Add(15 * time.Second)
	for {
		mu.Lock()
		n := len(granted)
		mu.Unlock()
		if n >= 40 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d grants before kill deadline", n)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := nodes[leader].cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	nodes[leader].wait(t, 10*time.Second)
	close(stop)
	workers.Wait()
	survivors := make([]string, 3)
	copy(survivors, clientAddrs)
	survivors[leader] = ""

	// Failover: a survivor must take over.
	next := leaderOf(t, survivors, 30*time.Second)
	if next == leader {
		t.Fatalf("dead node %d reported as leader", next)
	}

	// Every acknowledged grant survives: its name is still held by its
	// client on the new leader, provable via the reclaim handshake (the
	// granting connection died with the old leader).
	c, err := namesvc.Dial(clientAddrs[next], namesvc.ClientConfig{Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	mu.Lock()
	held := make(map[int]uint64, len(granted))
	for name, client := range granted {
		held[name] = client
	}
	mu.Unlock()
	for name, client := range held {
		if err := c.ReclaimSync(client, name); err != nil {
			t.Fatalf("grant of name %d to client %d was acknowledged but lost: %v", name, client, err)
		}
	}

	// The new leader must not double-grant a surviving name.
	for client := uint64(5_000_000); client < 5_000_020; client++ {
		g, err := c.AcquireSync(client)
		if err != nil {
			t.Fatalf("acquire on new leader: %v", err)
		}
		if owner, dup := held[g.Name]; dup {
			t.Fatalf("name %d granted to client %d while held by %d across the failover", g.Name, client, owner)
		}
	}

	// Surviving replicas converge to identical per-shard digests.
	other := 3 - leader - next
	convergeBy := time.Now().Add(10 * time.Second)
	for {
		a, errA := statsOf(clientAddrs[next])
		b, errB := statsOf(clientAddrs[other])
		if errA == nil && errB == nil && digestsEqual(a.Digests, b.Digests) {
			break
		}
		if time.Now().After(convergeBy) {
			t.Fatalf("survivor digests diverge: leader %v vs follower %v (%v, %v)",
				a.Digests, b.Digests, errA, errB)
		}
		time.Sleep(50 * time.Millisecond)
	}
	c.Close()

	// Clean drain: both survivors exit 0 and report their replication
	// role and committed index (the SIGTERM drain line under test).
	for _, i := range []int{next, other} {
		if err := nodes[i].cmd.Process.Signal(syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
		if err := nodes[i].wait(t, 30*time.Second); err != nil {
			t.Fatalf("node %d drain: %v\nstderr:\n%s", i, err, nodes[i].stderr.String())
		}
		if got := nodes[i].stderr.String(); !strings.Contains(got, "replication: drained as") {
			t.Fatalf("node %d drain log missing replication status:\n%s", i, got)
		}
	}
}

// TestChaosPrintDeterminism: -chaos-print is the CI determinism gate —
// two compilations of the same (scenario, duration, seed) must print the
// same schedule, byte for byte, and the schedule must end healed.
func TestChaosPrintDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a real binary")
	}
	t.Parallel()
	scratch := t.TempDir()
	blcluster := buildBinary(t, scratch, "blcluster", ".")
	args := []string{"-chaos", "flapping-follower", "-chaos-duration", "30s",
		"-chaos-seed", "9", "-chaos-print"}
	first, err := exec.Command(blcluster, args...).Output()
	if err != nil {
		t.Fatalf("first -chaos-print run: %v", err)
	}
	second, err := exec.Command(blcluster, args...).Output()
	if err != nil {
		t.Fatalf("second -chaos-print run: %v", err)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("same seed printed different schedules:\n%s\n---\n%s", first, second)
	}
	lines := strings.Split(strings.TrimSpace(string(first)), "\n")
	if len(lines) < 6 {
		t.Fatalf("flapping-follower compiled only %d events:\n%s", len(lines), first)
	}
	if !strings.Contains(string(first), "partition follower") {
		t.Fatalf("schedule missing its partitions:\n%s", first)
	}
	if last := lines[len(lines)-1]; !strings.Contains(last, "heal follower") {
		t.Fatalf("schedule does not end healed: %q", last)
	}
}

// TestChaosEndToEnd runs the blcluster binary through a full chaos
// scenario: a 3-node cluster behind faultnet proxies, the compiled
// partition-leader schedule cutting the leader off mid-load while Session
// clients churn, and the end-of-run invariant checker. Exit 0 with every
// invariant line logged.
func TestChaosEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs real processes")
	}
	t.Parallel()
	scratch := t.TempDir()
	blnamed := buildBinary(t, scratch, "blnamed", "../blnamed")
	blcluster := buildBinary(t, scratch, "blcluster", ".")

	// Chaos mode for n=3 needs the daemon ports plus both proxy ranges
	// free: clients at +0..2, repl at +100..102, client proxies at
	// +200..202, peer proxies at +300+i*3+j.
	offsets := []int{0, 1, 2, 100, 101, 102, 200, 201, 202, 301, 302, 303, 305, 306, 307}
	var base int
	for attempt := 0; ; attempt++ {
		base = freePorts(t, 1)[0]
		if base+chaosPeerProxyOffset+9 > 65536 {
			continue
		}
		ok := true
		for _, off := range offsets {
			ln, err := net.Listen("tcp", fmt.Sprintf("127.0.0.1:%d", base+off))
			if err != nil {
				ok = false
				break
			}
			ln.Close()
		}
		if ok {
			break
		}
		if attempt > 20 {
			t.Fatal("no free port range for chaos mode")
		}
	}

	cmd := exec.Command(blcluster,
		"-blnamed", blnamed, "-n", "3", "-base-port", fmt.Sprint(base),
		"-data-dir", filepath.Join(scratch, "chaos"),
		"-shards", "2", "-shard-cap", "128", "-seed", "7",
		"-election-timeout", "200ms",
		"-chaos", "partition-leader", "-chaos-duration", "6s", "-chaos-seed", "5")
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	var exitErr error
	done := make(chan struct{})
	go func() { exitErr = cmd.Wait(); close(done) }()
	t.Cleanup(func() {
		select {
		case <-done:
		default:
			cmd.Process.Kill()
			<-done
		}
	})
	select {
	case <-done:
		if exitErr != nil {
			t.Fatalf("blcluster -chaos exited %v\noutput:\n%s", exitErr, out.String())
		}
	case <-time.After(120 * time.Second):
		t.Fatalf("blcluster -chaos did not finish\noutput so far:\n%s", out.String())
	}
	for _, milestone := range []string{
		"chaos plan:", "is leader",
		"chaos: t=+1.5s partition leader", "chaos: t=+3.6s heal leader",
		"chaos invariant: duplicates: 0",
		"chaos invariant: 16 pre-fault grants accounted for: 16 reclaimed and released, 0 revoked",
		"digests converged", "chaos: invariants hold",
		"cluster shut down cleanly",
	} {
		if !strings.Contains(out.String(), milestone) {
			t.Fatalf("chaos output missing %q:\n%s", milestone, out.String())
		}
	}
}

func statsOf(addr string) (namesvc.Stats, error) {
	c, err := namesvc.Dial(addr, namesvc.ClientConfig{Timeout: 2 * time.Second})
	if err != nil {
		return namesvc.Stats{}, err
	}
	defer c.Close()
	return c.StatsSync()
}

func digestsEqual(a, b []uint64) bool {
	if len(a) != len(b) || len(a) == 0 {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestLauncherEndToEnd runs the blcluster binary itself through its
// scripted fault-injection path: elect, kill the leader, fail over,
// converge, drain — exit 0 with each milestone logged. The -leader query
// mode is probed while the cluster is up.
func TestLauncherEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills real processes")
	}
	t.Parallel()
	scratch := t.TempDir()
	blnamed := buildBinary(t, scratch, "blnamed", "../blnamed")
	blcluster := buildBinary(t, scratch, "blcluster", ".")

	// The launcher derives peer ports as base+100+i, so probe until a
	// base with both ranges free is found.
	var base int
	for attempt := 0; ; attempt++ {
		base = freePorts(t, 1)[0]
		if base+replPortOffset+3 > 65536 {
			continue
		}
		ok := true
		for _, p := range []int{base, base + 1, base + 2, base + replPortOffset, base + replPortOffset + 1, base + replPortOffset + 2} {
			ln, err := net.Listen("tcp", fmt.Sprintf("127.0.0.1:%d", p))
			if err != nil {
				ok = false
				break
			}
			ln.Close()
		}
		if ok {
			break
		}
		if attempt > 20 {
			t.Fatal("no free port range for the launcher")
		}
	}

	cmd := exec.Command(blcluster,
		"-blnamed", blnamed, "-n", "3", "-base-port", fmt.Sprint(base),
		"-data-dir", filepath.Join(scratch, "cluster"),
		"-shards", "2", "-shard-cap", "64", "-seed", "7",
		"-election-timeout", "200ms",
		"-kill-leader-after", "2s", "-run-for", "8s")
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	var exitErr error
	done := make(chan struct{})
	go func() { exitErr = cmd.Wait(); close(done) }()
	t.Cleanup(func() {
		select {
		case <-done:
		default:
			cmd.Process.Kill()
			<-done
		}
	})

	// While it runs, the query mode must name one of the three client
	// addresses as leader.
	queryBy := time.Now().Add(20 * time.Second)
	for {
		q := exec.Command(blcluster, "-leader", "-n", "3", "-base-port", fmt.Sprint(base))
		qOut, err := q.Output()
		if err == nil {
			addr := strings.TrimSpace(string(qOut))
			want := map[string]bool{}
			for i := 0; i < 3; i++ {
				want[fmt.Sprintf("127.0.0.1:%d", base+i)] = true
			}
			if !want[addr] {
				t.Fatalf("-leader printed %q, not a member client address", addr)
			}
			break
		}
		if time.Now().After(queryBy) {
			t.Fatal("-leader query never succeeded")
		}
		time.Sleep(200 * time.Millisecond)
	}

	select {
	case <-done:
		if exitErr != nil {
			t.Fatalf("blcluster exited %v\noutput:\n%s", exitErr, out.String())
		}
	case <-time.After(90 * time.Second):
		t.Fatalf("blcluster did not finish\noutput so far:\n%s", out.String())
	}
	for _, milestone := range []string{
		"is leader", "killing leader node", "failover complete",
		"digests converged", "cluster shut down cleanly",
	} {
		if !strings.Contains(out.String(), milestone) {
			t.Fatalf("launcher output missing %q:\n%s", milestone, out.String())
		}
	}
}
