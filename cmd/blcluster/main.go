// Command blcluster launches and supervises a localhost blnamed
// replication cluster: n daemons (cmd/blnamed -replicate), each with its
// own data directory, client port, and replication port, wired into one
// peer list. It is the scripted-fault-injection harness for the
// replication layer (internal/namesvc/repl): it waits for the first
// election, optionally kills the elected leader mid-life with SIGKILL
// (-kill-leader-after), verifies a survivor takes over, and checks that
// every live replica converges to identical per-shard digests before the
// final drain.
//
// Run a three-node cluster, kill the leader six seconds in, and shut the
// survivors down cleanly after twenty:
//
//	blcluster -blnamed ./blnamed -n 3 -base-port 4750 -data-dir /tmp/cluster \
//	    -kill-leader-after 6s -run-for 20s
//
// Node i serves clients on base-port+i and peers on base-port+100+i.
// While the cluster runs, a second blcluster invocation with -leader
// prints the current leader's client address on stdout (for pointing
// blload at the write endpoint) and every member's replication view —
// term, role, last-election reason, compaction floor — on stderr. The
// query retries with backoff for up to -leader-wait
// while an election is in flight, so scripts can call it right after
// cluster start without racing the first election:
//
//	blload -connect "$(blcluster -leader -n 3 -base-port 4750)" -duration 5s
//
// -chaos <scenario> switches to the chaos lab: every link — client and
// peer — is routed through an in-process faultnet proxy, a
// seed-deterministic fault schedule (internal/faultnet) is compiled and
// driven against the elected leader or a follower, self-healing
// namesvc.Session clients churn grants throughout, and an end-of-run
// checker enforces the chaos invariants: zero duplicate grants, every
// pre-fault acknowledged grant reclaimed on the post-fault leader, and
// byte-identical replica digests after heal. -chaos-print prints the
// compiled schedule without spawning anything, so CI can diff two
// compilations of the same seed:
//
//	blcluster -blnamed ./blnamed -n 3 -data-dir /tmp/chaos \
//	    -chaos partition-leader -chaos-duration 20s -chaos-seed 7
//
// Exit status is 0 only if every scripted step succeeded: the election,
// the failover (when a kill was scheduled), digest convergence across the
// survivors, and a clean SIGTERM drain of every remaining daemon.
package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"ballsintoleaves/internal/faultnet"
	"ballsintoleaves/internal/namesvc"
)

// errFlagsReported marks parse failures the FlagSet already printed.
var errFlagsReported = errors.New("flag parsing failed")

// replPortOffset separates a node's replication port from its client
// port: node i peers on basePort+replPortOffset+i.
const replPortOffset = 100

// config is the parsed and validated command line.
type config struct {
	n               int
	basePort        int
	host            string
	dataDir         string
	blnamed         string
	shards          int
	shardCap        int
	seed            uint64
	fsync           string
	snapshotEvery   int
	electionTimeout time.Duration
	legacyElections bool
	retainRecords   int
	killLeaderAfter time.Duration
	runFor          time.Duration
	leaderQuery     bool
	leaderWait      time.Duration
	chaos           string
	chaosDur        time.Duration
	chaosSeed       uint64
	chaosPrint      bool
}

// parseFlags parses args into a validated config.
func parseFlags(args []string) (*config, error) {
	fs := flag.NewFlagSet("blcluster", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	cfg := &config{}
	fs.IntVar(&cfg.n, "n", 3, "cluster size (quorum is n/2+1)")
	fs.IntVar(&cfg.basePort, "base-port", 4750,
		"node i serves clients on base-port+i and peers on base-port+100+i")
	fs.StringVar(&cfg.host, "host", "127.0.0.1", "address every listener binds")
	fs.StringVar(&cfg.dataDir, "data-dir", "",
		"root directory; node i persists under <data-dir>/node-<i> (required unless -leader)")
	fs.StringVar(&cfg.blnamed, "blnamed", "blnamed", "path to the blnamed binary")
	fs.IntVar(&cfg.shards, "shards", 2, "namespace shards per daemon")
	fs.IntVar(&cfg.shardCap, "shard-cap", 1024, "names per shard")
	fs.Uint64Var(&cfg.seed, "seed", 0, "seed driving every epoch's renaming randomness")
	fs.StringVar(&cfg.fsync, "fsync", "group", "WAL flush policy passed to every daemon")
	fs.IntVar(&cfg.snapshotEvery, "snapshot-every", 4096,
		"checkpoint a shard after this many WAL records")
	fs.DurationVar(&cfg.electionTimeout, "election-timeout", 300*time.Millisecond,
		"follower patience before campaigning")
	fs.BoolVar(&cfg.legacyElections, "legacy-elections", false,
		"run every daemon with pre-vote/check-quorum/read-lease hardening disabled (the chaos before/after differential)")
	fs.IntVar(&cfg.retainRecords, "retain-records", 0,
		"cap every leader's replication-record backlog (0 = daemon default)")
	fs.DurationVar(&cfg.killLeaderAfter, "kill-leader-after", 0,
		"SIGKILL the elected leader this long after the first election (0 = never)")
	fs.DurationVar(&cfg.runFor, "run-for", 0,
		"shut the cluster down cleanly after this long (0 = run until SIGINT/SIGTERM)")
	fs.BoolVar(&cfg.leaderQuery, "leader", false,
		"query mode: print the current leader's client address and exit (no daemons spawned)")
	fs.DurationVar(&cfg.leaderWait, "leader-wait", 10*time.Second,
		"-leader: keep retrying with backoff this long while an election is in flight (0 = single attempt)")
	fs.StringVar(&cfg.chaos, "chaos", "",
		"chaos mode: drive this named fault scenario against the cluster ("+strings.Join(faultnet.Scenarios(), ", ")+")")
	fs.DurationVar(&cfg.chaosDur, "chaos-duration", 20*time.Second,
		"length of the compiled chaos schedule")
	fs.Uint64Var(&cfg.chaosSeed, "chaos-seed", 1,
		"seed the chaos schedule is compiled from (same seed, same fault sequence)")
	fs.BoolVar(&cfg.chaosPrint, "chaos-print", false,
		"print the compiled chaos schedule and exit (no daemons spawned)")
	if err := fs.Parse(args); err != nil {
		return nil, errors.Join(errFlagsReported, err)
	}
	switch {
	case cfg.n < 1:
		return nil, fmt.Errorf("blcluster: -n must be >= 1, got %d", cfg.n)
	case cfg.basePort < 1 || cfg.basePort+replPortOffset+cfg.n > 65536:
		return nil, fmt.Errorf("blcluster: -base-port %d leaves no room for %d client and peer ports",
			cfg.basePort, cfg.n)
	case cfg.n > replPortOffset:
		return nil, fmt.Errorf("blcluster: -n must be <= %d (client and peer port ranges would collide)", replPortOffset)
	case !cfg.leaderQuery && !cfg.chaosPrint && cfg.dataDir == "":
		return nil, fmt.Errorf("blcluster: -data-dir is required")
	case cfg.shards < 1:
		return nil, fmt.Errorf("blcluster: -shards must be >= 1, got %d", cfg.shards)
	case cfg.shardCap < 1:
		return nil, fmt.Errorf("blcluster: -shard-cap must be >= 1, got %d", cfg.shardCap)
	case cfg.snapshotEvery < 1:
		return nil, fmt.Errorf("blcluster: -snapshot-every must be >= 1, got %d", cfg.snapshotEvery)
	case cfg.electionTimeout <= 0:
		return nil, fmt.Errorf("blcluster: -election-timeout must be positive, got %v", cfg.electionTimeout)
	case cfg.killLeaderAfter < 0 || cfg.runFor < 0:
		return nil, fmt.Errorf("blcluster: -kill-leader-after and -run-for must be >= 0")
	case cfg.retainRecords < 0:
		return nil, fmt.Errorf("blcluster: -retain-records must be >= 0, got %d", cfg.retainRecords)
	case cfg.leaderWait < 0:
		return nil, fmt.Errorf("blcluster: -leader-wait must be >= 0, got %v", cfg.leaderWait)
	case cfg.chaosPrint && cfg.chaos == "":
		return nil, fmt.Errorf("blcluster: -chaos-print requires -chaos")
	}
	if cfg.chaos != "" {
		known := false
		for _, s := range faultnet.Scenarios() {
			if s == cfg.chaos {
				known = true
				break
			}
		}
		switch {
		case !known:
			return nil, fmt.Errorf("blcluster: unknown -chaos scenario %q (have %s)",
				cfg.chaos, strings.Join(faultnet.Scenarios(), ", "))
		case cfg.chaosDur <= 0:
			return nil, fmt.Errorf("blcluster: -chaos-duration must be positive, got %v", cfg.chaosDur)
		case cfg.killLeaderAfter > 0:
			return nil, fmt.Errorf("blcluster: -chaos and -kill-leader-after are mutually exclusive fault scripts")
		case cfg.n < 3:
			return nil, fmt.Errorf("blcluster: -chaos needs -n >= 3 (a majority must survive the partitioned node)")
		case cfg.basePort+chaosPeerProxyOffset+cfg.n*cfg.n > 65536:
			return nil, fmt.Errorf("blcluster: -base-port %d leaves no room for %d nodes' chaos proxy ports",
				cfg.basePort, cfg.n)
		}
	}
	return cfg, nil
}

func (cfg *config) clientAddr(i int) string {
	return fmt.Sprintf("%s:%d", cfg.host, cfg.basePort+i)
}

func (cfg *config) replAddr(i int) string {
	return fmt.Sprintf("%s:%d", cfg.host, cfg.basePort+replPortOffset+i)
}

// peerList is the -peers value shared verbatim by every member.
func (cfg *config) peerList() string {
	members := make([]string, cfg.n)
	for i := range members {
		members[i] = cfg.replAddr(i) + "=" + cfg.clientAddr(i)
	}
	return strings.Join(members, ",")
}

// findLeader dials every live member and reports which one's welcome
// claims leadership.
func findLeader(cfg *config, alive func(int) bool) (int, bool) {
	for i := 0; i < cfg.n; i++ {
		if alive != nil && !alive(i) {
			continue
		}
		c, err := namesvc.Dial(cfg.clientAddr(i), namesvc.ClientConfig{Timeout: 2 * time.Second})
		if err != nil {
			continue
		}
		role := c.Role()
		c.Close()
		if role == namesvc.RoleLeader {
			return i, true
		}
	}
	return -1, false
}

// queryLeader serves the -leader query: it retries findLeader with
// exponential backoff for up to -leader-wait, because a query issued
// right after cluster start (or right after a leader death) races the
// election window — the first answer is often a follower's, and failing
// on it makes every calling script carry its own retry loop.
func queryLeader(cfg *config) (int, bool) {
	deadline := time.Now().Add(cfg.leaderWait)
	backoff := 50 * time.Millisecond
	for {
		if i, ok := findLeader(cfg, nil); ok {
			return i, true
		}
		if cfg.leaderWait == 0 || !time.Now().Add(backoff).Before(deadline) {
			return -1, false
		}
		time.Sleep(backoff)
		if backoff *= 2; backoff > time.Second {
			backoff = time.Second
		}
	}
}

// awaitLeader polls findLeader until a leader appears or the deadline
// passes.
func awaitLeader(cfg *config, alive func(int) bool, timeout time.Duration) (int, bool) {
	deadline := time.Now().Add(timeout)
	for {
		if i, ok := findLeader(cfg, alive); ok {
			return i, true
		}
		if time.Now().After(deadline) {
			return -1, false
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// nodeStats fetches one member's full stats reply.
func nodeStats(cfg *config, i int) (namesvc.Stats, error) {
	c, err := namesvc.Dial(cfg.clientAddr(i), namesvc.ClientConfig{Timeout: 2 * time.Second})
	if err != nil {
		return namesvc.Stats{}, err
	}
	defer c.Close()
	return c.StatsSync()
}

// printReplDetail writes each reachable member's replication view —
// term, role, why its last term or role change happened, and its
// compaction floor — to stderr. Stdout stays the leader address alone:
// that is the contract scripts substitute into blload's -connect.
func printReplDetail(cfg *config) {
	for i := 0; i < cfg.n; i++ {
		st, err := nodeStats(cfg, i)
		if err != nil {
			fmt.Fprintf(os.Stderr, "blcluster: node %d: unreachable: %v\n", i, err)
			continue
		}
		fmt.Fprintf(os.Stderr, "blcluster: node %d: term %d, %s, last election %q, compaction floor %d\n",
			i, st.ReplTerm, st.ReplRole, st.ElectionReason, st.CompactFloor)
	}
}

// digests fetches one member's per-shard digest vector.
func digests(cfg *config, i int) ([]uint64, error) {
	st, err := nodeStats(cfg, i)
	if err != nil {
		return nil, err
	}
	return st.Digests, nil
}

// awaitConvergence polls every live member until all report identical
// per-shard digests.
func awaitConvergence(cfg *config, alive func(int) bool, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		var want []uint64
		ok, live := true, 0
		for i := 0; i < cfg.n && ok; i++ {
			if !alive(i) {
				continue
			}
			live++
			got, err := digests(cfg, i)
			if err != nil {
				ok = false
				break
			}
			if want == nil {
				want = got
				continue
			}
			if len(got) != len(want) {
				ok = false
				break
			}
			for s := range want {
				if got[s] != want[s] {
					ok = false
					break
				}
			}
		}
		if ok && live > 0 {
			fmt.Printf("blcluster: digests converged across %d replica(s): %s\n", live, digestString(want))
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("replicas did not converge within %v", timeout)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func digestString(ds []uint64) string {
	parts := make([]string, len(ds))
	for i, d := range ds {
		parts[i] = fmt.Sprintf("%016x", d)
	}
	return strings.Join(parts, " ")
}

// member is one supervised blnamed process.
type member struct {
	cmd    *exec.Cmd
	done   chan struct{} // closed when the process exits
	err    error         // Wait result, valid after done
	killed bool          // SIGKILLed by the fault script
}

// spawn starts node i with the given -peers view and forwards its output
// line by line, prefixed. Every member of a plain cluster shares the
// canonical peer list; chaos mode hands each node its own view routing
// peers through that node's outbound fault proxies.
func spawn(cfg *config, i int, peers string) (*member, error) {
	dir := filepath.Join(cfg.dataDir, fmt.Sprintf("node-%d", i))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	args := []string{
		"-listen", cfg.clientAddr(i),
		"-shards", fmt.Sprint(cfg.shards),
		"-shard-cap", fmt.Sprint(cfg.shardCap),
		"-seed", fmt.Sprint(cfg.seed),
		"-quiet",
		"-data-dir", dir,
		"-fsync", cfg.fsync,
		"-snapshot-every", fmt.Sprint(cfg.snapshotEvery),
		"-replicate",
		"-node-id", fmt.Sprint(i),
		"-peers", peers,
		"-election-timeout", cfg.electionTimeout.String(),
	}
	if cfg.legacyElections {
		args = append(args, "-legacy-elections")
	}
	if cfg.retainRecords > 0 {
		args = append(args, "-retain-records", fmt.Sprint(cfg.retainRecords))
	}
	cmd := exec.Command(cfg.blnamed, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	cmd.Stderr = cmd.Stdout // interleave; both streams get the prefix
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	m := &member{cmd: cmd, done: make(chan struct{})}
	go func() {
		buf := make([]byte, 0, 4096)
		rd := make([]byte, 4096)
		for {
			n, err := stdout.Read(rd)
			buf = append(buf, rd[:n]...)
			for {
				nl := bytes.IndexByte(buf, '\n')
				if nl < 0 {
					break
				}
				fmt.Fprintf(os.Stderr, "blcluster: node %d: %s\n", i, buf[:nl])
				buf = buf[nl+1:]
			}
			if err != nil {
				if len(buf) > 0 {
					fmt.Fprintf(os.Stderr, "blcluster: node %d: %s\n", i, buf)
				}
				break
			}
		}
		m.err = cmd.Wait()
		close(m.done)
	}()
	return m, nil
}

func (m *member) alive() bool {
	select {
	case <-m.done:
		return false
	default:
		return true
	}
}

func run(cfg *config) error {
	members := make([]*member, cfg.n)
	for i := 0; i < cfg.n; i++ {
		m, err := spawn(cfg, i, cfg.peerList())
		if err != nil {
			for _, prev := range members {
				if prev != nil {
					prev.cmd.Process.Kill()
					<-prev.done
				}
			}
			return fmt.Errorf("spawning node %d: %w", i, err)
		}
		members[i] = m
	}
	alive := func(i int) bool { return members[i].alive() }
	defer func() {
		for _, m := range members {
			if m.alive() {
				m.cmd.Process.Kill()
				<-m.done
			}
		}
	}()

	leader, ok := awaitLeader(cfg, alive, 30*time.Second)
	if !ok {
		return fmt.Errorf("no leader elected within 30s")
	}
	fmt.Printf("blcluster: node %d is leader (%s)\n", leader, cfg.clientAddr(leader))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	var killTimer, stopTimer <-chan time.Time
	if cfg.killLeaderAfter > 0 {
		killTimer = time.After(cfg.killLeaderAfter)
	}
	if cfg.runFor > 0 {
		stopTimer = time.After(cfg.runFor)
	}

	for done := false; !done; {
		select {
		case <-killTimer:
			killTimer = nil
			victim, ok := findLeader(cfg, alive)
			if !ok {
				return fmt.Errorf("kill scheduled but no leader found")
			}
			fmt.Printf("blcluster: killing leader node %d (SIGKILL, no drain)\n", victim)
			members[victim].killed = true
			members[victim].cmd.Process.Kill()
			<-members[victim].done
			next, ok := awaitLeader(cfg, alive, 30*time.Second)
			if !ok {
				return fmt.Errorf("no failover: survivors elected no leader within 30s")
			}
			fmt.Printf("blcluster: failover complete: node %d leads (%s)\n", next, cfg.clientAddr(next))
		case <-stopTimer:
			done = true
		case <-sig:
			done = true
		}
	}

	// Every survivor must hold identical state before the drain.
	if err := awaitConvergence(cfg, alive, 15*time.Second); err != nil {
		return err
	}

	if err := drainMembers(members); err != nil {
		return err
	}
	fmt.Println("blcluster: cluster shut down cleanly")
	return nil
}

// drainMembers SIGTERMs every live member and waits out their clean
// exits; members the fault script killed are skipped. The first problem —
// a premature exit, a drain timeout, a nonzero drain status — is the
// returned error.
func drainMembers(members []*member) error {
	var firstErr error
	for i, m := range members {
		if !m.alive() {
			if !m.killed && firstErr == nil {
				firstErr = fmt.Errorf("node %d exited prematurely: %v", i, m.err)
			}
			continue
		}
		m.cmd.Process.Signal(syscall.SIGTERM)
	}
	for i, m := range members {
		if m.killed {
			continue
		}
		select {
		case <-m.done:
		case <-time.After(30 * time.Second):
			return fmt.Errorf("node %d did not drain within 30s of SIGTERM", i)
		}
		if m.err != nil && firstErr == nil {
			firstErr = fmt.Errorf("node %d drain: %v", i, m.err)
		}
	}
	return firstErr
}

func main() {
	cfg, err := parseFlags(os.Args[1:])
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(0)
		}
		if !errors.Is(err, errFlagsReported) {
			fmt.Fprintln(os.Stderr, err)
		}
		os.Exit(2)
	}
	if cfg.leaderQuery {
		i, ok := queryLeader(cfg)
		if !ok {
			fmt.Fprintf(os.Stderr, "blcluster: no leader found within %v\n", cfg.leaderWait)
			os.Exit(1)
		}
		printReplDetail(cfg)
		fmt.Println(cfg.clientAddr(i))
		return
	}
	if cfg.chaos != "" {
		if err := chaosRun(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "blcluster: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if err := run(cfg); err != nil {
		fmt.Fprintf(os.Stderr, "blcluster: %v\n", err)
		os.Exit(1)
	}
}
