package main

import (
	"errors"
	"flag"
	"net"
	"testing"
	"time"

	"ballsintoleaves/internal/namesvc"
)

func TestParseFlagsValidation(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name string
		args []string
	}{
		{"missing listen", nil},
		{"bad runner", []string{"-listen", ":0", "-runner", "warp"}},
		{"zero shards", []string{"-listen", ":0", "-shards", "0"}},
		{"zero shard-cap", []string{"-listen", ":0", "-shard-cap", "0"}},
		{"negative journal-limit", []string{"-listen", ":0", "-journal-limit", "-1"}},
		{"negative max-outstanding", []string{"-listen", ":0", "-max-outstanding", "-1"}},
		{"negative max-conn-queue", []string{"-listen", ":0", "-max-conn-queue", "-1"}},
		{"zero snapshot-every", []string{"-listen", ":0", "-snapshot-every", "0"}},
		{"bad fsync", []string{"-listen", ":0", "-fsync", "sometimes"}},
		{"negative fsync interval", []string{"-listen", ":0", "-fsync", "-5ms"}},
		{"replicate without peers", []string{"-listen", ":0", "-replicate", "-data-dir", "/tmp/x"}},
		{"replicate without data-dir", []string{"-listen", ":0", "-replicate",
			"-peers", "a:1=a:2,b:1=b:2,c:1=c:2"}},
		{"malformed peers member", []string{"-listen", ":0", "-replicate", "-data-dir", "/tmp/x",
			"-peers", "a:1=a:2,b:1"}},
		{"node-id outside peers", []string{"-listen", ":0", "-replicate", "-data-dir", "/tmp/x",
			"-peers", "a:1=a:2,b:1=b:2,c:1=c:2", "-node-id", "3"}},
		{"zero election timeout", []string{"-listen", ":0", "-replicate", "-data-dir", "/tmp/x",
			"-peers", "a:1=a:2,b:1=b:2,c:1=c:2", "-election-timeout", "0s"}},
		{"peers without replicate", []string{"-listen", ":0", "-peers", "a:1=a:2"}},
	}
	for _, tc := range cases {
		if _, err := parseFlags(tc.args); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	if _, err := parseFlags([]string{"-h"}); !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("-h err = %v", err)
	}
	cfg, err := parseFlags([]string{"-listen", "127.0.0.1:0", "-shards", "4", "-shard-cap", "64",
		"-seed", "9", "-epoch", "1ms", "-runner", "transport", "-quiet",
		"-journal", "-journal-limit", "512",
		"-max-outstanding", "128", "-max-conn-queue", "65536"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.shards != 4 || cfg.shardCap != 64 || cfg.seed != 9 ||
		cfg.epoch != time.Millisecond || !cfg.quiet ||
		!cfg.journal || cfg.journalLimit != 512 ||
		cfg.maxOutstanding != 128 || cfg.maxConnQueue != 65536 {
		t.Fatalf("cfg = %+v", cfg)
	}
	if cfg.runner.Name() != (namesvc.TransportRunner{}).Name() {
		t.Fatalf("runner = %s", cfg.runner.Name())
	}
	if cfg.fsyncMode != namesvc.FsyncPerEpoch || cfg.dataDir != "" {
		t.Fatalf("default durability cfg = %+v", cfg)
	}
	cfg, err = parseFlags([]string{"-listen", ":0", "-data-dir", "/tmp/x",
		"-fsync", "250ms", "-snapshot-every", "128"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.dataDir != "/tmp/x" || cfg.fsyncMode != namesvc.FsyncInterval ||
		cfg.fsyncEvery != 250*time.Millisecond || cfg.snapshotEvery != 128 {
		t.Fatalf("durable cfg = %+v", cfg)
	}
	cfg, err = parseFlags([]string{"-listen", ":0", "-fsync", "off"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.fsyncMode != namesvc.FsyncOff {
		t.Fatalf("fsync off cfg = %+v", cfg)
	}
	cfg, err = parseFlags([]string{"-listen", "127.0.0.1:4801", "-data-dir", "/tmp/x",
		"-fsync", "group", "-replicate", "-node-id", "1",
		"-peers", "a:1=a:2,b:1=b:2,c:1=c:2", "-election-timeout", "250ms"})
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.replicate || cfg.nodeID != 1 || len(cfg.peers) != 3 ||
		cfg.peers[1].ReplAddr != "b:1" || cfg.peers[1].ClientAddr != "b:2" ||
		cfg.fsyncMode != namesvc.FsyncGroup || cfg.electionTimeout != 250*time.Millisecond {
		t.Fatalf("replicated cfg = %+v", cfg)
	}
}

// TestDaemonEndToEnd drives a built-from-flags daemon over a real socket:
// multiple epochs of churn, uniqueness, reuse only after release, and a
// mid-epoch disconnect absorbed without leaking capacity. A single shard
// keeps capacity reasoning global (an acquire blocks while its hash shard
// is full, by design); the shard-aware multi-shard socket scenarios live in
// internal/namesvc's server tests.
func TestDaemonEndToEnd(t *testing.T) {
	t.Parallel()
	cfg, err := parseFlags([]string{"-listen", "127.0.0.1:0", "-shards", "1", "-shard-cap", "16",
		"-seed", "12", "-quiet"})
	if err != nil {
		t.Fatal(err)
	}
	srv, svc, _, err := build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ln, err := net.Listen("tcp", cfg.listen)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	defer func() {
		ln.Close()
		srv.Close()
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
	}()

	c, err := namesvc.Dial(ln.Addr().String(), namesvc.ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	active := map[int]bool{}
	everHeld := map[int]bool{}
	released := map[int]bool{}
	var names []int
	for client := uint64(1); client <= 12; client++ {
		g, err := c.AcquireSync(client)
		if err != nil {
			t.Fatal(err)
		}
		if active[g.Name] {
			t.Fatalf("duplicate grant of %d", g.Name)
		}
		active[g.Name] = true
		everHeld[g.Name] = true
		names = append(names, g.Name)
	}
	for _, name := range names[:6] {
		if err := c.ReleaseSync(name); err != nil {
			t.Fatal(err)
		}
		delete(active, name)
		released[name] = true
	}
	for client := uint64(50); client <= 55; client++ {
		g, err := c.AcquireSync(client)
		if err != nil {
			t.Fatal(err)
		}
		if active[g.Name] {
			t.Fatalf("duplicate grant of %d", g.Name)
		}
		if everHeld[g.Name] && !released[g.Name] {
			t.Fatalf("name %d reused without release", g.Name)
		}
		active[g.Name] = true
	}

	// A second connection with a pending acquire dies; capacity may not
	// leak and nothing may be double-granted afterwards.
	c2, err := namesvc.Dial(ln.Addr().String(), namesvc.ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := c2.Acquire(999, func(namesvc.Grant, error) {}); err != nil {
		t.Fatal(err)
	}
	if err := c2.Flush(); err != nil {
		t.Fatal(err)
	}
	c2.Close()

	st, err := c.StatsSync()
	if err != nil {
		t.Fatal(err)
	}
	if st.Epochs < 3 {
		t.Fatalf("only %d epochs", st.Epochs)
	}
	// The dead connection's request is either cancelled or its grant was
	// absorbed; wait until neither pending nor holding.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, err = c.StatsSync()
		if err != nil {
			t.Fatal(err)
		}
		if st.Pending == 0 && st.Assigned == len(active) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("dead connection leaked capacity: %+v with %d held here", st, len(active))
		}
		time.Sleep(2 * time.Millisecond)
	}
}
