// Command blnamed is the long-lived name-allocation daemon: it serves
// acquire/release traffic over TCP, batching arriving acquires into epochs
// and running one Balls-into-Leaves renaming instance per epoch against the
// free slice of a sharded namespace (see internal/namesvc).
//
// Start a daemon serving 4 independent shards of 4096 names each:
//
//	blnamed -listen 127.0.0.1:4720 -shards 4 -shard-cap 4096 -seed 7
//
// Drive it with the load generator:
//
//	blload -connect 127.0.0.1:4720 -conns 4 -outstanding 64 -duration 5s
//
// The -runner flag selects the epoch engine: "cohort" (default) runs the
// fast in-process whole-system simulator; "transport" runs each epoch as a
// true distributed execution of the public Protocol over an in-process
// loopback transport — orders of magnitude slower, useful to validate that
// both engines produce identical ledgers for identical traffic.
//
// -epoch sets a batching window so trickling arrivals coalesce into larger
// epochs; the window is adaptive and ends early the moment the batch can
// no longer grow (it reached -max-batch, or it covers every free name), so
// bursts never pay for it. -journal records per-shard assignment journals
// for auditing; a long-lived daemon should keep the default -journal-limit
// rolling window (the divergence-detecting ledger digest always covers the
// full history, only replay of dropped old entries is lost), since an
// unbounded journal (-journal-limit 0) grows memory forever.
//
// Connection failures map onto the paper's crash model: a connection that
// dies mid-epoch has its queued acquires cancelled or its fresh grants
// absorbed (assigned and immediately released, never observable twice), and
// every name it held is returned to the free pool. Malformed frames are
// clean per-connection errors; the rest of the daemon is unaffected.
//
// -data-dir makes the daemon durable: every shard writes a write-ahead log
// plus periodic snapshots (-snapshot-every records) under the directory,
// and a restarted daemon recovers the ledgers — holders, digests,
// request-ID counters — before serving. -fsync picks the flush policy:
// "epoch" fsyncs every WAL record before its grants are acknowledged,
// "group" delivers grants only after a shared fsync round covering their
// records (one fsync pass absorbs every shard's records, so concurrent
// shards split the cost instead of paying one each), "off" leaves flushing
// to the OS, and a duration ("100ms") fsyncs on that interval. Clients
// that held names before a crash re-attach them with the reclaim op and
// release them normally. A SIGTERM drain writes a final checkpoint, so a
// clean restart recovers from a snapshot instead of a log replay.
//
// -replicate turns the daemon into one member of a fault-tolerant cluster
// (see internal/namesvc/repl): -peers lists every member's replication and
// client addresses, -node-id names this one, and an election decides who
// serves writes. The leader streams each sealed WAL record to its
// followers and acknowledges a grant only after a quorum holds the records
// behind it; followers reject writes with a redirect to the leader
// (clients using DialLeader follow it automatically). Kill the leader and
// a follower takes over without losing an acknowledged grant; the cmd/
// blcluster launcher scripts exactly that demonstration.
package main

import (
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"ballsintoleaves/internal/namesvc"
	"ballsintoleaves/internal/namesvc/durable"
	"ballsintoleaves/internal/namesvc/repl"
)

// errFlagsReported marks parse failures the FlagSet already printed.
var errFlagsReported = errors.New("flag parsing failed")

// config is the parsed and validated command line.
type config struct {
	listen         string
	shards         int
	shardCap       int
	seed           uint64
	maxBatch       int
	epoch          time.Duration
	runner         namesvc.Runner
	timeout        time.Duration
	maxOutstanding int
	maxConnQueue   int
	journal        bool
	journalLimit   int
	quiet          bool
	manualEpochs   bool
	dataDir        string
	fsyncMode      namesvc.FsyncMode
	fsyncEvery     time.Duration
	snapshotEvery  int

	replicate       bool
	nodeID          int
	peers           []repl.PeerSpec
	electionTimeout time.Duration
	legacyElections bool
	retainRecords   int
}

// parseFlags parses args into a validated config.
func parseFlags(args []string) (*config, error) {
	fs := flag.NewFlagSet("blnamed", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	cfg := &config{}
	var runner string
	fs.StringVar(&cfg.listen, "listen", "", "address to listen on (required)")
	fs.IntVar(&cfg.shards, "shards", 1, "independent namespace shards")
	fs.IntVar(&cfg.shardCap, "shard-cap", 1024, "names per shard")
	fs.Uint64Var(&cfg.seed, "seed", 0, "seed driving every epoch's renaming randomness")
	fs.IntVar(&cfg.maxBatch, "max-batch", 0, "max acquires assigned per epoch (0 = shard capacity)")
	fs.DurationVar(&cfg.epoch, "epoch", 0,
		"batching window before closing an epoch, ended early once the batch cannot grow (0 = group commit)")
	fs.StringVar(&runner, "runner", "cohort", "epoch engine: cohort | transport")
	fs.DurationVar(&cfg.timeout, "timeout", 30*time.Second, "per-operation network timeout")
	fs.IntVar(&cfg.maxOutstanding, "max-outstanding", 0,
		"per-connection in-flight acquire cap; beyond it acquires are rejected busy (0 = server default)")
	fs.IntVar(&cfg.maxConnQueue, "max-conn-queue", 0,
		"per-connection pending outbound byte cap; a reader too slow to drain it is disconnected (0 = server default)")
	fs.BoolVar(&cfg.journal, "journal", false, "record per-shard assignment journals (audit)")
	fs.IntVar(&cfg.journalLimit, "journal-limit", 1<<20,
		"with -journal, retain only the most recent entries per shard (0 = unbounded growth)")
	fs.BoolVar(&cfg.quiet, "quiet", false, "suppress per-connection logging")
	fs.BoolVar(&cfg.manualEpochs, "manual-epochs", false,
		"testing/replay mode: no autonomous epoch loops; epochs close only on a client's epoch op (-epoch is ignored), making epoch composition a pure function of wire traffic")
	fs.StringVar(&cfg.dataDir, "data-dir", "",
		"directory for per-shard write-ahead logs and snapshots; empty = volatile")
	var fsync string
	fs.StringVar(&fsync, "fsync", "epoch",
		"with -data-dir, WAL flush policy: epoch (fsync every record), off, or an interval like 100ms")
	fs.IntVar(&cfg.snapshotEvery, "snapshot-every", 4096,
		"with -data-dir, checkpoint a shard after this many WAL records")
	fs.BoolVar(&cfg.replicate, "replicate", false,
		"join a replication cluster: this daemon leads or follows per election (requires -peers, -node-id, -data-dir)")
	var peers string
	fs.StringVar(&peers, "peers", "",
		"with -replicate, every cluster member as replAddr=clientAddr, comma-separated, in an order shared verbatim by all members")
	fs.IntVar(&cfg.nodeID, "node-id", 0, "with -replicate, this member's index into -peers")
	fs.DurationVar(&cfg.electionTimeout, "election-timeout", 500*time.Millisecond,
		"with -replicate, follower patience before campaigning (heartbeats flow at a fifth of it)")
	fs.BoolVar(&cfg.legacyElections, "legacy-elections", false,
		"with -replicate, disable pre-vote, leader stickiness, check-quorum, and the read lease (the pre-hardening election behavior, for differentials)")
	fs.IntVar(&cfg.retainRecords, "retain-records", 0,
		"with -replicate, cap the leader's replication-record backlog; laggards past it re-attach via snapshot (0 = default)")
	if err := fs.Parse(args); err != nil {
		// The FlagSet has already reported the problem (or printed the
		// -h usage) to stderr; mark it so main does not repeat it.
		return nil, errors.Join(errFlagsReported, err)
	}
	switch runner {
	case "cohort":
		cfg.runner = namesvc.CohortRunner{}
	case "transport":
		cfg.runner = namesvc.TransportRunner{}
	default:
		return nil, fmt.Errorf("blnamed: unknown runner %q (want cohort or transport)", runner)
	}
	switch {
	case cfg.listen == "":
		return nil, fmt.Errorf("blnamed: -listen is required")
	case cfg.shards < 1:
		return nil, fmt.Errorf("blnamed: -shards must be >= 1, got %d", cfg.shards)
	case cfg.shardCap < 1:
		return nil, fmt.Errorf("blnamed: -shard-cap must be >= 1, got %d", cfg.shardCap)
	case cfg.journalLimit < 0:
		return nil, fmt.Errorf("blnamed: -journal-limit must be >= 0, got %d", cfg.journalLimit)
	case cfg.maxOutstanding < 0:
		return nil, fmt.Errorf("blnamed: -max-outstanding must be >= 0, got %d", cfg.maxOutstanding)
	case cfg.maxConnQueue < 0:
		return nil, fmt.Errorf("blnamed: -max-conn-queue must be >= 0, got %d", cfg.maxConnQueue)
	case cfg.snapshotEvery < 1:
		return nil, fmt.Errorf("blnamed: -snapshot-every must be >= 1, got %d", cfg.snapshotEvery)
	}
	switch fsync {
	case "epoch":
		cfg.fsyncMode = namesvc.FsyncPerEpoch
	case "group":
		cfg.fsyncMode = namesvc.FsyncGroup
	case "off":
		cfg.fsyncMode = namesvc.FsyncOff
	default:
		d, err := time.ParseDuration(fsync)
		if err != nil || d <= 0 {
			return nil, fmt.Errorf("blnamed: -fsync must be epoch, group, off, or a positive duration, got %q", fsync)
		}
		cfg.fsyncMode = namesvc.FsyncInterval
		cfg.fsyncEvery = d
	}
	if cfg.replicate {
		if peers == "" {
			return nil, fmt.Errorf("blnamed: -replicate requires -peers")
		}
		if cfg.dataDir == "" {
			return nil, fmt.Errorf("blnamed: -replicate requires -data-dir (election state and the WAL must survive restarts)")
		}
		for _, member := range strings.Split(peers, ",") {
			replAddr, clientAddr, ok := strings.Cut(member, "=")
			if !ok || replAddr == "" || clientAddr == "" {
				return nil, fmt.Errorf("blnamed: -peers member %q is not replAddr=clientAddr", member)
			}
			cfg.peers = append(cfg.peers, repl.PeerSpec{ReplAddr: replAddr, ClientAddr: clientAddr})
		}
		if cfg.nodeID < 0 || cfg.nodeID >= len(cfg.peers) {
			return nil, fmt.Errorf("blnamed: -node-id %d outside -peers (0..%d)", cfg.nodeID, len(cfg.peers)-1)
		}
		if cfg.electionTimeout <= 0 {
			return nil, fmt.Errorf("blnamed: -election-timeout must be positive, got %v", cfg.electionTimeout)
		}
		if cfg.retainRecords < 0 {
			return nil, fmt.Errorf("blnamed: -retain-records must be >= 0, got %d", cfg.retainRecords)
		}
	} else if peers != "" {
		return nil, fmt.Errorf("blnamed: -peers requires -replicate")
	}
	return cfg, nil
}

// warnJournal surfaces the unbounded-journal footgun at startup rather
// than letting a long-lived daemon discover it as memory growth.
func warnJournal(cfg *config) {
	if !cfg.journal || cfg.journalLimit != 0 {
		return
	}
	if cfg.dataDir != "" {
		fmt.Fprintf(os.Stderr,
			"blnamed: warning: -journal-limit 0 (unbounded) with durability enabled; "+
				"auto-capping the in-memory journal at %d entries per shard — the WAL under "+
				"%s already holds the complete history\n", namesvc.AutoJournalLimit, cfg.dataDir)
		return
	}
	fmt.Fprintln(os.Stderr,
		"blnamed: warning: -journal-limit 0 retains every journal entry forever; "+
			"memory grows without bound — intended for bounded runs only")
}

// build assembles the service, the optional replication node, and the
// server from a config, recovering from -data-dir when durability is
// enabled.
func build(cfg *config) (*namesvc.Server, *namesvc.Service, *repl.Node, error) {
	svcCfg := namesvc.Config{
		Shards:       cfg.shards,
		ShardCap:     cfg.shardCap,
		Seed:         cfg.seed,
		Runner:       cfg.runner,
		MaxBatch:     cfg.maxBatch,
		Journal:      cfg.journal,
		JournalLimit: cfg.journalLimit,
	}
	if cfg.dataDir != "" {
		sinks, err := durable.ShardSinks(cfg.dataDir, cfg.shards)
		if err != nil {
			return nil, nil, nil, err
		}
		svcCfg.Durable = &namesvc.Durability{
			Sinks:         sinks,
			Fsync:         cfg.fsyncMode,
			FsyncEvery:    cfg.fsyncEvery,
			SnapshotEvery: cfg.snapshotEvery,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "blnamed: "+format+"\n", args...)
			},
		}
	}
	svc, err := namesvc.Open(svcCfg)
	if err != nil {
		return nil, nil, nil, err
	}
	var node *repl.Node
	if cfg.replicate {
		node, err = repl.Start(repl.Config{
			NodeID:          cfg.nodeID,
			Peers:           cfg.peers,
			Service:         svc,
			MetaPath:        filepath.Join(cfg.dataDir, "repl-meta"),
			ElectionTimeout: cfg.electionTimeout,
			LegacyElections: cfg.legacyElections,
			RetainRecords:   cfg.retainRecords,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "blnamed: "+format+"\n", args...)
			},
		})
		if err != nil {
			svc.Close()
			return nil, nil, nil, err
		}
	}
	scfg := namesvc.ServerConfig{
		Service:        svc,
		EpochInterval:  cfg.epoch,
		IOTimeout:      cfg.timeout,
		MaxOutstanding: cfg.maxOutstanding,
		MaxConnQueue:   cfg.maxConnQueue,
		ManualEpochs:   cfg.manualEpochs,
	}
	switch {
	case node != nil:
		// Replication is the commit rule: writes only on the leader,
		// grants only after a quorum holds the records behind them.
		scfg.Gate = node
	case cfg.fsyncMode == namesvc.FsyncGroup && cfg.dataDir != "":
		// Standalone group commit: grants wait for a shared fsync round.
		scfg.Gate = namesvc.GroupGate(svc)
	}
	if !cfg.quiet {
		scfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "blnamed: "+format+"\n", args...)
		}
	}
	srv, err := namesvc.NewServer(scfg)
	if err != nil {
		if node != nil {
			node.Close()
		}
		svc.Close()
		return nil, nil, nil, err
	}
	if node != nil {
		node.SetServer(srv)
	}
	return srv, svc, node, nil
}

func main() {
	cfg, err := parseFlags(os.Args[1:])
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(0)
		}
		if !errors.Is(err, errFlagsReported) {
			fmt.Fprintln(os.Stderr, err)
		}
		os.Exit(2)
	}
	warnJournal(cfg)
	srv, svc, node, err := build(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "blnamed: %v\n", err)
		os.Exit(1)
	}
	ln, err := net.Listen("tcp", cfg.listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "blnamed: %v\n", err)
		os.Exit(1)
	}
	durability := "volatile"
	if cfg.dataDir != "" {
		durability = fmt.Sprintf("durable at %s, fsync %v", cfg.dataDir, cfg.fsyncMode)
		for i := 0; i < svc.Shards(); i++ {
			fmt.Fprintf(os.Stderr, "blnamed: shard %d: recovered at epoch %d, digest %016x\n",
				i, svc.ShardEpoch(i), svc.ShardDigest(i))
		}
	}
	if node != nil {
		durability += fmt.Sprintf(", replicating as node %d of %d", cfg.nodeID, len(cfg.peers))
	}
	fmt.Printf("blnamed: serving %d shard(s) x %d names on %s (runner %s, seed %d, %s)\n",
		cfg.shards, cfg.shardCap, ln.Addr(), cfg.runner.Name(), cfg.seed, durability)

	// SIGINT/SIGTERM drain: stop accepting, tear down connections, write
	// the final checkpoint, exit 0.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		ln.Close()
	}()

	err = srv.Serve(ln)
	ln.Close()
	srv.Close()
	if node != nil {
		// The drain report names the role and the last committed stream
		// index so an operator can tell at a glance whether this replica
		// was the leader and how far the cluster had acknowledged.
		role, term, commit := node.Status()
		node.Close()
		fmt.Fprintf(os.Stderr, "blnamed: replication: drained as %s of term %d, committed through record %d\n",
			role, term, commit)
	}
	if cerr := svc.Close(); cerr != nil {
		fmt.Fprintf(os.Stderr, "blnamed: final checkpoint: %v\n", cerr)
		if err == nil {
			err = cerr
		}
	} else if cfg.dataDir != "" {
		for i := 0; i < svc.Shards(); i++ {
			fmt.Fprintf(os.Stderr, "blnamed: shard %d: final checkpoint at epoch %d, digest %016x\n",
				i, svc.ShardEpoch(i), svc.ShardDigest(i))
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "blnamed: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("blnamed: shut down cleanly")
}
