package main

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"ballsintoleaves/internal/namesvc"
)

// buildDaemon compiles the blnamed binary once into dir and returns its path.
func buildDaemon(t *testing.T, dir string) string {
	t.Helper()
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skipf("go toolchain not on PATH: %v", err)
	}
	bin := filepath.Join(dir, "blnamed")
	out, err := exec.Command(goBin, "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// daemon is one running blnamed process plus the address it reported.
type daemon struct {
	cmd    *exec.Cmd
	addr   string
	stderr *strings.Builder
}

// startDaemon launches bin with args plus -listen 127.0.0.1:0 and parses
// the bound address out of the startup banner.
func startDaemon(t *testing.T, bin string, args ...string) *daemon {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"-listen", "127.0.0.1:0"}, args...)...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var errBuf strings.Builder
	cmd.Stderr = &errBuf
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	// Banner: "blnamed: serving N shard(s) x M names on ADDR (runner ...)".
	sc := bufio.NewScanner(stdout)
	addr := make(chan string, 1)
	go func() {
		for sc.Scan() {
			line := sc.Text()
			if _, rest, ok := strings.Cut(line, " names on "); ok {
				if a, _, ok := strings.Cut(rest, " ("); ok {
					addr <- a
					break
				}
			}
		}
		close(addr)
		// Drain the rest so the daemon never blocks on a full pipe.
		for sc.Scan() {
		}
	}()
	select {
	case a, ok := <-addr:
		if !ok {
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatalf("daemon exited before banner; stderr:\n%s", errBuf.String())
		}
		return &daemon{cmd: cmd, addr: a, stderr: &errBuf}
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatal("daemon banner timeout")
	}
	panic("unreachable")
}

// TestKillNineRecovery is the restart gate from the issue: a blnamed
// kill-9'd mid-life and restarted from its -data-dir must come back with
// identical per-shard digests and still serve releases for names granted
// before the crash — via the reclaim handshake, since the new process has
// no connection that holds them.
func TestKillNineRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills real processes")
	}
	t.Parallel()
	scratch := t.TempDir()
	bin := buildDaemon(t, scratch)
	dataDir := filepath.Join(scratch, "data")
	if err := os.MkdirAll(dataDir, 0o755); err != nil {
		t.Fatal(err)
	}
	durableArgs := []string{"-shards", "2", "-shard-cap", "64", "-seed", "3",
		"-quiet", "-data-dir", dataDir, "-fsync", "epoch", "-snapshot-every", "8"}

	// Generation 1: grant names, release a few, then die without warning.
	d1 := startDaemon(t, bin, durableArgs...)
	c1, err := namesvc.Dial(d1.addr, namesvc.ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	held := map[uint64]int{} // client -> name still held at the crash
	for client := uint64(1); client <= 12; client++ {
		g, err := c1.AcquireSync(client)
		if err != nil {
			t.Fatal(err)
		}
		held[client] = g.Name
	}
	for client := uint64(1); client <= 3; client++ {
		if err := c1.ReleaseSync(held[client]); err != nil {
			t.Fatal(err)
		}
		delete(held, client)
	}
	before, err := c1.StatsSync()
	if err != nil {
		t.Fatal(err)
	}
	if before.Assigned != len(held) {
		t.Fatalf("pre-crash assigned = %d, held %d", before.Assigned, len(held))
	}
	if len(before.Digests) != 2 || before.WALRecords == 0 {
		t.Fatalf("pre-crash stats not durable-shaped: %+v", before)
	}
	// Kill while the connection is still open: closing it first would
	// trigger the server's disconnect cleanup, which releases held names.
	if err := d1.cmd.Process.Kill(); err != nil { // SIGKILL: no drain, no checkpoint
		t.Fatal(err)
	}
	d1.cmd.Wait()
	c1.Close()

	// Generation 2: recover from the same data dir.
	d2 := startDaemon(t, bin, durableArgs...)
	c2, err := namesvc.Dial(d2.addr, namesvc.ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	after, err := c2.StatsSync()
	if err != nil {
		t.Fatal(err)
	}
	if after.Assigned != before.Assigned {
		t.Fatalf("recovered assigned = %d, want %d", after.Assigned, before.Assigned)
	}
	if len(after.Digests) != len(before.Digests) {
		t.Fatalf("recovered %d digests, want %d", len(after.Digests), len(before.Digests))
	}
	for i := range before.Digests {
		if after.Digests[i] != before.Digests[i] {
			t.Fatalf("shard %d digest %016x after crash, want %016x",
				i, after.Digests[i], before.Digests[i])
		}
	}

	// The restart gate proper: every pre-crash grant must be releasable.
	// Releasing without reclaiming must be refused — this connection does
	// not hold the name — and reclaiming with the wrong client must fail.
	for client, name := range held {
		if err := c2.ReleaseSync(name); err == nil {
			t.Fatalf("release of un-reclaimed name %d accepted", name)
		}
		if err := c2.ReclaimSync(client+1000, name); err == nil {
			t.Fatalf("reclaim of name %d by wrong client accepted", name)
		}
		if err := c2.ReclaimSync(client, name); err != nil {
			t.Fatalf("reclaim client %d name %d: %v", client, name, err)
		}
		if err := c2.ReleaseSync(name); err != nil {
			t.Fatalf("release of reclaimed name %d: %v", name, err)
		}
	}
	final, err := c2.StatsSync()
	if err != nil {
		t.Fatal(err)
	}
	if final.Assigned != 0 {
		t.Fatalf("after releasing every pre-crash grant, assigned = %d", final.Assigned)
	}
	// Released capacity must be re-grantable by the recovered process.
	if _, err := c2.AcquireSync(7777); err != nil {
		t.Fatalf("acquire after recovery: %v", err)
	}
	c2.Close()

	// SIGTERM drain: exit 0 and a final per-shard checkpoint line, so the
	// next boot recovers from a snapshot rather than a log replay. Closing
	// the connection first releases client 7777's name via the disconnect
	// cleanup; the drain checkpoint captures that empty state.
	if err := d2.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := d2.cmd.Wait(); err != nil {
		t.Fatalf("SIGTERM exit: %v; stderr:\n%s", err, d2.stderr.String())
	}
	drained := make([]uint64, 2)
	for shard := range drained {
		prefix := fmt.Sprintf("shard %d: final checkpoint at epoch", shard)
		line := ""
		for _, l := range strings.Split(d2.stderr.String(), "\n") {
			if strings.Contains(l, prefix) {
				line = l
				break
			}
		}
		if line == "" {
			t.Fatalf("drain log missing %q; stderr:\n%s", prefix, d2.stderr.String())
		}
		_, hex, ok := strings.Cut(line, "digest ")
		if !ok {
			t.Fatalf("drain line %q has no digest", line)
		}
		if _, err := fmt.Sscanf(hex, "%x", &drained[shard]); err != nil {
			t.Fatalf("drain line %q: %v", line, err)
		}
	}

	// Generation 3: a clean-shutdown data dir restores exactly the state
	// the drain logged.
	d3 := startDaemon(t, bin, durableArgs...)
	c3, err := namesvc.Dial(d3.addr, namesvc.ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	third, err := c3.StatsSync()
	if err != nil {
		t.Fatal(err)
	}
	if third.Assigned != 0 {
		t.Fatalf("generation-3 assigned = %d, want 0", third.Assigned)
	}
	for i, want := range drained {
		if third.Digests[i] != want {
			t.Fatalf("generation-3 shard %d digest %016x, drain logged %016x",
				i, third.Digests[i], want)
		}
	}
	c3.Close()
}
