package main

import (
	"testing"

	"ballsintoleaves/internal/core"
)

func TestParseStrategy(t *testing.T) {
	t.Parallel()
	cases := map[string]core.PathStrategy{
		"random":        core.RandomPaths,
		"hybrid":        core.HybridPaths,
		"early":         core.HybridPaths,
		"deterministic": core.DeterministicPaths,
		"rankdescent":   core.DeterministicPaths,
		"leveldescent":  core.LevelDescent,
		"level":         core.LevelDescent,
	}
	for in, want := range cases {
		got, err := parseStrategy(in)
		if err != nil || got != want {
			t.Fatalf("parseStrategy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parseStrategy("bogus"); err == nil {
		t.Fatal("bogus strategy accepted")
	}
}

func TestParseAdversary(t *testing.T) {
	t.Parallel()
	for _, name := range []string{"none", "random", "splitter", "rankshift", "deeptarget", "oneperphase"} {
		adv, err := parseAdversary(name, 4, 1)
		if err != nil || adv == nil {
			t.Fatalf("parseAdversary(%q) failed: %v", name, err)
		}
	}
	if _, err := parseAdversary("bogus", 0, 1); err == nil {
		t.Fatal("bogus adversary accepted")
	}
}

func TestRunWithTranscript(t *testing.T) {
	t.Parallel()
	strategy, err := parseStrategy("random")
	if err != nil {
		t.Fatal(err)
	}
	adv, err := parseAdversary("splitter", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := runWithTranscript(8, 1, strategy, adv, 2, true); err != nil {
		t.Fatal(err)
	}
}
