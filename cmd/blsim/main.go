// Command blsim runs a single Balls-into-Leaves execution and reports what
// happened, optionally tracing the virtual tree phase by phase — a textual
// rendering of the paper's Figures 1 and 2.
//
// Usage:
//
//	blsim -n 16 -trace                 # watch 16 balls disperse
//	blsim -n 4096 -algo early -f 64    # early termination under 64 crashes
//	blsim -n 1024 -crash splitter      # the §6 single-crash pattern
//	blsim -n 32 -names                 # print the decided name table
//
// Service-simulation mode (scenario.go) drives the name service under
// virtual time instead:
//
//	blsim -list-scenarios                      # the scenario library
//	blsim -scenario zipf-shards -seed 7 -json  # one run, JSON artifact
//	blsim -scenario all -seeds 3 -diff         # seed sweep + sim==real gate
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"ballsintoleaves/internal/adversary"
	"ballsintoleaves/internal/core"
	"ballsintoleaves/internal/ids"
	"ballsintoleaves/internal/sim"
	"ballsintoleaves/internal/trace"
	"ballsintoleaves/internal/viz"
)

func main() {
	var (
		n      = flag.Int("n", 16, "number of processes / names")
		seed   = flag.Uint64("seed", 1, "seed for all randomness")
		algo   = flag.String("algo", "random", "path strategy: random | hybrid | deterministic | leveldescent")
		crash  = flag.String("crash", "none", "adversary: none | random | splitter | rankshift | deeptarget | oneperphase")
		f      = flag.Int("f", 0, "crash budget for the random adversary")
		treeTr = flag.Bool("trace", false, "render the tree after every phase")
		events = flag.Bool("events", false, "run the per-process reference engine and print the round transcript")
		names  = flag.Bool("names", false, "print the decided name table")
		verify = flag.Bool("verify", true, "enable runtime invariant checks")
		arity  = flag.Int("arity", 2, "virtual tree fan-out")

		scenario = flag.String("scenario", "", "run a name-service simulation scenario (name from -list-scenarios, or \"all\")")
		seeds    = flag.Int("seeds", 1, "scenario mode: sweep this many consecutive seeds starting at -seed")
		scale    = flag.Float64("scale", 1, "scenario mode: population/horizon scale factor (CI uses 0.25)")
		jsonOut  = flag.Bool("json", false, "scenario mode: emit deterministic JSON artifacts")
		diff     = flag.Bool("diff", false, "scenario mode: replay each trace through a real server over loopback TCP and require identical digests, grants, journals")
		list     = flag.Bool("list-scenarios", false, "list the scenario library and exit")
	)
	flag.Parse()

	if *list {
		listScenarios()
		return
	}
	if *scenario != "" {
		scenarioMain(*scenario, *seed, *seeds, *scale, *jsonOut, *diff)
		return
	}

	strategy, err := parseStrategy(*algo)
	if err != nil {
		fatal(err)
	}
	adv, err := parseAdversary(*crash, *f, *seed)
	if err != nil {
		fatal(err)
	}

	if *events {
		if err := runWithTranscript(*n, *seed, strategy, adv, *arity, *verify); err != nil {
			fatal(err)
		}
		return
	}

	cfg := core.Config{
		N:               *n,
		Seed:            *seed,
		Strategy:        strategy,
		Arity:           *arity,
		Adversary:       adv,
		Metrics:         true,
		CheckInvariants: *verify,
	}
	labels := ids.Random(*n, *seed+0x515)
	cohort, err := core.NewCohort(cfg, labels)
	if err != nil {
		fatal(err)
	}
	if *treeTr {
		cohort.OnPhaseEnd = func(phase, round int, canon *core.View) {
			fmt.Printf("--- phase %d (after round %d) ---\n", phase, round)
			if *n <= viz.MaxRenderableN {
				fmt.Print(viz.Tree(canon))
			} else {
				fmt.Print(viz.DepthBars(canon))
			}
		}
		fmt.Printf("--- initial configuration: %d balls at the root ---\n", *n)
	}
	res, err := cohort.Run()
	if err != nil {
		fatal(err)
	}

	fmt.Printf("\nalgorithm     %v\n", strategy)
	fmt.Printf("adversary     %s (crashed %d)\n", adv.Name(), res.Crashes)
	fmt.Printf("processes     %d\n", res.N)
	fmt.Printf("rounds        %d  (%d phases + 1 init round)\n", res.Rounds, res.Phases)
	fmt.Printf("decided       %d correct processes, all names unique\n", len(res.Decisions))
	fmt.Printf("messages      %d  (%.1f KB on the wire)\n", res.Messages, float64(res.Bytes)/1024)

	if len(res.Metrics.PerPhase) > 0 {
		fmt.Println("\nphase  at-leaves  max-contention  busiest-path")
		for _, s := range res.Metrics.PerPhase {
			fmt.Printf("%5d  %9d  %14d  %12d\n", s.Phase, s.AtLeaves, s.MaxAtNode, s.BusiestPathLoad)
		}
	}

	if *names {
		fmt.Println("\nprocess id        -> name  (decided in round)")
		sorted := make([]int, 0, len(res.Decisions))
		for i := range res.Decisions {
			sorted = append(sorted, i)
		}
		sort.Slice(sorted, func(a, b int) bool {
			return res.Decisions[sorted[a]].Name < res.Decisions[sorted[b]].Name
		})
		for _, i := range sorted {
			d := res.Decisions[i]
			fmt.Printf("%-16x -> %4d  (round %d)\n", uint64(d.ID), d.Name, d.Round)
		}
	}
}

// runWithTranscript drives the faithful per-process implementation on the
// reference engine with the event tracer and prints the round transcript.
func runWithTranscript(n int, seed uint64, strategy core.PathStrategy,
	adv adversary.Strategy, arity int, verify bool) error {
	cfg := core.Config{N: n, Seed: seed, Strategy: strategy, Arity: arity, CheckInvariants: verify}
	balls, err := core.NewBalls(cfg, ids.Random(n, seed+0x515))
	if err != nil {
		return err
	}
	log := &trace.Log{}
	eng, err := sim.New(sim.Config{Adversary: adv}, trace.WrapAll(core.Processes(balls), log))
	if err != nil {
		return err
	}
	res, err := eng.Run()
	if err != nil {
		return err
	}
	fmt.Printf("reference engine: %d processes, %d rounds, %d crashed, %d decided\n\n",
		n, res.Rounds, len(res.Crashed), len(res.Decisions))
	log.Render(os.Stdout)
	return nil
}

func parseStrategy(s string) (core.PathStrategy, error) {
	switch s {
	case "random":
		return core.RandomPaths, nil
	case "hybrid", "early":
		return core.HybridPaths, nil
	case "deterministic", "rankdescent":
		return core.DeterministicPaths, nil
	case "leveldescent", "level":
		return core.LevelDescent, nil
	default:
		return 0, fmt.Errorf("blsim: unknown strategy %q", s)
	}
}

func parseAdversary(s string, f int, seed uint64) (adversary.Strategy, error) {
	switch s {
	case "none":
		return adversary.None{}, nil
	case "random":
		if f <= 0 {
			f = 1
		}
		return adversary.NewRandom(f, 9, seed), nil
	case "splitter":
		return &adversary.Splitter{Round: 1}, nil
	case "rankshift":
		return &adversary.RankShifter{}, nil
	case "deeptarget":
		return &adversary.DeepTarget{PerRound: 2, Seed: seed}, nil
	case "oneperphase":
		return &adversary.OnePerPhase{}, nil
	default:
		return nil, fmt.Errorf("blsim: unknown adversary %q", s)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "blsim: %v\n", err)
	os.Exit(1)
}
