package main

import (
	"fmt"
	"net"
	"os"
	"time"

	"ballsintoleaves/internal/namesvc"
	"ballsintoleaves/internal/simsvc"
)

// scenarioMain is blsim's service-simulation mode: it runs named scenarios
// from the simsvc library under virtual time, optionally sweeps a seed
// matrix (-seeds), emits deterministic JSON artifacts (-json), and can pin
// each wire-replayable scenario against a real in-process server over
// loopback TCP (-diff) — the CI scenario-smoke entry point.
func scenarioMain(scenario string, seed uint64, seeds int, scale float64, jsonOut, diff bool) {
	var scenarios []simsvc.Scenario
	if scenario == "all" {
		scenarios = simsvc.Library(scale)
	} else {
		scn, err := simsvc.Lookup(scenario, scale)
		if err != nil {
			fatal(err)
		}
		scenarios = []simsvc.Scenario{scn}
	}
	if seeds < 1 {
		seeds = 1
	}

	failures := 0
	artifacts := 0
	if jsonOut && len(scenarios)*seeds > 1 {
		fmt.Println("[")
	}
	for _, scn := range scenarios {
		for s := 0; s < seeds; s++ {
			res, err := runOne(scn, seed+uint64(s))
			if err != nil {
				fatal(err)
			}
			if res.Duplicates != 0 {
				fmt.Fprintf(os.Stderr, "blsim: %s seed %d: %d DUPLICATE grants\n", scn.Name, res.Seed, res.Duplicates)
				failures++
			}
			if jsonOut {
				b, err := res.Artifact()
				if err != nil {
					fatal(err)
				}
				if artifacts > 0 {
					fmt.Println(",")
				}
				os.Stdout.Write(b)
				artifacts++
			} else {
				fmt.Printf("%-16s seed %-3d  %7d acquires  %6d epochs  p50 %5dus  p99 %5dus  pending %4d  crashes %3d  digest %016x...\n",
					scn.Name, res.Seed, res.Acquires, res.Epochs,
					res.LatencyP50/1000, res.LatencyP99/1000, res.PendingEnd, res.Crashes, res.Digests[0])
			}
			if diff {
				switch {
				case !scn.WireReplayable:
					if !jsonOut {
						fmt.Printf("%-16s seed %-3d  diff skipped (sim-only scenario)\n", scn.Name, res.Seed)
					}
				default:
					if err := diffAgainstRealServer(scn, res); err != nil {
						fmt.Fprintf(os.Stderr, "blsim: %s seed %d: DIFFERENTIAL FAILED: %v\n", scn.Name, res.Seed, err)
						failures++
					} else if !jsonOut {
						fmt.Printf("%-16s seed %-3d  diff ok: sim == real server (digests, grants, journals)\n", scn.Name, res.Seed)
					}
				}
			}
		}
	}
	if jsonOut && len(scenarios)*seeds > 1 {
		fmt.Println("]")
	}
	if failures > 0 {
		os.Exit(1)
	}
}

func runOne(scn simsvc.Scenario, seed uint64) (*simsvc.Result, error) {
	sim, err := simsvc.NewSim(scn, seed)
	if err != nil {
		return nil, err
	}
	return sim.Run()
}

// diffAgainstRealServer replays the recorded trace through a real
// manual-epoch server over loopback TCP and compares digests, the grant
// stream, and journals against the simulator's.
func diffAgainstRealServer(scn simsvc.Scenario, res *simsvc.Result) error {
	svc, err := namesvc.New(namesvc.Config{
		Shards:   scn.Shards,
		ShardCap: scn.ShardCap,
		MaxBatch: scn.MaxBatch,
		Seed:     res.Seed,
		Journal:  true,
	})
	if err != nil {
		return err
	}
	srv, err := namesvc.NewServer(namesvc.ServerConfig{Service: svc, ManualEpochs: true})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go srv.Serve(ln)
	defer srv.Close()
	rep, err := res.Trace.ReplayWire(ln.Addr().String(), 30*time.Second)
	if err != nil {
		return err
	}
	if d := res.Trace.Diff(rep); d != "" {
		return fmt.Errorf("%s", d)
	}
	return nil
}

func listScenarios() {
	for _, scn := range simsvc.Library(1) {
		mode := "sim+wire"
		if !scn.WireReplayable {
			mode = "sim-only"
		}
		fmt.Printf("%-16s %-8s %d clients on %dx%d, %dms virtual\n    %s\n",
			scn.Name, mode, scn.Clients, scn.Shards, scn.ShardCap, scn.Duration/1_000_000, scn.Description)
	}
}
