package baseline

import (
	"fmt"
	"sort"

	"ballsintoleaves/internal/adversary"
	"ballsintoleaves/internal/proto"
	"ballsintoleaves/internal/rng"
	"ballsintoleaves/internal/sim"
	"ballsintoleaves/internal/wire"
)

// msgPropose tags a naive-renaming proposal payload.
const msgPropose byte = 4

// NaiveBall is the flat randomized renaming baseline: in every round, each
// undecided process proposes a uniformly random name that is free in its
// local view and broadcasts the proposal; the lowest-labelled proposer of
// each name wins it, every receiver marks every proposed name taken, and a
// process that wins its own proposal decides and halts.
//
// The protocol is crash-tolerant (a partially delivered proposal can waste
// a name in some views but never violates uniqueness or liveness — at most
// one wasted name per crash) and places all n processes in Θ(log n) rounds
// w.h.p.: with k contenders racing for ≥ k free names, a constant fraction
// win each round. It is the natural "balls-into-bins with retries" strategy
// the paper's introduction starts from, and the log n / log log n gap
// against Balls-into-Leaves is measured by experiment E2.
type NaiveBall struct {
	id   proto.ID
	n    int
	src  *rng.Source
	pool *Pool
	w    wire.Writer

	proposal     int
	decided      bool
	name         int
	done         bool
	decodeErrors int
}

var (
	_ proto.Process    = (*NaiveBall)(nil)
	_ sim.Introspector = (*NaiveBall)(nil)
)

// NewNaiveBall constructs one process for an n-name namespace.
func NewNaiveBall(n int, seed uint64, id proto.ID) (*NaiveBall, error) {
	if n < 1 {
		return nil, fmt.Errorf("baseline: n must be >= 1, got %d", n)
	}
	return &NaiveBall{
		id:       id,
		n:        n,
		src:      rng.Derive(seed, uint64(id)),
		pool:     NewPool(n),
		proposal: -1,
	}, nil
}

// NewNaiveBalls constructs the full system.
func NewNaiveBalls(n int, seed uint64, labels []proto.ID) ([]proto.Process, error) {
	if len(labels) != n {
		return nil, fmt.Errorf("baseline: %d labels for n=%d", len(labels), n)
	}
	procs := make([]proto.Process, n)
	for i, id := range labels {
		b, err := NewNaiveBall(n, seed, id)
		if err != nil {
			return nil, err
		}
		procs[i] = b
	}
	return procs, nil
}

// ID implements proto.Process.
func (b *NaiveBall) ID() proto.ID { return b.id }

// Decided implements proto.Process.
func (b *NaiveBall) Decided() (int, bool) { return b.name, b.decided }

// Done implements proto.Process.
func (b *NaiveBall) Done() bool { return b.done }

// DecodeErrors reports tolerated malformed payloads.
func (b *NaiveBall) DecodeErrors() int { return b.decodeErrors }

// Info implements sim.Introspector.
func (b *NaiveBall) Info() adversary.BallInfo {
	return adversary.BallInfo{Label: b.id, AtLeaf: b.decided}
}

// Send implements proto.Process: propose a uniformly random free name.
func (b *NaiveBall) Send(round int) []byte {
	free := b.pool.FreeCount()
	if free == 0 {
		// Cannot happen (see the liveness argument in the type comment);
		// guard so a bookkeeping bug surfaces as a visible stall, not a
		// panic inside the engine.
		return nil
	}
	b.proposal = b.pool.SelectFree(b.src.Intn(free))
	b.w.Reset()
	b.w.Byte(msgPropose)
	b.w.Uvarint(uint64(b.proposal))
	return b.w.Bytes()
}

// Deliver implements proto.Process: resolve winners, mark taken names,
// decide if this process won its own proposal.
func (b *NaiveBall) Deliver(round int, msgs []proto.Message) {
	winner := make(map[int]proto.ID, len(msgs))
	for _, m := range msgs {
		r := wire.NewReader(m.Payload)
		if k := r.Byte(); k != msgPropose {
			b.decodeErrors++
			continue
		}
		name := int(r.Uvarint())
		if r.Close() != nil || name < 0 || name >= b.n {
			b.decodeErrors++
			continue
		}
		if w, ok := winner[name]; !ok || m.From < w {
			winner[name] = m.From
		}
	}
	for name, w := range winner {
		b.pool.Take(name)
		if w == b.id {
			b.decided = true
			b.name = name + 1
			b.done = true
		}
	}
}

// RunNaiveFast simulates a failure-free naive-renaming execution centrally,
// with per-ball randomness identical to NaiveBall under internal/sim (the
// equivalence is asserted by tests). Without crashes all local views agree,
// so a single shared pool suffices; this is what makes n = 2^16 sweeps in
// experiment E2 affordable.
//
// It returns the total rounds, each ball's decided name (1-based) and
// decision round, both indexed by label rank (ascending label order).
func RunNaiveFast(n int, seed uint64, labels []proto.ID) (rounds int, names, decisionRounds []int, err error) {
	if len(labels) != n {
		return 0, nil, nil, fmt.Errorf("baseline: %d labels for n=%d", len(labels), n)
	}
	sorted := make([]proto.ID, n)
	copy(sorted, labels)
	sortIDs(sorted)
	for i := 1; i < n; i++ {
		if sorted[i] == sorted[i-1] {
			return 0, nil, nil, fmt.Errorf("baseline: duplicate label %v", sorted[i])
		}
	}
	srcs := make([]*rng.Source, n)
	for i, id := range sorted {
		srcs[i] = rng.Derive(seed, uint64(id))
	}
	pool := NewPool(n)
	names = make([]int, n)
	decisionRounds = make([]int, n)
	undecided := make([]int, n)
	for i := range undecided {
		undecided[i] = i
	}
	winner := make(map[int]int, n)
	for round := 1; len(undecided) > 0; round++ {
		if round > 10*n+64 {
			return round, names, decisionRounds, fmt.Errorf("baseline: naive renaming failed to quiesce")
		}
		rounds = round
		clear(winner)
		proposals := make([]int, len(undecided))
		for i, idx := range undecided {
			p := pool.SelectFree(srcs[idx].Intn(pool.FreeCount()))
			proposals[i] = p
			if w, ok := winner[p]; !ok || idx < w {
				winner[p] = idx
			}
		}
		for name := range winner {
			pool.Take(name)
		}
		next := undecided[:0]
		for i, idx := range undecided {
			if winner[proposals[i]] == idx {
				names[idx] = proposals[i] + 1
				decisionRounds[idx] = round
			} else {
				next = append(next, idx)
			}
		}
		undecided = next
	}
	return rounds, names, decisionRounds, nil
}

// sortIDs sorts labels ascending.
func sortIDs(ids []proto.ID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}
