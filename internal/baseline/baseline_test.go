package baseline

import (
	"math"
	"testing"
	"testing/quick"

	"ballsintoleaves/internal/adversary"
	"ballsintoleaves/internal/ids"
	"ballsintoleaves/internal/proto"
	"ballsintoleaves/internal/sim"
)

func TestPoolSelectFreeEnumerates(t *testing.T) {
	t.Parallel()
	p := NewPool(10)
	for _, taken := range []int{0, 4, 9} {
		p.Take(taken)
	}
	want := []int{1, 2, 3, 5, 6, 7, 8}
	if p.FreeCount() != len(want) {
		t.Fatalf("free = %d", p.FreeCount())
	}
	for k, w := range want {
		if got := p.SelectFree(k); got != w {
			t.Fatalf("SelectFree(%d) = %d, want %d", k, got, w)
		}
	}
}

func TestPoolTakeIdempotent(t *testing.T) {
	t.Parallel()
	p := NewPool(4)
	p.Take(2)
	p.Take(2)
	if p.FreeCount() != 3 {
		t.Fatalf("free = %d, want 3", p.FreeCount())
	}
}

func TestPoolSelectFreeOutOfRangePanics(t *testing.T) {
	t.Parallel()
	p := NewPool(3)
	p.Take(0)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	p.SelectFree(2)
}

func TestPoolCloneIndependent(t *testing.T) {
	t.Parallel()
	p := NewPool(8)
	p.Take(3)
	cp := p.Clone()
	cp.Take(5)
	if p.Taken(5) {
		t.Fatal("clone mutation leaked")
	}
	if !cp.Taken(3) || !cp.Taken(5) {
		t.Fatal("clone lost state")
	}
}

// TestPoolMatchesNaiveScan cross-checks Fenwick selection against a linear
// scan on random take-patterns.
func TestPoolMatchesNaiveScan(t *testing.T) {
	t.Parallel()
	prop := func(seed uint64, rawN uint8) bool {
		n := int(rawN%50) + 2
		p := NewPool(n)
		s := seed
		for i := 0; i < n/2; i++ {
			s = s*6364136223846793005 + 1
			p.Take(int(s>>33) % n)
		}
		free := make([]int, 0, n)
		for name := 0; name < n; name++ {
			if !p.Taken(name) {
				free = append(free, name)
			}
		}
		if len(free) != p.FreeCount() {
			return false
		}
		for k, w := range free {
			if p.SelectFree(k) != w {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestNaiveFailureFreeSolvesTightRenaming(t *testing.T) {
	t.Parallel()
	for _, n := range []int{1, 2, 5, 16, 64} {
		labels := ids.Random(n, uint64(n)+3)
		procs, err := NewNaiveBalls(n, 7, labels)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := sim.New(sim.Config{}, procs)
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Decisions) != n {
			t.Fatalf("n=%d: %d decisions", n, len(res.Decisions))
		}
		if err := proto.Validate(res.Decisions, n); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestNaiveSurvivesCrashes(t *testing.T) {
	t.Parallel()
	const n = 40
	for seed := uint64(0); seed < 10; seed++ {
		labels := ids.Random(n, seed+30)
		procs, err := NewNaiveBalls(n, seed, labels)
		if err != nil {
			t.Fatal(err)
		}
		adv := adversary.NewRandom(n/2, 8, seed)
		eng, err := sim.New(sim.Config{Adversary: adv}, procs)
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		if err := proto.Validate(res.Decisions, n); err != nil {
			t.Fatalf("seed=%d: %v", seed, err)
		}
		if len(res.Decisions)+len(res.Crashed) != n {
			t.Fatalf("seed=%d: %d + %d != %d", seed, len(res.Decisions), len(res.Crashed), n)
		}
	}
}

// TestNaiveFastMatchesSim is the baseline's equivalence test: the central
// failure-free simulation must agree with NaiveBall under the reference
// engine round for round and name for name.
func TestNaiveFastMatchesSim(t *testing.T) {
	t.Parallel()
	const n = 48
	for seed := uint64(0); seed < 5; seed++ {
		labels := ids.Random(n, seed+90)
		procs, err := NewNaiveBalls(n, seed, labels)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := sim.New(sim.Config{}, procs)
		if err != nil {
			t.Fatal(err)
		}
		want, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		rounds, names, decRounds, err := RunNaiveFast(n, seed, labels)
		if err != nil {
			t.Fatal(err)
		}
		if rounds != want.Rounds {
			t.Fatalf("seed=%d: fast %d rounds, sim %d", seed, rounds, want.Rounds)
		}
		for i, d := range want.Decisions {
			if decRounds[i] != d.Round || names[i] != d.Name {
				t.Fatalf("seed=%d ball %d: fast (%d, round %d), sim %+v", seed, i, names[i], decRounds[i], d)
			}
		}
	}
}

func TestNaiveRoundsGrowLogarithmically(t *testing.T) {
	t.Parallel()
	// Averaged over seeds, rounds should grow roughly like log2 n: the
	// point of the baseline. Sanity-check the growth direction and a loose
	// magnitude band rather than a tight constant.
	mean := func(n int) float64 {
		total := 0
		const reps = 10
		for seed := uint64(0); seed < reps; seed++ {
			rounds, _, _, err := RunNaiveFast(n, seed, ids.Sequential(n))
			if err != nil {
				t.Fatal(err)
			}
			total += rounds
		}
		return float64(total) / reps
	}
	small, large := mean(1<<6), mean(1<<12)
	if large <= small {
		t.Fatalf("rounds did not grow with n: %f vs %f", small, large)
	}
	if large > 4*math.Log2(1<<12) {
		t.Fatalf("rounds far above logarithmic band: %f", large)
	}
}

func TestParallelChoicePlacesEveryone(t *testing.T) {
	t.Parallel()
	for _, d := range []int{1, 2, 4} {
		res, err := RunParallelChoice(1024, d, 5, 0)
		if err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
		if res.Placed != 1024 || res.MaxLoad != 1 || res.Collisions != 0 {
			t.Fatalf("d=%d: %+v", d, res)
		}
	}
}

func TestParallelChoiceMoreChoicesFewerRounds(t *testing.T) {
	t.Parallel()
	avg := func(d int) float64 {
		total := 0
		for seed := uint64(0); seed < 8; seed++ {
			res, err := RunParallelChoice(1<<12, d, seed, 0)
			if err != nil {
				t.Fatal(err)
			}
			total += res.Rounds
		}
		return float64(total) / 8
	}
	if d1, d4 := avg(1), avg(4); d4 >= d1 {
		t.Fatalf("d=4 (%f rounds) not faster than d=1 (%f rounds)", d4, d1)
	}
}

func TestRelaxedOneShotIsNotOneToOne(t *testing.T) {
	t.Parallel()
	res, err := RunRelaxedOneShot(1<<12, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 1 {
		t.Fatalf("rounds = %d", res.Rounds)
	}
	if res.MaxLoad < 2 || res.Collisions == 0 {
		t.Fatalf("one-shot allocation unexpectedly perfect: %+v", res)
	}
}

func TestSequentialDChoicePowerOfTwoChoices(t *testing.T) {
	t.Parallel()
	const n = 1 << 14
	max1, max2 := 0, 0
	for seed := uint64(0); seed < 5; seed++ {
		r1, err := RunSequentialDChoice(n, 1, seed)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := RunSequentialDChoice(n, 2, seed)
		if err != nil {
			t.Fatal(err)
		}
		max1 += r1.MaxLoad
		max2 += r2.MaxLoad
	}
	if max2 >= max1 {
		t.Fatalf("two choices (%d) not better than one (%d)", max2, max1)
	}
}

func TestInvalidParameters(t *testing.T) {
	t.Parallel()
	if _, err := RunParallelChoice(0, 1, 1, 0); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := RunRelaxedOneShot(4, 0, 1); err == nil {
		t.Fatal("d=0 accepted")
	}
	if _, err := NewNaiveBall(0, 1, 1); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := NewNaiveBalls(3, 1, []proto.ID{1}); err == nil {
		t.Fatal("label mismatch accepted")
	}
	if _, _, _, err := RunNaiveFast(2, 1, []proto.ID{7, 7}); err == nil {
		t.Fatal("duplicate labels accepted")
	}
}
