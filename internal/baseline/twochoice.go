package baseline

import (
	"fmt"

	"ballsintoleaves/internal/rng"
)

// PlacementResult summarizes one parallel load-balancing run.
type PlacementResult struct {
	// Rounds is the number of communication rounds used.
	Rounds int
	// MaxLoad is the largest number of balls assigned to one bin.
	MaxLoad int
	// Collisions counts balls sharing a bin with at least one other ball
	// (zero iff the allocation is one-to-one).
	Collisions int
	// Placed counts balls that obtained a bin.
	Placed int
}

// RunParallelChoice simulates the capacity-one parallel d-choice protocol
// (the [1]/[17] family adapted to exclusive bins): in each round every
// unplaced ball probes d uniformly random bins; each still-free bin accepts
// the lowest-labelled ball probing it; losers retry. The allocation is
// one-to-one by construction, and the experiment measures how many rounds
// that exclusivity costs (Θ(log n / log d + log log n)-ish for d ≥ 2,
// Θ(log n) for d = 1 — compare experiment E2's naive renaming, which is the
// message-passing rendering of d = 1).
//
// maxRounds caps the run; an error is returned if balls remain unplaced.
func RunParallelChoice(n, d int, seed uint64, maxRounds int) (PlacementResult, error) {
	if n < 1 || d < 1 {
		return PlacementResult{}, fmt.Errorf("baseline: invalid n=%d d=%d", n, d)
	}
	if maxRounds <= 0 {
		maxRounds = 10*n + 64
	}
	src := rng.Derive(seed, 0x2c01ce)
	owner := make([]int, n) // bin -> ball, -1 free
	for i := range owner {
		owner[i] = -1
	}
	unplaced := make([]int, n)
	for i := range unplaced {
		unplaced[i] = i
	}
	res := PlacementResult{}
	claim := make(map[int]int, n) // bin -> lowest prober this round
	for len(unplaced) > 0 {
		if res.Rounds >= maxRounds {
			return res, fmt.Errorf("baseline: %d balls unplaced after %d rounds", len(unplaced), res.Rounds)
		}
		res.Rounds++
		clear(claim)
		for _, ball := range unplaced {
			for probe := 0; probe < d; probe++ {
				bin := src.Intn(n)
				if owner[bin] != -1 {
					continue
				}
				if prev, ok := claim[bin]; !ok || ball < prev {
					claim[bin] = ball
				}
			}
		}
		next := unplaced[:0]
		won := make(map[int]bool, len(claim))
		for bin, ball := range claim {
			if !won[ball] { // a ball may win several probes; keep one bin
				owner[bin] = ball
				won[ball] = true
				res.Placed++
			}
		}
		for _, ball := range unplaced {
			if !won[ball] {
				next = append(next, ball)
			}
		}
		unplaced = next
	}
	res.MaxLoad = 1
	return res, nil
}

// RunRelaxedOneShot simulates the relaxed d-choice allocation the paper's
// related-work section rules out for renaming: every ball independently
// probes d bins and commits to the least-loaded (load snapshot taken before
// the round, ties to the lower bin index), all in one communication round.
// The allocation is fast but not one-to-one; the returned MaxLoad and
// Collisions quantify exactly why such load balancers cannot be used for
// tight renaming (experiment E9).
func RunRelaxedOneShot(n, d int, seed uint64) (PlacementResult, error) {
	if n < 1 || d < 1 {
		return PlacementResult{}, fmt.Errorf("baseline: invalid n=%d d=%d", n, d)
	}
	src := rng.Derive(seed, 0x2c02ce)
	load := make([]int, n)
	for ball := 0; ball < n; ball++ {
		// In the parallel one-shot setting the load snapshot is all-zero,
		// so probes carry no information and the ball commits to its first
		// probe; d only matters across multiple rounds. This is the
		// honest rendering of "one round of parallel d-choice".
		best := src.Intn(n)
		for probe := 1; probe < d; probe++ {
			_ = src.Intn(n) // remaining probes are sent but uninformative
		}
		load[best]++
	}
	res := PlacementResult{Rounds: 1, Placed: n}
	for _, l := range load {
		if l > res.MaxLoad {
			res.MaxLoad = l
		}
		if l > 1 {
			res.Collisions += l
		}
	}
	return res, nil
}

// RunSequentialDChoice simulates the classical sequential greedy d-choice
// process (Mitzenmacher [18]): balls arrive one at a time and join the
// least-loaded of d sampled bins. Max load is Θ(log n / log log n) for
// d = 1 and log log n / log d + O(1) for d ≥ 2 — the "power of two
// choices". Included as the textbook reference point for E9; it needs a
// coordinator and offers no fault story, which is precisely why it does not
// solve the paper's problem.
func RunSequentialDChoice(n, d int, seed uint64) (PlacementResult, error) {
	if n < 1 || d < 1 {
		return PlacementResult{}, fmt.Errorf("baseline: invalid n=%d d=%d", n, d)
	}
	src := rng.Derive(seed, 0x2c03ce)
	load := make([]int, n)
	for ball := 0; ball < n; ball++ {
		best := src.Intn(n)
		for probe := 1; probe < d; probe++ {
			bin := src.Intn(n)
			if load[bin] < load[best] {
				best = bin
			}
		}
		load[best]++
	}
	res := PlacementResult{Rounds: n, Placed: n}
	for _, l := range load {
		if l > res.MaxLoad {
			res.MaxLoad = l
		}
		if l > 1 {
			res.Collisions += l
		}
	}
	return res, nil
}
