// Package baseline implements the comparison algorithms the paper positions
// Balls-into-Leaves against:
//
//   - Naive parallel balls-into-bins renaming (flat random proposals with
//     lowest-label tie-breaking): the classic load-balancing strategy
//     adapted to be crash-tolerant. It solves tight renaming but needs
//     Θ(log n) rounds w.h.p. — the gap experiment E2 quantifies.
//   - Parallel d-choice placement (à la Adler et al. [1] and
//     Lenzen–Wattenhofer [17]): the sub-logarithmic load balancers the
//     related-work section rules out, implemented in both their
//     capacity-one form (needs retry rounds) and their relaxed form (fast
//     but not one-to-one) for experiment E9.
//
// The deterministic comparison-based baseline (rank-descent) lives in
// internal/core as core.DeterministicPaths, since it reuses the paper's own
// tree machinery.
package baseline

import "fmt"

// Pool tracks which target names are free with O(log n) selection of the
// k-th smallest free name, backed by a Fenwick tree. Each naive ball keeps
// one Pool as its local view of the namespace.
type Pool struct {
	n     int
	free  int
	taken []bool
	bit   []int32 // Fenwick tree over free indicators, 1-based
}

// NewPool returns a pool of n names (0-based), all free.
func NewPool(n int) *Pool {
	if n < 1 {
		panic(fmt.Sprintf("baseline: pool needs n >= 1, got %d", n))
	}
	p := &Pool{n: n, free: n, taken: make([]bool, n), bit: make([]int32, n+1)}
	for i := 1; i <= n; i++ {
		p.bit[i] += 1
		if j := i + (i & -i); j <= n {
			p.bit[j] += p.bit[i]
		}
	}
	return p
}

// Clone returns an independent copy.
func (p *Pool) Clone() *Pool {
	cp := &Pool{n: p.n, free: p.free, taken: make([]bool, p.n), bit: make([]int32, p.n+1)}
	copy(cp.taken, p.taken)
	copy(cp.bit, p.bit)
	return cp
}

// N returns the namespace size.
func (p *Pool) N() int { return p.n }

// FreeCount returns the number of free names.
func (p *Pool) FreeCount() int { return p.free }

// Taken reports whether name is marked taken.
func (p *Pool) Taken(name int) bool { return p.taken[name] }

// Take marks a name taken; it is idempotent so that repeated observations
// of the same winning proposal are harmless.
func (p *Pool) Take(name int) {
	if name < 0 || name >= p.n {
		panic(fmt.Sprintf("baseline: Take(%d) out of [0,%d)", name, p.n))
	}
	if p.taken[name] {
		return
	}
	p.taken[name] = true
	p.free--
	for i := name + 1; i <= p.n; i += i & -i {
		p.bit[i]--
	}
}

// SelectFree returns the k-th (0-based) smallest free name. It panics if
// k >= FreeCount.
func (p *Pool) SelectFree(k int) int {
	if k < 0 || k >= p.free {
		panic(fmt.Sprintf("baseline: SelectFree(%d) with %d free", k, p.free))
	}
	// Binary lifting over the Fenwick tree: find the smallest prefix with
	// k+1 free names.
	target := int32(k + 1)
	pos := 0
	logn := 1
	for 1<<logn <= p.n {
		logn++
	}
	for step := 1 << (logn - 1); step > 0; step >>= 1 {
		next := pos + step
		if next <= p.n && p.bit[next] < target {
			pos = next
			target -= p.bit[next]
		}
	}
	return pos // pos is the 1-based prefix end minus one == 0-based name
}
