package workload

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// The experiment suite spends essentially all of its time in independent
// replicate simulations: the same configuration re-run under different
// seeds. Each replicate builds its own Cohort (or engine) over the shared
// immutable topology, so replicates parallelize perfectly — the only care
// needed is aggregation order.
//
// forEachIndex is the replicate engine: it fans fn(0..count-1) across a
// bounded worker pool and guarantees deterministic results by construction,
// because every job writes only into its own index-addressed slot and the
// caller aggregates slots in index order after the barrier. Scheduling
// order, worker count, and interleaving cannot influence any reported
// number: same seeds in, same tables out, with -parallel 1 or 64.

// workers resolves an Options.Parallel setting to a worker count: 0 and 1
// run inline, negative values use every available CPU.
func (o Options) workers() int {
	p := o.Parallel
	if p < 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p < 1 {
		p = 1
	}
	return p
}

// forEachIndex runs fn(i) for every i in [0, count), using up to
// o.workers() concurrent workers. fn must confine its writes to data owned
// by index i (typically a slot in a preallocated slice). The returned error
// is the lowest-index failure; when running sequentially, later jobs are
// skipped after a failure exactly as a plain loop would.
func (o Options) forEachIndex(count int, fn func(i int) error) error {
	p := o.workers()
	if p > count {
		p = count
	}
	if p <= 1 {
		for i := 0; i < count; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, count)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(p)
	for w := 0; w < p; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= count {
					return
				}
				errs[i] = runReplicate(i, fn)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// runReplicate invokes one job, converting a panic into an error so a
// single bad replicate fails its experiment instead of killing the whole
// suite mid-flight with goroutines still running.
func runReplicate(i int, fn func(i int) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("replicate %d panicked: %v", i, r)
		}
	}()
	return fn(i)
}
