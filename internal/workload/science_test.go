package workload

import (
	"testing"

	"ballsintoleaves/internal/adversary"
	"ballsintoleaves/internal/core"
	"ballsintoleaves/internal/stats"
)

// These tests encode the paper's quantitative claims as assertions, so the
// reproduction cannot silently drift: if an implementation change bends a
// round-complexity shape, CI fails. They are statistical, so thresholds are
// generous; the experiment tables (cmd/blbench) carry the precise numbers.

// meanRounds measures mean rounds over seeds for one configuration.
func meanRounds(t *testing.T, n, seeds int, strategy core.PathStrategy,
	mkAdv func(seed uint64) adversary.Strategy) float64 {
	t.Helper()
	rounds, err := roundsSample(Options{Parallel: -1}, n, seeds, strategy, mkAdv)
	if err != nil {
		t.Fatal(err)
	}
	return stats.SummarizeInts(rounds).Mean
}

// TestTheorem2SubLogarithmicGrowth: squaring n (doubling log n) must add
// only a constant number of rounds — the log log signature. A Θ(log n)
// algorithm would double its rounds from n=2^6 to n=2^12.
func TestTheorem2SubLogarithmicGrowth(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("statistical shape test")
	}
	r6 := meanRounds(t, 1<<6, 10, core.RandomPaths, nil)
	r12 := meanRounds(t, 1<<12, 10, core.RandomPaths, nil)
	r16 := meanRounds(t, 1<<16, 6, core.RandomPaths, nil)
	if r12-r6 > 4 {
		t.Fatalf("n 2^6→2^12 added %.1f rounds; not sub-logarithmic", r12-r6)
	}
	if r16-r12 > 4 {
		t.Fatalf("n 2^12→2^16 added %.1f rounds; not sub-logarithmic", r16-r12)
	}
	if r16 >= 2*r6 {
		t.Fatalf("rounds doubled from %.1f to %.1f over 2^6→2^16: logarithmic growth", r6, r16)
	}
}

// TestSeparationGrowsWithN: the deterministic comparator's advantage-free
// rounds must pull away from Balls-into-Leaves as n grows (claim C6).
func TestSeparationGrowsWithN(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("statistical shape test")
	}
	sepAt := func(n int) float64 {
		det := meanRounds(t, n, 4, core.LevelDescent, nil)
		bil := meanRounds(t, n, 8, core.RandomPaths, nil)
		return det / bil
	}
	small, large := sepAt(1<<6), sepAt(1<<14)
	if large <= small {
		t.Fatalf("separation did not grow: %.2f at 2^6 vs %.2f at 2^14", small, large)
	}
	if large < 2 {
		t.Fatalf("separation at 2^14 only %.2fx", large)
	}
}

// TestTheorem4EarlyTerminationScales: rounds of the early-terminating
// variant must depend on f, not n: with few failures it beats the
// failure-free randomized algorithm at the same n.
func TestTheorem4EarlyTerminationScales(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("statistical shape test")
	}
	const n = 1 << 12
	mkAdv := func(f int) func(uint64) adversary.Strategy {
		return func(seed uint64) adversary.Strategy { return adversary.NewRandom(f, 1, seed) }
	}
	f0 := meanRounds(t, n, 6, core.HybridPaths, nil)
	f4 := meanRounds(t, n, 6, core.HybridPaths, mkAdv(4))
	f256 := meanRounds(t, n, 6, core.HybridPaths, mkAdv(256))
	bilFF := meanRounds(t, n, 6, core.RandomPaths, nil)
	if f0 != 3 {
		t.Fatalf("failure-free early termination took %.1f rounds, want exactly 3", f0)
	}
	if f4 >= bilFF {
		t.Fatalf("f=4 (%.1f rounds) not faster than failure-free full randomization (%.1f)", f4, bilFF)
	}
	if f256 > bilFF+2 {
		t.Fatalf("f=256 (%.1f rounds) far above the O(lglg n) ceiling (%.1f)", f256, bilFF)
	}
}

// TestSection53CrashesDoNotSlow: heavy adaptive crashing must stay within
// a small constant of the failure-free rounds.
func TestSection53CrashesDoNotSlow(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("statistical shape test")
	}
	const n = 1 << 10
	base := meanRounds(t, n, 8, core.RandomPaths, nil)
	crash := meanRounds(t, n, 8, core.RandomPaths, func(seed uint64) adversary.Strategy {
		return adversary.NewRandom(n/2, 13, seed)
	})
	if crash > base+3 {
		t.Fatalf("crashing half the system raised rounds %.1f → %.1f", base, crash)
	}
}

// TestSection6SplitterCollisions: one crash against the rank-indexed first
// phase must displace close to n/2 balls (claim C10), and the run must
// still finish quickly.
func TestSection6SplitterCollisions(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("statistical shape test")
	}
	const n = 1 << 12
	cfg := core.Config{
		N: n, Seed: 5, Strategy: core.HybridPaths, Metrics: true,
		Adversary: &adversary.Splitter{Round: 1},
	}
	res, err := RunCohort(cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	p1 := res.Metrics.PerPhase[0]
	stuck := p1.Balls - p1.AtLeaves
	if stuck < n/2-n/8 || stuck > n/2+n/8 {
		t.Fatalf("splitter displaced %d balls, want ~%d", stuck, n/2)
	}
	if res.Rounds > 9 {
		t.Fatalf("recovery took %d rounds", res.Rounds)
	}
}

// TestLemma6ContentionBound: after O(lglg n) phases the max per-node
// contention must sit far below the O(log² n) envelope.
func TestLemma6ContentionBound(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("statistical shape test")
	}
	const n = 1 << 16
	res, err := RunCohort(core.Config{N: n, Seed: 2, Metrics: true}, 3)
	if err != nil {
		t.Fatal(err)
	}
	lg := 16.0
	for _, s := range res.Metrics.PerPhase {
		if float64(s.MaxAtNode) > lg*lg {
			t.Fatalf("phase %d contention %d exceeds lg²n = %.0f", s.Phase, s.MaxAtNode, lg*lg)
		}
		if s.Phase >= 4 && s.MaxAtNode > int(lg) {
			t.Fatalf("phase %d contention %d still above lg n", s.Phase, s.MaxAtNode)
		}
	}
}
