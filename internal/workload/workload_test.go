package workload

import (
	"strings"
	"testing"

	"ballsintoleaves/internal/core"
)

// TestAllExperimentsQuick executes the entire suite in quick mode: every
// experiment must run to completion and produce well-formed tables. This is
// the integration test for the reproduction harness itself.
func TestAllExperimentsQuick(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("experiment suite")
	}
	opt := Options{Quick: true, Seeds: 4}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			tables, err := e.Run(opt)
			if err != nil {
				t.Fatal(err)
			}
			if len(tables) == 0 {
				t.Fatal("no tables")
			}
			for _, tb := range tables {
				if len(tb.Rows) == 0 {
					t.Fatalf("table %q has no rows", tb.Title)
				}
				var sb strings.Builder
				tb.Render(&sb)
				if !strings.Contains(sb.String(), tb.Cols[0]) {
					t.Fatalf("render of %q missing header", tb.Title)
				}
				sb.Reset()
				tb.RenderCSV(&sb)
				if sb.Len() == 0 {
					t.Fatalf("csv of %q empty", tb.Title)
				}
			}
		})
	}
}

func TestByID(t *testing.T) {
	t.Parallel()
	if _, ok := ByID("E1"); !ok {
		t.Fatal("E1 missing")
	}
	if _, ok := ByID("E99"); ok {
		t.Fatal("E99 found")
	}
	seen := map[string]bool{}
	for _, e := range All() {
		if seen[e.ID] {
			t.Fatalf("duplicate experiment ID %s", e.ID)
		}
		seen[e.ID] = true
		if e.Title == "" || e.Run == nil {
			t.Fatalf("experiment %s incomplete", e.ID)
		}
	}
}

func TestOptionsSeeds(t *testing.T) {
	t.Parallel()
	if (Options{}).seeds() != 30 {
		t.Fatal("default seeds")
	}
	if (Options{Quick: true}).seeds() != 8 {
		t.Fatal("quick seeds")
	}
	if (Options{Seeds: 3}).seeds() != 3 {
		t.Fatal("explicit seeds")
	}
}

func TestRunCohortHelper(t *testing.T) {
	t.Parallel()
	res, err := RunCohort(core.Config{N: 64, Seed: 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Decisions) != 64 {
		t.Fatalf("%d decisions", len(res.Decisions))
	}
}
