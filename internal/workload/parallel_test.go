package workload

import (
	"bytes"
	"errors"
	"sync/atomic"
	"testing"
)

// TestForEachIndexCoversAll checks every index runs exactly once at any
// worker count.
func TestForEachIndexCoversAll(t *testing.T) {
	for _, p := range []int{0, 1, 3, 16, -1} {
		const count = 57
		hits := make([]int32, count)
		err := Options{Parallel: p}.forEachIndex(count, func(i int) error {
			atomic.AddInt32(&hits[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("parallel=%d: %v", p, err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("parallel=%d: index %d ran %d times", p, i, h)
			}
		}
	}
}

// TestForEachIndexFirstErrorByIndex checks the reported error is the
// lowest-index failure regardless of scheduling.
func TestForEachIndexFirstErrorByIndex(t *testing.T) {
	want := errors.New("boom-3")
	err := Options{Parallel: 8}.forEachIndex(32, func(i int) error {
		switch i {
		case 3:
			return want
		case 17:
			return errors.New("boom-17")
		}
		return nil
	})
	if !errors.Is(err, want) {
		t.Fatalf("got %v, want boom-3", err)
	}
}

// TestForEachIndexRecoversPanics checks one panicking replicate surfaces as
// an error instead of crashing the suite.
func TestForEachIndexRecoversPanics(t *testing.T) {
	err := Options{Parallel: 4}.forEachIndex(8, func(i int) error {
		if i == 5 {
			panic("kaboom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected an error from the panicking replicate")
	}
}

// TestParallelismDoesNotChangeResults renders experiments sequentially and
// with a saturated worker pool and requires byte-identical tables: the
// deterministic, seed-indexed aggregation contract of the parallel engine.
// E4 exercises crash-heavy cohort runs (view groups), E13 the arity sweep.
func TestParallelismDoesNotChangeResults(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-experiment comparison is seconds-long")
	}
	for _, id := range []string{"E4", "E13"} {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("experiment %s missing", id)
		}
		render := func(parallel int) string {
			tables, err := e.Run(Options{Quick: true, Seeds: 4, Parallel: parallel})
			if err != nil {
				t.Fatalf("%s parallel=%d: %v", id, parallel, err)
			}
			var buf bytes.Buffer
			for _, tb := range tables {
				tb.Render(&buf)
			}
			return buf.String()
		}
		seq := render(1)
		par := render(8)
		if seq != par {
			t.Errorf("%s: tables differ between -parallel 1 and -parallel 8:\n--- sequential ---\n%s\n--- parallel ---\n%s",
				id, seq, par)
		}
	}
}
