package workload

import (
	"fmt"
	"math"

	"ballsintoleaves/internal/adversary"
	"ballsintoleaves/internal/baseline"
	"ballsintoleaves/internal/core"
	"ballsintoleaves/internal/ids"
	"ballsintoleaves/internal/proto"
	"ballsintoleaves/internal/sim"
	"ballsintoleaves/internal/stats"
)

// runE1 measures failure-free rounds as n doubles and fits both growth
// models; Theorem 2 predicts the log log model wins decisively.
func runE1(opt Options) ([]*stats.Table, error) {
	maxExp := 18
	if opt.Quick {
		maxExp = 12
	}
	tb := stats.NewTable("E1: Balls-into-Leaves rounds vs n (failure-free)",
		"n", "phases(med)", "rounds(mean)", "rounds(med)", "rounds(p95)", "rounds(max)", "lglg(n)")
	var ns []int
	var meanRounds []float64
	for exp := 4; exp <= maxExp; exp += 2 {
		n := 1 << exp
		seeds := opt.seeds()
		if n >= 1<<16 && seeds > 12 {
			seeds = 12 // large runs: cap replicates to keep the sweep minutes-scale
		}
		rounds, err := roundsSample(opt, n, seeds, core.RandomPaths, nil)
		if err != nil {
			return nil, err
		}
		phases := make([]int, len(rounds))
		for i, r := range rounds {
			phases[i] = (r - 1) / 2
		}
		rs := stats.SummarizeInts(rounds)
		ps := stats.SummarizeInts(phases)
		tb.AddRow(stats.I(n), stats.F1(ps.Median), stats.F(rs.Mean), stats.F1(rs.Median),
			stats.F1(rs.P95), stats.F1(rs.Max), stats.F(math.Log2(math.Log2(float64(n)))))
		ns = append(ns, n)
		meanRounds = append(meanRounds, rs.Mean)
	}
	g := stats.FitGrowth(ns, meanRounds)
	tb.AddNote("fit rounds = a + b*lglg(n): slope=%s R2=%s | rounds = a + b*lg(n): slope=%s R2=%s",
		stats.F(g.LogLog.Slope), stats.F3(g.LogLog.R2), stats.F(g.Log.Slope), stats.F3(g.Log.R2))
	tb.AddNote("Theorem 2 predicts the lglg model fits with small slope; a lg-n algorithm would double rounds per column")
	return []*stats.Table{tb}, nil
}

// runE2 measures the separation: Balls-into-Leaves vs the deterministic
// Θ(log n) level-descent comparator (also under the rank-shifting
// adversary) and vs the naive randomized flat baseline.
func runE2(opt Options) ([]*stats.Table, error) {
	maxExp := 16
	if opt.Quick {
		maxExp = 10
	}
	tb := stats.NewTable("E2: separation — rounds (mean) per algorithm",
		"n", "BiL", "BiL+shift", "level-descent", "lvldesc+shift", "naive", "det/BiL", "lg(n)")
	shifter := func(seed uint64) adversary.Strategy { return &adversary.RankShifter{} }
	var ns []int
	var detRounds, bilRounds []float64
	for exp := 4; exp <= maxExp; exp += 2 {
		n := 1 << exp
		seeds := opt.seeds()
		if n >= 1<<12 && seeds > 12 {
			seeds = 12
		}
		bil, err := roundsSample(opt, n, seeds, core.RandomPaths, nil)
		if err != nil {
			return nil, err
		}
		bilShift, err := roundsSample(opt, n, seeds, core.RandomPaths, shifter)
		if err != nil {
			return nil, err
		}
		det, err := roundsSample(opt, n, seeds, core.LevelDescent, nil)
		if err != nil {
			return nil, err
		}
		detShift, err := roundsSample(opt, n, seeds, core.LevelDescent, shifter)
		if err != nil {
			return nil, err
		}
		naive := make([]int, seeds)
		if err := opt.forEachIndex(seeds, func(s int) error {
			seed := opt.BaseSeed + uint64(s)
			rounds, _, _, err := baseline.RunNaiveFast(n, seed, ids.Random(n, seed+0x9000))
			if err != nil {
				return err
			}
			naive[s] = rounds
			return nil
		}); err != nil {
			return nil, err
		}
		mBil := stats.SummarizeInts(bil).Mean
		mBilShift := stats.SummarizeInts(bilShift).Mean
		mDet := stats.SummarizeInts(det).Mean
		mDetShift := stats.SummarizeInts(detShift).Mean
		mNaive := stats.SummarizeInts(naive).Mean
		tb.AddRow(stats.I(n), stats.F(mBil), stats.F(mBilShift), stats.F(mDet), stats.F(mDetShift),
			stats.F(mNaive), stats.F(mDet/mBil), stats.F(math.Log2(float64(n))))
		ns = append(ns, n)
		detRounds = append(detRounds, mDet)
		bilRounds = append(bilRounds, mBil)
	}
	gd := stats.FitGrowth(ns, detRounds)
	gb := stats.FitGrowth(ns, bilRounds)
	tb.AddNote("level-descent vs lg(n): slope=%s R2=%s — exactly the deterministic Θ(lg n) regime [9]",
		stats.F(gd.Log.Slope), stats.F3(gd.Log.R2))
	tb.AddNote("BiL vs lglg(n): slope=%s R2=%s — the separation factor det/BiL grows with n (exponential gap)",
		stats.F(gb.LogLog.Slope), stats.F3(gb.LogLog.R2))
	tb.AddNote("naive flat renaming is randomized but needs Θ(lg n) rounds: randomization alone is not enough, the tree + priorities matter")
	return []*stats.Table{tb}, nil
}

// runE3 measures the early-terminating variant's rounds as a function of
// the number of crashes f injected during the init broadcast.
func runE3(opt Options) ([]*stats.Table, error) {
	n := 1 << 14
	maxF := 1 << 12
	if opt.Quick {
		n, maxF = 1<<10, 1<<8
	}
	tb := stats.NewTable(fmt.Sprintf("E3: early-terminating rounds vs failures f (n=%d)", n),
		"f", "rounds(mean)", "rounds(med)", "rounds(p95)", "lglg(f)")
	// All f crashes strike during the init broadcast with independent
	// random delivery masks, so each survivor's membership view (and hence
	// rank) shifts by a different amount — the worst case of Theorem 4's
	// analysis, where survivors collide on up to ceil(lg f) rank bits.
	mkAdv := func(f int) func(uint64) adversary.Strategy {
		return func(seed uint64) adversary.Strategy {
			return adversary.NewRandom(f, 1, seed)
		}
	}
	var fs []int
	var meanRounds []float64
	addRow := func(f int) error {
		var mk func(uint64) adversary.Strategy
		if f > 0 {
			mk = mkAdv(f)
		}
		rounds, err := roundsSample(opt, n, opt.seeds(), core.HybridPaths, mk)
		if err != nil {
			return err
		}
		s := stats.SummarizeInts(rounds)
		lglg := "-"
		if f >= 4 {
			lglg = stats.F(math.Log2(math.Log2(float64(f))))
			fs = append(fs, f)
			meanRounds = append(meanRounds, s.Mean)
		}
		tb.AddRow(stats.I(f), stats.F(s.Mean), stats.F1(s.Median), stats.F1(s.P95), lglg)
		return nil
	}
	if err := addRow(0); err != nil {
		return nil, err
	}
	for f := 1; f <= maxF; f *= 4 {
		if err := addRow(f); err != nil {
			return nil, err
		}
	}
	if len(fs) >= 2 {
		g := stats.FitGrowth(fs, meanRounds)
		tb.AddNote("fit rounds = a + b*lglg(f): slope=%s R2=%s (Theorem 4); f=0 row is deterministic 3 rounds (Theorem 3)",
			stats.F(g.LogLog.Slope), stats.F3(g.LogLog.R2))
	}
	return []*stats.Table{tb}, nil
}

// runE4 compares rounds under a spread of adaptive crash strategies against
// the failure-free baseline at fixed n.
func runE4(opt Options) ([]*stats.Table, error) {
	// Heavy random crash patterns fragment the survivors into many
	// distinct views, so the cohort pays one move pass per view group;
	// keep n moderate (the claim under test is the *ratio* to the
	// failure-free row, not absolute scale).
	n := 1 << 11
	if opt.Quick {
		n = 1 << 9
	}
	seedCap := opt.seeds()
	if seedCap > 10 {
		seedCap = 10
	}
	tb := stats.NewTable(fmt.Sprintf("E4: rounds under adaptive crash strategies (n=%d)", n),
		"adversary", "crashes(mean)", "rounds(mean)", "rounds(p95)", "vs failure-free")
	cases := []struct {
		name string
		mk   func(seed uint64) adversary.Strategy
	}{
		{"none", nil},
		{"splitter", func(uint64) adversary.Strategy { return &adversary.Splitter{Round: 2} }},
		{fmt.Sprintf("random f=%d", n/4), func(seed uint64) adversary.Strategy { return adversary.NewRandom(n/4, 13, seed) }},
		{fmt.Sprintf("random f=%d", n/2), func(seed uint64) adversary.Strategy { return adversary.NewRandom(n/2, 13, seed) }},
		{fmt.Sprintf("random f=%d", 3*n/4), func(seed uint64) adversary.Strategy { return adversary.NewRandom(3*n/4, 13, seed) }},
		{"deep-target", func(seed uint64) adversary.Strategy { return &adversary.DeepTarget{PerRound: 8, Seed: seed} }},
		{"one-per-phase", func(uint64) adversary.Strategy { return &adversary.OnePerPhase{} }},
		{"rank-shifter", func(uint64) adversary.Strategy { return &adversary.RankShifter{} }},
	}
	var baseMean float64
	for i, tc := range cases {
		rounds := make([]int, seedCap)
		crashes := make([]int, seedCap)
		if err := opt.forEachIndex(seedCap, func(s int) error {
			seed := opt.BaseSeed + uint64(s)
			cfg := core.Config{N: n, Seed: seed}
			if tc.mk != nil {
				cfg.Adversary = tc.mk(seed)
			}
			res, err := RunCohort(cfg, seed+0x9000)
			if err != nil {
				return err
			}
			rounds[s] = res.Rounds
			crashes[s] = res.Crashes
			return nil
		}); err != nil {
			return nil, err
		}
		rs := stats.SummarizeInts(rounds)
		cs := stats.SummarizeInts(crashes)
		if i == 0 {
			baseMean = rs.Mean
		}
		tb.AddRow(tc.name, stats.F1(cs.Mean), stats.F(rs.Mean), stats.F1(rs.P95),
			fmt.Sprintf("%sx", stats.F(rs.Mean/baseMean)))
	}
	tb.AddNote("Section 5.3 predicts every row stays within a small constant of the failure-free row")
	return []*stats.Table{tb}, nil
}

// runE5 records the per-phase maximum node contention bmax(φ) and compares
// it with the paper's O(log² n) threshold.
func runE5(opt Options) ([]*stats.Table, error) {
	exps := []int{10, 14, 18}
	if opt.Quick {
		exps = []int{8, 10, 12}
	}
	results := make([]core.Result, len(exps))
	if err := opt.forEachIndex(len(exps), func(i int) error {
		cfg := core.Config{N: 1 << exps[i], Seed: opt.BaseSeed + 1, Metrics: true}
		res, err := RunCohort(cfg, opt.BaseSeed+0x5000)
		if err != nil {
			return err
		}
		results[i] = res
		return nil
	}); err != nil {
		return nil, err
	}
	var tables []*stats.Table
	for i, exp := range exps {
		n := 1 << exp
		res := results[i]
		tb := stats.NewTable(fmt.Sprintf("E5: contention decay bmax(phase) (n=%d, seed=%d)", n, opt.BaseSeed+1),
			"phase", "bmax", "bmax_inner", "balls_inner", "at_leaves", "lg2(n)^2")
		lg2sq := math.Pow(math.Log2(float64(n)), 2)
		for _, s := range res.Metrics.PerPhase {
			tb.AddRow(stats.I(s.Phase), stats.I(s.MaxAtNode), stats.I(s.MaxAtInner),
				stats.I(s.Balls-s.AtLeaves), stats.I(s.AtLeaves), stats.F1(lg2sq))
		}
		tb.AddNote("Lemma 6: bmax drops below O(lg² n)=%s within O(lglg n)≈%s phases",
			stats.F1(lg2sq), stats.F1(math.Log2(math.Log2(float64(n)))))
		tables = append(tables, tb)
	}
	return tables, nil
}

// runE6 tracks the busiest root-to-leaf path's population and the fraction
// escaping every two phases.
func runE6(opt Options) ([]*stats.Table, error) {
	n := 1 << 16
	if opt.Quick {
		n = 1 << 12
	}
	tb := stats.NewTable(fmt.Sprintf("E6: busiest-path drain (n=%d)", n),
		"phase", "busiest_path_load", "escape_frac_2phases")
	cfg := core.Config{N: n, Seed: opt.BaseSeed + 2, Metrics: true}
	res, err := RunCohort(cfg, opt.BaseSeed+0x6000)
	if err != nil {
		return nil, err
	}
	snaps := res.Metrics.PerPhase
	for i, s := range snaps {
		escape := "-"
		if i >= 2 && snaps[i-2].BusiestPathLoad > 0 {
			frac := 1 - float64(s.BusiestPathLoad)/float64(snaps[i-2].BusiestPathLoad)
			escape = stats.F(frac)
		}
		tb.AddRow(stats.I(s.Phase), stats.I(s.BusiestPathLoad), escape)
	}
	tb.AddNote("Lemma 9 predicts a constant escape fraction per two phases; Lemma 10 predicts the path empties in O(lg M) phases")
	return []*stats.Table{tb}, nil
}

// runE7 measures how well a single phase disperses the balls (the paper's
// Figure 2 intuition) across sizes.
func runE7(opt Options) ([]*stats.Table, error) {
	maxExp := 16
	if opt.Quick {
		maxExp = 12
	}
	tb := stats.NewTable("E7: dispersion after phase 1 (failure-free)",
		"n", "at_leaves_p1(%)", "at_leaves_p2(%)", "mean_depth_p1", "max_depth")
	var sizes []int
	for exp := 8; exp <= maxExp; exp += 2 {
		sizes = append(sizes, 1<<exp)
	}
	results := make([]core.Result, len(sizes))
	if err := opt.forEachIndex(len(sizes), func(i int) error {
		cfg := core.Config{N: sizes[i], Seed: opt.BaseSeed + 3, Metrics: true}
		res, err := RunCohort(cfg, opt.BaseSeed+0x7000)
		if err != nil {
			return err
		}
		results[i] = res
		return nil
	}); err != nil {
		return nil, err
	}
	for i, n := range sizes {
		snaps := results[i].Metrics.PerPhase
		p1 := snaps[0]
		meanDepth := 0.0
		for d, c := range p1.DepthHist {
			meanDepth += float64(d) * float64(c)
		}
		meanDepth /= float64(p1.Balls)
		p2Frac := "-"
		if len(snaps) > 1 {
			p2Frac = stats.F1(100 * float64(snaps[1].AtLeaves) / float64(snaps[1].Balls))
		}
		tb.AddRow(stats.I(n), stats.F1(100*float64(p1.AtLeaves)/float64(p1.Balls)),
			p2Frac, stats.F(meanDepth), stats.I(len(p1.DepthHist)-1))
	}
	tb.AddNote("one phase already places the overwhelming majority of balls on leaves (Figure 2b)")
	return []*stats.Table{tb}, nil
}

// runE8 verifies deterministic termination (Lemma 11): even a slow-burn
// adversary crashing one ball per phase never pushes the run near the O(n)
// bound.
func runE8(opt Options) ([]*stats.Table, error) {
	maxExp := 12
	if opt.Quick {
		maxExp = 10
	}
	tb := stats.NewTable("E8: worst observed phases vs deterministic bound",
		"n", "adversary", "phases(max)", "bound(n+1)", "ratio")
	for exp := 4; exp <= maxExp; exp += 2 {
		n := 1 << exp
		for _, tc := range []struct {
			name string
			mk   func(seed uint64) adversary.Strategy
		}{
			{"one-per-phase", func(uint64) adversary.Strategy { return &adversary.OnePerPhase{} }},
			{"rank-shifter", func(uint64) adversary.Strategy { return &adversary.RankShifter{} }},
		} {
			phases := make([]int, opt.seeds())
			if err := opt.forEachIndex(opt.seeds(), func(s int) error {
				seed := opt.BaseSeed + uint64(s)
				cfg := core.Config{N: n, Seed: seed, Adversary: tc.mk(seed)}
				res, err := RunCohort(cfg, seed+0x8000)
				if err != nil {
					return err
				}
				phases[s] = res.Phases
				return nil
			}); err != nil {
				return nil, err
			}
			maxPhases := 0
			for _, p := range phases {
				if p > maxPhases {
					maxPhases = p
				}
			}
			tb.AddRow(stats.I(n), tc.name, stats.I(maxPhases), stats.I(n+1),
				stats.F3(float64(maxPhases)/float64(n+1)))
		}
	}
	tb.AddNote("Lemma 11: at most one fault-free phase per unfinished ball; observed phases stay far below the bound")
	return []*stats.Table{tb}, nil
}

// runE9 contrasts the load-balancing relatives: fast but not one-to-one
// (relaxed), or one-to-one but multi-round (capacity-one d-choice).
func runE9(opt Options) ([]*stats.Table, error) {
	maxExp := 16
	if opt.Quick {
		maxExp = 12
	}
	tb := stats.NewTable("E9: load balancers vs tight renaming",
		"n", "relaxed d=2: maxload", "seq d=1: maxload", "seq d=2: maxload",
		"par d=1: rounds", "par d=2: rounds", "BiL: rounds")
	for exp := 8; exp <= maxExp; exp += 2 {
		n := 1 << exp
		seeds := opt.seeds()
		if seeds > 10 {
			seeds = 10
		}
		relaxed := make([]int, seeds)
		seq1 := make([]int, seeds)
		seq2 := make([]int, seeds)
		par1 := make([]int, seeds)
		par2 := make([]int, seeds)
		bil := make([]int, seeds)
		if err := opt.forEachIndex(seeds, func(s int) error {
			seed := opt.BaseSeed + uint64(s)
			r, err := baseline.RunRelaxedOneShot(n, 2, seed)
			if err != nil {
				return err
			}
			relaxed[s] = r.MaxLoad
			q1, err := baseline.RunSequentialDChoice(n, 1, seed)
			if err != nil {
				return err
			}
			seq1[s] = q1.MaxLoad
			q2, err := baseline.RunSequentialDChoice(n, 2, seed)
			if err != nil {
				return err
			}
			seq2[s] = q2.MaxLoad
			p1, err := baseline.RunParallelChoice(n, 1, seed, 0)
			if err != nil {
				return err
			}
			par1[s] = p1.Rounds
			p2, err := baseline.RunParallelChoice(n, 2, seed, 0)
			if err != nil {
				return err
			}
			par2[s] = p2.Rounds
			res, err := RunCohort(core.Config{N: n, Seed: seed}, seed+0x9100)
			if err != nil {
				return err
			}
			bil[s] = res.Rounds
			return nil
		}); err != nil {
			return nil, err
		}
		tb.AddRow(stats.I(n),
			stats.F1(stats.SummarizeInts(relaxed).Mean),
			stats.F1(stats.SummarizeInts(seq1).Mean),
			stats.F1(stats.SummarizeInts(seq2).Mean),
			stats.F1(stats.SummarizeInts(par1).Mean),
			stats.F1(stats.SummarizeInts(par2).Mean),
			stats.F1(stats.SummarizeInts(bil).Mean))
	}
	tb.AddNote("relaxed allocation is one round but maxload > 1 (not renaming); capacity-one variants need retry rounds; BiL gives maxload 1 in O(lglg n) rounds with crash tolerance")
	return []*stats.Table{tb}, nil
}

// runE10 reports communication costs per process per round.
func runE10(opt Options) ([]*stats.Table, error) {
	maxExp := 14
	if opt.Quick {
		maxExp = 10
	}
	tb := stats.NewTable("E10: message and bit complexity (failure-free)",
		"n", "rounds", "msgs/proc/round", "bits/proc/round", "total_MB", "2*lg(n)")
	for exp := 6; exp <= maxExp; exp += 2 {
		n := 1 << exp
		res, err := RunCohort(core.Config{N: n, Seed: opt.BaseSeed + 5}, opt.BaseSeed+0xa000)
		if err != nil {
			return nil, err
		}
		procRounds := float64(n) * float64(res.Rounds)
		tb.AddRow(stats.I(n), stats.I(res.Rounds),
			stats.F1(float64(res.Messages)/procRounds),
			stats.F1(float64(res.Bytes)*8/procRounds/float64(n-1)),
			stats.F(float64(res.Bytes)/(1<<20)),
			stats.F1(2*math.Log2(float64(n))))
	}
	tb.AddNote("each process broadcasts to n-1 peers per round; payloads are O(lg n) bits (path = start node + leaf index)")
	return []*stats.Table{tb}, nil
}

// runE11 reproduces the §6 splitter scenario: one crash during the init
// broadcast, delivered to alternating ranks, against the deterministic
// first-phase rule.
func runE11(opt Options) ([]*stats.Table, error) {
	maxExp := 14
	if opt.Quick {
		maxExp = 10
	}
	tb := stats.NewTable("E11: collisions forced by a single splitter crash (hybrid strategy)",
		"n", "stuck_after_p1", "n/2", "min_stuck_depth", "lg(n)-1", "total_rounds")
	for exp := 4; exp <= maxExp; exp += 2 {
		n := 1 << exp
		cfg := core.Config{
			N: n, Seed: opt.BaseSeed + 6, Strategy: core.HybridPaths, Metrics: true,
			Adversary: &adversary.Splitter{Round: 1},
		}
		res, err := RunCohort(cfg, opt.BaseSeed+0xb000)
		if err != nil {
			return nil, err
		}
		p1 := res.Metrics.PerPhase[0]
		stuck := p1.Balls - p1.AtLeaves
		minDepth := -1
		for d := 0; d < len(p1.DepthHist)-1; d++ { // inner depths only
			if p1.DepthHist[d] > 0 && (d < len(p1.DepthHist)-1) {
				// Depth histogram counts leaves too; treat max depth as leaf level.
				minDepth = d
				break
			}
		}
		tb.AddRow(stats.I(n), stats.I(stuck), stats.I(n/2), stats.I(minDepth),
			stats.I(int(math.Log2(float64(n)))-1), stats.I(res.Rounds))
	}
	tb.AddNote("one crash shifts half the views' ranks by one: ~n/2 balls collide in pairs at the leaf level (depth lg n - 1), all resolved within O(1) extra phases")
	return []*stats.Table{tb}, nil
}

// runE12 runs the design ablations, including the synchronization-round
// ablation on the faithful Ball implementation where crashes must produce
// uniqueness violations.
func runE12(opt Options) ([]*stats.Table, error) {
	n := 1 << 12
	if opt.Quick {
		n = 1 << 9
	}
	tb := stats.NewTable(fmt.Sprintf("E12a: ablations, failure-free and under rank-shifter (n=%d)", n),
		"variant", "rounds ff(mean)", "rounds shift(mean)", "violations shift")
	variants := []struct {
		name string
		mut  func(*core.Config)
	}{
		{"standard", func(*core.Config) {}},
		{"uniform-coin", func(c *core.Config) { c.UniformCoin = true }},
		{"label-priority", func(c *core.Config) { c.LabelPriority = true }},
	}
	for _, v := range variants {
		seeds := opt.seeds()
		ff := make([]int, seeds)
		shiftRounds := make([]int, seeds)
		shiftOK := make([]bool, seeds)
		violated := make([]bool, seeds)
		if err := opt.forEachIndex(seeds, func(s int) error {
			seed := opt.BaseSeed + uint64(s)
			cfg := core.Config{N: n, Seed: seed}
			v.mut(&cfg)
			res, err := RunCohort(cfg, seed+0xc000)
			if err != nil {
				return err
			}
			ff[s] = res.Rounds
			cfg = core.Config{N: n, Seed: seed, Adversary: &adversary.RankShifter{}}
			v.mut(&cfg)
			res, err = RunCohort(cfg, seed+0xc000)
			if err != nil {
				// Dropping the depth-first priority breaks Lemma 1's
				// reservation argument, so under crashes the ablated
				// algorithm may stall past MaxRounds: a liveness
				// violation, recorded rather than fatal.
				violated[s] = true
				return nil
			}
			if proto.Validate(res.Decisions, n) != nil {
				violated[s] = true
			}
			shiftRounds[s] = res.Rounds
			shiftOK[s] = true
			return nil
		}); err != nil {
			return nil, err
		}
		var shift []int
		violations := 0
		for s := 0; s < seeds; s++ {
			if violated[s] {
				violations++
			}
			if shiftOK[s] {
				shift = append(shift, shiftRounds[s])
			}
		}
		shiftMean := "-"
		if len(shift) > 0 {
			shiftMean = stats.F(stats.SummarizeInts(shift).Mean)
		}
		tb.AddRow(v.name, stats.F(stats.SummarizeInts(ff).Mean), shiftMean, stats.I(violations))
	}
	tb.AddNote("capacity-weighted coins and depth-first priority are the paper's design choices; the ablations quantify their contribution")
	tb.AddNote("label-priority violations are expected: without depth-first priority a shallow ball can steal capacity reserved for deeper balls (Lemma 1's proof breaks), stalling or colliding under crash-induced view divergence")

	// E12b: the synchronization round. Failure-free it is redundant; under
	// crashes dropping it must produce uniqueness violations.
	nb := 128
	tb2 := stats.NewTable(fmt.Sprintf("E12b: removing the sync round (Ball implementation, n=%d)", nb),
		"variant", "adversary", "runs", "uniqueness_violations", "mean_rounds")
	for _, v := range []struct {
		name   string
		noSync bool
		adv    bool
	}{
		{"standard", false, true},
		{"no-sync", true, false},
		{"no-sync", true, true},
	} {
		seeds := opt.seeds()
		if seeds > 10 {
			seeds = 10
		}
		roundsBySeed := make([]int, seeds)
		completed := make([]bool, seeds)
		violated := make([]bool, seeds)
		if err := opt.forEachIndex(seeds, func(s int) error {
			seed := opt.BaseSeed + uint64(s)
			cfg := core.Config{N: nb, Seed: seed, NoSyncRound: v.noSync}
			balls, err := core.NewBalls(cfg, ids.Random(nb, seed+0xd000))
			if err != nil {
				return err
			}
			engCfg := sim.Config{MaxRounds: 40 * nb}
			if v.adv {
				engCfg.Adversary = adversary.NewRandom(nb/3, 9, seed)
			}
			eng, err := sim.New(engCfg, core.Processes(balls))
			if err != nil {
				return err
			}
			res, err := eng.Run()
			if err != nil {
				// A livelocked no-sync run is itself a liveness failure;
				// count it as a violation of the protocol's guarantees.
				violated[s] = true
				return nil
			}
			completed[s] = true
			roundsBySeed[s] = res.Rounds
			if proto.Validate(res.Decisions, nb) != nil {
				violated[s] = true
			}
			return nil
		}); err != nil {
			return nil, err
		}
		violations, runs := 0, seeds
		var rounds []int
		for s := 0; s < seeds; s++ {
			if violated[s] {
				violations++
			}
			if completed[s] {
				rounds = append(rounds, roundsBySeed[s])
			}
		}
		mean := "-"
		if len(rounds) > 0 {
			mean = stats.F(stats.SummarizeInts(rounds).Mean)
		}
		advName := "none"
		if v.adv {
			advName = "random f=n/3"
		}
		tb2.AddRow(v.name, advName, stats.I(runs), stats.I(violations), mean)
	}
	tb2.AddNote("the position-synchronization round is what restores Proposition 1 after partial broadcasts; without it crashed-round divergence breaks uniqueness")
	return []*stats.Table{tb, tb2}, nil
}

// runE13 sweeps the virtual tree's arity — an extension beyond the paper's
// binary tree: wider nodes mean fewer levels (shorter paths, fewer bits per
// message) but more contention per node.
func runE13(opt Options) ([]*stats.Table, error) {
	n := 1 << 12
	if opt.Quick {
		n = 1 << 10
	}
	tb := stats.NewTable(fmt.Sprintf("E13: tree arity sweep, failure-free and under random crashes (n=%d)", n),
		"arity", "depth", "rounds ff(mean)", "rounds crash(mean)", "bytes/run ff(MB)")
	for _, arity := range []int{2, 4, 8, 16, 32} {
		seeds := opt.seeds()
		if seeds > 12 {
			seeds = 12
		}
		ff := make([]int, seeds)
		crash := make([]int, seeds)
		bytes := make([]float64, seeds)
		if err := opt.forEachIndex(seeds, func(s int) error {
			seed := opt.BaseSeed + uint64(s)
			res, err := RunCohort(core.Config{N: n, Seed: seed, Arity: arity}, seed+0xe000)
			if err != nil {
				return err
			}
			ff[s] = res.Rounds
			bytes[s] = float64(res.Bytes) / (1 << 20)
			res, err = RunCohort(core.Config{
				N: n, Seed: seed, Arity: arity,
				Adversary: adversary.NewRandom(n/16, 3, seed),
			}, seed+0xe000)
			if err != nil {
				return err
			}
			crash[s] = res.Rounds
			return nil
		}); err != nil {
			return nil, err
		}
		depth := 0
		for span := n; span > 1; span = (span + arity - 1) / arity {
			depth++
		}
		tb.AddRow(stats.I(arity), stats.I(depth),
			stats.F(stats.SummarizeInts(ff).Mean),
			stats.F(stats.SummarizeInts(crash).Mean),
			stats.F(stats.Summarize(bytes).Mean))
	}
	tb.AddNote("rounds stay doubly logarithmic at every arity, but the trend justifies the paper's binary choice: wider nodes concentrate more balls per collision point, and that contention costs more phases than the shallower tree saves")
	return []*stats.Table{tb}, nil
}
