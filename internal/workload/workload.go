// Package workload defines the experiment suite that reproduces every
// quantitative claim of the paper (see DESIGN.md §5 for the full index):
//
//	E1  Theorem 2: O(log log n) rounds w.h.p., failure-free
//	E2  §1: exponential separation vs deterministic / naive-random renaming
//	E3  Theorems 3–4: early termination in O(log log f), O(1) failure-free
//	E4  §5.3: adaptive crashes do not slow the algorithm down
//	E5  Lemmas 4–6: per-node contention decays to polylog n
//	E6  Lemmas 7–10: busiest root path drains at a constant rate
//	E7  Figures 1–2: dispersion after a single phase
//	E8  Lemma 11: deterministic termination under slow-burn crashes
//	E9  §2: load balancers are fast but not one-to-one
//	E10 message/bit complexity per process per round
//	E11 §6: one splitter crash forces ~n/2 rank collisions
//	E12 ablations: weighted coin, depth priority, synchronization round
//	E13 extension: tree arity sweep (depth vs contention)
//
// Each experiment returns stats.Tables; cmd/blbench renders them and the
// root bench_test.go exposes each as a benchmark reporting its headline
// metric. Replicates are fanned across Options.Parallel workers with
// seed-indexed aggregation, so tables are identical at any parallelism.
package workload

import (
	"fmt"

	"ballsintoleaves/internal/adversary"
	"ballsintoleaves/internal/core"
	"ballsintoleaves/internal/ids"
	"ballsintoleaves/internal/stats"
)

// Options tunes experiment scale.
type Options struct {
	// Quick shrinks sweeps and replicate counts for CI-speed runs.
	Quick bool
	// Seeds is the number of replicates per configuration; 0 picks a
	// default (30, or 8 with Quick).
	Seeds int
	// BaseSeed offsets all seeds, for independent re-runs.
	BaseSeed uint64
	// Parallel is the maximum number of replicate simulations run
	// concurrently: 0 or 1 runs sequentially, negative uses every CPU.
	// Results are identical at any setting — replicates are independent
	// and aggregation is seed-indexed (see forEachIndex).
	Parallel int
}

func (o Options) seeds() int {
	if o.Seeds > 0 {
		return o.Seeds
	}
	if o.Quick {
		return 8
	}
	return 30
}

// Experiment is one reproducible experiment.
type Experiment struct {
	ID    string
	Title string
	Run   func(opt Options) ([]*stats.Table, error)
}

// All returns the full suite in index order.
func All() []Experiment {
	return []Experiment{
		{ID: "E1", Title: "Rounds vs n, failure-free (Theorem 2)", Run: runE1},
		{ID: "E2", Title: "Exponential separation (deterministic lower bound)", Run: runE2},
		{ID: "E3", Title: "Early termination vs failures f (Theorems 3-4)", Run: runE3},
		{ID: "E4", Title: "Robustness to adaptive crashes (Section 5.3)", Run: runE4},
		{ID: "E5", Title: "Per-node contention decay (Lemmas 4-6)", Run: runE5},
		{ID: "E6", Title: "Busiest-path drain rate (Lemmas 7-10)", Run: runE6},
		{ID: "E7", Title: "Dispersion after one phase (Figures 1-2)", Run: runE7},
		{ID: "E8", Title: "Deterministic termination bound (Lemma 11)", Run: runE8},
		{ID: "E9", Title: "Load balancing is not renaming (Section 2)", Run: runE9},
		{ID: "E10", Title: "Message and bit complexity per round", Run: runE10},
		{ID: "E11", Title: "Splitter crash collision count (Section 6)", Run: runE11},
		{ID: "E12", Title: "Ablations: coin, priority, sync round", Run: runE12},
		{ID: "E13", Title: "Extension: tree arity sweep (depth vs contention)", Run: runE13},
	}
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// RunCohort executes one Balls-into-Leaves simulation on the fast
// simulator with random labels derived from the seed.
func RunCohort(cfg core.Config, labelSeed uint64) (core.Result, error) {
	c, err := core.NewCohort(cfg, ids.Random(cfg.N, labelSeed))
	if err != nil {
		return core.Result{}, err
	}
	return c.Run()
}

// roundsSample collects total rounds over `seeds` replicates for a config
// template (Seed and Adversary are filled per replicate), fanning the
// replicates across opt's worker pool with seed-indexed aggregation.
func roundsSample(opt Options, n, seeds int, strategy core.PathStrategy,
	mkAdv func(seed uint64) adversary.Strategy) ([]int, error) {
	rounds := make([]int, seeds)
	err := opt.forEachIndex(seeds, func(s int) error {
		seed := opt.BaseSeed + uint64(s)
		cfg := core.Config{N: n, Seed: seed, Strategy: strategy}
		if mkAdv != nil {
			cfg.Adversary = mkAdv(seed)
		}
		res, err := RunCohort(cfg, seed+0x9000)
		if err != nil {
			return fmt.Errorf("n=%d seed=%d: %w", n, seed, err)
		}
		rounds[s] = res.Rounds
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rounds, nil
}
