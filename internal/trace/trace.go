// Package trace records round-level protocol events — sends, deliveries,
// decisions, halts — by transparently wrapping proto.Process instances. It
// works under both engines (the goroutine runtime included; the log is
// thread-safe) and is the debugging companion to cmd/blsim's phase-level
// tree rendering: blsim shows where the balls are, trace shows every
// message that put them there.
package trace

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"ballsintoleaves/internal/adversary"
	"ballsintoleaves/internal/proto"
	"ballsintoleaves/internal/sim"
)

// Kind classifies an event.
type Kind uint8

const (
	// KindSend records one broadcast payload leaving a process.
	KindSend Kind = iota + 1
	// KindDeliver records one round's delivery batch reaching a process.
	KindDeliver
	// KindDecide records a process deciding its name.
	KindDecide
	// KindHalt records a process halting.
	KindHalt
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindSend:
		return "send"
	case KindDeliver:
		return "deliver"
	case KindDecide:
		return "decide"
	case KindHalt:
		return "halt"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Event is one recorded protocol event.
type Event struct {
	Round int
	Kind  Kind
	Proc  proto.ID
	// Bytes is the payload size for sends, or the total delivered bytes
	// for deliveries.
	Bytes int
	// Msgs is the number of messages in a delivery batch.
	Msgs int
	// Name is the decided name for decide events.
	Name int
}

// Log collects events from any number of wrapped processes. The zero value
// is ready to use.
type Log struct {
	mu     sync.Mutex
	events []Event
}

// add appends one event.
func (l *Log) add(e Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = append(l.events, e)
}

// Events returns a copy of the recorded events in arrival order.
func (l *Log) Events() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, len(l.events))
	copy(out, l.events)
	return out
}

// Len returns the number of recorded events.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// Decisions extracts the decide events, sorted by process ID.
func (l *Log) Decisions() []Event {
	var out []Event
	for _, e := range l.Events() {
		if e.Kind == KindDecide {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Proc < out[j].Proc })
	return out
}

// RoundSummary aggregates one round's traffic.
type RoundSummary struct {
	Round    int
	Sends    int
	Messages int // delivered messages
	Bytes    int // delivered bytes
	Decides  int
	Halts    int
}

// Summarize aggregates the log per round, in round order.
func (l *Log) Summarize() []RoundSummary {
	byRound := make(map[int]*RoundSummary)
	for _, e := range l.Events() {
		s := byRound[e.Round]
		if s == nil {
			s = &RoundSummary{Round: e.Round}
			byRound[e.Round] = s
		}
		switch e.Kind {
		case KindSend:
			s.Sends++
		case KindDeliver:
			s.Messages += e.Msgs
			s.Bytes += e.Bytes
		case KindDecide:
			s.Decides++
		case KindHalt:
			s.Halts++
		}
	}
	out := make([]RoundSummary, 0, len(byRound))
	for _, s := range byRound {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Round < out[j].Round })
	return out
}

// Render writes a per-round transcript summary.
func (l *Log) Render(w io.Writer) {
	fmt.Fprintln(w, "round  sends  msgs  bytes  decides  halts")
	for _, s := range l.Summarize() {
		fmt.Fprintf(w, "%5d  %5d  %4d  %5d  %7d  %5d\n",
			s.Round, s.Sends, s.Messages, s.Bytes, s.Decides, s.Halts)
	}
}

// Wrap returns a process that records its events into log. If the wrapped
// process exposes adversary introspection (sim.Introspector), the wrapper
// preserves it so strong adversaries keep working.
func Wrap(p proto.Process, log *Log) proto.Process {
	w := &wrapped{inner: p, log: log}
	if intro, ok := p.(sim.Introspector); ok {
		return &wrappedIntrospector{wrapped: w, intro: intro}
	}
	return w
}

// WrapAll wraps a whole system into the same log.
func WrapAll(procs []proto.Process, log *Log) []proto.Process {
	out := make([]proto.Process, len(procs))
	for i, p := range procs {
		out[i] = Wrap(p, log)
	}
	return out
}

// wrapped decorates a process with event recording.
type wrapped struct {
	inner   proto.Process
	log     *Log
	decided bool
	halted  bool
}

var _ proto.Process = (*wrapped)(nil)

func (w *wrapped) ID() proto.ID { return w.inner.ID() }

func (w *wrapped) Send(round int) []byte {
	payload := w.inner.Send(round)
	w.log.add(Event{Round: round, Kind: KindSend, Proc: w.inner.ID(), Bytes: len(payload)})
	return payload
}

func (w *wrapped) Deliver(round int, msgs []proto.Message) {
	total := 0
	for _, m := range msgs {
		total += len(m.Payload)
	}
	w.log.add(Event{Round: round, Kind: KindDeliver, Proc: w.inner.ID(), Msgs: len(msgs), Bytes: total})
	w.inner.Deliver(round, msgs)
	if !w.decided {
		if name, ok := w.inner.Decided(); ok {
			w.decided = true
			w.log.add(Event{Round: round, Kind: KindDecide, Proc: w.inner.ID(), Name: name})
		}
	}
	if !w.halted && w.inner.Done() {
		w.halted = true
		w.log.add(Event{Round: round, Kind: KindHalt, Proc: w.inner.ID()})
	}
}

func (w *wrapped) Decided() (int, bool) { return w.inner.Decided() }
func (w *wrapped) Done() bool           { return w.inner.Done() }

// wrappedIntrospector additionally forwards adversary introspection.
type wrappedIntrospector struct {
	*wrapped
	intro sim.Introspector
}

var _ sim.Introspector = (*wrappedIntrospector)(nil)

func (w *wrappedIntrospector) Info() adversary.BallInfo { return w.intro.Info() }
