package trace

import (
	"strings"
	"testing"

	"ballsintoleaves/internal/adversary"
	"ballsintoleaves/internal/core"
	"ballsintoleaves/internal/ids"
	"ballsintoleaves/internal/proto"
	"ballsintoleaves/internal/runtime"
	"ballsintoleaves/internal/sim"
)

func runTraced(t *testing.T, n int, adv adversary.Strategy) *Log {
	t.Helper()
	balls, err := core.NewBalls(core.Config{N: n, Seed: 3}, ids.Random(n, 9))
	if err != nil {
		t.Fatal(err)
	}
	log := &Log{}
	eng, err := sim.New(sim.Config{Adversary: adv}, WrapAll(core.Processes(balls), log))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	return log
}

func TestTraceRecordsFullRun(t *testing.T) {
	t.Parallel()
	const n = 8
	log := runTraced(t, n, nil)
	if log.Len() == 0 {
		t.Fatal("no events")
	}
	decisions := log.Decisions()
	if len(decisions) != n {
		t.Fatalf("%d decide events, want %d", len(decisions), n)
	}
	seen := map[int]bool{}
	for _, d := range decisions {
		if d.Name < 1 || d.Name > n || seen[d.Name] {
			t.Fatalf("bad decided name %d", d.Name)
		}
		seen[d.Name] = true
	}
	// Every process decides and halts exactly once.
	halts := 0
	for _, e := range log.Events() {
		if e.Kind == KindHalt {
			halts++
		}
	}
	if halts != n {
		t.Fatalf("%d halts, want %d", halts, n)
	}
}

func TestTraceRoundSummaries(t *testing.T) {
	t.Parallel()
	const n = 8
	log := runTraced(t, n, nil)
	sums := log.Summarize()
	if len(sums) < 3 {
		t.Fatalf("%d rounds summarized", len(sums))
	}
	if sums[0].Round != 1 || sums[0].Sends != n {
		t.Fatalf("round 1 summary: %+v", sums[0])
	}
	// Round 1 delivers n joins to each of n processes.
	if sums[0].Messages != n*n {
		t.Fatalf("round 1 messages = %d, want %d", sums[0].Messages, n*n)
	}
	var sb strings.Builder
	log.Render(&sb)
	if !strings.Contains(sb.String(), "round  sends") {
		t.Fatalf("render header missing:\n%s", sb.String())
	}
}

func TestTracePreservesIntrospection(t *testing.T) {
	t.Parallel()
	// A DeepTarget adversary needs Info() through the wrapper; with a
	// working wrapper it finds at-leaf victims and crashes them.
	const n = 16
	log := runTraced(t, n, &adversary.DeepTarget{PerRound: 1, Seed: 5})
	halts := 0
	for _, e := range log.Events() {
		if e.Kind == KindHalt {
			halts++
		}
	}
	if halts == n {
		t.Fatal("adversary crashed nobody: introspection lost through wrapper")
	}
}

func TestTraceUnderConcurrentEngine(t *testing.T) {
	t.Parallel()
	const n = 16
	balls, err := core.NewBalls(core.Config{N: n, Seed: 4}, ids.Random(n, 11))
	if err != nil {
		t.Fatal(err)
	}
	log := &Log{}
	eng, err := runtime.New(runtime.Config{}, WrapAll(core.Processes(balls), log))
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(log.Decisions()) != n || len(res.Decisions) != n {
		t.Fatalf("decisions: log %d, engine %d", len(log.Decisions()), len(res.Decisions))
	}
}

func TestKindStrings(t *testing.T) {
	t.Parallel()
	if KindSend.String() != "send" || KindHalt.String() != "halt" || Kind(9).String() == "" {
		t.Fatal("kind strings")
	}
}

// stubProc exercises the wrapper without the full protocol.
type stubProc struct {
	id      proto.ID
	decided bool
}

func (s *stubProc) ID() proto.ID    { return s.id }
func (s *stubProc) Send(int) []byte { return []byte{1, 2, 3} }
func (s *stubProc) Deliver(round int, _ []proto.Message) {
	if round >= 2 {
		s.decided = true
	}
}
func (s *stubProc) Decided() (int, bool) { return 7, s.decided }
func (s *stubProc) Done() bool           { return s.decided }

func TestWrapRecordsPayloadSizes(t *testing.T) {
	t.Parallel()
	log := &Log{}
	p := Wrap(&stubProc{id: 5}, log)
	p.Send(1)
	p.Deliver(1, []proto.Message{{From: 5, Payload: []byte{9, 9}}})
	events := log.Events()
	if len(events) != 2 || events[0].Bytes != 3 || events[1].Bytes != 2 || events[1].Msgs != 1 {
		t.Fatalf("events = %+v", events)
	}
	p.Send(2)
	p.Deliver(2, nil)
	decides := log.Decisions()
	if len(decides) != 1 || decides[0].Name != 7 || decides[0].Round != 2 {
		t.Fatalf("decisions = %+v", decides)
	}
}
