// Package ids generates original identifiers for simulated processes. The
// renaming problem gives processes distinct ids from an unbounded namespace;
// the algorithms are comparison-based, so only the relative order matters.
// Random labels model the general case, Sequential the friendliest one, and
// Clustered an adversarial case where labels are bunched so comparisons
// carry little information early on.
package ids

import (
	"slices"

	"ballsintoleaves/internal/proto"
	"ballsintoleaves/internal/rng"
)

// Random returns n distinct uniformly random 64-bit labels.
//
// Fast path: draw n labels and verify distinctness with a sort — for 64-bit
// draws a collision or zero is a once-in-10^9 event, and when none occurs
// every draw is accepted in order, which is exactly what the map-based loop
// would have produced. Only an actual clash falls back to the incremental
// dedupe, replaying the same stream so the output stays bit-identical.
func Random(n int, seed uint64) []proto.ID {
	src := rng.Derive(seed, 0x1d5)
	out := make([]proto.ID, n)
	ok := true
	for i := range out {
		out[i] = proto.ID(src.Uint64())
		if out[i] == 0 {
			ok = false
			break
		}
	}
	if ok {
		sorted := make([]proto.ID, n)
		copy(sorted, out)
		slices.Sort(sorted)
		for i := 1; i < n; i++ {
			if sorted[i] == sorted[i-1] {
				ok = false
				break
			}
		}
	}
	if ok {
		return out
	}
	src = rng.Derive(seed, 0x1d5)
	seen := make(map[proto.ID]bool, n)
	out = out[:0]
	for len(out) < n {
		id := proto.ID(src.Uint64())
		if id == 0 || seen[id] {
			continue
		}
		seen[id] = true
		out = append(out, id)
	}
	return out
}

// Sequential returns labels 1..n.
func Sequential(n int) []proto.ID {
	out := make([]proto.ID, n)
	for i := range out {
		out[i] = proto.ID(i + 1)
	}
	return out
}

// Clustered returns n distinct labels packed into k tight clusters spread
// across the namespace, stressing comparison-based tie-breaking.
func Clustered(n, k int, seed uint64) []proto.ID {
	if k < 1 {
		k = 1
	}
	src := rng.Derive(seed, 0xc1d5)
	out := make([]proto.ID, 0, n)
	seen := make(map[proto.ID]bool, n)
	clusterSpan := uint64(1) << 62 / uint64(k)
	for len(out) < n {
		cluster := uint64(src.Intn(k))
		base := cluster*clusterSpan + 1
		id := proto.ID(base + uint64(src.Intn(4*n)))
		if seen[id] {
			continue
		}
		seen[id] = true
		out = append(out, id)
	}
	return out
}
