package ids

import (
	"testing"

	"ballsintoleaves/internal/proto"
)

func assertDistinct(t *testing.T, labels []proto.ID) {
	t.Helper()
	seen := make(map[proto.ID]bool, len(labels))
	for _, id := range labels {
		if id == 0 {
			t.Fatal("zero label")
		}
		if seen[id] {
			t.Fatalf("duplicate label %v", id)
		}
		seen[id] = true
	}
}

func TestRandomDistinctAndDeterministic(t *testing.T) {
	t.Parallel()
	a := Random(1000, 5)
	assertDistinct(t, a)
	b := Random(1000, 5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different labels")
		}
	}
	c := Random(1000, 6)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds coincided %d times", same)
	}
}

func TestSequential(t *testing.T) {
	t.Parallel()
	s := Sequential(5)
	for i, id := range s {
		if id != proto.ID(i+1) {
			t.Fatalf("s[%d] = %v", i, id)
		}
	}
	assertDistinct(t, s)
}

func TestClusteredDistinct(t *testing.T) {
	t.Parallel()
	for _, k := range []int{0, 1, 4, 16} {
		labels := Clustered(200, k, 9)
		if len(labels) != 200 {
			t.Fatalf("k=%d: %d labels", k, len(labels))
		}
		assertDistinct(t, labels)
	}
}

func TestEmpty(t *testing.T) {
	t.Parallel()
	if len(Random(0, 1)) != 0 || len(Sequential(0)) != 0 {
		t.Fatal("n=0 should yield empty slices")
	}
}
