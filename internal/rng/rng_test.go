package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	t.Parallel()
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed sources diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	t.Parallel()
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds coincided %d/100 times", same)
	}
}

func TestDeriveIndependentStreams(t *testing.T) {
	t.Parallel()
	a := Derive(7, 100)
	b := Derive(7, 101)
	c := Derive(7, 100)
	for i := 0; i < 100; i++ {
		av, bv, cv := a.Uint64(), b.Uint64(), c.Uint64()
		if av != cv {
			t.Fatalf("same (seed,label) streams diverged at %d", i)
		}
		if av == bv {
			t.Fatalf("adjacent labels produced identical draw at %d", i)
		}
	}
}

func TestUint64nBounds(t *testing.T) {
	t.Parallel()
	r := New(3)
	for _, n := range []uint64{1, 2, 3, 7, 8, 1000, 1 << 40} {
		for i := 0; i < 200; i++ {
			if v := r.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d", n, v)
			}
		}
	}
}

func TestUint64nZeroPanics(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestUint64nUniformity(t *testing.T) {
	t.Parallel()
	r := New(99)
	const n, draws = 10, 100000
	var counts [n]int
	for i := 0; i < draws; i++ {
		counts[r.Uint64n(n)]++
	}
	want := float64(draws) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("value %d drawn %d times, want ~%.0f", v, c, want)
		}
	}
}

func TestCoinExactEdges(t *testing.T) {
	t.Parallel()
	r := New(5)
	for i := 0; i < 100; i++ {
		if r.Coin(0, 10) {
			t.Fatal("Coin(0,10) returned heads")
		}
		if !r.Coin(10, 10) {
			t.Fatal("Coin(10,10) returned tails")
		}
	}
}

func TestCoinBias(t *testing.T) {
	t.Parallel()
	r := New(8)
	const draws = 200000
	heads := 0
	for i := 0; i < draws; i++ {
		if r.Coin(3, 4) {
			heads++
		}
	}
	got := float64(heads) / draws
	if math.Abs(got-0.75) > 0.01 {
		t.Fatalf("Coin(3,4) heads rate %.4f, want ~0.75", got)
	}
}

func TestCoinInvalidPanics(t *testing.T) {
	t.Parallel()
	cases := []struct{ num, den uint64 }{{1, 0}, {5, 4}}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Coin(%d,%d) did not panic", c.num, c.den)
				}
			}()
			New(1).Coin(c.num, c.den)
		}()
	}
}

func TestFloat64Range(t *testing.T) {
	t.Parallel()
	r := New(11)
	sum := 0.0
	const draws = 100000
	for i := 0; i < draws; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		sum += f
	}
	if mean := sum / draws; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %.4f, want ~0.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	t.Parallel()
	r := New(13)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestReseedResetsStream(t *testing.T) {
	t.Parallel()
	r := New(21)
	first := make([]uint64, 10)
	for i := range first {
		first[i] = r.Uint64()
	}
	r.Reseed(21)
	for i := range first {
		if got := r.Uint64(); got != first[i] {
			t.Fatalf("reseeded stream diverged at draw %d", i)
		}
	}
}

// TestIntnDistributionChiSquare applies a chi-square test with generous
// slack: the point is to catch gross modulo-bias bugs, not to certify the
// generator.
func TestIntnDistributionChiSquare(t *testing.T) {
	t.Parallel()
	r := New(77)
	const buckets = 16
	const draws = 160000
	var counts [buckets]int
	for i := 0; i < draws; i++ {
		counts[r.Intn(buckets)]++
	}
	expected := float64(draws) / buckets
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 15 degrees of freedom; p=0.001 critical value is ~37.7.
	if chi2 > 37.7 {
		t.Fatalf("chi-square %.2f exceeds 37.7 (possible bias)", chi2)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkCoin(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Coin(3, 7)
	}
}
