// Package rng provides the deterministic pseudo-random number generation used
// by every randomized protocol in this repository.
//
// Reproducibility contract: a simulation is a pure function of (n, seed,
// options, adversary). To keep the faithful per-process implementation and
// the fast cohort simulator bit-for-bit equivalent, each ball owns a private
// stream derived from (seed, label) and every random decision consumes a
// well-defined number of draws from that stream. The generator is
// xoshiro256++ seeded through SplitMix64, a standard pairing with good
// statistical quality and a tiny, allocation-free state.
package rng

import "math/bits"

// splitMix64 advances a SplitMix64 state and returns the next output.
// It is used for seeding and for stream derivation.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Source is a xoshiro256++ generator. The zero value is invalid; construct
// with New or Derive.
type Source struct {
	s [4]uint64
}

// New returns a Source seeded from the given 64-bit seed via SplitMix64, as
// recommended by the xoshiro authors to avoid correlated low-entropy states.
func New(seed uint64) *Source {
	var src Source
	src.Reseed(seed)
	return &src
}

// Reseed re-initializes the Source in place from seed.
func (r *Source) Reseed(seed uint64) {
	sm := seed
	for i := range r.s {
		r.s[i] = splitMix64(&sm)
	}
	// xoshiro must not be seeded with the all-zero state; SplitMix64 cannot
	// produce four consecutive zeros, but guard anyway for safety.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
}

// DeriveSeed returns the 64-bit seed that Derive(seed, label) feeds to New,
// so callers holding preallocated Sources can Reseed them in place — e.g.
// one []Source block for a whole cohort — instead of paying one heap
// allocation per derived stream.
func DeriveSeed(seed, label uint64) uint64 {
	mix := seed
	h := splitMix64(&mix)
	mix = h ^ (label * 0xda942042e4dd58b5)
	return splitMix64(&mix)
}

// Derive returns an independent stream for the given label, suitable for
// per-ball randomness: Derive(seed, a) and Derive(seed, b) are decorrelated
// for a != b because the label is diffused through SplitMix64 before seeding.
func Derive(seed, label uint64) *Source {
	return New(DeriveSeed(seed, label))
}

// Uint64 returns the next 64 random bits.
func (r *Source) Uint64() uint64 {
	s := &r.s
	result := bits.RotateLeft64(s[0]+s[3], 23) + s[0]
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = bits.RotateLeft64(s[3], 45)
	return result
}

// Uint64n returns a uniform value in [0, n) using Lemire's multiply-shift
// rejection method. It panics if n == 0. Exactly one Uint64 draw is consumed
// in the common case; rare rejections consume more, identically in every
// replay of the same stream.
func (r *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with n == 0")
	}
	// Fast path for powers of two: mask, single draw, no bias.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		thresh := (-n) % n
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Coin returns true ("heads") with probability exactly num/den, consuming a
// single bounded-uniform draw. It panics if den == 0 or num > den. This is
// the RandomCoin(p) primitive of Algorithm 1 with an exact rational bias, so
// capacity-weighted path choices carry no floating-point bias.
func (r *Source) Coin(num, den uint64) bool {
	if den == 0 {
		panic("rng: Coin with zero denominator")
	}
	if num > den {
		panic("rng: Coin with num > den")
	}
	switch num {
	case 0:
		return false
	case den:
		return true
	}
	return r.Uint64n(den) < num
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Shuffle pseudo-randomly permutes the first n elements using the
// Fisher-Yates algorithm, invoking swap(i, j) for each exchange.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}
