package core

import (
	"fmt"
	"testing"

	"ballsintoleaves/internal/adversary"
	"ballsintoleaves/internal/ids"
	"ballsintoleaves/internal/proto"
	"ballsintoleaves/internal/sim"
)

// TestArityCohortMatchesSim extends the engine-equivalence guarantee to
// non-binary trees: the fast simulator and the faithful per-process Balls
// must agree exactly for arity 3, 4 and 8, with and without crashes.
func TestArityCohortMatchesSim(t *testing.T) {
	t.Parallel()
	const n = 36
	for _, arity := range []int{3, 4, 8} {
		for _, strategy := range []PathStrategy{RandomPaths, HybridPaths, LevelDescent} {
			for _, withCrashes := range []bool{false, true} {
				name := fmt.Sprintf("k=%d/%v/crashes=%v", arity, strategy, withCrashes)
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					labels := ids.Random(n, uint64(arity)*31+7)
					cfg := Config{N: n, Seed: 5, Strategy: strategy, Arity: arity, CheckInvariants: true}
					mkAdv := func() adversary.Strategy {
						if withCrashes {
							return adversary.NewRandom(n/3, 9, 3)
						}
						return adversary.None{}
					}

					balls, err := NewBalls(cfg, labels)
					if err != nil {
						t.Fatal(err)
					}
					eng, err := sim.New(sim.Config{Adversary: mkAdv()}, Processes(balls))
					if err != nil {
						t.Fatal(err)
					}
					want, err := eng.Run()
					if err != nil {
						t.Fatal(err)
					}

					cfg.Adversary = mkAdv()
					got := runCohortT(t, cfg, labels)
					if got.Rounds != want.Rounds || got.Messages != want.Messages || got.Bytes != want.Bytes {
						t.Fatalf("cohort (r=%d m=%d b=%d) vs sim (r=%d m=%d b=%d)",
							got.Rounds, got.Messages, got.Bytes, want.Rounds, want.Messages, want.Bytes)
					}
					if len(got.Decisions) != len(want.Decisions) {
						t.Fatalf("decisions %d vs %d", len(got.Decisions), len(want.Decisions))
					}
					for i := range got.Decisions {
						if got.Decisions[i] != want.Decisions[i] {
							t.Fatalf("decision %d: %+v vs %+v", i, got.Decisions[i], want.Decisions[i])
						}
					}
					if err := proto.Validate(got.Decisions, n); err != nil {
						t.Fatal(err)
					}
				})
			}
		}
	}
}

func TestAritySolvesTightRenaming(t *testing.T) {
	t.Parallel()
	for _, arity := range []int{3, 4, 16, 64} {
		for _, n := range []int{1, 2, 17, 256, 1000} {
			cfg := Config{N: n, Seed: uint64(n + arity), Arity: arity, CheckInvariants: n <= 256}
			res := runCohortT(t, cfg, ids.Random(n, uint64(n)*3+uint64(arity)))
			if len(res.Decisions) != n {
				t.Fatalf("k=%d n=%d: %d decisions", arity, n, len(res.Decisions))
			}
			if err := proto.Validate(res.Decisions, n); err != nil {
				t.Fatalf("k=%d n=%d: %v", arity, n, err)
			}
		}
	}
}

func TestArityLevelDescentDepthRounds(t *testing.T) {
	t.Parallel()
	// Level-descent takes exactly MaxDepth phases failure-free, so higher
	// arity directly shortens the deterministic algorithm: log_k(n) levels.
	const n = 4096
	for _, tc := range []struct{ arity, wantPhases int }{
		{2, 12}, {4, 6}, {8, 4}, {16, 3},
	} {
		cfg := Config{N: n, Seed: 3, Strategy: LevelDescent, Arity: tc.arity}
		res := runCohortT(t, cfg, ids.Random(n, 9))
		if res.Phases != tc.wantPhases {
			t.Fatalf("k=%d: %d phases, want %d", tc.arity, res.Phases, tc.wantPhases)
		}
	}
}

func TestArityRejectsInvalid(t *testing.T) {
	t.Parallel()
	if _, err := NewCohort(Config{N: 4, Arity: 1}, ids.Random(4, 1)); err == nil {
		t.Fatal("arity 1 accepted")
	}
	if _, err := NewCohort(Config{N: 4, Arity: 65}, ids.Random(4, 1)); err == nil {
		t.Fatal("arity 65 accepted")
	}
}
