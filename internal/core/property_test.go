package core

import (
	"testing"
	"testing/quick"

	"ballsintoleaves/internal/adversary"
	"ballsintoleaves/internal/ids"
	"ballsintoleaves/internal/proto"
	"ballsintoleaves/internal/rng"
	"ballsintoleaves/internal/sim"
	"ballsintoleaves/internal/tree"
)

// newSimEngine wraps the reference engine for a Ball system.
func newSimEngine(adv adversary.Strategy, balls []*Ball) (*sim.Engine, error) {
	return sim.New(sim.Config{Adversary: adv}, Processes(balls))
}

// newTopoForTest builds a topology (alias to keep property bodies short).
func newTopoForTest(n int) *tree.Topology { return tree.NewTopology(n) }

// scriptedAdversary replays an arbitrary generated crash script: tuples of
// (round, victim rank, delivery pattern bits). It is the property-based
// stress for Theorem 1: uniqueness must hold under EVERY crash pattern, not
// just the named strategies.
type scriptedAdversary struct {
	events []scriptEvent
}

type scriptEvent struct {
	round   int
	victim  uint16 // rank among alive processes
	pattern uint64 // delivery mask bits over alive ranks (wraps)
}

func (s *scriptedAdversary) Name() string { return "scripted" }

func (s *scriptedAdversary) Plan(view adversary.RoundView) []adversary.CrashSpec {
	var specs []adversary.CrashSpec
	alive := view.Alive()
	if len(alive) <= 1 {
		return nil
	}
	for _, ev := range s.events {
		if ev.round != view.Round() {
			continue
		}
		victim := alive[int(ev.victim)%len(alive)]
		rank := make(map[proto.ID]int, len(alive))
		for i, id := range alive {
			rank[id] = i
		}
		pattern := ev.pattern
		specs = append(specs, adversary.CrashSpec{
			Victim: victim,
			Deliver: func(to proto.ID) bool {
				r, ok := rank[to]
				return ok && pattern&(1<<(uint(r)%64)) != 0
			},
		})
	}
	return specs
}

// TestPropertyUniquenessUnderArbitraryCrashScripts is the headline
// property-based test: for arbitrary crash scripts (any rounds, any
// victims, any partial-delivery masks), every strategy must preserve
// uniqueness and validity, with all per-view invariants checked.
func TestPropertyUniquenessUnderArbitraryCrashScripts(t *testing.T) {
	t.Parallel()
	prop := func(seed uint64, rawN uint8, rawEvents []uint32) bool {
		n := int(rawN%40) + 2
		var events []scriptEvent
		for i, raw := range rawEvents {
			if i >= 12 {
				break
			}
			events = append(events, scriptEvent{
				round:   int(raw%16) + 1,
				victim:  uint16(raw >> 8),
				pattern: uint64(raw) * 0x9e3779b97f4a7c15,
			})
		}
		for _, strategy := range []PathStrategy{RandomPaths, HybridPaths, LevelDescent} {
			cfg := Config{
				N: n, Seed: seed, Strategy: strategy, CheckInvariants: true,
				Adversary: &scriptedAdversary{events: events},
			}
			c, err := NewCohort(cfg, ids.Random(n, seed+0xabc))
			if err != nil {
				t.Logf("config: %v", err)
				return false
			}
			res, err := c.Run()
			if err != nil {
				t.Logf("run: %v", err)
				return false
			}
			if proto.Validate(res.Decisions, n) != nil {
				t.Logf("strategy %v: validation failed", strategy)
				return false
			}
			if len(res.Decisions)+res.Crashes != n {
				t.Logf("strategy %v: %d decided + %d crashed != %d",
					strategy, len(res.Decisions), res.Crashes, n)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40}
	if testing.Short() {
		cfg.MaxCount = 10
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyBallMatchesCohortRandomScripts extends the equivalence
// guarantee beyond the named adversaries to arbitrary generated scripts.
func TestPropertyBallMatchesCohortRandomScripts(t *testing.T) {
	t.Parallel()
	prop := func(seed uint64, rawEvents []uint32) bool {
		const n = 24
		var events []scriptEvent
		for i, raw := range rawEvents {
			if i >= 8 {
				break
			}
			events = append(events, scriptEvent{
				round:   int(raw%12) + 1,
				victim:  uint16(raw >> 8),
				pattern: uint64(raw) * 0xda942042e4dd58b5,
			})
		}
		labels := ids.Random(n, seed+7)
		cfg := Config{N: n, Seed: seed, CheckInvariants: true}

		balls, err := NewBalls(cfg, labels)
		if err != nil {
			return false
		}
		eng, err := newSimEngine(&scriptedAdversary{events: events}, balls)
		if err != nil {
			return false
		}
		want, err := eng.Run()
		if err != nil {
			return false
		}

		cfg.Adversary = &scriptedAdversary{events: events}
		c, err := NewCohort(cfg, labels)
		if err != nil {
			return false
		}
		got, err := c.Run()
		if err != nil {
			return false
		}
		if got.Rounds != want.Rounds || len(got.Decisions) != len(want.Decisions) {
			t.Logf("rounds %d/%d decisions %d/%d", got.Rounds, want.Rounds,
				len(got.Decisions), len(want.Decisions))
			return false
		}
		for i := range got.Decisions {
			if got.Decisions[i] != want.Decisions[i] {
				t.Logf("decision %d: %+v vs %+v", i, got.Decisions[i], want.Decisions[i])
				return false
			}
		}
		return got.Messages == want.Messages && got.Bytes == want.Bytes
	}
	cfg := &quick.Config{MaxCount: 30}
	if testing.Short() {
		cfg.MaxCount = 8
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyCoinConsumptionStable pins the per-ball randomness contract
// the Ball/Cohort equivalence rests on: path construction consumes exactly
// one coin per two-way branch, so identical views yield identical draws.
func TestPropertyCoinConsumptionStable(t *testing.T) {
	t.Parallel()
	prop := func(seed uint64, rawN uint8) bool {
		n := int(rawN%30) + 2
		topo := newTopoForTest(n)
		v := NewView(topo, labelsN(n))
		a := rng.Derive(seed, 1)
		b := rng.Derive(seed, 1)
		pa := randomPath(v, topo.Root(), a, false)
		pb := randomPath(v, topo.Root(), b, false)
		if pa != pb {
			return false
		}
		// After identical consumption the streams stay aligned.
		return a.Uint64() == b.Uint64()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
