package core

import (
	"fmt"

	"ballsintoleaves/internal/tree"
)

// applyPaths executes lines 12–21 of Algorithm 1 on a view: iterate over a
// snapshot of the present balls in <R priority order; a ball whose
// candidate path was received moves down its path while capacity remains,
// and a ball that announced nothing (it crashed, or already halted) is
// removed at its turn — freeing its capacity for the lower-priority balls
// processed after it, exactly as the paper's crash analysis (§5.3) relies
// on.
//
// has[idx] marks the balls whose path was received; paths[idx] holds the
// path. Both are indexed by dense ball index and must cover the view's
// universe.
func applyPaths(cfg Config, v *View, has []bool, paths []Path) {
	order := v.orderedPresent(cfg.LabelPriority)
	for _, idx := range order {
		if !has[idx] {
			v.Remove(int(idx))
			continue
		}
		moveAlongPath(cfg, v, int(idx), paths[idx])
	}
}

// moveAlongPath walks one ball down its candidate path (lines 14–18): from
// its current node, step towards the path's target leaf as long as the next
// subtree has remaining capacity, then park. The walk, capacity checks, and
// occupancy update are fused into a single descent (Occupancy.DescendAdd):
// lifting the ball out and re-parking it at a descendant cancels on every
// node from the start to the root, so no parent-chain walk happens at all.
//
// Stopping at the last node with available capacity preserves Lemma 1:
// every prefix subtree the ball enters had capacity at entry time, and
// priority order guarantees balls already placed below cannot be displaced.
func moveAlongPath(cfg Config, v *View, idx int, p Path) {
	topo := v.topo
	cur := v.node[idx]
	if cur != p.Start {
		// Under Proposition 1 a correct sender's path always starts at its
		// position in every view that still contains it; a mismatch means
		// a corrupted payload or a protocol bug. Be conservative: leave
		// the ball in place (it will be corrected or removed by the
		// position round).
		if cfg.CheckInvariants {
			panic(fmt.Sprintf("core: path of ball %d starts at node %d but view has it at %d",
				idx, p.Start, cur))
		}
		return
	}
	leaf := int(p.Leaf)
	if !topo.Contains(cur, leaf) {
		if cfg.CheckInvariants {
			panic(fmt.Sprintf("core: ball %d path targets leaf %d outside its subtree", idx, leaf))
		}
		return
	}
	v.node[idx] = v.occ.DescendAdd(cur, leaf, p.Limit)
}

// applyPositions executes lines 22–28: overwrite each present ball's
// position with its announced one (the sender's own computation is
// authoritative), removing balls that announced nothing. Order does not
// affect the outcome here — there are no capacity checks — but the same
// snapshot iteration keeps the structure identical to the paper.
//
// has[idx] marks balls whose position was received; pos[idx] holds it.
func applyPositions(cfg Config, v *View, has []bool, pos []tree.Node) {
	order := v.orderedPresent(cfg.LabelPriority)
	for _, idx := range order {
		if !has[idx] {
			v.Remove(int(idx))
			continue
		}
		if v.node[idx] != pos[idx] {
			v.SetNode(int(idx), pos[idx])
		}
	}
}
