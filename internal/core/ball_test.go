package core

import (
	"testing"

	"ballsintoleaves/internal/adversary"
	"ballsintoleaves/internal/ids"
	"ballsintoleaves/internal/proto"
	"ballsintoleaves/internal/sim"
	"ballsintoleaves/internal/tree"
)

// runBalls drives a Ball system on the reference engine.
func runBalls(t *testing.T, cfg Config, labels []proto.ID, engCfg sim.Config) sim.Result {
	t.Helper()
	balls, err := NewBalls(cfg, labels)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := sim.New(engCfg, Processes(balls))
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestBallFailureFreeSolvesTightRenaming(t *testing.T) {
	t.Parallel()
	for _, n := range []int{1, 2, 3, 4, 7, 8, 16, 33, 64} {
		cfg := Config{N: n, Seed: 42, CheckInvariants: true}
		res := runBalls(t, cfg, ids.Random(n, 7), sim.Config{})
		if len(res.Decisions) != n {
			t.Fatalf("n=%d: %d decisions", n, len(res.Decisions))
		}
		if err := proto.Validate(res.Decisions, n); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestBallRoundsGrowSlowly(t *testing.T) {
	t.Parallel()
	// O(log log n) means even n=256 should comfortably finish in far fewer
	// rounds than the deterministic log n bound; use a loose cap that a
	// logarithmic-round algorithm would breach.
	cfg := Config{N: 256, Seed: 1}
	res := runBalls(t, cfg, ids.Random(256, 1), sim.Config{})
	if res.Rounds > 17 { // 1 init + 2*8 phases is already generous
		t.Fatalf("256 balls took %d rounds", res.Rounds)
	}
}

func TestBallSingleProcess(t *testing.T) {
	t.Parallel()
	cfg := Config{N: 1, Seed: 9, CheckInvariants: true}
	res := runBalls(t, cfg, ids.Random(1, 3), sim.Config{})
	if len(res.Decisions) != 1 || res.Decisions[0].Name != 1 {
		t.Fatalf("decisions = %+v", res.Decisions)
	}
	if res.Rounds != 3 { // init + one 2-round phase
		t.Fatalf("rounds = %d, want 3", res.Rounds)
	}
}

func TestBallHybridFailureFreeConstantRounds(t *testing.T) {
	t.Parallel()
	// Theorem 3: the early-terminating variant is deterministic O(1)
	// rounds without failures: the rank rule assigns distinct leaves in
	// phase 1, so every run takes exactly init + one phase = 3 rounds.
	for _, n := range []int{2, 5, 16, 64, 200} {
		cfg := Config{N: n, Seed: uint64(n), Strategy: HybridPaths, CheckInvariants: true}
		res := runBalls(t, cfg, ids.Random(n, uint64(n)+1), sim.Config{})
		if res.Rounds != 3 {
			t.Fatalf("n=%d: hybrid failure-free took %d rounds, want 3", n, res.Rounds)
		}
		if err := proto.Validate(res.Decisions, n); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		// The rank rule is order-preserving in the failure-free case.
		for i := 1; i < len(res.Decisions); i++ {
			if res.Decisions[i].Name <= res.Decisions[i-1].Name {
				t.Fatalf("n=%d: hybrid failure-free names not order-preserving: %+v", n, res.Decisions)
			}
		}
	}
}

func TestBallDeterministicStrategyFailureFree(t *testing.T) {
	t.Parallel()
	cfg := Config{N: 32, Seed: 5, Strategy: DeterministicPaths, CheckInvariants: true}
	res := runBalls(t, cfg, ids.Random(32, 11), sim.Config{})
	if res.Rounds != 3 {
		t.Fatalf("deterministic failure-free took %d rounds, want 3", res.Rounds)
	}
	if err := proto.Validate(res.Decisions, 32); err != nil {
		t.Fatal(err)
	}
}

func TestBallSurvivesSplitterCrash(t *testing.T) {
	t.Parallel()
	// §6: a single crash delivering to every second process forces rank
	// disagreement; the algorithm must still rename correctly.
	for _, strategy := range []PathStrategy{RandomPaths, DeterministicPaths, HybridPaths} {
		for _, round := range []int{1, 2, 3} {
			cfg := Config{N: 32, Seed: 77, Strategy: strategy, CheckInvariants: true}
			res := runBalls(t, cfg, ids.Random(32, 13),
				sim.Config{Adversary: &adversary.Splitter{Round: round}})
			if len(res.Crashed) != 1 {
				t.Fatalf("strategy=%v round=%d: crashes = %v", strategy, round, res.Crashed)
			}
			if len(res.Decisions) != 31 {
				t.Fatalf("strategy=%v round=%d: %d decisions", strategy, round, len(res.Decisions))
			}
			if err := proto.Validate(res.Decisions, 32); err != nil {
				t.Fatalf("strategy=%v round=%d: %v", strategy, round, err)
			}
		}
	}
}

func TestBallSurvivesRandomCrashes(t *testing.T) {
	t.Parallel()
	const n = 48
	for seed := uint64(0); seed < 8; seed++ {
		adv := adversary.NewRandom(n/3, 9, seed)
		cfg := Config{N: n, Seed: seed, CheckInvariants: true}
		res := runBalls(t, cfg, ids.Random(n, seed+100), sim.Config{Adversary: adv})
		if err := proto.Validate(res.Decisions, n); err != nil {
			t.Fatalf("seed=%d: %v", seed, err)
		}
		if len(res.Decisions)+len(res.Crashed) != n {
			t.Fatalf("seed=%d: %d decisions + %d crashed != %d",
				seed, len(res.Decisions), len(res.Crashed), n)
		}
	}
}

func TestBallRejectsBadConfig(t *testing.T) {
	t.Parallel()
	if _, err := NewBalls(Config{N: 0}, nil); err == nil {
		t.Fatal("N=0 accepted")
	}
	if _, err := NewBalls(Config{N: 2}, []proto.ID{1}); err == nil {
		t.Fatal("label count mismatch accepted")
	}
	if _, err := NewBalls(Config{N: 2}, []proto.ID{5, 5}); err == nil {
		t.Fatal("duplicate labels accepted")
	}
	if _, err := NewBalls(Config{N: 3, Budget: 3}, []proto.ID{1, 2, 3}); err == nil {
		t.Fatal("budget >= n accepted")
	}
}

func TestBallDeterministicReplay(t *testing.T) {
	t.Parallel()
	labels := ids.Random(24, 3)
	run := func() sim.Result {
		return runBalls(t, Config{N: 24, Seed: 5}, labels, sim.Config{})
	}
	a, b := run(), run()
	if a.Rounds != b.Rounds || len(a.Decisions) != len(b.Decisions) {
		t.Fatalf("replay diverged: %d/%d rounds", a.Rounds, b.Rounds)
	}
	for i := range a.Decisions {
		if a.Decisions[i] != b.Decisions[i] {
			t.Fatalf("replay decision %d diverged: %+v vs %+v", i, a.Decisions[i], b.Decisions[i])
		}
	}
}

func TestBallToleratesMalformedPayloads(t *testing.T) {
	t.Parallel()
	topo := tree.NewTopology(4)
	cfg := Config{N: 4, Seed: 1}.normalized()
	b, err := NewBall(cfg, topo, 10)
	if err != nil {
		t.Fatal(err)
	}
	b.Send(1)
	b.Deliver(1, []proto.Message{
		{From: 10, Payload: []byte{msgJoin}},
		{From: 20, Payload: []byte{msgJoin}},
		{From: 30, Payload: []byte{99}}, // wrong kind: dropped
		{From: 40, Payload: nil},        // empty: dropped
	})
	if got := b.View().Size(); got != 2 {
		t.Fatalf("view size = %d, want 2 (malformed joins dropped)", got)
	}
	if b.DecodeErrors() != 2 {
		t.Fatalf("decode errors = %d, want 2", b.DecodeErrors())
	}
}
