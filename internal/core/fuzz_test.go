package core

import (
	"testing"

	"ballsintoleaves/internal/proto"
	"ballsintoleaves/internal/tree"
	"ballsintoleaves/internal/wire"
)

// FuzzDecodePath asserts the path decoder never panics and never accepts a
// structurally invalid path, whatever bytes arrive off the wire.
func FuzzDecodePath(f *testing.F) {
	topo := tree.NewTopology(16)
	var w wire.Writer
	appendPath(&w, Path{Start: topo.Root(), Leaf: 7})
	f.Add(w.Bytes())
	f.Add([]byte{msgPath})
	f.Add([]byte{msgPath, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, payload []byte) {
		p, err := decodePath(payload, topo)
		if err != nil {
			return
		}
		if p.Start < 0 || int(p.Start) >= topo.NumNodes() {
			t.Fatalf("accepted out-of-range start %d", p.Start)
		}
		if p.Leaf < 0 || int(p.Leaf) >= topo.N() {
			t.Fatalf("accepted out-of-range leaf %d", p.Leaf)
		}
		if !topo.Contains(p.Start, int(p.Leaf)) {
			t.Fatalf("accepted foreign leaf %d under %d", p.Leaf, p.Start)
		}
	})
}

// FuzzDecodePos mirrors FuzzDecodePath for position announcements.
func FuzzDecodePos(f *testing.F) {
	topo := tree.NewTopology(16)
	var w wire.Writer
	appendPos(&w, topo.Leaf(3))
	f.Add(w.Bytes())
	f.Add([]byte{msgPos, 0xff, 0x01})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, payload []byte) {
		node, err := decodePos(payload, topo)
		if err != nil {
			return
		}
		if node < 0 || int(node) >= topo.NumNodes() {
			t.Fatalf("accepted out-of-range node %d", node)
		}
	})
}

// FuzzBallDeliver hammers a live Ball with arbitrary payloads mixed into a
// legitimate round: malformed traffic must be absorbed as crashes, never
// panic, and never break the self view.
func FuzzBallDeliver(f *testing.F) {
	f.Add([]byte{msgPath, 0, 0, 0}, []byte{msgPos, 3})
	f.Add([]byte{0xff, 0xee}, []byte{})
	f.Add([]byte{msgJoin}, []byte{msgJoin, 1})
	f.Fuzz(func(t *testing.T, junkA, junkB []byte) {
		const n = 4
		topo := tree.NewTopology(n)
		cfg := Config{N: n, Seed: 1}
		b, err := NewBall(cfg, topo, 10)
		if err != nil {
			t.Fatal(err)
		}
		b.Send(1)
		b.Deliver(1, []proto.Message{
			{From: 10, Payload: []byte{msgJoin}},
			{From: 20, Payload: []byte{msgJoin}},
			{From: 30, Payload: junkA},
		})
		payload := b.Send(2)
		b.Deliver(2, []proto.Message{
			{From: 10, Payload: payload},
			{From: 20, Payload: junkA},
			{From: 30, Payload: junkB},
			{From: 99, Payload: junkB}, // unknown sender
		})
		pos := b.Send(3)
		b.Deliver(3, []proto.Message{
			{From: 10, Payload: pos},
			{From: 20, Payload: junkB},
		})
		if err := b.View().CheckConsistency(); err != nil {
			t.Fatalf("view corrupted by junk traffic: %v", err)
		}
	})
}
