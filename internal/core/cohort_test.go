package core

import (
	"fmt"
	"testing"

	"ballsintoleaves/internal/adversary"
	"ballsintoleaves/internal/ids"
	"ballsintoleaves/internal/proto"
	"ballsintoleaves/internal/sim"
)

// advFactory builds a fresh adversary per run: strategies are stateful, so
// the sim and cohort runs each need their own instance.
type advFactory struct {
	name string
	make func() adversary.Strategy
}

func factories(n int) []advFactory {
	return []advFactory{
		{"none", func() adversary.Strategy { return adversary.None{} }},
		{"splitter-init", func() adversary.Strategy { return &adversary.Splitter{Round: 1} }},
		{"splitter-path", func() adversary.Strategy { return &adversary.Splitter{Round: 2} }},
		{"splitter-pos", func() adversary.Strategy { return &adversary.Splitter{Round: 3} }},
		{"random-light", func() adversary.Strategy { return adversary.NewRandom(n/8, 9, 1) }},
		{"random-heavy", func() adversary.Strategy { return adversary.NewRandom(n/2, 11, 2) }},
		{"rank-shifter", func() adversary.Strategy { return &adversary.RankShifter{} }},
		{"one-per-phase", func() adversary.Strategy { return &adversary.OnePerPhase{} }},
		{"deep-target", func() adversary.Strategy { return &adversary.DeepTarget{PerRound: 2, Seed: 3} }},
		{"at-round-burst", func() adversary.Strategy {
			return &adversary.AtRound{Round: 2, Count: n / 3, Pattern: func(s []proto.ID) func(proto.ID) bool {
				return adversary.AlternatingByRank(s)
			}}
		}},
	}
}

// runCohortT builds and runs a cohort, failing the test on error.
func runCohortT(t *testing.T, cfg Config, labels []proto.ID) Result {
	t.Helper()
	c, err := NewCohort(cfg, labels)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestCohortMatchesSim is the load-bearing equivalence test: the fast
// cohort simulator must reproduce the reference engine bit for bit —
// same rounds, same decisions (names and rounds), same crash counts, same
// message and byte totals — across path strategies and adversaries.
func TestCohortMatchesSim(t *testing.T) {
	t.Parallel()
	const n = 48
	for _, strategy := range []PathStrategy{RandomPaths, DeterministicPaths, HybridPaths, LevelDescent} {
		for _, fac := range factories(n) {
			for seed := uint64(0); seed < 3; seed++ {
				name := fmt.Sprintf("%v/%s/seed%d", strategy, fac.name, seed)
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					labels := ids.Random(n, seed+50)
					cfg := Config{N: n, Seed: seed, Strategy: strategy, CheckInvariants: true}

					balls, err := NewBalls(cfg, labels)
					if err != nil {
						t.Fatal(err)
					}
					eng, err := sim.New(sim.Config{Adversary: fac.make()}, Processes(balls))
					if err != nil {
						t.Fatal(err)
					}
					want, err := eng.Run()
					if err != nil {
						t.Fatal(err)
					}

					cfg.Adversary = fac.make()
					got := runCohortT(t, cfg, labels)

					if got.Rounds != want.Rounds {
						t.Errorf("rounds: cohort %d, sim %d", got.Rounds, want.Rounds)
					}
					if got.Crashes != len(want.Crashed) {
						t.Errorf("crashes: cohort %d, sim %d", got.Crashes, len(want.Crashed))
					}
					if got.CrashedDecided != want.CrashedDecided {
						t.Errorf("crashed-decided: cohort %d, sim %d", got.CrashedDecided, want.CrashedDecided)
					}
					if len(got.Decisions) != len(want.Decisions) {
						t.Fatalf("decisions: cohort %d, sim %d", len(got.Decisions), len(want.Decisions))
					}
					for i := range got.Decisions {
						if got.Decisions[i] != want.Decisions[i] {
							t.Errorf("decision %d: cohort %+v, sim %+v", i, got.Decisions[i], want.Decisions[i])
						}
					}
					if got.Messages != want.Messages {
						t.Errorf("messages: cohort %d, sim %d", got.Messages, want.Messages)
					}
					if got.Bytes != want.Bytes {
						t.Errorf("bytes: cohort %d, sim %d", got.Bytes, want.Bytes)
					}
					if err := proto.Validate(got.Decisions, n); err != nil {
						t.Error(err)
					}
				})
			}
		}
	}
}

func TestCohortFailureFreeAllSizes(t *testing.T) {
	t.Parallel()
	for _, n := range []int{1, 2, 3, 5, 8, 13, 16, 100, 256, 1000} {
		cfg := Config{N: n, Seed: uint64(n), CheckInvariants: n <= 256}
		res := runCohortT(t, cfg, ids.Random(n, uint64(n)*3+1))
		if len(res.Decisions) != n {
			t.Fatalf("n=%d: %d decisions", n, len(res.Decisions))
		}
		if err := proto.Validate(res.Decisions, n); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestCohortLargeScaleUniqueness(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("large-n run")
	}
	const n = 1 << 14
	res := runCohortT(t, Config{N: n, Seed: 4}, ids.Random(n, 21))
	if err := proto.Validate(res.Decisions, n); err != nil {
		t.Fatal(err)
	}
	if len(res.Decisions) != n {
		t.Fatalf("%d decisions", len(res.Decisions))
	}
	// O(log log n): even at n = 16384 the run should finish in very few
	// phases; log2(log2(16384)) ≈ 3.8.
	if res.Phases > 12 {
		t.Fatalf("n=%d took %d phases", n, res.Phases)
	}
}

func TestCohortHeavyCrashFuzz(t *testing.T) {
	t.Parallel()
	const n = 64
	for seed := uint64(0); seed < 12; seed++ {
		adv := adversary.NewRandom(n-10, 13, seed)
		cfg := Config{N: n, Seed: seed, CheckInvariants: true, Adversary: adv}
		res := runCohortT(t, cfg, ids.Random(n, seed+500))
		if err := proto.Validate(res.Decisions, n); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(res.Decisions)+res.Crashes != n {
			t.Fatalf("seed %d: %d decided + %d crashed != %d", seed, len(res.Decisions), res.Crashes, n)
		}
	}
}

func TestCohortMetricsSnapshots(t *testing.T) {
	t.Parallel()
	const n = 256
	cfg := Config{N: n, Seed: 7, Metrics: true}
	res := runCohortT(t, cfg, ids.Random(n, 3))
	if res.Metrics == nil || len(res.Metrics.PerPhase) != res.Phases {
		t.Fatalf("metrics: %+v (phases %d)", res.Metrics, res.Phases)
	}
	first := res.Metrics.PerPhase[0]
	if first.Balls != n {
		t.Fatalf("phase 1 balls = %d", first.Balls)
	}
	last := res.Metrics.PerPhase[len(res.Metrics.PerPhase)-1]
	if last.AtLeaves != n {
		t.Fatalf("final at-leaves = %d, want %d", last.AtLeaves, n)
	}
	if last.BusiestPathLoad != 0 {
		t.Fatalf("final busiest path load = %d, want 0", last.BusiestPathLoad)
	}
	// Lemma 2 (path isolation) at the metrics level: the busiest path load
	// never increases... it can shift between paths, but total inner-node
	// population is non-increasing.
	prevInner := n + 1
	for _, s := range res.Metrics.PerPhase {
		inner := s.Balls - s.AtLeaves
		if inner > prevInner {
			t.Fatalf("phase %d: inner population grew %d -> %d", s.Phase, prevInner, inner)
		}
		prevInner = inner
	}
}

func TestCohortHybridEarlyTermination(t *testing.T) {
	t.Parallel()
	// Theorem 3: failure-free hybrid takes exactly 3 rounds at any n.
	for _, n := range []int{4, 64, 1024, 4096} {
		cfg := Config{N: n, Seed: uint64(n), Strategy: HybridPaths}
		res := runCohortT(t, cfg, ids.Random(n, uint64(n)))
		if res.Rounds != 3 {
			t.Fatalf("n=%d: hybrid failure-free %d rounds, want 3", n, res.Rounds)
		}
	}
	// Theorem 4 flavor: with f crashes at init, rounds stay far below the
	// failure-free random baseline's log-ish growth; just assert recovery
	// and correctness here (E3 quantifies the log log f shape).
	const n = 1024
	for _, f := range []int{1, 4, 16, 64} {
		adv := &adversary.AtRound{Round: 1, Count: f, Pattern: func(s []proto.ID) func(proto.ID) bool {
			return adversary.AlternatingByRank(s)
		}}
		cfg := Config{N: n, Seed: uint64(f), Strategy: HybridPaths, Adversary: adv}
		res := runCohortT(t, cfg, ids.Random(n, uint64(f)+9))
		if err := proto.Validate(res.Decisions, n); err != nil {
			t.Fatalf("f=%d: %v", f, err)
		}
		if len(res.Decisions) != n-f {
			t.Fatalf("f=%d: %d decisions", f, len(res.Decisions))
		}
	}
}

func TestCohortLevelDescentExactRounds(t *testing.T) {
	t.Parallel()
	// The deterministic one-level-per-phase comparator takes exactly
	// ceil(log2 n) phases failure-free: Θ(log n) by construction, the
	// round complexity of the deterministic algorithms the paper
	// exponentially improves on.
	for _, exp := range []int{1, 3, 6, 10} {
		n := 1 << exp
		cfg := Config{N: n, Seed: uint64(n), Strategy: LevelDescent, CheckInvariants: n <= 256}
		res := runCohortT(t, cfg, ids.Random(n, uint64(n)+5))
		if want := 1 + 2*exp; res.Rounds != want {
			t.Fatalf("n=2^%d: level-descent %d rounds, want %d", exp, res.Rounds, want)
		}
		if err := proto.Validate(res.Decisions, n); err != nil {
			t.Fatal(err)
		}
		// Rank splitting is order-preserving failure-free.
		for i := 1; i < len(res.Decisions); i++ {
			if res.Decisions[i].Name <= res.Decisions[i-1].Name {
				t.Fatalf("n=2^%d: names not order-preserving", exp)
			}
		}
	}
}

func TestCohortDeterministicReplay(t *testing.T) {
	t.Parallel()
	labels := ids.Random(128, 77)
	run := func() Result {
		cfg := Config{N: 128, Seed: 13, Adversary: adversary.NewRandom(40, 9, 5)}
		return runCohortT(t, cfg, labels)
	}
	a, b := run(), run()
	if a.Rounds != b.Rounds || a.Crashes != b.Crashes || len(a.Decisions) != len(b.Decisions) {
		t.Fatalf("replay diverged: %+v vs %+v", a, b)
	}
	for i := range a.Decisions {
		if a.Decisions[i] != b.Decisions[i] {
			t.Fatalf("decision %d diverged", i)
		}
	}
}

func TestCohortRejectsBadConfig(t *testing.T) {
	t.Parallel()
	if _, err := NewCohort(Config{N: 0}, nil); err == nil {
		t.Fatal("N=0 accepted")
	}
	if _, err := NewCohort(Config{N: 2}, []proto.ID{3, 3}); err == nil {
		t.Fatal("duplicate labels accepted")
	}
	if _, err := NewCohort(Config{N: 2}, []proto.ID{3}); err == nil {
		t.Fatal("short label list accepted")
	}
}

func TestCohortSingleBall(t *testing.T) {
	t.Parallel()
	res := runCohortT(t, Config{N: 1, Seed: 1}, []proto.ID{42})
	if res.Rounds != 3 || len(res.Decisions) != 1 || res.Decisions[0].Name != 1 {
		t.Fatalf("result = %+v", res)
	}
}
