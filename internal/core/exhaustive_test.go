package core

import (
	"fmt"
	"testing"

	"ballsintoleaves/internal/adversary"
	"ballsintoleaves/internal/ids"
	"ballsintoleaves/internal/proto"
	"ballsintoleaves/internal/sim"
)

// This file model-checks the protocol at small scale: instead of sampling
// crash patterns, it enumerates EVERY pattern in a bounded space — every
// round, every victim, every partial-delivery mask, for one and two
// crashes — and asserts tight renaming plus all runtime invariants in every
// reachable execution, for every path strategy. The sampled property tests
// cover the large; this covers the complete small.

// exhaustiveCrash is one fully specified crash: a round, a victim (by rank
// among the processes alive at that round), and a delivery bitmask over the
// alive processes' ranks.
type exhaustiveCrash struct {
	round  int
	victim int
	mask   uint32
}

// exhaustiveAdversary replays the scripted crashes.
type exhaustiveAdversary struct {
	crashes []exhaustiveCrash
}

func (e *exhaustiveAdversary) Name() string { return "exhaustive" }

func (e *exhaustiveAdversary) Plan(view adversary.RoundView) []adversary.CrashSpec {
	var specs []adversary.CrashSpec
	alive := view.Alive()
	for _, c := range e.crashes {
		if c.round != view.Round() || c.victim >= len(alive) {
			continue
		}
		victim := alive[c.victim]
		rank := make(map[proto.ID]int, len(alive))
		for i, id := range alive {
			rank[id] = i
		}
		mask := c.mask
		specs = append(specs, adversary.CrashSpec{
			Victim: victim,
			Deliver: func(to proto.ID) bool {
				r, ok := rank[to]
				return ok && mask&(1<<uint(r)) != 0
			},
		})
	}
	return specs
}

// runExhaustive executes one scripted pattern on the faithful Ball system
// with full invariant checking and validates the outcome.
func runExhaustive(t *testing.T, n int, strategy PathStrategy, crashes []exhaustiveCrash) {
	t.Helper()
	labels := ids.Sequential(n)
	cfg := Config{N: n, Seed: 1, Strategy: strategy, CheckInvariants: true}
	balls, err := NewBalls(cfg, labels)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := sim.New(sim.Config{Adversary: &exhaustiveAdversary{crashes: crashes}}, Processes(balls))
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatalf("crashes %+v: %v", crashes, err)
	}
	if err := proto.Validate(res.Decisions, n); err != nil {
		t.Fatalf("crashes %+v: %v", crashes, err)
	}
	if len(res.Decisions)+len(res.Crashed) != n {
		t.Fatalf("crashes %+v: %d decided + %d crashed != %d",
			crashes, len(res.Decisions), len(res.Crashed), n)
	}
	// Cross-check the cohort on the same script.
	cfg.Adversary = &exhaustiveAdversary{crashes: crashes}
	c, err := NewCohort(cfg, labels)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Run()
	if err != nil {
		t.Fatalf("cohort, crashes %+v: %v", crashes, err)
	}
	if got.Rounds != res.Rounds || len(got.Decisions) != len(res.Decisions) {
		t.Fatalf("crashes %+v: cohort %d rounds/%d decisions, sim %d/%d",
			crashes, got.Rounds, len(got.Decisions), res.Rounds, len(res.Decisions))
	}
	for i := range got.Decisions {
		if got.Decisions[i] != res.Decisions[i] {
			t.Fatalf("crashes %+v: decision %d differs", crashes, i)
		}
	}
}

// TestExhaustiveSingleCrash enumerates every single-crash execution of a
// 4-process system within the first five rounds: 5 rounds × 4 victims ×
// 16 delivery masks × 3 strategies = 960 complete protocol executions, each
// checked for uniqueness, validity, invariants and engine equivalence.
func TestExhaustiveSingleCrash(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("exhaustive enumeration")
	}
	const n = 4
	for _, strategy := range []PathStrategy{RandomPaths, HybridPaths, LevelDescent} {
		strategy := strategy
		t.Run(strategy.String(), func(t *testing.T) {
			t.Parallel()
			for round := 1; round <= 5; round++ {
				for victim := 0; victim < n; victim++ {
					for mask := uint32(0); mask < 1<<(n-1); mask++ {
						runExhaustive(t, n, strategy,
							[]exhaustiveCrash{{round: round, victim: victim, mask: mask}})
					}
				}
			}
		})
	}
}

// TestExhaustiveDoubleCrash enumerates every ordered pair of crashes of a
// 3-process system within the first four rounds (including two crashes in
// the same round), with all delivery masks: the full double-fault space.
func TestExhaustiveDoubleCrash(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("exhaustive enumeration")
	}
	const n = 3
	type point struct {
		round, victim int
		mask          uint32
	}
	var points []point
	for round := 1; round <= 4; round++ {
		for victim := 0; victim < n; victim++ {
			for mask := uint32(0); mask < 1<<(n-1); mask++ {
				points = append(points, point{round, victim, mask})
			}
		}
	}
	for _, strategy := range []PathStrategy{RandomPaths, HybridPaths} {
		strategy := strategy
		t.Run(strategy.String(), func(t *testing.T) {
			t.Parallel()
			for i, a := range points {
				for j, b := range points {
					if b.round < a.round {
						continue // unordered duplicates
					}
					if a.round == b.round && j < i {
						continue
					}
					runExhaustive(t, n, strategy, []exhaustiveCrash{
						{round: a.round, victim: a.victim, mask: a.mask},
						{round: b.round, victim: b.victim, mask: b.mask},
					})
				}
			}
		})
	}
}

// TestExhaustiveCrashNames documents the enumeration size so a future
// change that silently shrinks the space fails loudly.
func TestExhaustiveCrashNames(t *testing.T) {
	t.Parallel()
	single := 5 * 4 * (1 << 3)
	if single != 160 {
		t.Fatalf("single-crash space = %d", single)
	}
	_ = fmt.Sprintf("double-crash space ~ %d", (4*3*4)*(4*3*4))
}
