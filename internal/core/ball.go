package core

import (
	"fmt"
	"sort"

	"ballsintoleaves/internal/adversary"
	"ballsintoleaves/internal/proto"
	"ballsintoleaves/internal/rng"
	"ballsintoleaves/internal/sim"
	"ballsintoleaves/internal/tree"
	"ballsintoleaves/internal/wire"
)

// Ball is the faithful per-process implementation of Algorithm 1. Each Ball
// keeps a full local view of the virtual tree — exactly the data structure
// of the paper — and is driven as a proto.Process by internal/sim or
// internal/runtime:
//
//	round 1:      broadcast ⟨b_i⟩, insert every received ball at the root;
//	round 2φ:     broadcast the candidate path, then simulate all received
//	              paths in <R priority order (phase φ, communication round 1);
//	round 2φ+1:   broadcast the current position, then synchronize the view
//	              and remove silent balls (phase φ, communication round 2).
//
// A Ball decides once it occupies a leaf (the decided name is the leaf's
// left-to-right rank, 1-based) and halts when every ball in its view is at
// a leaf (line 29).
type Ball struct {
	cfg  Config
	id   proto.ID
	topo *tree.Topology
	src  *rng.Source

	view    *View
	selfIdx int

	// Scratch buffers reused across rounds.
	w       wire.Writer
	has     []bool
	paths   []Path
	pos     []tree.Node
	joinSet []proto.ID

	myPath       Path
	decided      bool
	name         int
	done         bool
	decodeErrors int
}

// Compile-time checks that Ball satisfies the engine contracts.
var (
	_ proto.Process    = (*Ball)(nil)
	_ sim.Introspector = (*Ball)(nil)
)

// NewBall constructs one process. All balls of a system must share the same
// Config (normalized identically) and topology; use NewBalls for the common
// case.
func NewBall(cfg Config, topo *tree.Topology, id proto.ID) (*Ball, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cfg = cfg.normalized()
	if topo.N() != cfg.N {
		return nil, fmt.Errorf("core: topology has %d leaves, config wants %d", topo.N(), cfg.N)
	}
	return &Ball{
		cfg:  cfg,
		id:   id,
		topo: topo,
		src:  rng.Derive(cfg.Seed, uint64(id)),
	}, nil
}

// NewBalls constructs the full system: one Ball per label over a shared
// topology. Labels must be distinct; order does not matter.
func NewBalls(cfg Config, labels []proto.ID) ([]*Ball, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(labels) != cfg.N {
		return nil, fmt.Errorf("core: %d labels for N=%d", len(labels), cfg.N)
	}
	seen := make(map[proto.ID]bool, len(labels))
	for _, id := range labels {
		if seen[id] {
			return nil, fmt.Errorf("core: duplicate label %v", id)
		}
		seen[id] = true
	}
	topo := tree.Shared(cfg.N, cfg.normalized().Arity)
	balls := make([]*Ball, len(labels))
	for i, id := range labels {
		b, err := NewBall(cfg, topo, id)
		if err != nil {
			return nil, err
		}
		balls[i] = b
	}
	return balls, nil
}

// Processes converts a Ball slice to the engine's interface type.
func Processes(balls []*Ball) []proto.Process {
	procs := make([]proto.Process, len(balls))
	for i, b := range balls {
		procs[i] = b
	}
	return procs
}

// ID implements proto.Process.
func (b *Ball) ID() proto.ID { return b.id }

// Decided implements proto.Process.
func (b *Ball) Decided() (int, bool) { return b.name, b.decided }

// Done implements proto.Process.
func (b *Ball) Done() bool { return b.done }

// DecodeErrors reports how many malformed payloads the ball tolerated
// (each is treated as the sender having crashed).
func (b *Ball) DecodeErrors() int { return b.decodeErrors }

// View exposes the ball's local view for invariant checks in tests.
func (b *Ball) View() *View { return b.view }

// Info implements sim.Introspector for strong adaptive adversaries.
func (b *Ball) Info() adversary.BallInfo {
	info := adversary.BallInfo{Label: b.id}
	if b.view != nil {
		node := b.view.Node(b.selfIdx)
		info.Depth = b.topo.Depth(node)
		info.AtLeaf = b.topo.IsLeaf(node)
	}
	return info
}

// Send implements proto.Process.
func (b *Ball) Send(round int) []byte {
	b.w.Reset()
	switch {
	case round == 1:
		appendJoin(&b.w)
	case b.cfg.NoSyncRound || round%2 == 0:
		phase := round / 2
		if b.cfg.NoSyncRound {
			phase = round - 1
		}
		b.myPath = choosePath(b.cfg, b.view, b.selfIdx, b.src, phase)
		appendPath(&b.w, b.myPath)
	default:
		appendPos(&b.w, b.view.Node(b.selfIdx))
	}
	return b.w.Bytes()
}

// Deliver implements proto.Process.
func (b *Ball) Deliver(round int, msgs []proto.Message) {
	switch {
	case round == 1:
		b.initView(msgs)
	case b.cfg.NoSyncRound:
		b.deliverPaths(msgs)
		b.maybeDecideAndHalt()
	case round%2 == 0:
		b.deliverPaths(msgs)
	default:
		b.deliverPositions(round, msgs)
	}
}

// maybeDecideAndHalt applies the decision and termination checks against
// the current view (shared by the position round and the no-sync ablation).
func (b *Ball) maybeDecideAndHalt() {
	self := b.view.Node(b.selfIdx)
	if !b.decided && b.topo.IsLeaf(self) {
		b.decided = true
		b.name = b.topo.LeafRank(self) + 1
	}
	if b.view.AllAtLeaves() {
		b.done = true
	}
}

// initView processes the join round (line 1): every heard ball is inserted
// at the root of the local tree.
func (b *Ball) initView(msgs []proto.Message) {
	b.joinSet = b.joinSet[:0]
	selfHeard := false
	for _, m := range msgs {
		if err := decodeJoin(m.Payload); err != nil {
			b.decodeErrors++
			continue
		}
		b.joinSet = append(b.joinSet, m.From)
		if m.From == b.id {
			selfHeard = true
		}
	}
	if !selfHeard {
		// Engines always self-deliver, but a view without self would be
		// unable to act; insert defensively.
		b.joinSet = append(b.joinSet, b.id)
	}
	labels := make([]proto.ID, len(b.joinSet))
	copy(labels, b.joinSet)
	sort.Slice(labels, func(i, j int) bool { return labels[i] < labels[j] })
	b.view = NewView(b.topo, labels)
	idx, ok := b.view.IndexOf(b.id)
	if !ok {
		panic("core: self missing from freshly built view")
	}
	b.selfIdx = idx
	n := b.view.Universe()
	b.has = make([]bool, n)
	b.paths = make([]Path, n)
	b.pos = make([]tree.Node, n)
}

// deliverPaths processes round 1 of a phase: collect candidate paths and
// run the priority move pass.
func (b *Ball) deliverPaths(msgs []proto.Message) {
	for i := range b.has {
		b.has[i] = false
	}
	for _, m := range msgs {
		idx, ok := b.view.IndexOf(m.From)
		if !ok || !b.view.Present(idx) {
			// Unknown or already-removed sender: a correct process is
			// known to everyone after the init round, so this can only be
			// stale traffic; ignore it.
			continue
		}
		p, err := decodePath(m.Payload, b.topo)
		if err != nil {
			b.decodeErrors++
			continue
		}
		b.has[idx] = true
		b.paths[idx] = p
	}
	applyPaths(b.cfg, b.view, b.has, b.paths)
	if b.cfg.CheckInvariants {
		if err := b.view.CheckConsistency(); err != nil {
			panic(fmt.Sprintf("core: ball %v after path round: %v", b.id, err))
		}
		// After the path pass every silent (crashed) ball has been removed
		// and every move respected capacity at its turn, so the full
		// capacity invariant must hold — unless the LabelPriority ablation
		// deliberately broke the reservation argument.
		if !b.cfg.LabelPriority {
			if err := b.view.Occupancy().CheckCapacityInvariant(); err != nil {
				panic(fmt.Sprintf("core: ball %v after path round: %v", b.id, err))
			}
		}
	}
}

// deliverPositions processes round 2 of a phase: synchronize announced
// positions, remove silent balls, then decide and/or halt.
func (b *Ball) deliverPositions(round int, msgs []proto.Message) {
	for i := range b.has {
		b.has[i] = false
	}
	for _, m := range msgs {
		idx, ok := b.view.IndexOf(m.From)
		if !ok || !b.view.Present(idx) {
			continue
		}
		node, err := decodePos(m.Payload, b.topo)
		if err != nil {
			b.decodeErrors++
			continue
		}
		b.has[idx] = true
		b.pos[idx] = node
	}
	applyPositions(b.cfg, b.view, b.has, b.pos)
	if b.cfg.CheckInvariants {
		if err := b.view.CheckConsistency(); err != nil {
			panic(fmt.Sprintf("core: ball %v after position round: %v", b.id, err))
		}
	}
	b.maybeDecideAndHalt()
}
