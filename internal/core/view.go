package core

import (
	"fmt"
	"sort"

	"ballsintoleaves/internal/proto"
	"ballsintoleaves/internal/tree"
)

// View is one local view of the virtual tree: the set of balls a process
// believes are participating, each with a position. Balls are addressed by
// dense index into the label table (ascending label order), which every
// view derived from the same membership shares.
//
// A View owns its occupancy; the topology and label table are shared and
// immutable.
type View struct {
	topo    *tree.Topology
	occ     *tree.Occupancy
	labels  []proto.ID // ascending; shared, immutable
	node    []tree.Node
	present []bool
	count   int

	// Scratch reused by orderedPresent; lazily allocated, never copied by
	// Clone/CopyFrom (it carries no view state).
	orderBuf  []int32
	depthCnt  []int32
	depthOff  []int32
}

// NewView builds a view with all the given balls at the root, the initial
// configuration of Algorithm 1 (Figure 1). The labels slice must be sorted
// ascending and is retained (not copied).
func NewView(topo *tree.Topology, labels []proto.ID) *View {
	v := &View{
		topo:    topo,
		occ:     tree.NewOccupancy(topo),
		labels:  labels,
		node:    make([]tree.Node, len(labels)),
		present: make([]bool, len(labels)),
		count:   len(labels),
	}
	root := topo.Root()
	for i := range labels {
		v.node[i] = root
		v.present[i] = true
		v.occ.Add(root)
	}
	return v
}

// ResetAllAtRoot returns the view to the initial configuration of
// Algorithm 1 — every ball present and parked at the root — without
// allocating, so a view (and the Cohort owning it) can be reused across
// runs. The label table is shared and mutable by the owner (Cohort.Reset
// rewrites it in place); the view itself only indexes it.
func (v *View) ResetAllAtRoot() {
	v.occ.Reset()
	root := v.topo.Root()
	for i := range v.node {
		v.node[i] = root
		v.present[i] = true
		v.occ.Add(root)
	}
	v.count = len(v.labels)
}

// Clone returns an independent deep copy.
func (v *View) Clone() *View {
	cp := &View{
		topo:    v.topo,
		occ:     v.occ.Clone(),
		labels:  v.labels,
		node:    make([]tree.Node, len(v.node)),
		present: make([]bool, len(v.present)),
		count:   v.count,
	}
	copy(cp.node, v.node)
	copy(cp.present, v.present)
	return cp
}

// CopyFrom overwrites v with src without allocating; both must share the
// same topology and label table.
func (v *View) CopyFrom(src *View) {
	if v.topo != src.topo || len(v.labels) != len(src.labels) {
		panic("core: CopyFrom across incompatible views")
	}
	v.occ.CopyFrom(src.occ)
	copy(v.node, src.node)
	copy(v.present, src.present)
	v.count = src.count
}

// Topology returns the shared tree shape.
func (v *View) Topology() *tree.Topology { return v.topo }

// Occupancy exposes the view's subtree counts (read-mostly; mutate only
// through View methods).
func (v *View) Occupancy() *tree.Occupancy { return v.occ }

// Size returns the number of balls currently present.
func (v *View) Size() int { return v.count }

// Universe returns the number of dense indices (present or not).
func (v *View) Universe() int { return len(v.labels) }

// Label returns the label of the ball at dense index idx.
func (v *View) Label(idx int) proto.ID { return v.labels[idx] }

// IndexOf returns the dense index of a label via binary search.
func (v *View) IndexOf(id proto.ID) (int, bool) {
	i := sort.Search(len(v.labels), func(i int) bool { return v.labels[i] >= id })
	if i < len(v.labels) && v.labels[i] == id {
		return i, true
	}
	return 0, false
}

// Present reports whether the ball at idx is in the view.
func (v *View) Present(idx int) bool { return v.present[idx] }

// Node returns the current position of the ball at idx.
func (v *View) Node(idx int) tree.Node { return v.node[idx] }

// Remove deletes the ball at idx from the view (Algorithm 1's Remove),
// freeing its capacity. Removing an absent ball is a no-op.
func (v *View) Remove(idx int) {
	if !v.present[idx] {
		return
	}
	v.present[idx] = false
	v.count--
	v.occ.Remove(v.node[idx])
}

// SetNode relocates the ball at idx (Algorithm 1's UpdateNode). It panics
// if the ball is absent.
func (v *View) SetNode(idx int, node tree.Node) {
	if !v.present[idx] {
		panic(fmt.Sprintf("core: SetNode on absent ball %d", idx))
	}
	v.occ.Move(v.node[idx], node)
	v.node[idx] = node
}

// AllAtLeaves reports the termination condition of Algorithm 1 (line 29):
// every present ball occupies a leaf.
func (v *View) AllAtLeaves() bool {
	for i, p := range v.present {
		if p && !v.topo.IsLeaf(v.node[i]) {
			return false
		}
	}
	return true
}

// OrderedPresent returns the dense indices of present balls sorted by the
// paper's priority order <R (Definition 1): descending depth first, then
// ascending label. With labelOnly (the E12 ablation) depth is ignored and
// the order is ascending label alone.
//
// The returned slice is freshly allocated; callers may keep it across
// subsequent view mutations (it is a snapshot, exactly what lines 12–21
// iterate over).
func (v *View) OrderedPresent(labelOnly bool) []int32 {
	ordered := v.orderedPresent(labelOnly)
	out := make([]int32, len(ordered))
	copy(out, ordered)
	return out
}

// orderedPresent is OrderedPresent on the view's reusable scratch: the
// returned slice is valid only until the next orderedPresent call on this
// view, but remains a stable snapshot across view mutations, which is all
// the move passes need. Steady-state calls do not allocate.
func (v *View) orderedPresent(labelOnly bool) []int32 {
	if cap(v.orderBuf) < len(v.labels) {
		v.orderBuf = make([]int32, 0, len(v.labels))
	}
	out := v.orderBuf[:0]
	if labelOnly {
		for i, p := range v.present {
			if p {
				out = append(out, int32(i))
			}
		}
		return out
	}
	maxDepth := v.topo.MaxDepth()
	if len(v.depthCnt) < maxDepth+1 {
		v.depthCnt = make([]int32, maxDepth+1)
		v.depthOff = make([]int32, maxDepth+1)
	}
	// Counting sort by depth: bucket sizes, then place in ascending label
	// order within each depth, deepest bucket first.
	counts := v.depthCnt
	for d := 0; d <= maxDepth; d++ {
		counts[d] = 0
	}
	for i, p := range v.present {
		if p {
			counts[v.topo.Depth(v.node[i])]++
		}
	}
	starts := v.depthOff
	acc := int32(0)
	for d := maxDepth; d >= 0; d-- {
		starts[d] = acc
		acc += counts[d]
	}
	out = out[:acc]
	for i, p := range v.present {
		if p {
			d := v.topo.Depth(v.node[i])
			out[starts[d]] = int32(i)
			starts[d]++
		}
	}
	return out
}

// RankAtNode returns the 0-based label rank of the ball at idx among the
// present balls parked at the same node — the input to the deterministic
// path rule. It panics if the ball is absent.
func (v *View) RankAtNode(idx int) int {
	if !v.present[idx] {
		panic(fmt.Sprintf("core: RankAtNode on absent ball %d", idx))
	}
	at := v.node[idx]
	rank := 0
	for i := 0; i < idx; i++ {
		if v.present[i] && v.node[i] == at {
			rank++
		}
	}
	return rank
}

// CheckConsistency verifies that the occupancy matches the position table,
// returning the first violation found. It deliberately does not assert the
// capacity invariant: a view may transiently hold a crashed ball's stale
// position alongside a correct ball's authoritative one, overfilling a
// subtree until the stale ball is removed at its next silent turn — the
// paper's Lemma 1 bounds only correct balls. Callers that know the view is
// residue-free assert Occupancy().CheckCapacityInvariant() separately.
func (v *View) CheckConsistency() error {
	rebuilt := tree.NewOccupancy(v.topo)
	n := 0
	for i, p := range v.present {
		if p {
			rebuilt.Add(v.node[i])
			n++
		}
	}
	if n != v.count {
		return fmt.Errorf("core: view count %d != %d present balls", v.count, n)
	}
	for node := 0; node < v.topo.NumNodes(); node++ {
		if rebuilt.Count(tree.Node(node)) != v.occ.Count(tree.Node(node)) {
			return fmt.Errorf("core: occupancy mismatch at node %d: %d recorded, %d actual",
				node, v.occ.Count(tree.Node(node)), rebuilt.Count(tree.Node(node)))
		}
	}
	return nil
}

// CheckLemma1 verifies the paper's Lemma 1 over a designated subset of
// balls (the correct ones, as known to the caller): in every subtree their
// count never exceeds the leaf count. include is indexed by dense ball
// index; nil means every present ball.
func (v *View) CheckLemma1(include []bool) error {
	occ := tree.NewOccupancy(v.topo)
	for i, p := range v.present {
		if p && (include == nil || include[i]) {
			occ.Add(v.node[i])
		}
	}
	return occ.CheckCapacityInvariant()
}
