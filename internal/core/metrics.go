package core

import (
	"ballsintoleaves/internal/tree"
)

// PhaseSnapshot captures the canonical tree state at the end of one phase,
// feeding the contention (E5), path-drain (E6) and dispersion (E7)
// experiments. All counts are over balls still present in the canonical
// view (actives, halted and lingering residue).
type PhaseSnapshot struct {
	// Phase is the 1-based phase index; Round is the phase's second
	// (position) round.
	Phase int
	Round int
	// Balls is the number of balls present.
	Balls int
	// AtLeaves is the number of present balls parked on leaves.
	AtLeaves int
	// MaxAtNode is the paper's bmax(φ+1): the largest number of balls
	// parked at any single node.
	MaxAtNode int
	// MaxAtInner is the same maximum restricted to inner nodes (leaves
	// saturate at one ball, so this is the interesting contention figure).
	MaxAtInner int
	// BusiestPathLoad is the maximum, over all root-to-leaf paths, of the
	// number of balls parked on the path's inner nodes — the quantity
	// Lemmas 7–10 drain to zero.
	BusiestPathLoad int
	// DepthHist[d] counts balls parked at depth d.
	DepthHist []int
	// Crashes is the cumulative number of crashes so far.
	Crashes int
}

// Metrics aggregates per-run measurements from the Cohort simulator.
type Metrics struct {
	// PerPhase holds one snapshot per executed phase, in order.
	PerPhase []PhaseSnapshot
}

// snapshotView computes a PhaseSnapshot from a view's canonical state.
func snapshotView(v *View, phase, round, crashes int) PhaseSnapshot {
	topo := v.Topology()
	snap := PhaseSnapshot{
		Phase:     phase,
		Round:     round,
		DepthHist: make([]int, topo.MaxDepth()+1),
		Crashes:   crashes,
	}
	occ := v.Occupancy()
	for i := 0; i < v.Universe(); i++ {
		if !v.Present(i) {
			continue
		}
		snap.Balls++
		node := v.Node(i)
		snap.DepthHist[topo.Depth(node)]++
		if topo.IsLeaf(node) {
			snap.AtLeaves++
		}
	}
	// Parked-ball maxima and busiest path in one DFS carrying the running
	// inner-path load.
	type frame struct {
		node tree.Node
		load int // balls parked on inner nodes from root to node's parent
	}
	stack := []frame{{topo.Root(), 0}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		at := occ.At(f.node)
		if at > snap.MaxAtNode {
			snap.MaxAtNode = at
		}
		if topo.IsLeaf(f.node) {
			if f.load > snap.BusiestPathLoad {
				snap.BusiestPathLoad = f.load
			}
			continue
		}
		if at > snap.MaxAtInner {
			snap.MaxAtInner = at
		}
		// Prune empty subtrees: with no balls below, every leaf of this
		// subtree sees exactly the accumulated load.
		if occ.Count(f.node) == 0 {
			if f.load > snap.BusiestPathLoad {
				snap.BusiestPathLoad = f.load
			}
			continue
		}
		load := f.load + at
		for _, child := range topo.Children(f.node) {
			stack = append(stack, frame{child, load})
		}
	}
	return snap
}
