package core

import (
	"testing"
	"testing/quick"

	"ballsintoleaves/internal/rng"
	"ballsintoleaves/internal/tree"
)

func TestRandomPathReachesLeafUnderStart(t *testing.T) {
	t.Parallel()
	topo := tree.NewTopology(16)
	v := NewView(topo, labelsN(16))
	src := rng.New(1)
	for i := 0; i < 200; i++ {
		p := randomPath(v, topo.Root(), src, false)
		if p.Start != topo.Root() {
			t.Fatalf("start = %d", p.Start)
		}
		if p.Leaf < 0 || p.Leaf >= 16 {
			t.Fatalf("leaf = %d", p.Leaf)
		}
	}
}

func TestRandomPathAvoidsFullSubtrees(t *testing.T) {
	t.Parallel()
	topo := tree.NewTopology(8)
	v := NewView(topo, labelsN(8))
	// Fill the left half (leaves 0..3) with balls 0..3; ball 4 at root
	// must always choose a right-half leaf.
	for i := 0; i < 4; i++ {
		v.SetNode(i, topo.Leaf(i))
	}
	src := rng.New(7)
	for i := 0; i < 100; i++ {
		p := randomPath(v, topo.Root(), src, false)
		if p.Leaf < 4 {
			t.Fatalf("path entered a full subtree: leaf %d", p.Leaf)
		}
	}
}

func TestRandomPathCapacityWeighting(t *testing.T) {
	t.Parallel()
	// Left subtree has 1 free slot, right has 4: left should be chosen
	// with probability ~1/5.
	topo := tree.NewTopology(8)
	v := NewView(topo, labelsN(8))
	for i := 0; i < 3; i++ {
		v.SetNode(i, topo.Leaf(i))
	}
	src := rng.New(3)
	left := 0
	const draws = 20000
	for i := 0; i < draws; i++ {
		p := randomPath(v, topo.Root(), src, false)
		if p.Leaf < 4 {
			left++
		}
	}
	got := float64(left) / draws
	if got < 0.17 || got > 0.23 {
		t.Fatalf("left fraction = %.3f, want ~0.20", got)
	}
}

func TestRandomPathUniformAblation(t *testing.T) {
	t.Parallel()
	// Same imbalanced tree, uniform coin: left chosen ~1/2 despite having
	// only 1 slot — the ablation's pathology.
	topo := tree.NewTopology(8)
	v := NewView(topo, labelsN(8))
	for i := 0; i < 3; i++ {
		v.SetNode(i, topo.Leaf(i))
	}
	src := rng.New(4)
	left := 0
	const draws = 20000
	for i := 0; i < draws; i++ {
		p := randomPath(v, topo.Root(), src, true)
		if p.Leaf < 4 {
			left++
		}
	}
	got := float64(left) / draws
	if got < 0.46 || got > 0.54 {
		t.Fatalf("uniform left fraction = %.3f, want ~0.50", got)
	}
}

func TestRandomPathFromLeafIsSelf(t *testing.T) {
	t.Parallel()
	topo := tree.NewTopology(4)
	v := NewView(topo, labelsN(4))
	v.SetNode(0, topo.Leaf(2))
	p := randomPath(v, topo.Leaf(2), rng.New(1), false)
	if p.Start != topo.Leaf(2) || p.Leaf != 2 {
		t.Fatalf("path = %v", p)
	}
}

func TestDeterministicPathDistinctTargets(t *testing.T) {
	t.Parallel()
	// All n balls at the root with ranks 0..n-1 must map to the n distinct
	// leaves in order — the §6 rule's phase-1 behaviour.
	for _, n := range []int{1, 2, 3, 8, 13, 32} {
		topo := tree.NewTopology(n)
		v := NewView(topo, labelsN(n))
		for r := 0; r < n; r++ {
			p := deterministicPath(v, topo.Root(), r)
			if int(p.Leaf) != r {
				t.Fatalf("n=%d rank %d -> leaf %d", n, r, p.Leaf)
			}
		}
	}
}

func TestDeterministicPathSkipsOccupied(t *testing.T) {
	t.Parallel()
	topo := tree.NewTopology(4)
	v := NewView(topo, labelsN(3))
	v.SetNode(0, topo.Leaf(1)) // occupy leaf 1
	// Ranks 0,1 from root now map to the remaining capacity units:
	// leaves 0, 2.
	if p := deterministicPath(v, topo.Root(), 0); p.Leaf != 0 {
		t.Fatalf("rank 0 -> leaf %d", p.Leaf)
	}
	if p := deterministicPath(v, topo.Root(), 1); p.Leaf != 2 {
		t.Fatalf("rank 1 -> leaf %d", p.Leaf)
	}
}

// TestDeterministicPathMonotoneProperty: distinct ranks always map to
// distinct leaves, monotonically.
func TestDeterministicPathMonotoneProperty(t *testing.T) {
	t.Parallel()
	prop := func(seed uint64, rawN uint8) bool {
		n := int(rawN%30) + 2
		topo := tree.NewTopology(n)
		v := NewView(topo, labelsN(n))
		// Scatter some balls to leaves first.
		s := seed
		placed := 0
		for i := 0; i < n/3; i++ {
			s = s*6364136223846793005 + 1
			leaf := topo.Leaf(int(s>>33) % n)
			if v.Occupancy().Count(leaf) == 0 {
				v.SetNode(placed, leaf)
				placed++
			}
		}
		free := v.Occupancy().RemainingCapacity(topo.Left(topo.Root())) +
			v.Occupancy().RemainingCapacity(topo.Right(topo.Root()))
		prev := int32(-1)
		for r := 0; r < free; r++ {
			p := deterministicPath(v, topo.Root(), r)
			if p.Leaf <= prev {
				return false
			}
			prev = p.Leaf
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestChoosePathStrategyDispatch(t *testing.T) {
	t.Parallel()
	topo := tree.NewTopology(8)
	labels := labelsN(8)

	det := Config{N: 8, Strategy: DeterministicPaths}.normalized()
	v := NewView(topo, labels)
	p := choosePath(det, v, 3, rng.New(1), 5)
	if p.Leaf != 3 || p.Limit != 0 {
		t.Fatalf("deterministic path = %+v", p)
	}

	lvl := Config{N: 8, Strategy: LevelDescent}.normalized()
	p = choosePath(lvl, v, 3, rng.New(1), 5)
	if p.Limit != 1 {
		t.Fatalf("level-descent limit = %d", p.Limit)
	}

	hyb := Config{N: 8, Strategy: HybridPaths}.normalized()
	p = choosePath(hyb, v, 3, rng.New(1), 1)
	if p.Leaf != 3 {
		t.Fatalf("hybrid phase 1 should be deterministic, got leaf %d", p.Leaf)
	}
}
