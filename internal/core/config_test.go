package core

import (
	"strings"
	"testing"
)

func TestConfigNormalizedDefaults(t *testing.T) {
	t.Parallel()
	c := Config{N: 10}.normalized()
	if c.Strategy != RandomPaths {
		t.Fatalf("default strategy = %v", c.Strategy)
	}
	if c.Arity != 2 {
		t.Fatalf("default arity = %d", c.Arity)
	}
	if c.Budget != 9 {
		t.Fatalf("default budget = %d", c.Budget)
	}
	if c.MaxRounds != 164 {
		t.Fatalf("default max rounds = %d", c.MaxRounds)
	}
}

func TestConfigValidate(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"minimal", Config{N: 1}, true},
		{"full", Config{N: 8, Strategy: HybridPaths, Arity: 4, Budget: 7}, true},
		{"zero n", Config{N: 0}, false},
		{"negative n", Config{N: -3}, false},
		{"bad strategy", Config{N: 4, Strategy: PathStrategy(99)}, false},
		{"budget too high", Config{N: 4, Budget: 4}, false},
		{"budget at limit", Config{N: 4, Budget: 3}, true},
		{"arity too small", Config{N: 4, Arity: 1}, false},
		{"arity too big", Config{N: 4, Arity: 65}, false},
		{"arity max", Config{N: 4, Arity: 64}, true},
	}
	for _, tc := range cases {
		if err := tc.cfg.validate(); (err == nil) != tc.ok {
			t.Errorf("%s: validate = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

func TestConfigDeterministicPhase(t *testing.T) {
	t.Parallel()
	rnd := Config{N: 4, Strategy: RandomPaths}.normalized()
	det := Config{N: 4, Strategy: DeterministicPaths}.normalized()
	hyb := Config{N: 4, Strategy: HybridPaths}.normalized()
	lvl := Config{N: 4, Strategy: LevelDescent}.normalized()
	for phase := 1; phase <= 3; phase++ {
		if rnd.deterministicPhase(phase) {
			t.Fatalf("random strategy deterministic at phase %d", phase)
		}
		if !det.deterministicPhase(phase) || !lvl.deterministicPhase(phase) {
			t.Fatalf("rank strategies not deterministic at phase %d", phase)
		}
		if got, want := hyb.deterministicPhase(phase), phase == 1; got != want {
			t.Fatalf("hybrid phase %d deterministic = %v", phase, got)
		}
	}
}

func TestConfigPathLimit(t *testing.T) {
	t.Parallel()
	lvl := Config{N: 4, Strategy: LevelDescent}.normalized()
	if lvl.pathLimit() != 1 {
		t.Fatal("level-descent limit")
	}
	rnd := Config{N: 4, Strategy: RandomPaths}.normalized()
	if rnd.pathLimit() != 0 {
		t.Fatal("random limit")
	}
}

func TestPathStrategyStrings(t *testing.T) {
	t.Parallel()
	want := map[PathStrategy]string{
		RandomPaths:        "random",
		DeterministicPaths: "deterministic",
		HybridPaths:        "hybrid",
		LevelDescent:       "level-descent",
	}
	for s, w := range want {
		if s.String() != w {
			t.Fatalf("%d.String() = %q", s, s.String())
		}
	}
	if !strings.Contains(PathStrategy(42).String(), "42") {
		t.Fatal("unknown strategy string")
	}
}

func TestNoSyncRejectedByCohortOnly(t *testing.T) {
	t.Parallel()
	cfg := Config{N: 4, Seed: 1, NoSyncRound: true}
	if _, err := NewCohort(cfg, labelsN(4)); err == nil {
		t.Fatal("cohort accepted NoSyncRound")
	}
	if _, err := NewBalls(cfg, labelsN(4)); err != nil {
		t.Fatalf("balls rejected NoSyncRound: %v", err)
	}
}
