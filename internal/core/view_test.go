package core

import (
	"testing"

	"ballsintoleaves/internal/proto"
	"ballsintoleaves/internal/tree"
)

func labelsN(n int) []proto.ID {
	out := make([]proto.ID, n)
	for i := range out {
		out[i] = proto.ID(10 * (i + 1))
	}
	return out
}

func TestNewViewAllAtRoot(t *testing.T) {
	t.Parallel()
	topo := tree.NewTopology(8)
	v := NewView(topo, labelsN(8))
	if v.Size() != 8 || v.Universe() != 8 {
		t.Fatalf("size/universe = %d/%d", v.Size(), v.Universe())
	}
	if v.Occupancy().Count(topo.Root()) != 8 {
		t.Fatalf("root count = %d", v.Occupancy().Count(topo.Root()))
	}
	if v.AllAtLeaves() {
		t.Fatal("balls at root reported as at leaves")
	}
	if err := v.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestViewIndexOf(t *testing.T) {
	t.Parallel()
	v := NewView(tree.NewTopology(4), labelsN(4))
	for i, id := range labelsN(4) {
		idx, ok := v.IndexOf(id)
		if !ok || idx != i {
			t.Fatalf("IndexOf(%v) = %d,%v", id, idx, ok)
		}
	}
	if _, ok := v.IndexOf(999); ok {
		t.Fatal("unknown label found")
	}
}

func TestViewRemoveAndSetNode(t *testing.T) {
	t.Parallel()
	topo := tree.NewTopology(4)
	v := NewView(topo, labelsN(4))
	v.SetNode(0, topo.Leaf(2))
	if v.Node(0) != topo.Leaf(2) {
		t.Fatal("SetNode did not move")
	}
	if got := v.Occupancy().Count(topo.Leaf(2)); got != 1 {
		t.Fatalf("leaf count = %d", got)
	}
	v.Remove(0)
	v.Remove(0) // idempotent
	if v.Size() != 3 || v.Present(0) {
		t.Fatal("Remove bookkeeping")
	}
	if got := v.Occupancy().Count(topo.Leaf(2)); got != 0 {
		t.Fatalf("leaf count after removal = %d", got)
	}
	if err := v.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestViewSetNodeOnAbsentPanics(t *testing.T) {
	t.Parallel()
	topo := tree.NewTopology(2)
	v := NewView(topo, labelsN(2))
	v.Remove(1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	v.SetNode(1, topo.Leaf(0))
}

func TestOrderedPresentPriority(t *testing.T) {
	t.Parallel()
	topo := tree.NewTopology(8)
	v := NewView(topo, labelsN(5))
	// Place balls at mixed depths:
	//   idx 0 (label 10) at root        (depth 0)
	//   idx 1 (label 20) at leaf 0      (depth 3)
	//   idx 2 (label 30) at depth 1
	//   idx 3 (label 40) at leaf 5      (depth 3)
	//   idx 4 (label 50) at depth 1
	v.SetNode(1, topo.Leaf(0))
	v.SetNode(2, topo.Left(topo.Root()))
	v.SetNode(3, topo.Leaf(5))
	v.SetNode(4, topo.Right(topo.Root()))
	got := v.OrderedPresent(false)
	want := []int32{1, 3, 2, 4, 0} // depth desc, label asc within depth
	if len(got) != len(want) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	// Label-only ablation: ascending label regardless of depth.
	got = v.OrderedPresent(true)
	want = []int32{0, 1, 2, 3, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("label order = %v, want %v", got, want)
		}
	}
}

func TestOrderedPresentSkipsRemoved(t *testing.T) {
	t.Parallel()
	v := NewView(tree.NewTopology(4), labelsN(4))
	v.Remove(2)
	got := v.OrderedPresent(false)
	if len(got) != 3 {
		t.Fatalf("len = %d", len(got))
	}
	for _, idx := range got {
		if idx == 2 {
			t.Fatal("removed ball in order")
		}
	}
}

func TestRankAtNode(t *testing.T) {
	t.Parallel()
	topo := tree.NewTopology(8)
	v := NewView(topo, labelsN(4))
	// All at root: rank = dense index.
	for i := 0; i < 4; i++ {
		if got := v.RankAtNode(i); got != i {
			t.Fatalf("rank(%d) = %d", i, got)
		}
	}
	// Move ball 1 away: remaining root ranks shift.
	v.SetNode(1, topo.Leaf(0))
	if v.RankAtNode(0) != 0 || v.RankAtNode(2) != 1 || v.RankAtNode(3) != 2 {
		t.Fatal("ranks after move wrong")
	}
	if v.RankAtNode(1) != 0 {
		t.Fatal("moved ball should rank 0 at its node")
	}
}

func TestViewCloneAndCopyFrom(t *testing.T) {
	t.Parallel()
	topo := tree.NewTopology(4)
	v := NewView(topo, labelsN(4))
	v.SetNode(0, topo.Leaf(1))
	cp := v.Clone()
	cp.Remove(0)
	if !v.Present(0) {
		t.Fatal("clone mutation leaked")
	}
	cp.CopyFrom(v)
	if !cp.Present(0) || cp.Node(0) != topo.Leaf(1) || cp.Size() != 4 {
		t.Fatal("CopyFrom incomplete")
	}
}

func TestViewConsistencyDetectsCorruption(t *testing.T) {
	t.Parallel()
	topo := tree.NewTopology(4)
	v := NewView(topo, labelsN(4))
	// Corrupt the position table behind the occupancy's back.
	v.node[0] = topo.Leaf(3)
	if err := v.CheckConsistency(); err == nil {
		t.Fatal("corruption not detected")
	}
}
