package core

import (
	"fmt"

	"ballsintoleaves/internal/rng"
	"ballsintoleaves/internal/tree"
)

// Path is a candidate path: the descent from Start towards the leaf with
// rank Leaf. Because paths in a tree are unique, the pair fully determines
// the node sequence of Algorithm 1's pathi; nodes are enumerated on demand
// with Topology.OnPathToLeaf.
//
// Limit caps how many levels the ball may descend this phase; zero means
// unlimited (the paper's algorithm). The LevelDescent baseline sets 1,
// turning the protocol into classical one-level-per-phase deterministic
// tree renaming with Θ(log n) rounds.
type Path struct {
	Start tree.Node
	Leaf  int32
	Limit int32
}

// String renders the path for traces.
func (p Path) String() string {
	if p.Limit > 0 {
		return fmt.Sprintf("%d→leaf%d (limit %d)", p.Start, p.Leaf, p.Limit)
	}
	return fmt.Sprintf("%d→leaf%d", p.Start, p.Leaf)
}

// randomPath implements lines 5–10 of Algorithm 1 for a ball parked at
// `from`: descend to a leaf choosing at each inner node between the
// children with probability proportional to their remaining capacities
// (RandomCoin(RemainingCapacity(left)/RemainingCapacity(both))). A full
// child is never entered; Lemma 1 guarantees at least one child of any
// node holding a parked ball has capacity.
//
// With uniform (the E12 ablation) a fair coin replaces the weighted one
// whenever both children have capacity.
//
// Exactly one coin is consumed per two-way branch, so the faithful Ball and
// the fast Cohort consume per-ball randomness identically.
func randomPath(v *View, from tree.Node, src *rng.Source, uniform bool) Path {
	topo := v.topo
	cur := from
	for !topo.IsLeaf(cur) {
		next, ok := randomStep(v, cur, src, uniform)
		if !ok {
			// No child has remaining capacity. The paper's pseudocode
			// leaves this case undefined (RandomCoin's denominator would
			// be zero); it arises when the view still carries a crashed
			// ball whose last announced position overlaps a correct
			// ball's, transiently overfilling a subtree (Lemma 1 bounds
			// only correct balls), and systematically under the
			// LabelPriority ablation, which breaks Lemma 1's reservation
			// argument. Propose a waiting path towards the leftmost leaf:
			// the ball moves only if capacity frees up mid-pass (the
			// stale ball is removed at its priority turn), and otherwise
			// stays put for a phase. No coins are consumed, keeping Ball
			// and Cohort streams aligned.
			if cur != from {
				panic(fmt.Sprintf("core: walk entered full subtree at node %d", cur))
			}
			leaf := cur
			for !topo.IsLeaf(leaf) {
				leaf = topo.Left(leaf)
			}
			return Path{Start: from, Leaf: int32(topo.LeafRank(leaf))}
		}
		cur = next
	}
	return Path{Start: from, Leaf: int32(topo.LeafRank(cur))}
}

// randomStep picks one child of cur, weighted by remaining capacity,
// reporting ok=false when every child is full. The binary case consumes
// exactly one Coin per two-way branch (the paper's RandomCoin); wider nodes
// consume one bounded-uniform draw. Both the faithful Ball and the fast
// Cohort call this same function, keeping their per-ball randomness
// aligned.
func randomStep(v *View, cur tree.Node, src *rng.Source, uniform bool) (tree.Node, bool) {
	topo := v.topo
	// Children occupy the consecutive node range [c0, c0+fanout), so the
	// walk touches no child-list indirection and sibling capacities sit on
	// adjacent array slots.
	c0 := topo.FirstChild(cur)
	nk := topo.NumChildren(cur)
	// Fast path for binary nodes: the paper's weighted coin.
	if nk == 2 {
		cl, cr := v.occ.RemainingCapacity(c0), v.occ.RemainingCapacity(c0+1)
		switch {
		case cl <= 0 && cr <= 0:
			return tree.None, false
		case cl <= 0:
			return c0 + 1, true
		case cr <= 0:
			return c0, true
		}
		var heads bool
		if uniform {
			heads = src.Coin(1, 2)
		} else {
			heads = src.Coin(uint64(cl), uint64(cl+cr))
		}
		if heads {
			return c0, true
		}
		return c0 + 1, true
	}
	// General arity: one categorical draw over the non-full children.
	total := 0
	nonFull := 0
	var only tree.Node
	for kid := c0; kid < c0+tree.Node(nk); kid++ {
		if c := v.occ.RemainingCapacity(kid); c > 0 {
			total += c
			nonFull++
			only = kid
		}
	}
	switch {
	case nonFull == 0:
		return tree.None, false
	case nonFull == 1:
		return only, true
	}
	if uniform {
		pick := int(src.Uint64n(uint64(nonFull)))
		for kid := c0; kid < c0+tree.Node(nk); kid++ {
			if v.occ.RemainingCapacity(kid) > 0 {
				if pick == 0 {
					return kid, true
				}
				pick--
			}
		}
	}
	draw := int(src.Uint64n(uint64(total)))
	for kid := c0; kid < c0+tree.Node(nk); kid++ {
		c := v.occ.RemainingCapacity(kid)
		if c <= 0 {
			continue
		}
		if draw < c {
			return kid, true
		}
		draw -= c
	}
	panic("core: capacity-weighted draw fell off the end")
}

// deterministicPath implements the §6 rank rule for a ball parked at `from`
// with label rank `rank` among the balls parked there: target the rank-th
// remaining-capacity unit below `from`, scanning children left to right.
//
// In phase 1 all balls are at the root and rank is the ball's global label
// rank, so this is exactly "the leaf ranked by b_i in OrderedBalls()" from
// the paper. In later phases (the DeterministicPaths baseline) the same
// rule applies within each subtree.
//
// The rank is always addressable: for any node η, the children's combined
// remaining capacity equals RemainingCapacity(η) plus the number of balls
// parked at η, which by Lemma 1 is at least the number of parked balls.
func deterministicPath(v *View, from tree.Node, rank int) Path {
	topo := v.topo
	if topo.IsLeaf(from) {
		return Path{Start: from, Leaf: int32(topo.LeafRank(from))}
	}
	cur, k := from, rank
	for !topo.IsLeaf(cur) {
		kids := topo.Children(cur)
		for i, kid := range kids {
			c := v.occ.RemainingCapacity(kid)
			if k < c || i == len(kids)-1 {
				cur = kid
				break
			}
			k -= c
		}
	}
	return Path{Start: from, Leaf: int32(topo.LeafRank(cur))}
}

// choosePath dispatches on the configured strategy for one ball. idx is the
// ball's dense index in v, src its private stream, and phase the 1-based
// phase number.
func choosePath(cfg Config, v *View, idx int, src *rng.Source, phase int) Path {
	from := v.Node(idx)
	if cfg.deterministicPhase(phase) {
		p := deterministicPath(v, from, v.RankAtNode(idx))
		p.Limit = cfg.pathLimit()
		return p
	}
	return randomPath(v, from, src, cfg.UniformCoin)
}
