package core

import (
	"testing"
	"testing/quick"

	"ballsintoleaves/internal/tree"
	"ballsintoleaves/internal/wire"
)

func TestJoinRoundTrip(t *testing.T) {
	t.Parallel()
	var w wire.Writer
	appendJoin(&w)
	if err := decodeJoin(w.Bytes()); err != nil {
		t.Fatal(err)
	}
	if got := w.Len(); got != joinLen() {
		t.Fatalf("len = %d, want %d", got, joinLen())
	}
	if k, err := decodeKind(w.Bytes()); err != nil || k != msgJoin {
		t.Fatalf("kind = %d, %v", k, err)
	}
}

func TestPathRoundTripProperty(t *testing.T) {
	t.Parallel()
	topo := tree.NewTopology(64)
	prop := func(rawStart uint16, rawLeaf uint16, rawLimit uint8) bool {
		start := tree.Node(int(rawStart) % topo.NumNodes())
		// Pick a leaf actually under start so the path is valid.
		leafRank := topo.LeafRank(firstLeafUnder(topo, start))
		p := Path{Start: start, Leaf: int32(leafRank), Limit: int32(rawLimit) % int32(topo.MaxDepth()+1)}
		var w wire.Writer
		appendPath(&w, p)
		if w.Len() != pathLen(p) {
			return false
		}
		got, err := decodePath(w.Bytes(), topo)
		return err == nil && got == p
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func firstLeafUnder(topo *tree.Topology, node tree.Node) tree.Node {
	for !topo.IsLeaf(node) {
		node = topo.Left(node)
	}
	return node
}

func TestPosRoundTrip(t *testing.T) {
	t.Parallel()
	topo := tree.NewTopology(16)
	for node := 0; node < topo.NumNodes(); node++ {
		var w wire.Writer
		appendPos(&w, tree.Node(node))
		if w.Len() != posLen(tree.Node(node)) {
			t.Fatalf("len mismatch for node %d", node)
		}
		got, err := decodePos(w.Bytes(), topo)
		if err != nil || got != tree.Node(node) {
			t.Fatalf("node %d: got %d, err %v", node, got, err)
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	t.Parallel()
	topo := tree.NewTopology(8)
	if _, err := decodePath(nil, topo); err == nil {
		t.Fatal("nil path accepted")
	}
	if _, err := decodePath([]byte{msgPos, 1, 2, 0}, topo); err == nil {
		t.Fatal("wrong kind accepted")
	}
	if _, err := decodePos([]byte{msgPos}, topo); err == nil {
		t.Fatal("truncated pos accepted")
	}
	if err := decodeJoin([]byte{msgJoin, 0xff}); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	// Out-of-range fields.
	var w wire.Writer
	appendPath(&w, Path{Start: 9999, Leaf: 0})
	if _, err := decodePath(w.Bytes(), topo); err == nil {
		t.Fatal("out-of-range start accepted")
	}
	w.Reset()
	appendPos(&w, tree.Node(uint32(topo.NumNodes())))
	if _, err := decodePos(w.Bytes(), topo); err == nil {
		t.Fatal("out-of-range node accepted")
	}
}

func TestDecodeRejectsForeignLeaf(t *testing.T) {
	t.Parallel()
	topo := tree.NewTopology(8)
	// Start = left child of root (covers leaves 0..3); leaf 7 is outside.
	var w wire.Writer
	appendPath(&w, Path{Start: topo.Left(topo.Root()), Leaf: 7})
	if _, err := decodePath(w.Bytes(), topo); err == nil {
		t.Fatal("foreign leaf accepted")
	}
}

func TestDecodeRejectsHugeLimit(t *testing.T) {
	t.Parallel()
	topo := tree.NewTopology(8)
	var w wire.Writer
	w.Byte(msgPath)
	w.Uvarint(0)  // root
	w.Uvarint(0)  // leaf 0
	w.Uvarint(99) // absurd limit
	if _, err := decodePath(w.Bytes(), topo); err == nil {
		t.Fatal("huge limit accepted")
	}
}
