// Package core implements the Balls-into-Leaves algorithm (Alistarh,
// Denysyuk, Rodrigues, Shavit, PODC 2014): randomized tight renaming in
// synchronous message-passing systems in O(log log n) communication rounds
// with high probability, tolerating up to n-1 crash failures chosen by a
// strong adaptive adversary.
//
// The package provides two interchangeable implementations, validated
// against each other:
//
//   - Ball: the faithful per-process state machine of Algorithm 1, run as a
//     proto.Process under internal/sim or internal/runtime. Every ball keeps
//     its own full local view of the virtual tree, exactly as the paper
//     describes.
//   - Cohort: a fast whole-system simulator exploiting the paper's
//     Proposition 1 (positions of correct balls agree across local views at
//     phase boundaries). It maintains one canonical view and simulates
//     intra-phase view divergence only for the groups of receivers that
//     actually differ, which makes n = 2^20 runs practical.
//
// Three path-selection strategies cover the paper's algorithms and baseline:
// RandomPaths is Algorithm 1; HybridPaths is the §6 early-terminating
// extension (deterministic first phase, random afterwards); and
// DeterministicPaths applies the §6 rank rule in every phase, yielding the
// deterministic comparison-based baseline used by the separation experiment.
package core

import (
	"fmt"

	"ballsintoleaves/internal/adversary"
	"ballsintoleaves/internal/tree"
)

// PathStrategy selects how balls construct candidate paths each phase.
type PathStrategy uint8

const (
	// RandomPaths is Algorithm 1: at every inner node the ball descends
	// left with probability RemainingCapacity(left)/RemainingCapacity(both),
	// an exact rational coin.
	RandomPaths PathStrategy = iota + 1
	// DeterministicPaths applies the §6 rank rule in every phase: a ball
	// parked at node η targets the r-th free capacity unit below η, where
	// r is its label rank among the balls parked at η. Comparison-based
	// and deterministic; the baseline for the separation experiment.
	DeterministicPaths
	// HybridPaths is the early-terminating extension of §6: phase 1 uses
	// the deterministic rank rule (so a failure-free execution terminates
	// in O(1) rounds), later phases use random paths.
	HybridPaths
	// LevelDescent is the deterministic Θ(log n) comparator: the rank rule
	// with descent capped at one tree level per phase, i.e. the classical
	// "split the group in half each round" structure of deterministic
	// synchronous renaming (Chaudhuri–Herlihy–Tuttle style). Failure-free
	// it takes exactly ceil(log2 n) phases; experiment E2 measures it
	// against the paper's O(log log n) bound.
	LevelDescent
)

// String implements fmt.Stringer.
func (s PathStrategy) String() string {
	switch s {
	case RandomPaths:
		return "random"
	case DeterministicPaths:
		return "deterministic"
	case HybridPaths:
		return "hybrid"
	case LevelDescent:
		return "level-descent"
	default:
		return fmt.Sprintf("PathStrategy(%d)", uint8(s))
	}
}

// Config parameterizes one Balls-into-Leaves system.
type Config struct {
	// N is the number of processes and, equally, target names. Must be at
	// least 1.
	N int
	// Seed drives all randomness; runs are pure functions of
	// (N, Seed, Strategy, adversary).
	Seed uint64
	// Strategy selects path construction; zero means RandomPaths.
	Strategy PathStrategy
	// Arity is the virtual tree's fan-out; zero means 2, the paper's
	// binary tree. Higher arities trade tree depth (shorter paths, fewer
	// levels to descend) for per-node contention — the E13 ablation.
	Arity int

	// UniformCoin is an ablation switch (experiment E12): replace the
	// capacity-weighted coin with a fair coin at every two-way branch.
	UniformCoin bool
	// LabelPriority is an ablation switch (E12): order the move pass by
	// label only, dropping the depth-first component of the paper's <R
	// priority (Definition 1).
	LabelPriority bool
	// NoSyncRound is an ablation switch (E12): drop the second
	// (position-synchronization) round of every phase, so each phase is a
	// single candidate-path round. Failure-free executions still work
	// (views never diverge), but under crashes local views drift apart
	// permanently and uniqueness is violated — demonstrating why
	// Algorithm 1 pays the second round. Supported by Ball only; Cohort
	// rejects it because its whole design rests on phase-boundary
	// synchronization.
	NoSyncRound bool
	// CheckInvariants enables runtime verification of Lemma 1 (subtree
	// capacities), Lemma 2 (balls only move down) and view bookkeeping
	// after every phase, at a constant-factor cost.
	CheckInvariants bool

	// Adversary plans crashes (Cohort only; engine-driven Balls take the
	// adversary from the engine config). Nil means failure-free.
	Adversary adversary.Strategy
	// Budget caps total crashes; zero means N-1.
	Budget int
	// MaxRounds aborts non-quiescing runs; zero means 10*N + 64.
	MaxRounds int
	// Metrics enables per-phase snapshots (contention, depth histograms,
	// busiest-path load) on the Cohort simulator.
	Metrics bool
}

// normalized returns the config with defaults applied.
func (c Config) normalized() Config {
	if c.Strategy == 0 {
		c.Strategy = RandomPaths
	}
	if c.Arity == 0 {
		c.Arity = 2
	}
	if c.Budget <= 0 {
		c.Budget = c.N - 1
	}
	if c.MaxRounds <= 0 {
		c.MaxRounds = 10*c.N + 64
	}
	return c
}

// validate reports configuration errors.
func (c Config) validate() error {
	if c.N < 1 {
		return fmt.Errorf("core: N must be >= 1, got %d", c.N)
	}
	switch c.Strategy {
	case 0, RandomPaths, DeterministicPaths, HybridPaths, LevelDescent:
	default:
		return fmt.Errorf("core: unknown path strategy %d", c.Strategy)
	}
	if c.Budget > c.N-1 {
		return fmt.Errorf("core: budget %d exceeds n-1 = %d", c.Budget, c.N-1)
	}
	if c.Arity != 0 && (c.Arity < 2 || c.Arity > tree.MaxArity) {
		return fmt.Errorf("core: arity must be in [2,%d], got %d", tree.MaxArity, c.Arity)
	}
	return nil
}

// deterministicPhase reports whether the given phase uses the rank rule.
func (c Config) deterministicPhase(phase int) bool {
	switch c.Strategy {
	case DeterministicPaths, LevelDescent:
		return true
	case HybridPaths:
		return phase == 1
	default:
		return false
	}
}

// pathLimit returns the per-phase descent cap for rank-rule paths (zero
// means unlimited).
func (c Config) pathLimit() int32 {
	if c.Strategy == LevelDescent {
		return 1
	}
	return 0
}
