package core

import (
	"fmt"

	"ballsintoleaves/internal/tree"
	"ballsintoleaves/internal/wire"
)

// Message kinds on the wire. Every Balls-into-Leaves payload starts with a
// one-byte kind tag.
const (
	msgJoin byte = 1 // init round: announce participation (label = sender ID)
	msgPath byte = 2 // phase round 1: candidate path <start node, target leaf>
	msgPos  byte = 3 // phase round 2: current position <node>
)

// appendJoin encodes the init announcement.
func appendJoin(w *wire.Writer) {
	w.Byte(msgJoin)
}

// appendPath encodes a candidate path. A path in a tree is fully determined
// by its first node and the target leaf, so the wire form is two varints —
// O(log n) bits, matching the paper's per-round communication — plus the
// descent limit (zero for the paper's algorithm).
func appendPath(w *wire.Writer, p Path) {
	w.Byte(msgPath)
	w.Uvarint(uint64(p.Start))
	w.Uvarint(uint64(p.Leaf))
	w.Uvarint(uint64(p.Limit))
}

// appendPos encodes a position announcement.
func appendPos(w *wire.Writer, node tree.Node) {
	w.Byte(msgPos)
	w.Uvarint(uint64(node))
}

// joinLen, pathLen and posLen compute encoded sizes without encoding, for
// analytic bit accounting in the Cohort simulator.
func joinLen() int { return 1 }

func pathLen(p Path) int {
	return 1 + wire.UvarintLen(uint64(p.Start)) + wire.UvarintLen(uint64(p.Leaf)) +
		wire.UvarintLen(uint64(p.Limit))
}

func posLen(node tree.Node) int {
	return 1 + wire.UvarintLen(uint64(node))
}

// decodeKind returns the kind tag of a payload without consuming it.
func decodeKind(payload []byte) (byte, error) {
	if len(payload) == 0 {
		return 0, wire.ErrTruncated
	}
	return payload[0], nil
}

// decodeJoin validates an init announcement.
func decodeJoin(payload []byte) error {
	r := wire.NewReader(payload)
	if k := r.Byte(); k != msgJoin {
		return fmt.Errorf("core: expected join, got kind %d", k)
	}
	return r.Close()
}

// decodePath decodes a candidate path and validates it against the
// topology: the start node must exist and the target leaf must lie in the
// start node's subtree.
func decodePath(payload []byte, topo *tree.Topology) (Path, error) {
	r := wire.NewReader(payload)
	if k := r.Byte(); k != msgPath {
		return Path{}, fmt.Errorf("core: expected path, got kind %d", k)
	}
	start := r.Uvarint()
	leaf := r.Uvarint()
	limit := r.Uvarint()
	if err := r.Close(); err != nil {
		return Path{}, err
	}
	if start >= uint64(topo.NumNodes()) {
		return Path{}, fmt.Errorf("core: path start %d out of range", start)
	}
	if leaf >= uint64(topo.N()) {
		return Path{}, fmt.Errorf("core: path leaf %d out of range", leaf)
	}
	if limit > uint64(topo.MaxDepth()) {
		return Path{}, fmt.Errorf("core: path limit %d out of range", limit)
	}
	p := Path{Start: tree.Node(start), Leaf: int32(leaf), Limit: int32(limit)}
	if !topo.Contains(p.Start, int(p.Leaf)) {
		return Path{}, fmt.Errorf("core: leaf %d not under start node %d", leaf, start)
	}
	return p, nil
}

// decodePos decodes a position announcement.
func decodePos(payload []byte, topo *tree.Topology) (tree.Node, error) {
	r := wire.NewReader(payload)
	if k := r.Byte(); k != msgPos {
		return 0, fmt.Errorf("core: expected position, got kind %d", k)
	}
	node := r.Uvarint()
	if err := r.Close(); err != nil {
		return 0, err
	}
	if node >= uint64(topo.NumNodes()) {
		return 0, fmt.Errorf("core: position node %d out of range", node)
	}
	return tree.Node(node), nil
}
