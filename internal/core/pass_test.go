package core

import (
	"testing"

	"ballsintoleaves/internal/tree"
)

// mkPass builds the has/paths arrays for a pass over the given view.
func mkPass(v *View) ([]bool, []Path) {
	return make([]bool, v.Universe()), make([]Path, v.Universe())
}

func TestMoveAlongPathDescendsToLeaf(t *testing.T) {
	t.Parallel()
	topo := tree.NewTopology(8)
	v := NewView(topo, labelsN(1))
	cfg := Config{N: 8}.normalized()
	moveAlongPath(cfg, v, 0, Path{Start: topo.Root(), Leaf: 5})
	if v.Node(0) != topo.Leaf(5) {
		t.Fatalf("ball at %d, want leaf 5", v.Node(0))
	}
}

func TestMoveAlongPathStopsAtFullSubtree(t *testing.T) {
	t.Parallel()
	topo := tree.NewTopology(4)
	v := NewView(topo, labelsN(2))
	cfg := Config{N: 4}.normalized()
	// Ball 0 occupies leaf 0; ball 1 aims at leaf 0 too. Its walk must
	// stop at the deepest node with capacity towards leaf 0: the subtree
	// {leaf0, leaf1} still has capacity (leaf1 free), so it enters it and
	// stops at the parent of leaf 0... the parent's other child is free,
	// so the ball parks at the parent node.
	v.SetNode(0, topo.Leaf(0))
	moveAlongPath(cfg, v, 1, Path{Start: topo.Root(), Leaf: 0})
	parent := topo.Parent(topo.Leaf(0))
	if v.Node(1) != parent {
		t.Fatalf("ball stopped at %d, want parent node %d", v.Node(1), parent)
	}
	if err := v.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestMoveAlongPathRespectsLimit(t *testing.T) {
	t.Parallel()
	topo := tree.NewTopology(8)
	v := NewView(topo, labelsN(1))
	cfg := Config{N: 8}.normalized()
	moveAlongPath(cfg, v, 0, Path{Start: topo.Root(), Leaf: 7, Limit: 1})
	if got := topo.Depth(v.Node(0)); got != 1 {
		t.Fatalf("depth = %d, want 1", got)
	}
	// Continuing with limit 2 descends two more levels.
	moveAlongPath(cfg, v, 0, Path{Start: v.Node(0), Leaf: 7, Limit: 2})
	if got := topo.Depth(v.Node(0)); got != 3 {
		t.Fatalf("depth = %d, want 3", got)
	}
}

func TestMoveAlongPathMismatchedStartIgnored(t *testing.T) {
	t.Parallel()
	topo := tree.NewTopology(4)
	v := NewView(topo, labelsN(1))
	cfg := Config{N: 4}.normalized() // CheckInvariants off: tolerate
	moveAlongPath(cfg, v, 0, Path{Start: topo.Leaf(0), Leaf: 0})
	if v.Node(0) != topo.Root() {
		t.Fatal("ball moved despite start mismatch")
	}
}

func TestMoveAlongPathMismatchPanicsWithInvariants(t *testing.T) {
	t.Parallel()
	topo := tree.NewTopology(4)
	v := NewView(topo, labelsN(1))
	cfg := Config{N: 4, CheckInvariants: true}.normalized()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	moveAlongPath(cfg, v, 0, Path{Start: topo.Leaf(0), Leaf: 0})
}

func TestApplyPathsPriorityOrder(t *testing.T) {
	t.Parallel()
	// Two balls race for leaf 0; the lower label wins, the loser parks at
	// the parent. A third ball deeper in the tree moves first (depth
	// priority) even though its label is the largest.
	topo := tree.NewTopology(4)
	v := NewView(topo, labelsN(3))
	cfg := Config{N: 4}.normalized()
	leaf0parent := topo.Parent(topo.Leaf(0))
	v.SetNode(2, leaf0parent) // deepest ball, biggest label
	has, paths := mkPass(v)
	for i := 0; i < 3; i++ {
		has[i] = true
	}
	paths[0] = Path{Start: topo.Root(), Leaf: 0}
	paths[1] = Path{Start: topo.Root(), Leaf: 0}
	paths[2] = Path{Start: leaf0parent, Leaf: 0}
	applyPaths(cfg, v, has, paths)
	// Ball 2 moved first (deeper): takes leaf 0. Ball 0 next: subtree
	// {0,1} has capacity 1 left -> enters, leaf 0 full -> parks at parent
	// ... but wait: it walks towards leaf 0 and stops at the parent. Then
	// ball 1: parent subtree now holds 2 balls (capacity 2) -> full; stops
	// at root.
	if v.Node(2) != topo.Leaf(0) {
		t.Fatalf("deep ball at %d", v.Node(2))
	}
	if v.Node(0) != leaf0parent {
		t.Fatalf("ball 0 at %d, want %d", v.Node(0), leaf0parent)
	}
	if v.Node(1) != topo.Root() {
		t.Fatalf("ball 1 at %d, want root", v.Node(1))
	}
	if err := v.Occupancy().CheckCapacityInvariant(); err != nil {
		t.Fatal(err)
	}
}

func TestApplyPathsRemovesSilent(t *testing.T) {
	t.Parallel()
	topo := tree.NewTopology(4)
	v := NewView(topo, labelsN(3))
	cfg := Config{N: 4}.normalized()
	has, paths := mkPass(v)
	has[0], has[2] = true, true
	paths[0] = Path{Start: topo.Root(), Leaf: 1}
	paths[2] = Path{Start: topo.Root(), Leaf: 1}
	applyPaths(cfg, v, has, paths)
	if v.Present(1) {
		t.Fatal("silent ball not removed")
	}
	if v.Size() != 2 {
		t.Fatalf("size = %d", v.Size())
	}
}

// TestApplyPathsCrashFreesCapacityInOrder reproduces the §5.3 argument: a
// removed (crashed) ball frees capacity for balls processed after it in <R
// order.
func TestApplyPathsCrashFreesCapacityInOrder(t *testing.T) {
	t.Parallel()
	topo := tree.NewTopology(2)
	v := NewView(topo, labelsN(3))
	// Three known balls over two leaves (ball 2 is doomed: it was heard
	// at init but crashed before sending a path). Balls 0 and 1 both aim
	// at leaf 0.
	cfg := Config{N: 2}.normalized()
	has, paths := mkPass(v)
	has[0], has[1] = true, true
	paths[0] = Path{Start: topo.Root(), Leaf: 0}
	paths[1] = Path{Start: topo.Root(), Leaf: 0}
	applyPaths(cfg, v, has, paths)
	// Ball 0 wins leaf 0; ball 1 walks: leaf 0 full -> stays at root?
	// No: it never leaves the root because the only step towards leaf 0
	// is full. Ball 2's removal freed one unit at the root level, so the
	// capacity invariant holds with ball 1 at the root.
	if v.Node(0) != topo.Leaf(0) {
		t.Fatalf("ball 0 at %d", v.Node(0))
	}
	if v.Node(1) != topo.Root() {
		t.Fatalf("ball 1 at %d", v.Node(1))
	}
	if err := v.Occupancy().CheckCapacityInvariant(); err != nil {
		t.Fatal(err)
	}
}

func TestApplyPositionsSyncAndRemove(t *testing.T) {
	t.Parallel()
	topo := tree.NewTopology(4)
	v := NewView(topo, labelsN(3))
	cfg := Config{N: 4}.normalized()
	has := make([]bool, 3)
	pos := make([]tree.Node, 3)
	has[0], has[2] = true, true
	pos[0] = topo.Leaf(3)
	pos[2] = topo.Leaf(0)
	applyPositions(cfg, v, has, pos)
	if v.Node(0) != topo.Leaf(3) || v.Node(2) != topo.Leaf(0) {
		t.Fatal("positions not applied")
	}
	if v.Present(1) {
		t.Fatal("silent ball kept")
	}
	if err := v.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}
