package core

import (
	"testing"

	"ballsintoleaves/internal/proto"
)

// TestCohortPhaseZeroAllocs guards the cohort's allocation-free hot path: at
// steady state a failure-free phase must not touch the heap at all — the
// candidate-path walks, the priority move pass, the canonical-view update,
// and the decision/halt bookkeeping all run on preallocated scratch.
func TestCohortPhaseZeroAllocs(t *testing.T) {
	const n = 1 << 12
	labels := make([]proto.ID, n)
	for i := range labels {
		labels[i] = proto.ID(i + 1)
	}
	c, err := NewCohort(Config{N: n, Seed: 42}, labels)
	if err != nil {
		t.Fatal(err)
	}
	c.initRound()
	// Phase 1 warms the lazily allocated scratch (ordering buffers).
	c.runPhase()
	if !c.anyActive() {
		t.Fatal("system quiesced after one phase; cannot measure steady state")
	}
	allocs := testing.AllocsPerRun(1, func() {
		if c.anyActive() {
			c.runPhase()
		}
	})
	if allocs != 0 {
		t.Errorf("failure-free phase allocated %v objects at steady state, want 0", allocs)
	}
}

// TestCohortRunModestAllocs bounds whole-run allocations: setup is allowed a
// fixed number of slab allocations, but nothing may scale per ball beyond
// the O(1) construction slices (the seed implementation allocated one RNG
// per ball plus per-phase maps and buffers — over 260k objects at this n).
func TestCohortRunModestAllocs(t *testing.T) {
	const n = 1 << 14
	labels := make([]proto.ID, n)
	for i := range labels {
		labels[i] = proto.ID(i + 1)
	}
	var rounds int
	allocs := testing.AllocsPerRun(2, func() {
		c, err := NewCohort(Config{N: n, Seed: 7}, labels)
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		rounds = res.Rounds
	})
	if rounds == 0 {
		t.Fatal("run did not complete")
	}
	// ~40 construction slabs plus result assembly; 200 leaves slack for
	// lazily-warmed scratch without letting per-ball allocation regress.
	if allocs > 200 {
		t.Errorf("full failure-free run allocated %v objects, want <= 200 (allocation-free hot path regressed)", allocs)
	}
}
