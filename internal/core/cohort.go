package core

import (
	"fmt"
	"slices"
	"sort"

	"ballsintoleaves/internal/adversary"
	"ballsintoleaves/internal/bitset"
	"ballsintoleaves/internal/proto"
	"ballsintoleaves/internal/rng"
	"ballsintoleaves/internal/tree"
	"ballsintoleaves/internal/wire"
)

// Cohort is the fast whole-system simulator for Balls-into-Leaves. It
// executes the identical protocol as a set of Ball processes on the
// reference engine — same per-ball randomness, same decisions, same round
// counts, same message counts — but exploits the paper's synchronization
// structure to avoid materializing n local views:
//
//   - Proposition 1: the positions of correct balls agree across all local
//     views at every phase boundary, so one canonical view suffices between
//     phases.
//   - Views diverge only within a phase, and only about balls that crashed
//     mid-broadcast; survivors are grouped by exactly which final
//     broadcasts they received, and the O(n log n) priority move pass runs
//     once per distinct group rather than once per ball.
//
// Every per-phase buffer is preallocated or reused, so a failure-free phase
// at steady state performs zero heap allocations (asserted by
// TestCohortPhaseZeroAllocs).
//
// The equivalence is enforced by integration tests (TestCohortMatchesSim*).
type Cohort struct {
	cfg    Config
	topo   *tree.Topology
	labels []proto.ID // ascending; dense index order
	srcs   []rng.Source

	canon   *View
	work    *View // scratch group view
	inCanon []bool

	active    []bool // alive and not halted
	haltPhase []int  // phase at whose end the ball halted; 0 = not halted
	crashed   []proto.ID

	decided      []bool
	decidedName  []int
	decidedRound []int

	residue []residueEntry

	round   int
	phase   int
	budget  int
	msgs    int64
	bytes   int64
	metrics *Metrics

	// Per-phase scratch.
	paths   []Path
	has     []bool
	newPos  []tree.Node
	members []int32 // activeMembers buffer

	// Deterministic-phase scratch (lazily allocated: only the hybrid and
	// deterministic strategies rank balls at nodes).
	rankArr []int32 // per-ball rank among co-located balls
	nodeCnt []int32 // per-node ball counter, zeroed after each use

	// Crash-path scratch (lazily allocated: failure-free runs never group).
	gid        []int32 // per-ball group id during partition refinement
	remap      []int32 // (old gid, received bit) -> new gid
	remapMark  []int32 // epoch marks validating remap entries
	remapEpoch int32
	groupEnd   []int32 // end offset of each group in memberBuf
	memberBuf  []int32 // members bucketed by group
	residueCnt []int32 // adjustRootRanks prefix counts
	recvCnt    []int32 // adjustRootRanks per-survivor received counts

	rview cohortRoundView // reusable adversary view, one per Cohort

	// OnPhaseEnd, when set before Run, is invoked after each phase's
	// canonical update with the phase number, its position round, and the
	// canonical view (read-only; do not retain). Used by tracing tools.
	OnPhaseEnd func(phase, round int, canon *View)
}

// residueEntry is a ball that crashed mid-broadcast and is still present in
// the views of the receivers of its final message, parked at the position
// the canonical view records for it.
type residueEntry struct {
	idx  int32
	recv bitset.Set // dense indices of survivors holding the ball
}

// Result summarizes one Cohort run.
type Result struct {
	N      int
	Rounds int
	Phases int
	// Decisions holds correct processes' decisions, ascending by ID.
	Decisions []proto.Decision
	// CrashedDecided counts processes that decided, then crashed.
	CrashedDecided int
	Crashes        int
	// Messages and Bytes count network deliveries excluding self-delivery,
	// matching internal/sim's accounting.
	Messages int64
	Bytes    int64
	// Metrics is populated when Config.Metrics is set.
	Metrics *Metrics
}

// NewCohort builds a fast simulator over the given labels (distinct, any
// order).
func NewCohort(cfg Config, labels []proto.ID) (*Cohort, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cfg = cfg.normalized()
	if cfg.NoSyncRound {
		return nil, fmt.Errorf("core: the NoSyncRound ablation requires the faithful Ball implementation")
	}
	if len(labels) != cfg.N {
		return nil, fmt.Errorf("core: %d labels for N=%d", len(labels), cfg.N)
	}
	sorted := make([]proto.ID, len(labels))
	copy(sorted, labels)
	slices.Sort(sorted)
	for i := 1; i < len(sorted); i++ {
		if sorted[i] == sorted[i-1] {
			return nil, fmt.Errorf("core: duplicate label %v", sorted[i])
		}
	}
	topo := tree.Shared(cfg.N, cfg.normalized().Arity)
	c := &Cohort{
		cfg:          cfg,
		topo:         topo,
		labels:       sorted,
		srcs:         make([]rng.Source, cfg.N),
		canon:        NewView(topo, sorted),
		inCanon:      make([]bool, cfg.N),
		active:       make([]bool, cfg.N),
		haltPhase:    make([]int, cfg.N),
		decided:      make([]bool, cfg.N),
		decidedName:  make([]int, cfg.N),
		decidedRound: make([]int, cfg.N),
		budget:       cfg.Budget,
		paths:        make([]Path, cfg.N),
		has:          make([]bool, cfg.N),
		newPos:       make([]tree.Node, cfg.N),
		members:      make([]int32, 0, cfg.N),
	}
	c.work = c.canon.Clone()
	c.rview.c = c
	for i := range sorted {
		c.srcs[i].Reseed(rng.DeriveSeed(cfg.Seed, uint64(sorted[i])))
		c.inCanon[i] = true
		c.active[i] = true
	}
	if cfg.Metrics {
		c.metrics = &Metrics{}
	}
	if c.cfg.Adversary == nil {
		c.cfg.Adversary = adversary.None{}
	}
	return c, nil
}

// Reset re-arms the cohort for a fresh run over a new label set of the same
// size, reusing every buffer, view, and the shared topology — the
// allocation-free path long-lived callers (the name service's epoch loop)
// drive once per epoch. The labels must be distinct and exactly cfg.N; the
// seed replaces cfg.Seed for the next run. On error the cohort state is
// unspecified and must be Reset again before use.
func (c *Cohort) Reset(seed uint64, labels []proto.ID) error {
	if len(labels) != c.cfg.N {
		return fmt.Errorf("core: Reset with %d labels for N=%d", len(labels), c.cfg.N)
	}
	// c.labels is the label table shared with the views; rewrite in place.
	copy(c.labels, labels)
	slices.Sort(c.labels)
	for i := 1; i < len(c.labels); i++ {
		if c.labels[i] == c.labels[i-1] {
			return fmt.Errorf("core: duplicate label %v", c.labels[i])
		}
	}
	c.cfg.Seed = seed
	for i, id := range c.labels {
		c.srcs[i].Reseed(rng.DeriveSeed(seed, uint64(id)))
		c.inCanon[i] = true
		c.active[i] = true
		c.haltPhase[i] = 0
		c.decided[i] = false
		c.decidedName[i] = 0
		c.decidedRound[i] = 0
	}
	c.canon.ResetAllAtRoot()
	c.crashed = c.crashed[:0]
	c.residue = c.residue[:0]
	c.round, c.phase = 0, 0
	c.msgs, c.bytes = 0, 0
	c.budget = c.cfg.Budget
	if c.metrics != nil {
		*c.metrics = Metrics{}
	}
	c.rview.aliveValid = false
	return nil
}

// Run executes the full protocol and returns the result. It errors if the
// system fails to quiesce within MaxRounds.
func (c *Cohort) Run() (Result, error) {
	if err := c.RunToQuiescence(); err != nil {
		return c.result(), err
	}
	return c.result(), nil
}

// RunToQuiescence executes the full protocol without assembling a Result:
// callers read decisions through IndexOf/DecisionOf instead. Unlike Run, a
// completed failure-free run allocates nothing, which the name service's
// epoch path depends on (TestEpochZeroAllocs). It errors if the system
// fails to quiesce within MaxRounds.
func (c *Cohort) RunToQuiescence() error {
	c.initRound()
	for c.anyActive() {
		if c.round+2 > c.cfg.MaxRounds {
			return fmt.Errorf("core: exceeded %d rounds without quiescing", c.cfg.MaxRounds)
		}
		c.runPhase()
	}
	return nil
}

// IndexOf resolves a label to its dense index (position in the ascending
// label table).
func (c *Cohort) IndexOf(id proto.ID) (int, bool) { return c.indexOf(id) }

// DecisionOf returns the decided name and decision round of the ball at
// dense index idx, or ok=false if it has not decided (it crashed, or the
// run has not finished). Crashed-after-deciding balls still report their
// decision; Result-level filtering is the caller's concern.
func (c *Cohort) DecisionOf(idx int) (name, round int, ok bool) {
	if idx < 0 || idx >= len(c.decided) || !c.decided[idx] {
		return 0, 0, false
	}
	return c.decidedName[idx], c.decidedRound[idx], true
}

func (c *Cohort) anyActive() bool {
	for _, a := range c.active {
		if a {
			return true
		}
	}
	return false
}

// initRound executes round 1: every ball broadcasts its label and inserts
// every heard ball at the root. Crashes during the join broadcast create
// membership residue: the victim exists only in the views of the receivers
// of its join.
func (c *Cohort) initRound() {
	c.round = 1
	victims := c.planCrashes(stageJoin)
	c.accountRound(stageJoin, victims)
	for _, v := range victims {
		if v.recv.Empty() {
			c.dropFromCanon(int(v.idx))
		} else {
			c.residue = append(c.residue, v)
		}
	}
}

// runPhase executes one full phase: candidate-path round then position
// round, with adversary interleaving, exactly mirroring Algorithm 1. The
// failure-free fast path (no lingering residue, no victims this round) runs
// entirely on preallocated scratch: no closures, no groups, no allocations.
func (c *Cohort) runPhase() {
	c.phase++
	c.round++ // path round, 2φ

	// Residue parked exactly at the root (the common case after init-round
	// crashes) is invisible to everyone else's behaviour except through
	// rank computations: candidate-path walks never query the root's
	// remaining capacity, and a ball parked at the root does not count
	// towards any child subtree. Views that differ only in root residue
	// therefore agree on every capacity a path choice or move pass reads,
	// so the per-group simulation collapses to a single pass with a
	// per-survivor rank adjustment. This is what makes f = Θ(n) init
	// crashes (experiment E3) simulable at large n.
	rootResidueOnly := len(c.residue) > 0 && c.residueAllAtRoot()

	// Choose candidate paths per residue group: capacities (and rank
	// inputs) differ between views that do and do not hold residue balls,
	// so the coins must be flipped against each ball's own group view.
	det := c.cfg.deterministicPhase(c.phase)
	if len(c.residue) == 0 || rootResidueOnly {
		members := c.activeMembers()
		if len(members) > 0 {
			var ranks []int32
			if det {
				ranks = c.ranksAtNodes(c.canon, members)
				if rootResidueOnly {
					c.adjustRootRanks(ranks, members)
				}
			}
			c.choosePaths(c.canon, members, ranks)
		}
	} else {
		c.forEachGroup(nil, func(gv *View, members []int32) {
			var ranks []int32
			if det {
				ranks = c.ranksAtNodes(gv, members)
			}
			c.choosePaths(gv, members, ranks)
		})
	}

	pathVictims := c.planCrashes(stagePath)
	c.accountRound(stagePath, pathVictims)

	// Priority move pass, once per (residue mask × path-delivery mask)
	// group of survivors — or once globally when there is no divergence at
	// all, or when the only divergence is root residue, whose mid-pass
	// removal cannot influence any other ball's walk.
	if (len(c.residue) == 0 || rootResidueOnly) && len(pathVictims) == 0 {
		members := c.activeMembers()
		if len(members) > 0 {
			c.work.CopyFrom(c.canon)
			c.movePass(c.work, members, nil)
			// A single-group pass computes the exact post-phase canonical
			// state: survivors sit at their announced positions and silent
			// balls (halted, or root residue dropped mid-pass) are gone.
			// Adopt the work view wholesale; finishPhase's per-ball
			// SetNode/Remove replays then degenerate to no-ops instead of
			// walking the tree again for every ball.
			c.canon, c.work = c.work, c.canon
		}
	} else {
		c.forEachGroup(pathVictims, func(gv *View, members []int32) {
			c.movePass(gv, members, pathVictims)
		})
	}

	if !c.anyActive() {
		// Every remaining participant crashed during the path broadcast;
		// the position round never takes place (nobody is left to send
		// it), exactly as the per-process engines end at the path round.
		return
	}

	c.round++ // position round, 2φ+1
	posVictims := c.planCrashes(stagePos)
	c.accountRound(stagePos, posVictims)

	c.finishPhase(pathVictims, posVictims)
}

// choosePaths fills c.paths for the members against their group view. ranks
// must hold the members' per-node label ranks when the phase is
// deterministic, and is ignored otherwise.
func (c *Cohort) choosePaths(gv *View, members []int32, ranks []int32) {
	if c.cfg.deterministicPhase(c.phase) {
		limit := c.cfg.pathLimit()
		for _, m := range members {
			p := deterministicPath(gv, gv.Node(int(m)), int(ranks[m]))
			p.Limit = limit
			c.paths[m] = p
		}
		return
	}
	for _, m := range members {
		c.paths[m] = randomPath(gv, gv.Node(int(m)), &c.srcs[m], c.cfg.UniformCoin)
	}
}

// movePass runs the priority move pass for one group view, recording the
// members' resulting positions in c.newPos.
func (c *Cohort) movePass(gv *View, members []int32, pathVictims []residueEntry) {
	for i := range c.has {
		c.has[i] = false
	}
	for idx, a := range c.active {
		if a {
			c.has[idx] = true // survivors' paths reach everyone
		}
	}
	// Victims' paths reach only their receivers; membership of a group is
	// uniform by construction, so test any member.
	probe := int(members[0])
	for _, v := range pathVictims {
		c.has[v.idx] = v.recv.Has(probe)
	}
	applyPaths(c.cfg, gv, c.has, c.paths)
	if c.cfg.CheckInvariants {
		if err := gv.CheckConsistency(); err != nil {
			panic(fmt.Sprintf("core: cohort phase %d path pass: %v", c.phase, err))
		}
		if !c.cfg.LabelPriority {
			if err := gv.Occupancy().CheckCapacityInvariant(); err != nil {
				panic(fmt.Sprintf("core: cohort phase %d path pass: %v", c.phase, err))
			}
		}
		for _, m := range members {
			if !c.topo.IsAncestor(c.canon.Node(int(m)), gv.Node(int(m))) {
				panic(fmt.Sprintf("core: cohort ball %d moved upwards (Lemma 2 violated)", m))
			}
		}
	}
	for _, m := range members {
		c.newPos[m] = gv.Node(int(m))
	}
}

// activeMembers lists the active dense indices in ascending order into the
// cohort's reusable buffer. The result is valid until the next call.
func (c *Cohort) activeMembers() []int32 {
	c.members = c.members[:0]
	for idx, a := range c.active {
		if a {
			c.members = append(c.members, int32(idx))
		}
	}
	return c.members
}

// residueAllAtRoot reports whether every lingering residue ball is parked
// at the root of the canonical view.
func (c *Cohort) residueAllAtRoot() bool {
	root := c.topo.Root()
	for _, r := range c.residue {
		if !c.inCanon[r.idx] || c.canon.Node(int(r.idx)) != root {
			return false
		}
	}
	return true
}

// adjustRootRanks converts canonical root ranks (which count every residue
// ball) into each survivor's own-view rank: subtract all smaller-labelled
// root residue, then add back the ones the survivor actually received.
// Runs in O(n + f + Σ|recv|) rather than O(f·n).
func (c *Cohort) adjustRootRanks(ranks []int32, members []int32) {
	root := c.topo.Root()
	if c.residueCnt == nil {
		c.residueCnt = make([]int32, c.cfg.N+1)
		c.recvCnt = make([]int32, c.cfg.N)
	}
	// residueCnt[i] = number of residue balls with dense index < i.
	smallerResidue := c.residueCnt
	for i := range smallerResidue {
		smallerResidue[i] = 0
	}
	for _, r := range c.residue {
		smallerResidue[r.idx+1]++
	}
	for i := 1; i <= c.cfg.N; i++ {
		smallerResidue[i] += smallerResidue[i-1]
	}
	receivedSmaller := c.recvCnt
	for i := range receivedSmaller {
		receivedSmaller[i] = 0
	}
	for _, r := range c.residue {
		rIdx := int(r.idx)
		r.recv.ForEach(func(idx int) {
			if rIdx < idx {
				receivedSmaller[idx]++
			}
		})
	}
	for _, m := range members {
		if c.canon.Node(int(m)) != root {
			continue
		}
		ranks[m] += receivedSmaller[m] - smallerResidue[m]
	}
}

// finishPhase folds the phase's outcome back into the canonical view:
// silent balls disappear from every view, survivors adopt their announced
// positions, position-round victims linger as residue, and decisions and
// halts are recorded.
func (c *Cohort) finishPhase(pathVictims, posVictims []residueEntry) {
	// Balls that were silent this phase left every surviving view.
	for _, r := range c.residue {
		c.dropFromCanon(int(r.idx))
	}
	c.residue = c.residue[:0]
	for idx := range c.labels {
		if c.haltPhase[idx] != 0 && c.haltPhase[idx] < c.phase && c.inCanon[idx] {
			c.dropFromCanon(idx)
		}
	}
	for _, v := range pathVictims {
		c.dropFromCanon(int(v.idx))
	}
	// Survivors and position-round victims adopt their self-computed
	// positions (the sender's own view is authoritative). Position-round
	// victims were already marked inactive by planCrashes, so they are
	// relocated explicitly: their receivers keep them at the announced
	// position.
	for idx, a := range c.active {
		if a {
			c.canon.SetNode(idx, c.newPos[idx])
		}
	}
	for _, v := range posVictims {
		if v.recv.Empty() {
			c.dropFromCanon(int(v.idx))
			continue
		}
		c.canon.SetNode(int(v.idx), c.newPos[v.idx])
		c.residue = append(c.residue, v)
	}
	if c.cfg.CheckInvariants {
		if err := c.canon.CheckConsistency(); err != nil {
			panic(fmt.Sprintf("core: cohort phase %d canonical: %v", c.phase, err))
		}
		// Lemma 1 proper: correct balls (still active or halted) never
		// exceed any subtree's leaf count, whatever residue lingers.
		if !c.cfg.LabelPriority {
			correct := make([]bool, c.cfg.N)
			for idx := range correct {
				correct[idx] = c.active[idx] || c.haltPhase[idx] != 0
			}
			if err := c.canon.CheckLemma1(correct); err != nil {
				panic(fmt.Sprintf("core: cohort phase %d: %v", c.phase, err))
			}
		}
	}

	// Decisions: a ball decides at the end of the position round in which
	// it first occupies a leaf.
	for idx, a := range c.active {
		if !a || c.decided[idx] {
			continue
		}
		if node := c.canon.Node(idx); c.topo.IsLeaf(node) {
			c.decided[idx] = true
			c.decidedName[idx] = c.topo.LeafRank(node) + 1
			c.decidedRound[idx] = c.round
		}
	}

	// Halting: a ball halts when every ball in its view is at a leaf. At
	// phase end a survivor's view holds the survivors, the halted balls it
	// has not yet dropped (all at leaves), and the residue it received.
	allCorrectAtLeaves := true
	for idx, in := range c.inCanon {
		if in && c.active[idx] && !c.topo.IsLeaf(c.canon.Node(idx)) {
			allCorrectAtLeaves = false
			break
		}
	}
	if allCorrectAtLeaves {
		var innerResidue []residueEntry
		for _, r := range c.residue {
			if !c.topo.IsLeaf(c.canon.Node(int(r.idx))) {
				innerResidue = append(innerResidue, r)
			}
		}
		for idx, a := range c.active {
			if !a {
				continue
			}
			blocked := false
			for _, r := range innerResidue {
				if r.recv.Has(idx) {
					blocked = true
					break
				}
			}
			if !blocked {
				c.active[idx] = false
				c.haltPhase[idx] = c.phase
			}
		}
	}

	if c.metrics != nil {
		c.metrics.PerPhase = append(c.metrics.PerPhase,
			snapshotView(c.canon, c.phase, c.round, len(c.crashed)))
	}
	if c.OnPhaseEnd != nil {
		c.OnPhaseEnd(c.phase, c.round, c.canon)
	}
}

// dropFromCanon removes a ball from the canonical view, idempotently.
func (c *Cohort) dropFromCanon(idx int) {
	if c.inCanon[idx] {
		c.inCanon[idx] = false
		c.canon.Remove(idx)
	}
}

// sourceRecv returns the receiver mask of the i-th divergence source: the
// lingering residue entries first, then this round's victims.
func (c *Cohort) sourceRecv(roundVictims []residueEntry, i int) bitset.Set {
	if i < len(c.residue) {
		return c.residue[i].recv
	}
	return roundVictims[i-len(c.residue)].recv
}

// forEachGroup partitions the active balls by which mid-broadcast final
// messages they received — the lingering residue set plus, when
// roundVictims is non-nil, this round's victims — builds each group's view
// (canonical minus the residue the group did not receive) in the shared
// scratch view, and invokes fn. With no divergence there is a single group
// over the canonical view itself, copied into scratch so fn may mutate.
//
// The partition is computed by iterated refinement over the divergence
// sources: per source, (group, received-bit) pairs are renumbered into
// dense new group ids via an epoch-marked remap table. Everything runs on
// integer scratch slices — no per-ball hash keys, no map of byte-string
// masks. Group ids are assigned in order of each group's smallest member,
// and members stay ascending within a group; processing order across
// groups cannot affect results, since groups are disjoint and each starts
// from its own copy of the canonical view.
func (c *Cohort) forEachGroup(roundVictims []residueEntry, fn func(gv *View, members []int32)) {
	members := c.activeMembers()
	if len(members) == 0 {
		return
	}
	nSrc := len(c.residue) + len(roundVictims)
	if nSrc == 0 {
		c.work.CopyFrom(c.canon)
		fn(c.work, members)
		return
	}
	if c.gid == nil {
		c.gid = make([]int32, c.cfg.N)
		c.remap = make([]int32, 2*c.cfg.N+2)
		c.remapMark = make([]int32, 2*c.cfg.N+2)
		c.groupEnd = make([]int32, c.cfg.N+1)
		c.memberBuf = make([]int32, c.cfg.N)
	}
	gid := c.gid
	for _, m := range members {
		gid[m] = 0
	}
	ngroups := int32(1)
	for si := 0; si < nSrc && int(ngroups) < len(members); si++ {
		recv := c.sourceRecv(roundVictims, si)
		c.remapEpoch++
		if c.remapEpoch == 0 { // epoch counter wrapped: invalidate marks
			for i := range c.remapMark {
				c.remapMark[i] = 0
			}
			c.remapEpoch = 1
		}
		next := int32(0)
		for _, m := range members {
			v := 2 * gid[m]
			if recv.Has(int(m)) {
				v++
			}
			if c.remapMark[v] != c.remapEpoch {
				c.remapMark[v] = c.remapEpoch
				c.remap[v] = next
				next++
			}
			gid[m] = c.remap[v]
		}
		ngroups = next
	}

	// Bucket members by group id via counting sort; ids were assigned in
	// first-encounter order over ascending members, so the fill pass keeps
	// every group's members ascending.
	end := c.groupEnd[:ngroups+1]
	for g := range end {
		end[g] = 0
	}
	for _, m := range members {
		end[gid[m]+1]++
	}
	for g := int32(1); g <= ngroups; g++ {
		end[g] += end[g-1]
	}
	buf := c.memberBuf[:len(members)]
	for _, m := range members {
		buf[end[gid[m]]] = m
		end[gid[m]]++
	}
	// After the fill, end[g-1] is the end offset of group g-1... and also
	// the start of group g, so walk with a running start.
	start := int32(0)
	for g := int32(0); g < ngroups; g++ {
		gm := buf[start:end[g]]
		start = end[g]
		c.work.CopyFrom(c.canon)
		// Remove the residue this group never heard of; receipt is uniform
		// within a group, so probe its first member. Residue from this
		// round's victims is not yet in the canonical view, so only the
		// lingering entries participate.
		probe := int(gm[0])
		for _, src := range c.residue {
			if !src.recv.Has(probe) && c.inCanon[src.idx] {
				c.work.Remove(int(src.idx))
			}
		}
		fn(c.work, gm)
	}
}

// ranksAtNodes computes, for each member (ascending), its label rank among
// the present balls parked at the same node — the deterministic path rule
// input — in a single ascending pass over reusable scratch. The returned
// slice is indexed by dense ball index and valid until the next call.
func (c *Cohort) ranksAtNodes(v *View, members []int32) []int32 {
	if c.rankArr == nil {
		c.rankArr = make([]int32, c.cfg.N)
		c.nodeCnt = make([]int32, c.topo.NumNodes())
	}
	counts := c.nodeCnt // all-zero on entry; re-zeroed below
	mi := 0
	for idx := 0; idx < v.Universe(); idx++ {
		if !v.Present(idx) {
			continue
		}
		node := v.Node(idx)
		if mi < len(members) && members[mi] == int32(idx) {
			c.rankArr[idx] = counts[node]
			mi++
		}
		counts[node]++
	}
	for idx := 0; idx < v.Universe(); idx++ {
		if v.Present(idx) {
			counts[v.Node(idx)] = 0
		}
	}
	return c.rankArr
}

// stage identifies which broadcast a round carries, for payload encoding
// and size accounting.
type stage uint8

const (
	stageJoin stage = iota + 1
	stagePath
	stagePos
)

// payloadLen returns the encoded size of the ball's current broadcast.
func (c *Cohort) payloadLen(st stage, idx int) int {
	switch st {
	case stageJoin:
		return joinLen()
	case stagePath:
		return pathLen(c.paths[idx])
	default:
		return posLen(c.newPos[idx])
	}
}

// encodePayload materializes the ball's current broadcast (adversary peek).
func (c *Cohort) encodePayload(st stage, idx int) []byte {
	var w wire.Writer
	switch st {
	case stageJoin:
		appendJoin(&w)
	case stagePath:
		appendPath(&w, c.paths[idx])
	default:
		appendPos(&w, c.newPos[idx])
	}
	return w.Bytes()
}

// planCrashes invokes the adversary for the current round and converts the
// approved crash specs into residue entries (victim + receiver set),
// marking victims inactive.
func (c *Cohort) planCrashes(st stage) []residueEntry {
	c.rview.st = st
	c.rview.aliveValid = false
	specs := c.cfg.Adversary.Plan(&c.rview)
	if len(specs) == 0 {
		return nil
	}
	// First mark every victim crashed, then build receiver sets: a message
	// from one victim is never delivered to another process crashing in
	// the same round (it stopped executing), matching internal/sim.
	type pending struct {
		idx     int32
		deliver func(proto.ID) bool
	}
	var accepted []pending
	for _, spec := range specs {
		idx, ok := c.indexOf(spec.Victim)
		if !ok || !c.active[idx] || c.budget == 0 {
			continue
		}
		c.budget--
		c.active[idx] = false
		c.crashed = append(c.crashed, spec.Victim)
		deliver := spec.Deliver
		if deliver == nil {
			deliver = adversary.DeliverNone
		}
		accepted = append(accepted, pending{idx: int32(idx), deliver: deliver})
	}
	victims := make([]residueEntry, 0, len(accepted))
	for _, p := range accepted {
		recv := bitset.New(c.cfg.N)
		for j, a := range c.active {
			if a && p.deliver(c.labels[j]) {
				recv.Add(j)
			}
		}
		victims = append(victims, residueEntry{idx: p.idx, recv: recv})
	}
	return victims
}

// accountRound adds the round's network deliveries: every sender (survivor
// or victim) delivers its payload to the surviving active receivers —
// victims only to their receiver sets — excluding self-delivery.
func (c *Cohort) accountRound(st stage, victims []residueEntry) {
	receivers := 0
	for _, a := range c.active {
		if a {
			receivers++
		}
	}
	for idx, a := range c.active {
		if a {
			c.msgs += int64(receivers - 1)
			c.bytes += int64(c.payloadLen(st, idx)) * int64(receivers-1)
		}
	}
	for _, v := range victims {
		nRecv := v.recv.Count()
		c.msgs += int64(nRecv)
		c.bytes += int64(c.payloadLen(st, int(v.idx))) * int64(nRecv)
	}
}

// indexOf resolves a label to its dense index.
func (c *Cohort) indexOf(id proto.ID) (int, bool) {
	i := sort.Search(len(c.labels), func(i int) bool { return c.labels[i] >= id })
	if i < len(c.labels) && c.labels[i] == id {
		return i, true
	}
	return 0, false
}

// result assembles the final Result.
func (c *Cohort) result() Result {
	phases := 0
	if c.round > 0 {
		// Completed phases; a phase whose position round never ran (all
		// actives crashed mid-path-broadcast) does not count.
		phases = (c.round - 1) / 2
	}
	res := Result{
		N:        c.cfg.N,
		Rounds:   c.round,
		Phases:   phases,
		Crashes:  len(c.crashed),
		Messages: c.msgs,
		Bytes:    c.bytes,
		Metrics:  c.metrics,
	}
	crashedSet := bitset.New(c.cfg.N)
	for _, id := range c.crashed {
		if idx, ok := c.indexOf(id); ok {
			crashedSet.Add(idx)
		}
	}
	nDecided := 0
	for idx := range c.labels {
		if c.decided[idx] && !crashedSet.Has(idx) {
			nDecided++
		}
	}
	res.Decisions = make([]proto.Decision, 0, nDecided)
	for idx, id := range c.labels {
		if !c.decided[idx] {
			continue
		}
		if crashedSet.Has(idx) {
			res.CrashedDecided++
			continue
		}
		res.Decisions = append(res.Decisions, proto.Decision{
			ID:    id,
			Name:  c.decidedName[idx],
			Round: c.decidedRound[idx],
		})
	}
	return res
}

// cohortRoundView adapts the cohort's round state to adversary.RoundView.
// One instance lives inside the Cohort and is reused round to round; the
// alive slice is a per-round cache rebuilt lazily on first use.
type cohortRoundView struct {
	c          *Cohort
	st         stage
	alive      []proto.ID
	aliveValid bool
}

func (v *cohortRoundView) Round() int { return v.c.round }
func (v *cohortRoundView) N() int     { return v.c.cfg.N }

func (v *cohortRoundView) Alive() []proto.ID {
	if !v.aliveValid {
		v.alive = v.alive[:0]
		for idx, a := range v.c.active {
			if a {
				v.alive = append(v.alive, v.c.labels[idx])
			}
		}
		v.aliveValid = true
	}
	return v.alive
}

func (v *cohortRoundView) Payload(id proto.ID) []byte {
	idx, ok := v.c.indexOf(id)
	if !ok || !v.c.active[idx] {
		return nil
	}
	return v.c.encodePayload(v.st, idx)
}

func (v *cohortRoundView) Info(id proto.ID) (adversary.BallInfo, bool) {
	idx, ok := v.c.indexOf(id)
	if !ok || !v.c.active[idx] {
		return adversary.BallInfo{}, false
	}
	node := v.c.canon.Node(idx)
	if v.st == stagePos {
		node = v.c.newPos[idx]
	}
	return adversary.BallInfo{
		Label:  id,
		Depth:  v.c.topo.Depth(node),
		AtLeaf: v.c.topo.IsLeaf(node),
	}, true
}

func (v *cohortRoundView) Budget() int { return v.c.budget }
