package core

import (
	"reflect"
	"testing"

	"ballsintoleaves/internal/proto"
)

// TestCohortResetReplaysFresh pins the reuse contract behind the name
// service's epoch engine: Reset(seed, labels) on a used cohort must produce
// a run identical — decisions, rounds, traffic — to a freshly constructed
// cohort over the same (seed, labels), across strategies and label sets.
func TestCohortResetReplaysFresh(t *testing.T) {
	t.Parallel()
	const n = 64
	for _, strategy := range []PathStrategy{RandomPaths, HybridPaths, DeterministicPaths} {
		reused, err := NewCohort(Config{N: n, Seed: 1, Strategy: strategy}, seqLabels(n, 1))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := reused.Run(); err != nil {
			t.Fatal(err)
		}
		// Three generations of new label sets and seeds, including an
		// unsorted one: each must match a fresh cohort bit-for-bit.
		for gen := uint64(2); gen <= 4; gen++ {
			labels := seqLabels(n, 100*gen)
			if gen == 3 { // unsorted input: Reset must sort exactly like NewCohort
				for i := 0; i < n/2; i++ {
					labels[i], labels[n-1-i] = labels[n-1-i], labels[i]
				}
			}
			if err := reused.Reset(gen, labels); err != nil {
				t.Fatal(err)
			}
			got, err := reused.Run()
			if err != nil {
				t.Fatal(err)
			}
			fresh, err := NewCohort(Config{N: n, Seed: gen, Strategy: strategy}, labels)
			if err != nil {
				t.Fatal(err)
			}
			want, err := fresh.Run()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("strategy %v gen %d: reused run diverged from fresh:\n%+v\nvs\n%+v",
					strategy, gen, got, want)
			}
		}
	}
}

// TestCohortResetValidates covers Reset's error paths: wrong count and
// duplicate labels.
func TestCohortResetValidates(t *testing.T) {
	t.Parallel()
	c, err := NewCohort(Config{N: 4, Seed: 1}, seqLabels(4, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Reset(2, seqLabels(3, 1)); err == nil {
		t.Fatal("Reset with wrong label count succeeded")
	}
	if err := c.Reset(2, []proto.ID{1, 2, 2, 3}); err == nil {
		t.Fatal("Reset with duplicate labels succeeded")
	}
}

// TestCohortResetRunZeroAllocs guards the epoch fast path end to end at the
// core layer: once warm, Reset + RunToQuiescence of a failure-free cohort
// must not allocate.
func TestCohortResetRunZeroAllocs(t *testing.T) {
	const n = 256
	c, err := NewCohort(Config{N: n, Seed: 1, Strategy: HybridPaths}, seqLabels(n, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RunToQuiescence(); err != nil {
		t.Fatal(err)
	}
	labels := seqLabels(n, 500)
	// Warm: the first reset run may grow lazily allocated scratch.
	if err := c.Reset(2, labels); err != nil {
		t.Fatal(err)
	}
	if err := c.RunToQuiescence(); err != nil {
		t.Fatal(err)
	}
	seed := uint64(3)
	allocs := testing.AllocsPerRun(3, func() {
		for i := range labels {
			labels[i] += proto.ID(n)
		}
		if err := c.Reset(seed, labels); err != nil {
			t.Fatal(err)
		}
		seed++
		if err := c.RunToQuiescence(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("Reset+RunToQuiescence allocated %v objects at steady state, want 0", allocs)
	}
}

// seqLabels returns n distinct ascending labels starting at base.
func seqLabels(n int, base uint64) []proto.ID {
	out := make([]proto.ID, n)
	for i := range out {
		out[i] = proto.ID(base + uint64(i))
	}
	return out
}
