// Package runtime executes the synchronous message-passing model with real
// concurrency: one goroutine per process, channels as links, and a
// coordinator enforcing lock-step rounds. It is behaviorally identical to
// the single-threaded reference engine (internal/sim) — same decisions,
// rounds and crash semantics for the same adversary — which the integration
// tests assert; it exists because goroutines-plus-channels is the natural Go
// rendering of the paper's model, and because it exercises the protocols
// under true parallel delivery.
//
// Concurrency design: process state is only ever touched by its own
// goroutine. The coordinator interacts with processes exclusively through
// three channels per process (payload up, deliveries down, status up), each
// with capacity one. Between collecting the round's payloads and delivering
// them, every live process goroutine is parked on its delivery channel, so
// the adversary's introspection window is race-free. Payloads are copied on
// receipt because senders reuse their encoding buffers across rounds.
package runtime

import (
	"fmt"
	"sort"
	"sync"

	"ballsintoleaves/internal/adversary"
	"ballsintoleaves/internal/proto"
	"ballsintoleaves/internal/sim"
)

// Config mirrors sim.Config: adversary, crash budget, and a round cap.
type Config struct {
	Adversary adversary.Strategy
	Budget    int
	MaxRounds int
}

// Result is identical in shape and semantics to the reference engine's.
type Result = sim.Result

// Engine drives one concurrent run. Construct with New, execute with Run
// (once).
type Engine struct {
	cfg   Config
	procs []proto.Process
	byID  map[proto.ID]int
	ports []port

	alive    []bool
	halted   []bool
	decided  []bool
	payloads [][]byte
	infos    []adversary.BallInfo
	hasInfo  []bool

	decisions []proto.Decision
	crashed   []proto.ID
	round     int
	budget    int
	messages  int64
	bytes     int64

	wg sync.WaitGroup
}

// port is the coordinator's endpoint for one process goroutine.
type port struct {
	payloadCh chan []byte
	deliverCh chan []proto.Message
	statusCh  chan status
	quitCh    chan struct{}
}

// status is the post-delivery report a process goroutine sends each round.
type status struct {
	decided bool
	name    int
	done    bool
	info    adversary.BallInfo
	hasInfo bool
}

// New builds a concurrent engine over the given processes (distinct IDs).
func New(cfg Config, procs []proto.Process) (*Engine, error) {
	if len(procs) == 0 {
		return nil, fmt.Errorf("runtime: no processes")
	}
	sorted := make([]proto.Process, len(procs))
	copy(sorted, procs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID() < sorted[j].ID() })
	byID := make(map[proto.ID]int, len(sorted))
	for i, p := range sorted {
		if _, dup := byID[p.ID()]; dup {
			return nil, fmt.Errorf("runtime: duplicate process ID %v", p.ID())
		}
		byID[p.ID()] = i
	}
	if cfg.Adversary == nil {
		cfg.Adversary = adversary.None{}
	}
	if cfg.Budget <= 0 {
		cfg.Budget = len(sorted) - 1
	}
	if cfg.MaxRounds <= 0 {
		cfg.MaxRounds = 10*len(sorted) + 64
	}
	e := &Engine{
		cfg:      cfg,
		procs:    sorted,
		byID:     byID,
		ports:    make([]port, len(sorted)),
		alive:    make([]bool, len(sorted)),
		halted:   make([]bool, len(sorted)),
		decided:  make([]bool, len(sorted)),
		payloads: make([][]byte, len(sorted)),
		infos:    make([]adversary.BallInfo, len(sorted)),
		hasInfo:  make([]bool, len(sorted)),
		budget:   cfg.Budget,
	}
	for i := range e.ports {
		e.alive[i] = true
		e.ports[i] = port{
			payloadCh: make(chan []byte, 1),
			deliverCh: make(chan []proto.Message, 1),
			statusCh:  make(chan status, 1),
			quitCh:    make(chan struct{}),
		}
	}
	return e, nil
}

// procLoop is the per-process goroutine: send, await delivery, report.
func (e *Engine) procLoop(idx int) {
	defer e.wg.Done()
	p := e.procs[idx]
	pt := e.ports[idx]
	for round := 1; ; round++ {
		payload := p.Send(round)
		select {
		case pt.payloadCh <- payload:
		case <-pt.quitCh:
			return
		}
		var msgs []proto.Message
		select {
		case msgs = <-pt.deliverCh:
		case <-pt.quitCh:
			return
		}
		p.Deliver(round, msgs)
		st := status{done: p.Done()}
		st.name, st.decided = p.Decided()
		if intro, ok := p.(sim.Introspector); ok {
			st.info, st.hasInfo = intro.Info(), true
		}
		select {
		case pt.statusCh <- st:
		case <-pt.quitCh:
			return
		}
		if st.done {
			return
		}
	}
}

// Run spawns the process goroutines, executes rounds until every surviving
// process halts, and returns the result. It must be called at most once.
func (e *Engine) Run() (Result, error) {
	for i := range e.procs {
		e.wg.Add(1)
		go e.procLoop(i)
	}
	defer func() {
		for i := range e.ports {
			if e.alive[i] && !e.halted[i] {
				close(e.ports[i].quitCh)
			}
		}
		e.wg.Wait()
	}()

	for e.pendingWork() {
		if e.round >= e.cfg.MaxRounds {
			return e.result(), fmt.Errorf("runtime: exceeded %d rounds without quiescing", e.cfg.MaxRounds)
		}
		e.step()
	}
	return e.result(), nil
}

func (e *Engine) pendingWork() bool {
	for i := range e.procs {
		if e.alive[i] && !e.halted[i] {
			return true
		}
	}
	return false
}

// step runs one lock-step round through the coordinator.
func (e *Engine) step() {
	e.round++
	// Collect payloads; copy because senders reuse their buffers.
	for i := range e.procs {
		if !e.alive[i] || e.halted[i] {
			e.payloads[i] = nil
			continue
		}
		raw := <-e.ports[i].payloadCh
		if raw == nil {
			e.payloads[i] = nil
		} else {
			cp := make([]byte, len(raw))
			copy(cp, raw)
			e.payloads[i] = cp
		}
	}
	// Every live goroutine is now parked on its deliverCh: safe window for
	// the adversary to inspect state (via the statuses of the previous
	// round, the payloads, and cached infos).
	view := &roundView{engine: e}
	specs := e.cfg.Adversary.Plan(view)
	crashedNow := make(map[int]func(proto.ID) bool)
	for _, spec := range specs {
		idx, ok := e.byID[spec.Victim]
		if !ok || !e.alive[idx] || e.halted[idx] || e.budget == 0 {
			continue
		}
		if _, dup := crashedNow[idx]; dup {
			continue
		}
		e.budget--
		e.alive[idx] = false
		e.crashed = append(e.crashed, spec.Victim)
		close(e.ports[idx].quitCh)
		deliver := spec.Deliver
		if deliver == nil {
			deliver = adversary.DeliverNone
		}
		crashedNow[idx] = deliver
	}
	// Deliver to survivors.
	for i, p := range e.procs {
		if !e.alive[i] || e.halted[i] {
			continue
		}
		var msgs []proto.Message
		for j, payload := range e.payloads {
			if payload == nil {
				continue
			}
			if deliver, crashed := crashedNow[j]; crashed {
				if !deliver(p.ID()) {
					continue
				}
			}
			msgs = append(msgs, proto.Message{From: e.procs[j].ID(), Payload: payload})
			if i != j {
				e.messages++
				e.bytes += int64(len(payload))
			}
		}
		e.ports[i].deliverCh <- msgs
	}
	// Collect post-delivery statuses.
	for i, p := range e.procs {
		if !e.alive[i] || e.halted[i] {
			continue
		}
		st := <-e.ports[i].statusCh
		e.infos[i], e.hasInfo[i] = st.info, st.hasInfo
		if st.decided && !e.decided[i] {
			e.decided[i] = true
			e.decisions = append(e.decisions, proto.Decision{ID: p.ID(), Name: st.name, Round: e.round})
		}
		if st.done {
			e.halted[i] = true
		}
	}
}

func (e *Engine) result() Result {
	res := Result{
		Rounds:   e.round,
		Crashed:  e.crashed,
		Messages: e.messages,
		Bytes:    e.bytes,
	}
	for _, d := range e.decisions {
		if e.alive[e.byID[d.ID]] {
			res.Decisions = append(res.Decisions, d)
		} else {
			res.CrashedDecided++
		}
	}
	sort.Slice(res.Decisions, func(i, j int) bool { return res.Decisions[i].ID < res.Decisions[j].ID })
	return res
}

// roundView adapts the engine's round state to adversary.RoundView. Info
// reflects each process's state as of the end of the previous round (the
// last status report), which is exactly what the paper's adversary sees
// when planning crashes for the current broadcast.
type roundView struct {
	engine *Engine
	alive  []proto.ID
}

func (v *roundView) Round() int { return v.engine.round }
func (v *roundView) N() int     { return len(v.engine.procs) }

func (v *roundView) Alive() []proto.ID {
	if v.alive == nil {
		for i, p := range v.engine.procs {
			if v.engine.alive[i] && !v.engine.halted[i] {
				v.alive = append(v.alive, p.ID())
			}
		}
	}
	return v.alive
}

func (v *roundView) Payload(id proto.ID) []byte {
	idx, ok := v.engine.byID[id]
	if !ok {
		return nil
	}
	return v.engine.payloads[idx]
}

func (v *roundView) Info(id proto.ID) (adversary.BallInfo, bool) {
	idx, ok := v.engine.byID[id]
	if !ok || !v.engine.alive[idx] || !v.engine.hasInfo[idx] {
		return adversary.BallInfo{}, false
	}
	return v.engine.infos[idx], true
}

func (v *roundView) Budget() int { return v.engine.budget }
