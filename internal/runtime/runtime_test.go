package runtime

import (
	"fmt"
	"testing"

	"ballsintoleaves/internal/adversary"
	"ballsintoleaves/internal/core"
	"ballsintoleaves/internal/ids"
	"ballsintoleaves/internal/proto"
	"ballsintoleaves/internal/sim"
)

// TestRuntimeMatchesSim asserts that the concurrent engine reproduces the
// single-threaded reference engine exactly — decisions, rounds, crashes,
// message and byte counts — for real Balls-into-Leaves systems under a
// spread of adversaries. Together with core's cohort equivalence test this
// closes the triangle sim ≡ runtime ≡ cohort.
func TestRuntimeMatchesSim(t *testing.T) {
	t.Parallel()
	const n = 32
	cases := []struct {
		name string
		make func() adversary.Strategy
	}{
		{"none", func() adversary.Strategy { return adversary.None{} }},
		{"splitter", func() adversary.Strategy { return &adversary.Splitter{Round: 2} }},
		{"random", func() adversary.Strategy { return adversary.NewRandom(n/3, 9, 4) }},
		{"rank-shifter", func() adversary.Strategy { return &adversary.RankShifter{} }},
		{"deep-target", func() adversary.Strategy { return &adversary.DeepTarget{PerRound: 1, Seed: 8} }},
	}
	for _, strategy := range []core.PathStrategy{core.RandomPaths, core.HybridPaths} {
		for _, tc := range cases {
			for seed := uint64(0); seed < 2; seed++ {
				t.Run(fmt.Sprintf("%v/%s/seed%d", strategy, tc.name, seed), func(t *testing.T) {
					t.Parallel()
					labels := ids.Random(n, seed+60)
					cfg := core.Config{N: n, Seed: seed, Strategy: strategy, CheckInvariants: true}

					mkProcs := func() []proto.Process {
						balls, err := core.NewBalls(cfg, labels)
						if err != nil {
							t.Fatal(err)
						}
						return core.Processes(balls)
					}

					ref, err := sim.New(sim.Config{Adversary: tc.make()}, mkProcs())
					if err != nil {
						t.Fatal(err)
					}
					want, err := ref.Run()
					if err != nil {
						t.Fatal(err)
					}

					eng, err := New(Config{Adversary: tc.make()}, mkProcs())
					if err != nil {
						t.Fatal(err)
					}
					got, err := eng.Run()
					if err != nil {
						t.Fatal(err)
					}

					if got.Rounds != want.Rounds {
						t.Errorf("rounds: runtime %d, sim %d", got.Rounds, want.Rounds)
					}
					if len(got.Crashed) != len(want.Crashed) {
						t.Errorf("crashes: runtime %d, sim %d", len(got.Crashed), len(want.Crashed))
					}
					if got.Messages != want.Messages || got.Bytes != want.Bytes {
						t.Errorf("traffic: runtime %d/%d, sim %d/%d",
							got.Messages, got.Bytes, want.Messages, want.Bytes)
					}
					if len(got.Decisions) != len(want.Decisions) {
						t.Fatalf("decisions: runtime %d, sim %d", len(got.Decisions), len(want.Decisions))
					}
					for i := range got.Decisions {
						if got.Decisions[i] != want.Decisions[i] {
							t.Errorf("decision %d: runtime %+v, sim %+v", i, got.Decisions[i], want.Decisions[i])
						}
					}
					if err := proto.Validate(got.Decisions, n); err != nil {
						t.Error(err)
					}
				})
			}
		}
	}
}

func TestRuntimeFailureFree(t *testing.T) {
	t.Parallel()
	for _, n := range []int{1, 2, 7, 16, 64} {
		cfg := core.Config{N: n, Seed: uint64(n)}
		balls, err := core.NewBalls(cfg, ids.Random(n, uint64(n)+7))
		if err != nil {
			t.Fatal(err)
		}
		eng, err := New(Config{}, core.Processes(balls))
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Decisions) != n {
			t.Fatalf("n=%d: %d decisions", n, len(res.Decisions))
		}
		if err := proto.Validate(res.Decisions, n); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

// stallProc never halts, for the abort path: the engine must shut down all
// goroutines cleanly (the race detector and -timeout guard the rest).
type stallProc struct{ id proto.ID }

func (p *stallProc) ID() proto.ID                 { return p.id }
func (p *stallProc) Send(int) []byte              { return []byte{1} }
func (p *stallProc) Deliver(int, []proto.Message) {}
func (p *stallProc) Decided() (int, bool)         { return 0, false }
func (p *stallProc) Done() bool                   { return false }

func TestRuntimeMaxRoundsAbortsCleanly(t *testing.T) {
	t.Parallel()
	eng, err := New(Config{MaxRounds: 4}, []proto.Process{&stallProc{id: 1}, &stallProc{id: 2}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err == nil {
		t.Fatal("expected max-rounds error")
	}
	if res.Rounds != 4 {
		t.Fatalf("rounds = %d", res.Rounds)
	}
}

func TestRuntimeCrashMidRun(t *testing.T) {
	t.Parallel()
	const n = 16
	cfg := core.Config{N: n, Seed: 3}
	balls, err := core.NewBalls(cfg, ids.Sequential(n))
	if err != nil {
		t.Fatal(err)
	}
	adv := &adversary.AtRound{Round: 2, Count: 5, Pattern: func(s []proto.ID) func(proto.ID) bool {
		return adversary.AlternatingByRank(s)
	}}
	eng, err := New(Config{Adversary: adv}, core.Processes(balls))
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Crashed) != 5 {
		t.Fatalf("crashed = %v", res.Crashed)
	}
	if len(res.Decisions) != n-5 {
		t.Fatalf("decisions = %d", len(res.Decisions))
	}
	if err := proto.Validate(res.Decisions, n); err != nil {
		t.Fatal(err)
	}
}

func TestRuntimeRejectsDuplicateIDs(t *testing.T) {
	t.Parallel()
	if _, err := New(Config{}, []proto.Process{&stallProc{id: 1}, &stallProc{id: 1}}); err == nil {
		t.Fatal("duplicate IDs accepted")
	}
}

func TestRuntimeRejectsEmpty(t *testing.T) {
	t.Parallel()
	if _, err := New(Config{}, nil); err == nil {
		t.Fatal("empty process set accepted")
	}
}
