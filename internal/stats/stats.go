// Package stats provides the statistics used by the experiment harness:
// replicate summaries (mean, quantiles), least-squares model fitting for
// distinguishing Θ(log n) from Θ(log log n) round growth, and text/CSV
// table rendering for cmd/blbench and EXPERIMENTS.md.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary describes a sample of replicate measurements.
type Summary struct {
	Count  int
	Mean   float64
	Std    float64
	Min    float64
	Max    float64
	Median float64
	P90    float64
	P95    float64
}

// Summarize computes a Summary. An empty sample yields the zero Summary.
func Summarize(sample []float64) Summary {
	if len(sample) == 0 {
		return Summary{}
	}
	sorted := make([]float64, len(sample))
	copy(sorted, sample)
	sort.Float64s(sorted)
	s := Summary{
		Count:  len(sorted),
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		Median: Quantile(sorted, 0.5),
		P90:    Quantile(sorted, 0.9),
		P95:    Quantile(sorted, 0.95),
	}
	sum := 0.0
	for _, v := range sorted {
		sum += v
	}
	s.Mean = sum / float64(len(sorted))
	if len(sorted) > 1 {
		ss := 0.0
		for _, v := range sorted {
			d := v - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(len(sorted)-1))
	}
	return s
}

// SummarizeInts summarizes an integer sample.
func SummarizeInts(sample []int) Summary {
	fs := make([]float64, len(sample))
	for i, v := range sample {
		fs[i] = float64(v)
	}
	return Summarize(fs)
}

// Quantile returns the q-quantile (0 <= q <= 1) of an ascending-sorted
// sample using linear interpolation. It panics on an empty sample.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		panic("stats: quantile of empty sample")
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Fit is a least-squares line fit y ≈ Intercept + Slope·x with its
// coefficient of determination.
type Fit struct {
	Slope     float64
	Intercept float64
	R2        float64
}

// LinearFit computes the ordinary least-squares fit. It panics if the
// inputs differ in length or have fewer than two points.
func LinearFit(xs, ys []float64) Fit {
	if len(xs) != len(ys) || len(xs) < 2 {
		panic(fmt.Sprintf("stats: bad fit input lengths %d/%d", len(xs), len(ys)))
	}
	n := float64(len(xs))
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var sxx, sxy, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	fit := Fit{}
	if sxx == 0 {
		fit.Intercept = my
		return fit
	}
	fit.Slope = sxy / sxx
	fit.Intercept = my - fit.Slope*mx
	if syy == 0 {
		fit.R2 = 1
		return fit
	}
	ssRes := 0.0
	for i := range xs {
		pred := fit.Intercept + fit.Slope*xs[i]
		d := ys[i] - pred
		ssRes += d * d
	}
	fit.R2 = 1 - ssRes/syy
	return fit
}

// GrowthFits compares two growth models for measurements y over sizes n:
// y = a + b·log2(n) and y = a + b·log2(log2(n)). The R² gap is how the
// experiments distinguish logarithmic from doubly logarithmic round
// complexity. Sizes must be >= 4 so both transforms are defined.
type GrowthFits struct {
	Log    Fit // y ≈ a + b·log2 n
	LogLog Fit // y ≈ a + b·log2 log2 n
}

// FitGrowth computes both fits.
func FitGrowth(ns []int, ys []float64) GrowthFits {
	logXs := make([]float64, len(ns))
	loglogXs := make([]float64, len(ns))
	for i, n := range ns {
		if n < 4 {
			panic(fmt.Sprintf("stats: FitGrowth needs n >= 4, got %d", n))
		}
		logXs[i] = math.Log2(float64(n))
		loglogXs[i] = math.Log2(math.Log2(float64(n)))
	}
	return GrowthFits{
		Log:    LinearFit(logXs, ys),
		LogLog: LinearFit(loglogXs, ys),
	}
}
