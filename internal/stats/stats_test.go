package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSummarizeBasics(t *testing.T) {
	t.Parallel()
	s := Summarize([]float64{4, 1, 3, 2})
	if s.Count != 4 || s.Min != 1 || s.Max != 4 {
		t.Fatalf("summary = %+v", s)
	}
	if !almost(s.Mean, 2.5) || !almost(s.Median, 2.5) {
		t.Fatalf("mean/median = %v/%v", s.Mean, s.Median)
	}
	// Sample std of {1,2,3,4} is sqrt(5/3).
	if !almost(s.Std, math.Sqrt(5.0/3.0)) {
		t.Fatalf("std = %v", s.Std)
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	t.Parallel()
	if s := Summarize(nil); s.Count != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
	s := Summarize([]float64{7})
	if s.Mean != 7 || s.Std != 0 || s.Median != 7 || s.P95 != 7 {
		t.Fatalf("single summary = %+v", s)
	}
}

func TestSummarizeInts(t *testing.T) {
	t.Parallel()
	s := SummarizeInts([]int{1, 2, 3})
	if !almost(s.Mean, 2) {
		t.Fatalf("mean = %v", s.Mean)
	}
}

func TestQuantileInterpolation(t *testing.T) {
	t.Parallel()
	sorted := []float64{0, 10, 20, 30}
	cases := []struct{ q, want float64 }{
		{0, 0}, {1, 30}, {0.5, 15}, {0.25, 7.5}, {-1, 0}, {2, 30},
	}
	for _, c := range cases {
		if got := Quantile(sorted, c.q); !almost(got, c.want) {
			t.Fatalf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestLinearFitExactLine(t *testing.T) {
	t.Parallel()
	xs := []float64{1, 2, 3, 4}
	ys := []float64{5, 7, 9, 11} // y = 3 + 2x
	f := LinearFit(xs, ys)
	if !almost(f.Slope, 2) || !almost(f.Intercept, 3) || !almost(f.R2, 1) {
		t.Fatalf("fit = %+v", f)
	}
}

func TestLinearFitConstant(t *testing.T) {
	t.Parallel()
	f := LinearFit([]float64{1, 2, 3}, []float64{4, 4, 4})
	if !almost(f.Slope, 0) || !almost(f.Intercept, 4) || !almost(f.R2, 1) {
		t.Fatalf("fit = %+v", f)
	}
}

func TestLinearFitDegenerateX(t *testing.T) {
	t.Parallel()
	f := LinearFit([]float64{2, 2, 2}, []float64{1, 2, 3})
	if !almost(f.Slope, 0) || !almost(f.Intercept, 2) {
		t.Fatalf("fit = %+v", f)
	}
}

// TestFitGrowthDiscriminates verifies the harness can tell log n data from
// log log n data: the matching model must win on R².
func TestFitGrowthDiscriminates(t *testing.T) {
	t.Parallel()
	ns := []int{16, 64, 256, 1024, 4096, 16384, 65536}
	logData := make([]float64, len(ns))
	loglogData := make([]float64, len(ns))
	for i, n := range ns {
		logData[i] = 1 + 2*math.Log2(float64(n))
		loglogData[i] = 1 + 2*math.Log2(math.Log2(float64(n)))
	}
	g := FitGrowth(ns, logData)
	if g.Log.R2 < g.LogLog.R2 {
		t.Fatalf("log-data misclassified: log R2 %v < loglog R2 %v", g.Log.R2, g.LogLog.R2)
	}
	g = FitGrowth(ns, loglogData)
	if g.LogLog.R2 < g.Log.R2 {
		t.Fatalf("loglog-data misclassified: loglog R2 %v < log R2 %v", g.LogLog.R2, g.Log.R2)
	}
	if !almost(g.LogLog.R2, 1) {
		t.Fatalf("exact loglog data should fit perfectly: %+v", g.LogLog)
	}
}

func TestFitGrowthRejectsTinyN(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for n < 4")
		}
	}()
	FitGrowth([]int{2, 8}, []float64{1, 2})
}

// TestLinearFitResidualProperty: R2 is always in [-inf, 1] and equals 1 for
// points generated exactly on a line.
func TestLinearFitProperty(t *testing.T) {
	t.Parallel()
	prop := func(rawSlope, rawIntercept int8, seed uint8) bool {
		slope := float64(rawSlope) / 8
		intercept := float64(rawIntercept)
		xs := make([]float64, 6)
		ys := make([]float64, 6)
		for i := range xs {
			xs[i] = float64(i) + float64(seed%3)
			ys[i] = intercept + slope*xs[i]
		}
		f := LinearFit(xs, ys)
		return almost(f.Slope, slope) && almost(f.Intercept, intercept) && f.R2 > 0.999999
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestTableRenderAlignment(t *testing.T) {
	t.Parallel()
	tb := NewTable("demo", "n", "rounds")
	tb.AddRow("16", "5")
	tb.AddRow("65536", "9")
	tb.AddNote("seeds=%d", 30)
	var sb strings.Builder
	tb.Render(&sb)
	out := sb.String()
	for _, want := range []string{"## demo", "n      rounds", "-----  ------", "65536  9", "note: seeds=30"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTableRenderCSVQuoting(t *testing.T) {
	t.Parallel()
	tb := NewTable("", "a", "b")
	tb.AddRow(`x,y`, `he said "hi"`)
	var sb strings.Builder
	tb.RenderCSV(&sb)
	want := "a,b\n\"x,y\",\"he said \"\"hi\"\"\"\n"
	if sb.String() != want {
		t.Fatalf("csv = %q, want %q", sb.String(), want)
	}
}

func TestTableShortRowsPadded(t *testing.T) {
	t.Parallel()
	tb := NewTable("", "a", "b", "c")
	tb.AddRow("1")
	if len(tb.Rows[0]) != 3 || tb.Rows[0][1] != "" {
		t.Fatalf("row = %#v", tb.Rows[0])
	}
}

func TestFormatters(t *testing.T) {
	t.Parallel()
	if I(5) != "5" || I64(-7) != "-7" || F(1.005) == "" || F1(2.25) != "2.2" && F1(2.25) != "2.3" || F3(0.12345) != "0.123" {
		t.Fatal("formatter outputs unexpected")
	}
}
