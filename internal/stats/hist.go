package stats

import (
	"fmt"
	"math"
	"math/bits"
)

// Histogram is a log-linear histogram for non-negative integer samples
// (latencies in nanoseconds, batch sizes, ...): values 0..63 are recorded
// exactly, and each further octave is split into 64 linear sub-buckets, so
// any quantile is reproduced with at most 1/64 (~1.6%) relative error while
// Record stays O(1), allocation-free, and the whole histogram is a few KiB.
// Histograms recorded independently (one per worker) Merge losslessly,
// which is how the load generator aggregates per-connection latencies.
//
// The zero value is ready to use. Histogram is not safe for concurrent use;
// record into per-goroutine instances and Merge.
type Histogram struct {
	counts [histBuckets]uint64
	total  uint64
	sum    float64
	min    int64
	max    int64
}

// histSubBits is the per-octave resolution: 2^histSubBits linear
// sub-buckets per power of two.
const histSubBits = 6

const (
	histSubBuckets = 1 << histSubBits
	// histBuckets covers every non-negative int64: the exact range 0..63
	// plus 64 sub-buckets for each of the 57 remaining octaves.
	histBuckets = (64 - histSubBits) << histSubBits
)

// histIndex maps a value to its bucket.
func histIndex(v int64) int {
	u := uint64(v)
	if u < histSubBuckets {
		return int(u)
	}
	msb := bits.Len64(u) - 1
	group := msb - histSubBits + 1
	return (group << histSubBits) + int((u>>(msb-histSubBits))&(histSubBuckets-1))
}

// histValue returns a bucket's representative value (midpoint; exact for
// the first 64 buckets).
func histValue(idx int) int64 {
	if idx < histSubBuckets {
		return int64(idx)
	}
	group := idx >> histSubBits
	sub := idx & (histSubBuckets - 1)
	shift := uint(group - 1)
	base := int64(histSubBuckets+sub) << shift
	return base + int64(1)<<shift/2
}

// Record adds one sample. Negative values clamp to zero.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	if h.total == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.counts[histIndex(v)]++
	h.total++
	h.sum += float64(v)
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.total }

// Min returns the smallest recorded sample (0 when empty).
func (h *Histogram) Min() int64 {
	if h.total == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest recorded sample (0 when empty).
func (h *Histogram) Max() int64 {
	if h.total == 0 {
		return 0
	}
	return h.max
}

// Mean returns the exact mean of the recorded samples (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Quantile returns the q-quantile (0 <= q <= 1) of the recorded samples to
// within the histogram's bucket resolution; the extremes are exact. An
// empty histogram yields 0.
func (h *Histogram) Quantile(q float64) int64 {
	if h.total == 0 {
		return 0
	}
	if q <= 0 {
		return h.Min()
	}
	if q >= 1 {
		return h.Max()
	}
	rank := uint64(math.Ceil(q * float64(h.total)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			v := histValue(i)
			// The recorded extremes bound every bucket midpoint estimate.
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.Max()
}

// P50, P90, P99 and P999 are the service-latency quantiles the load
// generator reports.
func (h *Histogram) P50() int64  { return h.Quantile(0.50) }
func (h *Histogram) P90() int64  { return h.Quantile(0.90) }
func (h *Histogram) P99() int64  { return h.Quantile(0.99) }
func (h *Histogram) P999() int64 { return h.Quantile(0.999) }

// Snapshot is a portable dump of a Histogram: the non-empty buckets as
// (index, count) pairs plus the exact aggregates, small enough to embed in
// JSON artifacts. Round-tripping through FromSnapshot is lossless, so
// artifacts written by different tools (the load generator, the simulator)
// merge through the same Histogram.Merge path as live histograms.
type Snapshot struct {
	// Buckets holds [bucket index, sample count] pairs for every non-empty
	// bucket, in ascending index order. Indexes address the log-linear
	// layout shared by every Histogram (histSubBits).
	Buckets [][2]uint64 `json:"buckets,omitempty"`
	Count   uint64      `json:"count"`
	Sum     float64     `json:"sum"`
	Min     int64       `json:"min"`
	Max     int64       `json:"max"`
}

// Snapshot dumps the histogram's non-empty buckets and aggregates.
func (h *Histogram) Snapshot() Snapshot {
	s := Snapshot{Count: h.total, Sum: h.sum, Min: h.Min(), Max: h.Max()}
	for i, c := range h.counts {
		if c != 0 {
			s.Buckets = append(s.Buckets, [2]uint64{uint64(i), c})
		}
	}
	return s
}

// FromSnapshot reconstructs the histogram a Snapshot was dumped from. It
// errors on malformed input: an out-of-range bucket index, or bucket counts
// that do not sum to Count.
func FromSnapshot(s Snapshot) (*Histogram, error) {
	h := &Histogram{total: s.Count, sum: s.Sum, min: s.Min, max: s.Max}
	var n uint64
	for _, b := range s.Buckets {
		if b[0] >= histBuckets {
			return nil, fmt.Errorf("stats: snapshot bucket index %d outside 0..%d", b[0], histBuckets-1)
		}
		h.counts[b[0]] += b[1]
		n += b[1]
	}
	if n != s.Count {
		return nil, fmt.Errorf("stats: snapshot buckets sum to %d, count says %d", n, s.Count)
	}
	return h, nil
}

// Merge folds another histogram's samples into h.
func (h *Histogram) Merge(o *Histogram) {
	if o.total == 0 {
		return
	}
	if h.total == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.total += o.total
	h.sum += o.sum
}
