package stats

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Table is a simple column-aligned results table with optional CSV output,
// used by cmd/blbench and the experiment suite.
type Table struct {
	Title string
	Notes []string
	Cols  []string
	Rows  [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, cols ...string) *Table {
	return &Table{Title: title, Cols: cols}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Cols))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// AddNote appends a free-form footnote rendered under the table.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Cols))
	for i, c := range t.Cols {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "## %s\n", t.Title)
	}
	writeRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			parts[i] = pad(cell, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	writeRow(t.Cols)
	rule := make([]string, len(t.Cols))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	writeRow(rule)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, note := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", note)
	}
}

// RenderCSV writes the table as RFC-4180-ish CSV (quotes only when needed).
func (t *Table) RenderCSV(w io.Writer) {
	writeCSVRow(w, t.Cols)
	for _, row := range t.Rows {
		writeCSVRow(w, row)
	}
}

func writeCSVRow(w io.Writer, cells []string) {
	parts := make([]string, len(cells))
	for i, cell := range cells {
		if strings.ContainsAny(cell, ",\"\n") {
			cell = `"` + strings.ReplaceAll(cell, `"`, `""`) + `"`
		}
		parts[i] = cell
	}
	fmt.Fprintln(w, strings.Join(parts, ","))
}

func pad(s string, width int) string {
	if len(s) >= width {
		return s
	}
	return s + strings.Repeat(" ", width-len(s))
}

// I formats an int cell.
func I(v int) string { return strconv.Itoa(v) }

// I64 formats an int64 cell.
func I64(v int64) string { return strconv.FormatInt(v, 10) }

// F formats a float cell with two decimals.
func F(v float64) string { return strconv.FormatFloat(v, 'f', 2, 64) }

// F1 formats a float cell with one decimal.
func F1(v float64) string { return strconv.FormatFloat(v, 'f', 1, 64) }

// F3 formats a float cell with three decimals.
func F3(v float64) string { return strconv.FormatFloat(v, 'f', 3, 64) }
