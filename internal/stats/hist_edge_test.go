package stats

import (
	"encoding/json"
	"math"
	"testing"
)

// TestHistogramMergeEdgeCases table-drives the merge corners the aggregation
// paths (blload per-connection merge, simulator artifact merge) depend on:
// empty operands in every position, disjoint value ranges, and the overflow
// bucket at the top of the int64 range.
func TestHistogramMergeEdgeCases(t *testing.T) {
	t.Parallel()
	rec := func(vs ...int64) *Histogram {
		var h Histogram
		for _, v := range vs {
			h.Record(v)
		}
		return &h
	}
	cases := []struct {
		name     string
		a, b     *Histogram
		count    uint64
		min, max int64
		p50      int64 // -1 = skip quantile check
	}{
		{"empty+empty", rec(), rec(), 0, 0, 0, 0},
		{"empty+one", rec(), rec(42), 1, 42, 42, 42},
		{"one+empty", rec(42), rec(), 1, 42, 42, 42},
		{"disjoint low+high", rec(1, 2, 3), rec(1<<40, 1<<40+1), 5, 1, 1<<40 + 1, 3},
		{"disjoint high+low", rec(1<<40, 1<<40+1), rec(1, 2, 3), 5, 1, 1<<40 + 1, 3},
		{"identical ranges", rec(10, 20), rec(10, 20), 4, 10, 20, 10},
		{"zero only", rec(0, 0), rec(0), 3, 0, 0, 0},
		{"overflow bucket", rec(math.MaxInt64), rec(math.MaxInt64 - 1), 2, math.MaxInt64 - 1, math.MaxInt64, -1},
		{"overflow+small", rec(math.MaxInt64, 5), rec(), 2, 5, math.MaxInt64, -1},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			a := *tc.a // merge mutates the receiver; keep the fixtures intact
			a.Merge(tc.b)
			if a.Count() != tc.count || a.Min() != tc.min || a.Max() != tc.max {
				t.Fatalf("count/min/max = %d/%d/%d, want %d/%d/%d",
					a.Count(), a.Min(), a.Max(), tc.count, tc.min, tc.max)
			}
			if tc.p50 >= 0 {
				if got := a.P50(); got != tc.p50 {
					t.Fatalf("P50 = %d, want %d", got, tc.p50)
				}
			}
			// Quantile extremes always collapse to the recorded min/max,
			// even for the overflow bucket whose midpoint is unrepresentable.
			if a.Count() > 0 && (a.Quantile(0) != tc.min || a.Quantile(1) != tc.max) {
				t.Fatalf("quantile extremes %d/%d, want %d/%d", a.Quantile(0), a.Quantile(1), tc.min, tc.max)
			}
		})
	}
}

// TestHistogramMergeCommutes pins that merge order cannot matter — the
// property that lets artifacts from different tools fold in any order.
func TestHistogramMergeCommutes(t *testing.T) {
	t.Parallel()
	var a1, b1, a2, b2 Histogram
	for i := int64(0); i < 1000; i++ {
		a1.Record(i * i)
		a2.Record(i * i)
		b1.Record(i << 20)
		b2.Record(i << 20)
	}
	a1.Merge(&b1) // a then b
	b2.Merge(&a2) // b then a
	for _, q := range []float64{0, 0.1, 0.5, 0.99, 1} {
		if a1.Quantile(q) != b2.Quantile(q) {
			t.Fatalf("Quantile(%v): %d vs %d depending on merge order", q, a1.Quantile(q), b2.Quantile(q))
		}
	}
	if a1.Count() != b2.Count() || a1.Mean() != b2.Mean() {
		t.Fatal("merge order changed count or mean")
	}
}

// TestHistogramSnapshotRoundTrip pins the artifact path: Snapshot →
// JSON → FromSnapshot → Merge is lossless, so blload and simsvc artifacts
// aggregate exactly like live histograms.
func TestHistogramSnapshotRoundTrip(t *testing.T) {
	t.Parallel()
	var h Histogram
	for i := int64(0); i < 10000; i++ {
		h.Record(i * 31 % (1 << 34))
	}
	h.Record(0)
	h.Record(math.MaxInt64)

	b, err := json.Marshal(h.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(b, &snap); err != nil {
		t.Fatal(err)
	}
	back, err := FromSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	if back.Count() != h.Count() || back.Min() != h.Min() || back.Max() != h.Max() || back.Mean() != h.Mean() {
		t.Fatalf("round trip lost aggregates: %d/%d/%d/%v vs %d/%d/%d/%v",
			back.Count(), back.Min(), back.Max(), back.Mean(), h.Count(), h.Min(), h.Max(), h.Mean())
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.999, 1} {
		if back.Quantile(q) != h.Quantile(q) {
			t.Fatalf("Quantile(%v) = %d after round trip, want %d", q, back.Quantile(q), h.Quantile(q))
		}
	}
	// Round-tripped histograms merge like live ones.
	var live Histogram
	live.Record(7)
	live.Merge(back)
	if live.Count() != h.Count()+1 {
		t.Fatalf("merge after round trip: count %d, want %d", live.Count(), h.Count()+1)
	}

	// Empty snapshot round-trips to an empty histogram.
	empty, err := FromSnapshot((&Histogram{}).Snapshot())
	if err != nil || empty.Count() != 0 || empty.Quantile(0.5) != 0 {
		t.Fatalf("empty round trip: %v, count %d", err, empty.Count())
	}
}

// TestFromSnapshotRejectsMalformed covers hostile or corrupt artifacts.
func TestFromSnapshotRejectsMalformed(t *testing.T) {
	t.Parallel()
	if _, err := FromSnapshot(Snapshot{Buckets: [][2]uint64{{histBuckets, 1}}, Count: 1}); err == nil {
		t.Fatal("out-of-range bucket index accepted")
	}
	if _, err := FromSnapshot(Snapshot{Buckets: [][2]uint64{{3, 2}}, Count: 5}); err == nil {
		t.Fatal("count/bucket-sum mismatch accepted")
	}
}
