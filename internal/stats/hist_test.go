package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestHistogramExactSmallValues(t *testing.T) {
	t.Parallel()
	var h Histogram
	for v := int64(0); v < 64; v++ {
		h.Record(v)
	}
	if h.Count() != 64 || h.Min() != 0 || h.Max() != 63 {
		t.Fatalf("count=%d min=%d max=%d", h.Count(), h.Min(), h.Max())
	}
	// Values below 64 are recorded exactly, so quantiles are exact.
	for _, tc := range []struct {
		q    float64
		want int64
	}{{0, 0}, {0.5, 31}, {1, 63}} {
		if got := h.Quantile(tc.q); got != tc.want {
			t.Errorf("Quantile(%v) = %d, want %d", tc.q, got, tc.want)
		}
	}
	if got := h.Mean(); got != 31.5 {
		t.Errorf("Mean = %v, want 31.5", got)
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	t.Parallel()
	rnd := rand.New(rand.NewSource(7))
	var h Histogram
	sample := make([]float64, 0, 20000)
	for i := 0; i < 20000; i++ {
		// Log-uniform latencies across six orders of magnitude.
		v := int64(math.Exp(rnd.Float64() * math.Log(5e9)))
		h.Record(v)
		sample = append(sample, float64(v))
	}
	sort.Float64s(sample)
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		exact := Quantile(sample, q)
		got := float64(h.Quantile(q))
		if relerr := math.Abs(got-exact) / exact; relerr > 0.03 {
			t.Errorf("Quantile(%v) = %v, exact %v (relative error %.3f > 0.03)", q, got, exact, relerr)
		}
	}
	if got, want := float64(h.Quantile(1)), sample[len(sample)-1]; got != want {
		t.Errorf("max quantile %v != recorded max %v", got, want)
	}
}

func TestHistogramMergeEqualsCombinedRecording(t *testing.T) {
	t.Parallel()
	rnd := rand.New(rand.NewSource(9))
	var a, b, all Histogram
	for i := 0; i < 5000; i++ {
		v := rnd.Int63n(1 << 30)
		all.Record(v)
		if i%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
	}
	a.Merge(&b)
	if a.Count() != all.Count() || a.Min() != all.Min() || a.Max() != all.Max() {
		t.Fatalf("merged count/min/max = %d/%d/%d, want %d/%d/%d",
			a.Count(), a.Min(), a.Max(), all.Count(), all.Min(), all.Max())
	}
	for _, q := range []float64{0.25, 0.5, 0.95, 0.999} {
		if a.Quantile(q) != all.Quantile(q) {
			t.Errorf("merged Quantile(%v) = %d, combined %d", q, a.Quantile(q), all.Quantile(q))
		}
	}
	if a.Mean() != all.Mean() {
		t.Errorf("merged Mean %v != combined %v", a.Mean(), all.Mean())
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	t.Parallel()
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Count() != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram not all-zero")
	}
	h.Record(-5) // clamps to 0
	if h.Min() != 0 || h.Max() != 0 {
		t.Fatalf("negative record: min=%d max=%d", h.Min(), h.Max())
	}
	var big Histogram
	big.Record(math.MaxInt64)
	big.Record(0)
	if big.Max() != math.MaxInt64 {
		t.Fatalf("max = %d", big.Max())
	}
	if got := big.Quantile(1); got != math.MaxInt64 {
		t.Fatalf("Quantile(1) = %d", got)
	}
	// A single value is every quantile.
	var one Histogram
	one.Record(1 << 40)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := one.Quantile(q); got != 1<<40 {
			t.Fatalf("single-sample Quantile(%v) = %d", q, got)
		}
	}
}

func TestHistogramBucketIndexBounds(t *testing.T) {
	t.Parallel()
	// Every representable value maps into the bucket array, and bucket
	// representatives stay within the bucket's own octave.
	for _, v := range []int64{0, 1, 63, 64, 65, 127, 128, 1 << 20, 1<<62 - 1, 1 << 62, math.MaxInt64} {
		idx := histIndex(v)
		if idx < 0 || idx >= histBuckets {
			t.Fatalf("histIndex(%d) = %d outside [0,%d)", v, idx, histBuckets)
		}
		rep := histValue(idx)
		if v >= 64 {
			if rep < v/2 || (v > 0 && rep > v*2 && v < math.MaxInt64/2) {
				t.Fatalf("histValue(histIndex(%d)) = %d, off by more than 2x", v, rep)
			}
		}
	}
}
