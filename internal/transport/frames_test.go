package transport

import (
	"errors"
	"testing"

	"ballsintoleaves/internal/proto"
	"ballsintoleaves/internal/wire"
)

func TestHelloRoundTrip(t *testing.T) {
	t.Parallel()
	var w wire.Writer
	appendHello(&w, 0xbeef)
	id, err := decodeHello(w.Bytes())
	if err != nil || id != 0xbeef {
		t.Fatalf("decodeHello = %v, %v", id, err)
	}
}

func TestHelloRejectsBadVersionAndZeroID(t *testing.T) {
	t.Parallel()
	var w wire.Writer
	w.Byte(frameHello)
	w.Uvarint(protocolVersion + 1)
	w.Uvarint(7)
	if _, err := decodeHello(w.Bytes()); err == nil {
		t.Fatal("future version accepted")
	}
	w.Reset()
	appendHello(&w, 0)
	if _, err := decodeHello(w.Bytes()); err == nil {
		t.Fatal("zero ID accepted")
	}
}

func TestConfigRoundTrip(t *testing.T) {
	t.Parallel()
	var w wire.Writer
	want := RunConfig{N: 64, Seed: 99, Variant: 2}
	appendConfig(&w, want)
	got, err := decodeConfig(w.Bytes())
	if err != nil || got != want {
		t.Fatalf("decodeConfig = %+v, %v", got, err)
	}
	w.Reset()
	appendConfig(&w, RunConfig{N: 0})
	if _, err := decodeConfig(w.Bytes()); err == nil {
		t.Fatal("n=0 accepted")
	}
}

func TestDataRoundTrip(t *testing.T) {
	t.Parallel()
	for _, payload := range [][]byte{nil, {}, {1}, {1, 2, 3, 0xff}} {
		var w wire.Writer
		appendData(&w, 12, payload)
		round, got, err := decodeData(w.Bytes())
		if err != nil || round != 12 {
			t.Fatalf("decodeData = round %d, %v", round, err)
		}
		if len(got) != len(payload) {
			t.Fatalf("payload = %v, want %v", got, payload)
		}
	}
}

func TestRoundFrameRoundTrip(t *testing.T) {
	t.Parallel()
	in := Round{
		Msgs: []proto.Message{
			{From: 3, Payload: []byte{9, 9}},
			{From: 5, Payload: nil},
			{From: 7, Payload: []byte{1}},
		},
		Crashed: []proto.ID{11, 13},
	}
	var w wire.Writer
	appendRound(&w, 4, in)
	round, out, err := decodeRound(w.Bytes())
	if err != nil || round != 4 {
		t.Fatalf("decodeRound = round %d, %v", round, err)
	}
	if len(out.Msgs) != 3 || out.Msgs[0].From != 3 || out.Msgs[2].From != 7 {
		t.Fatalf("msgs = %+v", out.Msgs)
	}
	if len(out.Msgs[0].Payload) != 2 || len(out.Msgs[1].Payload) != 0 {
		t.Fatalf("payloads = %+v", out.Msgs)
	}
	if len(out.Crashed) != 2 || out.Crashed[1] != 13 {
		t.Fatalf("crashed = %v", out.Crashed)
	}
}

// TestRoundFrameMalformed covers the per-connection failure paths a hostile
// or corrupt peer can trigger: truncated bodies, trailing bytes and absurd
// element counts must surface the wire sentinels and never panic.
func TestRoundFrameMalformed(t *testing.T) {
	t.Parallel()
	var w wire.Writer
	appendRound(&w, 4, Round{Msgs: []proto.Message{{From: 3, Payload: []byte{9, 9}}}})
	full := append([]byte(nil), w.Bytes()...)

	// Every truncation point is a clean ErrTruncated.
	for cut := 1; cut < len(full); cut++ {
		if _, _, err := decodeRound(full[:cut]); !errors.Is(err, wire.ErrTruncated) {
			t.Fatalf("cut at %d: err = %v, want ErrTruncated", cut, err)
		}
	}
	// Trailing bytes after a well-formed body are ErrTrailing.
	if _, _, err := decodeRound(append(append([]byte(nil), full...), 0xaa)); !errors.Is(err, wire.ErrTrailing) {
		t.Fatalf("trailing: err = %v, want ErrTrailing", err)
	}
	// A count field claiming more elements than bytes remain must be
	// rejected before any allocation sized by it.
	var huge wire.Writer
	huge.Byte(frameRound)
	huge.Uvarint(4)
	huge.Uvarint(1 << 40) // crash-notice count
	if _, _, err := decodeRound(huge.Bytes()); !errors.Is(err, wire.ErrTruncated) {
		t.Fatalf("huge count: err = %v, want ErrTruncated", err)
	}
}

func TestHaltRoundTrip(t *testing.T) {
	t.Parallel()
	want := Halt{Round: 9, Decided: true, Name: 5, DecidedRound: 7}
	var w wire.Writer
	appendHalt(&w, want)
	got, err := decodeHalt(w.Bytes())
	if err != nil || got != want {
		t.Fatalf("decodeHalt = %+v, %v", got, err)
	}
	w.Reset()
	appendHalt(&w, Halt{Round: 3})
	got, err = decodeHalt(w.Bytes())
	if err != nil || got.Decided || got.Round != 3 {
		t.Fatalf("undecided halt = %+v, %v", got, err)
	}
}

func TestWrongKindRejected(t *testing.T) {
	t.Parallel()
	var w wire.Writer
	appendHello(&w, 7)
	if _, err := decodeConfig(w.Bytes()); err == nil {
		t.Fatal("hello accepted as config")
	}
	if _, _, err := decodeRound(w.Bytes()); err == nil {
		t.Fatal("hello accepted as round")
	}
	if _, err := decodeHalt(w.Bytes()); err == nil {
		t.Fatal("hello accepted as halt")
	}
}
