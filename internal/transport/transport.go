// Package transport puts the synchronous message-passing model on a real
// network: it defines the lock-step round contract a process-facing
// transport must provide (broadcast a payload, collect the round, learn of
// crashes) and supplies two implementations that both reproduce
// internal/sim exactly — an in-process loopback for tests, examples and
// benchmarks, and a length-prefixed TCP transport in which n OS processes
// on real sockets execute the protocol end to end through a coordinator
// (cmd/blserve).
//
// # The round contract
//
// Computation proceeds in lock-step rounds numbered from 1, exactly as in
// the paper's model (§3): in every round each live process broadcasts one
// payload to all n participants — including itself — and then receives the
// payloads that were delivered to it. A process that fails to broadcast is
// crashed; a process that crashes during its broadcast may deliver that
// final payload to an arbitrary subset of recipients (over TCP that subset
// arises from a dropped connection or from scripted fault injection at the
// coordinator). Both implementations funnel their per-round crash choices
// through adversary.Strategy, so a schedule scripted here replays
// identically on internal/sim — the equivalence the integration tests
// assert.
//
// # Driving a process
//
// Run drives any Process (internal/core.Ball natively, or the public
// ballsintoleaves.Protocol through a ten-line adapter, as cmd/blserve does)
// over any Transport:
//
//	ep, _ := lb.Endpoint(id)        // or transport.Dial(addr, id, 0)
//	res, err := transport.Run(ep, ball, 0)
//
// The loopback hub and the TCP coordinator both collect the run's outcome
// into a Summary with the same shape as a sim.Result, which is what makes
// cross-engine assertions one-line comparisons.
package transport

import (
	"errors"
	"fmt"

	"ballsintoleaves/internal/proto"
)

// ErrCrashed is reported (wrapped) by Broadcast or Collect when the
// transport has determined that the local process is crashed: the
// coordinator killed it by fault injection, or its connection to the rest
// of the system is gone. By the model's rules the process must fall silent;
// Run translates this error into RunResult.Crashed.
var ErrCrashed = errors.New("transport: local process crashed")

// Round is everything one process receives in one lock-step round.
type Round struct {
	// Msgs are the payloads delivered to this process, in ascending sender
	// ID order, the process's own broadcast included. Payload slices are
	// only valid until the next Collect call; recipients that retain them
	// must copy.
	Msgs []proto.Message
	// Crashed lists the processes newly observed to have crashed in this
	// round, in crash order. The protocol itself infers crashes from
	// silence; this field exists for logging and operational visibility.
	Crashed []proto.ID
}

// Halt is a process's clean sign-off after its state machine reports Done:
// it will neither broadcast nor expect deliveries from the round after
// Round onwards. Decided carries the process's renaming decision to the
// transport's summary; an undecided halt (a driver giving up) leaves it
// false.
type Halt struct {
	// Round is the last round the process participated in.
	Round int
	// Decided reports whether the process decided a name.
	Decided bool
	// Name is the decided name in 1..n (when Decided).
	Name int
	// DecidedRound is the round in which the decision was made (when
	// Decided); it can be earlier than Round, since a process keeps
	// participating until every ball in its view holds a name.
	DecidedRound int
}

// Transport is one process's view of the synchronous lock-step network.
// Implementations must deliver every correct participant's broadcast to
// every participant each round; partial delivery is permitted only for a
// crashing sender's final round. Methods are called from a single
// goroutine in strict Broadcast(r) → Collect(r) → [Halt] order.
type Transport interface {
	// Broadcast submits this process's payload for the given round. The
	// payload is consumed synchronously (implementations copy or encode it
	// before returning), so callers may reuse the backing buffer — as the
	// protocol state machines do.
	Broadcast(round int, payload []byte) error

	// Collect blocks until the given round is complete and returns its
	// deliveries. A wrapped ErrCrashed means the local process itself is
	// considered crashed and must fall silent.
	Collect(round int) (Round, error)

	// Halt announces a clean halt after h.Round, reports the process's
	// decision to the transport's summary, and releases resources. After
	// Halt the transport must not be used.
	Halt(h Halt) error
}

// Process is the state-machine surface Run drives. internal/core.Ball
// satisfies it directly; the public ballsintoleaves.Protocol matches it up
// to the message type and adapts in a few lines (see cmd/blserve).
type Process interface {
	// Send returns the payload to broadcast in the given round. The slice
	// may be reused across rounds.
	Send(round int) []byte
	// Deliver hands the process every message received in the round.
	Deliver(round int, msgs []proto.Message)
	// Decided reports the decided name once one is held.
	Decided() (name int, ok bool)
	// Done reports whether the process has halted.
	Done() bool
}

// RunResult is the local outcome of driving one process with Run.
type RunResult struct {
	// Decided, Name and DecidedRound mirror the process's decision.
	Decided      bool
	Name         int
	DecidedRound int
	// Rounds is the number of rounds the process fully executed.
	Rounds int
	// Crashed reports that the transport declared this process crashed
	// (fault injection or a lost connection); the fields above then
	// reflect state as of the last completed round.
	Crashed bool
}

// Run drives one process over t until it halts or crashes, providing the
// lock-step loop documented on ballsintoleaves.NewProtocol. maxRounds
// bounds the run as a livelock safety net (<= 0 selects 4096); exceeding it
// halts the process undecided and returns an error.
func Run(t Transport, p Process, maxRounds int) (RunResult, error) {
	if maxRounds <= 0 {
		maxRounds = 4096
	}
	var res RunResult
	for round := 1; ; round++ {
		if round > maxRounds {
			_ = t.Halt(Halt{Round: round - 1})
			return res, fmt.Errorf("transport: exceeded %d rounds without halting", maxRounds)
		}
		if err := t.Broadcast(round, p.Send(round)); err != nil {
			return runCrash(res, err)
		}
		rd, err := t.Collect(round)
		if err != nil {
			return runCrash(res, err)
		}
		p.Deliver(round, rd.Msgs)
		res.Rounds = round
		if !res.Decided {
			if name, ok := p.Decided(); ok {
				res.Decided, res.Name, res.DecidedRound = true, name, round
			}
		}
		if p.Done() {
			err := t.Halt(Halt{
				Round:        round,
				Decided:      res.Decided,
				Name:         res.Name,
				DecidedRound: res.DecidedRound,
			})
			return res, err
		}
	}
}

// runCrash classifies a transport failure: ErrCrashed is the model's
// expected outcome for a killed process, anything else is a genuine error.
func runCrash(res RunResult, err error) (RunResult, error) {
	if errors.Is(err, ErrCrashed) {
		res.Crashed = true
		return res, nil
	}
	return res, err
}
