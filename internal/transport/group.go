package transport

import (
	"errors"
	"fmt"
	"sync"

	"ballsintoleaves/internal/proto"
)

// RunAll drives one process per member over a fresh Loopback hub and
// returns the hub's system-wide Summary: the whole lock-step execution —
// construct, broadcast, collect, halt — in one call. mk builds the process
// for each member (it is called from the spawning goroutine, concurrently
// safe construction is the caller's concern only if mk shares state).
//
// It is the one-shot group primitive used by the name service's distributed
// epoch runner and by examples: a caller that wants per-process results or
// a TCP substrate drives Run per endpoint instead.
func RunAll(members []proto.ID, cfg NetConfig, mk func(id proto.ID) (Process, error), maxRounds int) (Summary, error) {
	lb, err := NewLoopback(members, cfg)
	if err != nil {
		return Summary{}, err
	}
	procs := make([]Process, len(members))
	eps := make([]Transport, len(members))
	for i, id := range members {
		if procs[i], err = mk(id); err != nil {
			return Summary{}, fmt.Errorf("transport: building process %v: %w", id, err)
		}
		if eps[i], err = lb.Endpoint(id); err != nil {
			return Summary{}, err
		}
	}
	errs := make([]error, len(members))
	var wg sync.WaitGroup
	for i := range members {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = Run(eps[i], procs[i], maxRounds)
		}(i)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return lb.Summary(), err
	}
	return lb.Summary(), nil
}
