package transport

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"ballsintoleaves/internal/proto"
	"ballsintoleaves/internal/wire"
)

// The TCP transport is a star: a coordinator owns the listening socket,
// admits exactly n participants, and relays lock-step rounds between them
// over length-prefixed frames. The coordinator is not a participant — it
// runs no protocol state machine — but it is the component that renders
// the paper's failure model onto real connections:
//
//   - a connection that drops before the round's payload arrived is a
//     crash with no final message;
//   - a connection that delivered its payload and then drops is a crash
//     whose final broadcast reached the coordinator and is relayed intact
//     (the adversary-chosen subset is "everyone");
//   - scripted fault injection (NetConfig.Adversary, blserve's
//     -crash-round/-crash-id) crashes a healthy sender mid-broadcast and
//     relays its final payload to the adversary's chosen subset only —
//     partial delivery of a crashing sender's final round, the exact
//     schedule internal/sim replays for the equivalence tests.
//
// Malformed traffic (truncated frames, trailing bytes, oversized length
// prefixes, wrong rounds) is never trusted: the offending connection is
// closed and its process is treated as crashed, per-connection, without
// affecting the rest of the run.

// CoordinatorConfig parameterizes Serve.
type CoordinatorConfig struct {
	// Run is the configuration distributed to every client: the system
	// size n (also the number of connections admitted), the shared seed,
	// and the opaque algorithm variant.
	Run RunConfig
	// Net configures fault injection and the crash budget.
	Net NetConfig
	// MaxRounds aborts runs that exceed it. Zero means 10n + 64.
	MaxRounds int
	// IOTimeout bounds every single read or write on a connection; a peer
	// that stalls longer is treated as crashed. Zero means 30 seconds.
	IOTimeout time.Duration
	// Logf, when non-nil, receives operational log lines (admissions,
	// crashes, round progress).
	Logf func(format string, args ...any)
}

func (cfg *CoordinatorConfig) normalize() error {
	if cfg.Run.N < 1 {
		return fmt.Errorf("transport: coordinator needs n >= 1, got %d", cfg.Run.N)
	}
	if cfg.MaxRounds <= 0 {
		cfg.MaxRounds = 10*cfg.Run.N + 64
	}
	if cfg.IOTimeout <= 0 {
		cfg.IOTimeout = 30 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	return nil
}

// conn wraps one admitted participant's connection.
type tcpMember struct {
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
	rbuf []byte
	dead bool // connection unusable (dropped, malformed, or closed by us)
}

// Serve admits n participants on ln, distributes the run configuration,
// drives lock-step rounds until every participant has halted or crashed,
// and returns the system-wide Summary. The decisions reported by cleanly
// halting participants are validated for uniqueness before returning.
// Serve closes every accepted connection; it does not close ln.
func Serve(ln net.Listener, cfg CoordinatorConfig) (Summary, error) {
	if err := cfg.normalize(); err != nil {
		return Summary{}, err
	}

	members, err := admit(ln, cfg)
	if err != nil {
		for _, m := range members {
			m.conn.Close()
		}
		return Summary{}, err
	}
	defer func() {
		for _, m := range members {
			m.conn.Close()
		}
	}()

	ids := make([]proto.ID, 0, len(members))
	for id := range members {
		ids = append(ids, id)
	}
	fab, err := newFabric(ids, cfg.Net)
	if err != nil {
		return Summary{}, err
	}
	ordered := make([]*tcpMember, len(fab.members))
	for i, id := range fab.members {
		ordered[i] = members[id]
	}

	// Distribute the run configuration; a client we cannot reach is dead
	// before round 1 and will be crashed by the nil payload below.
	var w wire.Writer
	for i, m := range ordered {
		w.Reset()
		appendConfig(&w, cfg.Run)
		if err := writeFrame(m, w.Bytes(), cfg.IOTimeout); err != nil {
			cfg.Logf("member %v unreachable at config: %v", fab.members[i], err)
			kill(m)
		}
	}

	payloads := make([][]byte, len(ordered))
	for round := 1; fab.active(); round++ {
		if round > cfg.MaxRounds {
			return fab.summary(), fmt.Errorf("transport: exceeded %d rounds without quiescing", cfg.MaxRounds)
		}

		// Collect half: one data frame (or a halt) from every live member.
		for i, m := range ordered {
			payloads[i] = nil
			if fab.status[i] != memberLive || m.dead {
				continue
			}
			payload, halt, err := readRoundFrame(m, round, cfg.IOTimeout)
			switch {
			case err != nil:
				cfg.Logf("round %d: member %v: %v (treating as crash)", round, fab.members[i], err)
				kill(m)
			case halt != nil:
				cfg.Logf("round %d: member %v halted after round %d", round, fab.members[i], halt.Round)
				fab.halt(i, *halt)
				kill(m)
			default:
				payloads[i] = payload
			}
		}
		if !fab.active() {
			break
		}

		deliveries, crashedNow := fab.step(round, payloads)
		for _, id := range crashedNow {
			cfg.Logf("round %d: member %v crashed", round, id)
		}

		// Deliver half: relay the round to every surviving member and cut
		// the connections of this round's victims.
		for i, m := range ordered {
			if fab.status[i] == memberCrashed && !m.dead {
				kill(m)
			}
			if fab.status[i] != memberLive || m.dead {
				continue
			}
			w.Reset()
			appendRound(&w, round, Round{Msgs: deliveries[i], Crashed: crashedNow})
			if err := writeFrame(m, w.Bytes(), cfg.IOTimeout); err != nil {
				cfg.Logf("round %d: member %v write failed: %v", round, fab.members[i], err)
				kill(m)
			}
		}
	}

	sum := fab.summary()
	if err := proto.Validate(sum.Decisions, cfg.Run.N); err != nil {
		return sum, err
	}
	return sum, nil
}

// admit accepts connections until n distinct participants have completed
// the hello handshake. Connections with invalid hellos are rejected and
// do not count.
func admit(ln net.Listener, cfg CoordinatorConfig) (map[proto.ID]*tcpMember, error) {
	members := make(map[proto.ID]*tcpMember, cfg.Run.N)
	for len(members) < cfg.Run.N {
		conn, err := ln.Accept()
		if err != nil {
			return members, fmt.Errorf("transport: accept: %w", err)
		}
		m := &tcpMember{
			conn: conn,
			br:   bufio.NewReader(conn),
			bw:   bufio.NewWriter(conn),
		}
		conn.SetReadDeadline(time.Now().Add(cfg.IOTimeout))
		body, err := wire.ReadFrame(m.br, m.rbuf, maxFrame)
		if err != nil {
			cfg.Logf("admission: bad handshake from %v: %v", conn.RemoteAddr(), err)
			conn.Close()
			continue
		}
		id, err := decodeHello(body)
		if err != nil {
			cfg.Logf("admission: rejecting %v: %v", conn.RemoteAddr(), err)
			conn.Close()
			continue
		}
		if _, dup := members[id]; dup {
			cfg.Logf("admission: rejecting %v: duplicate ID %v", conn.RemoteAddr(), id)
			conn.Close()
			continue
		}
		members[id] = m
		cfg.Logf("admitted %v as %v (%d/%d)", conn.RemoteAddr(), id, len(members), cfg.Run.N)
	}
	return members, nil
}

// readRoundFrame reads the next frame from a member during the collect
// half of the given round: a data frame for this round, or the member's
// halt sign-off.
func readRoundFrame(m *tcpMember, round int, timeout time.Duration) (payload []byte, halt *Halt, err error) {
	m.conn.SetReadDeadline(time.Now().Add(timeout))
	body, err := wire.ReadFrame(m.br, m.rbuf, maxFrame)
	if err != nil {
		return nil, nil, err
	}
	m.rbuf = body
	kind := byte(0)
	if len(body) > 0 {
		kind = body[0]
	}
	switch kind {
	case frameData:
		got, payload, err := decodeData(body)
		if err != nil {
			return nil, nil, err
		}
		if got != round {
			return nil, nil, fmt.Errorf("transport: data for round %d during round %d", got, round)
		}
		if payload == nil {
			payload = []byte{}
		}
		return payload, nil, nil
	case frameHalt:
		h, err := decodeHalt(body)
		if err != nil {
			return nil, nil, err
		}
		return nil, &h, nil
	default:
		return nil, nil, fmt.Errorf("transport: unexpected frame kind %d during round %d", kind, round)
	}
}

// writeFrame frames and flushes one body on a member's connection.
func writeFrame(m *tcpMember, body []byte, timeout time.Duration) error {
	m.conn.SetWriteDeadline(time.Now().Add(timeout))
	if err := wire.WriteFrame(m.bw, body); err != nil {
		return err
	}
	return m.bw.Flush()
}

// kill closes a member's connection and marks it unusable.
func kill(m *tcpMember) {
	m.conn.Close()
	m.dead = true
}

// Client is the participant side of the TCP transport: it implements
// Transport over one connection to a coordinator.
type Client struct {
	conn    net.Conn
	br      *bufio.Reader
	bw      *bufio.Writer
	id      proto.ID
	cfg     RunConfig
	w       wire.Writer
	rbuf    []byte
	timeout time.Duration
}

// Dial connects to a coordinator, performs the hello handshake, and
// receives the run configuration. timeout bounds the dial and every
// subsequent read or write (0 means 30 seconds); because rounds are
// lock-step, a full round trip is bounded by the slowest participant, so
// the timeout should be generous.
func Dial(addr string, id proto.ID, timeout time.Duration) (*Client, error) {
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	c := &Client{
		conn:    conn,
		br:      bufio.NewReader(conn),
		bw:      bufio.NewWriter(conn),
		id:      id,
		timeout: timeout,
	}
	c.w.Reset()
	appendHello(&c.w, id)
	if err := c.flushFrame(); err != nil {
		conn.Close()
		return nil, fmt.Errorf("transport: hello: %w", err)
	}
	body, err := c.readFrame()
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("transport: awaiting config: %w", err)
	}
	cfg, err := decodeConfig(body)
	if err != nil {
		conn.Close()
		return nil, err
	}
	c.cfg = cfg
	return c, nil
}

// ID returns the process identifier this client joined with.
func (c *Client) ID() proto.ID { return c.id }

// Config returns the run configuration the coordinator distributed.
func (c *Client) Config() RunConfig { return c.cfg }

// Broadcast implements Transport.
func (c *Client) Broadcast(round int, payload []byte) error {
	c.w.Reset()
	appendData(&c.w, round, payload)
	if err := c.flushFrame(); err != nil {
		return fmt.Errorf("broadcast round %d: %w: %v", round, ErrCrashed, err)
	}
	return nil
}

// Collect implements Transport. A connection severed by the coordinator —
// fault injection, a protocol violation, or a coordinator failure — means
// this process can no longer participate and surfaces as ErrCrashed.
func (c *Client) Collect(round int) (Round, error) {
	body, err := c.readFrame()
	if err != nil {
		return Round{}, fmt.Errorf("collect round %d: %w: %v", round, ErrCrashed, err)
	}
	got, rd, err := decodeRound(body)
	if err != nil {
		return Round{}, fmt.Errorf("collect round %d: %w", round, err)
	}
	if got != round {
		return Round{}, fmt.Errorf("transport: round frame for %d while collecting %d", got, round)
	}
	return rd, nil
}

// Halt implements Transport: it sends the sign-off frame and closes the
// connection.
func (c *Client) Halt(h Halt) error {
	c.w.Reset()
	appendHalt(&c.w, h)
	err := c.flushFrame()
	c.conn.Close()
	return err
}

// Close releases the connection without a sign-off (the coordinator will
// observe it as a crash). It is safe to call after Halt.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) flushFrame() error {
	c.conn.SetWriteDeadline(time.Now().Add(c.timeout))
	if err := wire.WriteFrame(c.bw, c.w.Bytes()); err != nil {
		return err
	}
	return c.bw.Flush()
}

func (c *Client) readFrame() ([]byte, error) {
	c.conn.SetReadDeadline(time.Now().Add(c.timeout))
	body, err := wire.ReadFrame(c.br, c.rbuf, maxFrame)
	if err != nil {
		if errors.Is(err, io.EOF) {
			return nil, fmt.Errorf("connection closed by coordinator")
		}
		return nil, err
	}
	c.rbuf = body
	return body, nil
}
