package transport_test

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	bil "ballsintoleaves"
	"ballsintoleaves/internal/adversary"
	"ballsintoleaves/internal/core"
	"ballsintoleaves/internal/ids"
	"ballsintoleaves/internal/proto"
	"ballsintoleaves/internal/sim"
	"ballsintoleaves/internal/transport"
)

// bilProcess adapts the public ballsintoleaves.Protocol to the transport
// driver — the same adapter cmd/blserve uses, so this test exercises the
// exact state-machine path a real blserve client runs.
type bilProcess struct{ p *bil.Protocol }

func (a bilProcess) Send(round int) []byte { return a.p.Send(round) }
func (a bilProcess) Deliver(round int, msgs []proto.Message) {
	conv := make([]bil.Message, len(msgs))
	for i, m := range msgs {
		conv[i] = bil.Message{From: uint64(m.From), Payload: m.Payload}
	}
	a.p.Deliver(round, conv)
}
func (a bilProcess) Decided() (int, bool) { return a.p.Decided() }
func (a bilProcess) Done() bool           { return a.p.Done() }

// dialAndRun is one blserve-style client: dial, build the public protocol
// from the coordinator's config, and drive it to completion.
func dialAndRun(addr string, id proto.ID) (transport.RunResult, error) {
	c, err := transport.Dial(addr, id, 10*time.Second)
	if err != nil {
		return transport.RunResult{}, err
	}
	defer c.Close()
	cfg := c.Config()
	p, err := bil.NewProtocol(cfg.N, cfg.Seed, uint64(id), bil.Algorithm(cfg.Variant))
	if err != nil {
		return transport.RunResult{}, err
	}
	return transport.Run(c, bilProcess{p}, 10*cfg.N+64)
}

// TestTCPMatchesSimWithScriptedCrash is the transport's acceptance test: 8
// client processes execute bil.Protocol over real TCP sockets through the
// coordinator while the scripted adversary crashes one of them
// mid-broadcast in round 4, delivering its final message to only
// alternating survivors. The run must terminate with unique names and be
// field-for-field identical — decisions (names and rounds), crash set,
// round count, message and byte traffic — to internal/sim under the
// equivalent adversary schedule.
func TestTCPMatchesSimWithScriptedCrash(t *testing.T) {
	t.Parallel()
	const (
		n          = 8
		seed       = 7
		crashRound = 4
	)
	labels := ids.Random(n, 123)
	victim := labels[2]
	script := func() adversary.Strategy { return &adversary.Scripted{Round: crashRound, Victim: victim} }

	// Reference execution on the single-threaded engine.
	balls, err := core.NewBalls(core.Config{N: n, Seed: seed, Strategy: core.RandomPaths, CheckInvariants: true}, labels)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := sim.New(sim.Config{Adversary: script()}, core.Processes(balls))
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Crashed) != 1 || want.Crashed[0] != victim {
		t.Fatalf("reference run crashed %v, want exactly %v", want.Crashed, victim)
	}

	// The same system over TCP.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	var (
		mu      sync.Mutex
		wg      sync.WaitGroup
		results = make(map[proto.ID]transport.RunResult, n)
	)
	for _, id := range labels {
		wg.Add(1)
		go func(id proto.ID) {
			defer wg.Done()
			res, err := dialAndRun(ln.Addr().String(), id)
			if err != nil {
				t.Errorf("client %v: %v", id, err)
			}
			mu.Lock()
			results[id] = res
			mu.Unlock()
		}(id)
	}

	got, err := transport.Serve(ln, transport.CoordinatorConfig{
		Run:       transport.RunConfig{N: n, Seed: seed, Variant: uint64(bil.BallsIntoLeaves)},
		Net:       transport.NetConfig{Adversary: script()},
		IOTimeout: 10 * time.Second,
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	assertSummaryMatches(t, got, want)
	if err := proto.Validate(got.Decisions, n); err != nil {
		t.Fatal(err)
	}
	if len(got.Decisions) != n-1 {
		t.Fatalf("%d survivors decided, want %d", len(got.Decisions), n-1)
	}
	if !results[victim].Crashed {
		t.Fatalf("victim result = %+v, want Crashed", results[victim])
	}
	for _, d := range want.Decisions {
		res := results[d.ID]
		if !res.Decided || res.Name != d.Name || res.DecidedRound != d.Round {
			t.Fatalf("client %v local result %+v, want name %d round %d", d.ID, res, d.Name, d.Round)
		}
	}
}

// TestTCPFailureFreeMatchesSim runs a crash-free system over sockets and
// pins it to the reference engine.
func TestTCPFailureFreeMatchesSim(t *testing.T) {
	t.Parallel()
	const (
		n    = 5
		seed = 3
	)
	labels := ids.Random(n, 9)
	balls, err := core.NewBalls(core.Config{N: n, Seed: seed, Strategy: core.RandomPaths}, labels)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := sim.New(sim.Config{}, core.Processes(balls))
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Run()
	if err != nil {
		t.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var wg sync.WaitGroup
	for _, id := range labels {
		wg.Add(1)
		go func(id proto.ID) {
			defer wg.Done()
			if _, err := dialAndRun(ln.Addr().String(), id); err != nil {
				t.Errorf("client %v: %v", id, err)
			}
		}(id)
	}
	got, err := transport.Serve(ln, transport.CoordinatorConfig{
		Run:       transport.RunConfig{N: n, Seed: seed, Variant: uint64(bil.BallsIntoLeaves)},
		IOTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	assertSummaryMatches(t, got, want)
}

// TestTCPConnectionDropIsMidBroadcastCrash covers the unscripted failure
// model: a client that vanishes without a halt sign-off is a crash. The
// client drops after fully participating in round 2, so the coordinator
// discovers the loss when collecting round 3 — equivalent to an adversary
// crashing it in round 3 with no final delivery, which is asserted against
// internal/sim.
func TestTCPConnectionDropIsMidBroadcastCrash(t *testing.T) {
	t.Parallel()
	const (
		n         = 4
		seed      = 11
		dropAfter = 2 // rounds the dropping client completes
	)
	labels := ids.Random(n, 77)
	dropper := labels[1]

	// Reference: the drop surfaces in round dropAfter+1 as a crash whose
	// final broadcast reaches nobody (it was never sent).
	script := adversary.Func{Label: "conn-drop", Fn: func(v adversary.RoundView) []adversary.CrashSpec {
		if v.Round() != dropAfter+1 {
			return nil
		}
		return []adversary.CrashSpec{{Victim: dropper, Deliver: adversary.DeliverNone}}
	}}
	balls, err := core.NewBalls(core.Config{N: n, Seed: seed, Strategy: core.RandomPaths}, labels)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := sim.New(sim.Config{Adversary: script}, core.Processes(balls))
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Run()
	if err != nil {
		t.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var wg sync.WaitGroup
	for _, id := range labels {
		wg.Add(1)
		go func(id proto.ID) {
			defer wg.Done()
			if id != dropper {
				if _, err := dialAndRun(ln.Addr().String(), id); err != nil {
					t.Errorf("client %v: %v", id, err)
				}
				return
			}
			// The dropper participates for dropAfter rounds and then
			// vanishes without a sign-off.
			c, err := transport.Dial(ln.Addr().String(), id, 10*time.Second)
			if err != nil {
				t.Errorf("dropper dial: %v", err)
				return
			}
			cfg := c.Config()
			p, err := bil.NewProtocol(cfg.N, cfg.Seed, uint64(id), bil.Algorithm(cfg.Variant))
			if err != nil {
				t.Errorf("dropper protocol: %v", err)
				return
			}
			proc := bilProcess{p}
			for round := 1; round <= dropAfter; round++ {
				if err := c.Broadcast(round, proc.Send(round)); err != nil {
					t.Errorf("dropper round %d: %v", round, err)
					return
				}
				rd, err := c.Collect(round)
				if err != nil {
					t.Errorf("dropper round %d: %v", round, err)
					return
				}
				proc.Deliver(round, rd.Msgs)
			}
			c.Close()
		}(id)
	}
	got, err := transport.Serve(ln, transport.CoordinatorConfig{
		Run:       transport.RunConfig{N: n, Seed: seed, Variant: uint64(bil.BallsIntoLeaves)},
		IOTimeout: 10 * time.Second,
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	assertSummaryMatches(t, got, want)
}

// TestTCPAdmissionRejectsMalformedHandshakes asserts that garbage,
// oversized and duplicate handshakes are rejected per-connection while the
// coordinator keeps serving honest clients.
func TestTCPAdmissionRejectsMalformedHandshakes(t *testing.T) {
	t.Parallel()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	addr := ln.Addr().String()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// A stream of hostile connections first, then one honest client.
		for _, raw := range [][]byte{
			{0xff, 0xff, 0xff, 0xff},       // oversized length prefix
			{0x00, 0x00, 0x00, 0x05, 0x01}, // truncated frame body
			{0x00, 0x00, 0x00, 0x01, 0x63}, // well-framed garbage kind
		} {
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				t.Errorf("hostile dial: %v", err)
				return
			}
			conn.Write(raw)
			conn.Close()
		}
		if _, err := dialAndRun(addr, 42); err != nil {
			t.Errorf("honest client: %v", err)
		}
	}()

	sum, err := transport.Serve(ln, transport.CoordinatorConfig{
		Run:       transport.RunConfig{N: 1, Seed: 1, Variant: uint64(bil.BallsIntoLeaves)},
		IOTimeout: 10 * time.Second,
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if len(sum.Decisions) != 1 || sum.Decisions[0].ID != 42 || sum.Decisions[0].Name != 1 {
		t.Fatalf("summary = %+v", sum)
	}
}

// TestTCPVariantsOverSockets smoke-runs every tree algorithm end to end on
// sockets, checking unique-name termination (the equivalence tests above
// pin exact behavior for the default variant).
func TestTCPVariantsOverSockets(t *testing.T) {
	t.Parallel()
	for _, variant := range []bil.Algorithm{bil.EarlyTerminating, bil.RankDescent, bil.DeterministicLevelDescent} {
		t.Run(fmt.Sprint(variant), func(t *testing.T) {
			t.Parallel()
			const n = 4
			labels := ids.Random(n, 5)
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			defer ln.Close()
			var wg sync.WaitGroup
			for _, id := range labels {
				wg.Add(1)
				go func(id proto.ID) {
					defer wg.Done()
					if _, err := dialAndRun(ln.Addr().String(), id); err != nil {
						t.Errorf("client %v: %v", id, err)
					}
				}(id)
			}
			sum, err := transport.Serve(ln, transport.CoordinatorConfig{
				Run:       transport.RunConfig{N: n, Seed: 2, Variant: uint64(variant)},
				IOTimeout: 10 * time.Second,
			})
			if err != nil {
				t.Fatal(err)
			}
			wg.Wait()
			if len(sum.Decisions) != n {
				t.Fatalf("%d decisions, want %d: %+v", len(sum.Decisions), n, sum)
			}
		})
	}
}
