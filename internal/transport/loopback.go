package transport

import (
	"fmt"
	"sync"

	"ballsintoleaves/internal/proto"
)

// Loopback is the in-process Transport implementation: a hub that
// synchronizes lock-step rounds between goroutines with the exact
// delivery, crash and accounting semantics of the simulation engines. It
// is the substrate for tests, examples and benchmarks that want a real
// Transport without sockets, and the reference against which the TCP
// implementation is easiest to reason about.
//
// Usage: construct the hub with the full member set, hand each process
// goroutine its Endpoint, and drive each endpoint with Run (or the manual
// Broadcast/Collect/Halt loop). Once every member has halted or crashed,
// Summary reports the system-wide outcome.
type Loopback struct {
	mu   sync.Mutex
	cond *sync.Cond
	fab  *fabric

	round   int // round currently being collected
	sent    []bool
	pending [][]byte
	taken   []bool

	// Per-member results of the last closed round.
	inbox      []Round
	inboxRound []int
}

// NewLoopback builds a hub for the given members (distinct, non-zero IDs;
// order irrelevant) under the given network configuration.
func NewLoopback(members []proto.ID, cfg NetConfig) (*Loopback, error) {
	fab, err := newFabric(members, cfg)
	if err != nil {
		return nil, err
	}
	n := len(fab.members)
	l := &Loopback{
		fab:        fab,
		round:      1,
		sent:       make([]bool, n),
		pending:    make([][]byte, n),
		taken:      make([]bool, n),
		inbox:      make([]Round, n),
		inboxRound: make([]int, n),
	}
	l.cond = sync.NewCond(&l.mu)
	return l, nil
}

// Endpoint returns the Transport for the given member. Each member's
// endpoint can be taken once.
func (l *Loopback) Endpoint(id proto.ID) (Transport, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	idx, ok := l.fab.index[id]
	if !ok {
		return nil, fmt.Errorf("transport: %v is not a member of this loopback", id)
	}
	if l.taken[idx] {
		return nil, fmt.Errorf("transport: endpoint for %v already taken", id)
	}
	l.taken[idx] = true
	return &loopEnd{hub: l, idx: idx}, nil
}

// Summary reports the outcome collected so far; call it after every
// member's driver has returned.
func (l *Loopback) Summary() Summary {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.fab.summary()
}

// broadcast registers one member's payload for the round and closes the
// round once every live member has spoken.
func (l *Loopback) broadcast(idx, round int, payload []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.fab.status[idx] == memberCrashed {
		return fmt.Errorf("broadcast round %d: %w", round, ErrCrashed)
	}
	if l.fab.status[idx] == memberHalted {
		return fmt.Errorf("transport: broadcast after halt")
	}
	if round != l.round {
		return fmt.Errorf("transport: broadcast for round %d while round %d is open", round, l.round)
	}
	if l.sent[idx] {
		return fmt.Errorf("transport: duplicate broadcast in round %d", round)
	}
	// Senders reuse their encoding buffers across rounds; copy now, like
	// the engines do. A nil payload is normalized to empty: the member did
	// broadcast (silence, by contrast, means a crash).
	cp := make([]byte, len(payload))
	copy(cp, payload)
	l.pending[idx] = cp
	l.sent[idx] = true
	l.maybeCloseRound()
	return nil
}

// collect blocks until the round has closed for this member.
func (l *Loopback) collect(idx, round int) (Round, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.inboxRound[idx] < round && l.fab.status[idx] != memberCrashed {
		l.cond.Wait()
	}
	if l.inboxRound[idx] < round {
		return Round{}, fmt.Errorf("collect round %d: %w", round, ErrCrashed)
	}
	if l.inboxRound[idx] > round {
		return Round{}, fmt.Errorf("transport: collect for round %d after round %d closed", round, l.inboxRound[idx])
	}
	return l.inbox[idx], nil
}

// halt records a member's sign-off; the current round may become closable
// because the hub no longer waits for this member's broadcast.
func (l *Loopback) halt(idx int, h Halt) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.fab.halt(idx, h)
	l.maybeCloseRound()
	return nil
}

// maybeCloseRound closes the collecting round once every live member has
// broadcast. Callers hold l.mu.
func (l *Loopback) maybeCloseRound() {
	live := 0
	for i, st := range l.fab.status {
		if st != memberLive {
			continue
		}
		if !l.sent[i] {
			return
		}
		live++
	}
	if live == 0 {
		return
	}
	deliveries, crashedNow := l.fab.step(l.round, l.pending)
	for i := range l.fab.members {
		switch l.fab.status[i] {
		case memberLive:
			l.inbox[i] = Round{Msgs: deliveries[i], Crashed: crashedNow}
			l.inboxRound[i] = l.round
		case memberCrashed:
			// Wake any victim parked in collect so it learns of its death.
		}
		l.sent[i] = false
		l.pending[i] = nil
	}
	l.round++
	l.cond.Broadcast()
}

// loopEnd is one member's endpoint on the hub.
type loopEnd struct {
	hub *Loopback
	idx int
}

// Broadcast implements Transport.
func (e *loopEnd) Broadcast(round int, payload []byte) error {
	return e.hub.broadcast(e.idx, round, payload)
}

// Collect implements Transport.
func (e *loopEnd) Collect(round int) (Round, error) {
	return e.hub.collect(e.idx, round)
}

// Halt implements Transport.
func (e *loopEnd) Halt(h Halt) error {
	return e.hub.halt(e.idx, h)
}
