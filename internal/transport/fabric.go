package transport

import (
	"fmt"
	"sort"

	"ballsintoleaves/internal/adversary"
	"ballsintoleaves/internal/proto"
)

// Summary is the system-wide outcome a transport's server side (the
// loopback hub or the TCP coordinator) collects. Its fields deliberately
// mirror sim.Result so cross-engine equivalence assertions are direct
// comparisons.
type Summary struct {
	// Rounds is the number of rounds executed until every participant had
	// halted or crashed.
	Rounds int
	// Decisions holds the reported decisions of correct (never crashed)
	// participants, in ascending ID order.
	Decisions []proto.Decision
	// Crashed lists crashed participants in crash order.
	Crashed []proto.ID
	// Messages and Bytes count deliveries, excluding a process hearing its
	// own broadcast — the same accounting as the simulation engines.
	Messages int64
	Bytes    int64
}

// NetConfig parameterizes a transport-level network (loopback or TCP
// coordinator): which adversary injects crashes and under what budget.
type NetConfig struct {
	// Adversary plans mid-broadcast crashes each round; nil means
	// failure-free. Strategies observe rounds through adversary.RoundView
	// exactly as on the simulation engines, except that BallInfo
	// introspection is unavailable across a real network (Info always
	// reports false), so depth-targeting strategies degrade to no-ops.
	Adversary adversary.Strategy
	// Budget caps total crashes (the model's t). Zero means n-1.
	Budget int
}

// memberStatus tracks one participant through the run.
type memberStatus uint8

const (
	memberLive memberStatus = iota
	memberHalted
	memberCrashed
)

// fabric is the round-closing engine shared by the loopback hub and the
// TCP coordinator: given every live member's payload for a round, it
// applies the adversary's crash plan with the exact semantics of
// sim.Engine.step and produces each member's delivery list. It is not
// safe for concurrent use; callers serialize access.
type fabric struct {
	members []proto.ID // ascending
	index   map[proto.ID]int
	status  []memberStatus
	adv     adversary.Strategy
	budget  int

	round    int
	payloads [][]byte

	decisions []proto.Decision
	crashed   []proto.ID
	messages  int64
	bytes     int64
}

// newFabric validates and sorts the member set. Members must be distinct
// and non-zero.
func newFabric(members []proto.ID, cfg NetConfig) (*fabric, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("transport: no members")
	}
	sorted := make([]proto.ID, len(members))
	copy(sorted, members)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	index := make(map[proto.ID]int, len(sorted))
	for i, id := range sorted {
		if id == 0 {
			return nil, fmt.Errorf("transport: member IDs must be non-zero")
		}
		if _, dup := index[id]; dup {
			return nil, fmt.Errorf("transport: duplicate member ID %v", id)
		}
		index[id] = i
	}
	adv := cfg.Adversary
	if adv == nil {
		adv = adversary.None{}
	}
	budget := cfg.Budget
	if budget <= 0 {
		budget = len(sorted) - 1
	}
	return &fabric{
		members:  sorted,
		index:    index,
		status:   make([]memberStatus, len(sorted)),
		adv:      adv,
		budget:   budget,
		payloads: make([][]byte, len(sorted)),
	}, nil
}

// active reports whether any member is still live.
func (f *fabric) active() bool {
	for _, st := range f.status {
		if st == memberLive {
			return true
		}
	}
	return false
}

// halt records a member's clean sign-off and its decision. Crashed members
// cannot halt (their sign-off never arrives); repeated halts are ignored.
func (f *fabric) halt(idx int, h Halt) {
	if f.status[idx] != memberLive {
		return
	}
	f.status[idx] = memberHalted
	if h.Decided {
		f.decisions = append(f.decisions, proto.Decision{
			ID:    f.members[idx],
			Name:  h.Name,
			Round: h.DecidedRound,
		})
	}
}

// crash force-crashes a member outside the adversary's plan — the TCP
// coordinator calls it when a connection drops before the round's payload
// arrived. Real failures cannot be prevented, so the budget floors at zero
// rather than gating them.
func (f *fabric) crash(idx int) {
	if f.status[idx] != memberLive {
		return
	}
	f.status[idx] = memberCrashed
	f.crashed = append(f.crashed, f.members[idx])
	if f.budget > 0 {
		f.budget--
	}
}

// step closes one round: payloads[i] is member i's broadcast (nil for
// members that are halted, crashed, or failed to broadcast — the latter
// are crashed with nothing delivered). It consults the adversary, applies
// its crash plan with sim's semantics, and returns each member's delivery
// list (nil for non-live members) plus the IDs crashed during this round
// in crash order.
func (f *fabric) step(round int, payloads [][]byte) (deliveries [][]proto.Message, crashedNow []proto.ID) {
	f.round = round
	copy(f.payloads, payloads)
	preCrashed := len(f.crashed)

	// Members that should have broadcast but did not are crashed before the
	// adversary plans, with no final message (their payload never arrived).
	for i, st := range f.status {
		if st == memberLive && payloads[i] == nil {
			f.crash(i)
		}
	}

	// Adversary half: plan mid-broadcast crashes with full payload
	// visibility, exactly as in sim.Engine.step.
	view := &fabricView{fab: f}
	specs := f.adv.Plan(view)
	delivered := make(map[int]func(proto.ID) bool, len(specs))
	for _, spec := range specs {
		idx, ok := f.index[spec.Victim]
		if !ok || f.status[idx] != memberLive || f.budget == 0 {
			continue
		}
		if _, dup := delivered[idx]; dup {
			continue
		}
		f.budget--
		f.status[idx] = memberCrashed
		f.crashed = append(f.crashed, spec.Victim)
		deliver := spec.Deliver
		if deliver == nil {
			deliver = adversary.DeliverNone
		}
		delivered[idx] = deliver
	}

	// Deliver half: every surviving member receives the round's payloads in
	// ascending sender order, always including its own; a crashing sender's
	// final payload reaches only the recipients its delivery predicate
	// selects.
	deliveries = make([][]proto.Message, len(f.members))
	for i, st := range f.status {
		if st != memberLive {
			continue
		}
		var msgs []proto.Message
		for j, payload := range f.payloads {
			if payload == nil {
				continue
			}
			if f.status[j] == memberCrashed {
				deliver, midBroadcast := delivered[j]
				if !midBroadcast || !deliver(f.members[i]) {
					continue
				}
			}
			msgs = append(msgs, proto.Message{From: f.members[j], Payload: payload})
			if i != j {
				f.messages++
				f.bytes += int64(len(payload))
			}
		}
		deliveries[i] = msgs
	}
	return deliveries, f.crashed[preCrashed:]
}

// summary assembles the run's outcome; Rounds is the last round stepped.
func (f *fabric) summary() Summary {
	s := Summary{
		Rounds:   f.round,
		Crashed:  f.crashed,
		Messages: f.messages,
		Bytes:    f.bytes,
	}
	s.Decisions = append(s.Decisions, f.decisions...)
	sort.Slice(s.Decisions, func(i, j int) bool { return s.Decisions[i].ID < s.Decisions[j].ID })
	return s
}

// fabricView adapts the fabric's round state to adversary.RoundView.
type fabricView struct {
	fab   *fabric
	alive []proto.ID
}

func (v *fabricView) Round() int { return v.fab.round }
func (v *fabricView) N() int     { return len(v.fab.members) }

func (v *fabricView) Alive() []proto.ID {
	if v.alive == nil {
		for i, id := range v.fab.members {
			if v.fab.status[i] == memberLive {
				v.alive = append(v.alive, id)
			}
		}
	}
	return v.alive
}

func (v *fabricView) Payload(id proto.ID) []byte {
	idx, ok := v.fab.index[id]
	if !ok {
		return nil
	}
	return v.fab.payloads[idx]
}

// Info is unavailable across a network boundary: the transport never
// inspects process internals, so strong introspecting adversaries degrade
// gracefully.
func (v *fabricView) Info(proto.ID) (adversary.BallInfo, bool) {
	return adversary.BallInfo{}, false
}

func (v *fabricView) Budget() int { return v.fab.budget }
