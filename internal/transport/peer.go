package transport

import (
	"bufio"
	"net"
	"sync"
	"time"

	"ballsintoleaves/internal/wire"
)

// The lock-step fabric above models the paper's synchronous rounds. The
// replication layer (internal/namesvc/repl) needs something different: a
// long-lived, FIFO, length-prefixed message stream between two named
// coordinator processes, with no round structure and no coordinator in
// the middle. Peer is that primitive: a thin framed pipe over one TCP
// connection, sharing the wire framing (and its torn/oversized-frame
// rejection) with the round transport.
//
// Concurrency contract: one goroutine may call Send/Flush while another
// calls Recv. Send is internally locked, so multiple writers are safe;
// Recv is not, and must stay on a single goroutine.

// PeerMaxFrame bounds a single peer message. Replication snapshots carry
// a whole shard image (holder array + journal window), so the bound is
// far larger than the round transport's.
const PeerMaxFrame = 1 << 26

// Peer is one end of a framed peer link.
type Peer struct {
	conn net.Conn
	br   *bufio.Reader
	rbuf []byte

	mu sync.Mutex // guards bw
	bw *bufio.Writer
}

// NewPeer wraps an established connection (either side) as a peer link.
func NewPeer(conn net.Conn) *Peer {
	return &Peer{
		conn: conn,
		br:   bufio.NewReaderSize(conn, 1<<16),
		bw:   bufio.NewWriterSize(conn, 1<<16),
	}
}

// DialPeer opens a peer link to addr. timeout bounds the dial only;
// per-message deadlines are the caller's business via SetReadDeadline.
func DialPeer(addr string, timeout time.Duration) (*Peer, error) {
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	return NewPeer(conn), nil
}

// Send frames body and buffers it; call Flush to push buffered frames to
// the wire. deadline, when nonzero, bounds the write.
func (p *Peer) Send(body []byte, deadline time.Time) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.conn.SetWriteDeadline(deadline)
	return wire.WriteFrame(p.bw, body)
}

// Flush pushes buffered frames to the wire.
func (p *Peer) Flush(deadline time.Time) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.conn.SetWriteDeadline(deadline)
	return p.bw.Flush()
}

// SendNow frames body and flushes it in one step.
func (p *Peer) SendNow(body []byte, deadline time.Time) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.conn.SetWriteDeadline(deadline)
	if err := wire.WriteFrame(p.bw, body); err != nil {
		return err
	}
	return p.bw.Flush()
}

// Recv blocks for the next message. The returned slice is reused by the
// following Recv; the caller must copy anything it keeps. deadline, when
// nonzero, bounds the read (a zero deadline blocks indefinitely, until
// the link drops).
func (p *Peer) Recv(deadline time.Time) ([]byte, error) {
	p.conn.SetReadDeadline(deadline)
	body, err := wire.ReadFrame(p.br, p.rbuf, PeerMaxFrame)
	if err != nil {
		return nil, err
	}
	p.rbuf = body
	return body, nil
}

// Pending reports whether bytes of a further message are already buffered
// locally — a Recv would make progress without touching the network. The
// receive goroutine uses it to coalesce work (apply a whole burst, then
// acknowledge once) without ever blocking on a quiet link.
func (p *Peer) Pending() bool { return p.br.Buffered() > 0 }

// RemoteAddr reports the other end's address.
func (p *Peer) RemoteAddr() net.Addr { return p.conn.RemoteAddr() }

// Close severs the link. Safe to call concurrently with Send/Recv; both
// will return errors afterwards.
func (p *Peer) Close() error { return p.conn.Close() }
