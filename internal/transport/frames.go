package transport

import (
	"fmt"

	"ballsintoleaves/internal/proto"
	"ballsintoleaves/internal/wire"
)

// The TCP transport frames the repository's varint wire format
// (internal/wire) over length-prefixed frames (wire.ReadFrame /
// wire.WriteFrame). Every frame body starts with a one-byte kind tag;
// malformed bodies surface wire.ErrTruncated / wire.ErrTrailing as clean
// per-connection errors and the offending connection is treated as
// crashed — never trusted further, never a panic.
const (
	frameHello  byte = 1 // client → coordinator: protocol version + process ID
	frameConfig byte = 2 // coordinator → client: run parameters (n, seed, variant)
	frameData   byte = 3 // client → coordinator: one round's broadcast payload
	frameRound  byte = 4 // coordinator → client: one round's deliveries + crash notices
	frameHalt   byte = 5 // client → coordinator: clean sign-off with the decision
)

// protocolVersion is the hello handshake version; mismatches are rejected
// at admission.
const protocolVersion = 1

// maxFrame bounds any frame on the wire. A round frame carries at most n
// payloads of O(log n) bits each, so a megabyte accommodates systems far
// beyond what a single coordinator would serve.
const maxFrame = 1 << 20

// RunConfig is the run configuration the coordinator distributes to every
// admitted client in the config frame. Variant is opaque to the transport;
// cmd/blserve maps it to a ballsintoleaves.Algorithm.
type RunConfig struct {
	N       int
	Seed    uint64
	Variant uint64
}

func appendHello(w *wire.Writer, id proto.ID) {
	w.Byte(frameHello)
	w.Uvarint(protocolVersion)
	w.Uvarint(uint64(id))
}

func decodeHello(body []byte) (proto.ID, error) {
	r := wire.NewReader(body)
	if k := r.Byte(); r.Err() == nil && k != frameHello {
		return 0, fmt.Errorf("transport: expected hello, got frame kind %d", k)
	}
	version := r.Uvarint()
	id := proto.ID(r.Uvarint())
	if err := r.Close(); err != nil {
		return 0, err
	}
	if version != protocolVersion {
		return 0, fmt.Errorf("transport: protocol version %d, want %d", version, protocolVersion)
	}
	if id == 0 {
		return 0, fmt.Errorf("transport: process ID must be non-zero")
	}
	return id, nil
}

func appendConfig(w *wire.Writer, cfg RunConfig) {
	w.Byte(frameConfig)
	w.Uvarint(uint64(cfg.N))
	w.Uvarint(cfg.Seed)
	w.Uvarint(cfg.Variant)
}

func decodeConfig(body []byte) (RunConfig, error) {
	r := wire.NewReader(body)
	if k := r.Byte(); r.Err() == nil && k != frameConfig {
		return RunConfig{}, fmt.Errorf("transport: expected config, got frame kind %d", k)
	}
	cfg := RunConfig{
		N:       int(r.Uvarint()),
		Seed:    r.Uvarint(),
		Variant: r.Uvarint(),
	}
	if err := r.Close(); err != nil {
		return RunConfig{}, err
	}
	if cfg.N < 1 {
		return RunConfig{}, fmt.Errorf("transport: config n must be >= 1, got %d", cfg.N)
	}
	return cfg, nil
}

func appendData(w *wire.Writer, round int, payload []byte) {
	w.Byte(frameData)
	w.Uvarint(uint64(round))
	w.Raw(payload)
}

func decodeData(body []byte) (round int, payload []byte, err error) {
	r := wire.NewReader(body)
	if k := r.Byte(); r.Err() == nil && k != frameData {
		return 0, nil, fmt.Errorf("transport: expected data, got frame kind %d", k)
	}
	round = int(r.Uvarint())
	payload = r.Rest()
	if err := r.Close(); err != nil {
		return 0, nil, err
	}
	return round, payload, nil
}

func appendRound(w *wire.Writer, round int, rd Round) {
	w.Byte(frameRound)
	w.Uvarint(uint64(round))
	w.Uvarint(uint64(len(rd.Crashed)))
	for _, id := range rd.Crashed {
		w.Uvarint(uint64(id))
	}
	w.Uvarint(uint64(len(rd.Msgs)))
	for _, m := range rd.Msgs {
		w.Uvarint(uint64(m.From))
		w.Uvarint(uint64(len(m.Payload)))
		w.Raw(m.Payload)
	}
}

func decodeRound(body []byte) (round int, rd Round, err error) {
	r := wire.NewReader(body)
	if k := r.Byte(); r.Err() == nil && k != frameRound {
		return 0, Round{}, fmt.Errorf("transport: expected round, got frame kind %d", k)
	}
	round = int(r.Uvarint())
	nCrashed := r.Uvarint()
	if nCrashed > uint64(r.Remaining()) {
		return 0, Round{}, fmt.Errorf("%w: %d crash notices in %d bytes", wire.ErrTruncated, nCrashed, r.Remaining())
	}
	for i := uint64(0); i < nCrashed && r.Err() == nil; i++ {
		rd.Crashed = append(rd.Crashed, proto.ID(r.Uvarint()))
	}
	nMsgs := r.Uvarint()
	if nMsgs > uint64(r.Remaining()) {
		return 0, Round{}, fmt.Errorf("%w: %d messages in %d bytes", wire.ErrTruncated, nMsgs, r.Remaining())
	}
	for i := uint64(0); i < nMsgs && r.Err() == nil; i++ {
		from := proto.ID(r.Uvarint())
		length := r.Uvarint()
		if length > uint64(r.Remaining()) {
			return 0, Round{}, fmt.Errorf("%w: payload of %d bytes in %d remaining", wire.ErrTruncated, length, r.Remaining())
		}
		payload := r.Bytes(int(length))
		rd.Msgs = append(rd.Msgs, proto.Message{From: from, Payload: payload})
	}
	if err := r.Close(); err != nil {
		return 0, Round{}, err
	}
	return round, rd, nil
}

func appendHalt(w *wire.Writer, h Halt) {
	w.Byte(frameHalt)
	w.Uvarint(uint64(h.Round))
	decided := byte(0)
	if h.Decided {
		decided = 1
	}
	w.Byte(decided)
	w.Uvarint(uint64(h.Name))
	w.Uvarint(uint64(h.DecidedRound))
}

func decodeHalt(body []byte) (Halt, error) {
	r := wire.NewReader(body)
	if k := r.Byte(); r.Err() == nil && k != frameHalt {
		return Halt{}, fmt.Errorf("transport: expected halt, got frame kind %d", k)
	}
	h := Halt{Round: int(r.Uvarint())}
	h.Decided = r.Byte() == 1
	h.Name = int(r.Uvarint())
	h.DecidedRound = int(r.Uvarint())
	if err := r.Close(); err != nil {
		return Halt{}, err
	}
	return h, nil
}
