package transport_test

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"ballsintoleaves/internal/adversary"
	"ballsintoleaves/internal/core"
	"ballsintoleaves/internal/ids"
	"ballsintoleaves/internal/proto"
	"ballsintoleaves/internal/sim"
	"ballsintoleaves/internal/transport"
)

// driveLoopback runs one Ball per member over the hub and returns each
// member's local result.
func driveLoopback(t *testing.T, lb *transport.Loopback, balls []*core.Ball) map[proto.ID]transport.RunResult {
	t.Helper()
	var (
		mu      sync.Mutex
		wg      sync.WaitGroup
		results = make(map[proto.ID]transport.RunResult, len(balls))
	)
	for _, b := range balls {
		ep, err := lb.Endpoint(b.ID())
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(b *core.Ball, ep transport.Transport) {
			defer wg.Done()
			res, err := transport.Run(ep, b, 0)
			if err != nil {
				t.Errorf("member %v: %v", b.ID(), err)
			}
			mu.Lock()
			results[b.ID()] = res
			mu.Unlock()
		}(b, ep)
	}
	wg.Wait()
	return results
}

// TestLoopbackMatchesSim asserts that protocol executions over the loopback
// transport are indistinguishable from the reference engine — decisions
// (names and rounds), crash sets, round counts, and message/byte accounting
// — for failure-free runs, scripted mid-broadcast crashes in both the
// membership round and a path round, and a randomized adversary.
func TestLoopbackMatchesSim(t *testing.T) {
	t.Parallel()
	const n = 16
	labels := ids.Random(n, 31)
	cases := []struct {
		name string
		make func() adversary.Strategy
	}{
		{"none", func() adversary.Strategy { return adversary.None{} }},
		{"scripted-join-round", func() adversary.Strategy { return &adversary.Scripted{Round: 1, Victim: labels[3]} }},
		{"scripted-path-round", func() adversary.Strategy { return &adversary.Scripted{Round: 4, Victim: labels[0]} }},
		{"random", func() adversary.Strategy { return adversary.NewRandom(n/4, 7, 5) }},
	}
	for _, tc := range cases {
		for seed := uint64(0); seed < 2; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", tc.name, seed), func(t *testing.T) {
				t.Parallel()
				cfg := core.Config{N: n, Seed: seed, Strategy: core.RandomPaths, CheckInvariants: true}
				mkBalls := func() []*core.Ball {
					balls, err := core.NewBalls(cfg, labels)
					if err != nil {
						t.Fatal(err)
					}
					return balls
				}

				ref, err := sim.New(sim.Config{Adversary: tc.make()}, core.Processes(mkBalls()))
				if err != nil {
					t.Fatal(err)
				}
				want, err := ref.Run()
				if err != nil {
					t.Fatal(err)
				}

				lb, err := transport.NewLoopback(labels, transport.NetConfig{Adversary: tc.make()})
				if err != nil {
					t.Fatal(err)
				}
				results := driveLoopback(t, lb, mkBalls())
				got := lb.Summary()

				assertSummaryMatches(t, got, want)
				for _, d := range want.Decisions {
					res := results[d.ID]
					if !res.Decided || res.Name != d.Name || res.DecidedRound != d.Round {
						t.Fatalf("member %v local result %+v, want name %d round %d", d.ID, res, d.Name, d.Round)
					}
				}
				for _, id := range want.Crashed {
					if !results[id].Crashed {
						t.Fatalf("member %v did not observe its own crash: %+v", id, results[id])
					}
				}
			})
		}
	}
}

// assertSummaryMatches compares a transport summary against a reference
// engine result field by field.
func assertSummaryMatches(t *testing.T, got transport.Summary, want sim.Result) {
	t.Helper()
	if got.Rounds != want.Rounds {
		t.Fatalf("rounds = %d, want %d", got.Rounds, want.Rounds)
	}
	if !reflect.DeepEqual(got.Decisions, want.Decisions) {
		t.Fatalf("decisions = %+v, want %+v", got.Decisions, want.Decisions)
	}
	if !reflect.DeepEqual(got.Crashed, want.Crashed) {
		t.Fatalf("crashed = %v, want %v", got.Crashed, want.Crashed)
	}
	if got.Messages != want.Messages || got.Bytes != want.Bytes {
		t.Fatalf("traffic = %d msgs / %d bytes, want %d / %d",
			got.Messages, got.Bytes, want.Messages, want.Bytes)
	}
}

func TestLoopbackSingleMember(t *testing.T) {
	t.Parallel()
	labels := []proto.ID{42}
	lb, err := transport.NewLoopback(labels, transport.NetConfig{})
	if err != nil {
		t.Fatal(err)
	}
	balls, err := core.NewBalls(core.Config{N: 1, Seed: 1, Strategy: core.RandomPaths}, labels)
	if err != nil {
		t.Fatal(err)
	}
	results := driveLoopback(t, lb, balls)
	if res := results[42]; !res.Decided || res.Name != 1 {
		t.Fatalf("result = %+v, want name 1", res)
	}
	sum := lb.Summary()
	if len(sum.Decisions) != 1 || sum.Decisions[0].Name != 1 {
		t.Fatalf("summary = %+v", sum)
	}
}

func TestLoopbackEndpointErrors(t *testing.T) {
	t.Parallel()
	lb, err := transport.NewLoopback([]proto.ID{1, 2}, transport.NetConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lb.Endpoint(99); err == nil {
		t.Fatal("non-member endpoint handed out")
	}
	if _, err := lb.Endpoint(1); err != nil {
		t.Fatal(err)
	}
	if _, err := lb.Endpoint(1); err == nil {
		t.Fatal("endpoint handed out twice")
	}
	if _, err := transport.NewLoopback([]proto.ID{1, 1}, transport.NetConfig{}); err == nil {
		t.Fatal("duplicate members accepted")
	}
	if _, err := transport.NewLoopback([]proto.ID{0}, transport.NetConfig{}); err == nil {
		t.Fatal("zero member ID accepted")
	}
	if _, err := transport.NewLoopback(nil, transport.NetConfig{}); err == nil {
		t.Fatal("empty member set accepted")
	}
}

// TestLoopbackCrashedEndpointFallsSilent pins the transport's contract for
// a killed process: after the hub crashes it, Collect reports ErrCrashed
// and further broadcasts are rejected with the same sentinel.
func TestLoopbackCrashedEndpointFallsSilent(t *testing.T) {
	t.Parallel()
	labels := []proto.ID{10, 20, 30}
	lb, err := transport.NewLoopback(labels, transport.NetConfig{
		Adversary: &adversary.Scripted{Round: 1, Victim: 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for _, id := range []proto.ID{10, 30} {
		ep, err := lb.Endpoint(id)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(id proto.ID, ep transport.Transport) {
			defer wg.Done()
			if err := ep.Broadcast(1, []byte{1}); err != nil {
				t.Errorf("%v: %v", id, err)
				return
			}
			if _, err := ep.Collect(1); err != nil {
				t.Errorf("%v: %v", id, err)
				return
			}
			ep.Halt(transport.Halt{Round: 1})
		}(id, ep)
	}
	victim, err := lb.Endpoint(20)
	if err != nil {
		t.Fatal(err)
	}
	if err := victim.Broadcast(1, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := victim.Collect(1); !errors.Is(err, transport.ErrCrashed) {
		t.Fatalf("victim collect err = %v, want ErrCrashed", err)
	}
	if err := victim.Broadcast(2, []byte{1}); !errors.Is(err, transport.ErrCrashed) {
		t.Fatalf("victim broadcast err = %v, want ErrCrashed", err)
	}
	wg.Wait()
	sum := lb.Summary()
	if len(sum.Crashed) != 1 || sum.Crashed[0] != 20 {
		t.Fatalf("crashed = %v", sum.Crashed)
	}
}
