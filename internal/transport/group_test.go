package transport_test

import (
	"fmt"
	"sync"
	"testing"

	"ballsintoleaves/internal/adversary"
	"ballsintoleaves/internal/core"
	"ballsintoleaves/internal/ids"
	"ballsintoleaves/internal/proto"
	"ballsintoleaves/internal/transport"
	"ballsintoleaves/internal/tree"
)

// TestRunAllMatchesEndpointDriving pins RunAll against the manual
// endpoint-per-goroutine loop it replaces: same decisions, same accounting.
func TestRunAllMatchesEndpointDriving(t *testing.T) {
	t.Parallel()
	const n = 16
	labels := ids.Random(n, 4)
	cfg := core.Config{N: n, Seed: 9}
	mk := func(id proto.ID) (transport.Process, error) {
		return core.NewBall(cfg, tree.NewTopology(n), id)
	}
	got, err := transport.RunAll(labels, transport.NetConfig{}, mk, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := proto.Validate(got.Decisions, n); err != nil {
		t.Fatal(err)
	}
	if len(got.Decisions) != n {
		t.Fatalf("%d decisions, want %d", len(got.Decisions), n)
	}

	lb, err := transport.NewLoopback(labels, transport.NetConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for _, id := range labels {
		ep, err := lb.Endpoint(id)
		if err != nil {
			t.Fatal(err)
		}
		ball, err := core.NewBall(cfg, tree.NewTopology(n), id)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			transport.Run(ep, ball, 0)
		}()
	}
	wg.Wait()
	want := lb.Summary()
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("RunAll summary:\n%+v\nmanual loopback summary:\n%+v", got, want)
	}
}

// TestRunAllWithAdversary checks that RunAll threads the network config
// through: a scripted crash reduces the decision count by one.
func TestRunAllWithAdversary(t *testing.T) {
	t.Parallel()
	const n = 8
	labels := ids.Sequential(n)
	cfg := core.Config{N: n, Seed: 3}
	scripted, err := adversary.NewScripted(3, labels[2])
	if err != nil {
		t.Fatal(err)
	}
	sum, err := transport.RunAll(labels, transport.NetConfig{Adversary: scripted}, func(id proto.ID) (transport.Process, error) {
		return core.NewBall(cfg, tree.NewTopology(n), id)
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Decisions) != n-1 || len(sum.Crashed) != 1 || sum.Crashed[0] != labels[2] {
		t.Fatalf("decisions=%d crashed=%v", len(sum.Decisions), sum.Crashed)
	}
}

// TestRunAllRejectsBadMembers covers constructor error propagation.
func TestRunAllRejectsBadMembers(t *testing.T) {
	t.Parallel()
	if _, err := transport.RunAll(nil, transport.NetConfig{}, nil, 0); err == nil {
		t.Fatal("empty member set accepted")
	}
	labels := ids.Sequential(2)
	_, err := transport.RunAll(labels, transport.NetConfig{}, func(id proto.ID) (transport.Process, error) {
		return nil, fmt.Errorf("no process for %v", id)
	}, 0)
	if err == nil {
		t.Fatal("mk error not propagated")
	}
}
