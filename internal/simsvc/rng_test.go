package simsvc

import "testing"

// draws reads n values from the stream for a key.
func draws(p *PartitionedRNG, scenario, subsystem string, entity uint64, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = p.Stream(scenario, subsystem, entity).Uint64()
	}
	return out
}

func TestPartitionedRNGDeterministic(t *testing.T) {
	a := draws(NewPartitionedRNG(42), "zipf", "hold", 7, 8)
	b := draws(NewPartitionedRNG(42), "zipf", "hold", 7, 8)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs across identical partitions: %#x vs %#x", i, a[i], b[i])
		}
	}
}

func TestPartitionedRNGStreamsIsolated(t *testing.T) {
	// Interleaving draws from other subsystems must not perturb a stream's
	// own sequence — the property that keeps scenarios mutually isolated.
	clean := draws(NewPartitionedRNG(42), "zipf", "hold", 7, 8)
	p := NewPartitionedRNG(42)
	var noisy []uint64
	for i := 0; i < 8; i++ {
		p.Stream("zipf", "think", 7).Uint64()
		p.Stream("other-scenario", "hold", 7).Uint64()
		p.Stream("zipf", "hold", 9).Uint64()
		noisy = append(noisy, p.Stream("zipf", "hold", 7).Uint64())
	}
	for i := range clean {
		if clean[i] != noisy[i] {
			t.Fatalf("draw %d perturbed by foreign streams: %#x vs %#x", i, clean[i], noisy[i])
		}
	}
}

func TestPartitionedRNGKeysDecorrelated(t *testing.T) {
	p := NewPartitionedRNG(42)
	base := p.Stream("s", "a", 1).Uint64()
	for _, other := range []uint64{
		p.Stream("s", "a", 2).Uint64(),
		p.Stream("s", "b", 1).Uint64(),
		p.Stream("t", "a", 1).Uint64(),
	} {
		if other == base {
			t.Fatalf("distinct keys produced identical first draw %#x", base)
		}
	}
}
