package simsvc

// Package-level note: the discrete-event engine replaces goroutines, timers
// and sockets with a heap of (virtual time, fn) events. Ties on virtual time
// break by scheduling order (a monotone sequence number), so the execution
// order of any event population is total and reproducible — the foundation
// for bit-identical simulation runs.

// event is one scheduled callback.
type event struct {
	at  int64 // virtual nanoseconds
	seq uint64
	fn  func()
}

// before orders events by (at, seq).
func (e event) before(o event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// Engine is a minimal discrete-event scheduler under virtual time. The zero
// value is ready to use. Not safe for concurrent use.
type Engine struct {
	now  int64
	seq  uint64
	heap []event
}

// Now returns the current virtual time in nanoseconds.
func (e *Engine) Now() int64 { return e.now }

// At schedules fn at virtual time t; a t in the past fires "now" (still
// through the heap, after already-scheduled events for the current instant).
func (e *Engine) At(t int64, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	e.heap = append(e.heap, event{at: t, seq: e.seq, fn: fn})
	e.siftUp(len(e.heap) - 1)
}

// After schedules fn d nanoseconds from now; a non-positive d fires "now".
func (e *Engine) After(d int64, fn func()) { e.At(e.now+d, fn) }

// Pending returns the number of scheduled events.
func (e *Engine) Pending() int { return len(e.heap) }

// Run executes events in (time, seq) order until the heap is empty or the
// next event lies beyond the horizon; virtual time ends at the later of its
// start and the horizon. Events scheduled while running participate.
func (e *Engine) Run(until int64) {
	for len(e.heap) > 0 && e.heap[0].at <= until {
		ev := e.pop()
		e.now = ev.at
		ev.fn()
	}
	if until > e.now {
		e.now = until
	}
}

func (e *Engine) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !e.heap[i].before(e.heap[parent]) {
			return
		}
		e.heap[i], e.heap[parent] = e.heap[parent], e.heap[i]
		i = parent
	}
}

func (e *Engine) pop() event {
	top := e.heap[0]
	n := len(e.heap) - 1
	e.heap[0] = e.heap[n]
	e.heap[n] = event{} // release the closure
	e.heap = e.heap[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && e.heap[l].before(e.heap[small]) {
			small = l
		}
		if r < n && e.heap[r].before(e.heap[small]) {
			small = r
		}
		if small == i {
			return top
		}
		e.heap[i], e.heap[small] = e.heap[small], e.heap[i]
		i = small
	}
}
