package simsvc

import (
	"fmt"
	"sort"
)

// Virtual time units. The simulator's clock is nanoseconds, like the real
// one, so latency histograms from both worlds share a scale.
const (
	vus = int64(1_000)
	vms = int64(1_000_000)
)

// Scenario is one workload shape: a service configuration, a client
// population, and behavior hooks. All randomness inside hooks must come
// from Sim.Stream so scenarios stay mutually isolated and bit-reproducible;
// all time from Sim.Now. Hooks run single-threaded on the event loop.
type Scenario struct {
	Name        string
	Description string
	// WireReplayable marks scenarios whose recorded trace replays exactly
	// through a real server over the wire: no cancels (which consume
	// request IDs without a wire op) and no absorbed grants (which
	// interleave assign+release mid-epoch). Crash scenarios are sim-only.
	WireReplayable bool

	Shards   int
	ShardCap int
	MaxBatch int
	Clients  int
	Duration int64 // virtual ns
	// EpochEvery is the per-shard epoch tick interval; each tick drains
	// everything currently assignable, like the server's epoch loop.
	EpochEvery int64

	// ClientID picks the identity for population index idx (nil: idx+1).
	// Must be non-zero and unique across the population.
	ClientID func(s *Sim, idx int) uint64
	// FirstAt schedules a client's first acquire (nil: t=0).
	FirstAt func(s *Sim, c *Client) int64
	// Hold is how long a client keeps a granted name (nil: 1ns).
	Hold func(s *Sim, c *Client) int64
	// Think is the idle gap between a release and the next acquire
	// (nil: 1ns).
	Think func(s *Sim, c *Client) int64
	// Events, when set, schedules scenario-wide happenings (herd waves,
	// crash storms) before the run starts.
	Events func(s *Sim)
}

// validate reports scenario configuration errors.
func (scn Scenario) validate() error {
	switch {
	case scn.Name == "":
		return fmt.Errorf("simsvc: scenario has no name")
	case scn.Shards < 1 || scn.ShardCap < 1:
		return fmt.Errorf("simsvc: scenario %q namespace %dx%d invalid", scn.Name, scn.Shards, scn.ShardCap)
	case scn.Clients < 1:
		return fmt.Errorf("simsvc: scenario %q has no clients", scn.Name)
	case scn.Duration < 1 || scn.EpochEvery < 1:
		return fmt.Errorf("simsvc: scenario %q duration %d / epoch interval %d invalid", scn.Name, scn.Duration, scn.EpochEvery)
	}
	return nil
}

// jittered draws base + uniform[0, spread) from the client's own stream.
func jittered(s *Sim, subsystem string, c *Client, base, spread int64) int64 {
	if spread <= 0 {
		return base
	}
	return base + int64(s.Stream(subsystem, uint64(c.Idx)).Uint64n(uint64(spread)))
}

// clientIDForShard searches deterministic candidate identities until one
// routes to the wanted shard. The low 32 bits carry the population index,
// so identities stay unique no matter how many attempts the search takes.
func clientIDForShard(s *Sim, idx, shard int) uint64 {
	for attempt := uint64(0); ; attempt++ {
		id := attempt<<32 | uint64(idx+1)
		if s.Service().Shard(id) == shard || attempt == 1<<16 {
			return id
		}
	}
}

// Library returns the scenario library at the given scale factor: scale 1
// is the full default shape, smaller values shrink the population and the
// virtual horizon proportionally (floored so every scenario still
// exercises its mechanism). CI runs the whole library at small scale.
func Library(scale float64) []Scenario {
	if scale <= 0 {
		scale = 1
	}
	sc := func(n int, floor int) int {
		v := int(float64(n) * scale)
		if v < floor {
			v = floor
		}
		return v
	}
	sct := func(d int64, floor int64) int64 {
		v := int64(float64(d) * scale)
		if v < floor {
			v = floor
		}
		return v
	}

	zipf := Scenario{
		Name:           "zipf-shards",
		Description:    "Zipf-skewed shard demand: the client population is drawn so low shards see multiples of the load of high shards, exercising uneven epoch sizes and free-pool pressure on the hot shard.",
		WireReplayable: true,
		Shards:         4,
		ShardCap:       64,
		MaxBatch:       32,
		Clients:        sc(192, 16),
		Duration:       sct(400*vms, 80*vms),
		EpochEvery:     1 * vms,
		ClientID: func(s *Sim, idx int) uint64 {
			// P(shard k) ∝ 1/(k+1): integer weights 12:6:4:3 over 4 shards.
			w := s.Stream("population", uint64(idx)).Uint64n(25)
			shard := 3
			switch {
			case w < 12:
				shard = 0
			case w < 18:
				shard = 1
			case w < 22:
				shard = 2
			}
			return clientIDForShard(s, idx, shard)
		},
		FirstAt: func(s *Sim, c *Client) int64 { return jittered(s, "arrival", c, 0, 10*vms) },
		Hold:    func(s *Sim, c *Client) int64 { return jittered(s, "hold", c, 2*vms, 2*vms) },
		Think:   func(s *Sim, c *Client) int64 { return jittered(s, "think", c, 1*vms, 1*vms) },
	}

	const day = 100 * vms
	diurnal := Scenario{
		Name:           "diurnal-burst",
		Description:    "Diurnal load: think times swing 13x between virtual midnight and noon over repeated 100ms virtual days, so epochs breathe from near-empty to MaxBatch-full.",
		WireReplayable: true,
		Shards:         4,
		ShardCap:       64,
		MaxBatch:       32,
		Clients:        sc(160, 16),
		Duration:       sct(400*vms, 100*vms),
		EpochEvery:     1 * vms,
		FirstAt:        func(s *Sim, c *Client) int64 { return jittered(s, "arrival", c, 0, 20*vms) },
		Hold:           func(s *Sim, c *Client) int64 { return jittered(s, "hold", c, 1*vms, 1*vms) },
		Think: func(s *Sim, c *Client) int64 {
			// Triangle wave: peak demand (factor 1) mid-day, trough
			// (factor 13) at day boundaries. Integer math keeps the
			// schedule platform-exact.
			pos := s.Now() % day // 0..day
			dist := pos - day/2  // -day/2..day/2
			if dist < 0 {
				dist = -dist
			}
			factor := 1 + 12*dist/(day/2) // 1 at noon .. 13 at midnight
			return jittered(s, "think", c, factor*500*vus, 500*vus)
		},
	}

	herd := Scenario{
		Name:           "thundering-herd",
		Description:    "Thundering-herd reconnects: every 50ms every holding client releases and re-acquires at the same virtual instant, slamming each shard with a full-population epoch.",
		WireReplayable: true,
		Shards:         4,
		ShardCap:       64,
		MaxBatch:       64,
		Clients:        sc(160, 16),
		Duration:       sct(400*vms, 120*vms),
		EpochEvery:     1 * vms,
		FirstAt:        func(s *Sim, c *Client) int64 { return jittered(s, "arrival", c, 0, 5*vms) },
		Hold:           func(s *Sim, c *Client) int64 { return jittered(s, "hold", c, 30*vms, 10*vms) },
		Think:          func(s *Sim, c *Client) int64 { return jittered(s, "think", c, 500*vus, 500*vus) },
		Events: func(s *Sim) {
			const period = 50 * vms
			var wave func()
			wave = func() {
				// Releases first, then the reconnect rush, in stable
				// population order — one synchronized instant.
				var herders []*Client
				for _, c := range s.Clients() {
					if !c.crashed && c.State == StateHolding {
						s.releaseHeld(c)
						herders = append(herders, c)
					}
				}
				for _, c := range herders {
					s.acquire(c)
				}
				s.After(period, wave)
			}
			s.At(period, wave)
		},
	}

	slow := Scenario{
		Name:           "slow-readers",
		Description:    "Slow-reader flood: one client in ten parks on its name 60x longer than the churning majority, pinning occupancy high so epochs shrink toward the free-pool bound.",
		WireReplayable: true,
		Shards:         4,
		ShardCap:       48,
		MaxBatch:       32,
		Clients:        sc(176, 16),
		Duration:       sct(400*vms, 80*vms),
		EpochEvery:     1 * vms,
		FirstAt:        func(s *Sim, c *Client) int64 { return jittered(s, "arrival", c, 0, 10*vms) },
		Hold: func(s *Sim, c *Client) int64 {
			if c.Idx%10 == 0 {
				return jittered(s, "hold-slow", c, 60*vms, 20*vms)
			}
			return jittered(s, "hold", c, 1*vms, 1*vms)
		},
		Think: func(s *Sim, c *Client) int64 { return jittered(s, "think", c, 500*vus, 500*vus) },
	}

	exhaustion := Scenario{
		Name:           "exhaustion",
		Description:    "Namespace exhaustion: four clients per name, most holding far longer than the horizon, so the free pool empties and the pending queue outlives it; only a short-holding eighth of the population keeps a trickle of re-grants flowing.",
		WireReplayable: true,
		Shards:         2,
		ShardCap:       32,
		MaxBatch:       32,
		Clients:        sc(256, 32),
		Duration:       sct(400*vms, 80*vms),
		EpochEvery:     1 * vms,
		FirstAt:        func(s *Sim, c *Client) int64 { return jittered(s, "arrival", c, 0, 20*vms) },
		Hold: func(s *Sim, c *Client) int64 {
			if c.Idx%8 == 0 {
				return jittered(s, "hold-short", c, 2*vms, 2*vms)
			}
			return jittered(s, "hold-long", c, 1000*vms, 0)
		},
		Think: func(s *Sim, c *Client) int64 { return jittered(s, "think", c, 1*vms, 1*vms) },
	}

	storm := Scenario{
		Name:           "crash-storm",
		Description:    "Correlated crash storms: every 40ms half of one shard's clients die together — queued requests cancelled or absorbed mid-epoch, held names torn down — then recover and rejoin. Sim-only: cancels and absorbed grants have no wire-replayable encoding.",
		WireReplayable: false,
		Shards:         4,
		ShardCap:       64,
		MaxBatch:       32,
		Clients:        sc(160, 16),
		Duration:       sct(400*vms, 120*vms),
		EpochEvery:     1 * vms,
		FirstAt:        func(s *Sim, c *Client) int64 { return jittered(s, "arrival", c, 0, 10*vms) },
		Hold:           func(s *Sim, c *Client) int64 { return jittered(s, "hold", c, 2*vms, 2*vms) },
		Think:          func(s *Sim, c *Client) int64 { return jittered(s, "think", c, 1*vms, 1*vms) },
		Events: func(s *Sim) {
			const period = 40 * vms
			wave := uint64(0)
			var storm func()
			storm = func() {
				src := s.Stream("storm", wave)
				wave++
				target := src.Intn(s.Service().Shards())
				for _, c := range s.Clients() {
					if c.crashed || c.Shard != target {
						continue
					}
					if src.Uint64n(2) == 0 {
						continue // survivor
					}
					cancel := src.Uint64n(2) == 0
					s.Crash(c, cancel, jittered(s, "recover", c, 10*vms, 10*vms))
				}
				s.After(period, storm)
			}
			s.At(period, storm)
		},
	}

	return []Scenario{zipf, diurnal, herd, slow, exhaustion, storm}
}

// Lookup returns the named scenario at the given scale.
func Lookup(name string, scale float64) (Scenario, error) {
	for _, scn := range Library(scale) {
		if scn.Name == name {
			return scn, nil
		}
	}
	return Scenario{}, fmt.Errorf("simsvc: unknown scenario %q (have %v)", name, Names())
}

// Names lists the library's scenario names, sorted.
func Names() []string {
	var names []string
	for _, scn := range Library(1) {
		names = append(names, scn.Name)
	}
	sort.Strings(names)
	return names
}
