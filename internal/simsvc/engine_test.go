package simsvc

import "testing"

func TestEngineOrdersByTimeThenSeq(t *testing.T) {
	var e Engine
	var got []int
	e.At(30, func() { got = append(got, 3) })
	e.At(10, func() { got = append(got, 1) })
	e.At(20, func() { got = append(got, 2) })
	// Ties fire in scheduling order.
	e.At(20, func() { got = append(got, 20) })
	e.Run(100)
	want := []int{1, 2, 20, 3}
	if len(got) != len(want) {
		t.Fatalf("ran %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ran %v, want %v", got, want)
		}
	}
	if e.Now() != 100 {
		t.Fatalf("Now() = %d after Run(100)", e.Now())
	}
}

func TestEngineHorizonAndReentrancy(t *testing.T) {
	var e Engine
	ran := 0
	e.At(5, func() {
		ran++
		// Scheduled while running: participates if within the horizon.
		e.After(10, func() { ran++ })
		// Beyond the horizon: left unexecuted.
		e.After(1000, func() { t.Fatal("ran past the horizon") })
	})
	e.Run(50)
	if ran != 2 {
		t.Fatalf("ran %d events, want 2", ran)
	}
	if e.Pending() != 1 {
		t.Fatalf("%d events pending, want the one past the horizon", e.Pending())
	}
}

func TestEnginePastSchedulesClampToNow(t *testing.T) {
	var e Engine
	var at int64 = -1
	e.At(40, func() {
		e.At(3, func() { at = e.Now() }) // in the past: fires at now
	})
	e.Run(100)
	if at != 40 {
		t.Fatalf("past event fired at %d, want clamped to 40", at)
	}
}
