// Package simsvc is a deterministic cluster simulator for the name service:
// it drives the real namesvc.Service core under virtual time, with simulated
// clients and shard epoch loops scheduled by a discrete-event heap instead
// of goroutines and sockets. Every run is a pure function of (scenario,
// seed): randomness comes from a PartitionedRNG keyed by (scenario,
// subsystem, entity), virtual time replaces the wall clock, and event ties
// break deterministically — so two runs of the same scenario produce
// byte-identical metrics artifacts, and a recorded trace replays through a
// real server over TCP onto the same per-shard digests (trace.go). The
// simulator is the cheap oracle; the differential harness is what makes its
// scenarios trustworthy regression tests for the whole service stack.
package simsvc

import (
	"fmt"

	"ballsintoleaves/internal/namesvc"
	"ballsintoleaves/internal/rng"
	"ballsintoleaves/internal/stats"
)

// ClientState is a simulated client's lifecycle position.
type ClientState uint8

const (
	// StateIdle means no outstanding request and no held name.
	StateIdle ClientState = iota
	// StateWaiting means an acquire is queued, not yet granted.
	StateWaiting
	// StateHolding means the client holds a name.
	StateHolding
)

// Client is one simulated client: an identity, its deterministic shard, and
// its lifecycle state. Scenarios drive clients through acquire → hold →
// release → think cycles via the behavior hooks.
type Client struct {
	Idx   int    // 0-based population index (the RNG entity key)
	ID    uint64 // service identity (non-zero)
	Shard int
	State ClientState
	Name  int // held global name when StateHolding

	reqID    uint64 // outstanding request when StateWaiting
	gen      uint64 // request generation; bumped by crashes to absorb stale grants
	issuedAt int64
	crashed  bool
}

// Sim is one scenario execution in progress. Scenarios' hooks receive it to
// draw randomness (Stream), read the virtual clock (Now), and schedule
// extra events (At/After); everything else is driven by Run.
type Sim struct {
	scn  Scenario
	seed uint64
	svc  *namesvc.Service
	eng  Engine
	rnd  *PartitionedRNG

	clients []*Client
	trace   *Trace // nil unless the scenario is wire-replayable

	holders    map[int]uint64 // global name -> holder, duplicate detection
	latency    stats.Histogram
	epochSizes stats.Histogram
	acquires   uint64
	grants     uint64
	releases   uint64
	cancels    uint64
	crashes    uint64
	duplicates uint64
	epochErrs  []string
}

// NewSim builds a simulator for one (scenario, seed) pair.
func NewSim(scn Scenario, seed uint64) (*Sim, error) {
	if err := scn.validate(); err != nil {
		return nil, err
	}
	svc, err := namesvc.New(namesvc.Config{
		Shards:   scn.Shards,
		ShardCap: scn.ShardCap,
		MaxBatch: scn.MaxBatch,
		Seed:     seed,
		Journal:  true,
	})
	if err != nil {
		return nil, err
	}
	s := &Sim{
		scn:     scn,
		seed:    seed,
		svc:     svc,
		rnd:     NewPartitionedRNG(seed),
		holders: make(map[int]uint64),
	}
	if scn.WireReplayable {
		s.trace = &Trace{
			Scenario: scn.Name,
			Seed:     seed,
			Shards:   scn.Shards,
			ShardCap: scn.ShardCap,
			MaxBatch: scn.MaxBatch,
		}
	}
	return s, nil
}

// Now returns the current virtual time in nanoseconds.
func (s *Sim) Now() int64 { return s.eng.Now() }

// At schedules fn at virtual time t (for scenario Events hooks).
func (s *Sim) At(t int64, fn func()) { s.eng.At(t, fn) }

// After schedules fn d virtual nanoseconds from now.
func (s *Sim) After(d int64, fn func()) { s.eng.After(d, fn) }

// Stream returns the scenario's RNG stream for (subsystem, entity).
func (s *Sim) Stream(subsystem string, entity uint64) *rng.Source {
	return s.rnd.Stream(s.scn.Name, subsystem, entity)
}

// Service exposes the simulated service (read-only use in hooks and tests).
func (s *Sim) Service() *namesvc.Service { return s.svc }

// Clients returns the simulated population.
func (s *Sim) Clients() []*Client { return s.clients }

// Run executes the scenario to its virtual horizon and returns the result.
func (s *Sim) Run() (*Result, error) {
	// Population: identities first (scenarios may skew them to target
	// shards), then each client's first acquire.
	s.clients = make([]*Client, s.scn.Clients)
	for i := range s.clients {
		id := uint64(i + 1)
		if s.scn.ClientID != nil {
			id = s.scn.ClientID(s, i)
		}
		if id == 0 {
			return nil, fmt.Errorf("simsvc: scenario %q produced zero client ID for index %d", s.scn.Name, i)
		}
		c := &Client{Idx: i, ID: id, Shard: s.svc.Shard(id)}
		s.clients[i] = c
	}
	for _, c := range s.clients {
		at := int64(0)
		if s.scn.FirstAt != nil {
			at = s.scn.FirstAt(s, c)
		}
		c := c
		s.eng.At(at, func() { s.acquire(c) })
	}
	// Per-shard epoch loops: one recurring tick each, phase-shifted by one
	// nanosecond per shard so same-instant ties between shards still have a
	// defined (and obvious) order.
	for shard := 0; shard < s.scn.Shards; shard++ {
		shard := shard
		var tick func()
		tick = func() {
			s.epochTick(shard)
			s.eng.After(s.scn.EpochEvery, tick)
		}
		s.eng.At(s.scn.EpochEvery+int64(shard), tick)
	}
	if s.scn.Events != nil {
		s.scn.Events(s)
	}
	s.eng.Run(s.scn.Duration)
	if len(s.epochErrs) > 0 {
		return nil, fmt.Errorf("simsvc: scenario %q: %s", s.scn.Name, s.epochErrs[0])
	}
	return s.result(), nil
}

// acquire issues one acquire for the client.
func (s *Sim) acquire(c *Client) {
	if c.crashed || c.State != StateIdle {
		return
	}
	c.State = StateWaiting
	c.issuedAt = s.eng.Now()
	gen := c.gen
	if s.trace != nil {
		s.trace.Ops = append(s.trace.Ops, TraceOp{Kind: OpAcquire, Shard: c.Shard, Client: c.ID})
	}
	id, err := s.svc.Acquire(c.ID, func(g namesvc.Grant) bool { return s.onGrant(c, gen, g) })
	if err != nil {
		// Unreachable with non-zero IDs; surface it rather than hide it.
		s.epochErrs = append(s.epochErrs, fmt.Sprintf("acquire client %d: %v", c.ID, err))
		return
	}
	c.reqID = id
	s.acquires++
}

// onGrant is the GrantNotifier for one request: invoked by CloseEpoch under
// the shard lock (single-threaded here). A stale generation — the client
// crashed after queueing — refuses the grant, which the service absorbs as
// a crash.
func (s *Sim) onGrant(c *Client, gen uint64, g namesvc.Grant) bool {
	if c.crashed || c.gen != gen {
		return false
	}
	c.State = StateHolding
	c.Name = g.Name
	c.reqID = 0
	s.grants++
	s.latency.Record(s.eng.Now() - c.issuedAt)
	if holder, taken := s.holders[g.Name]; taken {
		s.duplicates++
		s.epochErrs = append(s.epochErrs,
			fmt.Sprintf("duplicate grant: name %d to client %d while held by %d", g.Name, g.Client, holder))
	}
	s.holders[g.Name] = c.ID
	if s.trace != nil {
		s.trace.Grants = append(s.trace.Grants, TraceGrant{Client: g.Client, Shard: g.Shard, Epoch: g.Epoch, Name: g.Name})
	}
	hold := int64(1)
	if s.scn.Hold != nil {
		hold = s.scn.Hold(s, c)
	}
	hgen := c.gen
	s.eng.After(hold, func() { s.release(c, hgen) })
	return true
}

// release returns the client's held name and schedules its next cycle. The
// generation check voids stale hold timers: a forced release (herd wave,
// crash teardown) bumps the client's generation, so a timer scheduled for
// an earlier hold cannot free a later name.
func (s *Sim) release(c *Client, gen uint64) {
	if c.crashed || c.State != StateHolding || c.gen != gen {
		return
	}
	s.releaseHeld(c)
	think := int64(1)
	if s.scn.Think != nil {
		think = s.scn.Think(s, c)
	}
	s.eng.After(think, func() { s.acquire(c) })
}

// releaseHeld performs the release without scheduling a follow-up.
func (s *Sim) releaseHeld(c *Client) {
	if s.trace != nil {
		s.trace.Ops = append(s.trace.Ops, TraceOp{Kind: OpRelease, Shard: c.Shard, Client: c.ID, Name: c.Name})
	}
	if err := s.svc.Release(c.ID, c.Name); err != nil {
		s.epochErrs = append(s.epochErrs, fmt.Sprintf("release name %d: %v", c.Name, err))
		return
	}
	delete(s.holders, c.Name)
	s.releases++
	c.State = StateIdle
	c.Name = 0
	c.gen++
}

// Crash marks a client crashed at the current virtual instant — the
// simulator's model of a connection death: a queued request is either
// cancelled (the frame never arrived) or left to be absorbed by its epoch
// (the requester died in flight, decided by cancel), and a held name is
// released by connection teardown. Recovery (if recoverAfter > 0) returns
// the client to idle and re-enters it after that delay.
func (s *Sim) Crash(c *Client, cancel bool, recoverAfter int64) {
	if c.crashed {
		return
	}
	c.crashed = true
	c.gen++
	s.crashes++
	switch c.State {
	case StateWaiting:
		if cancel && s.svc.Cancel(c.ID, c.reqID) {
			s.cancels++
		}
		// Otherwise the queued request's stale generation refuses its
		// grant and the service absorbs it.
	case StateHolding:
		s.releaseHeld(c)
	}
	c.State = StateIdle
	c.reqID = 0
	if recoverAfter > 0 {
		s.eng.After(recoverAfter, func() {
			c.crashed = false
			c.State = StateIdle
			s.acquire(c)
		})
	}
}

// epochTick closes epochs on one shard until it has drained everything
// currently assignable — the virtual-time counterpart of the server's
// epoch loop, which keeps closing while the shard stays runnable.
func (s *Sim) epochTick(shard int) {
	for {
		pre := s.svc.ShardEpoch(shard)
		grants, err := s.svc.CloseEpoch(shard)
		if err != nil {
			s.epochErrs = append(s.epochErrs, fmt.Sprintf("epoch shard %d: %v", shard, err))
			return
		}
		post := s.svc.ShardEpoch(shard)
		if post == pre {
			return // nothing assignable
		}
		s.epochSizes.Record(int64(len(grants)))
		if s.trace != nil && len(grants) > 0 {
			s.trace.Ops = append(s.trace.Ops, TraceOp{Kind: OpEpoch, Shard: shard, Epoch: post, Granted: len(grants)})
		}
	}
}

// result snapshots the final metrics.
func (s *Sim) result() *Result {
	st := s.svc.Stats()
	r := &Result{
		Scenario:   s.scn.Name,
		Seed:       s.seed,
		Shards:     s.scn.Shards,
		ShardCap:   s.scn.ShardCap,
		Clients:    s.scn.Clients,
		VirtualNS:  s.eng.Now(),
		Acquires:   s.acquires,
		Grants:     s.grants,
		Releases:   s.releases,
		Cancels:    s.cancels,
		Crashes:    s.crashes,
		Absorbed:   st.Absorbed,
		Duplicates: s.duplicates,
		Epochs:     st.Epochs,
		PendingEnd: st.Pending,
		HeldEnd:    st.Assigned,
		Digests:    st.Digests,
		Latency:    s.latency.Snapshot(),
		EpochSizes: s.epochSizes.Snapshot(),
		LatencyP50: s.latency.P50(),
		LatencyP99: s.latency.P99(),
		Trace:      s.trace,
	}
	if s.trace != nil {
		for i := 0; i < s.scn.Shards; i++ {
			s.trace.Digests = append(s.trace.Digests, s.svc.ShardDigest(i))
			s.trace.Journals = append(s.trace.Journals, s.svc.ShardJournal(i))
		}
	}
	return r
}
