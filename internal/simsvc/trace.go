package simsvc

import (
	"fmt"
	"sync"
	"time"

	"ballsintoleaves/internal/namesvc"
)

// OpKind discriminates trace operations.
type OpKind uint8

const (
	// OpAcquire is one enqueue: Client asked Shard for a name.
	OpAcquire OpKind = iota + 1
	// OpRelease returns Name (global) to Shard's free pool on behalf of
	// Client.
	OpRelease
	// OpEpoch closes one epoch on Shard. Epoch and Granted record the
	// simulator's outcome — the shard's epoch counter after the close and
	// the number of grants it handed out — which a replay must reproduce.
	OpEpoch
)

// TraceOp is one operation of a recorded scenario execution, in global
// issue order. The per-shard subsequence of this order is exactly the
// per-shard arrival order, which is all the service's determinism contract
// depends on.
type TraceOp struct {
	Kind    OpKind
	Shard   int
	Client  uint64
	Name    int    // OpRelease: the released global name
	Epoch   uint64 // OpEpoch: shard epoch counter after the close
	Granted int    // OpEpoch: grants handed out by the close
}

// TraceGrant is one grant in the order the service produced it (epoch by
// epoch, rank order within an epoch). A replay must reproduce the exact
// sequence, not just the set.
type TraceGrant struct {
	Client uint64
	Shard  int
	Epoch  uint64
	Name   int // global
}

// Trace is a recorded scenario execution: the service configuration, the
// operation stream, and the expected grant stream. It is the differential
// harness's exchange format — the same trace replays through a fresh
// in-process Service or through a real manual-epoch server over TCP, and
// both must land on the simulator's digests.
type Trace struct {
	Scenario string
	Seed     uint64
	Shards   int
	ShardCap int
	MaxBatch int
	Ops      []TraceOp
	Grants   []TraceGrant
	// Digests and Journals are the simulator's final per-shard rolling
	// digests and retained journals — what a replay must converge to.
	Digests  []uint64
	Journals [][]namesvc.Entry
}

// ReplayResult is what a replay produced, shaped for comparison against the
// recording.
type ReplayResult struct {
	Grants   []TraceGrant
	Digests  []uint64
	Journals [][]namesvc.Entry
}

// Diff compares a replay against the recording and returns a description of
// the first divergence, or "" if the replay matches: grant stream, per-shard
// digests, and per-shard journals all equal.
func (t *Trace) Diff(r *ReplayResult) string {
	if len(r.Grants) != len(t.Grants) {
		return fmt.Sprintf("grant stream length: sim %d, replay %d", len(t.Grants), len(r.Grants))
	}
	for i, g := range t.Grants {
		if r.Grants[i] != g {
			return fmt.Sprintf("grant %d: sim %+v, replay %+v", i, g, r.Grants[i])
		}
	}
	for i := range t.Digests {
		if i >= len(r.Digests) || r.Digests[i] != t.Digests[i] {
			return fmt.Sprintf("shard %d digest: sim %#x, replay %#x", i, t.Digests[i], at(r.Digests, i))
		}
	}
	for i := range t.Journals {
		if i >= len(r.Journals) {
			return fmt.Sprintf("shard %d journal missing from replay", i)
		}
		if len(r.Journals[i]) != len(t.Journals[i]) {
			return fmt.Sprintf("shard %d journal length: sim %d, replay %d", i, len(t.Journals[i]), len(r.Journals[i]))
		}
		for j, e := range t.Journals[i] {
			if r.Journals[i][j] != e {
				return fmt.Sprintf("shard %d journal entry %d: sim %+v, replay %+v", i, j, e, r.Journals[i][j])
			}
		}
	}
	return ""
}

func at(v []uint64, i int) uint64 {
	if i < len(v) {
		return v[i]
	}
	return 0
}

// ReplayService replays the trace through a fresh in-process Service — the
// cheap differential leg, pinning that the trace alone (not the simulator's
// event loop) determines the outcome.
func (t *Trace) ReplayService() (*ReplayResult, error) {
	svc, err := namesvc.New(namesvc.Config{
		Shards:   t.Shards,
		ShardCap: t.ShardCap,
		MaxBatch: t.MaxBatch,
		Seed:     t.Seed,
		Journal:  true,
	})
	if err != nil {
		return nil, err
	}
	res := &ReplayResult{}
	for i, op := range t.Ops {
		switch op.Kind {
		case OpAcquire:
			if _, err := svc.Acquire(op.Client, nil); err != nil {
				return nil, fmt.Errorf("op %d acquire client %d: %w", i, op.Client, err)
			}
		case OpRelease:
			if err := svc.Release(op.Client, op.Name); err != nil {
				return nil, fmt.Errorf("op %d release name %d: %w", i, op.Name, err)
			}
		case OpEpoch:
			grants, err := svc.CloseEpoch(op.Shard)
			if err != nil {
				return nil, fmt.Errorf("op %d epoch shard %d: %w", i, op.Shard, err)
			}
			if got := svc.ShardEpoch(op.Shard); got != op.Epoch || len(grants) != op.Granted {
				return nil, fmt.Errorf("op %d epoch shard %d: sim (epoch %d, granted %d), replay (epoch %d, granted %d)",
					i, op.Shard, op.Epoch, op.Granted, got, len(grants))
			}
			for _, g := range grants {
				res.Grants = append(res.Grants, TraceGrant{Client: g.Client, Shard: g.Shard, Epoch: g.Epoch, Name: g.Name})
			}
		default:
			return nil, fmt.Errorf("op %d: unknown kind %d", i, op.Kind)
		}
	}
	for i := 0; i < t.Shards; i++ {
		res.Digests = append(res.Digests, svc.ShardDigest(i))
		res.Journals = append(res.Journals, svc.ShardJournal(i))
	}
	return res, nil
}

// ReplayWire replays the trace through a real server over the wire: one
// pipelined connection to addr, which must be a manual-epoch journaling
// server (blnamed -manual-epochs -journal, or a ServerConfig.ManualEpochs
// Server in-process) built with the trace's Shards/ShardCap/MaxBatch/Seed.
//
// Acquires and releases pipeline; epoch ops are awaited barriers, which is
// what pins epoch composition: every acquire recorded before an epoch is on
// the server before the epoch closes, and every grant of the epoch has been
// delivered to this connection before the barrier returns (the server
// appends grant frames ahead of the epoch reply on the same stream).
func (t *Trace) ReplayWire(addr string, timeout time.Duration) (*ReplayResult, error) {
	c, err := namesvc.Dial(addr, namesvc.ClientConfig{Timeout: timeout})
	if err != nil {
		return nil, err
	}
	defer c.Close()
	if c.Shards() != t.Shards || c.ShardCap() != t.ShardCap {
		return nil, fmt.Errorf("server namespace %dx%d, trace %dx%d", c.Shards(), c.ShardCap(), t.Shards, t.ShardCap)
	}

	res := &ReplayResult{}
	var mu sync.Mutex // guards res.Grants and asyncErr (callbacks run on the read goroutine)
	var asyncErr error
	fail := func(err error) {
		mu.Lock()
		if asyncErr == nil && err != nil {
			asyncErr = err
		}
		mu.Unlock()
	}
	failed := func() error {
		mu.Lock()
		defer mu.Unlock()
		return asyncErr
	}

	for i, op := range t.Ops {
		if err := failed(); err != nil {
			return nil, err
		}
		switch op.Kind {
		case OpAcquire:
			client := op.Client // the wire grant does not echo the client ID
			err = c.Acquire(client, func(g namesvc.Grant, err error) {
				if err != nil {
					// Acquires left pending at end of trace fail with
					// ErrClientClosed when the connection drops; that is
					// expected, not a divergence.
					return
				}
				mu.Lock()
				res.Grants = append(res.Grants, TraceGrant{Client: client, Shard: g.Shard, Epoch: g.Epoch, Name: g.Name})
				mu.Unlock()
			})
		case OpRelease:
			err = c.Release(op.Name, func(e error) { fail(e) })
		case OpEpoch:
			epoch, got, eerr := c.EpochSync(op.Shard)
			if eerr != nil {
				return nil, fmt.Errorf("op %d epoch shard %d: %w", i, op.Shard, eerr)
			}
			if epoch != op.Epoch || got != op.Granted {
				return nil, fmt.Errorf("op %d epoch shard %d: sim (epoch %d, granted %d), replay (epoch %d, granted %d)",
					i, op.Shard, op.Epoch, op.Granted, epoch, got)
			}
		default:
			err = fmt.Errorf("unknown kind %d", op.Kind)
		}
		if err != nil {
			return nil, fmt.Errorf("op %d: %w", i, err)
		}
	}
	// A final stats round trip is a full-pipeline barrier: every release
	// ack is on the stream before the stats reply.
	st, err := c.StatsSync()
	if err != nil {
		return nil, err
	}
	if err := failed(); err != nil {
		return nil, err
	}
	res.Digests = st.Digests
	for i := 0; i < t.Shards; i++ {
		j, err := c.JournalSync(i)
		if err != nil {
			return nil, fmt.Errorf("journal shard %d: %w", i, err)
		}
		res.Journals = append(res.Journals, j)
	}
	return res, nil
}
