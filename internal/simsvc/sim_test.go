package simsvc

import (
	"bytes"
	"testing"
)

// runScenario executes one (scenario, seed) and returns result + artifact.
func runScenario(t *testing.T, scn Scenario, seed uint64) (*Result, []byte) {
	t.Helper()
	sim, err := NewSim(scn, seed)
	if err != nil {
		t.Fatalf("NewSim: %v", err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	b, err := res.Artifact()
	if err != nil {
		t.Fatalf("Artifact: %v", err)
	}
	return res, b
}

// TestScenarioArtifactsReproducible is the acceptance gate for determinism:
// the same (scenario, seed) must produce byte-identical artifacts across
// two independent runs, for every scenario in the library.
func TestScenarioArtifactsReproducible(t *testing.T) {
	for _, scn := range Library(0.25) {
		scn := scn
		t.Run(scn.Name, func(t *testing.T) {
			r1, b1 := runScenario(t, scn, 7)
			r2, b2 := runScenario(t, scn, 7)
			if !bytes.Equal(b1, b2) {
				t.Fatalf("artifacts differ across identical runs:\n--- run 1\n%s\n--- run 2\n%s", b1, b2)
			}
			for i := range r1.Digests {
				if r1.Digests[i] != r2.Digests[i] {
					t.Fatalf("shard %d digest differs: %#x vs %#x", i, r1.Digests[i], r2.Digests[i])
				}
			}
			// A different seed must change the execution (digests diverge).
			r3, _ := runScenario(t, scn, 8)
			same := true
			for i := range r1.Digests {
				if r1.Digests[i] != r3.Digests[i] {
					same = false
				}
			}
			if same && r1.Grants > 0 {
				t.Fatalf("seed 7 and seed 8 produced identical digests %v", r1.Digests)
			}
		})
	}
}

// TestScenarioInvariants checks each scenario actually exercises its
// mechanism and that the service invariants hold throughout.
func TestScenarioInvariants(t *testing.T) {
	for _, scn := range Library(0.25) {
		scn := scn
		t.Run(scn.Name, func(t *testing.T) {
			r, _ := runScenario(t, scn, 7)
			if r.Duplicates != 0 {
				t.Fatalf("%d duplicate grants", r.Duplicates)
			}
			if r.Grants == 0 {
				t.Fatal("scenario granted nothing")
			}
			if r.HeldEnd > scn.Shards*scn.ShardCap {
				t.Fatalf("held %d > capacity %d", r.HeldEnd, scn.Shards*scn.ShardCap)
			}
			switch scn.Name {
			case "exhaustion":
				if r.PendingEnd == 0 {
					t.Fatal("exhaustion scenario ended with an empty queue")
				}
				if r.HeldEnd < scn.Shards*scn.ShardCap/2 {
					t.Fatalf("exhaustion held only %d of %d names", r.HeldEnd, scn.Shards*scn.ShardCap)
				}
			case "crash-storm":
				if r.Crashes == 0 {
					t.Fatal("crash storm crashed nobody")
				}
				if r.Cancels == 0 && r.Absorbed == 0 {
					t.Fatal("crash storm produced neither cancels nor absorbed grants")
				}
			case "zipf-shards":
				// The skew must be visible: the hottest shard serves more
				// clients than the coldest.
				sim, _ := NewSim(scn, 7)
				if _, err := sim.Run(); err != nil {
					t.Fatal(err)
				}
				perShard := make([]int, scn.Shards)
				for _, c := range sim.Clients() {
					perShard[c.Shard]++
				}
				if perShard[0] <= perShard[scn.Shards-1] {
					t.Fatalf("no shard skew: population %v", perShard)
				}
			case "thundering-herd":
				// Herd waves synchronize the population: some epoch must be
				// far larger than the steady-state trickle.
				if r.EpochSizes.Max < 8 {
					t.Fatalf("largest epoch %d, want a herd-sized batch", r.EpochSizes.Max)
				}
			}
			if scn.WireReplayable {
				if r.Absorbed != 0 || r.Cancels != 0 {
					t.Fatalf("wire-replayable scenario produced %d absorbed, %d cancels", r.Absorbed, r.Cancels)
				}
				if r.Trace == nil {
					t.Fatal("wire-replayable scenario recorded no trace")
				}
			} else if r.Trace != nil {
				t.Fatal("sim-only scenario recorded a trace")
			}
		})
	}
}

// TestTraceReplaysInProcess replays every replayable scenario's trace
// through a fresh Service — pinning that the trace alone reproduces the
// execution, independent of the simulator's event loop.
func TestTraceReplaysInProcess(t *testing.T) {
	for _, scn := range Library(0.25) {
		if !scn.WireReplayable {
			continue
		}
		scn := scn
		t.Run(scn.Name, func(t *testing.T) {
			r, _ := runScenario(t, scn, 7)
			rep, err := r.Trace.ReplayService()
			if err != nil {
				t.Fatalf("replay: %v", err)
			}
			if d := r.Trace.Diff(rep); d != "" {
				t.Fatalf("replay diverged: %s", d)
			}
		})
	}
}

func TestLibraryShape(t *testing.T) {
	lib := Library(1)
	if len(lib) < 6 {
		t.Fatalf("library has %d scenarios, want >= 6", len(lib))
	}
	replayable := 0
	for _, scn := range lib {
		if err := scn.validate(); err != nil {
			t.Fatal(err)
		}
		if scn.WireReplayable {
			replayable++
		}
	}
	if replayable < 2 {
		t.Fatalf("%d wire-replayable scenarios, want >= 2 for the differential gate", replayable)
	}
	if _, err := Lookup("zipf-shards", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := Lookup("no-such", 1); err == nil {
		t.Fatal("Lookup accepted an unknown scenario")
	}
}
