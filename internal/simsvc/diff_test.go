package simsvc

import (
	"net"
	"testing"
	"time"

	"ballsintoleaves/internal/namesvc"
)

// TestDifferentialSimVsRealServer is the PR's proof obligation: the same
// scenario trace, replayed through a real manual-epoch blnamed-style server
// over loopback TCP, must land on the simulator's exact per-shard digests,
// grant stream, and journals. The simulator thereby becomes a trusted
// oracle for the whole service stack — wire protocol, burst ingestion,
// batched submission, epoch machinery, grant delivery.
func TestDifferentialSimVsRealServer(t *testing.T) {
	for _, name := range []string{"zipf-shards", "thundering-herd", "exhaustion"} {
		name := name
		t.Run(name, func(t *testing.T) {
			scn, err := Lookup(name, 0.25)
			if err != nil {
				t.Fatal(err)
			}
			sim, err := NewSim(scn, 7)
			if err != nil {
				t.Fatal(err)
			}
			res, err := sim.Run()
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Trace.Ops) == 0 {
				t.Fatal("empty trace")
			}

			svc, err := namesvc.New(namesvc.Config{
				Shards:   scn.Shards,
				ShardCap: scn.ShardCap,
				MaxBatch: scn.MaxBatch,
				Seed:     7,
				Journal:  true,
			})
			if err != nil {
				t.Fatal(err)
			}
			srv, err := namesvc.NewServer(namesvc.ServerConfig{Service: svc, ManualEpochs: true})
			if err != nil {
				t.Fatal(err)
			}
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			go srv.Serve(ln)
			defer srv.Close()

			rep, err := res.Trace.ReplayWire(ln.Addr().String(), 10*time.Second)
			if err != nil {
				t.Fatalf("wire replay: %v", err)
			}
			if d := res.Trace.Diff(rep); d != "" {
				t.Fatalf("sim and real server diverged: %s", d)
			}
		})
	}
}

// TestManualEpochRejectedOnOrdinaryServer pins the protocol boundary: a
// server without ManualEpochs refuses the epoch op with RejectUnsupported
// rather than perturbing its autonomous epoch loops.
func TestManualEpochRejectedOnOrdinaryServer(t *testing.T) {
	svc, err := namesvc.New(namesvc.Config{Shards: 1, ShardCap: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := namesvc.NewServer(namesvc.ServerConfig{Service: svc})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()

	c, err := namesvc.Dial(ln.Addr().String(), namesvc.ClientConfig{Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, _, err = c.EpochSync(0)
	rej, ok := err.(*namesvc.RejectError)
	if !ok || rej.Code != namesvc.RejectUnsupported {
		t.Fatalf("EpochSync on ordinary server: %v, want RejectUnsupported", err)
	}
}
