package simsvc

import (
	"encoding/json"
	"fmt"

	"ballsintoleaves/internal/stats"
)

// Result is one finished scenario run: the counters, the per-shard digests,
// and the latency / epoch-size distributions, all in virtual time. Every
// field is a pure function of (scenario, seed), which is what lets Artifact
// promise byte-identical output across runs.
type Result struct {
	Scenario   string
	Seed       uint64
	Shards     int
	ShardCap   int
	Clients    int
	VirtualNS  int64
	Acquires   uint64
	Grants     uint64
	Releases   uint64
	Cancels    uint64
	Crashes    uint64
	Absorbed   uint64
	Duplicates uint64
	Epochs     uint64
	PendingEnd int // queued requests at the horizon
	HeldEnd    int // assigned names at the horizon
	Digests    []uint64
	Latency    stats.Snapshot // acquire→grant, virtual ns
	EpochSizes stats.Snapshot // grants per closed epoch
	LatencyP50 int64
	LatencyP99 int64
	// Trace is the recorded operation stream for wire-replayable
	// scenarios, nil otherwise. It is not part of the JSON artifact.
	Trace *Trace
}

// artifact is the serialized form: the BENCH_namesvc.json table shape plus
// the raw histogram snapshots, so simulator artifacts and blload -json
// artifacts merge through the same stats.Histogram path. Deliberately no
// date or host fields — the artifact must be byte-identical for a fixed
// (scenario, seed), and that property is test-enforced.
type artifact struct {
	Experiment string          `json:"experiment"`
	Title      string          `json:"title"`
	Scenario   string          `json:"scenario"`
	Seed       uint64          `json:"seed"`
	VirtualMS  int64           `json:"virtual_ms"`
	Tables     []artifactTable `json:"tables"`
	Latency    stats.Snapshot  `json:"latency_ns"`
	EpochSizes stats.Snapshot  `json:"epoch_sizes"`
}

type artifactTable struct {
	Title string     `json:"title"`
	Cols  []string   `json:"cols"`
	Rows  [][]string `json:"rows"`
}

// Artifact renders the run as deterministic JSON: same (scenario, seed) →
// identical bytes.
func (r *Result) Artifact() ([]byte, error) {
	perSec := "0"
	if r.VirtualNS > 0 {
		perSec = fmt.Sprintf("%d", r.Acquires*1_000_000_000/uint64(r.VirtualNS))
	}
	meanEpoch := "0"
	if r.Epochs > 0 {
		meanEpoch = fmt.Sprintf("%d.%02d", r.Grants/r.Epochs, (r.Grants%r.Epochs)*100/r.Epochs)
	}
	combined := ""
	for _, d := range r.Digests {
		combined += fmt.Sprintf("%016x", d)
	}
	a := artifact{
		Experiment: "simsvc-scenario",
		Title:      fmt.Sprintf("simsvc scenario %q, seed %d: %d clients on %dx%d, %dms virtual", r.Scenario, r.Seed, r.Clients, r.Shards, r.ShardCap, r.VirtualNS/vms),
		Scenario:   r.Scenario,
		Seed:       r.Seed,
		VirtualMS:  r.VirtualNS / vms,
		Latency:    r.Latency,
		EpochSizes: r.EpochSizes,
		Tables: []artifactTable{{
			Title: "scenario counters (virtual time)",
			Cols:  []string{"metric", "value"},
			Rows: [][]string{
				{"acquires", fmt.Sprintf("%d", r.Acquires)},
				{"acquires/s", perSec},
				{"grants", fmt.Sprintf("%d", r.Grants)},
				{"releases", fmt.Sprintf("%d", r.Releases)},
				{"epochs", fmt.Sprintf("%d", r.Epochs)},
				{"mean epoch size", meanEpoch},
				{"latency p50 us", fmt.Sprintf("%d", r.LatencyP50/vus)},
				{"latency p99 us", fmt.Sprintf("%d", r.LatencyP99/vus)},
				{"duplicates", fmt.Sprintf("%d", r.Duplicates)},
				{"crashes", fmt.Sprintf("%d", r.Crashes)},
				{"cancels", fmt.Sprintf("%d", r.Cancels)},
				{"absorbed", fmt.Sprintf("%d", r.Absorbed)},
				{"pending at horizon", fmt.Sprintf("%d", r.PendingEnd)},
				{"held at horizon", fmt.Sprintf("%d", r.HeldEnd)},
				{"digest", combined},
			},
		}},
	}
	b, err := json.MarshalIndent(&a, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
