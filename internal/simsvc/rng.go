package simsvc

import "ballsintoleaves/internal/rng"

// streamKey identifies one RNG stream: every (scenario, subsystem, entity)
// triple owns a private generator, so adding a subsystem — or drawing more
// randomness inside one — never perturbs any other stream's sequence. This
// is the property that keeps scenarios mutually isolated: tuning the hold
// times of "slow-readers" cannot shift a single draw of "zipf-shards".
type streamKey struct {
	scenario  string
	subsystem string
	entity    uint64
}

// PartitionedRNG hands out deterministic, mutually independent random
// streams keyed by (scenario, subsystem, entity-id). Streams are derived
// lazily from the root seed through the same SplitMix64 chain as the
// service's own epoch seeds (rng.DeriveSeed), with the string labels folded
// in through FNV-1a — so a stream's sequence is a pure function of
// (root seed, key) and nothing else.
//
// Not safe for concurrent use; the simulator is single-threaded by design.
type PartitionedRNG struct {
	root    uint64
	streams map[streamKey]*rng.Source
}

// NewPartitionedRNG builds a partition rooted at the given seed.
func NewPartitionedRNG(seed uint64) *PartitionedRNG {
	return &PartitionedRNG{root: seed, streams: make(map[streamKey]*rng.Source)}
}

// fnv64 hashes a label string for seed derivation.
func fnv64(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// Stream returns the stream for (scenario, subsystem, entity), creating it
// on first use. Repeated calls return the same generator, so a caller that
// interleaves draws with other subsystems still consumes its own sequence
// in order.
func (p *PartitionedRNG) Stream(scenario, subsystem string, entity uint64) *rng.Source {
	k := streamKey{scenario, subsystem, entity}
	if s, ok := p.streams[k]; ok {
		return s
	}
	seed := rng.DeriveSeed(rng.DeriveSeed(rng.DeriveSeed(p.root, fnv64(scenario)), fnv64(subsystem)), entity)
	s := rng.New(seed)
	p.streams[k] = s
	return s
}
