package sim

import (
	"strings"
	"testing"

	"ballsintoleaves/internal/adversary"
	"ballsintoleaves/internal/proto"
)

// rankProc is a minimal test protocol: round 1, broadcast the ID; on
// delivery, decide 1 + (rank of own ID among received senders) and halt.
// It is correct only in failure-free runs, which is all these engine tests
// need; crash-safe protocols live in internal/core.
type rankProc struct {
	id       proto.ID
	seen     []proto.ID
	name     int
	done     bool
	gotSelf  bool
	received int
}

func (p *rankProc) ID() proto.ID { return p.id }

func (p *rankProc) Send(round int) []byte {
	if round == 1 {
		return []byte{byte(p.id)}
	}
	return nil
}

func (p *rankProc) Deliver(round int, msgs []proto.Message) {
	p.received = len(msgs)
	rank := 0
	for _, m := range msgs {
		if m.From == p.id {
			p.gotSelf = true
		}
		if m.From < p.id {
			rank++
		}
		p.seen = append(p.seen, m.From)
	}
	p.name = rank + 1
	p.done = true
}

func (p *rankProc) Decided() (int, bool) { return p.name, p.name != 0 }
func (p *rankProc) Done() bool           { return p.done }

func makeRankProcs(n int) []proto.Process {
	procs := make([]proto.Process, n)
	for i := 0; i < n; i++ {
		procs[i] = &rankProc{id: proto.ID(10 * (i + 1))}
	}
	return procs
}

func TestFailureFreeRankRenaming(t *testing.T) {
	t.Parallel()
	const n = 8
	eng, err := New(Config{}, makeRankProcs(n))
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 1 {
		t.Fatalf("rounds = %d, want 1", res.Rounds)
	}
	if len(res.Decisions) != n {
		t.Fatalf("decisions = %d, want %d", len(res.Decisions), n)
	}
	if err := proto.Validate(res.Decisions, n); err != nil {
		t.Fatal(err)
	}
	if res.Messages != int64(n*(n-1)) {
		t.Fatalf("messages = %d, want %d", res.Messages, n*(n-1))
	}
	if res.Bytes != int64(n*(n-1)) {
		t.Fatalf("bytes = %d, want %d", res.Bytes, n*(n-1))
	}
}

func TestSelfDelivery(t *testing.T) {
	t.Parallel()
	procs := makeRankProcs(3)
	eng, err := New(Config{}, procs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	for _, p := range procs {
		if !p.(*rankProc).gotSelf {
			t.Fatalf("process %v did not hear its own broadcast", p.ID())
		}
	}
}

func TestCrashSuppressesDelivery(t *testing.T) {
	t.Parallel()
	procs := makeRankProcs(4)
	victim := procs[0].ID()
	adv := adversary.Func{Label: "kill-first", Fn: func(v adversary.RoundView) []adversary.CrashSpec {
		if v.Round() != 1 {
			return nil
		}
		return []adversary.CrashSpec{{Victim: victim, Deliver: adversary.DeliverNone}}
	}}
	eng, err := New(Config{Adversary: adv}, procs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Crashed) != 1 || res.Crashed[0] != victim {
		t.Fatalf("crashed = %v", res.Crashed)
	}
	if len(res.Decisions) != 3 {
		t.Fatalf("decisions = %d, want 3", len(res.Decisions))
	}
	for _, p := range procs[1:] {
		rp := p.(*rankProc)
		if rp.received != 3 {
			t.Fatalf("%v received %d messages, want 3 (victim suppressed)", rp.id, rp.received)
		}
		for _, from := range rp.seen {
			if from == victim {
				t.Fatalf("%v heard the crashed victim", rp.id)
			}
		}
	}
}

func TestPartialDeliveryMask(t *testing.T) {
	t.Parallel()
	procs := makeRankProcs(4)
	victim := procs[0].ID()
	lucky := procs[2].ID()
	adv := adversary.Func{Label: "partial", Fn: func(v adversary.RoundView) []adversary.CrashSpec {
		if v.Round() != 1 {
			return nil
		}
		return []adversary.CrashSpec{{
			Victim:  victim,
			Deliver: func(to proto.ID) bool { return to == lucky },
		}}
	}}
	eng, err := New(Config{Adversary: adv}, procs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	for _, p := range procs[1:] {
		rp := p.(*rankProc)
		heard := false
		for _, from := range rp.seen {
			if from == victim {
				heard = true
			}
		}
		if want := rp.id == lucky; heard != want {
			t.Fatalf("%v heard victim = %v, want %v", rp.id, heard, want)
		}
	}
}

func TestBudgetEnforced(t *testing.T) {
	t.Parallel()
	procs := makeRankProcs(6)
	adv := adversary.Func{Label: "greedy", Fn: func(v adversary.RoundView) []adversary.CrashSpec {
		var specs []adversary.CrashSpec
		for _, id := range v.Alive() {
			specs = append(specs, adversary.CrashSpec{Victim: id})
		}
		return specs
	}}
	eng, err := New(Config{Adversary: adv, Budget: 2}, procs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Crashed) != 2 {
		t.Fatalf("crashed %d processes with budget 2", len(res.Crashed))
	}
	if len(res.Decisions) != 4 {
		t.Fatalf("decisions = %d, want 4", len(res.Decisions))
	}
}

func TestDuplicateCrashSpecIgnored(t *testing.T) {
	t.Parallel()
	procs := makeRankProcs(3)
	victim := procs[0].ID()
	adv := adversary.Func{Label: "double-tap", Fn: func(v adversary.RoundView) []adversary.CrashSpec {
		if v.Round() != 1 {
			return nil
		}
		return []adversary.CrashSpec{{Victim: victim}, {Victim: victim}}
	}}
	eng, err := New(Config{Adversary: adv, Budget: 2}, procs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Crashed) != 1 {
		t.Fatalf("crashed = %v, want single crash", res.Crashed)
	}
}

// stallProc never halts, to exercise the MaxRounds safety net.
type stallProc struct{ id proto.ID }

func (p *stallProc) ID() proto.ID                 { return p.id }
func (p *stallProc) Send(int) []byte              { return []byte{0} }
func (p *stallProc) Deliver(int, []proto.Message) {}
func (p *stallProc) Decided() (int, bool)         { return 0, false }
func (p *stallProc) Done() bool                   { return false }

func TestMaxRoundsAborts(t *testing.T) {
	t.Parallel()
	eng, err := New(Config{MaxRounds: 5}, []proto.Process{&stallProc{id: 1}, &stallProc{id: 2}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err == nil || !strings.Contains(err.Error(), "5 rounds") {
		t.Fatalf("err = %v, want max-rounds failure", err)
	}
	if res.Rounds != 5 {
		t.Fatalf("rounds = %d", res.Rounds)
	}
}

func TestDuplicateIDsRejected(t *testing.T) {
	t.Parallel()
	_, err := New(Config{}, []proto.Process{&stallProc{id: 7}, &stallProc{id: 7}})
	if err == nil {
		t.Fatal("duplicate IDs accepted")
	}
}

func TestNoProcessesRejected(t *testing.T) {
	t.Parallel()
	if _, err := New(Config{}, nil); err == nil {
		t.Fatal("empty process set accepted")
	}
}

// lateCrashProc decides in round 1 but keeps running so it can be crashed
// afterwards, exercising the correct-process filter on Result.Decisions.
type lateCrashProc struct {
	id   proto.ID
	name int
	done bool
}

func (p *lateCrashProc) ID() proto.ID    { return p.id }
func (p *lateCrashProc) Send(int) []byte { return []byte{byte(p.id)} }
func (p *lateCrashProc) Deliver(round int, msgs []proto.Message) {
	rank := 0
	for _, m := range msgs {
		if m.From < p.id {
			rank++
		}
	}
	p.name = rank + 1
	if round >= 3 {
		p.done = true
	}
}
func (p *lateCrashProc) Decided() (int, bool) { return p.name, p.name != 0 }
func (p *lateCrashProc) Done() bool           { return p.done }

func TestDecideThenCrashFiltered(t *testing.T) {
	t.Parallel()
	procs := []proto.Process{&lateCrashProc{id: 1}, &lateCrashProc{id: 2}, &lateCrashProc{id: 3}}
	adv := adversary.Func{Label: "late", Fn: func(v adversary.RoundView) []adversary.CrashSpec {
		if v.Round() != 2 {
			return nil
		}
		return []adversary.CrashSpec{{Victim: 2, Deliver: adversary.DeliverAll}}
	}}
	eng, err := New(Config{Adversary: adv}, procs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.CrashedDecided != 1 {
		t.Fatalf("CrashedDecided = %d, want 1", res.CrashedDecided)
	}
	if len(res.Decisions) != 2 {
		t.Fatalf("decisions = %d, want 2 (crashed decider filtered)", len(res.Decisions))
	}
	for _, d := range res.Decisions {
		if d.ID == 2 {
			t.Fatal("crashed process present in correct decisions")
		}
	}
}

func TestDecisionRoundRecorded(t *testing.T) {
	t.Parallel()
	eng, err := New(Config{}, makeRankProcs(4))
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range res.Decisions {
		if d.Round != 1 {
			t.Fatalf("decision round = %d, want 1", d.Round)
		}
	}
}
