// Package sim is the reference engine for the synchronous message-passing
// model: a deterministic, single-threaded driver that executes lock-step
// rounds over a set of proto.Process state machines, applying an
// adversary's crash-and-partial-delivery plan between the send and receive
// halves of each round.
//
// Determinism contract: with identical processes, adversary and
// configuration, every run produces identical message sequences, decisions
// and round counts. The goroutine-based engine in internal/runtime and the
// fast cohort simulator in internal/core are validated against this engine.
package sim

import (
	"fmt"
	"sort"

	"ballsintoleaves/internal/adversary"
	"ballsintoleaves/internal/proto"
)

// Introspector is optionally implemented by processes to expose algorithmic
// state to strong adaptive adversaries (see adversary.RoundView.Info).
type Introspector interface {
	Info() adversary.BallInfo
}

// Config parameterizes a run. The zero value gets sensible defaults from
// New: failure-free adversary, budget n-1, and a generous round cap.
type Config struct {
	// Adversary plans crashes; nil means failure-free.
	Adversary adversary.Strategy
	// Budget caps the total number of crashes (the model's t). Zero means
	// n-1, the maximum the renaming problem tolerates.
	Budget int
	// MaxRounds aborts runs that exceed it, as a safety net against
	// livelocked protocols. Zero means 10*n + 64.
	MaxRounds int
}

// Result summarizes a completed run.
type Result struct {
	// Rounds is the number of rounds executed until every surviving
	// process halted.
	Rounds int
	// Decisions holds the decisions of correct (never crashed) processes,
	// in ascending ID order.
	Decisions []proto.Decision
	// CrashedDecided counts processes that decided and crashed afterwards.
	CrashedDecided int
	// Crashed lists crashed processes in crash order.
	Crashed []proto.ID
	// Messages and Bytes count network deliveries (excluding a process
	// hearing its own broadcast).
	Messages int64
	Bytes    int64
}

// Engine drives one run. Construct with New, execute with Run.
type Engine struct {
	cfg       Config
	procs     []proto.Process // ascending ID order
	byID      map[proto.ID]int
	alive     []bool
	halted    []bool
	decided   []bool
	decisions []proto.Decision
	crashed   []proto.ID
	round     int
	budget    int
	payloads  [][]byte
	messages  int64
	bytes     int64
}

// New builds an engine over the given processes. Processes must have
// distinct IDs; they are sorted by ID internally.
func New(cfg Config, procs []proto.Process) (*Engine, error) {
	if len(procs) == 0 {
		return nil, fmt.Errorf("sim: no processes")
	}
	sorted := make([]proto.Process, len(procs))
	copy(sorted, procs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID() < sorted[j].ID() })
	byID := make(map[proto.ID]int, len(sorted))
	for i, p := range sorted {
		if _, dup := byID[p.ID()]; dup {
			return nil, fmt.Errorf("sim: duplicate process ID %v", p.ID())
		}
		byID[p.ID()] = i
	}
	if cfg.Adversary == nil {
		cfg.Adversary = adversary.None{}
	}
	if cfg.Budget <= 0 {
		cfg.Budget = len(sorted) - 1
	}
	if cfg.MaxRounds <= 0 {
		cfg.MaxRounds = 10*len(sorted) + 64
	}
	return &Engine{
		cfg:      cfg,
		procs:    sorted,
		byID:     byID,
		alive:    allTrue(len(sorted)),
		halted:   make([]bool, len(sorted)),
		decided:  make([]bool, len(sorted)),
		payloads: make([][]byte, len(sorted)),
		budget:   cfg.Budget,
	}, nil
}

func allTrue(n int) []bool {
	b := make([]bool, n)
	for i := range b {
		b[i] = true
	}
	return b
}

// Run executes rounds until every surviving process halts, then returns the
// result. It errors if MaxRounds is exceeded.
func (e *Engine) Run() (Result, error) {
	for e.pendingWork() {
		if e.round >= e.cfg.MaxRounds {
			return e.result(), fmt.Errorf("sim: exceeded %d rounds without quiescing", e.cfg.MaxRounds)
		}
		e.step()
	}
	return e.result(), nil
}

// pendingWork reports whether any process is still alive and unhalted.
func (e *Engine) pendingWork() bool {
	for i := range e.procs {
		if e.alive[i] && !e.halted[i] {
			return true
		}
	}
	return false
}

// step executes one full round: send, adversary plan, deliver.
func (e *Engine) step() {
	e.round++
	// Send half: collect payloads from all live, unhalted processes.
	for i, p := range e.procs {
		if e.alive[i] && !e.halted[i] {
			e.payloads[i] = p.Send(e.round)
		} else {
			e.payloads[i] = nil
		}
	}
	// Adversary half: plan crashes with full visibility.
	view := &roundView{engine: e}
	specs := e.cfg.Adversary.Plan(view)
	crashedNow := make(map[int]func(proto.ID) bool)
	for _, spec := range specs {
		idx, ok := e.byID[spec.Victim]
		if !ok || !e.alive[idx] || e.halted[idx] || e.budget == 0 {
			continue
		}
		if _, dup := crashedNow[idx]; dup {
			continue
		}
		e.budget--
		e.alive[idx] = false
		e.crashed = append(e.crashed, spec.Victim)
		deliver := spec.Deliver
		if deliver == nil {
			deliver = adversary.DeliverNone
		}
		crashedNow[idx] = deliver
	}
	// Deliver half: every surviving, unhalted process receives the round's
	// messages in ascending sender order, always including its own.
	var msgs []proto.Message
	for i, p := range e.procs {
		if !e.alive[i] || e.halted[i] {
			continue
		}
		msgs = msgs[:0]
		for j, payload := range e.payloads {
			if payload == nil {
				continue
			}
			if deliver, crashed := crashedNow[j]; crashed {
				if !deliver(p.ID()) {
					continue
				}
			}
			msgs = append(msgs, proto.Message{From: e.procs[j].ID(), Payload: payload})
			if i != j {
				e.messages++
				e.bytes += int64(len(payload))
			}
		}
		p.Deliver(e.round, msgs)
		if !e.decided[i] {
			if name, ok := p.Decided(); ok {
				e.decided[i] = true
				e.decisions = append(e.decisions, proto.Decision{ID: p.ID(), Name: name, Round: e.round})
			}
		}
		if p.Done() {
			e.halted[i] = true
		}
	}
}

// result assembles the Result, filtering decisions down to correct
// processes.
func (e *Engine) result() Result {
	res := Result{
		Rounds:   e.round,
		Crashed:  e.crashed,
		Messages: e.messages,
		Bytes:    e.bytes,
	}
	for _, d := range e.decisions {
		if e.alive[e.byID[d.ID]] {
			res.Decisions = append(res.Decisions, d)
		} else {
			res.CrashedDecided++
		}
	}
	sort.Slice(res.Decisions, func(i, j int) bool { return res.Decisions[i].ID < res.Decisions[j].ID })
	return res
}

// roundView implements adversary.RoundView over the engine's current round.
type roundView struct {
	engine *Engine
	alive  []proto.ID // lazily built
}

func (v *roundView) Round() int { return v.engine.round }
func (v *roundView) N() int     { return len(v.engine.procs) }

func (v *roundView) Alive() []proto.ID {
	if v.alive == nil {
		for i, p := range v.engine.procs {
			if v.engine.alive[i] && !v.engine.halted[i] {
				v.alive = append(v.alive, p.ID())
			}
		}
	}
	return v.alive
}

func (v *roundView) Payload(id proto.ID) []byte {
	idx, ok := v.engine.byID[id]
	if !ok {
		return nil
	}
	return v.engine.payloads[idx]
}

func (v *roundView) Info(id proto.ID) (adversary.BallInfo, bool) {
	idx, ok := v.engine.byID[id]
	if !ok || !v.engine.alive[idx] {
		return adversary.BallInfo{}, false
	}
	if intro, ok := v.engine.procs[idx].(Introspector); ok {
		return intro.Info(), true
	}
	return adversary.BallInfo{}, false
}

func (v *roundView) Budget() int { return v.engine.budget }
