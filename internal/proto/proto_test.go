package proto

import (
	"strings"
	"testing"
)

func TestValidateAccepts(t *testing.T) {
	t.Parallel()
	decisions := []Decision{
		{ID: 10, Name: 1, Round: 4},
		{ID: 20, Name: 3, Round: 4},
		{ID: 30, Name: 2, Round: 6},
	}
	if err := Validate(decisions, 3); err != nil {
		t.Fatalf("valid decisions rejected: %v", err)
	}
}

func TestValidateEmpty(t *testing.T) {
	t.Parallel()
	if err := Validate(nil, 0); err != nil {
		t.Fatalf("empty decision set rejected: %v", err)
	}
}

func TestValidateUniqueness(t *testing.T) {
	t.Parallel()
	decisions := []Decision{
		{ID: 10, Name: 2},
		{ID: 20, Name: 2},
	}
	err := Validate(decisions, 4)
	if err == nil || !strings.Contains(err.Error(), "uniqueness") {
		t.Fatalf("duplicate names not flagged as uniqueness violation: %v", err)
	}
}

func TestValidateValidity(t *testing.T) {
	t.Parallel()
	for _, bad := range []int{0, -1, 5} {
		err := Validate([]Decision{{ID: 1, Name: bad}}, 4)
		if err == nil || !strings.Contains(err.Error(), "validity") {
			t.Fatalf("name %d not flagged as validity violation: %v", bad, err)
		}
	}
}

func TestIDString(t *testing.T) {
	t.Parallel()
	if got := ID(0xab).String(); got != "pab" {
		t.Fatalf("ID string = %q", got)
	}
}
