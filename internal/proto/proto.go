// Package proto defines the synchronous message-passing model shared by all
// protocols and engines in this repository: process identifiers, messages,
// the lock-step round contract, and decision reporting.
//
// The model follows the paper (Alistarh, Denysyuk, Rodrigues, Shavit,
// "Balls-into-Leaves", PODC 2014, §3): computation proceeds in lock-step
// rounds over a fully connected network of n processes. In each round every
// process may broadcast one message, receive the messages delivered to it,
// flip coins, and change state. Up to t < n processes crash; a process that
// crashes during its broadcast delivers that final message to an arbitrary,
// adversary-chosen subset of recipients and is silent afterwards.
package proto

import "fmt"

// ID is a process's original identifier, drawn from an unbounded namespace.
// The algorithms in this repository are comparison-based: only the relative
// order of IDs matters, never their numeric value.
type ID uint64

// String renders the ID in a compact hexadecimal form for traces.
func (id ID) String() string { return fmt.Sprintf("p%x", uint64(id)) }

// Message is a payload delivered to a process during a round's exchange.
// From identifies the sender; engines guarantee at most one message per
// sender per round.
type Message struct {
	From    ID
	Payload []byte
}

// Process is the state-machine contract driven by the simulation engines
// (internal/sim and internal/runtime) and, through internal/transport's Run
// loop, by the real network transports. The driver calls Send at the start
// of each round to collect the process's broadcast payload, applies the
// adversary's crash and delivery plan (or, on a real network, observes
// actual connection failures), and then calls Deliver with the messages
// that reached the process.
//
// Implementations must be deterministic given their construction-time seed:
// the engines and the transport layer rely on replayability for
// cross-validation.
type Process interface {
	// ID returns the process's original identifier.
	ID() ID

	// Send returns the payload to broadcast in the given round, or nil if
	// the process has nothing to send. Rounds are numbered from 1.
	Send(round int) []byte

	// Deliver hands the process every message that reached it in the given
	// round, in ascending order of sender ID. The slice is owned by the
	// engine; implementations must not retain it across calls.
	Deliver(round int, msgs []Message)

	// Decided reports the process's decided name (1-based rank in the
	// target namespace) once a decision has been made.
	Decided() (name int, ok bool)

	// Done reports whether the process has halted: it will neither send nor
	// expect further deliveries. Engines stop scheduling done processes.
	Done() bool
}

// Decision records one process's output for result collection.
type Decision struct {
	ID    ID
	Name  int // 1-based new name in 1..n
	Round int // round in which the decision was made
}

// Validate checks the three renaming conditions (validity and uniqueness;
// termination is implied by all correct processes appearing in decisions)
// over the decisions of correct processes, against a target namespace 1..m.
// It returns a descriptive error for the first violated condition.
func Validate(decisions []Decision, m int) error {
	taken := make(map[int]ID, len(decisions))
	for _, d := range decisions {
		if d.Name < 1 || d.Name > m {
			return fmt.Errorf("validity violated: %v decided %d outside 1..%d", d.ID, d.Name, m)
		}
		if prev, dup := taken[d.Name]; dup {
			return fmt.Errorf("uniqueness violated: %v and %v both decided %d", prev, d.ID, d.Name)
		}
		taken[d.Name] = d.ID
	}
	return nil
}
