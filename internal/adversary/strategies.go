package adversary

import (
	"fmt"

	"ballsintoleaves/internal/proto"
	"ballsintoleaves/internal/rng"
)

// Splitter implements the §6 single-crash pattern: in the given round, the
// lowest-labelled alive process crashes while delivering its broadcast to
// every second process by label rank. Against deterministic rank-indexed
// leaf choices this single crash forces up to n/2 pairwise collisions,
// because half the survivors see their rank shifted by one.
type Splitter struct {
	// Round is the round to strike; the Balls-into-Leaves init round is 1
	// and the first candidate-path round is 2, so 2 attacks the path
	// choice and 1 attacks group membership.
	Round int
	done  bool
}

// Name implements Strategy.
func (s *Splitter) Name() string { return "splitter" }

// Plan implements Strategy.
func (s *Splitter) Plan(view RoundView) []CrashSpec {
	if s.done || view.Round() != s.Round || view.Budget() < 1 {
		return nil
	}
	alive := view.Alive()
	if len(alive) < 2 {
		return nil
	}
	s.done = true
	victim := alive[0]
	survivors := alive[1:]
	return []CrashSpec{{Victim: victim, Deliver: AlternatingByRank(survivors)}}
}

// AtRound crashes Count processes in a single round. Victims are the
// lowest-labelled alive processes (or highest with FromTop). Delivery
// follows Pattern; the default (zero value) delivers to nobody.
type AtRound struct {
	Round   int
	Count   int
	FromTop bool
	// Pattern builds the delivery predicate for one victim given the
	// surviving processes in ascending order. Nil means DeliverNone.
	Pattern func(survivors []proto.ID) func(proto.ID) bool
	done    bool
}

// Name implements Strategy.
func (a *AtRound) Name() string { return "at-round" }

// Plan implements Strategy.
func (a *AtRound) Plan(view RoundView) []CrashSpec {
	if a.done || view.Round() != a.Round {
		return nil
	}
	a.done = true
	alive := view.Alive()
	count := a.Count
	if count > len(alive)-1 {
		count = len(alive) - 1 // keep at least one process alive
	}
	if count > view.Budget() {
		count = view.Budget()
	}
	if count <= 0 {
		return nil
	}
	victims := make(map[proto.ID]bool, count)
	specs := make([]CrashSpec, 0, count)
	for i := 0; i < count; i++ {
		if a.FromTop {
			victims[alive[len(alive)-1-i]] = true
		} else {
			victims[alive[i]] = true
		}
	}
	var survivors []proto.ID
	for _, id := range alive {
		if !victims[id] {
			survivors = append(survivors, id)
		}
	}
	for id := range victims {
		deliver := DeliverNone
		if a.Pattern != nil {
			deliver = a.Pattern(survivors)
		}
		specs = append(specs, CrashSpec{Victim: id, Deliver: deliver})
	}
	return specs
}

// RankShifter is the sustained version of the splitter, targeting
// deterministic rank-descent algorithms: in every path-choice round (the
// even rounds of the Balls-into-Leaves schedule) it crashes the
// lowest-labelled alive process, delivering to alternating survivors so the
// two halves of the system permanently disagree on ranks. This is the
// comparison-based "order-equivalence" pressure behind the Ω(log n) lower
// bound of Chaudhuri–Herlihy–Tuttle.
type RankShifter struct {
	// Period selects which rounds strike: rounds r with r % Period ==
	// Phase are attacked. The default (0,0) is normalized to (2,0),
	// striking every path round.
	Period int
	Phase  int
}

// Name implements Strategy.
func (r *RankShifter) Name() string { return "rank-shifter" }

// Plan implements Strategy.
func (r *RankShifter) Plan(view RoundView) []CrashSpec {
	period, phase := r.Period, r.Phase
	if period <= 0 {
		period, phase = 2, 0
	}
	if view.Round()%period != phase || view.Budget() < 1 {
		return nil
	}
	alive := view.Alive()
	if len(alive) < 3 {
		return nil
	}
	return []CrashSpec{{Victim: alive[0], Deliver: AlternatingByRank(alive[1:])}}
}

// DeepTarget attacks progress: each round it crashes up to PerRound
// processes that have already reached a leaf (hold a name), freeing their
// leaves in some views and not others. §5.3 argues such crashes cannot slow
// the algorithm; experiment E4 measures that claim.
type DeepTarget struct {
	PerRound int
	Seed     uint64
	src      *rng.Source
}

// Name implements Strategy.
func (d *DeepTarget) Name() string { return "deep-target" }

// Plan implements Strategy.
func (d *DeepTarget) Plan(view RoundView) []CrashSpec {
	if d.src == nil {
		d.src = rng.Derive(d.Seed, 0xdeeb)
	}
	per := d.PerRound
	if per <= 0 {
		per = 1
	}
	alive := view.Alive()
	var atLeaf []proto.ID
	for _, id := range alive {
		if info, ok := view.Info(id); ok && info.AtLeaf {
			atLeaf = append(atLeaf, id)
		}
	}
	var specs []CrashSpec
	for i := 0; i < per && len(atLeaf) > 0 && len(specs) < view.Budget(); i++ {
		idx := d.src.Intn(len(atLeaf))
		victim := atLeaf[idx]
		atLeaf = append(atLeaf[:idx:idx], atLeaf[idx+1:]...)
		// Deliver to a random half so views disagree about the freed leaf.
		recvSrc := rng.Derive(d.Seed^uint64(victim), uint64(view.Round()))
		received := make(map[proto.ID]bool)
		for _, id := range alive {
			if id != victim && recvSrc.Coin(1, 2) {
				received[id] = true
			}
		}
		specs = append(specs, CrashSpec{Victim: victim, Deliver: DeliverToSet(received)})
	}
	return specs
}

// OnePerPhase crashes exactly one process per protocol phase (every Period
// rounds), alternating delivery halves — a slow-burn adversary for the
// deterministic-termination experiment E8.
type OnePerPhase struct {
	Period int
}

// Name implements Strategy.
func (o *OnePerPhase) Name() string { return "one-per-phase" }

// Plan implements Strategy.
func (o *OnePerPhase) Plan(view RoundView) []CrashSpec {
	period := o.Period
	if period <= 0 {
		period = 2
	}
	if view.Round()%period != 0 || view.Budget() < 1 {
		return nil
	}
	alive := view.Alive()
	if len(alive) < 3 {
		return nil
	}
	// Crash the median-ranked process: it shifts the most ranks below it
	// while staying unpredictable to label-indexed schemes.
	victim := alive[len(alive)/2]
	var survivors []proto.ID
	for _, id := range alive {
		if id != victim {
			survivors = append(survivors, id)
		}
	}
	return []CrashSpec{{Victim: victim, Deliver: PrefixByRank(survivors, len(survivors)/2)}}
}

// Scripted crashes one named victim in one named round, delivering its
// final broadcast to alternating survivors by rank (the splitter pattern,
// but with the victim chosen by identity rather than by rank). Because the
// schedule is fully determined by (Round, Victim), the same Scripted value
// reproduces the same execution on every engine — internal/sim,
// internal/runtime, and the transport layer's coordinators — which is what
// the transport-vs-sim equivalence tests and blserve's
// -crash-round/-crash-id fault injection rely on.
//
// Construct with NewScripted to have the schedule validated; multi-crash
// schedules go through NewScript.
type Scripted struct {
	// Round is the 1-based round in which the victim crashes
	// mid-broadcast.
	Round int
	// Victim is the original identifier of the process to crash. If it is
	// not alive in that round the script is a no-op.
	Victim proto.ID
	done   bool
}

// Name implements Strategy.
func (s *Scripted) Name() string { return "scripted" }

// Plan implements Strategy.
func (s *Scripted) Plan(view RoundView) []CrashSpec {
	if s.done || view.Round() != s.Round || view.Budget() < 1 {
		return nil
	}
	alive := view.Alive()
	if len(alive) == 0 {
		return nil
	}
	survivors := make([]proto.ID, 0, len(alive)-1)
	found := false
	for _, id := range alive {
		if id == s.Victim {
			found = true
		} else {
			survivors = append(survivors, id)
		}
	}
	if !found {
		return nil
	}
	s.done = true
	return []CrashSpec{{Victim: s.Victim, Deliver: AlternatingByRank(survivors)}}
}

// NewScripted validates and builds a single-crash script: the round must
// be positive and the victim non-zero (engines reject zero process IDs, so
// a zero victim is always a schedule bug, not a no-op).
func NewScripted(round int, victim proto.ID) (*Scripted, error) {
	if round < 1 {
		return nil, fmt.Errorf("adversary: scripted round must be >= 1, got %d", round)
	}
	if victim == 0 {
		return nil, fmt.Errorf("adversary: scripted victim must be non-zero")
	}
	return &Scripted{Round: round, Victim: victim}, nil
}

// ScriptEntry names one crash of a multi-crash script: the given victim
// crashes mid-broadcast in the given round, delivering to alternating
// survivors by rank.
type ScriptEntry struct {
	Round  int
	Victim proto.ID
}

// Script is the validated multi-crash generalization of Scripted: a fixed
// schedule of (round, victim) crashes, each delivering its final broadcast
// to alternating survivors. Schedules are validated at construction —
// non-positive rounds, out-of-order rounds, zero or duplicate victims are
// construction errors rather than silently dropped entries. At plan time
// an entry is skipped (exactly as an unavailable Scripted victim is) when
// its victim is no longer alive or the engine's crash budget is exhausted;
// skipped victims stay in the survivor delivery set, since they keep
// executing.
type Script struct {
	entries []ScriptEntry
	next    int
}

// NewScript validates and builds a crash schedule.
func NewScript(entries ...ScriptEntry) (*Script, error) {
	seen := make(map[proto.ID]int, len(entries))
	for i, e := range entries {
		if e.Round < 1 {
			return nil, fmt.Errorf("adversary: script entry %d: round must be >= 1, got %d", i, e.Round)
		}
		if e.Victim == 0 {
			return nil, fmt.Errorf("adversary: script entry %d: victim must be non-zero", i)
		}
		if i > 0 && e.Round < entries[i-1].Round {
			return nil, fmt.Errorf("adversary: script entry %d: round %d after round %d (schedule must be in round order)",
				i, e.Round, entries[i-1].Round)
		}
		if prev, dup := seen[e.Victim]; dup {
			return nil, fmt.Errorf("adversary: script entries %d and %d both crash victim %v", prev, i, e.Victim)
		}
		seen[e.Victim] = i
	}
	return &Script{entries: append([]ScriptEntry(nil), entries...)}, nil
}

// Name implements Strategy.
func (s *Script) Name() string { return "script" }

// Plan implements Strategy.
func (s *Script) Plan(view RoundView) []CrashSpec {
	// Entries are in round order, so the schedule is a cursor: skip past
	// rounds (a strategy is never consulted for the same round twice), then
	// plan every entry for this round.
	for s.next < len(s.entries) && s.entries[s.next].Round < view.Round() {
		s.next++
	}
	if s.next >= len(s.entries) || s.entries[s.next].Round != view.Round() {
		return nil
	}
	var victims []proto.ID
	for s.next < len(s.entries) && s.entries[s.next].Round == view.Round() {
		victims = append(victims, s.entries[s.next].Victim)
		s.next++
	}
	// Decide who actually crashes first: absent victims and entries beyond
	// the engine's remaining budget stay alive, so they must remain in the
	// survivor set and keep receiving deliveries. Same-round victims never
	// deliver to each other (they stopped executing), so every crashing
	// victim's alternating pattern ranks the same survivor set.
	alive := view.Alive()
	aliveSet := make(map[proto.ID]bool, len(alive))
	for _, id := range alive {
		aliveSet[id] = true
	}
	crashing := make(map[proto.ID]bool, len(victims))
	order := make([]proto.ID, 0, len(victims))
	for _, v := range victims {
		if aliveSet[v] && !crashing[v] && len(order) < view.Budget() {
			crashing[v] = true
			order = append(order, v)
		}
	}
	if len(order) == 0 {
		return nil
	}
	survivors := make([]proto.ID, 0, len(alive))
	for _, id := range alive {
		if !crashing[id] {
			survivors = append(survivors, id)
		}
	}
	specs := make([]CrashSpec, 0, len(order))
	for _, v := range order {
		specs = append(specs, CrashSpec{Victim: v, Deliver: AlternatingByRank(survivors)})
	}
	return specs
}

// Recorder wraps a Strategy and records every crash it actually planned,
// for assertions in tests and for replaying executions.
type Recorder struct {
	Inner Strategy
	Log   []RecordedCrash
}

// RecordedCrash is one crash the wrapped strategy planned.
type RecordedCrash struct {
	Round  int
	Victim proto.ID
}

// Name implements Strategy.
func (r *Recorder) Name() string { return r.Inner.Name() + "+recorded" }

// Plan implements Strategy.
func (r *Recorder) Plan(view RoundView) []CrashSpec {
	specs := r.Inner.Plan(view)
	for _, s := range specs {
		r.Log = append(r.Log, RecordedCrash{Round: view.Round(), Victim: s.Victim})
	}
	return specs
}
