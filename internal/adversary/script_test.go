package adversary

import (
	"strings"
	"testing"

	"ballsintoleaves/internal/proto"
)

func TestNewScriptedValidates(t *testing.T) {
	t.Parallel()
	if _, err := NewScripted(0, 5); err == nil {
		t.Fatal("round 0 accepted")
	}
	if _, err := NewScripted(-3, 5); err == nil {
		t.Fatal("negative round accepted")
	}
	if _, err := NewScripted(2, 0); err == nil {
		t.Fatal("zero victim accepted")
	}
	s, err := NewScripted(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if s.Round != 2 || s.Victim != 5 {
		t.Fatalf("scripted = %+v", s)
	}
}

func TestNewScriptRejectsBadSchedules(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name    string
		entries []ScriptEntry
		wantErr string
	}{
		{"negative round", []ScriptEntry{{Round: -1, Victim: 10}}, "round must be >= 1"},
		{"zero round", []ScriptEntry{{Round: 0, Victim: 10}}, "round must be >= 1"},
		{"zero victim", []ScriptEntry{{Round: 1, Victim: 0}}, "victim must be non-zero"},
		{"out-of-order rounds", []ScriptEntry{{Round: 4, Victim: 10}, {Round: 2, Victim: 20}}, "round order"},
		{"duplicate victim", []ScriptEntry{{Round: 1, Victim: 10}, {Round: 3, Victim: 10}}, "both crash victim"},
		{"duplicate victim same round", []ScriptEntry{{Round: 2, Victim: 10}, {Round: 2, Victim: 10}}, "both crash victim"},
	}
	for _, tc := range cases {
		_, err := NewScript(tc.entries...)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		}
	}
}

func TestScriptPlansScheduleInOrder(t *testing.T) {
	t.Parallel()
	s, err := NewScript(
		ScriptEntry{Round: 2, Victim: 10},
		ScriptEntry{Round: 2, Victim: 30},
		ScriptEntry{Round: 5, Victim: 20},
	)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "script" {
		t.Fatal("name")
	}
	if specs := s.Plan(&fakeView{round: 1, alive: idsUpTo(4), budget: 3}); specs != nil {
		t.Fatalf("fired early: %v", specs)
	}
	specs := s.Plan(&fakeView{round: 2, alive: idsUpTo(4), budget: 3})
	if len(specs) != 2 || specs[0].Victim != 10 || specs[1].Victim != 30 {
		t.Fatalf("round 2 specs = %+v", specs)
	}
	// Survivors of round 2 are 20 and 40 for both victims (same-round
	// victims never deliver to each other); alternating delivery reaches
	// rank 0 only.
	if !specs[0].Deliver(20) || specs[0].Deliver(40) {
		t.Fatal("round 2 delivery pattern wrong")
	}
	if specs := s.Plan(&fakeView{round: 3, alive: idsUpTo(4), budget: 3}); specs != nil {
		t.Fatalf("fired between scheduled rounds: %v", specs)
	}
	specs = s.Plan(&fakeView{round: 5, alive: []proto.ID{20, 40}, budget: 3})
	if len(specs) != 1 || specs[0].Victim != 20 {
		t.Fatalf("round 5 specs = %+v", specs)
	}
	if again := s.Plan(&fakeView{round: 5, alive: idsUpTo(4), budget: 3}); again != nil {
		t.Fatalf("replanned a consumed round: %v", again)
	}
}

func TestScriptSkipsDeadVictimsAndBudget(t *testing.T) {
	t.Parallel()
	s, err := NewScript(ScriptEntry{Round: 1, Victim: 99})
	if err != nil {
		t.Fatal(err)
	}
	if specs := s.Plan(&fakeView{round: 1, alive: idsUpTo(4), budget: 3}); specs != nil {
		t.Fatalf("crashed an absent victim: %v", specs)
	}
	s2, err := NewScript(ScriptEntry{Round: 1, Victim: 10}, ScriptEntry{Round: 1, Victim: 20})
	if err != nil {
		t.Fatal(err)
	}
	specs := s2.Plan(&fakeView{round: 1, alive: idsUpTo(4), budget: 1})
	if len(specs) != 1 || specs[0].Victim != 10 {
		t.Fatalf("budget 1 specs = %+v", specs)
	}
	// The budget-skipped victim (20) stays alive, so it remains in the
	// survivor set: survivors {20,30,40}, alternating delivery reaches
	// ranks 0 and 2.
	if !specs[0].Deliver(20) || specs[0].Deliver(30) || !specs[0].Deliver(40) {
		t.Fatal("budget-skipped victim excluded from the survivor delivery set")
	}
}
