package adversary

import (
	"testing"

	"ballsintoleaves/internal/proto"
)

// fakeView is a minimal RoundView for driving strategies directly.
type fakeView struct {
	round  int
	alive  []proto.ID
	budget int
	infos  map[proto.ID]BallInfo
}

func (v *fakeView) Round() int              { return v.round }
func (v *fakeView) N() int                  { return len(v.alive) }
func (v *fakeView) Alive() []proto.ID       { return v.alive }
func (v *fakeView) Payload(proto.ID) []byte { return nil }
func (v *fakeView) Budget() int             { return v.budget }
func (v *fakeView) Info(id proto.ID) (BallInfo, bool) {
	info, ok := v.infos[id]
	return info, ok
}

func idsUpTo(n int) []proto.ID {
	out := make([]proto.ID, n)
	for i := range out {
		out[i] = proto.ID(10 * (i + 1))
	}
	return out
}

func TestNonePlansNothing(t *testing.T) {
	t.Parallel()
	if specs := (None{}).Plan(&fakeView{round: 1, alive: idsUpTo(4), budget: 3}); specs != nil {
		t.Fatalf("specs = %v", specs)
	}
	if (None{}).Name() != "none" {
		t.Fatal("name")
	}
}

func TestDeliveryHelpers(t *testing.T) {
	t.Parallel()
	if DeliverNone(5) || !DeliverAll(5) {
		t.Fatal("DeliverNone/DeliverAll")
	}
	set := DeliverToSet(map[proto.ID]bool{7: true})
	if !set(7) || set(8) {
		t.Fatal("DeliverToSet")
	}
}

func TestAlternatingByRank(t *testing.T) {
	t.Parallel()
	ordered := idsUpTo(5)
	f := AlternatingByRank(ordered)
	want := map[proto.ID]bool{10: true, 20: false, 30: true, 40: false, 50: true}
	for id, w := range want {
		if f(id) != w {
			t.Fatalf("deliver(%v) = %v, want %v", id, f(id), w)
		}
	}
	if f(999) {
		t.Fatal("unknown id delivered")
	}
}

func TestPrefixByRank(t *testing.T) {
	t.Parallel()
	f := PrefixByRank(idsUpTo(5), 2)
	for i, id := range idsUpTo(5) {
		if got, want := f(id), i < 2; got != want {
			t.Fatalf("deliver(%v) = %v, want %v", id, got, want)
		}
	}
}

func TestSplitterFiresOnceAtConfiguredRound(t *testing.T) {
	t.Parallel()
	s := &Splitter{Round: 2}
	if specs := s.Plan(&fakeView{round: 1, alive: idsUpTo(4), budget: 3}); specs != nil {
		t.Fatalf("fired early: %v", specs)
	}
	specs := s.Plan(&fakeView{round: 2, alive: idsUpTo(4), budget: 3})
	if len(specs) != 1 || specs[0].Victim != 10 {
		t.Fatalf("specs = %+v", specs)
	}
	// Delivery pattern: survivors 20,30,40; ranks 0,2 receive.
	if !specs[0].Deliver(20) || specs[0].Deliver(30) || !specs[0].Deliver(40) {
		t.Fatal("alternating delivery wrong")
	}
	if again := s.Plan(&fakeView{round: 2, alive: idsUpTo(4), budget: 3}); again != nil {
		t.Fatalf("fired twice: %v", again)
	}
}

func TestSplitterRespectsBudget(t *testing.T) {
	t.Parallel()
	s := &Splitter{Round: 1}
	if specs := s.Plan(&fakeView{round: 1, alive: idsUpTo(4), budget: 0}); specs != nil {
		t.Fatalf("ignored budget: %v", specs)
	}
}

func TestAtRoundCountAndPattern(t *testing.T) {
	t.Parallel()
	a := &AtRound{Round: 3, Count: 2, Pattern: func(s []proto.ID) func(proto.ID) bool {
		return PrefixByRank(s, 1)
	}}
	specs := a.Plan(&fakeView{round: 3, alive: idsUpTo(5), budget: 10})
	if len(specs) != 2 {
		t.Fatalf("%d specs", len(specs))
	}
	victims := map[proto.ID]bool{}
	for _, s := range specs {
		victims[s.Victim] = true
		// Survivors are 30,40,50; prefix 1 delivers to 30 only.
		if !s.Deliver(30) || s.Deliver(40) {
			t.Fatal("pattern not applied")
		}
	}
	if !victims[10] || !victims[20] {
		t.Fatalf("victims = %v", victims)
	}
}

func TestAtRoundFromTop(t *testing.T) {
	t.Parallel()
	a := &AtRound{Round: 1, Count: 1, FromTop: true}
	specs := a.Plan(&fakeView{round: 1, alive: idsUpTo(3), budget: 5})
	if len(specs) != 1 || specs[0].Victim != 30 {
		t.Fatalf("specs = %+v", specs)
	}
}

func TestAtRoundKeepsOneAlive(t *testing.T) {
	t.Parallel()
	a := &AtRound{Round: 1, Count: 10}
	specs := a.Plan(&fakeView{round: 1, alive: idsUpTo(3), budget: 10})
	if len(specs) != 2 {
		t.Fatalf("%d specs, want 2 (one survivor)", len(specs))
	}
}

func TestRandomRespectsBudgetAndWindow(t *testing.T) {
	t.Parallel()
	r := NewRandom(3, 2, 42)
	total := 0
	for round := 1; round <= 5; round++ {
		specs := r.Plan(&fakeView{round: round, alive: idsUpTo(10), budget: 9})
		if round > 2 && len(specs) > 0 {
			t.Fatalf("round %d: crashed outside window", round)
		}
		total += len(specs)
	}
	if total != 3 {
		t.Fatalf("planned %d crashes, want 3", total)
	}
}

func TestRandomDeterministicReplay(t *testing.T) {
	t.Parallel()
	run := func() []proto.ID {
		r := NewRandom(4, 3, 9)
		var victims []proto.ID
		for round := 1; round <= 3; round++ {
			for _, s := range r.Plan(&fakeView{round: round, alive: idsUpTo(12), budget: 11}) {
				victims = append(victims, s.Victim)
			}
		}
		return victims
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("replay diverged: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("victim %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestRankShifterStrikesEvenRounds(t *testing.T) {
	t.Parallel()
	r := &RankShifter{}
	if specs := r.Plan(&fakeView{round: 3, alive: idsUpTo(5), budget: 4}); specs != nil {
		t.Fatalf("fired on odd round: %v", specs)
	}
	specs := r.Plan(&fakeView{round: 4, alive: idsUpTo(5), budget: 4})
	if len(specs) != 1 || specs[0].Victim != 10 {
		t.Fatalf("specs = %+v", specs)
	}
}

func TestRankShifterSparesTinySystems(t *testing.T) {
	t.Parallel()
	r := &RankShifter{}
	if specs := r.Plan(&fakeView{round: 2, alive: idsUpTo(2), budget: 1}); specs != nil {
		t.Fatalf("attacked a 2-process system: %v", specs)
	}
}

func TestDeepTargetOnlyHitsLeafHolders(t *testing.T) {
	t.Parallel()
	d := &DeepTarget{PerRound: 2, Seed: 1}
	view := &fakeView{
		round: 4, alive: idsUpTo(6), budget: 5,
		infos: map[proto.ID]BallInfo{
			10: {Label: 10, AtLeaf: false},
			20: {Label: 20, AtLeaf: true},
			30: {Label: 30, AtLeaf: true},
			40: {Label: 40, AtLeaf: false},
		},
	}
	specs := d.Plan(view)
	if len(specs) != 2 {
		t.Fatalf("%d specs", len(specs))
	}
	for _, s := range specs {
		if s.Victim != 20 && s.Victim != 30 {
			t.Fatalf("victim %v is not at a leaf", s.Victim)
		}
	}
}

func TestOnePerPhasePeriod(t *testing.T) {
	t.Parallel()
	o := &OnePerPhase{}
	if specs := o.Plan(&fakeView{round: 3, alive: idsUpTo(6), budget: 5}); specs != nil {
		t.Fatalf("fired off-period: %v", specs)
	}
	specs := o.Plan(&fakeView{round: 4, alive: idsUpTo(6), budget: 5})
	if len(specs) != 1 || specs[0].Victim != 40 { // median of 6
		t.Fatalf("specs = %+v", specs)
	}
}

func TestRecorderLogs(t *testing.T) {
	t.Parallel()
	rec := &Recorder{Inner: &Splitter{Round: 1}}
	rec.Plan(&fakeView{round: 1, alive: idsUpTo(4), budget: 3})
	if len(rec.Log) != 1 || rec.Log[0].Round != 1 || rec.Log[0].Victim != 10 {
		t.Fatalf("log = %+v", rec.Log)
	}
	if rec.Name() != "splitter+recorded" {
		t.Fatalf("name = %s", rec.Name())
	}
}

func TestFuncAdapter(t *testing.T) {
	t.Parallel()
	called := 0
	f := Func{Label: "probe", Fn: func(RoundView) []CrashSpec { called++; return nil }}
	f.Plan(&fakeView{})
	if called != 1 || f.Name() != "probe" {
		t.Fatal("func adapter")
	}
	empty := Func{Label: "nil"}
	if empty.Plan(&fakeView{}) != nil {
		t.Fatal("nil fn should plan nothing")
	}
}

func TestScriptedCrashesNamedVictimOnce(t *testing.T) {
	t.Parallel()
	s := &Scripted{Round: 3, Victim: 30}
	if specs := s.Plan(&fakeView{round: 2, alive: idsUpTo(4), budget: 3}); specs != nil {
		t.Fatalf("fired early: %v", specs)
	}
	specs := s.Plan(&fakeView{round: 3, alive: idsUpTo(4), budget: 3})
	if len(specs) != 1 || specs[0].Victim != 30 {
		t.Fatalf("specs = %+v", specs)
	}
	// Survivors 10,20,40; alternating delivery reaches ranks 0 and 2.
	if !specs[0].Deliver(10) || specs[0].Deliver(20) || !specs[0].Deliver(40) {
		t.Fatal("alternating delivery wrong")
	}
	if again := s.Plan(&fakeView{round: 3, alive: idsUpTo(4), budget: 3}); again != nil {
		t.Fatalf("fired twice: %v", again)
	}
}

func TestScriptedSkipsDeadVictimAndBudget(t *testing.T) {
	t.Parallel()
	s := &Scripted{Round: 1, Victim: 99}
	if specs := s.Plan(&fakeView{round: 1, alive: idsUpTo(4), budget: 3}); specs != nil {
		t.Fatalf("crashed an absent victim: %v", specs)
	}
	s2 := &Scripted{Round: 1, Victim: 10}
	if specs := s2.Plan(&fakeView{round: 1, alive: idsUpTo(4), budget: 0}); specs != nil {
		t.Fatalf("ignored budget: %v", specs)
	}
}

func TestScriptedEmptyAliveSetIsNoOp(t *testing.T) {
	t.Parallel()
	s := &Scripted{Round: 2, Victim: 10}
	// Every other participant already crashed or halted: Plan must be a
	// clean no-op, not a panic (regression: negative survivor capacity).
	if specs := s.Plan(&fakeView{round: 2, alive: nil, budget: 1}); specs != nil {
		t.Fatalf("specs = %v", specs)
	}
}
