// Package adversary implements the strong adaptive adversary of the paper's
// model (§3): before each round's delivery, the adversary observes all
// process states, the payloads about to be broadcast, and the outcomes of
// the round's coin flips (they are encoded in the payloads), then chooses
// which processes crash and — crucially — which subset of recipients still
// receives each crashing process's final broadcast.
//
// Both simulation engines (internal/sim, internal/runtime) and the fast
// cohort simulator (internal/core) drive the same Strategy interface, so a
// strategy written once can attack any algorithm on any engine. Engines
// enforce the global crash budget t < n; strategies may consult the
// remaining budget through the RoundView.
package adversary

import (
	"ballsintoleaves/internal/proto"
	"ballsintoleaves/internal/rng"
)

// BallInfo is the protocol-independent state snapshot engines expose to
// strategies, supporting "strong adversary" attacks that target processes by
// their algorithmic progress (e.g. depth in the virtual tree).
type BallInfo struct {
	Label  proto.ID
	Depth  int  // depth of the process's current tree position (0 = root)
	AtLeaf bool // true once the process occupies a leaf / holds a name
}

// RoundView is the adversary's window into the round about to be delivered.
type RoundView interface {
	// Round is the 1-based round number being delivered.
	Round() int
	// N is the total number of processes in the system.
	N() int
	// Alive lists processes that have not crashed, in ascending ID order.
	// Processes that halted normally are not listed.
	Alive() []proto.ID
	// Payload returns the message the given process is broadcasting this
	// round, or nil. The slice must not be modified.
	Payload(id proto.ID) []byte
	// Info returns the protocol state snapshot for the given process, if
	// the engine exposes one.
	Info(id proto.ID) (BallInfo, bool)
	// Budget returns the number of crashes still allowed.
	Budget() int
}

// CrashSpec instructs the engine to crash Victim during this round's
// broadcast. Deliver selects the recipients that still receive the victim's
// final message; a nil Deliver delivers to nobody. The victim itself never
// processes further deliveries regardless of Deliver.
type CrashSpec struct {
	Victim  proto.ID
	Deliver func(to proto.ID) bool
}

// Strategy plans crashes. Plan is invoked exactly once per round, after
// payload collection and before delivery. Implementations must be
// deterministic given their construction parameters; randomized strategies
// must derive randomness from an explicit seed.
type Strategy interface {
	Name() string
	Plan(view RoundView) []CrashSpec
}

// DeliverNone suppresses the victim's final broadcast entirely.
func DeliverNone(proto.ID) bool { return false }

// DeliverAll lets the final broadcast reach every recipient; the crash is
// then only visible from the victim's silence in later rounds.
func DeliverAll(proto.ID) bool { return true }

// DeliverToSet delivers only to the given recipients.
func DeliverToSet(set map[proto.ID]bool) func(proto.ID) bool {
	return func(to proto.ID) bool { return set[to] }
}

// AlternatingByRank delivers to every second process of the given
// ascending-ordered slice, starting with rank 0 — the §6 "splitter" pattern
// that makes surviving processes pairwise collide on rank-indexed choices.
func AlternatingByRank(ordered []proto.ID) func(proto.ID) bool {
	rank := make(map[proto.ID]int, len(ordered))
	for i, id := range ordered {
		rank[id] = i
	}
	return func(to proto.ID) bool {
		r, ok := rank[to]
		return ok && r%2 == 0
	}
}

// PrefixByRank delivers to the first k processes of the given
// ascending-ordered slice.
func PrefixByRank(ordered []proto.ID, k int) func(proto.ID) bool {
	set := make(map[proto.ID]bool, k)
	for i, id := range ordered {
		if i >= k {
			break
		}
		set[id] = true
	}
	return func(to proto.ID) bool { return set[to] }
}

// None is the failure-free strategy.
type None struct{}

// Name implements Strategy.
func (None) Name() string { return "none" }

// Plan implements Strategy; it never crashes anyone.
func (None) Plan(RoundView) []CrashSpec { return nil }

// Func adapts a closure into a Strategy, for scripted attacks in tests.
type Func struct {
	Label string
	Fn    func(view RoundView) []CrashSpec
}

// Name implements Strategy.
func (f Func) Name() string { return f.Label }

// Plan implements Strategy.
func (f Func) Plan(view RoundView) []CrashSpec {
	if f.Fn == nil {
		return nil
	}
	return f.Fn(view)
}

// Random crashes up to F processes, spread over rounds 1..LastRound, with
// independently random victims and random per-recipient delivery. It models
// an unlucky (rather than surgically adaptive) environment.
type Random struct {
	F         int
	LastRound int
	Seed      uint64

	src     *rng.Source
	planned int
}

// NewRandom returns a Random strategy with its own deterministic stream.
func NewRandom(f, lastRound int, seed uint64) *Random {
	return &Random{F: f, LastRound: lastRound, Seed: seed, src: rng.Derive(seed, 0xadef)}
}

// Name implements Strategy.
func (r *Random) Name() string { return "random" }

// Plan implements Strategy.
func (r *Random) Plan(view RoundView) []CrashSpec {
	if r.src == nil {
		r.src = rng.Derive(r.Seed, 0xadef)
	}
	if r.planned >= r.F || view.Round() > r.LastRound {
		return nil
	}
	alive := view.Alive()
	if len(alive) <= 1 {
		return nil
	}
	// Aim to exhaust the budget by LastRound: expected share per round.
	remainingRounds := r.LastRound - view.Round() + 1
	quota := (r.F - r.planned + remainingRounds - 1) / remainingRounds
	var specs []CrashSpec
	for i := 0; i < quota && r.planned < r.F && len(alive) > 1; i++ {
		idx := r.src.Intn(len(alive))
		victim := alive[idx]
		alive = append(alive[:idx:idx], alive[idx+1:]...)
		// Random partial delivery: each recipient hears the final
		// broadcast with probability 1/2, decided by a victim-specific
		// stream so delivery is deterministic per (seed, victim, round).
		recvSrc := rng.Derive(r.Seed^uint64(victim), uint64(view.Round()))
		received := make(map[proto.ID]bool)
		for _, id := range view.Alive() {
			if id != victim && recvSrc.Coin(1, 2) {
				received[id] = true
			}
		}
		specs = append(specs, CrashSpec{Victim: victim, Deliver: DeliverToSet(received)})
		r.planned++
	}
	return specs
}
