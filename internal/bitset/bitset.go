// Package bitset provides a dense fixed-capacity bit set over small integer
// indices. The cohort simulator uses it for crash-receiver masks and group
// membership on hot paths where a map[int32]bool would cost a hash per probe
// and an allocation per entry: membership tests are one shift and mask, and
// a set over n balls is a single []uint64 allocation.
package bitset

import "math/bits"

// Set is a bit set over [0, 64*len(s)). The zero value is an empty set of
// capacity zero; construct with New for a given capacity. Sets are plain
// slices: they share underlying storage when copied by assignment, and an
// independent copy requires Clone.
type Set []uint64

// New returns an empty set with capacity for indices in [0, n).
func New(n int) Set {
	return make(Set, (n+63)/64)
}

// Has reports whether i is in the set. Indices beyond the capacity are
// reported absent rather than panicking, matching map-lookup semantics.
func (s Set) Has(i int) bool {
	w := uint(i) / 64
	return w < uint(len(s)) && s[w]&(1<<(uint(i)%64)) != 0
}

// Add inserts i. It panics if i is outside the capacity.
func (s Set) Add(i int) {
	s[uint(i)/64] |= 1 << (uint(i) % 64)
}

// Remove deletes i. It panics if i is outside the capacity.
func (s Set) Remove(i int) {
	s[uint(i)/64] &^= 1 << (uint(i) % 64)
}

// Count returns the number of elements (population count).
func (s Set) Count() int {
	c := 0
	for _, w := range s {
		c += bits.OnesCount64(w)
	}
	return c
}

// Empty reports whether the set has no elements, without a full popcount.
func (s Set) Empty() bool {
	for _, w := range s {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clear removes every element, keeping the capacity.
func (s Set) Clear() {
	for i := range s {
		s[i] = 0
	}
}

// Clone returns an independent copy.
func (s Set) Clone() Set {
	cp := make(Set, len(s))
	copy(cp, s)
	return cp
}

// ForEach invokes fn for every element in ascending order.
func (s Set) ForEach(fn func(i int)) {
	for w, word := range s {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			fn(w*64 + b)
			word &= word - 1
		}
	}
}
