package bitset

import (
	"testing"

	"ballsintoleaves/internal/rng"
)

func TestBasicOps(t *testing.T) {
	s := New(130)
	if !s.Empty() || s.Count() != 0 {
		t.Fatal("new set not empty")
	}
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if s.Has(i) {
			t.Fatalf("empty set has %d", i)
		}
		s.Add(i)
		if !s.Has(i) {
			t.Fatalf("set missing %d after Add", i)
		}
	}
	if s.Count() != 8 {
		t.Fatalf("Count = %d, want 8", s.Count())
	}
	if s.Empty() {
		t.Fatal("non-empty set reports Empty")
	}
	s.Remove(64)
	if s.Has(64) || s.Count() != 7 {
		t.Fatalf("Remove failed: has=%v count=%d", s.Has(64), s.Count())
	}
	// Out-of-capacity probes are absent, not panics.
	if s.Has(1 << 20) {
		t.Fatal("out-of-range Has returned true")
	}
	s.Clear()
	if !s.Empty() {
		t.Fatal("Clear left elements behind")
	}
}

func TestForEachAscending(t *testing.T) {
	s := New(200)
	want := []int{3, 64, 65, 100, 199}
	for _, i := range want {
		s.Add(i)
	}
	var got []int
	s.ForEach(func(i int) { got = append(got, i) })
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach visited %v, want %v", got, want)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	s := New(64)
	s.Add(5)
	cp := s.Clone()
	cp.Add(6)
	if s.Has(6) {
		t.Fatal("Clone shares storage")
	}
	if !cp.Has(5) {
		t.Fatal("Clone lost element")
	}
}

func TestMatchesMap(t *testing.T) {
	const n = 500
	src := rng.New(3)
	s := New(n)
	ref := make(map[int]bool)
	for op := 0; op < 5000; op++ {
		i := src.Intn(n)
		switch src.Intn(3) {
		case 0:
			s.Add(i)
			ref[i] = true
		case 1:
			s.Remove(i)
			delete(ref, i)
		default:
			if s.Has(i) != ref[i] {
				t.Fatalf("op %d: Has(%d) = %v, map says %v", op, i, s.Has(i), ref[i])
			}
		}
	}
	if s.Count() != len(ref) {
		t.Fatalf("Count = %d, map has %d", s.Count(), len(ref))
	}
}
