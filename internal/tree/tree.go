// Package tree implements the virtual tree at the heart of the
// Balls-into-Leaves algorithm: n target names arranged as the leaves of a
// balanced tree, with per-subtree occupancy counts supporting the
// RemainingCapacity operation of Algorithm 1 in O(1) per node and ball
// movement in O(depth).
//
// The paper uses a binary tree and assumes n is a power of two for
// exposition; this package supports any n >= 1 and any arity k >= 2 by
// splitting each node's leaf interval [lo, hi) into k near-equal parts
// (sibling capacities differ by at most one). For binary power-of-two
// trees the shape matches the paper exactly; higher arities are the E13
// ablation (fewer levels, more per-node contention, bigger capacity
// fan-out per coin flip).
//
// The immutable shape (Topology) is shared across all local views of all
// balls; each view carries only its own Occupancy (subtree ball counts).
package tree

import "fmt"

// Node is an index into a Topology's node arrays. The root is node 0 and
// nodes are numbered in breadth-first order, so a node's children are
// contiguous and siblings are adjacent.
type Node int32

// None is the sentinel for "no node" (e.g. the parent of the root).
const None Node = -1

// MaxArity bounds the supported fan-out; beyond this the tree degenerates
// into the flat balls-into-bins the paper's baselines cover.
const MaxArity = 64

// Topology is the immutable shape of a balanced arity-k tree over N
// leaves. It is safe for concurrent use by any number of views.
type Topology struct {
	n        int
	arity    int
	numNodes int
	maxDepth int

	lo, hi    []int32 // leaf-rank interval [lo, hi) covered by each node
	childOff  []int32 // node -> first index into childList; children are contiguous
	childList []Node
	parent    []Node
	depth     []int32
	leafNode  []Node // leaf rank -> node index
}

// NewTopology builds the balanced binary tree over n leaves — the paper's
// shape. It panics if n < 1.
func NewTopology(n int) *Topology { return NewTopologyArity(n, 2) }

// NewTopologyArity builds a balanced arity-k tree over n leaves. It panics
// if n < 1 or k is outside [2, MaxArity].
func NewTopologyArity(n, arity int) *Topology {
	if n < 1 {
		panic(fmt.Sprintf("tree: topology needs n >= 1 leaves, got %d", n))
	}
	if arity < 2 || arity > MaxArity {
		panic(fmt.Sprintf("tree: arity must be in [2,%d], got %d", MaxArity, arity))
	}
	t := &Topology{n: n, arity: arity}
	// Breadth-first construction: when a node is processed its children
	// are allocated consecutively, so the child list stays contiguous.
	type span struct{ lo, hi int32 }
	queue := []span{{0, int32(n)}}
	parents := []Node{None}
	for head := 0; head < len(queue); head++ {
		sp := queue[head]
		node := Node(head)
		t.lo = append(t.lo, sp.lo)
		t.hi = append(t.hi, sp.hi)
		t.parent = append(t.parent, parents[head])
		t.childOff = append(t.childOff, int32(len(t.childList)))
		if p := parents[head]; p == None {
			t.depth = append(t.depth, 0)
		} else {
			t.depth = append(t.depth, t.depth[p]+1)
		}
		if d := int(t.depth[node]); d > t.maxDepth {
			t.maxDepth = d
		}
		width := sp.hi - sp.lo
		if width == 1 {
			continue // leaf; children filled lazily below
		}
		// Split into min(arity, width) near-equal parts, ceilings first.
		parts := int32(arity)
		if width < parts {
			parts = width
		}
		base, extra := width/parts, width%parts
		cur := sp.lo
		for i := int32(0); i < parts; i++ {
			size := base
			if i < extra {
				size++
			}
			child := Node(len(queue))
			t.childList = append(t.childList, child)
			queue = append(queue, span{cur, cur + size})
			parents = append(parents, node)
			cur += size
		}
	}
	t.numNodes = len(queue)
	t.childOff = append(t.childOff, int32(len(t.childList)))
	t.leafNode = make([]Node, n)
	for i := 0; i < t.numNodes; i++ {
		if t.hi[i]-t.lo[i] == 1 {
			t.leafNode[t.lo[i]] = Node(i)
		}
	}
	return t
}

// N returns the number of leaves (the size of the target namespace).
func (t *Topology) N() int { return t.n }

// Arity returns the maximum fan-out.
func (t *Topology) Arity() int { return t.arity }

// NumNodes returns the total node count.
func (t *Topology) NumNodes() int { return t.numNodes }

// MaxDepth returns the depth of the deepest leaf (root depth is 0).
func (t *Topology) MaxDepth() int { return t.maxDepth }

// Root returns the root node.
func (t *Topology) Root() Node { return 0 }

// IsLeaf reports whether node is a leaf.
func (t *Topology) IsLeaf(node Node) bool {
	return t.childOff[node] == t.childOff[node+1]
}

// Children returns the node's children, left to right. The returned slice
// aliases the topology and must not be modified. Leaves return an empty
// slice.
func (t *Topology) Children(node Node) []Node {
	return t.childList[t.childOff[node]:t.childOff[node+1]]
}

// Left returns the node's first child, or None for a leaf.
func (t *Topology) Left(node Node) Node {
	kids := t.Children(node)
	if len(kids) == 0 {
		return None
	}
	return kids[0]
}

// Right returns the node's last child, or None for a leaf. In a binary
// tree this is the right child.
func (t *Topology) Right(node Node) Node {
	kids := t.Children(node)
	if len(kids) == 0 {
		return None
	}
	return kids[len(kids)-1]
}

// Parent returns the parent of node, or None for the root.
func (t *Topology) Parent(node Node) Node { return t.parent[node] }

// Depth returns the depth of node; the root has depth 0.
func (t *Topology) Depth(node Node) int { return int(t.depth[node]) }

// Leaves returns the number of leaves in the subtree rooted at node.
func (t *Topology) Leaves(node Node) int { return int(t.hi[node] - t.lo[node]) }

// LeafRank returns the 0-based left-to-right rank of a leaf node. The
// decided name of a ball terminating at this leaf is LeafRank+1. It panics
// if node is not a leaf.
func (t *Topology) LeafRank(node Node) int {
	if !t.IsLeaf(node) {
		panic(fmt.Sprintf("tree: LeafRank of inner node %d", node))
	}
	return int(t.lo[node])
}

// Leaf returns the leaf node with the given 0-based left-to-right rank.
func (t *Topology) Leaf(rank int) Node {
	if rank < 0 || rank >= t.n {
		panic(fmt.Sprintf("tree: leaf rank %d out of [0,%d)", rank, t.n))
	}
	return t.leafNode[rank]
}

// Contains reports whether the subtree rooted at node contains the leaf
// with the given rank.
func (t *Topology) Contains(node Node, leafRank int) bool {
	return int(t.lo[node]) <= leafRank && leafRank < int(t.hi[node])
}

// OnPathToLeaf returns the child of node on the path towards the leaf with
// the given rank. It panics if node is a leaf or does not contain the leaf.
func (t *Topology) OnPathToLeaf(node Node, leafRank int) Node {
	if t.IsLeaf(node) {
		panic(fmt.Sprintf("tree: OnPathToLeaf from leaf %d", node))
	}
	if !t.Contains(node, leafRank) {
		panic(fmt.Sprintf("tree: leaf %d not under node %d", leafRank, node))
	}
	kids := t.Children(node)
	// Children are ordered by interval; binary-search the containing one.
	lo, hi := 0, len(kids)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if int(t.hi[kids[mid]]) <= leafRank {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return kids[lo]
}

// Sibling returns the next sibling (or for the last child, the previous
// one), or None for the root. In a binary tree this is the other child of
// the parent.
func (t *Topology) Sibling(node Node) Node {
	p := t.parent[node]
	if p == None {
		return None
	}
	kids := t.Children(p)
	for i, k := range kids {
		if k == node {
			if i+1 < len(kids) {
				return kids[i+1]
			}
			return kids[i-1]
		}
	}
	panic(fmt.Sprintf("tree: node %d missing from its parent's children", node))
}

// IsAncestor reports whether a is a (weak) ancestor of b, i.e. b lies in
// the subtree rooted at a (a == b counts).
func (t *Topology) IsAncestor(a, b Node) bool {
	return t.lo[a] <= t.lo[b] && t.hi[b] <= t.hi[a] && t.depth[a] <= t.depth[b]
}
