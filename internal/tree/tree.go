// Package tree implements the virtual tree at the heart of the
// Balls-into-Leaves algorithm: n target names arranged as the leaves of a
// balanced tree, with per-subtree occupancy counts supporting the
// RemainingCapacity operation of Algorithm 1 in O(1) per node and ball
// movement in O(depth).
//
// The paper uses a binary tree and assumes n is a power of two for
// exposition; this package supports any n >= 1 and any arity k >= 2 by
// splitting each node's leaf interval [lo, hi) into k near-equal parts
// (sibling capacities differ by at most one). For binary power-of-two
// trees the shape matches the paper exactly; higher arities are the E13
// ablation (fewer levels, more per-node contention, bigger capacity
// fan-out per coin flip).
//
// The immutable shape (Topology) is shared across all local views of all
// balls; each view carries only its own Occupancy (subtree ball counts).
package tree

import (
	"fmt"
	"sync"
)

// Node is an index into a Topology's node arrays. The root is node 0 and
// nodes are numbered in breadth-first order, so a node's children are
// contiguous and siblings are adjacent.
type Node int32

// None is the sentinel for "no node" (e.g. the parent of the root).
const None Node = -1

// MaxArity bounds the supported fan-out; beyond this the tree degenerates
// into the flat balls-into-bins the paper's baselines cover.
const MaxArity = 64

// Topology is the immutable shape of a balanced arity-k tree over N
// leaves. It is safe for concurrent use by any number of views.
type Topology struct {
	n        int
	arity    int
	numNodes int
	maxDepth int

	lo, hi     []int32 // leaf-rank interval [lo, hi) covered by each node
	childOff   []int32 // node -> first index into childList; children are contiguous
	childList  []Node
	firstChild []Node // node -> first child, 0 for leaves (the root is never a child)
	parent     []Node
	depth      []int32
	leafNode   []Node // leaf rank -> node index
}

// NewTopology builds the balanced binary tree over n leaves — the paper's
// shape. It panics if n < 1.
func NewTopology(n int) *Topology { return NewTopologyArity(n, 2) }

// sharedCap bounds the shared-topology cache. Experiment sweeps revisit a
// handful of (n, arity) shapes thousands of times; a few retained shapes
// cost megabytes while saving a full O(n) rebuild per run.
const sharedCap = 8

var (
	sharedMu    sync.Mutex
	sharedTopos [sharedCap]*Topology // most recently used first
)

// Shared returns a topology for (n, arity), reusing a cached instance when
// one exists. Topologies are immutable and safe for concurrent use, so
// distinct simulations — including parallel replicates — can share one
// shape. The cache keeps the sharedCap most recently used shapes.
func Shared(n, arity int) *Topology {
	sharedMu.Lock()
	defer sharedMu.Unlock()
	for i, t := range sharedTopos {
		if t != nil && t.n == n && t.arity == arity {
			copy(sharedTopos[1:i+1], sharedTopos[:i])
			sharedTopos[0] = t
			return t
		}
	}
	t := NewTopologyArity(n, arity)
	copy(sharedTopos[1:], sharedTopos[:sharedCap-1])
	sharedTopos[0] = t
	return t
}

// NewTopologyArity builds a balanced arity-k tree over n leaves. It panics
// if n < 1 or k is outside [2, MaxArity].
func NewTopologyArity(n, arity int) *Topology {
	if n < 1 {
		panic(fmt.Sprintf("tree: topology needs n >= 1 leaves, got %d", n))
	}
	if arity < 2 || arity > MaxArity {
		panic(fmt.Sprintf("tree: arity must be in [2,%d], got %d", MaxArity, arity))
	}
	t := &Topology{n: n, arity: arity}
	// Breadth-first construction: when a node is processed its children
	// are allocated consecutively, so the child list stays contiguous. The
	// node arrays double as the BFS queue (a span is exactly its [lo, hi)
	// interval), and every inner node has at least two children, so the
	// node count is bounded by 2n-1 and each array is allocated exactly
	// once.
	maxNodes := 2*n - 1
	t.lo = append(make([]int32, 0, maxNodes), 0)
	t.hi = append(make([]int32, 0, maxNodes), int32(n))
	t.parent = append(make([]Node, 0, maxNodes), None)
	t.depth = make([]int32, 0, maxNodes)
	t.childOff = make([]int32, 0, maxNodes+1)
	if n > 1 {
		t.childList = make([]Node, 0, maxNodes-1)
	}
	for head := 0; head < len(t.lo); head++ {
		node := Node(head)
		t.childOff = append(t.childOff, int32(len(t.childList)))
		if p := t.parent[head]; p == None {
			t.depth = append(t.depth, 0)
		} else {
			t.depth = append(t.depth, t.depth[p]+1)
		}
		if d := int(t.depth[node]); d > t.maxDepth {
			t.maxDepth = d
		}
		width := t.hi[head] - t.lo[head]
		if width == 1 {
			continue // leaf; children filled lazily below
		}
		// Split into min(arity, width) near-equal parts, ceilings first.
		parts := int32(arity)
		if width < parts {
			parts = width
		}
		base, extra := width/parts, width%parts
		cur := t.lo[head]
		for i := int32(0); i < parts; i++ {
			size := base
			if i < extra {
				size++
			}
			child := Node(len(t.lo))
			t.childList = append(t.childList, child)
			t.lo = append(t.lo, cur)
			t.hi = append(t.hi, cur+size)
			t.parent = append(t.parent, node)
			cur += size
		}
	}
	t.numNodes = len(t.lo)
	t.childOff = append(t.childOff, int32(len(t.childList)))
	t.leafNode = make([]Node, n)
	t.firstChild = make([]Node, t.numNodes)
	for i := 0; i < t.numNodes; i++ {
		if t.hi[i]-t.lo[i] == 1 {
			t.leafNode[t.lo[i]] = Node(i)
		} else {
			t.firstChild[i] = t.childList[t.childOff[i]]
		}
	}
	return t
}

// N returns the number of leaves (the size of the target namespace).
func (t *Topology) N() int { return t.n }

// Arity returns the maximum fan-out.
func (t *Topology) Arity() int { return t.arity }

// NumNodes returns the total node count.
func (t *Topology) NumNodes() int { return t.numNodes }

// MaxDepth returns the depth of the deepest leaf (root depth is 0).
func (t *Topology) MaxDepth() int { return t.maxDepth }

// Root returns the root node.
func (t *Topology) Root() Node { return 0 }

// IsLeaf reports whether node is a leaf: a single load of the firstChild
// table (the root is node 0 and is never anyone's child, so 0 marks
// leaves).
func (t *Topology) IsLeaf(node Node) bool {
	return t.firstChild[node] == 0
}

// FirstChild returns the node's first child as a single array load, or None
// for a leaf. In a binary topology every inner node has exactly two
// children, stored consecutively: the second child is FirstChild+1.
func (t *Topology) FirstChild(node Node) Node {
	if c := t.firstChild[node]; c != 0 {
		return c
	}
	return None
}

// Children returns the node's children, left to right. The returned slice
// aliases the topology and must not be modified. Leaves return an empty
// slice.
func (t *Topology) Children(node Node) []Node {
	return t.childList[t.childOff[node]:t.childOff[node+1]]
}

// Left returns the node's first child, or None for a leaf.
func (t *Topology) Left(node Node) Node {
	kids := t.Children(node)
	if len(kids) == 0 {
		return None
	}
	return kids[0]
}

// Right returns the node's last child, or None for a leaf. In a binary
// tree this is the right child.
func (t *Topology) Right(node Node) Node {
	kids := t.Children(node)
	if len(kids) == 0 {
		return None
	}
	return kids[len(kids)-1]
}

// Parent returns the parent of node, or None for the root.
func (t *Topology) Parent(node Node) Node { return t.parent[node] }

// Depth returns the depth of node; the root has depth 0.
func (t *Topology) Depth(node Node) int { return int(t.depth[node]) }

// Leaves returns the number of leaves in the subtree rooted at node.
func (t *Topology) Leaves(node Node) int { return int(t.hi[node] - t.lo[node]) }

// LeafRank returns the 0-based left-to-right rank of a leaf node. The
// decided name of a ball terminating at this leaf is LeafRank+1. It panics
// if node is not a leaf.
func (t *Topology) LeafRank(node Node) int {
	lo := t.lo[node]
	if t.hi[node]-lo != 1 {
		panic(fmt.Sprintf("tree: LeafRank of inner node %d", node))
	}
	return int(lo)
}

// Leaf returns the leaf node with the given 0-based left-to-right rank.
func (t *Topology) Leaf(rank int) Node {
	if rank < 0 || rank >= t.n {
		panic(fmt.Sprintf("tree: leaf rank %d out of [0,%d)", rank, t.n))
	}
	return t.leafNode[rank]
}

// Contains reports whether the subtree rooted at node contains the leaf
// with the given rank.
func (t *Topology) Contains(node Node, leafRank int) bool {
	return int(t.lo[node]) <= leafRank && leafRank < int(t.hi[node])
}

// OnPathToLeaf returns the child of node on the path towards the leaf with
// the given rank. It panics if node is a leaf or does not contain the leaf.
func (t *Topology) OnPathToLeaf(node Node, leafRank int) Node {
	if t.IsLeaf(node) {
		panic(fmt.Sprintf("tree: OnPathToLeaf from leaf %d", node))
	}
	if !t.Contains(node, leafRank) {
		panic(fmt.Sprintf("tree: leaf %d not under node %d", leafRank, node))
	}
	// Children are allocated consecutively in BFS order, so they are the
	// node range [firstChild, firstChild+fanout) and their hi bounds are
	// adjacent in memory: a short forward scan (one step in the binary
	// case) replaces the child-list indirection.
	c := t.firstChild[node]
	for int32(leafRank) >= t.hi[c] {
		c++
	}
	return c
}

// NumChildren returns the node's fan-out (0 for a leaf). Children occupy
// the consecutive node range [FirstChild, FirstChild+NumChildren).
func (t *Topology) NumChildren(node Node) int {
	return int(t.childOff[node+1] - t.childOff[node])
}

// Sibling returns the next sibling (or for the last child, the previous
// one), or None for the root. In a binary tree this is the other child of
// the parent.
func (t *Topology) Sibling(node Node) Node {
	p := t.parent[node]
	if p == None {
		return None
	}
	kids := t.Children(p)
	for i, k := range kids {
		if k == node {
			if i+1 < len(kids) {
				return kids[i+1]
			}
			return kids[i-1]
		}
	}
	panic(fmt.Sprintf("tree: node %d missing from its parent's children", node))
}

// IsAncestor reports whether a is a (weak) ancestor of b, i.e. b lies in
// the subtree rooted at a (a == b counts).
func (t *Topology) IsAncestor(a, b Node) bool {
	return t.lo[a] <= t.lo[b] && t.hi[b] <= t.hi[a] && t.depth[a] <= t.depth[b]
}
