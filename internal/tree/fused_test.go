package tree

import (
	"testing"

	"ballsintoleaves/internal/rng"
)

// naiveOnPathToLeaf is the reference child scan the flattened OnPathToLeaf
// must agree with.
func naiveOnPathToLeaf(t *Topology, node Node, leafRank int) Node {
	for _, kid := range t.Children(node) {
		if t.Contains(kid, leafRank) {
			return kid
		}
	}
	panic("no containing child")
}

func TestOnPathToLeafMatchesScan(t *testing.T) {
	for _, tc := range []struct{ n, arity int }{
		{1, 2}, {2, 2}, {3, 2}, {7, 2}, {64, 2}, {100, 2}, {1023, 2},
		{5, 3}, {100, 3}, {64, 4}, {1000, 7}, {129, 16}, {4096, 64},
	} {
		topo := NewTopologyArity(tc.n, tc.arity)
		for node := 0; node < topo.NumNodes(); node++ {
			if topo.IsLeaf(Node(node)) {
				continue
			}
			for leaf := int(topo.lo[node]); leaf < int(topo.hi[node]); leaf++ {
				got := topo.OnPathToLeaf(Node(node), leaf)
				want := naiveOnPathToLeaf(topo, Node(node), leaf)
				if got != want {
					t.Fatalf("n=%d k=%d OnPathToLeaf(%d, %d) = %d, want %d",
						tc.n, tc.arity, node, leaf, got, want)
				}
			}
		}
	}
}

// slowDescend is the pre-fusion walk: Remove, step while capacity remains,
// Add — the reference DescendAdd must stay equivalent to.
func slowDescend(o *Occupancy, from Node, leafRank int, limit int32) Node {
	t := o.Topology()
	o.Remove(from)
	cur := from
	steps := int32(0)
	for !t.IsLeaf(cur) {
		if limit > 0 && steps >= limit {
			break
		}
		next := t.OnPathToLeaf(cur, leafRank)
		if o.RemainingCapacity(next) <= 0 {
			break
		}
		cur = next
		steps++
	}
	o.Add(cur)
	return cur
}

func TestDescendAddMatchesRemoveWalkAdd(t *testing.T) {
	src := rng.New(7)
	for _, tc := range []struct{ n, arity int }{
		{2, 2}, {17, 2}, {256, 2}, {1000, 2}, {100, 3}, {256, 8},
	} {
		topo := NewTopologyArity(tc.n, tc.arity)
		for trial := 0; trial < 50; trial++ {
			fast := NewOccupancy(topo)
			slow := NewOccupancy(topo)
			// Random pre-load: park balls at random nodes (occupancy does
			// not require the capacity invariant to hold for this algebra).
			for b := 0; b < tc.n/2; b++ {
				node := Node(src.Intn(topo.NumNodes()))
				fast.Add(node)
				slow.Add(node)
			}
			// Walk random balls from random inner positions.
			for b := 0; b < 20; b++ {
				from := Node(src.Intn(topo.NumNodes()))
				fast.Add(from)
				slow.Add(from)
				leaf := int(topo.lo[from]) + src.Intn(topo.Leaves(from))
				limit := int32(src.Intn(3)) // 0 = unlimited
				got := fast.DescendAdd(from, leaf, limit)
				want := slowDescend(slow, from, leaf, limit)
				if got != want {
					t.Fatalf("n=%d k=%d trial %d: DescendAdd(%d, %d, %d) = %d, want %d",
						tc.n, tc.arity, trial, from, leaf, limit, got, want)
				}
				for node := 0; node < topo.NumNodes(); node++ {
					if fast.Count(Node(node)) != slow.Count(Node(node)) {
						t.Fatalf("n=%d k=%d trial %d: count diverged at node %d: %d vs %d",
							tc.n, tc.arity, trial, node, fast.Count(Node(node)), slow.Count(Node(node)))
					}
				}
			}
		}
	}
}

func TestMoveFastPathsMatchRemoveAdd(t *testing.T) {
	src := rng.New(11)
	topo := NewTopologyArity(300, 2)
	for trial := 0; trial < 200; trial++ {
		fast := NewOccupancy(topo)
		slow := NewOccupancy(topo)
		nodes := make([]Node, 0, 16)
		for b := 0; b < 16; b++ {
			node := Node(src.Intn(topo.NumNodes()))
			fast.Add(node)
			slow.Add(node)
			nodes = append(nodes, node)
		}
		for b := 0; b < 16; b++ {
			from := nodes[b]
			to := Node(src.Intn(topo.NumNodes()))
			fast.Move(from, to)
			slow.Remove(from)
			slow.Add(to)
			nodes[b] = to
		}
		for node := 0; node < topo.NumNodes(); node++ {
			if fast.Count(Node(node)) != slow.Count(Node(node)) {
				t.Fatalf("trial %d: Move diverged at node %d: %d vs %d",
					trial, node, fast.Count(Node(node)), slow.Count(Node(node)))
			}
		}
	}
}
