package tree

import (
	"testing"
	"testing/quick"
)

func TestArityShapes(t *testing.T) {
	t.Parallel()
	for _, k := range []int{2, 3, 4, 8, 16} {
		for _, n := range []int{1, 2, 3, 5, 16, 27, 64, 100} {
			topo := NewTopologyArity(n, k)
			if topo.Arity() != k || topo.N() != n {
				t.Fatalf("k=%d n=%d: basic accessors wrong", k, n)
			}
			leaves := 0
			for i := 0; i < topo.NumNodes(); i++ {
				node := Node(i)
				kids := topo.Children(node)
				if topo.IsLeaf(node) {
					leaves++
					if topo.Leaves(node) != 1 {
						t.Fatalf("k=%d n=%d: leaf %d spans %d", k, n, node, topo.Leaves(node))
					}
					continue
				}
				if len(kids) < 2 || len(kids) > k {
					t.Fatalf("k=%d n=%d: node %d has %d children", k, n, node, len(kids))
				}
				sum := 0
				minSpan, maxSpan := n+1, 0
				for _, kid := range kids {
					if topo.Parent(kid) != node {
						t.Fatalf("k=%d n=%d: broken parent link", k, n)
					}
					span := topo.Leaves(kid)
					sum += span
					if span < minSpan {
						minSpan = span
					}
					if span > maxSpan {
						maxSpan = span
					}
				}
				if sum != topo.Leaves(node) {
					t.Fatalf("k=%d n=%d: node %d children spans sum %d != %d", k, n, node, sum, topo.Leaves(node))
				}
				if maxSpan-minSpan > 1 {
					t.Fatalf("k=%d n=%d: node %d unbalanced children %d..%d", k, n, node, minSpan, maxSpan)
				}
			}
			if leaves != n {
				t.Fatalf("k=%d n=%d: %d leaves", k, n, leaves)
			}
		}
	}
}

func TestArityDepthShrinks(t *testing.T) {
	t.Parallel()
	const n = 4096
	d2 := NewTopologyArity(n, 2).MaxDepth()
	d4 := NewTopologyArity(n, 4).MaxDepth()
	d16 := NewTopologyArity(n, 16).MaxDepth()
	if d2 != 12 || d4 != 6 || d16 != 3 {
		t.Fatalf("depths = %d/%d/%d, want 12/6/3", d2, d4, d16)
	}
}

func TestArityOnPathToLeaf(t *testing.T) {
	t.Parallel()
	for _, k := range []int{3, 5, 8} {
		topo := NewTopologyArity(60, k)
		for r := 0; r < 60; r++ {
			node := topo.Root()
			steps := 0
			for !topo.IsLeaf(node) {
				node = topo.OnPathToLeaf(node, r)
				if steps++; steps > topo.MaxDepth()+1 {
					t.Fatalf("k=%d: descent to %d looping", k, r)
				}
			}
			if topo.LeafRank(node) != r {
				t.Fatalf("k=%d: descent to %d reached %d", k, r, topo.LeafRank(node))
			}
		}
	}
}

func TestArityKthFreeLeaf(t *testing.T) {
	t.Parallel()
	topo := NewTopologyArity(27, 3)
	occ := NewOccupancy(topo)
	for _, r := range []int{0, 5, 13, 26} {
		occ.Add(topo.Leaf(r))
	}
	want := make([]int, 0, 23)
	for r := 0; r < 27; r++ {
		if r != 0 && r != 5 && r != 13 && r != 26 {
			want = append(want, r)
		}
	}
	for i, w := range want {
		if got := topo.LeafRank(occ.KthFreeLeaf(topo.Root(), i)); got != w {
			t.Fatalf("KthFreeLeaf(%d) = %d, want %d", i, got, w)
		}
	}
}

func TestArityValidation(t *testing.T) {
	t.Parallel()
	for _, bad := range []int{-1, 0, 1, MaxArity + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("arity %d accepted", bad)
				}
			}()
			NewTopologyArity(4, bad)
		}()
	}
}

func TestAritySibling(t *testing.T) {
	t.Parallel()
	topo := NewTopologyArity(9, 3)
	kids := topo.Children(topo.Root())
	if len(kids) != 3 {
		t.Fatalf("%d root children", len(kids))
	}
	if topo.Sibling(kids[0]) != kids[1] || topo.Sibling(kids[1]) != kids[2] || topo.Sibling(kids[2]) != kids[1] {
		t.Fatal("sibling navigation wrong")
	}
}

// TestArityLeafBijection mirrors the binary bijection test across arities.
func TestArityLeafBijection(t *testing.T) {
	t.Parallel()
	prop := func(rawN uint8, rawK uint8) bool {
		n := int(rawN%120) + 1
		k := int(rawK%15) + 2
		topo := NewTopologyArity(n, k)
		seen := make(map[int]bool, n)
		for i := 0; i < topo.NumNodes(); i++ {
			node := Node(i)
			if !topo.IsLeaf(node) {
				continue
			}
			r := topo.LeafRank(node)
			if r < 0 || r >= n || seen[r] || topo.Leaf(r) != node {
				return false
			}
			seen[r] = true
		}
		return len(seen) == n
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
