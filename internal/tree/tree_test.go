package tree

import (
	"testing"
	"testing/quick"
)

func TestTopologySmallShapes(t *testing.T) {
	t.Parallel()
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 15, 16, 17, 31, 32, 100, 1024} {
		topo := NewTopology(n)
		if got := topo.N(); got != n {
			t.Fatalf("n=%d: N() = %d", n, got)
		}
		if got, want := topo.NumNodes(), 2*n-1; got != want {
			t.Fatalf("n=%d: NumNodes = %d, want %d", n, got, want)
		}
		if got := topo.Leaves(topo.Root()); got != n {
			t.Fatalf("n=%d: root spans %d leaves", n, got)
		}
	}
}

func TestTopologyLeafRanksAreBijective(t *testing.T) {
	t.Parallel()
	for _, n := range []int{1, 2, 3, 6, 13, 64, 100} {
		topo := NewTopology(n)
		seen := make(map[int]bool, n)
		leaves := 0
		for i := 0; i < topo.NumNodes(); i++ {
			node := Node(i)
			if !topo.IsLeaf(node) {
				continue
			}
			leaves++
			r := topo.LeafRank(node)
			if r < 0 || r >= n {
				t.Fatalf("n=%d: leaf rank %d out of range", n, r)
			}
			if seen[r] {
				t.Fatalf("n=%d: duplicate leaf rank %d", n, r)
			}
			seen[r] = true
			if topo.Leaf(r) != node {
				t.Fatalf("n=%d: Leaf(LeafRank(%d)) != node", n, node)
			}
		}
		if leaves != n {
			t.Fatalf("n=%d: found %d leaves", n, leaves)
		}
	}
}

func TestTopologyChildrenPartitionParent(t *testing.T) {
	t.Parallel()
	topo := NewTopology(37)
	for i := 0; i < topo.NumNodes(); i++ {
		node := Node(i)
		if topo.IsLeaf(node) {
			if topo.Leaves(node) != 1 {
				t.Fatalf("leaf %d spans %d", node, topo.Leaves(node))
			}
			continue
		}
		l, r := topo.Left(node), topo.Right(node)
		if topo.Leaves(l)+topo.Leaves(r) != topo.Leaves(node) {
			t.Fatalf("node %d: children spans %d+%d != %d",
				node, topo.Leaves(l), topo.Leaves(r), topo.Leaves(node))
		}
		// Balanced split: sibling capacities differ by at most one, with
		// the left child taking the ceiling.
		if diff := topo.Leaves(l) - topo.Leaves(r); diff < 0 || diff > 1 {
			t.Fatalf("node %d: unbalanced split %d/%d", node, topo.Leaves(l), topo.Leaves(r))
		}
		if topo.Parent(l) != node || topo.Parent(r) != node {
			t.Fatalf("node %d: child parent links broken", node)
		}
		if topo.Depth(l) != topo.Depth(node)+1 || topo.Depth(r) != topo.Depth(node)+1 {
			t.Fatalf("node %d: child depth links broken", node)
		}
		if topo.Sibling(l) != r || topo.Sibling(r) != l {
			t.Fatalf("node %d: sibling links broken", node)
		}
	}
	if topo.Sibling(topo.Root()) != None {
		t.Fatal("root has a sibling")
	}
	if topo.Parent(topo.Root()) != None {
		t.Fatal("root has a parent")
	}
}

func TestTopologyMaxDepthPowerOfTwo(t *testing.T) {
	t.Parallel()
	for exp := 0; exp <= 12; exp++ {
		n := 1 << exp
		topo := NewTopology(n)
		if topo.MaxDepth() != exp {
			t.Fatalf("n=2^%d: MaxDepth = %d, want %d", exp, topo.MaxDepth(), exp)
		}
		// Power-of-two trees are perfect: every leaf at depth exp.
		for r := 0; r < n; r++ {
			if d := topo.Depth(topo.Leaf(r)); d != exp {
				t.Fatalf("n=2^%d: leaf %d at depth %d", exp, r, d)
			}
		}
	}
}

func TestOnPathToLeaf(t *testing.T) {
	t.Parallel()
	topo := NewTopology(16)
	for r := 0; r < 16; r++ {
		node := topo.Root()
		for !topo.IsLeaf(node) {
			node = topo.OnPathToLeaf(node, r)
		}
		if topo.LeafRank(node) != r {
			t.Fatalf("descent to leaf %d ended at %d", r, topo.LeafRank(node))
		}
	}
}

func TestIsAncestor(t *testing.T) {
	t.Parallel()
	topo := NewTopology(8)
	root := topo.Root()
	for i := 0; i < topo.NumNodes(); i++ {
		n := Node(i)
		if !topo.IsAncestor(root, n) {
			t.Fatalf("root not ancestor of %d", n)
		}
		if !topo.IsAncestor(n, n) {
			t.Fatalf("%d not ancestor of itself", n)
		}
		if n != root && topo.IsAncestor(n, root) {
			t.Fatalf("%d claims to be ancestor of root", n)
		}
	}
	l, r := topo.Left(root), topo.Right(root)
	if topo.IsAncestor(l, r) || topo.IsAncestor(r, l) {
		t.Fatal("siblings claim ancestry")
	}
}

func TestOccupancyAddRemoveCounts(t *testing.T) {
	t.Parallel()
	topo := NewTopology(8)
	occ := NewOccupancy(topo)
	leaf3 := topo.Leaf(3)
	occ.Add(leaf3)
	occ.Add(leaf3)
	occ.Add(topo.Root())
	if got := occ.Count(topo.Root()); got != 3 {
		t.Fatalf("root count = %d, want 3", got)
	}
	if got := occ.Count(leaf3); got != 2 {
		t.Fatalf("leaf count = %d, want 2", got)
	}
	if got := occ.At(topo.Root()); got != 1 {
		t.Fatalf("At(root) = %d, want 1", got)
	}
	if got := occ.RemainingCapacity(topo.Root()); got != 5 {
		t.Fatalf("root remaining capacity = %d, want 5", got)
	}
	occ.Remove(leaf3)
	occ.Remove(leaf3)
	occ.Remove(topo.Root())
	if got := occ.Count(topo.Root()); got != 0 {
		t.Fatalf("after removals root count = %d", got)
	}
}

func TestOccupancyRemoveUnderflowPanics(t *testing.T) {
	t.Parallel()
	topo := NewTopology(4)
	occ := NewOccupancy(topo)
	defer func() {
		if recover() == nil {
			t.Fatal("Remove on empty occupancy did not panic")
		}
	}()
	occ.Remove(topo.Leaf(0))
}

func TestOccupancyMoveEquivalentToRemoveAdd(t *testing.T) {
	t.Parallel()
	topo := NewTopology(16)
	a := NewOccupancy(topo)
	b := NewOccupancy(topo)
	from, to := topo.Leaf(2), topo.Leaf(13)
	a.Add(from)
	b.Add(from)
	a.Move(from, to)
	b.Remove(from)
	b.Add(to)
	for i := 0; i < topo.NumNodes(); i++ {
		if a.Count(Node(i)) != b.Count(Node(i)) {
			t.Fatalf("node %d: Move gives %d, Remove+Add gives %d", i, a.Count(Node(i)), b.Count(Node(i)))
		}
	}
}

func TestOccupancyCloneIsIndependent(t *testing.T) {
	t.Parallel()
	topo := NewTopology(8)
	occ := NewOccupancy(topo)
	occ.Add(topo.Leaf(1))
	cp := occ.Clone()
	cp.Add(topo.Leaf(2))
	if occ.Count(topo.Root()) != 1 {
		t.Fatalf("mutating clone affected original: root count %d", occ.Count(topo.Root()))
	}
	if cp.Count(topo.Root()) != 2 {
		t.Fatalf("clone root count %d, want 2", cp.Count(topo.Root()))
	}
	cp.CopyFrom(occ)
	if cp.Count(topo.Root()) != 1 {
		t.Fatalf("CopyFrom root count %d, want 1", cp.Count(topo.Root()))
	}
}

func TestKthFreeLeafEnumeratesEmptyLeaves(t *testing.T) {
	t.Parallel()
	topo := NewTopology(16)
	occ := NewOccupancy(topo)
	// Occupy leaves 0, 3, 7, 8, 15.
	for _, r := range []int{0, 3, 7, 8, 15} {
		occ.Add(topo.Leaf(r))
	}
	want := []int{1, 2, 4, 5, 6, 9, 10, 11, 12, 13, 14}
	if rc := occ.RemainingCapacity(topo.Root()); rc != len(want) {
		t.Fatalf("remaining capacity %d, want %d", rc, len(want))
	}
	for k, w := range want {
		leaf := occ.KthFreeLeaf(topo.Root(), k)
		if got := topo.LeafRank(leaf); got != w {
			t.Fatalf("KthFreeLeaf(root,%d) = leaf %d, want %d", k, got, w)
		}
	}
}

func TestKthFreeLeafOutOfRangePanics(t *testing.T) {
	t.Parallel()
	topo := NewTopology(4)
	occ := NewOccupancy(topo)
	defer func() {
		if recover() == nil {
			t.Fatal("KthFreeLeaf beyond capacity did not panic")
		}
	}()
	occ.KthFreeLeaf(topo.Root(), 4)
}

func TestCapacityInvariantDetection(t *testing.T) {
	t.Parallel()
	topo := NewTopology(4)
	occ := NewOccupancy(topo)
	leaf := topo.Leaf(0)
	occ.Add(leaf)
	if err := occ.CheckCapacityInvariant(); err != nil {
		t.Fatalf("valid occupancy flagged: %v", err)
	}
	occ.Add(leaf) // two balls on a one-leaf subtree
	if err := occ.CheckCapacityInvariant(); err == nil {
		t.Fatal("overfull leaf not detected")
	}
}

// TestOccupancyAlgebraProperty checks, for random placements, that subtree
// counts equal the sum of leaf-interval placements — the algebra Lemma 1's
// bookkeeping relies on.
func TestOccupancyAlgebraProperty(t *testing.T) {
	t.Parallel()
	prop := func(seed uint32, rawN uint8) bool {
		n := int(rawN%60) + 1
		topo := NewTopology(n)
		occ := NewOccupancy(topo)
		perLeaf := make([]int, n)
		s := uint64(seed)*2654435761 + 1
		balls := 2 * n
		for i := 0; i < balls; i++ {
			s = s*6364136223846793005 + 1442695040888963407
			r := int(s>>33) % n
			perLeaf[r]++
			occ.Add(topo.Leaf(r))
		}
		for i := 0; i < topo.NumNodes(); i++ {
			node := Node(i)
			sum := 0
			for r := 0; r < n; r++ {
				if topo.Contains(node, r) {
					sum += perLeaf[r]
				}
			}
			if occ.Count(node) != sum {
				return false
			}
			if occ.RemainingCapacity(node) != topo.Leaves(node)-sum {
				return false
			}
		}
		return occ.CheckConsistency() == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkOccupancyMove(b *testing.B) {
	topo := NewTopology(1 << 16)
	occ := NewOccupancy(topo)
	from, to := topo.Leaf(0), topo.Leaf(1<<16-1)
	occ.Add(from)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		occ.Move(from, to)
		from, to = to, from
	}
}

func BenchmarkTopologyBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = NewTopology(1 << 14)
	}
}
