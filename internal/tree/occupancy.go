package tree

import "fmt"

// Occupancy tracks, for one local view, how many balls currently sit inside
// each subtree. A ball "at node η" (parked at an inner node or a leaf)
// counts towards η and every ancestor of η. RemainingCapacity(η) is then
// Leaves(η) minus the subtree count, exactly as defined in Algorithm 1.
//
// Internally the structure stores the remaining capacity per subtree rather
// than the ball count: RemainingCapacity — by far the hottest read, probed
// once or twice per level of every candidate-path walk and every move — is
// then a single array load, while the ball count is recovered on demand as
// Leaves(η) minus the stored capacity.
//
// Occupancy does not know ball identities; views in internal/core pair it
// with a position table. The zero value is unusable; construct with
// NewOccupancy or Clone.
type Occupancy struct {
	topo    *Topology
	capLeft []int32 // remaining capacity of the subtree rooted at each node
}

// NewOccupancy returns an empty occupancy over the given topology.
func NewOccupancy(t *Topology) *Occupancy {
	o := &Occupancy{topo: t, capLeft: make([]int32, t.NumNodes())}
	o.Reset()
	return o
}

// Topology returns the tree shape this occupancy counts over.
func (o *Occupancy) Topology() *Topology { return o.topo }

// Clone returns an independent copy; mutating either copy does not affect
// the other. Used when local views diverge within a phase.
func (o *Occupancy) Clone() *Occupancy {
	cp := &Occupancy{topo: o.topo, capLeft: make([]int32, len(o.capLeft))}
	copy(cp.capLeft, o.capLeft)
	return cp
}

// CopyFrom overwrites o's counts with src's without allocating. Both must
// share the same topology.
func (o *Occupancy) CopyFrom(src *Occupancy) {
	if o.topo != src.topo {
		panic("tree: CopyFrom across topologies")
	}
	copy(o.capLeft, src.capLeft)
}

// Reset empties the occupancy: every subtree's remaining capacity returns
// to its leaf count.
func (o *Occupancy) Reset() {
	t := o.topo
	for i := range o.capLeft {
		o.capLeft[i] = t.hi[i] - t.lo[i]
	}
}

// Add records one ball parked at node, updating the node and all ancestors.
func (o *Occupancy) Add(node Node) {
	for n := node; n != None; n = o.topo.parent[n] {
		o.capLeft[n]--
	}
}

// Remove erases one ball parked at node. It panics if the subtree count
// would go negative, which indicates a corrupted view.
func (o *Occupancy) Remove(node Node) {
	t := o.topo
	for n := node; n != None; n = t.parent[n] {
		o.capLeft[n]++
		if o.capLeft[n] > t.hi[n]-t.lo[n] {
			panic(fmt.Sprintf("tree: negative occupancy at node %d", n))
		}
	}
}

// Move relocates one ball from node `from` to node `to`. When one endpoint
// is an ancestor of the other — the only case Algorithm 1 produces, since
// balls move monotonically down (Lemma 2) — only the nodes strictly between
// them change count, so the update is O(|depth(from)-depth(to)|) with no
// walk to the root. Unrelated endpoints fall back to the two-root-path
// update.
func (o *Occupancy) Move(from, to Node) {
	if from == to {
		return
	}
	t := o.topo
	// Leaf intervals nest strictly (every inner node has >= 2 children), so
	// containment alone identifies a proper ancestor once from != to.
	if t.lo[from] <= t.lo[to] && t.hi[to] <= t.hi[from] {
		for n := to; n != from; n = t.parent[n] {
			o.capLeft[n]--
		}
		return
	}
	if t.lo[to] <= t.lo[from] && t.hi[from] <= t.hi[to] {
		for n := from; n != to; n = t.parent[n] {
			o.capLeft[n]++
			if o.capLeft[n] > t.hi[n]-t.lo[n] {
				panic(fmt.Sprintf("tree: negative occupancy at node %d", n))
			}
		}
		return
	}
	o.Remove(from)
	o.Add(to)
}

// DescendAdd walks one ball parked at `from` towards the leaf with the given
// rank, stepping into each child on the path while it has remaining capacity
// (and, when limit > 0, at most limit levels), updating the occupancy of
// every node entered, and returns the stop node.
//
// This fuses Algorithm 1's Remove(cur) + capacity walk + Add(final) of lines
// 14–18 into a single descent: removing a ball at `from` and re-adding it at
// a descendant cancels on count[from..root], so only the nodes strictly
// below `from` change — the exact nodes the walk visits. The ball's own
// occupancy never blocks it, because a ball parked at `from` is not counted
// in any child subtree.
func (o *Occupancy) DescendAdd(from Node, leafRank int, limit int32) Node {
	t := o.topo
	fc, hi := t.firstChild, t.hi
	capLeft := o.capLeft
	rank := int32(leafRank)
	cur := from
	steps := int32(0)
	for {
		next := fc[cur]
		if next == 0 {
			break // leaf
		}
		if limit > 0 && steps >= limit {
			break
		}
		// Children are consecutive nodes with adjacent hi bounds; scan
		// forward to the one containing the target (one step when binary).
		for rank >= hi[next] {
			next++
		}
		if capLeft[next] <= 0 {
			break // next subtree is full; park here
		}
		cur = next
		capLeft[cur]--
		steps++
	}
	return cur
}

// Count returns the number of balls inside the subtree rooted at node
// (including balls parked exactly at node).
func (o *Occupancy) Count(node Node) int {
	return o.topo.Leaves(node) - int(o.capLeft[node])
}

// At returns the number of balls parked exactly at node: the subtree count
// minus the counts of all children.
func (o *Occupancy) At(node Node) int {
	c := o.Count(node)
	for _, child := range o.topo.Children(node) {
		c -= o.Count(child)
	}
	return c
}

// RemainingCapacity returns Leaves(node) minus the subtree ball count: the
// number of additional balls the subtree can still absorb. This is the
// RemainingCapacity(η) operation of Algorithm 1.
func (o *Occupancy) RemainingCapacity(node Node) int {
	return int(o.capLeft[node])
}

// KthFreeLeaf returns the leaf holding the k-th (0-based) unit of remaining
// capacity below node, scanning leaves left to right. With every leaf
// holding at most one ball this is the k-th empty leaf; it is the
// deterministic target used by rank-descent path construction. It panics if
// k is not smaller than the remaining capacity of node.
func (o *Occupancy) KthFreeLeaf(node Node, k int) Node {
	if rc := o.RemainingCapacity(node); k < 0 || k >= rc {
		panic(fmt.Sprintf("tree: KthFreeLeaf k=%d with remaining capacity %d", k, rc))
	}
	for !o.topo.IsLeaf(node) {
		kids := o.topo.Children(node)
		for i, child := range kids {
			cc := o.RemainingCapacity(child)
			if k < cc || i == len(kids)-1 {
				node = child
				break
			}
			k -= cc
		}
	}
	return node
}

// CheckCapacityInvariant verifies Lemma 1 of the paper for this view: no
// subtree holds more balls than it has leaves. It returns an error naming
// the first violating node, or nil.
func (o *Occupancy) CheckCapacityInvariant() error {
	for n := 0; n < o.topo.NumNodes(); n++ {
		if o.capLeft[n] < 0 {
			return fmt.Errorf("tree: capacity invariant violated at node %d: %d balls, %d leaves",
				n, o.Count(Node(n)), o.topo.Leaves(Node(n)))
		}
	}
	return nil
}

// CheckConsistency verifies the internal algebra of the occupancy: every
// inner node's count must equal its children's counts plus the balls parked
// at the node itself (which At derives, so here we check non-negativity of
// At and that the root count equals the total). It returns an error for the
// first inconsistency found.
func (o *Occupancy) CheckConsistency() error {
	for n := 0; n < o.topo.NumNodes(); n++ {
		if o.At(Node(n)) < 0 {
			return fmt.Errorf("tree: node %d has negative parked-ball count %d", n, o.At(Node(n)))
		}
	}
	return nil
}
