package tree

import "fmt"

// Occupancy tracks, for one local view, how many balls currently sit inside
// each subtree. A ball "at node η" (parked at an inner node or a leaf)
// counts towards η and every ancestor of η. RemainingCapacity(η) is then
// Leaves(η) minus the subtree count, exactly as defined in Algorithm 1.
//
// Occupancy does not know ball identities; views in internal/core pair it
// with a position table. The zero value is unusable; construct with
// NewOccupancy or Clone.
type Occupancy struct {
	topo  *Topology
	count []int32 // balls in the subtree rooted at each node
}

// NewOccupancy returns an empty occupancy over the given topology.
func NewOccupancy(t *Topology) *Occupancy {
	return &Occupancy{topo: t, count: make([]int32, t.NumNodes())}
}

// Topology returns the tree shape this occupancy counts over.
func (o *Occupancy) Topology() *Topology { return o.topo }

// Clone returns an independent copy; mutating either copy does not affect
// the other. Used when local views diverge within a phase.
func (o *Occupancy) Clone() *Occupancy {
	cp := &Occupancy{topo: o.topo, count: make([]int32, len(o.count))}
	copy(cp.count, o.count)
	return cp
}

// CopyFrom overwrites o's counts with src's without allocating. Both must
// share the same topology.
func (o *Occupancy) CopyFrom(src *Occupancy) {
	if o.topo != src.topo {
		panic("tree: CopyFrom across topologies")
	}
	copy(o.count, src.count)
}

// Reset empties the occupancy.
func (o *Occupancy) Reset() {
	for i := range o.count {
		o.count[i] = 0
	}
}

// Add records one ball parked at node, updating the node and all ancestors.
func (o *Occupancy) Add(node Node) {
	for n := node; n != None; n = o.topo.parent[n] {
		o.count[n]++
	}
}

// Remove erases one ball parked at node. It panics if the subtree count
// would go negative, which indicates a corrupted view.
func (o *Occupancy) Remove(node Node) {
	for n := node; n != None; n = o.topo.parent[n] {
		o.count[n]--
		if o.count[n] < 0 {
			panic(fmt.Sprintf("tree: negative occupancy at node %d", n))
		}
	}
}

// Move relocates one ball from node `from` to node `to`, adjusting only the
// counts on the two root paths (the shared prefix is adjusted twice with net
// zero effect; the loop is still O(depth)).
func (o *Occupancy) Move(from, to Node) {
	if from == to {
		return
	}
	o.Remove(from)
	o.Add(to)
}

// Count returns the number of balls inside the subtree rooted at node
// (including balls parked exactly at node).
func (o *Occupancy) Count(node Node) int { return int(o.count[node]) }

// At returns the number of balls parked exactly at node: the subtree count
// minus the counts of all children.
func (o *Occupancy) At(node Node) int {
	c := o.count[node]
	for _, child := range o.topo.Children(node) {
		c -= o.count[child]
	}
	return int(c)
}

// RemainingCapacity returns Leaves(node) minus the subtree ball count: the
// number of additional balls the subtree can still absorb. This is the
// RemainingCapacity(η) operation of Algorithm 1.
func (o *Occupancy) RemainingCapacity(node Node) int {
	return o.topo.Leaves(node) - int(o.count[node])
}

// KthFreeLeaf returns the leaf holding the k-th (0-based) unit of remaining
// capacity below node, scanning leaves left to right. With every leaf
// holding at most one ball this is the k-th empty leaf; it is the
// deterministic target used by rank-descent path construction. It panics if
// k is not smaller than the remaining capacity of node.
func (o *Occupancy) KthFreeLeaf(node Node, k int) Node {
	if rc := o.RemainingCapacity(node); k < 0 || k >= rc {
		panic(fmt.Sprintf("tree: KthFreeLeaf k=%d with remaining capacity %d", k, rc))
	}
	for !o.topo.IsLeaf(node) {
		kids := o.topo.Children(node)
		for i, child := range kids {
			cc := o.RemainingCapacity(child)
			if k < cc || i == len(kids)-1 {
				node = child
				break
			}
			k -= cc
		}
	}
	return node
}

// CheckCapacityInvariant verifies Lemma 1 of the paper for this view: no
// subtree holds more balls than it has leaves. It returns an error naming
// the first violating node, or nil.
func (o *Occupancy) CheckCapacityInvariant() error {
	for n := 0; n < o.topo.NumNodes(); n++ {
		if int(o.count[n]) > o.topo.Leaves(Node(n)) {
			return fmt.Errorf("tree: capacity invariant violated at node %d: %d balls, %d leaves",
				n, o.count[n], o.topo.Leaves(Node(n)))
		}
	}
	return nil
}

// CheckConsistency verifies the internal algebra of the occupancy: every
// inner node's count must equal its children's counts plus the balls parked
// at the node itself (which At derives, so here we check non-negativity of
// At and that the root count equals the total). It returns an error for the
// first inconsistency found.
func (o *Occupancy) CheckConsistency() error {
	for n := 0; n < o.topo.NumNodes(); n++ {
		if o.At(Node(n)) < 0 {
			return fmt.Errorf("tree: node %d has negative parked-ball count %d", n, o.At(Node(n)))
		}
	}
	return nil
}
