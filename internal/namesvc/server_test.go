package namesvc

import (
	"errors"
	"net"
	"testing"
	"time"

	"ballsintoleaves/internal/wire"
)

// startServer brings up a Service+Server on a loopback socket and returns
// the service, the address, and a cleanup-registered server.
func startServer(t *testing.T, cfg Config) (*Service, string) {
	return startServerWith(t, cfg, ServerConfig{})
}

// startServerWith is startServer with explicit server options (Service and
// Logf are filled in).
func startServerWith(t *testing.T, cfg Config, scfg ServerConfig) (*Service, string) {
	t.Helper()
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	scfg.Service = svc
	scfg.Logf = t.Logf
	srv, err := NewServer(scfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ln.Close()
		srv.Close()
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	return svc, ln.Addr().String()
}

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestServerEndToEndOverSockets is the real-socket acceptance test: epochs
// of acquire/release traffic over TCP with uniqueness and reuse-only-after-
// release checked continuously, plus stats and reject behaviour.
func TestServerEndToEndOverSockets(t *testing.T) {
	t.Parallel()
	svc, addr := startServer(t, Config{Shards: 2, ShardCap: 8, Seed: 5})
	c, err := Dial(addr, ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Shards() != 2 || c.ShardCap() != 8 {
		t.Fatalf("welcome advertised %d x %d", c.Shards(), c.ShardCap())
	}

	active := map[int]uint64{}
	everHeld := map[int]bool{}
	released := map[int]bool{}
	acquire := func(client uint64) Grant {
		t.Helper()
		g, err := c.AcquireSync(client)
		if err != nil {
			t.Fatalf("acquire for %d: %v", client, err)
		}
		if _, dup := active[g.Name]; dup {
			t.Fatalf("name %d granted while held", g.Name)
		}
		if everHeld[g.Name] && !released[g.Name] {
			t.Fatalf("name %d reused without release", g.Name)
		}
		active[g.Name] = client
		everHeld[g.Name] = true
		delete(released, g.Name)
		return g
	}
	release := func(g Grant) {
		t.Helper()
		if err := c.ReleaseSync(g.Name); err != nil {
			t.Fatalf("release of %d: %v", g.Name, err)
		}
		delete(active, g.Name)
		released[g.Name] = true
	}

	// Three waves of churn; every sync acquire closes at least one epoch.
	var wave []Grant
	for client := uint64(1); client <= 10; client++ {
		wave = append(wave, acquire(client))
	}
	for _, g := range wave[:5] {
		release(g)
	}
	for client := uint64(21); client <= 25; client++ {
		acquire(client)
	}
	for _, g := range wave[5:] {
		release(g)
	}
	for client := uint64(31); client <= 33; client++ {
		acquire(client)
	}

	st, err := c.StatsSync()
	if err != nil {
		t.Fatal(err)
	}
	if st.Epochs < 3 {
		t.Fatalf("only %d epochs over the socket run", st.Epochs)
	}
	if st.Assigned != len(active) {
		t.Fatalf("server says %d assigned, client holds %d", st.Assigned, len(active))
	}
	if st.Grants < 18 || st.Releases < 10 {
		t.Fatalf("grants %d releases %d, want >= 18 / >= 10", st.Grants, st.Releases)
	}

	// Releasing a name this connection does not hold is a clean reject.
	err = c.ReleaseSync(1 + (len(active) << 10)) // certainly unheld, maybe out of range
	var rej *RejectError
	if !errors.As(err, &rej) {
		t.Fatalf("foreign release: %v, want RejectError", err)
	}
	_ = svc
}

// TestServerDisconnectReleasesAndCancels: a connection that dies while
// holding names and with queued acquires leaves no residue — held names are
// released, queued requests never consume capacity, and the namespace
// remains fully grantable with no duplicates.
func TestServerDisconnectReleasesAndCancels(t *testing.T) {
	t.Parallel()
	svc, addr := startServer(t, Config{Shards: 2, ShardCap: 4, Seed: 11})
	c1, err := Dial(addr, ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()

	// c1 fills the whole namespace: pick client IDs routed to each shard.
	byShard := map[int][]uint64{}
	for client := uint64(1); len(byShard[0]) < 4 || len(byShard[1]) < 4; client++ {
		s := svc.Shard(client)
		if len(byShard[s]) < 4 {
			byShard[s] = append(byShard[s], client)
		}
	}
	grants := map[uint64]Grant{}
	seen := map[int]bool{}
	for _, clients := range byShard {
		for _, client := range clients {
			g, err := c1.AcquireSync(client)
			if err != nil {
				t.Fatal(err)
			}
			if seen[g.Name] {
				t.Fatalf("duplicate name %d", g.Name)
			}
			seen[g.Name] = true
			grants[client] = g
		}
	}

	// c2 queues an acquire against the full namespace, then dies: the
	// request must be cancelled (or its eventual grant absorbed), never
	// holding capacity.
	c2, err := Dial(addr, ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	victim := byShard[0][0]
	if err := c2.Acquire(victim+1000, func(Grant, error) {}); err != nil {
		t.Fatal(err)
	}
	if err := c2.Flush(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "queued acquire", func() bool { return svc.Stats().Pending == 1 })
	c2.Close()
	waitFor(t, "cancel on disconnect", func() bool { return svc.Stats().Pending == 0 })

	// c1 frees one name; a client routed to that shard must be able to
	// re-acquire exactly it.
	freedClient := byShard[0][0]
	freed := grants[freedClient]
	if err := c1.ReleaseSync(freed.Name); err != nil {
		t.Fatal(err)
	}
	g, err := c1.AcquireSync(freedClient)
	if err != nil {
		t.Fatal(err)
	}
	if g.Name != freed.Name {
		t.Fatalf("backfill granted %d, want the freed %d", g.Name, freed.Name)
	}

	// c3 holds two names and dies; the server must release them.
	c3, err := Dial(addr, ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	before := svc.Stats().Assigned
	if before != svc.Capacity() {
		t.Fatalf("namespace not full before c3: %d of %d", before, svc.Capacity())
	}
	// Free two names for c3 to take, via fresh client IDs routed to the
	// same shard.
	for _, client := range byShard[1][:2] {
		if err := c1.ReleaseSync(grants[client].Name); err != nil {
			t.Fatal(err)
		}
	}
	fresh := make([]uint64, 0, 2)
	for client := uint64(5000); len(fresh) < 2; client++ {
		if svc.Shard(client) == 1 {
			fresh = append(fresh, client)
		}
	}
	for _, client := range fresh {
		if _, err := c3.AcquireSync(client); err != nil {
			t.Fatal(err)
		}
	}
	if got := svc.Stats().Assigned; got != svc.Capacity() {
		t.Fatalf("assigned = %d after c3's acquires, want full %d", got, svc.Capacity())
	}
	c3.Close()
	waitFor(t, "disconnect releasing held names", func() bool {
		return svc.Stats().Assigned == svc.Capacity()-2
	})
}

// TestServerMalformedFrameClosesOnlyThatConnection pins the per-connection
// error discipline on the service protocol.
func TestServerMalformedFrameClosesOnlyThatConnection(t *testing.T) {
	t.Parallel()
	svc, addr := startServer(t, Config{ShardCap: 4, Seed: 2})
	good, err := Dial(addr, ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer good.Close()
	if _, err := good.AcquireSync(7); err != nil {
		t.Fatal(err)
	}

	// A raw connection sends a valid hello, then a truncated acquire body.
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	var w wire.Writer
	appendSvcHello(&w)
	if err := wire.WriteFrame(raw, w.Bytes()); err != nil {
		t.Fatal(err)
	}
	if _, err := wire.ReadFrame(raw, nil, svcMaxFrame); err != nil {
		t.Fatalf("welcome: %v", err)
	}
	if err := wire.WriteFrame(raw, []byte{opAcquire, 0x80}); err != nil {
		t.Fatal(err)
	}
	raw.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := wire.ReadFrame(raw, nil, svcMaxFrame); err == nil {
		t.Fatal("server kept the connection after a malformed frame")
	}

	// The well-behaved connection is unaffected.
	if _, err := good.AcquireSync(8); err != nil {
		t.Fatalf("good connection broken by peer's malformed frame: %v", err)
	}
	if st := svc.Stats(); st.Assigned != 2 {
		t.Fatalf("assigned = %d, want 2", st.Assigned)
	}
}

// TestServerUnknownOpAndBadHello cover the remaining rejection paths.
func TestServerUnknownOpAndBadHello(t *testing.T) {
	t.Parallel()
	_, addr := startServer(t, Config{ShardCap: 4, Seed: 2})

	// Wrong hello version: connection closed without a welcome.
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	var w wire.Writer
	w.Byte(opHello)
	w.Uvarint(99)
	if err := wire.WriteFrame(raw, w.Bytes()); err != nil {
		t.Fatal(err)
	}
	raw.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := wire.ReadFrame(raw, nil, svcMaxFrame); err == nil {
		t.Fatal("server welcomed a wrong-version hello")
	}
	raw.Close()

	// Unknown op after a good handshake: connection closed.
	raw2, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw2.Close()
	w.Reset()
	appendSvcHello(&w)
	if err := wire.WriteFrame(raw2, w.Bytes()); err != nil {
		t.Fatal(err)
	}
	if _, err := wire.ReadFrame(raw2, nil, svcMaxFrame); err != nil {
		t.Fatalf("welcome: %v", err)
	}
	if err := wire.WriteFrame(raw2, []byte{0x7f}); err != nil {
		t.Fatal(err)
	}
	raw2.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := wire.ReadFrame(raw2, nil, svcMaxFrame); err == nil {
		t.Fatal("server kept the connection after an unknown op")
	}
}

// TestServerOverflowDisconnectsSlowReader pins the outbound-queue cap: a
// connection that floods requests while never reading its responses must be
// disconnected once its pending response bytes exceed MaxConnQueue — and
// the disconnect runs the ordinary crash-absorption teardown, releasing
// every name the connection held, while other connections are unaffected.
func TestServerOverflowDisconnectsSlowReader(t *testing.T) {
	t.Parallel()
	svc, addr := startServerWith(t, Config{ShardCap: 16, Seed: 3},
		ServerConfig{MaxConnQueue: 16 << 10, IOTimeout: 5 * time.Second})

	good, err := Dial(addr, ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer good.Close()
	if _, err := good.AcquireSync(7); err != nil {
		t.Fatal(err)
	}

	// The hog: a raw connection that acquires one name, then floods stats
	// requests without ever reading a response.
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	var w wire.Writer
	appendSvcHello(&w)
	if err := wire.WriteFrame(raw, w.Bytes()); err != nil {
		t.Fatal(err)
	}
	if _, err := wire.ReadFrame(raw, nil, svcMaxFrame); err != nil {
		t.Fatalf("welcome: %v", err)
	}
	w.Reset()
	appendAcquire(&w, 1, 99)
	if err := wire.WriteFrame(raw, w.Bytes()); err != nil {
		t.Fatal(err)
	}
	if _, err := wire.ReadFrame(raw, nil, svcMaxFrame); err != nil {
		t.Fatalf("grant: %v", err)
	}
	waitFor(t, "hog's name assigned", func() bool { return svc.Stats().Assigned == 2 })

	// Flood. Responses pile up server-side (the kernel's socket buffers
	// absorb some first); the cap must trip and the server must close the
	// connection, which surfaces here as a write error.
	w.Reset()
	appendStatsReq(&w, 2)
	frame := w.Bytes()
	deadline := time.Now().Add(10 * time.Second)
	var writeErr error
	for time.Now().Before(deadline) {
		raw.SetWriteDeadline(time.Now().Add(100 * time.Millisecond))
		if err := wire.WriteFrame(raw, frame); err != nil {
			writeErr = err
			break
		}
	}
	if writeErr == nil {
		t.Fatal("server never disconnected the non-reading flooder")
	}

	// Teardown released the hog's name; the polite connection still works.
	waitFor(t, "hog's name released", func() bool { return svc.Stats().Assigned == 1 })
	if _, err := good.AcquireSync(8); err != nil {
		t.Fatalf("good connection broken by the flooder: %v", err)
	}
}

// TestServerBackpressureOnCoalescedGrants pins the outbound cap against the
// coalesced write path: a connection that floods acquires while never
// reading its grants has whole epochs' worth of grant frames committed to
// its outbox in per-epoch batches, must be disconnected once the pending
// bytes exceed MaxConnQueue, and must leave nothing behind — every name it
// was granted (delivered or not) returns to the pool — while other
// connections' epochs keep flowing throughout.
func TestServerBackpressureOnCoalescedGrants(t *testing.T) {
	t.Parallel()
	svc, addr := startServerWith(t, Config{ShardCap: 1 << 15, Seed: 9},
		ServerConfig{MaxConnQueue: 16 << 10, MaxOutstanding: 1 << 16, IOTimeout: 5 * time.Second})

	good, err := Dial(addr, ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer good.Close()
	g0, err := good.AcquireSync(7)
	if err != nil {
		t.Fatal(err)
	}

	// The hog: floods acquires without ever reading a response. Each epoch
	// commits its grants to the hog's outbox in one coalesced append; the
	// kernel's socket buffers drain some, then the cap must trip.
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	var w wire.Writer
	appendSvcHello(&w)
	if err := wire.WriteFrame(raw, w.Bytes()); err != nil {
		t.Fatal(err)
	}
	if _, err := wire.ReadFrame(raw, nil, svcMaxFrame); err != nil {
		t.Fatalf("welcome: %v", err)
	}
	var writeErr error
	deadline := time.Now().Add(10 * time.Second)
	for client := uint64(100); time.Now().Before(deadline); client++ {
		w.Reset()
		appendAcquire(&w, client, client)
		raw.SetWriteDeadline(time.Now().Add(100 * time.Millisecond))
		if err := wire.WriteFrame(raw, w.Bytes()); err != nil {
			writeErr = err
			break
		}
	}
	if writeErr == nil {
		t.Fatal("server never disconnected the non-reading grant flood")
	}

	// The hog's teardown releases everything it was granted — including
	// grants staged but never deliverable — leaving only good's name.
	waitFor(t, "hog's names all released", func() bool {
		st := svc.Stats()
		return st.Assigned == 1 && st.Pending == 0
	})
	// Other connections were never stalled: the polite client still churns.
	if err := good.ReleaseSync(g0.Name); err != nil {
		t.Fatalf("good connection broken by the flooder: %v", err)
	}
	if _, err := good.AcquireSync(8); err != nil {
		t.Fatalf("good connection broken by the flooder: %v", err)
	}
}

// TestServerAdaptiveEpochClosesEarly pins the adaptive batching window: with
// an absurdly long EpochInterval, a batch that reaches MaxBatch must be
// granted immediately (BatchFull ends the window) instead of waiting the
// timer out.
func TestServerAdaptiveEpochClosesEarly(t *testing.T) {
	t.Parallel()
	_, addr := startServerWith(t, Config{ShardCap: 8, Seed: 1, MaxBatch: 4},
		ServerConfig{EpochInterval: 30 * time.Second})
	c, err := Dial(addr, ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	granted := make(chan error, 4)
	for client := uint64(1); client <= 4; client++ {
		if err := c.Acquire(client, func(g Grant, err error) { granted <- err }); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		select {
		case err := <-granted:
			if err != nil {
				t.Fatalf("grant %d: %v", i, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("full batch not granted before the batching window expired")
		}
	}
}

// TestServerHandshakeDeadlineShedsStalledConns pins the handshake bound:
// a connection that never sends its hello (a half-open victim of a chaos
// proxy, or a port scanner) must be shed within HandshakeTimeout instead
// of pinning a reader goroutine until the much larger IOTimeout.
func TestServerHandshakeDeadlineShedsStalledConns(t *testing.T) {
	t.Parallel()
	_, addr := startServerWith(t, Config{ShardCap: 8, Seed: 9},
		ServerConfig{HandshakeTimeout: 200 * time.Millisecond, IOTimeout: 30 * time.Second})

	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	start := time.Now()
	// Send nothing; the server must close the connection on its own.
	raw.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := raw.Read(buf); err == nil {
		t.Fatal("server spoke first on an un-handshaken connection")
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("stalled connection shed after %v, want ~HandshakeTimeout", d)
	}

	// A prompt hello still works with the tight handshake deadline.
	c, err := Dial(addr, ClientConfig{})
	if err != nil {
		t.Fatalf("dial after shed: %v", err)
	}
	defer c.Close()
	if _, err := c.AcquireSync(1); err != nil {
		t.Fatal(err)
	}
}
