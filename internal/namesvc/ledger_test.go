package namesvc

import (
	"testing"
)

func TestLedgerAssignRelease(t *testing.T) {
	t.Parallel()
	l := newLedger(4, true, 0)
	if got := l.freeCount(); got != 4 {
		t.Fatalf("freeCount = %d, want 4", got)
	}
	l.assign(1, 10, 7, 2)
	l.assign(1, 11, 8, 1)
	if got := l.freeCount(); got != 2 {
		t.Fatalf("freeCount = %d, want 2", got)
	}
	if got := l.peekFree(2); got[0] != 3 || got[1] != 4 {
		t.Fatalf("free = %v, want [3 4]", got)
	}
	if err := l.release(1, 7, 2); err != nil {
		t.Fatal(err)
	}
	// Released names rejoin in sorted position.
	if got := l.peekFree(3); got[0] != 2 || got[1] != 3 || got[2] != 4 {
		t.Fatalf("free = %v, want [2 3 4]", got)
	}
	want := []Entry{
		{Epoch: 1, Op: OpAssign, Client: 7, ReqID: 10, Name: 2},
		{Epoch: 1, Op: OpAssign, Client: 8, ReqID: 11, Name: 1},
		{Epoch: 1, Op: OpRelease, Client: 7, Name: 2},
	}
	if len(l.entries) != len(want) {
		t.Fatalf("journal has %d entries, want %d", len(l.entries), len(want))
	}
	for i, e := range want {
		if l.entries[i] != e {
			t.Fatalf("journal[%d] = %+v, want %+v", i, l.entries[i], e)
		}
	}
}

func TestLedgerReleaseValidation(t *testing.T) {
	t.Parallel()
	l := newLedger(4, false, 0)
	l.assign(1, 10, 7, 1)
	for name, client := range map[int]uint64{
		0: 7, // out of range low
		5: 7, // out of range high
		2: 7, // not assigned
		1: 9, // wrong holder
	} {
		if err := l.release(1, client, name); err == nil {
			t.Errorf("release(client=%d, name=%d) succeeded, want error", client, name)
		}
	}
	if err := l.release(1, 7, 1); err != nil {
		t.Fatalf("valid release failed: %v", err)
	}
	if err := l.release(1, 7, 1); err == nil {
		t.Fatal("double release succeeded, want error")
	}
}

func TestLedgerAssignNonFreePanics(t *testing.T) {
	t.Parallel()
	l := newLedger(2, false, 0)
	l.assign(1, 10, 7, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("assigning a held name did not panic")
		}
	}()
	l.assign(1, 11, 8, 1)
}

func TestLedgerDigestTracksHistory(t *testing.T) {
	t.Parallel()
	a, b := newLedger(4, false, 0), newLedger(4, false, 0)
	if a.digest != b.digest {
		t.Fatal("fresh ledgers differ")
	}
	a.assign(1, 10, 7, 1)
	b.assign(1, 10, 7, 1)
	if a.digest != b.digest {
		t.Fatal("identical histories produced different digests")
	}
	// Same multiset of events in a different order must differ: the
	// digest is a history hash, not a state hash.
	c, d := newLedger(4, false, 0), newLedger(4, false, 0)
	c.assign(1, 10, 7, 1)
	c.assign(1, 11, 8, 2)
	d.assign(1, 11, 8, 2)
	d.assign(1, 10, 7, 1)
	if c.digest == d.digest {
		t.Fatal("different histories collided")
	}
}
