package namesvc

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ballsintoleaves/internal/wire"
)

// connReadBufSize is each connection's read buffer: large enough that one
// kernel read delivers a deep pipelined burst for the ingestion loop to
// drain in a single pass.
const connReadBufSize = 64 << 10

// maxIngestBurst caps the frames decoded per ingestion pass, bounding the
// per-connection bucket scratch and the latency of the first op in a burst.
const maxIngestBurst = 512

// maxStagedGrants forces a delivery pass mid-drain once this many grants
// are staged, bounding both the delivery scratch and the latency of a
// drain's first epoch when a deep backlog lets the drain close many epochs
// back to back.
const maxStagedGrants = 4096

// CommitGate couples a Server to an external commit rule — a replication
// quorum (internal/namesvc/repl) or group-commit fsync (GroupGate). The
// server consults it at two points: write admission and grant delivery.
type CommitGate interface {
	// AdmitWrites reports whether this server currently serves writes
	// (acquire, release, reclaim, epoch ops). When false, leader is the
	// client address of the node that does (may be empty if unknown), and
	// writes are rejected with RejectNotLeader carrying that hint. Called
	// per ingested frame; it must be cheap and lock-free.
	AdmitWrites() (ok bool, leader string)
	// WaitCommitted blocks until every record the shard has produced so
	// far is committed (quorum-acknowledged, or fsynced, per the gate).
	// Grant delivery for the shard waits on it; an error means the records
	// can no longer commit (the node was deposed mid-epoch) and the staged
	// grants are discarded undelivered — never observable by any client,
	// so a new leader re-granting those names is safe.
	WaitCommitted(shard int) error
}

// wireRoleReporter is the optional CommitGate extension for gates that
// know the node's replication role: the welcome reports it plus the
// leader's client address so clients can redirect before the first write.
// Gates without it (GroupGate) are standalone.
type wireRoleReporter interface {
	WireRole() (Role, string)
}

// wireReadLeaser is the optional CommitGate extension that gates reads:
// a leader whose check-quorum lease has gone stale must not answer
// stats/journal reads (it may already be deposed), so those ops are
// rejected with RejectNotLeader until the lease is fresh again — this is
// what makes leader reads linearizable. Gates without it serve reads
// unconditionally.
type wireReadLeaser interface {
	ReadLeaseValid() bool
}

// wireReplStats is the optional CommitGate extension that annotates the
// stats reply with replication status: term, role, the reason for the
// last term/role change, and the compaction floor.
type wireReplStats interface {
	WireReplStats() (term uint64, role Role, reason string, compactFloor uint64)
}

// groupGate adapts Service.SyncGroup to the CommitGate seam: writes are
// always admitted, and delivery waits for a group-fsync round. Sync
// failures degrade the shard fail-open (durability.go), so delivery
// proceeds even then.
type groupGate struct{ svc *Service }

func (g groupGate) AdmitWrites() (bool, string)   { return true, "" }
func (g groupGate) WaitCommitted(shard int) error { g.svc.SyncGroup(); return nil }

// GroupGate returns the ServerConfig.Gate for a standalone server whose
// service uses FsyncGroup: grants are delivered only after an fsync round
// covers their records, with concurrent shards sharing each round.
func GroupGate(svc *Service) CommitGate { return groupGate{svc} }

// ServerConfig parameterizes a Server.
type ServerConfig struct {
	// Service is the allocation core to serve. Required.
	Service *Service
	// Gate, when non-nil, is the external commit rule (see CommitGate):
	// replication quorum or group-commit fsync. Required when the service
	// uses FsyncGroup (use GroupGate); nil otherwise means no gating.
	Gate CommitGate
	// EpochInterval is the batching window: after a shard's first queued
	// request, its epoch loop waits this long before closing the epoch, so
	// more arrivals join the batch. The window is adaptive: it ends early
	// as soon as the batch can no longer grow (Service.BatchFull — the
	// queue reached MaxBatch, or it covers every free name), so a burst
	// never waits out a timer it cannot benefit from. Zero is pure group
	// commit — close immediately, and let the requests that arrive during
	// one epoch's renaming run form the next batch.
	EpochInterval time.Duration
	// MaxOutstanding caps one connection's in-flight acquires; beyond it
	// acquires are rejected with RejectBusy. Zero means 4096.
	MaxOutstanding int
	// MaxConnQueue caps one connection's pending outbound bytes (encoded
	// response frames not yet accepted by the kernel). A reader too slow or
	// stalled to drain its responses would otherwise grow the queue without
	// bound; at the cap the server disconnects that client, and the
	// ordinary crash-absorption teardown reclaims everything it held. Zero
	// means 1 MiB. (Each connection double-buffers, so peak memory is up to
	// twice this while a flush is in flight.)
	MaxConnQueue int
	// IOTimeout bounds every write. Zero means 30s.
	IOTimeout time.Duration
	// HandshakeTimeout bounds the wait for the client's hello frame, so a
	// half-open or stalled connection (a chaos proxy holding the dial, a
	// SYN-scanned port) sheds its reader goroutine instead of pinning it
	// until IOTimeout. Mirrors repl's replIOTimeout. Zero means 5s.
	HandshakeTimeout time.Duration
	// ManualEpochs disables the autonomous epoch loops: no epoch runs until
	// a client sends an epoch-close op for a shard, which closes exactly one
	// epoch and replies with the shard's epoch number and grant count after
	// delivering the grants. This makes epoch composition — which requests
	// batch into which epoch — a pure function of the wire traffic, which is
	// what the deterministic simulator's differential replay needs; it is a
	// testing/replay mode, not a production configuration. EpochInterval is
	// ignored. On a server without ManualEpochs the epoch op is rejected
	// with RejectUnsupported.
	ManualEpochs bool
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
}

func (cfg *ServerConfig) normalize() error {
	if cfg.Service == nil {
		return fmt.Errorf("namesvc: ServerConfig.Service is required")
	}
	if cfg.MaxOutstanding <= 0 {
		cfg.MaxOutstanding = 4096
	}
	if cfg.MaxConnQueue <= 0 {
		cfg.MaxConnQueue = 1 << 20
	}
	if cfg.IOTimeout <= 0 {
		cfg.IOTimeout = 30 * time.Second
	}
	if cfg.HandshakeTimeout <= 0 {
		cfg.HandshakeTimeout = 5 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	return nil
}

// Server puts a Service on a listener: it speaks the blnamed wire protocol,
// runs one group-commit epoch loop per shard, and renders connection
// failures onto the service's crash-absorption semantics — a connection
// that dies with queued acquires cancels them (or lets their grants be
// absorbed), and every name the connection held is released, so names never
// leak to dead clients.
//
// The front end is batched end to end. Ingestion: each connection's handler
// drains every complete pipelined frame its read buffer already holds,
// buckets the burst's acquires and releases by shard, and submits each
// bucket through Service.AcquireBatch / Service.ReleaseBatch — one shard
// lock acquisition and one epoch-loop kick per shard per burst instead of
// one per request. Delivery: grants produced by a shard's CloseEpoch are
// staged per destination connection and committed after the epoch — all of
// one connection's grant frames encoded contiguously and appended to its
// outbox under a single lock with a single writer wakeup per connection per
// epoch.
type Server struct {
	cfg     ServerConfig
	svc     *Service
	workers int             // epoch loops; shard s is driven by worker s%workers
	kicks   []chan struct{} // one binary semaphore per epoch worker
	deliver []shardDelivery
	// manualMu serializes manual epoch closes per shard (ManualEpochs mode):
	// a shard's delivery scratch is owned by whoever closes its epochs, and
	// with no epoch loops that is whichever connection sent the epoch op.
	manualMu []sync.Mutex
	stop     chan struct{}
	once     sync.Once
	wg       sync.WaitGroup

	mu    sync.Mutex
	conns map[net.Conn]chan struct{} // conn -> closed when its handler is done

	// holders is the server-wide binding authority: which connection a
	// granted name is currently deliverable/releasable on. A reclaim from
	// a reconnecting session *steals* the binding from the old (dying)
	// connection, and teardown releases only names the dead connection
	// still owns here — otherwise a slow teardown racing a fast reconnect
	// would release a name the session just reclaimed, and its re-grant
	// would surface as a duplicate. Lock order: holdMu before any c.mu;
	// holdMu is held across the Reclaim/Release service calls on the
	// steal-sensitive paths so binding and ledger can't diverge.
	holdMu  sync.Mutex
	holders map[int]*svcConn
}

// NewServer builds a Server and starts its epoch loops: one per shard when
// cores allow (or when a batching window is configured, which is per-shard
// state), otherwise a bounded pool of GOMAXPROCS epoch workers each owning
// a stripe of shards — on machines with fewer cores than shards, one wakeup
// then drains several shards, instead of paying a goroutine handoff per
// shard per burst for parallelism the hardware cannot deliver.
func NewServer(cfg ServerConfig) (*Server, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	shards := cfg.Service.Shards()
	workers := runtime.GOMAXPROCS(0)
	if cfg.EpochInterval > 0 || workers > shards {
		workers = shards
	}
	if cfg.ManualEpochs {
		workers = 0 // no autonomous epoch loops; clients drive every close
	}
	s := &Server{
		cfg:      cfg,
		svc:      cfg.Service,
		workers:  workers,
		kicks:    make([]chan struct{}, workers),
		deliver:  make([]shardDelivery, shards),
		manualMu: make([]sync.Mutex, shards),
		stop:     make(chan struct{}),
		conns:    make(map[net.Conn]chan struct{}),
		holders:  make(map[int]*svcConn),
	}
	for i := range s.deliver {
		s.deliver[i].byConn = make(map[*svcConn]int32)
	}
	for w := range s.kicks {
		s.kicks[w] = make(chan struct{}, 1)
		s.wg.Add(1)
		if workers == shards {
			go s.shardLoop(w)
		} else {
			go s.epochWorker(w)
		}
	}
	return s, nil
}

// Serve accepts connections on ln until the listener is closed, handling
// each on its own goroutine. It does not close ln; the owner closes the
// listener to stop accepting and then calls Close to tear the server down.
func (s *Server) Serve(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-s.stop:
				return nil
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("namesvc: accept: %w", err)
		}
		s.mu.Lock()
		if s.conns == nil {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		done := make(chan struct{})
		s.conns[conn] = done
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			s.handle(conn)
			close(done)
		}()
	}
}

// Close stops the epoch loops, closes every live connection, and waits for
// all handlers to finish. The listener passed to Serve must be closed by
// its owner (before or after Close; Serve tolerates both orders).
func (s *Server) Close() error {
	s.once.Do(func() {
		close(s.stop)
		s.mu.Lock()
		conns := s.conns
		s.conns = nil
		s.mu.Unlock()
		for conn := range conns {
			conn.Close()
		}
	})
	s.wg.Wait()
	return nil
}

// DisconnectAll severs every currently-live client connection and waits
// for their teardowns to finish: queued acquires cancelled, held names
// released. Connections accepted afterwards are unaffected; the server
// keeps accepting. A deposed replication leader calls this to quiesce its
// write pipeline before its state is overwritten by a catch-up snapshot
// (clients reconnect and are redirected to the new leader).
func (s *Server) DisconnectAll() {
	s.mu.Lock()
	conns := make([]net.Conn, 0, len(s.conns))
	dones := make([]chan struct{}, 0, len(s.conns))
	for conn, done := range s.conns {
		conns = append(conns, conn)
		dones = append(dones, done)
	}
	s.mu.Unlock()
	for _, conn := range conns {
		conn.Close()
	}
	for _, done := range dones {
		<-done
	}
}

// kick nudges the epoch loop driving a shard; the channel is a binary
// semaphore, so concurrent kicks coalesce. With ManualEpochs there is no
// loop to nudge — the next client-driven epoch close observes the work.
func (s *Server) kick(shard int) {
	if s.workers == 0 {
		return
	}
	select {
	case s.kicks[shard%s.workers] <- struct{}{}:
	default:
	}
}

// closeManualEpoch closes exactly one epoch on a shard and delivers its
// grants — the server half of the epoch op. The per-shard manual mutex
// makes the delivery scratch single-owner exactly as an epoch loop would;
// the read-loop goroutine that sent the op runs the close synchronously, so
// by the time its reply is encoded, every grant frame of the epoch is
// already committed to its destination outbox (FIFO before the reply on
// the requesting connection).
func (s *Server) closeManualEpoch(shard int) (epoch uint64, granted int, err error) {
	s.manualMu[shard].Lock()
	defer s.manualMu[shard].Unlock()
	grants, err := s.svc.CloseEpoch(shard)
	granted = len(grants)
	s.deliverEpochs(shard)
	return s.svc.ShardEpoch(shard), granted, err
}

// shardLoop closes epochs on one shard whenever work arrives: group commit
// with an optional adaptive batching window. During the window the loop
// keeps listening for kicks and closes the epoch as soon as the batch can
// no longer grow (BatchFull) instead of waiting the timer out — under
// bursts the window costs nothing, while trickles still coalesce. It
// drains — repeated CloseEpoch calls — because requests that queued during
// an epoch's renaming run form the next batch without another kick. After
// every CloseEpoch it delivers the staged grants connection by connection
// (deliverEpoch), outside the shard lock.
func (s *Server) shardLoop(shard int) {
	defer s.wg.Done()
	var timer *time.Timer
	if s.cfg.EpochInterval > 0 {
		timer = time.NewTimer(s.cfg.EpochInterval)
		if !timer.Stop() {
			<-timer.C
		}
		defer timer.Stop()
	}
	for {
		select {
		case <-s.stop:
			return
		case <-s.kicks[shard]:
		}
		if timer != nil && !s.svc.BatchFull(shard) {
			timer.Reset(s.cfg.EpochInterval)
			for waiting := true; waiting; {
				select {
				case <-s.stop:
					return
				case <-timer.C:
					waiting = false
				case <-s.kicks[shard]:
					if s.svc.BatchFull(shard) {
						if !timer.Stop() {
							<-timer.C
						}
						waiting = false
					}
				}
			}
		}
		s.drainShard(shard)
	}
}

// epochWorker drives the stripe of shards worker w owns (w, w+workers, …)
// when shards outnumber cores: one wakeup drains every owned shard in turn,
// so a burst touching several shards costs one goroutine handoff, not one
// per shard. Checking a quiet shard is one short lock acquisition, so the
// scan costs nothing compared to the epochs it batches.
func (s *Server) epochWorker(w int) {
	defer s.wg.Done()
	for {
		select {
		case <-s.stop:
			return
		case <-s.kicks[w]:
		}
		for shard := w; shard < s.svc.Shards(); shard += s.workers {
			s.drainShard(shard)
		}
	}
}

// drainShard closes epochs on one shard until nothing more can be
// assigned, then delivers every staged grant in one pass. Coalescing the
// delivery across the whole drain — not just one epoch — is safe because
// the drain is self-limiting: it ends once the shard's queue is empty, and
// the queue cannot refill off this shard's own grants until they are
// delivered; it buys one outbox lock and one writer wakeup per connection
// per drain, no matter how many epochs the drain closed. A deep backlog
// (many epochs' worth queued up front) is delivered in maxStagedGrants
// slices instead, so the first epoch's grants never wait on the whole
// backlog.
func (s *Server) drainShard(shard int) {
	defer s.deliverEpochs(shard)
	for {
		if len(s.deliver[shard].staged) >= maxStagedGrants {
			s.deliverEpochs(shard)
		}
		// Yield once before closing: a kick often races the rest of the
		// kicker's burst (and other connections' bursts) through
		// ingestion, and on a loaded machine one scheduler pass lets
		// those arrivals join this epoch instead of fragmenting into
		// the next — micro-batching without a timer. Idle systems pay
		// nanoseconds.
		runtime.Gosched()
		grants, err := s.svc.CloseEpoch(shard)
		if err != nil {
			// The batch stays queued; log and wait for the next kick
			// rather than spinning on a persistent failure.
			s.cfg.Logf("shard %d: epoch failed: %v", shard, err)
			return
		}
		if len(grants) > 0 {
			continue
		}
		// No accepted grants — but an epoch may still have run with
		// every grant absorbed (the whole batch's connections died),
		// leaving later arrivals queued with nobody left to kick.
		// Keep draining while another epoch could assign; stop when
		// the queue is empty or the namespace is exhausted (a release
		// will kick us).
		if !s.svc.EpochRunnable(shard) {
			return
		}
	}
}

// stagedGrant is one accepted grant awaiting delivery, linked to the next
// staged grant of the same connection.
type stagedGrant struct {
	req  *connReq
	g    Grant
	next int32
}

// grantRun is one connection's chain of staged grants within an epoch.
type grantRun struct {
	conn       *svcConn
	head, tail int32
}

// shardDelivery is one shard's grant-coalescing scratch, owned by that
// shard's epoch loop. During CloseEpoch the grant notifies stage accepted
// grants here (under the shard lock, without touching any connection lock);
// deliverEpoch then walks the per-connection runs and commits each one —
// the whole epoch's frames for a connection encoded contiguously, appended
// to its outbox under one lock, with one writer wakeup. Everything is
// reused epoch to epoch.
type shardDelivery struct {
	staged []stagedGrant
	runs   []grantRun
	byConn map[*svcConn]int32 // conn -> index into runs
	w      wire.Writer        // frame-body encode scratch
	buf    []byte             // contiguous frames for the run being built
	rel    []Grant            // grants to release (recipient gone mid-flight)
}

// stage links one accepted grant onto its connection's run.
func (d *shardDelivery) stage(r *connReq, g Grant) {
	idx := int32(len(d.staged))
	d.staged = append(d.staged, stagedGrant{req: r, g: g, next: -1})
	if ri, ok := d.byConn[r.c]; ok {
		d.staged[d.runs[ri].tail].next = idx
		d.runs[ri].tail = idx
	} else {
		d.byConn[r.c] = int32(len(d.runs))
		d.runs = append(d.runs, grantRun{conn: r.c, head: idx, tail: idx})
	}
}

// deliverEpochs commits the staged grants of a drain cycle's epochs, one
// connection at a time: frames are encoded outside any lock, then
// commitGrants appends them to the connection's outbox and updates its
// held/outstanding bookkeeping under a single lock with a single
// cond-signal. Grants whose connection vanished between the in-epoch
// accept and this commit are released here — the name returns to the pool
// having never been observable on the wire.
func (s *Server) deliverEpochs(shard int) {
	d := &s.deliver[shard]
	if len(d.staged) == 0 {
		return
	}
	if g := s.cfg.Gate; g != nil {
		// The commit rule: nothing reaches a client until the gate says the
		// shard's records are committed (quorum-acknowledged / fsynced). On
		// error the node was deposed with these grants in flight — discard
		// them undelivered. No client ever observed them, so the new
		// leader's epochs may re-grant the same names without a duplicate
		// ever being visible; the local ledger divergence is repaired by
		// the catch-up resync that follows deposition.
		if err := g.WaitCommitted(shard); err != nil {
			s.cfg.Logf("shard %d: discarding %d staged grants: %v", shard, len(d.staged), err)
			d.staged = d.staged[:0]
			d.runs = d.runs[:0]
			clear(d.byConn)
			return
		}
	}
	released := false
	for i := range d.runs {
		run := &d.runs[i]
		d.buf = d.buf[:0]
		for j := run.head; j >= 0; j = d.staged[j].next {
			sg := &d.staged[j]
			d.w.Reset()
			appendGrant(&d.w, sg.req.tag, sg.g)
			d.buf = wire.AppendFrame(d.buf, d.w.Bytes())
		}
		d.rel = run.conn.commitGrants(d, run.head, d.buf, d.rel[:0])
		for _, g := range d.rel {
			if err := s.svc.Release(g.Client, g.Name); err != nil {
				s.cfg.Logf("%v: releasing undeliverable grant of %d: %v",
					run.conn.conn.RemoteAddr(), g.Name, err)
				continue
			}
			released = true
		}
	}
	d.staged = d.staged[:0]
	d.runs = d.runs[:0]
	clear(d.byConn)
	if released {
		// The freed capacity may be the only thing standing between queued
		// acquires and an exhausted shard, and the drain that delivered us
		// here has already sampled EpochRunnable — re-kick so the epoch
		// loop observes the returns (teardown does the same for held
		// names).
		s.kick(shard)
	}
}

// svcConn is one connection's server-side state. Lock order: a shard lock
// may be taken before c.mu (grant notifies run under the shard lock), so
// c.mu must never be held across a Service call.
//
// The outbox is a pooled double buffer: response frames are encoded
// contiguously (header + body) and appended to pend in whole-burst chunks;
// the writer goroutine swaps pend with fly and flushes the batch in a
// single Write — one syscall per drained batch, the writev pattern with the
// iovecs already adjacent. Both buffers are reused for the connection's
// lifetime, so the steady-state write path allocates nothing; a whole
// epoch's grants for this connection land back-to-back in one buffer, one
// lock acquisition, one writer wakeup, and one flush.
type svcConn struct {
	srv      *Server
	conn     net.Conn
	maxQueue int         // outbound byte cap (ServerConfig.MaxConnQueue)
	gone     atomic.Bool // mirrors dead||overflow for lock-free notify checks

	mu          sync.Mutex
	cond        *sync.Cond
	dead        bool
	overflow    bool   // queue cap exceeded; connection being dropped
	pend        []byte // frames accumulating for the writer
	fly         []byte // frames being flushed; swapped with pend
	outClosed   bool
	held        map[int]uint64 // global name -> holding client
	outstanding map[*connReq]struct{}
	freeReqs    []*connReq // recycled per-request state
}

// connReq tracks one in-flight acquire from registration to grant. It is
// the request's GrantNotifier: GrantNotify runs under the shard lock at
// epoch close and stages the grant for coalesced delivery; refusing (once
// the connection is gone) absorbs the grant as a crash. Enqueued records
// the service request ID under the shard lock — before any epoch can grant
// and recycle the struct — so teardown can cancel still-queued requests.
type connReq struct {
	c      *svcConn
	tag    uint64
	client uint64
	id     uint64 // service request ID; 0 until enqueued
}

// GrantNotify implements GrantNotifier; it runs under the shard lock.
func (r *connReq) GrantNotify(g Grant) bool {
	if r.c.gone.Load() {
		return false
	}
	r.c.srv.deliver[g.Shard].stage(r, g)
	return true
}

// Enqueued implements the service's enqueueAware extension.
func (r *connReq) Enqueued(id uint64) { r.id = id }

// admitLocked reports whether n more outbound bytes may join the outbox;
// c.mu must be held. False with tripped set means this call exceeded the
// cap and started the overflow teardown (flag, writer wakeup) — the caller
// must close the connection after unlocking, handing cleanup to the
// ordinary crash-absorption teardown: a reader that cannot keep up with
// its own responses is indistinguishable from a stalled one. False with
// tripped clear means the connection was already being torn down.
func (c *svcConn) admitLocked(n int) (ok, tripped bool) {
	if c.dead || c.outClosed || c.overflow {
		return false, false
	}
	if len(c.pend)+n > c.maxQueue {
		c.overflow = true
		c.gone.Store(true)
		c.cond.Signal()
		return false, true
	}
	return true, false
}

// enqueue appends pre-encoded response frames (one or more, already length-
// prefixed) to the outbox under one lock and one writer wakeup. It reports
// false when the connection is being torn down, including the teardown
// admitLocked starts when these frames would exceed the outbound cap.
func (c *svcConn) enqueue(frames []byte) bool {
	if len(frames) == 0 {
		return true
	}
	c.mu.Lock()
	ok, tripped := c.admitLocked(len(frames))
	if !ok {
		c.mu.Unlock()
		if tripped {
			c.conn.Close() // fails the read loop, which runs teardown
		}
		return false
	}
	c.pend = append(c.pend, frames...)
	c.cond.Signal()
	c.mu.Unlock()
	return true
}

// commitGrants appends one epoch's worth of pre-encoded grant frames for
// this connection and records the grants in held/outstanding, all under a
// single lock acquisition with a single cond-signal. It returns (appended
// to rel) the grants that can no longer be delivered — the connection died
// or overflowed after the in-epoch accept — which the caller must release
// back to the service.
func (c *svcConn) commitGrants(d *shardDelivery, head int32, frames []byte, rel []Grant) []Grant {
	s := c.srv
	s.holdMu.Lock()
	c.mu.Lock()
	ok, tripped := c.admitLocked(len(frames))
	if !ok {
		c.mu.Unlock()
		s.holdMu.Unlock()
		if tripped {
			c.conn.Close() // fails the read loop, which runs teardown
		}
		for j := head; j >= 0; j = d.staged[j].next {
			rel = append(rel, d.staged[j].g)
		}
		return rel
	}
	for j := head; j >= 0; j = d.staged[j].next {
		sg := &d.staged[j]
		req := sg.req
		delete(c.outstanding, req)
		c.held[sg.g.Name] = sg.g.Client
		s.holders[sg.g.Name] = c
		*req = connReq{c: c}
		c.freeReqs = append(c.freeReqs, req)
	}
	c.pend = append(c.pend, frames...)
	c.cond.Signal()
	c.mu.Unlock()
	s.holdMu.Unlock()
	return rel
}

// ingest is one connection's reusable burst-decoding scratch, owned by its
// read loop: the decoded ops of the current burst in frame order, the
// per-shard submission buckets, and the batched response frames.
type ingest struct {
	frames int
	w      wire.Writer // response-body encode scratch
	resp   []byte      // batched response frames for this burst

	acqTag []uint64 // decoded acquires, frame order
	acqCli []uint64
	acqReq []*connReq // registered request state; nil = rejected busy

	relTag  []uint64 // decoded releases, frame order
	relName []int
	relCli  []uint64 // owning client per release; 0 = not held (reject)

	acq    [][]AcquireOp // per-shard submission buckets
	rel    [][]ReleaseOp
	relIdx [][]int // burst index per bucketed release (for replies)
	ids    []uint64
	errs   []error
}

func newIngest(shards int) *ingest {
	return &ingest{
		acq:    make([][]AcquireOp, shards),
		rel:    make([][]ReleaseOp, shards),
		relIdx: make([][]int, shards),
	}
}

// reset clears the per-burst state, keeping every buffer's capacity.
func (in *ingest) reset() {
	in.frames = 0
	in.resp = in.resp[:0]
	in.acqTag = in.acqTag[:0]
	in.acqCli = in.acqCli[:0]
	in.acqReq = in.acqReq[:0]
	in.relTag = in.relTag[:0]
	in.relName = in.relName[:0]
	in.relCli = in.relCli[:0]
	for i := range in.acq {
		in.acq[i] = in.acq[i][:0]
		in.rel[i] = in.rel[i][:0]
		in.relIdx[i] = in.relIdx[i][:0]
	}
}

// pushResp appends the frame just encoded in in.w to the burst's response
// buffer.
func (in *ingest) pushResp() {
	in.resp = wire.AppendFrame(in.resp, in.w.Bytes())
}

// handle runs one connection: handshake, then the batched ingestion loop —
// block for one frame, drain every complete pipelined frame behind it,
// submit the burst's shard buckets, repeat. Teardown absorbs whatever the
// connection still held.
func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	c := &svcConn{
		srv:         s,
		conn:        conn,
		maxQueue:    s.cfg.MaxConnQueue,
		held:        make(map[int]uint64),
		outstanding: make(map[*connReq]struct{}),
	}
	c.cond = sync.NewCond(&c.mu)

	defer s.teardown(c)
	s.wg.Add(1)
	go s.writeLoop(c)

	br := bufio.NewReaderSize(conn, connReadBufSize)
	var rbuf []byte
	in := newIngest(s.svc.Shards())

	// Handshake: hello in, welcome out. Bounded by its own (tight)
	// deadline so stalled half-open connections are shed quickly.
	conn.SetReadDeadline(time.Now().Add(s.cfg.HandshakeTimeout))
	body, err := wire.ReadFrame(br, rbuf, svcMaxFrame)
	if err != nil {
		s.cfg.Logf("%v: bad handshake: %v", conn.RemoteAddr(), err)
		return
	}
	rbuf = body
	if err := decodeSvcHello(body); err != nil {
		s.cfg.Logf("%v: rejected: %v", conn.RemoteAddr(), err)
		return
	}
	role, leader := RoleStandalone, ""
	if rr, ok := s.cfg.Gate.(wireRoleReporter); ok {
		role, leader = rr.WireRole()
	}
	in.w.Reset()
	appendWelcome(&in.w, s.svc.Shards(), s.svc.ShardCap(), role, leader)
	in.pushResp()
	if !c.enqueue(in.resp) {
		return
	}
	in.reset()
	conn.SetReadDeadline(time.Time{})

	for {
		body, err := wire.ReadFrame(br, rbuf, svcMaxFrame)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.cfg.Logf("%v: read: %v (closing connection)", conn.RemoteAddr(), err)
			}
			return
		}
		rbuf = body
		fatal := s.ingestFrame(c, in, body)
		for !fatal && in.frames < maxIngestBurst {
			more, ok, err := wire.ReadFrameBuffered(br, rbuf, svcMaxFrame)
			if err != nil {
				s.cfg.Logf("%v: read: %v (closing connection)", conn.RemoteAddr(), err)
				fatal = true
				break
			}
			if !ok {
				break
			}
			rbuf = more
			fatal = s.ingestFrame(c, in, more)
		}
		// Submit what the burst collected even when it ends on a malformed
		// frame: the preceding frames were valid, and the per-connection
		// error discipline only condemns the connection, not its traffic.
		s.submitBurst(c, in)
		if fatal {
			return
		}
	}
}

// ingestFrame decodes one frame into the burst scratch; true means the
// connection must be closed (malformed frame or unknown op). Stats requests
// force the pending burst out first, so the reply observes every preceding
// operation, matching one-at-a-time semantics.
func (s *Server) ingestFrame(c *svcConn, in *ingest, body []byte) (fatal bool) {
	in.frames++
	op := byte(0)
	if len(body) > 0 {
		op = body[0]
	}
	switch op {
	case opAcquire:
		tag, client, err := decodeAcquire(body)
		if err != nil {
			s.cfg.Logf("%v: malformed acquire: %v (closing connection)", c.conn.RemoteAddr(), err)
			return true
		}
		if !s.admitWrite(in, tag) {
			return false
		}
		in.acqTag = append(in.acqTag, tag)
		in.acqCli = append(in.acqCli, client)
	case opRelease:
		tag, name, err := decodeRelease(body)
		if err != nil {
			s.cfg.Logf("%v: malformed release: %v (closing connection)", c.conn.RemoteAddr(), err)
			return true
		}
		if !s.admitWrite(in, tag) {
			return false
		}
		in.relTag = append(in.relTag, tag)
		in.relName = append(in.relName, name)
	case opStats:
		tag, err := decodeStatsReq(body)
		if err != nil {
			s.cfg.Logf("%v: malformed stats: %v (closing connection)", c.conn.RemoteAddr(), err)
			return true
		}
		s.submitBurst(c, in)
		if !s.admitRead(in, tag) {
			return false
		}
		st := s.svc.Stats()
		s.annotateReplStats(&st)
		in.w.Reset()
		appendStatsRep(&in.w, tag, st)
		in.pushResp()
	case opEpoch:
		tag, shard, err := decodeEpochReq(body)
		if err != nil {
			s.cfg.Logf("%v: malformed epoch: %v (closing connection)", c.conn.RemoteAddr(), err)
			return true
		}
		// Flush the burst first: an epoch close must batch every acquire
		// that preceded it on this connection, exactly the FIFO semantics
		// the replay harness depends on.
		s.submitBurst(c, in)
		if !s.admitWrite(in, tag) {
			return false
		}
		in.w.Reset()
		switch {
		case !s.cfg.ManualEpochs:
			appendReject(&in.w, tag, RejectUnsupported, "server closes epochs autonomously")
		case shard < 0 || shard >= s.svc.Shards():
			appendReject(&in.w, tag, RejectInternal,
				fmt.Sprintf("shard %d outside 0..%d", shard, s.svc.Shards()-1))
		default:
			epoch, granted, err := s.closeManualEpoch(shard)
			if err != nil {
				appendReject(&in.w, tag, RejectInternal, err.Error())
			} else {
				appendEpochRep(&in.w, tag, epoch, granted)
			}
		}
		in.pushResp()
	case opJournal:
		tag, shard, start, maxEntries, err := decodeJournalReq(body)
		if err != nil {
			s.cfg.Logf("%v: malformed journal: %v (closing connection)", c.conn.RemoteAddr(), err)
			return true
		}
		s.submitBurst(c, in)
		if !s.admitRead(in, tag) {
			return false
		}
		in.w.Reset()
		switch {
		case !s.svc.cfg.Journal:
			appendReject(&in.w, tag, RejectUnsupported, "server keeps no journal")
		case shard < 0 || shard >= s.svc.Shards():
			appendReject(&in.w, tag, RejectInternal,
				fmt.Sprintf("shard %d outside 0..%d", shard, s.svc.Shards()-1))
		default:
			win := s.svc.ShardJournal(shard)
			if maxEntries <= 0 || maxEntries > journalPageMax {
				maxEntries = journalPageMax
			}
			if start > len(win) {
				start = len(win)
			}
			end := min(start+maxEntries, len(win))
			appendJournalRep(&in.w, tag, JournalPage{
				Total:   len(win),
				Start:   start,
				Entries: win[start:end],
			})
		}
		in.pushResp()
	case opReclaim:
		tag, client, name, err := decodeReclaim(body)
		if err != nil {
			s.cfg.Logf("%v: malformed reclaim: %v (closing connection)", c.conn.RemoteAddr(), err)
			return true
		}
		// The restart handshake: re-bind a ledger-held name (a grant that
		// survived a server restart) to this connection, so it can be
		// released here. Flush the burst first so a preceding release of
		// the same name is observed, matching one-at-a-time semantics.
		s.submitBurst(c, in)
		if !s.admitWrite(in, tag) {
			return false
		}
		in.w.Reset()
		// holdMu is held across the service call: a successful reclaim
		// must install this connection as the binding authority before a
		// racing teardown of the session's previous connection can
		// release the name out from under it.
		s.holdMu.Lock()
		if err := s.svc.Reclaim(client, name); err != nil {
			s.holdMu.Unlock()
			appendReject(&in.w, tag, RejectNotHeld, err.Error())
		} else {
			prev := s.holders[name]
			s.holders[name] = c
			c.mu.Lock()
			if c.held != nil {
				c.held[name] = client
			}
			c.mu.Unlock()
			if prev != nil && prev != c {
				// Steal: the old connection no longer owns the name, so
				// its teardown must not release it.
				prev.mu.Lock()
				if prev.held != nil {
					delete(prev.held, name)
				}
				prev.mu.Unlock()
			}
			s.holdMu.Unlock()
			appendReclaimed(&in.w, tag)
		}
		in.pushResp()
	default:
		s.cfg.Logf("%v: unknown op %d (closing connection)", c.conn.RemoteAddr(), op)
		return true
	}
	return false
}

// admitWrite consults the commit gate before a write op joins the burst:
// on a node that does not serve writes (a replication follower) the op is
// rejected with RejectNotLeader whose message is the leader's client
// address — the redirect hint. True means proceed.
func (s *Server) admitWrite(in *ingest, tag uint64) bool {
	g := s.cfg.Gate
	if g == nil {
		return true
	}
	ok, leader := g.AdmitWrites()
	if ok {
		return true
	}
	in.w.Reset()
	appendReject(&in.w, tag, RejectNotLeader, leader)
	in.pushResp()
	return false
}

// admitRead applies the gate's read lease (if it has one) to a stats or
// journal op: a lease-stale leader rejects the read with RejectNotLeader
// rather than answer from possibly-deposed state.
func (s *Server) admitRead(in *ingest, tag uint64) bool {
	rl, ok := s.cfg.Gate.(wireReadLeaser)
	if !ok || rl.ReadLeaseValid() {
		return true
	}
	in.w.Reset()
	appendReject(&in.w, tag, RejectNotLeader, "")
	in.pushResp()
	return false
}

// annotateReplStats merges the gate's replication status (if it reports
// one) into a stats reply.
func (s *Server) annotateReplStats(st *Stats) {
	if rs, ok := s.cfg.Gate.(wireReplStats); ok {
		st.ReplTerm, st.ReplRole, st.ElectionReason, st.CompactFloor = rs.WireReplStats()
	}
}

// submitBurst pushes one decoded burst into the service: releases first
// (validated against the connection's held set under one lock, bucketed by
// shard, one ReleaseBatch per shard), then acquires (registered against the
// outstanding cap under one lock, one AcquireBatch per shard), then the
// burst's response frames in one outbox append, with one epoch-loop kick
// per touched shard. Freed capacity is visible to the service before the
// new acquires queue, exactly as in one-at-a-time submission.
func (s *Server) submitBurst(c *svcConn, in *ingest) {
	if in.frames == 0 && len(in.resp) == 0 {
		return
	}
	if len(in.relTag) > 0 {
		s.holdMu.Lock()
		c.mu.Lock()
		for _, name := range in.relName {
			client, ok := c.held[name]
			if ok {
				delete(c.held, name)
				if s.holders[name] == c {
					delete(s.holders, name)
				}
			}
			in.relCli = append(in.relCli, client)
		}
		c.mu.Unlock()
		s.holdMu.Unlock()
		for i, name := range in.relName {
			client := in.relCli[i]
			if client == 0 {
				in.w.Reset()
				appendReject(&in.w, in.relTag[i], RejectNotHeld,
					fmt.Sprintf("name %d is not held by this connection", name))
				in.pushResp()
				continue
			}
			shard, err := s.svc.ShardOfName(name)
			if err != nil {
				// Unreachable: held names were validated when granted.
				in.w.Reset()
				appendReject(&in.w, in.relTag[i], RejectInternal, err.Error())
				in.pushResp()
				continue
			}
			in.rel[shard] = append(in.rel[shard], ReleaseOp{Client: client, Name: name})
			in.relIdx[shard] = append(in.relIdx[shard], i)
		}
		for shard := range in.rel {
			if len(in.rel[shard]) == 0 {
				continue
			}
			errs, err := s.svc.ReleaseBatch(shard, in.rel[shard], in.errs[:0])
			in.errs = errs[:0]
			if err != nil {
				// Unreachable (the shard index is ours), but fail closed:
				// the service processed nothing, so the connection still
				// holds every name in the bucket — restore them and reject
				// each request, mirroring the acquire path below.
				s.cfg.Logf("%v: release batch on shard %d: %v", c.conn.RemoteAddr(), shard, err)
				s.holdMu.Lock()
				c.mu.Lock()
				for j, op := range in.rel[shard] {
					if c.held != nil {
						c.held[op.Name] = op.Client
						s.holders[op.Name] = c
					}
					in.w.Reset()
					appendReject(&in.w, in.relTag[in.relIdx[shard][j]], RejectInternal, err.Error())
					in.pushResp()
				}
				c.mu.Unlock()
				s.holdMu.Unlock()
				continue
			}
			for j, e := range errs {
				in.w.Reset()
				if e != nil {
					appendReject(&in.w, in.relTag[in.relIdx[shard][j]], RejectInternal, e.Error())
				} else {
					appendReleased(&in.w, in.relTag[in.relIdx[shard][j]])
				}
				in.pushResp()
			}
			s.kick(shard) // freed capacity may unblock queued acquires
		}
	}
	if len(in.acqTag) > 0 {
		c.mu.Lock()
		for i := range in.acqTag {
			if len(c.outstanding) >= s.cfg.MaxOutstanding {
				in.acqReq = append(in.acqReq, nil)
				continue
			}
			var req *connReq
			if n := len(c.freeReqs); n > 0 {
				req = c.freeReqs[n-1]
				c.freeReqs = c.freeReqs[:n-1]
			} else {
				req = &connReq{c: c}
			}
			req.tag = in.acqTag[i]
			req.client = in.acqCli[i]
			req.id = 0
			c.outstanding[req] = struct{}{}
			in.acqReq = append(in.acqReq, req)
		}
		c.mu.Unlock()
		for i, req := range in.acqReq {
			if req == nil {
				in.w.Reset()
				appendReject(&in.w, in.acqTag[i], RejectBusy, "too many outstanding acquires")
				in.pushResp()
				continue
			}
			shard := s.svc.Shard(req.client)
			in.acq[shard] = append(in.acq[shard], AcquireOp{Client: req.client, Notify: req})
		}
		for shard := range in.acq {
			if len(in.acq[shard]) == 0 {
				continue
			}
			ids, err := s.svc.AcquireBatch(shard, in.acq[shard], in.ids[:0])
			in.ids = ids[:0]
			if err != nil {
				// Unreachable (clients validated at decode, shards routed
				// here), but fail closed: unregister and reject the bucket.
				s.cfg.Logf("%v: acquire batch on shard %d: %v", c.conn.RemoteAddr(), shard, err)
				c.mu.Lock()
				for _, op := range in.acq[shard] {
					req := op.Notify.(*connReq)
					if c.outstanding != nil {
						delete(c.outstanding, req)
					}
					in.w.Reset()
					appendReject(&in.w, req.tag, RejectInternal, err.Error())
					in.pushResp()
				}
				c.mu.Unlock()
				continue
			}
			s.kick(shard)
		}
	}
	c.enqueue(in.resp)
	in.reset()
}

// teardown absorbs a connection's death: queued acquires are cancelled
// (grants already racing through an epoch are refused by the gone flag, or
// released at delivery commit), and every held name is released. Uniqueness
// is never at risk — a name is either still free, released here, or
// absorbed inside or right after its epoch, before ever reaching the wire.
func (s *Server) teardown(c *svcConn) {
	c.mu.Lock()
	c.gone.Store(true)
	c.dead = true
	c.outClosed = true
	c.cond.Signal()
	cancels := make([]*connReq, 0, len(c.outstanding))
	for req := range c.outstanding {
		cancels = append(cancels, req)
	}
	c.outstanding = nil
	releases := make(map[int]uint64, len(c.held))
	for name, client := range c.held {
		releases[name] = client
	}
	c.held = nil
	c.mu.Unlock()

	for _, req := range cancels {
		if req.id != 0 {
			s.svc.Cancel(req.client, req.id)
		}
	}
	kicked := make(map[int]bool)
	for name, client := range releases {
		// Only release names this connection still owns: a session that
		// reconnected and reclaimed before this teardown ran has stolen
		// the binding, and releasing here would free a name the session
		// legitimately holds. holdMu spans the authority check and the
		// release so a concurrent reclaim cannot interleave between them.
		s.holdMu.Lock()
		if s.holders[name] != c {
			s.holdMu.Unlock()
			continue
		}
		delete(s.holders, name)
		err := s.svc.Release(client, name)
		s.holdMu.Unlock()
		if err != nil {
			s.cfg.Logf("%v: teardown release of %d: %v", c.conn.RemoteAddr(), name, err)
			continue
		}
		if shard, err := s.svc.ShardOfName(name); err == nil && !kicked[shard] {
			kicked[shard] = true
			s.kick(shard)
		}
	}
	c.conn.Close()
	s.mu.Lock()
	if s.conns != nil {
		delete(s.conns, c.conn)
	}
	s.mu.Unlock()
}

// writeLoop drains the connection's outbox: it swaps the pending buffer
// with the flight buffer under the lock — no copying, no allocation — and
// pushes the whole contiguous batch of frames to the kernel in a single
// Write. A full epoch of grants therefore costs one syscall on this
// connection, while pushers keep filling the other buffer.
func (s *Server) writeLoop(c *svcConn) {
	defer s.wg.Done()
	for {
		c.mu.Lock()
		for len(c.pend) == 0 && !c.outClosed && !c.overflow {
			c.cond.Wait()
		}
		if c.overflow {
			c.mu.Unlock()
			c.conn.Close() // already closed at the overflow site; idempotent
			return
		}
		closed := c.outClosed
		batch := c.pend
		c.pend = c.fly[:0]
		c.fly = batch
		c.mu.Unlock()
		if len(batch) > 0 {
			c.conn.SetWriteDeadline(time.Now().Add(s.cfg.IOTimeout))
			if _, err := c.conn.Write(batch); err != nil {
				c.conn.Close() // unblocks the read loop, which runs teardown
				return
			}
		}
		if closed && len(batch) == 0 {
			return
		}
	}
}
