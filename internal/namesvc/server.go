package namesvc

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"ballsintoleaves/internal/wire"
)

// ServerConfig parameterizes a Server.
type ServerConfig struct {
	// Service is the allocation core to serve. Required.
	Service *Service
	// EpochInterval is the batching window: after a shard's first queued
	// request, its epoch loop waits this long before closing the epoch, so
	// more arrivals join the batch. The window is adaptive: it ends early
	// as soon as the batch can no longer grow (Service.BatchFull — the
	// queue reached MaxBatch, or it covers every free name), so a burst
	// never waits out a timer it cannot benefit from. Zero is pure group
	// commit — close immediately, and let the requests that arrive during
	// one epoch's renaming run form the next batch.
	EpochInterval time.Duration
	// MaxOutstanding caps one connection's in-flight acquires; beyond it
	// acquires are rejected with RejectBusy. Zero means 4096.
	MaxOutstanding int
	// MaxConnQueue caps one connection's pending outbound bytes (encoded
	// response frames not yet accepted by the kernel). A reader too slow or
	// stalled to drain its responses would otherwise grow the queue without
	// bound; at the cap the server disconnects that client, and the
	// ordinary crash-absorption teardown reclaims everything it held. Zero
	// means 1 MiB. (Each connection double-buffers, so peak memory is up to
	// twice this while a flush is in flight.)
	MaxConnQueue int
	// IOTimeout bounds the handshake read and every write. Zero means 30s.
	IOTimeout time.Duration
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
}

func (cfg *ServerConfig) normalize() error {
	if cfg.Service == nil {
		return fmt.Errorf("namesvc: ServerConfig.Service is required")
	}
	if cfg.MaxOutstanding <= 0 {
		cfg.MaxOutstanding = 4096
	}
	if cfg.MaxConnQueue <= 0 {
		cfg.MaxConnQueue = 1 << 20
	}
	if cfg.IOTimeout <= 0 {
		cfg.IOTimeout = 30 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	return nil
}

// Server puts a Service on a listener: it speaks the blnamed wire protocol,
// runs one group-commit epoch loop per shard, and renders connection
// failures onto the service's crash-absorption semantics — a connection
// that dies with queued acquires cancels them (or lets their grants be
// absorbed), and every name the connection held is released, so names never
// leak to dead clients.
type Server struct {
	cfg   ServerConfig
	svc   *Service
	kicks []chan struct{}
	stop  chan struct{}
	once  sync.Once
	wg    sync.WaitGroup

	mu    sync.Mutex
	conns map[net.Conn]struct{}
}

// NewServer builds a Server and starts its per-shard epoch loops.
func NewServer(cfg ServerConfig) (*Server, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	s := &Server{
		cfg:   cfg,
		svc:   cfg.Service,
		kicks: make([]chan struct{}, cfg.Service.Shards()),
		stop:  make(chan struct{}),
		conns: make(map[net.Conn]struct{}),
	}
	for i := range s.kicks {
		s.kicks[i] = make(chan struct{}, 1)
		s.wg.Add(1)
		go s.shardLoop(i)
	}
	return s, nil
}

// Serve accepts connections on ln until the listener is closed, handling
// each on its own goroutine. It does not close ln; the owner closes the
// listener to stop accepting and then calls Close to tear the server down.
func (s *Server) Serve(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-s.stop:
				return nil
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("namesvc: accept: %w", err)
		}
		s.mu.Lock()
		if s.conns == nil {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handle(conn)
	}
}

// Close stops the epoch loops, closes every live connection, and waits for
// all handlers to finish. The listener passed to Serve must be closed by
// its owner (before or after Close; Serve tolerates both orders).
func (s *Server) Close() error {
	s.once.Do(func() {
		close(s.stop)
		s.mu.Lock()
		conns := s.conns
		s.conns = nil
		s.mu.Unlock()
		for conn := range conns {
			conn.Close()
		}
	})
	s.wg.Wait()
	return nil
}

// kick nudges a shard's epoch loop; the channel is a binary semaphore, so
// concurrent kicks coalesce.
func (s *Server) kick(shard int) {
	select {
	case s.kicks[shard] <- struct{}{}:
	default:
	}
}

// shardLoop closes epochs on one shard whenever work arrives: group commit
// with an optional adaptive batching window. During the window the loop
// keeps listening for kicks and closes the epoch as soon as the batch can
// no longer grow (BatchFull) instead of waiting the timer out — under
// bursts the window costs nothing, while trickles still coalesce. It
// drains — repeated CloseEpoch calls — because requests that queued during
// an epoch's renaming run form the next batch without another kick.
func (s *Server) shardLoop(shard int) {
	defer s.wg.Done()
	var timer *time.Timer
	if s.cfg.EpochInterval > 0 {
		timer = time.NewTimer(s.cfg.EpochInterval)
		if !timer.Stop() {
			<-timer.C
		}
		defer timer.Stop()
	}
	for {
		select {
		case <-s.stop:
			return
		case <-s.kicks[shard]:
		}
		if timer != nil && !s.svc.BatchFull(shard) {
			timer.Reset(s.cfg.EpochInterval)
			for waiting := true; waiting; {
				select {
				case <-s.stop:
					return
				case <-timer.C:
					waiting = false
				case <-s.kicks[shard]:
					if s.svc.BatchFull(shard) {
						if !timer.Stop() {
							<-timer.C
						}
						waiting = false
					}
				}
			}
		}
		for {
			grants, err := s.svc.CloseEpoch(shard)
			if err != nil {
				// The batch stays queued; log and wait for the next kick
				// rather than spinning on a persistent failure.
				s.cfg.Logf("shard %d: epoch failed: %v", shard, err)
				break
			}
			if len(grants) > 0 {
				continue
			}
			// No accepted grants — but an epoch may still have run with
			// every grant absorbed (the whole batch's connections died),
			// leaving later arrivals queued with nobody left to kick.
			// Keep draining while another epoch could assign; stop when
			// the queue is empty or the namespace is exhausted (a release
			// will kick us).
			if !s.svc.EpochRunnable(shard) {
				break
			}
		}
	}
}

// svcConn is one connection's server-side state. Lock order: a shard lock
// may be taken before c.mu (grant notifies run under the shard lock), so
// c.mu must never be held across a Service call.
//
// The outbox is a pooled double buffer: response frames are encoded
// straight into pend (header + body, contiguous), and the writer goroutine
// swaps pend with fly and flushes the whole batch in a single Write — one
// syscall per drained batch, the writev pattern with the iovecs already
// adjacent. Both buffers are reused for the connection's lifetime, so the
// steady-state write path allocates nothing; a whole epoch's grants for
// this connection land back-to-back in one buffer and one flush.
type svcConn struct {
	conn     net.Conn
	maxQueue int // outbound byte cap (ServerConfig.MaxConnQueue)

	mu          sync.Mutex
	cond        *sync.Cond
	dead        bool
	overflow    bool        // queue cap exceeded; connection being dropped
	pend        []byte      // frames accumulating for the writer
	fly         []byte      // frames being flushed; swapped with pend
	enc         wire.Writer // frame-body scratch, guarded by mu
	outClosed   bool
	held        map[int]uint64 // global name -> holding client
	outstanding map[*connReq]struct{}
}

// connReq tracks one in-flight acquire from registration to grant.
type connReq struct {
	client uint64
	id     uint64 // service request ID; 0 until Acquire returns
}

// queueLocked encodes one response frame into the pending buffer; c.mu must
// be held. It reports false when the connection is already being torn down,
// or when appending would exceed the outbound cap — in which case the
// connection is closed here: a reader that cannot keep up with its own
// responses is indistinguishable from a stalled one, and disconnecting it
// hands cleanup to the ordinary crash-absorption teardown.
func (c *svcConn) queueLocked(fill func(*wire.Writer)) bool {
	if c.dead || c.outClosed || c.overflow {
		return false
	}
	c.enc.Reset()
	fill(&c.enc)
	if len(c.pend)+4+c.enc.Len() > c.maxQueue {
		c.overflow = true
		c.cond.Signal()
		c.conn.Close() // fails the read loop, which runs teardown
		return false
	}
	c.pend = wire.AppendFrame(c.pend, c.enc.Bytes())
	c.cond.Signal()
	return true
}

// push is queueLocked behind the connection lock, for callers not already
// holding it.
func (c *svcConn) push(fill func(*wire.Writer)) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.queueLocked(fill)
}

// handle runs one connection: handshake, dispatch loop, teardown.
func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	c := &svcConn{
		conn:        conn,
		maxQueue:    s.cfg.MaxConnQueue,
		held:        make(map[int]uint64),
		outstanding: make(map[*connReq]struct{}),
	}
	c.cond = sync.NewCond(&c.mu)

	defer s.teardown(c)
	s.wg.Add(1)
	go s.writeLoop(c)

	br := bufio.NewReader(conn)
	var rbuf []byte

	// Handshake: hello in, welcome out.
	conn.SetReadDeadline(time.Now().Add(s.cfg.IOTimeout))
	body, err := wire.ReadFrame(br, rbuf, svcMaxFrame)
	if err != nil {
		s.cfg.Logf("%v: bad handshake: %v", conn.RemoteAddr(), err)
		return
	}
	rbuf = body
	if err := decodeSvcHello(body); err != nil {
		s.cfg.Logf("%v: rejected: %v", conn.RemoteAddr(), err)
		return
	}
	c.push(func(w *wire.Writer) { appendWelcome(w, s.svc.Shards(), s.svc.ShardCap()) })
	conn.SetReadDeadline(time.Time{})

	for {
		body, err := wire.ReadFrame(br, rbuf, svcMaxFrame)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.cfg.Logf("%v: read: %v (closing connection)", conn.RemoteAddr(), err)
			}
			return
		}
		rbuf = body
		op := byte(0)
		if len(body) > 0 {
			op = body[0]
		}
		switch op {
		case opAcquire:
			tag, client, err := decodeAcquire(body)
			if err != nil {
				s.cfg.Logf("%v: malformed acquire: %v (closing connection)", conn.RemoteAddr(), err)
				return
			}
			s.doAcquire(c, tag, client)
		case opRelease:
			tag, name, err := decodeRelease(body)
			if err != nil {
				s.cfg.Logf("%v: malformed release: %v (closing connection)", conn.RemoteAddr(), err)
				return
			}
			s.doRelease(c, tag, name)
		case opStats:
			tag, err := decodeStatsReq(body)
			if err != nil {
				s.cfg.Logf("%v: malformed stats: %v (closing connection)", conn.RemoteAddr(), err)
				return
			}
			st := s.svc.Stats()
			c.push(func(w *wire.Writer) { appendStatsRep(w, tag, st) })
		default:
			s.cfg.Logf("%v: unknown op %d (closing connection)", conn.RemoteAddr(), op)
			return
		}
	}
}

// doAcquire registers and enqueues one acquire. The grant notify runs under
// the shard lock at epoch close; it refuses the grant once the connection
// is dead, which is how a mid-epoch disconnect is absorbed as a crash.
func (s *Server) doAcquire(c *svcConn, tag uint64, client uint64) {
	req := &connReq{client: client}
	c.mu.Lock()
	if len(c.outstanding) >= s.cfg.MaxOutstanding {
		c.mu.Unlock()
		c.push(func(w *wire.Writer) { appendReject(w, tag, RejectBusy, "too many outstanding acquires") })
		return
	}
	c.outstanding[req] = struct{}{}
	c.mu.Unlock()

	id, err := s.svc.Acquire(client, func(g Grant) bool {
		c.mu.Lock()
		defer c.mu.Unlock()
		// Refusing the grant (dead, or outbox overflow on the grant frame
		// itself) absorbs it as a crash: the name bounces back to the free
		// pool, never having been observable on this connection.
		if !c.queueLocked(func(w *wire.Writer) { appendGrant(w, tag, g) }) {
			return false
		}
		delete(c.outstanding, req)
		c.held[g.Name] = g.Client
		return true
	})
	if err != nil {
		c.mu.Lock()
		delete(c.outstanding, req)
		c.mu.Unlock()
		c.push(func(w *wire.Writer) { appendReject(w, tag, RejectInternal, err.Error()) })
		return
	}
	c.mu.Lock()
	req.id = id // the grant may already have fired; harmless either way
	c.mu.Unlock()
	s.kick(s.svc.Shard(client))
}

// doRelease validates ownership against the connection's held set and
// returns the name to its shard.
func (s *Server) doRelease(c *svcConn, tag uint64, name int) {
	c.mu.Lock()
	client, ok := c.held[name]
	if ok {
		delete(c.held, name)
	}
	c.mu.Unlock()
	if !ok {
		c.push(func(w *wire.Writer) {
			appendReject(w, tag, RejectNotHeld, fmt.Sprintf("name %d is not held by this connection", name))
		})
		return
	}
	if err := s.svc.Release(client, name); err != nil {
		c.push(func(w *wire.Writer) { appendReject(w, tag, RejectInternal, err.Error()) })
		return
	}
	c.push(func(w *wire.Writer) { appendReleased(w, tag) })
	if shard, err := s.svc.ShardOfName(name); err == nil {
		s.kick(shard) // freed capacity may unblock queued acquires
	}
}

// teardown absorbs a connection's death: queued acquires are cancelled
// (grants already racing through an epoch are refused by the dead notify),
// and every held name is released. Uniqueness is never at risk — a name is
// either still free, released here, or absorbed inside CloseEpoch.
func (s *Server) teardown(c *svcConn) {
	c.mu.Lock()
	c.dead = true
	c.outClosed = true
	c.cond.Signal()
	cancels := make([]*connReq, 0, len(c.outstanding))
	for req := range c.outstanding {
		cancels = append(cancels, req)
	}
	c.outstanding = nil
	releases := make(map[int]uint64, len(c.held))
	for name, client := range c.held {
		releases[name] = client
	}
	c.held = nil
	c.mu.Unlock()

	for _, req := range cancels {
		if req.id != 0 {
			s.svc.Cancel(req.client, req.id)
		}
	}
	kicked := make(map[int]bool)
	for name, client := range releases {
		if err := s.svc.Release(client, name); err != nil {
			s.cfg.Logf("%v: teardown release of %d: %v", c.conn.RemoteAddr(), name, err)
			continue
		}
		if shard, err := s.svc.ShardOfName(name); err == nil && !kicked[shard] {
			kicked[shard] = true
			s.kick(shard)
		}
	}
	c.conn.Close()
	s.mu.Lock()
	if s.conns != nil {
		delete(s.conns, c.conn)
	}
	s.mu.Unlock()
}

// writeLoop drains the connection's outbox: it swaps the pending buffer
// with the flight buffer under the lock — no copying, no allocation — and
// pushes the whole contiguous batch of frames to the kernel in a single
// Write. A full epoch of grants therefore costs one syscall on this
// connection, while pushers keep filling the other buffer.
func (s *Server) writeLoop(c *svcConn) {
	defer s.wg.Done()
	for {
		c.mu.Lock()
		for len(c.pend) == 0 && !c.outClosed && !c.overflow {
			c.cond.Wait()
		}
		if c.overflow {
			c.mu.Unlock()
			c.conn.Close() // already closed by queueLocked; idempotent
			return
		}
		closed := c.outClosed
		batch := c.pend
		c.pend = c.fly[:0]
		c.fly = batch
		c.mu.Unlock()
		if len(batch) > 0 {
			c.conn.SetWriteDeadline(time.Now().Add(s.cfg.IOTimeout))
			if _, err := c.conn.Write(batch); err != nil {
				c.conn.Close() // unblocks the read loop, which runs teardown
				return
			}
		}
		if closed && len(batch) == 0 {
			return
		}
	}
}
