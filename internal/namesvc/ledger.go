package namesvc

import (
	"fmt"
	"math/bits"
)

// EntryOp tags one ledger journal entry.
type EntryOp uint8

const (
	// OpAssign records a name leaving the free pool for a client.
	OpAssign EntryOp = iota + 1
	// OpRelease records a name returning to the free pool.
	OpRelease
)

// String implements fmt.Stringer.
func (op EntryOp) String() string {
	switch op {
	case OpAssign:
		return "assign"
	case OpRelease:
		return "release"
	default:
		return fmt.Sprintf("EntryOp(%d)", uint8(op))
	}
}

// Entry is one event in a shard's assignment ledger. Name is shard-local
// (1..ShardCap); the service-level view adds the shard offset. ReqID is the
// acquire request that produced an assignment, and 0 for releases.
type Entry struct {
	Epoch  uint64
	Op     EntryOp
	Client uint64
	ReqID  uint64
	Name   int
}

// fnvOffset/fnvPrime are the FNV-1a 64-bit parameters used for the rolling
// ledger digest.
const (
	fnvOffset = 0xcbf29ce484222325
	fnvPrime  = 0x100000001b3
)

// ledger is one shard's namespace bookkeeping: which local names are held by
// whom, the free pool the epoch batches draw from, and a rolling digest
// (plus an optional, optionally capped journal) of every assign/release
// event, so two replays of the same trace can be compared in O(1) space.
//
// The free pool is a two-level bitmap: bit (name-1)%64 of words[(name-1)/64]
// is set iff the local name is free, and bit w%64 of summary[w/64] is set
// iff words[w] is non-zero. Assign and release are O(1) bit operations, and
// find-k-smallest walks set bits in ascending order via TrailingZeros64 —
// O(k) once positioned, plus O(cap/4096) to skip empty summary words. This
// replaces the sorted-slice free list whose every assign/release paid an
// O(cap) memmove; the two representations grant identical names in
// identical order (pinned by TestLedgerDifferentialChurn against the
// retained reference implementation).
//
// The ledger is not safe for concurrent use; its owning shard serializes
// access.
type ledger struct {
	cap     int
	holder  []uint64 // holder[name-1]: holding client, 0 = free
	words   []uint64 // leaf bitmap: free names
	summary []uint64 // summary[i] bit j set iff words[64i+j] != 0
	nfree   int
	peekBuf []int // scratch for peekFree; lazily grown, reused

	epoch  uint64 // completed epochs
	digest uint64 // rolling FNV-1a over all journal events

	journal bool
	// journalCap, when positive, bounds the retained journal to the most
	// recent journalCap entries: older entries are dropped (the digest
	// still covers the full history). Zero retains everything.
	journalCap int
	entries    []Entry
	jstart     int // live journal window is entries[jstart:]
	assigns    uint64
	releases   uint64

	// staging, when set, copies every recorded event into stage — the
	// write-ahead-log staging buffer the owning shard drains into one WAL
	// record per mutation batch (durability.go). It is off during recovery
	// replay, so replayed events are not re-logged.
	staging bool
	stage   []Entry
}

// newLedger builds a ledger over local names 1..capacity. journalCap bounds
// the retained journal (0 = unbounded); it only matters with journal set.
func newLedger(capacity int, journal bool, journalCap int) *ledger {
	nw := (capacity + 63) / 64
	l := &ledger{
		cap:        capacity,
		holder:     make([]uint64, capacity),
		words:      make([]uint64, nw),
		summary:    make([]uint64, (nw+63)/64),
		nfree:      capacity,
		digest:     fnvOffset,
		journal:    journal,
		journalCap: journalCap,
	}
	for w := range l.words {
		l.words[w] = ^uint64(0)
		l.summary[w/64] |= 1 << (uint(w) % 64)
	}
	if tail := capacity % 64; tail != 0 {
		l.words[nw-1] = (1 << tail) - 1
	}
	return l
}

// freeCount returns the number of unassigned local names.
func (l *ledger) freeCount() int { return l.nfree }

// peekFree returns the k smallest free names in ascending order without
// removing them. The returned slice is the ledger's reusable scratch, valid
// until the next peekFree call; its contents are plain values, so it stays
// stable across assign/release (unlike the sorted-slice representation it
// replaced, whose aliasing forced callers to copy).
func (l *ledger) peekFree(k int) []int {
	if cap(l.peekBuf) < k {
		l.peekBuf = make([]int, 0, max(k, 64))
	}
	out := l.peekBuf[:0]
	for si, sw := range l.summary {
		for sw != 0 {
			w := si*64 + bits.TrailingZeros64(sw)
			sw &= sw - 1
			word := l.words[w]
			for word != 0 {
				out = append(out, w*64+bits.TrailingZeros64(word)+1)
				if len(out) == k {
					l.peekBuf = out
					return out
				}
				word &= word - 1
			}
		}
	}
	l.peekBuf = out
	return out // fewer than k free names
}

// assign moves a free local name to the client, recording the event. The
// name must currently be free; assigning a held name panics, because the
// epoch loop only hands out names drawn from the free list and anything
// else is ledger corruption.
func (l *ledger) assign(epoch, reqID, client uint64, name int) {
	if name < 1 || name > l.cap {
		panic(fmt.Sprintf("namesvc: assigning out-of-range name %d", name))
	}
	b := uint(name - 1)
	w := b / 64
	bit := uint64(1) << (b % 64)
	if l.words[w]&bit == 0 {
		panic(fmt.Sprintf("namesvc: assigning non-free name %d", name))
	}
	l.words[w] &^= bit
	if l.words[w] == 0 {
		l.summary[w/64] &^= 1 << (w % 64)
	}
	l.nfree--
	l.holder[name-1] = client
	l.assigns++
	l.record(Entry{Epoch: epoch, Op: OpAssign, Client: client, ReqID: reqID, Name: name})
}

// release returns a held local name to the free pool. It errors if the name
// is not currently held by the given client, so a buggy or hostile caller
// cannot free someone else's name.
func (l *ledger) release(epoch, client uint64, name int) error {
	if name < 1 || name > l.cap {
		return fmt.Errorf("namesvc: name %d outside 1..%d", name, l.cap)
	}
	switch h := l.holder[name-1]; {
	case h == 0:
		return fmt.Errorf("namesvc: name %d is not assigned", name)
	case h != client:
		return fmt.Errorf("namesvc: name %d is not held by client %d", name, client)
	}
	l.holder[name-1] = 0
	b := uint(name - 1)
	w := b / 64
	l.words[w] |= 1 << (b % 64)
	l.summary[w/64] |= 1 << (w % 64)
	l.nfree++
	l.releases++
	l.record(Entry{Epoch: epoch, Op: OpRelease, Client: client, Name: name})
	return nil
}

// record folds an event into the rolling digest and, when journaling, the
// entry log. With a journal cap, the oldest entry beyond the cap is dropped
// by advancing the window start; the backing array is compacted once the
// dead prefix reaches the cap, so memory is bounded by 2×cap entries and
// the amortized cost stays O(1). The digest always covers the full history:
// a capped journal trades replayability of the dropped prefix for bounded
// memory, while divergence detection (digest comparison) remains exact.
func (l *ledger) record(e Entry) {
	d := l.digest
	for _, v := range [...]uint64{e.Epoch, uint64(e.Op), e.Client, e.ReqID, uint64(e.Name)} {
		for s := 0; s < 64; s += 8 {
			d ^= (v >> s) & 0xff
			d *= fnvPrime
		}
	}
	l.digest = d
	if l.staging {
		l.stage = append(l.stage, e)
	}
	if !l.journal {
		return
	}
	l.entries = append(l.entries, e)
	if l.journalCap > 0 && len(l.entries)-l.jstart > l.journalCap {
		l.jstart++
		if l.jstart >= l.journalCap {
			n := copy(l.entries, l.entries[l.jstart:])
			l.entries = l.entries[:n]
			l.jstart = 0
		}
	}
}

// journalWindow returns the retained journal entries, oldest first.
func (l *ledger) journalWindow() []Entry { return l.entries[l.jstart:] }

// takeStage returns the WAL-staged events since the last take and resets
// the buffer (retaining capacity). The returned slice aliases the buffer:
// it is valid until the next recorded event, which under the shard lock
// means until the caller's own next mutation.
func (l *ledger) takeStage() []Entry {
	e := l.stage
	l.stage = l.stage[:0]
	return e
}

// holderOf returns the client holding a local name, 0 if free.
func (l *ledger) holderOf(name int) uint64 {
	if name < 1 || name > l.cap {
		return 0
	}
	return l.holder[name-1]
}

// restore overwrites the ledger's assignment state from a snapshot: the
// holder array (0 = free), the full-history digest, the event counters,
// and the completed-epoch count. The free-pool bitmap is rebuilt from the
// holders. The journal window, when the ledger journals, is replaced by
// win. Recovery-only; the ledger must be freshly built and not staging.
func (l *ledger) restore(epoch uint64, holder []uint64, digest, assigns, releases uint64, win []Entry) error {
	if len(holder) != l.cap {
		return fmt.Errorf("namesvc: snapshot holds %d names, ledger capacity %d", len(holder), l.cap)
	}
	copy(l.holder, holder)
	for i := range l.words {
		l.words[i] = 0
	}
	for i := range l.summary {
		l.summary[i] = 0
	}
	l.nfree = 0
	for i, h := range l.holder {
		if h != 0 {
			continue
		}
		l.words[i/64] |= 1 << (uint(i) % 64)
		l.summary[i/64/64] |= 1 << (uint(i/64) % 64)
		l.nfree++
	}
	l.epoch = epoch
	l.digest = digest
	l.assigns = assigns
	l.releases = releases
	if l.journal {
		l.entries = append(l.entries[:0], win...)
		l.jstart = 0
	}
	return nil
}
