package namesvc

import (
	"fmt"
	"sort"
)

// EntryOp tags one ledger journal entry.
type EntryOp uint8

const (
	// OpAssign records a name leaving the free pool for a client.
	OpAssign EntryOp = iota + 1
	// OpRelease records a name returning to the free pool.
	OpRelease
)

// String implements fmt.Stringer.
func (op EntryOp) String() string {
	switch op {
	case OpAssign:
		return "assign"
	case OpRelease:
		return "release"
	default:
		return fmt.Sprintf("EntryOp(%d)", uint8(op))
	}
}

// Entry is one event in a shard's assignment ledger. Name is shard-local
// (1..ShardCap); the service-level view adds the shard offset. ReqID is the
// acquire request that produced an assignment, and 0 for releases.
type Entry struct {
	Epoch  uint64
	Op     EntryOp
	Client uint64
	ReqID  uint64
	Name   int
}

// fnvOffset/fnvPrime are the FNV-1a 64-bit parameters used for the rolling
// ledger digest.
const (
	fnvOffset = 0xcbf29ce484222325
	fnvPrime  = 0x100000001b3
)

// ledger is one shard's namespace bookkeeping: which local names are held by
// whom, the ascending free list the epoch batches draw from, and a rolling
// digest (plus an optional full journal) of every assign/release event, so
// two replays of the same trace can be compared in O(1) space.
//
// The ledger is not safe for concurrent use; its owning shard serializes
// access.
type ledger struct {
	cap    int
	holder []uint64 // holder[name-1]: holding client, 0 = free
	free   []int    // ascending free local names
	epoch  uint64   // completed epochs
	digest uint64   // rolling FNV-1a over all journal events

	journal  bool
	entries  []Entry
	assigns  uint64
	releases uint64
}

// newLedger builds a ledger over local names 1..capacity.
func newLedger(capacity int, journal bool) *ledger {
	l := &ledger{
		cap:     capacity,
		holder:  make([]uint64, capacity),
		free:    make([]int, capacity),
		digest:  fnvOffset,
		journal: journal,
	}
	for i := range l.free {
		l.free[i] = i + 1
	}
	return l
}

// freeCount returns the number of unassigned local names.
func (l *ledger) freeCount() int { return len(l.free) }

// peekFree returns the k smallest free names without removing them. The
// returned slice aliases the free list and is valid only until the next
// mutation.
func (l *ledger) peekFree(k int) []int { return l.free[:k] }

// assign moves a free local name to the client, recording the event. The
// name must currently be free; assigning a held name panics, because the
// epoch loop only hands out names drawn from the free list and anything
// else is ledger corruption.
func (l *ledger) assign(epoch, reqID, client uint64, name int) {
	i := sort.SearchInts(l.free, name)
	if i >= len(l.free) || l.free[i] != name {
		panic(fmt.Sprintf("namesvc: assigning non-free name %d", name))
	}
	l.free = append(l.free[:i], l.free[i+1:]...)
	l.holder[name-1] = client
	l.assigns++
	l.record(Entry{Epoch: epoch, Op: OpAssign, Client: client, ReqID: reqID, Name: name})
}

// release returns a held local name to the free pool. It errors if the name
// is not currently held by the given client, so a buggy or hostile caller
// cannot free someone else's name.
func (l *ledger) release(epoch, client uint64, name int) error {
	if name < 1 || name > l.cap {
		return fmt.Errorf("namesvc: name %d outside 1..%d", name, l.cap)
	}
	switch h := l.holder[name-1]; {
	case h == 0:
		return fmt.Errorf("namesvc: name %d is not assigned", name)
	case h != client:
		return fmt.Errorf("namesvc: name %d is not held by client %d", name, client)
	}
	l.holder[name-1] = 0
	i := sort.SearchInts(l.free, name)
	l.free = append(l.free, 0)
	copy(l.free[i+1:], l.free[i:])
	l.free[i] = name
	l.releases++
	l.record(Entry{Epoch: epoch, Op: OpRelease, Client: client, Name: name})
	return nil
}

// record folds an event into the rolling digest and, when journaling, the
// full entry log.
func (l *ledger) record(e Entry) {
	d := l.digest
	for _, v := range [...]uint64{e.Epoch, uint64(e.Op), e.Client, e.ReqID, uint64(e.Name)} {
		for s := 0; s < 64; s += 8 {
			d ^= (v >> s) & 0xff
			d *= fnvPrime
		}
	}
	l.digest = d
	if l.journal {
		l.entries = append(l.entries, e)
	}
}
