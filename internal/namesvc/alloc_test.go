package namesvc

import (
	"net"
	"testing"

	"ballsintoleaves/internal/wire"
)

// TestEpochZeroAllocs guards the service's allocation-free steady state, in
// the spirit of core's TestCohortPhaseZeroAllocs: once the per-shard
// scratch, the request pool, and the cohort cache are warm, a full churn
// cycle — queue a batch of acquires, close the epoch (which runs a whole
// renaming instance), release every grant — must not touch the heap.
func TestEpochZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are distorted under the race detector")
	}
	const batch = 128
	svc, err := New(Config{ShardCap: 1 << 12, Seed: 9, MaxBatch: batch})
	if err != nil {
		t.Fatal(err)
	}
	clients := make([]uint64, batch)
	for i := range clients {
		clients[i] = uint64(i + 1)
	}
	cycle := func() {
		for _, cl := range clients {
			if _, err := svc.Acquire(cl, nil); err != nil {
				t.Fatal(err)
			}
		}
		grants, err := svc.CloseEpoch(0)
		if err != nil {
			t.Fatal(err)
		}
		if len(grants) != batch {
			t.Fatalf("granted %d of %d", len(grants), batch)
		}
		for _, g := range grants {
			if err := svc.Release(g.Client, g.Name); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Warm the pools: request structs, pending/index capacity, epoch
	// scratch, and the cohort cached for this batch size.
	cycle()
	cycle()
	if allocs := testing.AllocsPerRun(5, cycle); allocs != 0 {
		t.Errorf("steady-state churn cycle allocated %v objects, want 0", allocs)
	}
}

// TestClientSteadyStateZeroAllocs guards the client's allocation-free fast
// path: once the pending map, the frame scratch, and the read buffer are
// warm, a full acquire→grant→release→ack round trip through Acquire /
// Release / Flush and the read loop performs zero heap allocations on the
// client. The peer is a minimal in-process responder that answers from
// reused buffers, so the measurement (which is process-wide) isolates the
// client.
func TestClientSteadyStateZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are distorted under the race detector")
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		var w wire.Writer
		var out, rbuf []byte
		reply := func() bool {
			out = wire.AppendFrame(out[:0], w.Bytes())
			_, err := conn.Write(out)
			return err == nil
		}
		body, err := wire.ReadFrame(conn, rbuf, svcMaxFrame)
		if err != nil || decodeSvcHello(body) != nil {
			return
		}
		rbuf = body
		w.Reset()
		appendWelcome(&w, 1, 16, RoleStandalone, "")
		if !reply() {
			return
		}
		for {
			body, err := wire.ReadFrame(conn, rbuf, svcMaxFrame)
			if err != nil {
				return
			}
			rbuf = body
			switch body[0] {
			case opAcquire:
				tag, _, err := decodeAcquire(body)
				if err != nil {
					return
				}
				w.Reset()
				appendGrant(&w, tag, Grant{Name: 3, Epoch: 1})
			case opRelease:
				tag, _, err := decodeRelease(body)
				if err != nil {
					return
				}
				w.Reset()
				appendReleased(&w, tag)
			default:
				return
			}
			if !reply() {
				return
			}
		}
	}()

	c, err := Dial(ln.Addr().String(), ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	granted := make(chan int, 1)
	released := make(chan error, 1)
	onGrant := func(g Grant, err error) {
		if err != nil {
			granted <- -1
			return
		}
		granted <- g.Name
	}
	onRelease := func(err error) { released <- err }
	roundTrip := func() {
		if err := c.Acquire(7, onGrant); err != nil {
			t.Fatal(err)
		}
		if err := c.Flush(); err != nil {
			t.Fatal(err)
		}
		if name := <-granted; name != 3 {
			t.Fatalf("granted %d, want 3", name)
		}
		if err := c.Release(3, onRelease); err != nil {
			t.Fatal(err)
		}
		if err := c.Flush(); err != nil {
			t.Fatal(err)
		}
		if err := <-released; err != nil {
			t.Fatal(err)
		}
	}
	roundTrip()
	roundTrip()
	if allocs := testing.AllocsPerRun(50, roundTrip); allocs != 0 {
		t.Errorf("client round trip allocated %v objects, want 0", allocs)
	}
}

// TestEpochZeroAllocsVariedBatch exercises the cohort cache across batch
// sizes: alternating between two warmed sizes must stay allocation-free,
// since each size keeps its own reusable cohort.
func TestEpochZeroAllocsVariedBatch(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are distorted under the race detector")
	}
	svc, err := New(Config{ShardCap: 1 << 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	cycle := func(batch int) {
		for i := 0; i < batch; i++ {
			if _, err := svc.Acquire(uint64(i+1), nil); err != nil {
				t.Fatal(err)
			}
		}
		grants, err := svc.CloseEpoch(0)
		if err != nil {
			t.Fatal(err)
		}
		for _, g := range grants {
			if err := svc.Release(g.Client, g.Name); err != nil {
				t.Fatal(err)
			}
		}
	}
	sizes := []int{32, 96}
	for _, n := range sizes {
		cycle(n)
		cycle(n)
	}
	i := 0
	if allocs := testing.AllocsPerRun(6, func() {
		cycle(sizes[i%len(sizes)])
		i++
	}); allocs != 0 {
		t.Errorf("varied-batch churn allocated %v objects, want 0", allocs)
	}
}
