package namesvc

import (
	"testing"
)

// TestEpochZeroAllocs guards the service's allocation-free steady state, in
// the spirit of core's TestCohortPhaseZeroAllocs: once the per-shard
// scratch, the request pool, and the cohort cache are warm, a full churn
// cycle — queue a batch of acquires, close the epoch (which runs a whole
// renaming instance), release every grant — must not touch the heap.
func TestEpochZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are distorted under the race detector")
	}
	const batch = 128
	svc, err := New(Config{ShardCap: 1 << 12, Seed: 9, MaxBatch: batch})
	if err != nil {
		t.Fatal(err)
	}
	clients := make([]uint64, batch)
	for i := range clients {
		clients[i] = uint64(i + 1)
	}
	cycle := func() {
		for _, cl := range clients {
			if _, err := svc.Acquire(cl, nil); err != nil {
				t.Fatal(err)
			}
		}
		grants, err := svc.CloseEpoch(0)
		if err != nil {
			t.Fatal(err)
		}
		if len(grants) != batch {
			t.Fatalf("granted %d of %d", len(grants), batch)
		}
		for _, g := range grants {
			if err := svc.Release(g.Client, g.Name); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Warm the pools: request structs, pending/index capacity, epoch
	// scratch, and the cohort cached for this batch size.
	cycle()
	cycle()
	if allocs := testing.AllocsPerRun(5, cycle); allocs != 0 {
		t.Errorf("steady-state churn cycle allocated %v objects, want 0", allocs)
	}
}

// TestEpochZeroAllocsVariedBatch exercises the cohort cache across batch
// sizes: alternating between two warmed sizes must stay allocation-free,
// since each size keeps its own reusable cohort.
func TestEpochZeroAllocsVariedBatch(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are distorted under the race detector")
	}
	svc, err := New(Config{ShardCap: 1 << 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	cycle := func(batch int) {
		for i := 0; i < batch; i++ {
			if _, err := svc.Acquire(uint64(i+1), nil); err != nil {
				t.Fatal(err)
			}
		}
		grants, err := svc.CloseEpoch(0)
		if err != nil {
			t.Fatal(err)
		}
		for _, g := range grants {
			if err := svc.Release(g.Client, g.Name); err != nil {
				t.Fatal(err)
			}
		}
	}
	sizes := []int{32, 96}
	for _, n := range sizes {
		cycle(n)
		cycle(n)
	}
	i := 0
	if allocs := testing.AllocsPerRun(6, func() {
		cycle(sizes[i%len(sizes)])
		i++
	}); allocs != 0 {
		t.Errorf("varied-batch churn allocated %v objects, want 0", allocs)
	}
}
