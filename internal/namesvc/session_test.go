package namesvc

import (
	"errors"
	"testing"
	"time"

	"ballsintoleaves/internal/faultnet"
)

// sessionTestConfig returns a SessionConfig tuned for fast fault
// detection in tests.
func sessionTestConfig(addrs ...string) SessionConfig {
	return SessionConfig{
		Addrs:          addrs,
		Client:         ClientConfig{Timeout: 300 * time.Millisecond},
		OpTimeout:      500 * time.Millisecond,
		ConnectTimeout: 5 * time.Second,
		BackoffBase:    10 * time.Millisecond,
		BackoffMax:     100 * time.Millisecond,
		Seed:           42,
	}
}

func TestSessionBasicOps(t *testing.T) {
	t.Parallel()
	svc, addr := startServer(t, Config{ShardCap: 32, Seed: 1})
	cfg := sessionTestConfig(addr)
	cfg.OpTimeout = 5 * time.Second
	s, err := DialSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { s.Close(); s.Wait() }()

	if got, want := s.Capacity(), 32; got != want {
		t.Fatalf("capacity %d, want %d", got, want)
	}
	g, err := s.AcquireSync(7)
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	if held := s.Held(); len(held) != 1 || held[g.Name] != 7 {
		t.Fatalf("held %v after acquire of %d", held, g.Name)
	}
	st, err := s.StatsSync()
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if st.Assigned != 1 {
		t.Fatalf("assigned %d, want 1", st.Assigned)
	}
	if err := s.ReleaseSync(g.Name); err != nil {
		t.Fatalf("release: %v", err)
	}
	if held := s.Held(); len(held) != 0 {
		t.Fatalf("held %v after release", held)
	}
	waitFor(t, "release visible", func() bool {
		return svc.Stats().Assigned == 0
	})
}

func TestSessionClosedRejectsOps(t *testing.T) {
	t.Parallel()
	_, addr := startServer(t, Config{ShardCap: 8, Seed: 2})
	s, err := DialSession(sessionTestConfig(addr))
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	s.Wait()
	if _, err := s.AcquireSync(1); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("acquire on closed session: %v", err)
	}
}

func TestSessionDialFailsWhenUnreachable(t *testing.T) {
	t.Parallel()
	cfg := sessionTestConfig("127.0.0.1:1") // nothing listens there
	cfg.ConnectTimeout = 300 * time.Millisecond
	if _, err := DialSession(cfg); err == nil {
		t.Fatal("DialSession reached a dead address")
	}
}

func TestSessionOpTimeoutUnderPartition(t *testing.T) {
	t.Parallel()
	_, addr := startServer(t, Config{ShardCap: 16, Seed: 3})
	link := faultnet.NewLink("c0")
	p, err := faultnet.NewProxy("127.0.0.1:0", addr, link)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	s, err := DialSession(sessionTestConfig(p.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { s.Close(); s.Wait() }()
	if _, err := s.AcquireSync(1); err != nil {
		t.Fatalf("warm acquire: %v", err)
	}
	link.Partition(false)
	start := time.Now()
	if _, err := s.AcquireSync(2); !errors.Is(err, ErrOpTimeout) {
		t.Fatalf("acquire under partition: %v, want ErrOpTimeout", err)
	}
	if d := time.Since(start); d > 3*time.Second {
		t.Fatalf("timeout took %v, want ~OpTimeout", d)
	}
}

// TestSessionReconnectsAfterReset pins the self-healing loop: a reset
// connection is replaced without any caller re-dial, and the next op
// succeeds.
func TestSessionReconnectsAfterReset(t *testing.T) {
	t.Parallel()
	_, addr := startServer(t, Config{ShardCap: 16, Seed: 4})
	link := faultnet.NewLink("c0")
	p, err := faultnet.NewProxy("127.0.0.1:0", addr, link)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	s, err := DialSession(sessionTestConfig(p.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { s.Close(); s.Wait() }()
	g, err := s.AcquireSync(1)
	if err != nil {
		t.Fatalf("warm acquire: %v", err)
	}
	if err := s.ReleaseSync(g.Name); err != nil {
		t.Fatalf("warm release: %v", err)
	}
	link.ResetConns()
	// The next op may race the reset notice; ride through with retries.
	waitFor(t, "post-reset acquire", func() bool {
		g, err := s.AcquireSync(2)
		if err != nil {
			return false
		}
		s.ReleaseSync(g.Name)
		return true
	})
	if c := s.Counters(); c.Reconnects == 0 {
		t.Fatalf("counters %+v: no reconnect recorded", c)
	}
}

// TestSessionReclaimStealBeatsTeardown pins the binding-authority fix:
// a session that reconnects (via a second route to the same server) and
// reclaims its grants while the old connection's FIN is still stalled in
// a partition must keep every grant when the old connection's teardown
// finally runs — the teardown must not release stolen names.
func TestSessionReclaimStealBeatsTeardown(t *testing.T) {
	t.Parallel()
	svc, addr := startServer(t, Config{ShardCap: 32, Seed: 5})
	link1 := faultnet.NewLink("route1")
	p1, err := faultnet.NewProxy("127.0.0.1:0", addr, link1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p1.Close() })
	link2 := faultnet.NewLink("route2")
	p2, err := faultnet.NewProxy("127.0.0.1:0", addr, link2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p2.Close() })

	s, err := DialSession(sessionTestConfig(p1.Addr(), p2.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { s.Close(); s.Wait() }()

	const holders = 4
	names := make([]int, 0, holders)
	for i := 0; i < holders; i++ {
		g, err := s.AcquireSync(uint64(101 + i))
		if err != nil {
			t.Fatalf("acquire %d: %v", i, err)
		}
		names = append(names, g.Name)
	}

	// Partition route 1 completely: the server cannot learn the old
	// connection died (the FIN is stalled), so its teardown is pending
	// while the session reconnects via route 2 and reclaims.
	link1.Partition(false)
	if _, err := s.AcquireSync(105); !errors.Is(err, ErrOpTimeout) {
		t.Fatalf("acquire during partition: %v, want ErrOpTimeout", err)
	}
	waitFor(t, "reconnect via route 2", func() bool {
		return s.Counters().Reconnects >= 1
	})
	c := s.Counters()
	if c.Lost != 0 || c.Reclaimed != holders {
		t.Fatalf("counters %+v: want %d reclaimed, 0 lost", c, holders)
	}
	if held := s.Held(); len(held) != holders {
		t.Fatalf("held %v, want the %d pre-partition grants", held, holders)
	}
	g5, err := s.AcquireSync(106)
	if err != nil {
		t.Fatalf("post-reconnect acquire: %v", err)
	}

	// Heal: the stalled FIN arrives, the old connection's teardown runs —
	// and must skip every stolen name.
	link1.Heal()
	time.Sleep(500 * time.Millisecond)

	for _, name := range append(names, g5.Name) {
		if err := s.ReleaseSync(name); err != nil {
			t.Fatalf("release of %d after teardown: %v (teardown released a stolen grant?)", name, err)
		}
	}
	waitFor(t, "all names free", func() bool {
		return svc.Stats().Assigned == 0
	})
	if c := s.Counters(); c.Lost != 0 {
		t.Fatalf("counters %+v: grants lost", c)
	}
}

// TestSessionGrantLostReporting pins the other side of the coin: when
// the server's teardown legitimately wins (it revoked the grants before
// the session could reclaim), the session reports each lost grant via
// OnGrantLost and drops it from Held — exact accounting either way.
func TestSessionGrantLostReporting(t *testing.T) {
	t.Parallel()
	svc, addr := startServer(t, Config{ShardCap: 16, Seed: 6})
	link := faultnet.NewLink("c0")
	p, err := faultnet.NewProxy("127.0.0.1:0", addr, link)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })

	lost := make(chan int, 16)
	cfg := sessionTestConfig(p.Addr())
	cfg.OnGrantLost = func(client uint64, name int) { lost <- name }
	s, err := DialSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { s.Close(); s.Wait() }()

	g, err := s.AcquireSync(7)
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	// Reset both sides: the server sees the death immediately and its
	// teardown revokes the grant before the session can reclaim. The
	// session only notices a dead connection when an op fails, so wait
	// for the revocation first, then drive ops until the reconnect (and
	// with it the reclaim pass) has happened.
	link.ResetConns()
	waitFor(t, "teardown revoked the grant", func() bool {
		return svc.Stats().Assigned == 0
	})
	waitFor(t, "session reconnected", func() bool {
		s.StatsSync()
		return s.Counters().Reconnects >= 1
	})
	select {
	case name := <-lost:
		if name != g.Name {
			t.Fatalf("lost %d, want %d", name, g.Name)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("OnGrantLost never fired")
	}
	if held := s.Held(); len(held) != 0 {
		t.Fatalf("held %v after revocation", held)
	}
	if c := s.Counters(); c.Lost != 1 {
		t.Fatalf("counters %+v: want Lost=1", c)
	}
}
