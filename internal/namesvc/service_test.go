package namesvc

import (
	"strings"
	"testing"
)

func TestServiceConfigValidation(t *testing.T) {
	t.Parallel()
	if _, err := New(Config{ShardCap: 0}); err == nil {
		t.Fatal("ShardCap 0 accepted")
	}
	if _, err := New(Config{Shards: 1 << 20, ShardCap: 1 << 20}); err == nil {
		t.Fatal("2^40-name namespace accepted")
	}
	svc, err := New(Config{ShardCap: 8})
	if err != nil {
		t.Fatal(err)
	}
	if svc.Shards() != 1 || svc.Capacity() != 8 {
		t.Fatalf("defaults: %d shards, capacity %d", svc.Shards(), svc.Capacity())
	}
}

func TestShardRouterDeterministicAndSpread(t *testing.T) {
	t.Parallel()
	svc, err := New(Config{Shards: 4, ShardCap: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 4)
	for client := uint64(1); client <= 4000; client++ {
		s := svc.Shard(client)
		if s != svc.Shard(client) {
			t.Fatalf("router not deterministic for client %d", client)
		}
		counts[s]++
	}
	for s, c := range counts {
		if c < 700 || c > 1300 {
			t.Fatalf("shard %d got %d of 4000 clients (want ~1000)", s, c)
		}
	}
}

// TestServiceEndToEndInProcess drives the acceptance scenario against the
// in-process service: three-plus epochs of acquire/release traffic, name
// uniqueness throughout, reuse only after release, and grant absorption for
// a requester that vanishes mid-epoch.
func TestServiceEndToEndInProcess(t *testing.T) {
	t.Parallel()
	svc, err := New(Config{Shards: 2, ShardCap: 8, Seed: 42, Journal: true})
	if err != nil {
		t.Fatal(err)
	}
	active := map[int]uint64{} // name -> client
	everHeld := map[int]bool{} // names that were granted at least once
	released := map[int]bool{} // names currently released after being held
	grantAll := func(wantGrants int) []Grant {
		t.Helper()
		grants, err := svc.CloseEpochs()
		if err != nil {
			t.Fatal(err)
		}
		if len(grants) != wantGrants {
			t.Fatalf("granted %d, want %d", len(grants), wantGrants)
		}
		for _, g := range grants {
			if g.Name < 1 || g.Name > svc.Capacity() {
				t.Fatalf("name %d outside 1..%d", g.Name, svc.Capacity())
			}
			if holder, dup := active[g.Name]; dup {
				t.Fatalf("name %d granted to %d while held by %d", g.Name, g.Client, holder)
			}
			if shard, _ := svc.ShardOfName(g.Name); shard != svc.Shard(g.Client) {
				t.Fatalf("client %d routed to shard %d but granted name %d of shard %d",
					g.Client, svc.Shard(g.Client), g.Name, shard)
			}
			if everHeld[g.Name] && !released[g.Name] {
				t.Fatalf("name %d reused without an intervening release", g.Name)
			}
			active[g.Name] = g.Client
			everHeld[g.Name] = true
			delete(released, g.Name)
		}
		return grants
	}
	release := func(g Grant) {
		t.Helper()
		if err := svc.Release(g.Client, g.Name); err != nil {
			t.Fatal(err)
		}
		delete(active, g.Name)
		released[g.Name] = true
	}

	// Epoch 1: twelve clients arrive; all are granted.
	for client := uint64(1); client <= 12; client++ {
		if _, err := svc.Acquire(client, nil); err != nil {
			t.Fatal(err)
		}
	}
	first := grantAll(12)

	// Epoch 2: release half, re-acquire the same clients; their grants may
	// only draw on released or never-held names.
	for _, g := range first[:6] {
		release(g)
	}
	for _, g := range first[:6] {
		if _, err := svc.Acquire(g.Client, nil); err != nil {
			t.Fatal(err)
		}
	}
	grantAll(6)

	// Epoch 3+: churn the remaining capacity a few more rounds.
	for round := 0; round < 3; round++ {
		for name, client := range active {
			release(Grant{Client: client, Name: name})
		}
		for client := uint64(100 + round*50); client < uint64(100+round*50+6); client++ {
			if _, err := svc.Acquire(client, nil); err != nil {
				t.Fatal(err)
			}
		}
		grantAll(6)
	}

	st := svc.Stats()
	if st.Epochs < 3 {
		t.Fatalf("only %d epochs completed", st.Epochs)
	}
	if st.Pending != 0 {
		t.Fatalf("%d requests still pending", st.Pending)
	}
	if int(st.Grants-st.Releases) != st.Assigned {
		t.Fatalf("grants %d - releases %d != assigned %d", st.Grants, st.Releases, st.Assigned)
	}
}

// TestServiceAbsorbsVanishedRequester pins the crash-absorption path: a
// notify that reports its recipient gone bounces the name straight back,
// and the journal shows the assign+release pair inside the epoch.
func TestServiceAbsorbsVanishedRequester(t *testing.T) {
	t.Parallel()
	svc, err := New(Config{ShardCap: 4, Seed: 7, Journal: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Acquire(1, func(Grant) bool { return false }); err != nil {
		t.Fatal(err)
	}
	var got []Grant
	if _, err := svc.Acquire(2, func(g Grant) bool { got = append(got, g); return true }); err != nil {
		t.Fatal(err)
	}
	grants, err := svc.CloseEpoch(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(grants) != 1 || len(got) != 1 || grants[0] != got[0] {
		t.Fatalf("grants = %v, notified = %v", grants, got)
	}
	st := svc.Stats()
	if st.Absorbed != 1 || st.Assigned != 1 {
		t.Fatalf("absorbed = %d, assigned = %d; want 1, 1", st.Absorbed, st.Assigned)
	}
	// The absorbed name is free again: the full namespace minus client 2's
	// name is acquirable.
	for client := uint64(10); client < 13; client++ {
		if _, err := svc.Acquire(client, nil); err != nil {
			t.Fatal(err)
		}
	}
	grants, err = svc.CloseEpoch(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(grants) != 3 {
		t.Fatalf("granted %d of the remaining 3 names", len(grants))
	}
	journal := svc.ShardJournal(0)
	var assigns, releases int
	for _, e := range journal {
		switch e.Op {
		case OpAssign:
			assigns++
		case OpRelease:
			releases++
		}
	}
	if assigns != 5 || releases != 1 {
		t.Fatalf("journal has %d assigns, %d releases; want 5, 1", assigns, releases)
	}
}

// TestServiceAbsorbedBatchLeavesQueueRunnable pins the epoch-driver
// contract behind Server.shardLoop: when an epoch's grants are all
// absorbed (every requester in the batch vanished), EpochRunnable still
// reports the shard drainable, and the next CloseEpoch serves the
// survivors' requests — nobody is stranded behind a dead batch.
func TestServiceAbsorbedBatchLeavesQueueRunnable(t *testing.T) {
	t.Parallel()
	svc, err := New(Config{ShardCap: 8, Seed: 5, MaxBatch: 3})
	if err != nil {
		t.Fatal(err)
	}
	dead := func(Grant) bool { return false }
	for client := uint64(1); client <= 3; client++ {
		if _, err := svc.Acquire(client, dead); err != nil {
			t.Fatal(err)
		}
	}
	var live []Grant
	for client := uint64(10); client <= 12; client++ {
		if _, err := svc.Acquire(client, func(g Grant) bool { live = append(live, g); return true }); err != nil {
			t.Fatal(err)
		}
	}
	grants, err := svc.CloseEpoch(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(grants) != 0 {
		t.Fatalf("dead batch yielded %d accepted grants", len(grants))
	}
	if !svc.EpochRunnable(0) {
		t.Fatal("EpochRunnable = false with live requests queued behind an absorbed batch")
	}
	grants, err = svc.CloseEpoch(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(grants) != 3 || len(live) != 3 {
		t.Fatalf("second epoch granted %d (notified %d), want 3", len(grants), len(live))
	}
	if svc.EpochRunnable(0) {
		t.Fatal("EpochRunnable = true with an empty queue")
	}
	// Exhausted namespace: queued but not runnable.
	for client := uint64(20); client < 26; client++ {
		if _, err := svc.Acquire(client, nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := svc.CloseEpoch(0); err != nil { // grants the remaining 5
		t.Fatal(err)
	}
	if _, err := svc.CloseEpoch(0); err != nil {
		t.Fatal(err)
	}
	if st := svc.Stats(); st.Free != 0 || st.Pending == 0 {
		t.Fatalf("stats = %+v, want exhausted with pending", st)
	}
	if svc.EpochRunnable(0) {
		t.Fatal("EpochRunnable = true with zero free names")
	}
}

func TestServiceCancelBeforeEpoch(t *testing.T) {
	t.Parallel()
	svc, err := New(Config{ShardCap: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	id, err := svc.Acquire(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Request IDs are per-shard sequences, so a matching ID from the wrong
	// client must not revoke someone else's request (client 999 routes to
	// the same single shard here).
	if svc.Cancel(999, id) {
		t.Fatal("foreign client cancelled another client's request")
	}
	if !svc.Cancel(1, id) {
		t.Fatal("cancel of a queued request failed")
	}
	if svc.Cancel(1, id) {
		t.Fatal("double cancel succeeded")
	}
	grants, err := svc.CloseEpoch(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(grants) != 0 {
		t.Fatalf("cancelled request was granted: %v", grants)
	}
	if st := svc.Stats(); st.Epochs != 0 || st.Pending != 0 {
		t.Fatalf("epochs = %d, pending = %d after cancelled batch", st.Epochs, st.Pending)
	}
}

// TestServiceExhaustionAndBackfill: with the namespace full, acquires queue;
// each release makes exactly one queued acquire grantable.
func TestServiceExhaustionAndBackfill(t *testing.T) {
	t.Parallel()
	svc, err := New(Config{ShardCap: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for client := uint64(1); client <= 2; client++ {
		if _, err := svc.Acquire(client, nil); err != nil {
			t.Fatal(err)
		}
	}
	grants, err := svc.CloseEpoch(0)
	if err != nil || len(grants) != 2 {
		t.Fatalf("initial grants = %v, %v", grants, err)
	}
	if _, err := svc.Acquire(9, nil); err != nil {
		t.Fatal(err)
	}
	if g, err := svc.CloseEpoch(0); err != nil || len(g) != 0 {
		t.Fatalf("grant from a full namespace: %v, %v", g, err)
	}
	freed := grants[0]
	if err := svc.Release(freed.Client, freed.Name); err != nil {
		t.Fatal(err)
	}
	backfill, err := svc.CloseEpoch(0)
	if err != nil || len(backfill) != 1 {
		t.Fatalf("backfill grants = %v, %v", backfill, err)
	}
	if backfill[0].Name != freed.Name {
		t.Fatalf("backfill got %d, want the released %d", backfill[0].Name, freed.Name)
	}
	if backfill[0].Client != 9 {
		t.Fatalf("backfill went to client %d, want 9", backfill[0].Client)
	}
}

func TestServiceReleaseValidation(t *testing.T) {
	t.Parallel()
	svc, err := New(Config{Shards: 2, ShardCap: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Release(1, 0); err == nil || !strings.Contains(err.Error(), "outside") {
		t.Fatalf("release of name 0: %v", err)
	}
	if err := svc.Release(1, 9); err == nil {
		t.Fatal("release of out-of-range name succeeded")
	}
	if err := svc.Release(1, 3); err == nil {
		t.Fatal("release of unassigned name succeeded")
	}
	if _, err := svc.Acquire(0, nil); err == nil {
		t.Fatal("acquire with zero client succeeded")
	}
}
