package namesvc

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// sortedLedger is the pre-bitmap ledger retained as a reference model: the
// ascending free list is a sorted []int with sort.SearchInts + memmove on
// every assign/release — O(cap) per operation, but obviously correct. The
// differential test drives it in lockstep with the bitmap ledger to pin
// that the two representations are observationally identical: same grants
// in the same order, same digests, same journals.
type sortedLedger struct {
	cap    int
	holder []uint64
	free   []int
	digest uint64

	entries []Entry
}

func newSortedLedger(capacity int) *sortedLedger {
	l := &sortedLedger{
		cap:    capacity,
		holder: make([]uint64, capacity),
		free:   make([]int, capacity),
		digest: fnvOffset,
	}
	for i := range l.free {
		l.free[i] = i + 1
	}
	return l
}

func (l *sortedLedger) freeCount() int       { return len(l.free) }
func (l *sortedLedger) peekFree(k int) []int { return l.free[:k] }

func (l *sortedLedger) assign(epoch, reqID, client uint64, name int) {
	i := sort.SearchInts(l.free, name)
	if i >= len(l.free) || l.free[i] != name {
		panic("sortedLedger: assigning non-free name")
	}
	l.free = append(l.free[:i], l.free[i+1:]...)
	l.holder[name-1] = client
	l.record(Entry{Epoch: epoch, Op: OpAssign, Client: client, ReqID: reqID, Name: name})
}

func (l *sortedLedger) release(epoch, client uint64, name int) error {
	if name < 1 || name > l.cap || l.holder[name-1] != client {
		panic("sortedLedger: invalid release in differential trace")
	}
	l.holder[name-1] = 0
	i := sort.SearchInts(l.free, name)
	l.free = append(l.free, 0)
	copy(l.free[i+1:], l.free[i:])
	l.free[i] = name
	l.record(Entry{Epoch: epoch, Op: OpRelease, Client: client, Name: name})
	return nil
}

func (l *sortedLedger) record(e Entry) {
	d := l.digest
	for _, v := range [...]uint64{e.Epoch, uint64(e.Op), e.Client, e.ReqID, uint64(e.Name)} {
		for s := 0; s < 64; s += 8 {
			d ^= (v >> s) & 0xff
			d *= fnvPrime
		}
	}
	l.digest = d
	l.entries = append(l.entries, e)
}

// TestLedgerDifferentialChurn runs random acquire/release traces against
// the bitmap ledger and the retained sorted-slice reference in lockstep,
// requiring identical peekFree answers (the grants), identical rolling
// digests, and identical journals at every step. This is the byte-level
// compatibility pin for the free-list representation swap.
func TestLedgerDifferentialChurn(t *testing.T) {
	t.Parallel()
	const capacity = 300 // deliberately not a multiple of 64: exercises the tail word
	for seed := int64(1); seed <= 5; seed++ {
		rnd := rand.New(rand.NewSource(seed))
		l := newLedger(capacity, true, 0)
		ref := newSortedLedger(capacity)
		var held []int
		epoch := uint64(0)
		reqID := uint64(0)
		for step := 0; step < 4000; step++ {
			if free := l.freeCount(); free > 0 && (len(held) == 0 || rnd.Intn(2) == 0) {
				// One mini-epoch: grant the k smallest free names, exactly
				// as CloseEpoch draws them.
				epoch++
				k := 1 + rnd.Intn(min(free, 8))
				names := append([]int(nil), l.peekFree(k)...)
				refNames := append([]int(nil), ref.peekFree(k)...)
				if !reflect.DeepEqual(names, refNames) {
					t.Fatalf("seed %d step %d: peekFree(%d) = %v, reference %v", seed, step, k, names, refNames)
				}
				for _, n := range names {
					reqID++
					client := uint64(1000 + rnd.Intn(50))
					l.assign(epoch, reqID, client, n)
					ref.assign(epoch, reqID, client, n)
					held = append(held, n)
				}
			} else {
				i := rnd.Intn(len(held))
				n := held[i]
				held[i] = held[len(held)-1]
				held = held[:len(held)-1]
				client := l.holder[n-1]
				if err := l.release(epoch, client, n); err != nil {
					t.Fatalf("seed %d step %d: release(%d): %v", seed, step, n, err)
				}
				ref.release(epoch, client, n)
			}
			if l.digest != ref.digest {
				t.Fatalf("seed %d step %d: digest %x, reference %x", seed, step, l.digest, ref.digest)
			}
			if l.freeCount() != ref.freeCount() {
				t.Fatalf("seed %d step %d: freeCount %d, reference %d", seed, step, l.freeCount(), ref.freeCount())
			}
		}
		if !reflect.DeepEqual(l.journalWindow(), ref.entries) {
			t.Fatalf("seed %d: journals diverged (%d vs %d entries)", seed, len(l.journalWindow()), len(ref.entries))
		}
		// Full free pool must agree element-for-element at the end.
		if free := l.freeCount(); free > 0 {
			got := append([]int(nil), l.peekFree(free)...)
			want := append([]int(nil), ref.peekFree(free)...)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d: final free pools differ", seed)
			}
		}
	}
}

// TestLedgerJournalLimit pins the rolling-journal contract: the digest
// covers the full history while the retained window holds exactly the most
// recent journalCap entries, in order.
func TestLedgerJournalLimit(t *testing.T) {
	t.Parallel()
	const capacity = 16
	const limit = 10
	capped := newLedger(capacity, true, limit)
	full := newLedger(capacity, true, 0)
	for i := 0; i < 100; i++ {
		name := i%capacity + 1
		for _, l := range []*ledger{capped, full} {
			l.assign(uint64(i), uint64(i+1), 7, name)
			if err := l.release(uint64(i), 7, name); err != nil {
				t.Fatal(err)
			}
		}
		if capped.digest != full.digest {
			t.Fatalf("step %d: capped digest diverged", i)
		}
		window := capped.journalWindow()
		if len(window) > limit {
			t.Fatalf("step %d: window holds %d entries, cap %d", i, len(window), limit)
		}
		all := full.journalWindow()
		if !reflect.DeepEqual(window, all[len(all)-len(window):]) {
			t.Fatalf("step %d: window is not the most recent suffix", i)
		}
	}
	if len(capped.entries) > 2*limit {
		t.Fatalf("backing array grew to %d entries, want <= %d", len(capped.entries), 2*limit)
	}
}
