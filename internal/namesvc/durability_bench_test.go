package namesvc

import (
	"fmt"
	"testing"

	"ballsintoleaves/internal/namesvc/durable"
)

// buildWAL runs churn against a durable single-shard service until its WAL
// holds at least the requested number of records, with snapshots disabled
// so recovery must replay the whole log. It returns the surviving files.
func buildWAL(b *testing.B, records int) *durable.MemSink {
	b.Helper()
	sink := durable.NewMemSink()
	svc, err := Open(Config{
		Shards: 1, ShardCap: 512, Seed: 7, MaxBatch: 8,
		Durable: &Durability{
			Sinks:         []durable.Sink{sink},
			Fsync:         FsyncOff,
			SnapshotEvery: 1 << 30,
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	client := uint64(0)
	var held []Grant
	for int(svc.Stats().WALRecords) < records {
		for j := 0; j < 4; j++ {
			client++
			if _, err := svc.Acquire(client, nil); err != nil {
				b.Fatal(err)
			}
		}
		grants, err := svc.CloseEpoch(0)
		if err != nil {
			b.Fatal(err)
		}
		held = append(held, grants...)
		for _, g := range held {
			if err := svc.Release(g.Client, g.Name); err != nil {
				b.Fatal(err)
			}
		}
		held = held[:0]
	}
	// Deliberately not Closed: Close would checkpoint, folding the WAL
	// into a snapshot and leaving nothing to replay. MemSink writes are
	// immediately visible, so the sink already holds the full log.
	return sink
}

// BenchmarkDurableRecovery measures boot recovery as a function of WAL
// length: each iteration recovers a fresh service from a copy of the same
// crash image (an in-memory sink, so this is decode + replay + the boot
// checkpoint, not disk bandwidth).
func BenchmarkDurableRecovery(b *testing.B) {
	for _, records := range []int{1024, 8192, 65536} {
		b.Run(fmt.Sprintf("records=%d", records), func(b *testing.B) {
			image := buildWAL(b, records)
			b.ReportAllocs()
			for b.Loop() {
				b.StopTimer()
				sink := image.Clone()
				b.StartTimer()
				svc, err := Open(Config{
					Shards: 1, ShardCap: 512, Seed: 7, MaxBatch: 8,
					Durable: &Durability{
						Sinks:         []durable.Sink{sink},
						Fsync:         FsyncOff,
						SnapshotEvery: 1 << 30,
					},
				})
				if err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				if err := svc.Close(); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
		})
	}
}
