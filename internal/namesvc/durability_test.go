package namesvc

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"ballsintoleaves/internal/namesvc/durable"
)

// crashTraceConfig is the shared base config of the differential crash
// harness: small shards so the namespace churns, a capped journal so the
// window-compaction path is exercised, and a tiny snapshot cadence so
// crash points land inside checkpoint rotations, not just between appends.
var crashTraceConfig = Config{
	Shards: 2, ShardCap: 64, Seed: 7, MaxBatch: 8,
	Journal: true, JournalLimit: 16,
}

const crashTraceSnapEvery = 4

// runCrashTrace drives a deterministic acquire/epoch/release workload.
// Every outcome — grants, digests, counters — is a pure function of the
// service config, so a volatile reference run and any number of durable
// (even crash-injected, thanks to the fail-open policy) runs execute
// identically. onStep is invoked after every primitive that could seal at
// most one WAL record per shard, including once for the initial state.
func runCrashTrace(t *testing.T, svc *Service, onStep func()) {
	t.Helper()
	rng := rand.New(rand.NewSource(0x5eed))
	var held []Grant
	client := uint64(0)
	// Deterministically refuse some grants, exercising the absorbed
	// (assign + release in one epoch) path through the WAL.
	absorb := func(g Grant) bool { return g.ReqID%5 != 0 }
	onStep()
	for round := 0; round < 40; round++ {
		for j := 1 + rng.Intn(6); j > 0; j-- {
			client++
			if _, err := svc.Acquire(client*2654435761+11, absorb); err != nil {
				t.Fatal(err)
			}
		}
		onStep()
		for sh := 0; sh < svc.Shards(); sh++ {
			grants, err := svc.CloseEpoch(sh)
			if err != nil {
				t.Fatal(err)
			}
			held = append(held, grants...)
			onStep()
		}
		if len(held) > 0 {
			for j := rng.Intn(len(held)+1) / 2; j > 0; j-- {
				idx := rng.Intn(len(held))
				g := held[idx]
				held[idx] = held[len(held)-1]
				held = held[:len(held)-1]
				if err := svc.Release(g.Client, g.Name); err != nil {
					t.Fatal(err)
				}
				onStep()
			}
		}
	}
}

// shardFingerprint is everything durability promises to preserve about one
// shard: the complete persisted state, down to each holder and the exact
// retained journal window.
type shardFingerprint struct {
	epoch    uint64
	nextID   uint64
	digest   uint64
	acquires uint64
	assigns  uint64
	releases uint64
	absorbed uint64
	free     int
	holder   []uint64
	window   []Entry
}

func captureShard(svc *Service, i int) shardFingerprint {
	sh := svc.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return shardFingerprint{
		epoch:    sh.led.epoch,
		nextID:   sh.nextID,
		digest:   sh.led.digest,
		acquires: sh.acquires,
		assigns:  sh.led.assigns,
		releases: sh.led.releases,
		absorbed: sh.absorbed,
		free:     sh.led.freeCount(),
		holder:   append([]uint64(nil), sh.led.holder...),
		window:   append([]Entry(nil), sh.led.journalWindow()...),
	}
}

func captureAll(svc *Service) []shardFingerprint {
	fp := make([]shardFingerprint, svc.Shards())
	for i := range fp {
		fp[i] = captureShard(svc, i)
	}
	return fp
}

// walSeqs returns each durable shard's WAL sequence number.
func walSeqs(svc *Service) []uint64 {
	v := make([]uint64, len(svc.shards))
	for i, sh := range svc.shards {
		sh.mu.Lock()
		if sh.dur != nil {
			v[i] = sh.dur.store.Seq()
		}
		sh.mu.Unlock()
	}
	return v
}

// openDurable builds a durable service over fresh MemSinks wrapped by one
// shared CrashBudget (a machine crash kills every shard at the same
// instant), returning the raw sinks for later recovery.
func openDurable(budget *durable.CrashBudget) (*Service, []*durable.MemSink, error) {
	cfg := crashTraceConfig
	sinks := make([]durable.Sink, cfg.Shards)
	raw := make([]*durable.MemSink, cfg.Shards)
	for i := range sinks {
		raw[i] = durable.NewMemSink()
		sinks[i] = budget.Wrap(raw[i])
	}
	cfg.Durable = &Durability{Sinks: sinks, Fsync: FsyncPerEpoch, SnapshotEvery: crashTraceSnapEvery}
	svc, err := Open(cfg)
	return svc, raw, err
}

// recoverFrom opens a recovery service directly over the raw sinks — the
// disk image the crashed machine left behind.
func recoverFrom(raw []*durable.MemSink) (*Service, error) {
	cfg := crashTraceConfig
	sinks := make([]durable.Sink, len(raw))
	for i := range raw {
		sinks[i] = raw[i]
	}
	cfg.Durable = &Durability{Sinks: sinks, Fsync: FsyncPerEpoch, SnapshotEvery: crashTraceSnapEvery}
	return Open(cfg)
}

// TestCrashPointRecoveryDifferential is the tentpole proof: a deterministic
// workload is killed at every byte/metadata offset (hundreds of points,
// swept by stride over the full unit count), recovered, and the recovered
// ledgers are required to be byte-identical — holders, digests, journal
// windows, request-ID counters, event counters — to a never-crashed
// reference at the exact step each shard's surviving WAL prefix seals.
func TestCrashPointRecoveryDifferential(t *testing.T) {
	t.Parallel()

	// Reference pass: volatile service, fingerprint after every step.
	ref, err := New(crashTraceConfig)
	if err != nil {
		t.Fatal(err)
	}
	var fps [][]shardFingerprint
	runCrashTrace(t, ref, func() { fps = append(fps, captureAll(ref)) })

	// Unlimited durable pass: same trace, measuring the total crash units
	// and the WAL sequence vector at every step.
	unlimited := durable.NewCrashBudget(-1)
	svc, raw, err := openDurable(unlimited)
	if err != nil {
		t.Fatal(err)
	}
	var seqs [][]uint64
	runCrashTrace(t, svc, func() { seqs = append(seqs, walSeqs(svc)) })
	if len(seqs) != len(fps) {
		t.Fatalf("reference saw %d steps, durable saw %d", len(fps), len(seqs))
	}
	if unlimited.Crashed() {
		t.Fatal("unlimited budget crashed")
	}
	if got, want := captureAll(svc), fps[len(fps)-1]; !reflect.DeepEqual(got, want) {
		t.Fatalf("durable live state diverged from reference:\n got %+v\nwant %+v", got, want)
	}
	if st := svc.Stats(); st.WALFailures != 0 || st.WALRecords == 0 || st.WALSnapshots == 0 {
		t.Fatalf("unlimited run stats: %+v", st)
	}
	if err := svc.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Clean restart recovers the final state exactly.
	reopened, err := recoverFrom(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := captureAll(reopened), fps[len(fps)-1]; !reflect.DeepEqual(got, want) {
		t.Fatalf("clean restart diverged:\n got %+v\nwant %+v", got, want)
	}
	reopened.Close()

	// Crash sweep: at least 200 evenly-spread kill offsets across the whole
	// run, each recovered and matched shard by shard against the reference
	// at the first step whose WAL sequence equals the recovered one (later
	// steps with the same sequence differ only by volatile state the crash
	// legitimately lost).
	units := unlimited.Units()
	stride := units / 260
	if stride < 1 {
		stride = 1
	}
	points := 0
	for u := int64(0); u <= units; u += stride {
		points++
		budget := durable.NewCrashBudget(u)
		crashed, craw, err := openDurable(budget)
		if err != nil {
			if !errors.Is(err, durable.ErrCrashed) {
				t.Fatalf("unit %d: open: %v", u, err)
			}
		} else {
			runCrashTrace(t, crashed, func() {})
			// No Close: the machine died. The open segment files simply
			// stop existing as handles; the sinks retain what was written.
		}

		rec, err := recoverFrom(craw)
		if err != nil {
			t.Fatalf("unit %d: recovery: %v", u, err)
		}
		v := walSeqs(rec)
		for i := range v {
			step := -1
			for k := range seqs {
				if seqs[k][i] == v[i] {
					step = k
					break
				}
			}
			if step < 0 {
				t.Fatalf("unit %d shard %d: recovered seq %d matches no reference step", u, i, v[i])
			}
			got, want := captureShard(rec, i), fps[step][i]
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("unit %d shard %d: recovered state diverges from reference step %d:\n got %+v\nwant %+v",
					u, i, step, got, want)
			}
		}
		// The recovered service must be live, not just inspectable: held
		// names reclaim, free names reject, and (sampled) fresh traffic
		// flows.
		for i, fp := range captureAll(rec) {
			for local, h := range fp.holder {
				if h != 0 {
					name := i*crashTraceConfig.ShardCap + local + 1
					if err := rec.Reclaim(h, name); err != nil {
						t.Fatalf("unit %d: reclaim held %d: %v", u, name, err)
					}
					if err := rec.Reclaim(h+1, name); err == nil {
						t.Fatalf("unit %d: reclaim of %d by wrong client succeeded", u, name)
					}
					break
				}
			}
		}
		if points%16 == 0 {
			if _, err := rec.Acquire(0xf8e54, nil); err != nil {
				t.Fatalf("unit %d: post-recovery acquire: %v", u, err)
			}
			if _, err := rec.CloseEpochs(); err != nil {
				t.Fatalf("unit %d: post-recovery epoch: %v", u, err)
			}
		}
		if err := rec.Close(); err != nil {
			t.Fatalf("unit %d: recovery close: %v", u, err)
		}
	}
	if points < 200 {
		t.Fatalf("swept only %d crash points (units %d); acceptance needs >= 200", points, units)
	}
	t.Logf("swept %d crash points over %d units, %d trace steps", points, units, len(seqs))
}

// TestDurableRestartChain pins recovery across several crash/restart
// generations on one data set: state survives N successive kill-and-reopen
// cycles with interleaved traffic, and the final ledger digest matches a
// volatile reference that saw the same total trace.
func TestDurableRestartChain(t *testing.T) {
	t.Parallel()
	cfg := crashTraceConfig
	raw := make([]*durable.MemSink, cfg.Shards)
	for i := range raw {
		raw[i] = durable.NewMemSink()
	}
	ref, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	client := uint64(0)
	for gen := 0; gen < 5; gen++ {
		svc, err := recoverFrom(raw)
		if err != nil {
			t.Fatalf("generation %d: %v", gen, err)
		}
		for j := 0; j < 10; j++ {
			client++
			for _, s := range []*Service{svc, ref} {
				if _, err := s.Acquire(client, nil); err != nil {
					t.Fatal(err)
				}
				if _, err := s.CloseEpochs(); err != nil {
					t.Fatal(err)
				}
			}
		}
		if svc.Digest() != ref.Digest() {
			t.Fatalf("generation %d: digest %016x, reference %016x", gen, svc.Digest(), ref.Digest())
		}
		if gen%2 == 0 {
			svc.Close() // clean shutdown: restart from a checkpoint
		} // odd generations: kill -9 — no Close, recovery replays the WAL
	}
}

// TestOpenAutoCapsJournal pins the durability footgun guard: enabling the
// journal without a cap on a durable service gets AutoJournalLimit instead
// of unbounded growth, while volatile services keep the configured zero.
func TestOpenAutoCapsJournal(t *testing.T) {
	t.Parallel()
	cfg := Config{Shards: 1, ShardCap: 8, Journal: true}
	cfg.Durable = &Durability{Sinks: []durable.Sink{durable.NewMemSink()}}
	svc, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if svc.cfg.JournalLimit != AutoJournalLimit {
		t.Fatalf("durable journal limit %d, want auto-cap %d", svc.cfg.JournalLimit, AutoJournalLimit)
	}
	vol, err := New(Config{Shards: 1, ShardCap: 8, Journal: true})
	if err != nil {
		t.Fatal(err)
	}
	if vol.cfg.JournalLimit != 0 {
		t.Fatalf("volatile journal limit %d, want 0", vol.cfg.JournalLimit)
	}
}

// TestOpenRejectsSinkMismatches pins the recovery guard rails: a sink
// count that does not match the shard count, and a sink mounted under the
// wrong shard, are construction errors — not scrambled namespaces.
func TestOpenRejectsSinkMismatches(t *testing.T) {
	t.Parallel()
	cfg := Config{Shards: 2, ShardCap: 8}
	cfg.Durable = &Durability{Sinks: []durable.Sink{durable.NewMemSink()}}
	if _, err := Open(cfg); err == nil {
		t.Fatal("one sink for two shards accepted")
	}

	// Write shard 1's data, then mount it under shard 0.
	sinks := []*durable.MemSink{durable.NewMemSink(), durable.NewMemSink()}
	cfg2 := Config{Shards: 2, ShardCap: 8, Seed: 3}
	cfg2.Durable = &Durability{Sinks: []durable.Sink{sinks[0], sinks[1]}}
	svc, err := Open(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	for c := uint64(1); c < 40; c++ {
		if _, err := svc.Acquire(c, nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := svc.CloseEpochs(); err != nil {
		t.Fatal(err)
	}
	svc.Close()
	cfg3 := Config{Shards: 2, ShardCap: 8, Seed: 3}
	cfg3.Durable = &Durability{Sinks: []durable.Sink{sinks[1], sinks[0]}}
	if _, err := Open(cfg3); err == nil {
		t.Fatal("cross-wired shard sinks accepted")
	}
}

// TestDurableFailOpenDegrade pins the failure policy: when the WAL dies
// mid-run, the service keeps serving identical grants from memory, counts
// the degradation, and never propagates the storage error to clients.
func TestDurableFailOpenDegrade(t *testing.T) {
	t.Parallel()
	ref, err := New(crashTraceConfig)
	if err != nil {
		t.Fatal(err)
	}
	runCrashTrace(t, ref, func() {})

	// A budget large enough to survive Open but die mid-trace.
	budget := durable.NewCrashBudget(500)
	svc, _, err := openDurable(budget)
	if err != nil {
		t.Fatal(err)
	}
	runCrashTrace(t, svc, func() {}) // must not t.Fatal anywhere inside
	if !budget.Crashed() {
		t.Fatal("budget never exhausted; raise the trace size")
	}
	st := svc.Stats()
	if st.WALFailures == 0 {
		t.Fatalf("degraded run reports no WAL failures: %+v", st)
	}
	if got, want := captureAll(svc), captureAll(ref); !reflect.DeepEqual(got, want) {
		t.Fatalf("degraded service diverged from reference:\n got %+v\nwant %+v", got, want)
	}
	if err := svc.Close(); err == nil {
		t.Fatal("Close on a degraded service hid the durability failure")
	}
}
