package namesvc

import (
	"fmt"

	"ballsintoleaves/internal/wire"
)

// The blnamed wire protocol: length-prefixed frames (wire.ReadFrame /
// wire.WriteFrame) whose bodies use the repository's varint format behind a
// one-byte op tag. Requests carry a client-chosen correlation tag that the
// matching response echoes, so a connection can pipeline arbitrarily many
// operations. Following the transport layer's error discipline, every
// malformed input — truncated body, trailing bytes, unknown op, oversized
// frame — is a clean per-connection error: the server closes that
// connection (releasing everything it held) and every other connection is
// unaffected. Semantically invalid but well-formed requests (releasing a
// name the connection does not hold) are answered with a reject frame and
// the connection lives on.
const (
	opHello      byte = 1  // client → server: protocol version
	opAcquire    byte = 2  // client → server: tag, client ID
	opRelease    byte = 3  // client → server: tag, global name
	opStats      byte = 4  // client → server: tag
	opReclaim    byte = 5  // client → server: tag, client ID, global name
	opEpoch      byte = 6  // client → server: tag, shard (manual-epoch servers only)
	opJournal    byte = 7  // client → server: tag, shard, start, max
	opWelcome    byte = 16 // server → client: version, shards, shard capacity
	opGrant      byte = 17 // server → client: tag, name, shard, epoch
	opReleased   byte = 18 // server → client: tag
	opStatsRep   byte = 19 // server → client: tag, counters, per-shard digests
	opReject     byte = 20 // server → client: tag, code, message
	opReclaimed  byte = 21 // server → client: tag
	opEpochRep   byte = 22 // server → client: tag, shard epoch after the close, grant count
	opJournalRep byte = 23 // server → client: tag, window total, start, entries
)

// svcProtocolVersion is the hello/welcome handshake version. Version 2
// added reclaim (the restart handshake for durable servers) and the
// per-shard digests + WAL counters in the stats reply. Version 3 added
// the manual-epoch close op and the paged journal fetch, the replay
// surface the deterministic simulator's differential harness drives.
// Version 4 added the replication role and leader hint to the welcome
// and the RejectNotLeader redirect (its message is the leader's client
// address), so clients follow a failover instead of erroring out.
// Version 5 extended the stats reply with replication status — term,
// role, last election reason, compaction floor — so checkers assert
// term stability over the wire instead of grepping logs.
const svcProtocolVersion = 5

// svcMaxFrame bounds any frame of the service protocol; every op is a few
// varints — the stats reply additionally carries one digest per shard — so
// 64 KiB is generous while keeping hostile length prefixes cheap.
const svcMaxFrame = 1 << 16

// RejectCode classifies a reject frame.
type RejectCode uint64

const (
	// RejectBusy: the connection exceeded its outstanding-acquire budget.
	RejectBusy RejectCode = 1
	// RejectNotHeld: the released name is not held by this connection.
	RejectNotHeld RejectCode = 2
	// RejectInternal: the server failed to process the request.
	RejectInternal RejectCode = 3
	// RejectUnsupported: the op exists in the protocol but this server does
	// not serve it (an epoch close on a server whose epoch loops run
	// autonomously, or a journal fetch on a server that keeps no journal).
	RejectUnsupported RejectCode = 4
	// RejectNotLeader: this replica does not serve writes; the message is
	// the current leader's client address (empty if no leader is known).
	// Clients redirect there and retry (Client.LeaderHint, DialLeader).
	RejectNotLeader RejectCode = 5
)

// String implements fmt.Stringer.
func (c RejectCode) String() string {
	switch c {
	case RejectBusy:
		return "busy"
	case RejectNotHeld:
		return "not-held"
	case RejectInternal:
		return "internal"
	case RejectUnsupported:
		return "unsupported"
	case RejectNotLeader:
		return "not-leader"
	default:
		return fmt.Sprintf("reject(%d)", uint64(c))
	}
}

func appendSvcHello(w *wire.Writer) {
	w.Byte(opHello)
	w.Uvarint(svcProtocolVersion)
}

func decodeSvcHello(body []byte) error {
	r := wire.NewReader(body)
	if k := r.Byte(); r.Err() == nil && k != opHello {
		return fmt.Errorf("namesvc: expected hello, got op %d", k)
	}
	version := r.Uvarint()
	if err := r.Close(); err != nil {
		return err
	}
	if version != svcProtocolVersion {
		return fmt.Errorf("namesvc: protocol version %d, want %d", version, svcProtocolVersion)
	}
	return nil
}

// Role is a server's replication role, reported in the welcome (wire v4).
type Role uint64

const (
	// RoleStandalone serves writes and replicates to nobody.
	RoleStandalone Role = 0
	// RoleLeader serves writes and replicates them to a quorum.
	RoleLeader Role = 1
	// RoleFollower serves reads only; writes are rejected with
	// RejectNotLeader plus the leader's address.
	RoleFollower Role = 2
)

// String implements fmt.Stringer.
func (r Role) String() string {
	switch r {
	case RoleStandalone:
		return "standalone"
	case RoleLeader:
		return "leader"
	case RoleFollower:
		return "follower"
	default:
		return fmt.Sprintf("role(%d)", uint64(r))
	}
}

func appendWelcome(w *wire.Writer, shards, shardCap int, role Role, leader string) {
	w.Byte(opWelcome)
	w.Uvarint(svcProtocolVersion)
	w.Uvarint(uint64(shards))
	w.Uvarint(uint64(shardCap))
	w.Uvarint(uint64(role))
	w.Uvarint(uint64(len(leader)))
	w.Raw([]byte(leader))
}

func decodeWelcome(body []byte) (shards, shardCap int, role Role, leader string, err error) {
	r := wire.NewReader(body)
	if k := r.Byte(); r.Err() == nil && k != opWelcome {
		return 0, 0, 0, "", fmt.Errorf("namesvc: expected welcome, got op %d", k)
	}
	version := r.Uvarint()
	shards = int(r.Uvarint())
	shardCap = int(r.Uvarint())
	role = Role(r.Uvarint())
	leaderLen := r.Uvarint()
	if r.Err() == nil && leaderLen > uint64(r.Remaining()) {
		return 0, 0, 0, "", fmt.Errorf("%w: leader hint of %d bytes in %d remaining", wire.ErrTruncated, leaderLen, r.Remaining())
	}
	leader = string(r.Bytes(int(leaderLen)))
	if err := r.Close(); err != nil {
		return 0, 0, 0, "", err
	}
	if version != svcProtocolVersion {
		return 0, 0, 0, "", fmt.Errorf("namesvc: protocol version %d, want %d", version, svcProtocolVersion)
	}
	if shards < 1 || shardCap < 1 {
		return 0, 0, 0, "", fmt.Errorf("namesvc: welcome with %d shards x %d names", shards, shardCap)
	}
	return shards, shardCap, role, leader, nil
}

func appendAcquire(w *wire.Writer, tag, client uint64) {
	w.Byte(opAcquire)
	w.Uvarint(tag)
	w.Uvarint(client)
}

func decodeAcquire(body []byte) (tag, client uint64, err error) {
	r := wire.NewReader(body)
	r.Byte() // op, already dispatched
	tag = r.Uvarint()
	client = r.Uvarint()
	if err := r.Close(); err != nil {
		return 0, 0, err
	}
	if client == 0 {
		return 0, 0, fmt.Errorf("namesvc: acquire with zero client ID")
	}
	return tag, client, nil
}

func appendRelease(w *wire.Writer, tag uint64, name int) {
	w.Byte(opRelease)
	w.Uvarint(tag)
	w.Uvarint(uint64(name))
}

func decodeRelease(body []byte) (tag uint64, name int, err error) {
	r := wire.NewReader(body)
	r.Byte()
	tag = r.Uvarint()
	name = int(r.Uvarint())
	if err := r.Close(); err != nil {
		return 0, 0, err
	}
	if name < 1 {
		return 0, 0, fmt.Errorf("namesvc: release of name %d", name)
	}
	return tag, name, nil
}

func appendReclaim(w *wire.Writer, tag, client uint64, name int) {
	w.Byte(opReclaim)
	w.Uvarint(tag)
	w.Uvarint(client)
	w.Uvarint(uint64(name))
}

func decodeReclaim(body []byte) (tag, client uint64, name int, err error) {
	r := wire.NewReader(body)
	r.Byte()
	tag = r.Uvarint()
	client = r.Uvarint()
	name = int(r.Uvarint())
	if err := r.Close(); err != nil {
		return 0, 0, 0, err
	}
	if client == 0 {
		return 0, 0, 0, fmt.Errorf("namesvc: reclaim with zero client ID")
	}
	if name < 1 {
		return 0, 0, 0, fmt.Errorf("namesvc: reclaim of name %d", name)
	}
	return tag, client, name, nil
}

func appendReclaimed(w *wire.Writer, tag uint64) {
	w.Byte(opReclaimed)
	w.Uvarint(tag)
}

func decodeReclaimed(body []byte) (tag uint64, err error) {
	r := wire.NewReader(body)
	r.Byte()
	tag = r.Uvarint()
	if err := r.Close(); err != nil {
		return 0, err
	}
	return tag, nil
}

func appendStatsReq(w *wire.Writer, tag uint64) {
	w.Byte(opStats)
	w.Uvarint(tag)
}

func decodeStatsReq(body []byte) (tag uint64, err error) {
	r := wire.NewReader(body)
	r.Byte()
	tag = r.Uvarint()
	if err := r.Close(); err != nil {
		return 0, err
	}
	return tag, nil
}

func appendGrant(w *wire.Writer, tag uint64, g Grant) {
	w.Byte(opGrant)
	w.Uvarint(tag)
	w.Uvarint(uint64(g.Name))
	w.Uvarint(uint64(g.Shard))
	w.Uvarint(g.Epoch)
}

func decodeGrant(body []byte) (tag uint64, g Grant, err error) {
	r := wire.NewReader(body)
	r.Byte()
	tag = r.Uvarint()
	g.Name = int(r.Uvarint())
	g.Shard = int(r.Uvarint())
	g.Epoch = r.Uvarint()
	if err := r.Close(); err != nil {
		return 0, Grant{}, err
	}
	if g.Name < 1 {
		return 0, Grant{}, fmt.Errorf("namesvc: grant of name %d", g.Name)
	}
	return tag, g, nil
}

func appendReleased(w *wire.Writer, tag uint64) {
	w.Byte(opReleased)
	w.Uvarint(tag)
}

func decodeReleased(body []byte) (tag uint64, err error) {
	r := wire.NewReader(body)
	r.Byte()
	tag = r.Uvarint()
	if err := r.Close(); err != nil {
		return 0, err
	}
	return tag, nil
}

func appendStatsRep(w *wire.Writer, tag uint64, st Stats) {
	w.Byte(opStatsRep)
	w.Uvarint(tag)
	w.Uvarint(uint64(st.Shards))
	w.Uvarint(uint64(st.ShardCap))
	w.Uvarint(st.Epochs)
	w.Uvarint(uint64(st.Assigned))
	w.Uvarint(uint64(st.Free))
	w.Uvarint(uint64(st.Pending))
	w.Uvarint(st.Acquires)
	w.Uvarint(st.Grants)
	w.Uvarint(st.Releases)
	w.Uvarint(st.Absorbed)
	w.Uvarint(uint64(len(st.Digests)))
	for _, d := range st.Digests {
		w.Uvarint(d)
	}
	w.Uvarint(st.WALRecords)
	w.Uvarint(st.WALSnapshots)
	w.Uvarint(st.WALFailures)
	w.Uvarint(st.ReplTerm)
	w.Uvarint(uint64(st.ReplRole))
	w.Uvarint(st.CompactFloor)
	w.Uvarint(uint64(len(st.ElectionReason)))
	w.Raw([]byte(st.ElectionReason))
}

func decodeStatsRep(body []byte) (tag uint64, st Stats, err error) {
	r := wire.NewReader(body)
	r.Byte()
	tag = r.Uvarint()
	st.Shards = int(r.Uvarint())
	st.ShardCap = int(r.Uvarint())
	st.Epochs = r.Uvarint()
	st.Assigned = int(r.Uvarint())
	st.Free = int(r.Uvarint())
	st.Pending = int(r.Uvarint())
	st.Acquires = r.Uvarint()
	st.Grants = r.Uvarint()
	st.Releases = r.Uvarint()
	st.Absorbed = r.Uvarint()
	n := r.Uvarint()
	if r.Err() == nil && n > uint64(r.Remaining()+1) {
		return 0, Stats{}, fmt.Errorf("%w: %d digests in %d remaining", wire.ErrTruncated, n, r.Remaining())
	}
	if n > 0 {
		st.Digests = make([]uint64, 0, n)
		for i := uint64(0); i < n; i++ {
			st.Digests = append(st.Digests, r.Uvarint())
		}
	}
	st.WALRecords = r.Uvarint()
	st.WALSnapshots = r.Uvarint()
	st.WALFailures = r.Uvarint()
	st.ReplTerm = r.Uvarint()
	st.ReplRole = Role(r.Uvarint())
	st.CompactFloor = r.Uvarint()
	rl := r.Uvarint()
	if r.Err() == nil && rl > uint64(r.Remaining()) {
		return 0, Stats{}, fmt.Errorf("%w: %d-byte election reason in %d remaining", wire.ErrTruncated, rl, r.Remaining())
	}
	if rl > 0 {
		st.ElectionReason = string(r.Bytes(int(rl)))
	}
	if err := r.Close(); err != nil {
		return 0, Stats{}, err
	}
	return tag, st, nil
}

func appendReject(w *wire.Writer, tag uint64, code RejectCode, msg string) {
	w.Byte(opReject)
	w.Uvarint(tag)
	w.Uvarint(uint64(code))
	w.Uvarint(uint64(len(msg)))
	w.Raw([]byte(msg))
}

func appendEpochReq(w *wire.Writer, tag uint64, shard int) {
	w.Byte(opEpoch)
	w.Uvarint(tag)
	w.Uvarint(uint64(shard))
}

func decodeEpochReq(body []byte) (tag uint64, shard int, err error) {
	r := wire.NewReader(body)
	r.Byte()
	tag = r.Uvarint()
	shard = int(r.Uvarint())
	if err := r.Close(); err != nil {
		return 0, 0, err
	}
	return tag, shard, nil
}

func appendEpochRep(w *wire.Writer, tag, epoch uint64, granted int) {
	w.Byte(opEpochRep)
	w.Uvarint(tag)
	w.Uvarint(epoch)
	w.Uvarint(uint64(granted))
}

func decodeEpochRep(body []byte) (tag, epoch uint64, granted int, err error) {
	r := wire.NewReader(body)
	r.Byte()
	tag = r.Uvarint()
	epoch = r.Uvarint()
	granted = int(r.Uvarint())
	if err := r.Close(); err != nil {
		return 0, 0, 0, err
	}
	return tag, epoch, granted, nil
}

// journalPageMax caps the entries per journal reply so a page of five-varint
// entries always fits svcMaxFrame with room to spare.
const journalPageMax = 1024

func appendJournalReq(w *wire.Writer, tag uint64, shard, start, maxEntries int) {
	w.Byte(opJournal)
	w.Uvarint(tag)
	w.Uvarint(uint64(shard))
	w.Uvarint(uint64(start))
	w.Uvarint(uint64(maxEntries))
}

func decodeJournalReq(body []byte) (tag uint64, shard, start, maxEntries int, err error) {
	r := wire.NewReader(body)
	r.Byte()
	tag = r.Uvarint()
	shard = int(r.Uvarint())
	start = int(r.Uvarint())
	maxEntries = int(r.Uvarint())
	if err := r.Close(); err != nil {
		return 0, 0, 0, 0, err
	}
	if start < 0 || maxEntries < 0 {
		return 0, 0, 0, 0, fmt.Errorf("namesvc: journal request start %d max %d", start, maxEntries)
	}
	return tag, shard, start, maxEntries, nil
}

// JournalPage is one paged window of a shard's retained journal, fetched
// over the wire: Entries holds journal positions Start..Start+len(Entries)-1
// of a retained window Total entries long (names are shard-local, exactly as
// Service.ShardJournal reports them).
type JournalPage struct {
	Total   int
	Start   int
	Entries []Entry
}

func appendJournalRep(w *wire.Writer, tag uint64, page JournalPage) {
	w.Byte(opJournalRep)
	w.Uvarint(tag)
	w.Uvarint(uint64(page.Total))
	w.Uvarint(uint64(page.Start))
	w.Uvarint(uint64(len(page.Entries)))
	for _, e := range page.Entries {
		w.Uvarint(e.Epoch)
		w.Byte(byte(e.Op))
		w.Uvarint(e.Client)
		w.Uvarint(e.ReqID)
		w.Uvarint(uint64(e.Name))
	}
}

func decodeJournalRep(body []byte) (tag uint64, page JournalPage, err error) {
	r := wire.NewReader(body)
	r.Byte()
	tag = r.Uvarint()
	page.Total = int(r.Uvarint())
	page.Start = int(r.Uvarint())
	n := r.Uvarint()
	if r.Err() == nil && n > uint64(r.Remaining()/5+1) {
		return 0, JournalPage{}, fmt.Errorf("%w: %d journal entries in %d remaining", wire.ErrTruncated, n, r.Remaining())
	}
	if n > 0 {
		page.Entries = make([]Entry, 0, n)
		for i := uint64(0); i < n; i++ {
			page.Entries = append(page.Entries, Entry{
				Epoch:  r.Uvarint(),
				Op:     EntryOp(r.Byte()),
				Client: r.Uvarint(),
				ReqID:  r.Uvarint(),
				Name:   int(r.Uvarint()),
			})
		}
	}
	if err := r.Close(); err != nil {
		return 0, JournalPage{}, err
	}
	if page.Total < 0 || page.Start < 0 {
		return 0, JournalPage{}, fmt.Errorf("namesvc: journal page start %d of %d", page.Start, page.Total)
	}
	return tag, page, nil
}

func decodeReject(body []byte) (tag uint64, code RejectCode, msg string, err error) {
	r := wire.NewReader(body)
	r.Byte()
	tag = r.Uvarint()
	code = RejectCode(r.Uvarint())
	msgLen := r.Uvarint()
	if r.Err() == nil && msgLen > uint64(r.Remaining()) {
		return 0, 0, "", fmt.Errorf("%w: reject message of %d bytes in %d remaining", wire.ErrTruncated, msgLen, r.Remaining())
	}
	msg = string(r.Bytes(int(msgLen)))
	if err := r.Close(); err != nil {
		return 0, 0, "", err
	}
	return tag, code, msg, nil
}
