package namesvc

import (
	"fmt"

	"ballsintoleaves/internal/wire"
)

// The blnamed wire protocol: length-prefixed frames (wire.ReadFrame /
// wire.WriteFrame) whose bodies use the repository's varint format behind a
// one-byte op tag. Requests carry a client-chosen correlation tag that the
// matching response echoes, so a connection can pipeline arbitrarily many
// operations. Following the transport layer's error discipline, every
// malformed input — truncated body, trailing bytes, unknown op, oversized
// frame — is a clean per-connection error: the server closes that
// connection (releasing everything it held) and every other connection is
// unaffected. Semantically invalid but well-formed requests (releasing a
// name the connection does not hold) are answered with a reject frame and
// the connection lives on.
const (
	opHello     byte = 1  // client → server: protocol version
	opAcquire   byte = 2  // client → server: tag, client ID
	opRelease   byte = 3  // client → server: tag, global name
	opStats     byte = 4  // client → server: tag
	opReclaim   byte = 5  // client → server: tag, client ID, global name
	opWelcome   byte = 16 // server → client: version, shards, shard capacity
	opGrant     byte = 17 // server → client: tag, name, shard, epoch
	opReleased  byte = 18 // server → client: tag
	opStatsRep  byte = 19 // server → client: tag, counters, per-shard digests
	opReject    byte = 20 // server → client: tag, code, message
	opReclaimed byte = 21 // server → client: tag
)

// svcProtocolVersion is the hello/welcome handshake version. Version 2
// added reclaim (the restart handshake for durable servers) and the
// per-shard digests + WAL counters in the stats reply.
const svcProtocolVersion = 2

// svcMaxFrame bounds any frame of the service protocol; every op is a few
// varints — the stats reply additionally carries one digest per shard — so
// 64 KiB is generous while keeping hostile length prefixes cheap.
const svcMaxFrame = 1 << 16

// RejectCode classifies a reject frame.
type RejectCode uint64

const (
	// RejectBusy: the connection exceeded its outstanding-acquire budget.
	RejectBusy RejectCode = 1
	// RejectNotHeld: the released name is not held by this connection.
	RejectNotHeld RejectCode = 2
	// RejectInternal: the server failed to process the request.
	RejectInternal RejectCode = 3
)

// String implements fmt.Stringer.
func (c RejectCode) String() string {
	switch c {
	case RejectBusy:
		return "busy"
	case RejectNotHeld:
		return "not-held"
	case RejectInternal:
		return "internal"
	default:
		return fmt.Sprintf("reject(%d)", uint64(c))
	}
}

func appendSvcHello(w *wire.Writer) {
	w.Byte(opHello)
	w.Uvarint(svcProtocolVersion)
}

func decodeSvcHello(body []byte) error {
	r := wire.NewReader(body)
	if k := r.Byte(); r.Err() == nil && k != opHello {
		return fmt.Errorf("namesvc: expected hello, got op %d", k)
	}
	version := r.Uvarint()
	if err := r.Close(); err != nil {
		return err
	}
	if version != svcProtocolVersion {
		return fmt.Errorf("namesvc: protocol version %d, want %d", version, svcProtocolVersion)
	}
	return nil
}

func appendWelcome(w *wire.Writer, shards, shardCap int) {
	w.Byte(opWelcome)
	w.Uvarint(svcProtocolVersion)
	w.Uvarint(uint64(shards))
	w.Uvarint(uint64(shardCap))
}

func decodeWelcome(body []byte) (shards, shardCap int, err error) {
	r := wire.NewReader(body)
	if k := r.Byte(); r.Err() == nil && k != opWelcome {
		return 0, 0, fmt.Errorf("namesvc: expected welcome, got op %d", k)
	}
	version := r.Uvarint()
	shards = int(r.Uvarint())
	shardCap = int(r.Uvarint())
	if err := r.Close(); err != nil {
		return 0, 0, err
	}
	if version != svcProtocolVersion {
		return 0, 0, fmt.Errorf("namesvc: protocol version %d, want %d", version, svcProtocolVersion)
	}
	if shards < 1 || shardCap < 1 {
		return 0, 0, fmt.Errorf("namesvc: welcome with %d shards x %d names", shards, shardCap)
	}
	return shards, shardCap, nil
}

func appendAcquire(w *wire.Writer, tag, client uint64) {
	w.Byte(opAcquire)
	w.Uvarint(tag)
	w.Uvarint(client)
}

func decodeAcquire(body []byte) (tag, client uint64, err error) {
	r := wire.NewReader(body)
	r.Byte() // op, already dispatched
	tag = r.Uvarint()
	client = r.Uvarint()
	if err := r.Close(); err != nil {
		return 0, 0, err
	}
	if client == 0 {
		return 0, 0, fmt.Errorf("namesvc: acquire with zero client ID")
	}
	return tag, client, nil
}

func appendRelease(w *wire.Writer, tag uint64, name int) {
	w.Byte(opRelease)
	w.Uvarint(tag)
	w.Uvarint(uint64(name))
}

func decodeRelease(body []byte) (tag uint64, name int, err error) {
	r := wire.NewReader(body)
	r.Byte()
	tag = r.Uvarint()
	name = int(r.Uvarint())
	if err := r.Close(); err != nil {
		return 0, 0, err
	}
	if name < 1 {
		return 0, 0, fmt.Errorf("namesvc: release of name %d", name)
	}
	return tag, name, nil
}

func appendReclaim(w *wire.Writer, tag, client uint64, name int) {
	w.Byte(opReclaim)
	w.Uvarint(tag)
	w.Uvarint(client)
	w.Uvarint(uint64(name))
}

func decodeReclaim(body []byte) (tag, client uint64, name int, err error) {
	r := wire.NewReader(body)
	r.Byte()
	tag = r.Uvarint()
	client = r.Uvarint()
	name = int(r.Uvarint())
	if err := r.Close(); err != nil {
		return 0, 0, 0, err
	}
	if client == 0 {
		return 0, 0, 0, fmt.Errorf("namesvc: reclaim with zero client ID")
	}
	if name < 1 {
		return 0, 0, 0, fmt.Errorf("namesvc: reclaim of name %d", name)
	}
	return tag, client, name, nil
}

func appendReclaimed(w *wire.Writer, tag uint64) {
	w.Byte(opReclaimed)
	w.Uvarint(tag)
}

func decodeReclaimed(body []byte) (tag uint64, err error) {
	r := wire.NewReader(body)
	r.Byte()
	tag = r.Uvarint()
	if err := r.Close(); err != nil {
		return 0, err
	}
	return tag, nil
}

func appendStatsReq(w *wire.Writer, tag uint64) {
	w.Byte(opStats)
	w.Uvarint(tag)
}

func decodeStatsReq(body []byte) (tag uint64, err error) {
	r := wire.NewReader(body)
	r.Byte()
	tag = r.Uvarint()
	if err := r.Close(); err != nil {
		return 0, err
	}
	return tag, nil
}

func appendGrant(w *wire.Writer, tag uint64, g Grant) {
	w.Byte(opGrant)
	w.Uvarint(tag)
	w.Uvarint(uint64(g.Name))
	w.Uvarint(uint64(g.Shard))
	w.Uvarint(g.Epoch)
}

func decodeGrant(body []byte) (tag uint64, g Grant, err error) {
	r := wire.NewReader(body)
	r.Byte()
	tag = r.Uvarint()
	g.Name = int(r.Uvarint())
	g.Shard = int(r.Uvarint())
	g.Epoch = r.Uvarint()
	if err := r.Close(); err != nil {
		return 0, Grant{}, err
	}
	if g.Name < 1 {
		return 0, Grant{}, fmt.Errorf("namesvc: grant of name %d", g.Name)
	}
	return tag, g, nil
}

func appendReleased(w *wire.Writer, tag uint64) {
	w.Byte(opReleased)
	w.Uvarint(tag)
}

func decodeReleased(body []byte) (tag uint64, err error) {
	r := wire.NewReader(body)
	r.Byte()
	tag = r.Uvarint()
	if err := r.Close(); err != nil {
		return 0, err
	}
	return tag, nil
}

func appendStatsRep(w *wire.Writer, tag uint64, st Stats) {
	w.Byte(opStatsRep)
	w.Uvarint(tag)
	w.Uvarint(uint64(st.Shards))
	w.Uvarint(uint64(st.ShardCap))
	w.Uvarint(st.Epochs)
	w.Uvarint(uint64(st.Assigned))
	w.Uvarint(uint64(st.Free))
	w.Uvarint(uint64(st.Pending))
	w.Uvarint(st.Acquires)
	w.Uvarint(st.Grants)
	w.Uvarint(st.Releases)
	w.Uvarint(st.Absorbed)
	w.Uvarint(uint64(len(st.Digests)))
	for _, d := range st.Digests {
		w.Uvarint(d)
	}
	w.Uvarint(st.WALRecords)
	w.Uvarint(st.WALSnapshots)
	w.Uvarint(st.WALFailures)
}

func decodeStatsRep(body []byte) (tag uint64, st Stats, err error) {
	r := wire.NewReader(body)
	r.Byte()
	tag = r.Uvarint()
	st.Shards = int(r.Uvarint())
	st.ShardCap = int(r.Uvarint())
	st.Epochs = r.Uvarint()
	st.Assigned = int(r.Uvarint())
	st.Free = int(r.Uvarint())
	st.Pending = int(r.Uvarint())
	st.Acquires = r.Uvarint()
	st.Grants = r.Uvarint()
	st.Releases = r.Uvarint()
	st.Absorbed = r.Uvarint()
	n := r.Uvarint()
	if r.Err() == nil && n > uint64(r.Remaining()+1) {
		return 0, Stats{}, fmt.Errorf("%w: %d digests in %d remaining", wire.ErrTruncated, n, r.Remaining())
	}
	if n > 0 {
		st.Digests = make([]uint64, 0, n)
		for i := uint64(0); i < n; i++ {
			st.Digests = append(st.Digests, r.Uvarint())
		}
	}
	st.WALRecords = r.Uvarint()
	st.WALSnapshots = r.Uvarint()
	st.WALFailures = r.Uvarint()
	if err := r.Close(); err != nil {
		return 0, Stats{}, err
	}
	return tag, st, nil
}

func appendReject(w *wire.Writer, tag uint64, code RejectCode, msg string) {
	w.Byte(opReject)
	w.Uvarint(tag)
	w.Uvarint(uint64(code))
	w.Uvarint(uint64(len(msg)))
	w.Raw([]byte(msg))
}

func decodeReject(body []byte) (tag uint64, code RejectCode, msg string, err error) {
	r := wire.NewReader(body)
	r.Byte()
	tag = r.Uvarint()
	code = RejectCode(r.Uvarint())
	msgLen := r.Uvarint()
	if r.Err() == nil && msgLen > uint64(r.Remaining()) {
		return 0, 0, "", fmt.Errorf("%w: reject message of %d bytes in %d remaining", wire.ErrTruncated, msgLen, r.Remaining())
	}
	msg = string(r.Bytes(int(msgLen)))
	if err := r.Close(); err != nil {
		return 0, 0, "", err
	}
	return tag, code, msg, nil
}
