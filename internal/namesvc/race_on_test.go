//go:build race

package namesvc

// raceEnabled reports whether the race detector is compiled in; allocation
// guards skip under it, since instrumentation changes allocation counts.
const raceEnabled = true
