package namesvc

import (
	"fmt"

	bil "ballsintoleaves"
	"ballsintoleaves/internal/core"
	"ballsintoleaves/internal/proto"
	"ballsintoleaves/internal/transport"
)

// Runner executes one renaming instance for an epoch batch: given the batch
// members' labels (distinct, non-zero, in queue order) it fills ranks[i]
// ∈ 1..len(labels) — member i's tight new name within the batch — forming a
// permutation. ranks always has len(labels). The service maps rank r onto
// the r-th smallest free name of the shard.
//
// Implementations must be deterministic in (seed, labels): the replay
// guarantee of the whole service reduces to this contract. Implementations
// should write only into ranks and allocate as little as possible — the
// service's steady-state epoch path is allocation-free end to end when the
// runner is (guarded by TestEpochZeroAllocs for the cohort fast path).
type Runner interface {
	Name() string
	Assign(seed uint64, labels []proto.ID, ranks []int) error
}

// forkableRunner is the optional extension for runners that keep mutable
// per-instance scratch: the Service calls Fork once per shard, so each
// shard's epoch loop owns a private instance and shards never contend on
// (or corrupt) shared runner state.
type forkableRunner interface {
	Fork() Runner
}

// forkRunner returns the per-shard instance of a configured runner:
// stateful runners are forked, stateless ones shared.
func forkRunner(r Runner) Runner {
	if f, ok := r.(forkableRunner); ok {
		return f.Fork()
	}
	return r
}

// CohortRunner runs epochs on the in-process core.Cohort fast path — the
// whole-system simulator that executes the identical protocol as n real
// processes. This is the production configuration for a single-box daemon:
// hundreds of thousands of assignments per second.
//
// The zero value works but builds a fresh cohort per epoch; inside a
// Service each shard gets a forked instance holding a small cache of
// reusable cohorts keyed by batch size, so steady-state epochs reset and
// rerun a cached cohort without touching the heap (the topology itself is
// shared process-wide via tree.Shared).
type CohortRunner struct {
	// Strategy selects path construction; zero means core.HybridPaths,
	// whose deterministic first phase terminates failure-free batches in a
	// single phase — the fastest epoch.
	Strategy core.PathStrategy
}

// Name implements Runner.
func (r CohortRunner) Name() string { return "cohort/" + r.strategy().String() }

func (r CohortRunner) strategy() core.PathStrategy {
	if r.Strategy == 0 {
		return core.HybridPaths
	}
	return r.Strategy
}

// Assign implements Runner (the uncached one-shot path).
func (r CohortRunner) Assign(seed uint64, labels []proto.ID, ranks []int) error {
	return r.Fork().Assign(seed, labels, ranks)
}

// Fork implements forkableRunner.
func (r CohortRunner) Fork() Runner {
	return &cohortEngine{strategy: r.strategy(), cache: make(map[int]*core.Cohort)}
}

// cohortEngineCacheCap bounds the per-shard cohort cache. Distinct batch
// sizes each cost O(n) reusable state; real traffic concentrates on a few
// steady-state sizes, and anything evicted is simply rebuilt on next use.
const cohortEngineCacheCap = 16

// cohortEngine is one shard's private CohortRunner state: reusable cohorts
// keyed by batch size, evicted FIFO beyond cohortEngineCacheCap.
type cohortEngine struct {
	strategy core.PathStrategy
	cache    map[int]*core.Cohort
	order    []int // cache keys, insertion order
}

// Name implements Runner.
func (e *cohortEngine) Name() string {
	return CohortRunner{Strategy: e.strategy}.Name()
}

// Assign implements Runner: reset-and-rerun a cached cohort when one of
// this batch size exists (the allocation-free steady state), or build and
// cache one.
func (e *cohortEngine) Assign(seed uint64, labels []proto.ID, ranks []int) error {
	n := len(labels)
	c := e.cache[n]
	if c == nil {
		var err error
		c, err = core.NewCohort(core.Config{N: n, Seed: seed, Strategy: e.strategy}, labels)
		if err != nil {
			return err
		}
		if len(e.cache) >= cohortEngineCacheCap {
			delete(e.cache, e.order[0])
			e.order = e.order[1:]
		}
		e.cache[n] = c
		e.order = append(e.order, n)
	} else if err := c.Reset(seed, labels); err != nil {
		return err
	}
	if err := c.RunToQuiescence(); err != nil {
		// The cohort's state is mid-run; drop it (cache and eviction order)
		// so the retry rebuilds.
		delete(e.cache, n)
		for i, k := range e.order {
			if k == n {
				e.order = append(e.order[:i], e.order[i+1:]...)
				break
			}
		}
		return err
	}
	for i, l := range labels {
		idx, ok := c.IndexOf(l)
		if !ok {
			return fmt.Errorf("namesvc: label %v missing from cohort", l)
		}
		name, _, decided := c.DecisionOf(idx)
		if !decided {
			return fmt.Errorf("namesvc: label %v did not decide", l)
		}
		ranks[i] = name
	}
	return nil
}

// TransportRunner runs epochs as true distributed executions: one goroutine
// per batch member drives the public ballsintoleaves.Protocol over an
// internal/transport loopback hub, exactly the state machine cmd/blserve
// runs over TCP. It is the fidelity configuration — orders of magnitude
// slower than CohortRunner, pinned equivalent by the determinism tests.
type TransportRunner struct {
	// Variant selects the algorithm; zero means bil.EarlyTerminating, the
	// O(1)-failure-free variant matching CohortRunner's default.
	Variant bil.Algorithm
}

// Name implements Runner.
func (r TransportRunner) Name() string { return fmt.Sprintf("transport/%v", r.variant()) }

func (r TransportRunner) variant() bil.Algorithm {
	if r.Variant == 0 {
		return bil.EarlyTerminating
	}
	return r.Variant
}

// Assign implements Runner.
func (r TransportRunner) Assign(seed uint64, labels []proto.ID, ranks []int) error {
	n := len(labels)
	sum, err := transport.RunAll(labels, transport.NetConfig{}, func(id proto.ID) (transport.Process, error) {
		p, err := bil.NewProtocol(n, seed, uint64(id), r.variant())
		if err != nil {
			return nil, err
		}
		return protocolProcess{p}, nil
	}, 0)
	if err != nil {
		return err
	}
	return ranksByLabel(labels, sum.Decisions, ranks)
}

// protocolProcess adapts the public Protocol to transport.Process.
type protocolProcess struct{ p *bil.Protocol }

func (a protocolProcess) Send(round int) []byte { return a.p.Send(round) }
func (a protocolProcess) Deliver(round int, msgs []proto.Message) {
	conv := make([]bil.Message, len(msgs))
	for i, m := range msgs {
		conv[i] = bil.Message{From: uint64(m.From), Payload: m.Payload}
	}
	a.p.Deliver(round, conv)
}
func (a protocolProcess) Decided() (int, bool) { return a.p.Decided() }
func (a protocolProcess) Done() bool           { return a.p.Done() }

// ranksByLabel aligns decisions (ascending by ID) with the batch's label
// order, filling ranks. Epoch batches are failure-free renaming instances,
// so every label must have decided; anything else is a runner bug surfaced
// as an error.
func ranksByLabel(labels []proto.ID, decisions []proto.Decision, ranks []int) error {
	if len(decisions) != len(labels) {
		return fmt.Errorf("namesvc: %d decisions for a batch of %d", len(decisions), len(labels))
	}
	byID := make(map[proto.ID]int, len(decisions))
	for _, d := range decisions {
		byID[d.ID] = d.Name
	}
	for i, l := range labels {
		name, ok := byID[l]
		if !ok {
			return fmt.Errorf("namesvc: label %v missing from decisions", l)
		}
		ranks[i] = name
	}
	return nil
}
