package namesvc

import (
	"fmt"

	bil "ballsintoleaves"
	"ballsintoleaves/internal/core"
	"ballsintoleaves/internal/proto"
	"ballsintoleaves/internal/transport"
)

// Runner executes one renaming instance for an epoch batch: given the batch
// members' labels (distinct, non-zero, in queue order) it returns ranks[i]
// ∈ 1..len(labels), a permutation — member i's tight new name within the
// batch. The service maps rank r onto the r-th smallest free name of the
// shard.
//
// Implementations must be deterministic in (seed, labels): the replay
// guarantee of the whole service reduces to this contract.
type Runner interface {
	Name() string
	Assign(seed uint64, labels []proto.ID) ([]int, error)
}

// CohortRunner runs epochs on the in-process core.Cohort fast path — the
// whole-system simulator that executes the identical protocol as n real
// processes. This is the production configuration for a single-box daemon:
// hundreds of thousands of assignments per second.
type CohortRunner struct {
	// Strategy selects path construction; zero means core.HybridPaths,
	// whose deterministic first phase terminates failure-free batches in a
	// single phase — the fastest epoch.
	Strategy core.PathStrategy
}

// Name implements Runner.
func (r CohortRunner) Name() string { return "cohort/" + r.strategy().String() }

func (r CohortRunner) strategy() core.PathStrategy {
	if r.Strategy == 0 {
		return core.HybridPaths
	}
	return r.Strategy
}

// Assign implements Runner.
func (r CohortRunner) Assign(seed uint64, labels []proto.ID) ([]int, error) {
	c, err := core.NewCohort(core.Config{N: len(labels), Seed: seed, Strategy: r.strategy()}, labels)
	if err != nil {
		return nil, err
	}
	res, err := c.Run()
	if err != nil {
		return nil, err
	}
	return ranksByLabel(labels, res.Decisions)
}

// TransportRunner runs epochs as true distributed executions: one goroutine
// per batch member drives the public ballsintoleaves.Protocol over an
// internal/transport loopback hub, exactly the state machine cmd/blserve
// runs over TCP. It is the fidelity configuration — orders of magnitude
// slower than CohortRunner, pinned equivalent by the determinism tests.
type TransportRunner struct {
	// Variant selects the algorithm; zero means bil.EarlyTerminating, the
	// O(1)-failure-free variant matching CohortRunner's default.
	Variant bil.Algorithm
}

// Name implements Runner.
func (r TransportRunner) Name() string { return fmt.Sprintf("transport/%v", r.variant()) }

func (r TransportRunner) variant() bil.Algorithm {
	if r.Variant == 0 {
		return bil.EarlyTerminating
	}
	return r.Variant
}

// Assign implements Runner.
func (r TransportRunner) Assign(seed uint64, labels []proto.ID) ([]int, error) {
	n := len(labels)
	sum, err := transport.RunAll(labels, transport.NetConfig{}, func(id proto.ID) (transport.Process, error) {
		p, err := bil.NewProtocol(n, seed, uint64(id), r.variant())
		if err != nil {
			return nil, err
		}
		return protocolProcess{p}, nil
	}, 0)
	if err != nil {
		return nil, err
	}
	return ranksByLabel(labels, sum.Decisions)
}

// protocolProcess adapts the public Protocol to transport.Process.
type protocolProcess struct{ p *bil.Protocol }

func (a protocolProcess) Send(round int) []byte { return a.p.Send(round) }
func (a protocolProcess) Deliver(round int, msgs []proto.Message) {
	conv := make([]bil.Message, len(msgs))
	for i, m := range msgs {
		conv[i] = bil.Message{From: uint64(m.From), Payload: m.Payload}
	}
	a.p.Deliver(round, conv)
}
func (a protocolProcess) Decided() (int, bool) { return a.p.Decided() }
func (a protocolProcess) Done() bool           { return a.p.Done() }

// ranksByLabel aligns decisions (ascending by ID) with the batch's label
// order. Epoch batches are failure-free renaming instances, so every label
// must have decided; anything else is a runner bug surfaced as an error.
func ranksByLabel(labels []proto.ID, decisions []proto.Decision) ([]int, error) {
	if len(decisions) != len(labels) {
		return nil, fmt.Errorf("namesvc: %d decisions for a batch of %d", len(decisions), len(labels))
	}
	byID := make(map[proto.ID]int, len(decisions))
	for _, d := range decisions {
		byID[d.ID] = d.Name
	}
	ranks := make([]int, len(labels))
	for i, l := range labels {
		name, ok := byID[l]
		if !ok {
			return nil, fmt.Errorf("namesvc: label %v missing from decisions", l)
		}
		ranks[i] = name
	}
	return ranks, nil
}
