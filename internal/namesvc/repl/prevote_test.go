package repl

import (
	"testing"
	"time"

	"ballsintoleaves/internal/namesvc"
)

// TestPreVoteProtectsHealthyLeader: the stability half of pre-vote. A
// follower of a healthy, committing leader campaigns spuriously — its
// pre-vote poll must fail against peers that still hear the leader, the
// cluster term must not move, and the leader must keep serving as if
// nothing happened.
func TestPreVoteProtectsHealthyLeader(t *testing.T) {
	c := startCluster(t, 3)
	if !c.nodes[0].Campaign() {
		t.Fatal("node 0 failed to take leadership")
	}
	for client := uint64(1); client <= 8; client++ {
		if _, err := c.svcs[0].Acquire(client, nil); err != nil {
			t.Fatalf("acquire %d: %v", client, err)
		}
	}
	closeEpochs(t, c, 0)
	c.waitConverged(0)

	// The spurious campaign: node 1 is as fresh as the leader, so only
	// stickiness — peers still hearing the leader — can (and must) stop it.
	for round := 0; round < 3; round++ {
		if c.nodes[1].Campaign() {
			t.Fatal("a campaign deposed a healthy leader despite pre-vote")
		}
	}
	if !c.nodes[0].IsLeader() {
		t.Fatal("leader lost leadership to a failed campaign")
	}
	for i, n := range c.nodes {
		if _, term, _ := n.Status(); term != 1 {
			t.Fatalf("node %d at term %d after failed campaigns, want 1 (no term churn)", i, term)
		}
	}
	if term, role, reason, _ := c.nodes[0].WireReplStats(); term != 1 || role != namesvc.RoleLeader || reason != "won-election" {
		t.Fatalf("leader stats = (%d, %v, %q), want (1, leader, won-election)", term, role, reason)
	}

	// The leader still commits: the failed campaigns were invisible.
	for client := uint64(101); client <= 104; client++ {
		if _, err := c.svcs[0].Acquire(client, nil); err != nil {
			t.Fatalf("acquire %d after failed campaigns: %v", client, err)
		}
	}
	closeEpochs(t, c, 0)
	c.waitConverged(0)
	c.assertReplicasMatch()
}

// TestStickinessRefusesVoteWithoutAdoptingTerm: the precise stickiness
// contract. A vote request at a wildly higher term, from a candidate
// claiming perfect freshness, reaches a follower that hears a live
// leader: the vote is refused AND the term is not adopted — the inflated
// term must not infect the cluster and force the leader out.
func TestStickinessRefusesVoteWithoutAdoptingTerm(t *testing.T) {
	c := startCluster(t, 3)
	if !c.nodes[0].Campaign() {
		t.Fatal("node 0 failed to take leadership")
	}
	for client := uint64(1); client <= 4; client++ {
		if _, err := c.svcs[0].Acquire(client, nil); err != nil {
			t.Fatalf("acquire %d: %v", client, err)
		}
	}
	closeEpochs(t, c, 0)
	c.waitConverged(0)

	// Freshness is maximal (record term 99 beats anything real), so a
	// rejection can only be stickiness.
	if _, granted := c.nodes[1].requestVote(c.peers[2].ReplAddr, 99, 99, 1<<30); granted {
		t.Fatal("follower hearing a live leader granted a higher-term vote")
	}
	if _, term, _ := c.nodes[2].Status(); term != 1 {
		t.Fatalf("follower adopted term %d from a refused vote request, want 1", term)
	}
	if _, granted := c.nodes[1].requestPreVote(c.peers[2].ReplAddr, 99, 99, 1<<30); granted {
		t.Fatal("follower hearing a live leader granted a pre-vote")
	}
	if _, term, _ := c.nodes[2].Status(); term != 1 {
		t.Fatalf("follower adopted term %d from a pre-vote poll, want 1", term)
	}
	if !c.nodes[0].IsLeader() {
		t.Fatal("leader deposed by refused vote traffic")
	}
}

// TestElectionProceedsAfterLeaderDeath: the liveness half of pre-vote.
// Stickiness delays an election only while leader contact is fresh; once
// the leader dies and the timeout lapses, a campaign collects pre-votes
// and real votes and the survivors commit again.
func TestElectionProceedsAfterLeaderDeath(t *testing.T) {
	c := startCluster(t, 3)
	if !c.nodes[0].Campaign() {
		t.Fatal("node 0 failed to take leadership")
	}
	for client := uint64(1); client <= 8; client++ {
		if _, err := c.svcs[0].Acquire(client, nil); err != nil {
			t.Fatalf("acquire %d: %v", client, err)
		}
	}
	closeEpochs(t, c, 0)
	c.waitConverged(0)

	c.nodes[0].Close()
	c.svcs[0].Close()
	c.nodes[0], c.svcs[0] = nil, nil

	// Stickiness rejects the first polls; the retry loop models the
	// election timer firing again after contact lapses.
	won := false
	for i := 0; i < 100 && !won; i++ {
		won = c.nodes[1].Campaign()
		if !won {
			time.Sleep(50 * time.Millisecond)
		}
	}
	if !won {
		t.Fatal("survivor failed to take leadership after the leader died")
	}
	if term, role, reason, _ := c.nodes[1].WireReplStats(); role != namesvc.RoleLeader || reason != "won-election" || term != 2 {
		t.Fatalf("new leader stats = (%d, %v, %q), want (2, leader, won-election)", term, role, reason)
	}
	for client := uint64(101); client <= 108; client++ {
		if _, err := c.svcs[1].Acquire(client, nil); err != nil {
			t.Fatalf("acquire %d on new leader: %v", client, err)
		}
	}
	closeEpochs(t, c, 1)
	c.waitConverged(1)
	c.assertReplicasMatch()
}

// TestCheckQuorumStepsDownIsolatedLeader: a leader whose followers all
// die steps down on its own within a few election timeouts — without any
// higher term ever reaching it — and records why.
func TestCheckQuorumStepsDownIsolatedLeader(t *testing.T) {
	c := startCluster(t, 3)
	if !c.nodes[0].Campaign() {
		t.Fatal("node 0 failed to take leadership")
	}
	for client := uint64(1); client <= 4; client++ {
		if _, err := c.svcs[0].Acquire(client, nil); err != nil {
			t.Fatalf("acquire %d: %v", client, err)
		}
	}
	closeEpochs(t, c, 0)
	c.waitConverged(0)

	for i := 1; i <= 2; i++ {
		c.nodes[i].Close()
		c.svcs[i].Close()
		c.nodes[i], c.svcs[i] = nil, nil
	}

	deadline := time.Now().Add(15 * time.Second)
	for c.nodes[0].IsLeader() {
		if time.Now().After(deadline) {
			t.Fatal("isolated leader never stepped down via check-quorum")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if admit, _ := c.nodes[0].AdmitWrites(); admit {
		t.Fatal("stepped-down leader still admits writes")
	}
	if _, _, reason, _ := c.nodes[0].WireReplStats(); reason != "check-quorum-stepdown" {
		t.Fatalf("election reason = %q, want check-quorum-stepdown", reason)
	}
	// The term did not move: nothing deposed it, it deposed itself.
	if _, term, _ := c.nodes[0].Status(); term != 1 {
		t.Fatalf("stepped-down leader at term %d, want 1", term)
	}
}

// TestReadLeaseFreshness pins the lease arithmetic itself — deterministic
// clock offsets instead of racing the leader tick. The same freshness
// that triggers the check-quorum step-down gates leader reads.
func TestReadLeaseFreshness(t *testing.T) {
	peers := []PeerSpec{{ReplAddr: "a"}, {ReplAddr: "b"}, {ReplAddr: "c"}}
	n := &Node{
		cfg:    Config{NodeID: 0, Peers: peers, ElectionTimeout: 200 * time.Millisecond},
		quorum: 2,
	}
	l := &leaderState{heard: make([]time.Time, 3)}
	now := time.Now()
	stale := now.Add(-time.Second)

	cases := []struct {
		name   string
		heard1 time.Time
		heard2 time.Time
		fresh  bool
	}{
		{"both fresh", now, now, true},
		{"one fresh keeps quorum with self", now, stale, true},
		{"both stale loses the lease", stale, stale, false},
	}
	for _, tc := range cases {
		l.heard[1], l.heard[2] = tc.heard1, tc.heard2
		if got := n.leaseFreshLocked(l); got != tc.fresh {
			t.Errorf("%s: leaseFreshLocked = %v, want %v", tc.name, got, tc.fresh)
		}
		n.ldr = l
		if got := n.ReadLeaseValid(); got != tc.fresh {
			t.Errorf("%s: ReadLeaseValid = %v, want %v", tc.name, got, tc.fresh)
		}
		n.ldr = nil
	}

	// Not leading: reads are served (locally consistent follower reads).
	if !n.ReadLeaseValid() {
		t.Error("follower ReadLeaseValid = false, want true")
	}
	// Legacy mode disables the gate even with a stale lease.
	n.cfg.LegacyElections = true
	n.ldr = l
	l.heard[1], l.heard[2] = stale, stale
	if !n.ReadLeaseValid() {
		t.Error("legacy-mode ReadLeaseValid = false, want true")
	}
}
