// Package repl replicates a namesvc.Service across a small cluster of
// nodes so the namespace survives the loss of a minority of them.
//
// The unit of replication is the sealed WAL record namesvc's durability
// layer already produces: each record carries one epoch's (or release
// batch's) events plus the seal — epoch, digest, cumulative counters —
// that recovery re-proves on replay. The leader taps records at the
// source (Service.SetRecordHook), streams them to followers over
// internal/transport peer links, and a grant reaches a client only after
// a quorum of replicas has acknowledged the records behind it
// (Node.WaitCommitted, consulted by the Server's commit gate). Followers
// apply records through the same replay-and-prove path recovery uses
// (Service.ApplyReplicated), so every replica's ledger, digest, and
// journal are byte-identical to the leader's — the determinism the rest
// of the repository pins is what makes state-machine replication of the
// service exact rather than approximate.
//
// Leadership is elected, Raft-style: randomized election timeouts, one
// vote per term, and a freshness rule — (term of last record, total
// event position) compared lexicographically — that prevents a node
// missing quorum-committed records from winning. Terms fence deposed
// leaders: a leader that observes a higher term discards its in-flight
// epoch undelivered (no client ever saw those grants, so the new leader
// re-granting the same names is safe), disconnects its clients, and
// rejoins as a follower, its divergent tail overwritten by the new
// leader's catch-up snapshot. Clients follow RejectNotLeader hints
// (namesvc.DialLeader) to wherever writes are currently served.
//
// Three hardening layers sit on top of the base protocol. Pre-vote: a
// candidate first runs a non-term-bumping poll and starts a real
// election only if a majority reports its leader stale, so a node
// returning from a partition with an inflated election appetite cannot
// depose a healthy leader; responders apply leader stickiness, refusing
// (pre-)votes while they hear a live leader within the election
// timeout. Check-quorum: a leader that cannot hear from a quorum of
// followers for an election timeout steps down on its own, fencing
// in-flight commits instead of lingering split-brained, and its reads
// (stats, journal) are lease-gated — served only while that quorum
// contact is fresh, which is what makes leader reads linearizable.
// Compaction: the leader's record backlog is pruned on a cadence
// independent of the shard snapshot cycle — the committed-and-applied-
// everywhere prefix goes first, and a hard retention bound caps the
// queue regardless; a follower that falls behind the retained window
// re-attaches through the ordinary snapshot+tail path. The compaction
// floor persists in repl-meta next to term and vote.
package repl

import (
	"fmt"

	"ballsintoleaves/internal/wire"
)

// Replication message kinds, first byte of every peer frame.
const (
	// kHello opens a leader→follower stream: {term, leaderID}.
	kHello byte = 0x61
	// kHelloAck answers a hello: {term, lastRecTerm, nPos, positions...}.
	kHelloAck byte = 0x62
	// kVoteReq asks for a vote: {term, candidateID, lastRecTerm, position}.
	kVoteReq byte = 0x63
	// kVoteResp answers a vote request: {term, granted}.
	kVoteResp byte = 0x64
	// kSnap carries one shard's catch-up snapshot: {term, shard, payload}.
	kSnap byte = 0x65
	// kSnapEnd closes a catch-up: {term, idx, commit, lastRecTerm}. The
	// follower acknowledges idx once every snapshot shard is restored.
	kSnapEnd byte = 0x66
	// kAppend streams one sealed record: {term, idx, commit, shard, payload}.
	kAppend byte = 0x67
	// kHeartbeat keeps an idle stream alive: {term, commit}.
	kHeartbeat byte = 0x68
	// kAck acknowledges the stream cumulatively: {term, idx}.
	kAck byte = 0x69
	// kNack reports an unrecoverable stream state (apply failure, stale
	// term): {term}. The leader tears the link down and re-attaches with a
	// fresh snapshot.
	kNack byte = 0x6a
	// kPreVoteReq polls for a non-binding vote before any term is bumped:
	// {term (the term the candidate would campaign at), candidateID,
	// lastRecTerm, position}. The responder neither adopts the term nor
	// spends its vote.
	kPreVoteReq byte = 0x6b
	// kPreVoteResp answers a pre-vote poll: {term (responder's current
	// term), granted}.
	kPreVoteResp byte = 0x6c
)

func appendHello(w *wire.Writer, term uint64, leaderID int) {
	w.Byte(kHello)
	w.Uvarint(term)
	w.Uvarint(uint64(leaderID))
}

func decodeHello(body []byte) (term uint64, leaderID int, err error) {
	r := wire.NewReader(body)
	r.Byte()
	term = r.Uvarint()
	leaderID = int(r.Uvarint())
	return term, leaderID, r.Close()
}

func appendHelloAck(w *wire.Writer, term, lastRecTerm uint64, positions []uint64) {
	w.Byte(kHelloAck)
	w.Uvarint(term)
	w.Uvarint(lastRecTerm)
	w.Uvarint(uint64(len(positions)))
	for _, p := range positions {
		w.Uvarint(p)
	}
}

func decodeHelloAck(body []byte) (term, lastRecTerm uint64, positions []uint64, err error) {
	r := wire.NewReader(body)
	r.Byte()
	term = r.Uvarint()
	lastRecTerm = r.Uvarint()
	n := r.Uvarint()
	if n > uint64(r.Remaining()) { // each position costs >= 1 byte
		return 0, 0, nil, fmt.Errorf("repl: hello-ack claims %d positions in %d bytes: %w",
			n, r.Remaining(), wire.ErrTruncated)
	}
	positions = make([]uint64, n)
	for i := range positions {
		positions[i] = r.Uvarint()
	}
	return term, lastRecTerm, positions, r.Close()
}

func appendVoteReq(w *wire.Writer, term uint64, candidateID int, lastRecTerm, position uint64) {
	w.Byte(kVoteReq)
	w.Uvarint(term)
	w.Uvarint(uint64(candidateID))
	w.Uvarint(lastRecTerm)
	w.Uvarint(position)
}

func decodeVoteReq(body []byte) (term uint64, candidateID int, lastRecTerm, position uint64, err error) {
	r := wire.NewReader(body)
	r.Byte()
	term = r.Uvarint()
	candidateID = int(r.Uvarint())
	lastRecTerm = r.Uvarint()
	position = r.Uvarint()
	return term, candidateID, lastRecTerm, position, r.Close()
}

func appendVoteResp(w *wire.Writer, term uint64, granted bool) {
	w.Byte(kVoteResp)
	w.Uvarint(term)
	g := uint64(0)
	if granted {
		g = 1
	}
	w.Uvarint(g)
}

func decodeVoteResp(body []byte) (term uint64, granted bool, err error) {
	r := wire.NewReader(body)
	r.Byte()
	term = r.Uvarint()
	granted = r.Uvarint() == 1
	return term, granted, r.Close()
}

func appendPreVoteReq(w *wire.Writer, term uint64, candidateID int, lastRecTerm, position uint64) {
	w.Byte(kPreVoteReq)
	w.Uvarint(term)
	w.Uvarint(uint64(candidateID))
	w.Uvarint(lastRecTerm)
	w.Uvarint(position)
}

func decodePreVoteReq(body []byte) (term uint64, candidateID int, lastRecTerm, position uint64, err error) {
	r := wire.NewReader(body)
	r.Byte()
	term = r.Uvarint()
	candidateID = int(r.Uvarint())
	lastRecTerm = r.Uvarint()
	position = r.Uvarint()
	return term, candidateID, lastRecTerm, position, r.Close()
}

func appendPreVoteResp(w *wire.Writer, term uint64, granted bool) {
	w.Byte(kPreVoteResp)
	w.Uvarint(term)
	g := uint64(0)
	if granted {
		g = 1
	}
	w.Uvarint(g)
}

func decodePreVoteResp(body []byte) (term uint64, granted bool, err error) {
	r := wire.NewReader(body)
	r.Byte()
	term = r.Uvarint()
	granted = r.Uvarint() == 1
	return term, granted, r.Close()
}

func appendSnap(w *wire.Writer, term uint64, shard int, payload []byte) {
	w.Byte(kSnap)
	w.Uvarint(term)
	w.Uvarint(uint64(shard))
	w.Raw(payload)
}

func decodeSnap(body []byte) (term uint64, shard int, payload []byte, err error) {
	r := wire.NewReader(body)
	r.Byte()
	term = r.Uvarint()
	shard = int(r.Uvarint())
	payload = r.Rest()
	return term, shard, payload, r.Close()
}

func appendSnapEnd(w *wire.Writer, term, idx, commit, lastRecTerm uint64) {
	w.Byte(kSnapEnd)
	w.Uvarint(term)
	w.Uvarint(idx)
	w.Uvarint(commit)
	w.Uvarint(lastRecTerm)
}

func decodeSnapEnd(body []byte) (term, idx, commit, lastRecTerm uint64, err error) {
	r := wire.NewReader(body)
	r.Byte()
	term = r.Uvarint()
	idx = r.Uvarint()
	commit = r.Uvarint()
	lastRecTerm = r.Uvarint()
	return term, idx, commit, lastRecTerm, r.Close()
}

func appendAppend(w *wire.Writer, term, idx, commit uint64, shard int, payload []byte) {
	w.Byte(kAppend)
	w.Uvarint(term)
	w.Uvarint(idx)
	w.Uvarint(commit)
	w.Uvarint(uint64(shard))
	w.Raw(payload)
}

func decodeAppend(body []byte) (term, idx, commit uint64, shard int, payload []byte, err error) {
	r := wire.NewReader(body)
	r.Byte()
	term = r.Uvarint()
	idx = r.Uvarint()
	commit = r.Uvarint()
	shard = int(r.Uvarint())
	payload = r.Rest()
	return term, idx, commit, shard, payload, r.Close()
}

func appendHeartbeat(w *wire.Writer, term, commit uint64) {
	w.Byte(kHeartbeat)
	w.Uvarint(term)
	w.Uvarint(commit)
}

func decodeHeartbeat(body []byte) (term, commit uint64, err error) {
	r := wire.NewReader(body)
	r.Byte()
	term = r.Uvarint()
	commit = r.Uvarint()
	return term, commit, r.Close()
}

func appendAck(w *wire.Writer, term, idx uint64) {
	w.Byte(kAck)
	w.Uvarint(term)
	w.Uvarint(idx)
}

func decodeAck(body []byte) (term, idx uint64, err error) {
	r := wire.NewReader(body)
	r.Byte()
	term = r.Uvarint()
	idx = r.Uvarint()
	return term, idx, r.Close()
}

func appendNack(w *wire.Writer, term uint64) {
	w.Byte(kNack)
	w.Uvarint(term)
}

func decodeNack(body []byte) (term uint64, err error) {
	r := wire.NewReader(body)
	r.Byte()
	term = r.Uvarint()
	return term, r.Close()
}
