package repl

import (
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"ballsintoleaves/internal/faultnet"
	"ballsintoleaves/internal/namesvc"
)

// faultCluster is a cluster whose peer links all ride faultnet proxies:
// every ordered pair (i, j) gets its own proxy and link, so a node can be
// partitioned from the rest — in one or both directions — without
// touching the node itself. Node i's Peers view routes peer j through
// proxy[i][j]; client addresses stay canonical so redirect hints are
// comparable across views.
type faultCluster struct {
	*cluster
	links   [][]*faultnet.Link  // links[i][j]: traffic node i originates toward j
	proxies [][]*faultnet.Proxy // proxies[i][j]: node i's route to node j
}

func startFaultCluster(t *testing.T, size int, opts ...func(*Config)) *faultCluster {
	t.Helper()
	return startFaultClusterWithClients(t, size, nil, opts...)
}

// startFaultClusterWithClients lets the caller supply real client-facing
// addresses (chaos tests run namesvc Servers behind client proxies, and
// redirect hints must name addresses sessions can dial); nil keeps the
// placeholder addresses plain repl tests use.
func startFaultClusterWithClients(t *testing.T, size int, clientAddrs []string, opts ...func(*Config)) *faultCluster {
	t.Helper()
	fc := &faultCluster{cluster: &cluster{t: t, logf: testLogf(t)}}
	c := fc.cluster

	lns := make([]net.Listener, size)
	for i := 0; i < size; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("binding replication listener: %v", err)
		}
		lns[i] = ln
		clientAddr := "client-" + ln.Addr().String()
		if clientAddrs != nil {
			clientAddr = clientAddrs[i]
		}
		c.peers = append(c.peers, PeerSpec{
			ReplAddr:   ln.Addr().String(),
			ClientAddr: clientAddr,
		})
	}

	fc.links = make([][]*faultnet.Link, size)
	fc.proxies = make([][]*faultnet.Proxy, size)
	for i := 0; i < size; i++ {
		fc.links[i] = make([]*faultnet.Link, size)
		fc.proxies[i] = make([]*faultnet.Proxy, size)
		for j := 0; j < size; j++ {
			if j == i {
				continue
			}
			link := faultnet.NewLink(fmt.Sprintf("repl-%d->%d", i, j))
			p, err := faultnet.NewProxy("127.0.0.1:0", c.peers[j].ReplAddr, link)
			if err != nil {
				t.Fatalf("starting proxy %d->%d: %v", i, j, err)
			}
			fc.links[i][j] = link
			fc.proxies[i][j] = p
		}
	}
	t.Cleanup(func() {
		for i := range fc.proxies {
			for j := range fc.proxies[i] {
				if fc.proxies[i][j] != nil {
					fc.proxies[i][j].Close()
				}
			}
		}
	})

	for i := 0; i < size; i++ {
		// Node i's view: itself at its real address, every peer behind
		// i's outbound proxy for that peer.
		view := make([]PeerSpec, size)
		copy(view, c.peers)
		for j := 0; j < size; j++ {
			if j != i {
				view[j].ReplAddr = fc.proxies[i][j].Addr()
			}
		}
		sinks := memSinks()
		svc := openReplica(t, sinks)
		cfg := Config{
			NodeID:          i,
			Peers:           view,
			Service:         svc,
			Listener:        lns[i],
			ElectionTimeout: 200 * time.Millisecond,
			ManualElections: true,
			Logf:            c.logf,
		}
		for _, opt := range opts {
			opt(&cfg)
		}
		node, err := Start(cfg)
		if err != nil {
			t.Fatalf("starting node %d: %v", i, err)
		}
		c.sinks = append(c.sinks, sinks)
		c.svcs = append(c.svcs, svc)
		c.nodes = append(c.nodes, node)
	}
	t.Cleanup(c.close)
	return fc
}

// partitionNode cuts node x off in both directions: every link touching x
// drops, and established flows are reset so stream failures surface at
// once instead of after an I/O timeout. New dials toward x (and from x)
// stall like lost SYNs until heal.
func (fc *faultCluster) partitionNode(x int) {
	for j := range fc.links {
		if j == x {
			continue
		}
		fc.links[x][j].Partition(false)
		fc.links[x][j].ResetConns()
		fc.links[j][x].Partition(false)
		fc.links[j][x].ResetConns()
	}
}

// healNode clears every fault on links touching node x. Dial attempts
// held at the partition gate complete immediately.
func (fc *faultCluster) healNode(x int) {
	for j := range fc.links {
		if j == x {
			continue
		}
		fc.links[x][j].Heal()
		fc.links[j][x].Heal()
	}
}

// TestFollowerPartitionSnapshotCatchUp: a follower partitioned while the
// leader seals more than two full snapshot cycles of records must, on
// heal, be re-attached through the snapshot+tail path and converge to a
// byte-identical replica — twice in a row, so re-attachment is a steady
// state and not a one-shot.
func TestFollowerPartitionSnapshotCatchUp(t *testing.T) {
	fc := startFaultCluster(t, 3)
	c := fc.cluster
	if !c.nodes[0].Campaign() {
		t.Fatal("node 0 failed to take leadership")
	}
	nextClient := uint64(1)
	churn := func(epochs int) {
		t.Helper()
		for e := 0; e < epochs; e++ {
			for k := 0; k < 2; k++ {
				if _, err := c.svcs[0].Acquire(nextClient, nil); err != nil {
					t.Fatalf("acquire %d: %v", nextClient, err)
				}
				nextClient++
			}
			closeEpochs(t, c, 0)
		}
	}

	churn(2)
	c.waitConverged(0)
	c.assertReplicasMatch()

	for cycle := 0; cycle < 2; cycle++ {
		fc.partitionNode(2)
		// SnapshotEvery is 8 and each epoch close seals one record per
		// shard, so 17 epochs put every shard more than two snapshot
		// cycles ahead of the cut-off follower. Quorum is the live pair.
		churn(17)

		behind := c.svcs[2].Positions(nil)
		ahead := c.svcs[0].Positions(nil)
		for shard, pos := range ahead {
			if pos < behind[shard]+16 {
				t.Fatalf("cycle %d shard %d: leader at %d, follower at %d — partition did not span 2 snapshot cycles",
					cycle, shard, pos, behind[shard])
			}
		}

		fc.healNode(2)
		// Post-heal records ride the stream tail after the snapshot
		// attach point.
		churn(1)
		c.waitConverged(0)
		c.assertReplicasMatch()
	}
}

// TestMinorityLeaderFencesAfterPartition: a leader partitioned into a
// minority briefly keeps accepting writes it can never commit (that is
// the safe half of split-brain: nothing is acknowledged), but
// check-quorum bounds the window — within about one election timeout of
// losing its followers it steps down on its own, with no heal and no
// higher term required: its in-flight WaitCommitted fails, it stops
// admitting writes, and its last-election reason records the step-down.
// The majority then elects a new leader, and on heal the old leader's
// divergent tail is overwritten by the new leader's snapshot so the
// cluster reconverges byte-identical.
func TestMinorityLeaderFencesAfterPartition(t *testing.T) {
	fc := startFaultCluster(t, 3)
	c := fc.cluster
	if !c.nodes[0].Campaign() {
		t.Fatal("node 0 failed to take leadership")
	}
	for client := uint64(1); client <= 8; client++ {
		if _, err := c.svcs[0].Acquire(client, nil); err != nil {
			t.Fatalf("acquire %d: %v", client, err)
		}
	}
	closeEpochs(t, c, 0)
	c.waitConverged(0)
	c.assertReplicasMatch()

	fc.partitionNode(0)

	// Doomed writes on the minority leader: applied locally, never
	// committed. WaitCommitted must block (and later fail) — these
	// records can never reach a quorum.
	for client := uint64(201); client <= 204; client++ {
		if _, err := c.svcs[0].Acquire(client, nil); err != nil {
			t.Fatalf("acquire %d on minority leader: %v", client, err)
		}
	}
	for shard := 0; shard < testShards; shard++ {
		if _, err := c.svcs[0].CloseEpoch(shard); err != nil {
			t.Fatalf("closing doomed epoch on shard %d: %v", shard, err)
		}
	}
	waitErr := make(chan error, 1)
	go func() { waitErr <- c.nodes[0].WaitCommitted(0) }()

	// The split-brain window: for a moment the minority leader does not
	// yet know it lost its followers — but it also has not acknowledged
	// anything, and check-quorum bounds the window.
	if !c.nodes[0].IsLeader() {
		t.Fatal("partitioned leader stepped down before its lease could expire")
	}
	select {
	case err := <-waitErr:
		t.Fatalf("WaitCommitted on the minority leader returned early: %v", err)
	case <-time.After(100 * time.Millisecond):
	}

	// Check-quorum: within a few election timeouts the minority leader
	// steps down on its own — no heal, no higher term in sight.
	deadline := time.Now().Add(15 * time.Second)
	for c.nodes[0].IsLeader() {
		if time.Now().After(deadline) {
			t.Fatal("minority leader did not step down via check-quorum")
		}
		time.Sleep(5 * time.Millisecond)
	}
	select {
	case err := <-waitErr:
		if !errors.Is(err, errDeposed) {
			t.Fatalf("in-flight WaitCommitted: %v, want errDeposed", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("in-flight WaitCommitted did not fail after the step-down")
	}
	if admit, _ := c.nodes[0].AdmitWrites(); admit {
		t.Fatal("stepped-down leader still admits writes")
	}
	if _, _, reason, _ := c.nodes[0].WireReplStats(); reason != "check-quorum-stepdown" {
		t.Fatalf("election reason = %q, want check-quorum-stepdown", reason)
	}

	// The majority elects node 1 once node 2's leader contact lapses —
	// until then stickiness makes node 2 refuse the pre-vote, which is
	// the stability property, not a defect, so the campaign retries.
	won := false
	for i := 0; i < 100 && !won; i++ {
		won = c.nodes[1].Campaign()
		if !won {
			time.Sleep(50 * time.Millisecond)
		}
	}
	if !won {
		t.Fatal("majority follower failed to take leadership")
	}
	for client := uint64(301); client <= 308; client++ {
		if _, err := c.svcs[1].Acquire(client, nil); err != nil {
			t.Fatalf("acquire %d on new leader: %v", client, err)
		}
	}
	closeEpochs(t, c, 1)

	fc.healNode(0)

	// Heal lets the new leader's stream reach node 0 and redirect it.
	for {
		role, hint := c.nodes[0].WireRole()
		if role == namesvc.RoleFollower && hint == c.peers[1].ClientAddr {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("node 0 reports (%v, %q), want follower redirecting to %q", role, hint, c.peers[1].ClientAddr)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The old leader's divergent tail (the doomed epochs) is overwritten
	// by the new leader's catch-up snapshot; everything reconverges.
	for client := uint64(401); client <= 404; client++ {
		if _, err := c.svcs[1].Acquire(client, nil); err != nil {
			t.Fatalf("acquire %d after heal: %v", client, err)
		}
	}
	closeEpochs(t, c, 1)
	c.waitConverged(1)
	c.assertReplicasMatch()
}
