package repl

import (
	"net"
	"sync"
	"testing"
	"time"

	"ballsintoleaves/internal/namesvc"
	"ballsintoleaves/internal/namesvc/durable"
)

// TestSessionExactlyOnceAcrossFailovers: one holder session and one
// churn session live through N successive kill-9 leader failovers — the
// leader's server, node, and service all die in place each round, a
// survivor is elected, and the dead member restarts from its WAL on its
// old addresses. After every failover the holder's grants are reclaimed
// exactly once: the same names, none lost, none duplicated, and the
// session counters only ever grow. At the end every grant is releasable
// exactly once and all three replicas are byte-identical.
func TestSessionExactlyOnceAcrossFailovers(t *testing.T) {
	const (
		members      = 3
		rounds       = 3
		holderGrants = 8
	)

	// Client listeners come first: their addresses are the redirect
	// hints, so they must be what sessions actually dial.
	clientLns := make([]net.Listener, members)
	clientAddrs := make([]string, members)
	replLns := make([]net.Listener, members)
	peers := make([]PeerSpec, members)
	for i := 0; i < members; i++ {
		cln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("binding client listener %d: %v", i, err)
		}
		rln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("binding repl listener %d: %v", i, err)
		}
		clientLns[i], replLns[i] = cln, rln
		clientAddrs[i] = cln.Addr().String()
		peers[i] = PeerSpec{ReplAddr: rln.Addr().String(), ClientAddr: clientAddrs[i]}
	}

	logf := testLogf(t)
	sinkSets := make([][]durable.Sink, members)
	svcs := make([]*namesvc.Service, members)
	nodes := make([]*Node, members)
	srvs := make([]*namesvc.Server, members)

	liveClientLns := make([]net.Listener, members)
	startMember := func(i int, replLn, clientLn net.Listener) {
		t.Helper()
		liveClientLns[i] = clientLn
		svc := openReplica(t, sinkSets[i])
		node, err := Start(Config{
			NodeID:          i,
			Peers:           peers,
			Service:         svc,
			Listener:        replLn,
			ElectionTimeout: 200 * time.Millisecond,
			ManualElections: true,
			Logf:            logf,
		})
		if err != nil {
			t.Fatalf("starting node %d: %v", i, err)
		}
		srv, err := namesvc.NewServer(namesvc.ServerConfig{
			Service:       svc,
			Gate:          node,
			EpochInterval: 10 * time.Millisecond,
			IOTimeout:     2 * time.Second,
			Logf:          logf,
		})
		if err != nil {
			t.Fatalf("starting server %d: %v", i, err)
		}
		node.SetServer(srv)
		go srv.Serve(clientLn)
		svcs[i], nodes[i], srvs[i] = svc, node, srv
	}
	for i := 0; i < members; i++ {
		sinkSets[i] = memSinks()
		startMember(i, replLns[i], clientLns[i])
	}
	t.Cleanup(func() {
		for i := 0; i < members; i++ {
			if srvs[i] != nil {
				srvs[i].Close()
			}
			if nodes[i] != nil {
				nodes[i].Close()
			}
			if svcs[i] != nil {
				svcs[i].Close()
			}
		}
	})
	if !nodes[0].Campaign() {
		t.Fatal("node 0 failed to take leadership")
	}

	table := newGrantTable()
	sessionCfg := func(label string, seed uint64) namesvc.SessionConfig {
		return namesvc.SessionConfig{
			Addrs:          clientAddrs,
			Client:         namesvc.ClientConfig{Timeout: 300 * time.Millisecond},
			OpTimeout:      500 * time.Millisecond,
			ConnectTimeout: 10 * time.Second,
			BackoffBase:    10 * time.Millisecond,
			BackoffMax:     100 * time.Millisecond,
			Seed:           seed,
			Logf:           logf,
			OnGrantLost:    func(client uint64, name int) { table.cleared(name, label) },
		}
	}

	holder, err := namesvc.DialSession(sessionCfg("holder", 1))
	if err != nil {
		t.Fatalf("dialing holder session: %v", err)
	}
	defer func() { holder.Close(); holder.Wait() }()
	wantNames := make(map[int]bool, holderGrants)
	for i := 0; i < holderGrants; i++ {
		g, err := holder.AcquireSync(uint64(101 + i))
		if err != nil {
			t.Fatalf("holder acquire %d: %v", i, err)
		}
		table.granted(g.Name, "holder")
		wantNames[g.Name] = true
	}

	// A churn worker keeps acquiring and releasing through every
	// failover; with the holder it gives the duplicate table two live
	// sessions to catch a double-grant between.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	churnSess, err := namesvc.DialSession(sessionCfg("churn", 7))
	if err != nil {
		t.Fatalf("dialing churn session: %v", err)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		client := uint64(500000)
		for {
			select {
			case <-stop:
				return
			default:
			}
			client++
			g, err := churnSess.AcquireSync(client)
			if err != nil {
				continue // timeouts and redirects during failovers
			}
			table.granted(g.Name, "churn")
			table.cleared(g.Name, "churn") // free-at-release-submit
			churnSess.ReleaseSync(g.Name)
		}
	}()
	wg.Add(1)
	go func() { // holder keepalive: ops are what notice dead connections
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(50 * time.Millisecond):
				holder.StatsSync()
			}
		}
	}()

	leader := 0
	var prevCounters namesvc.SessionCounters
	for round := 1; round <= rounds; round++ {
		// Kill-9: the leader's node, server, and service die in place —
		// no draining, no goodbye frames. The node is fenced FIRST so the
		// server teardown's connection-death releases cannot replicate:
		// a real crash never sends them, and letting them stream would
		// legitimately free the holder's names on the survivors.
		dead := leader
		nodes[dead].Close()
		liveClientLns[dead].Close() // Serve's owner closes the listener
		srvs[dead].Close()
		svcs[dead].Close()
		srvs[dead], nodes[dead], svcs[dead] = nil, nil, nil

		// A survivor campaigns; stickiness holds until the dead leader's
		// contact lapses, so the campaign retries.
		survivors := []int{(dead + 1) % members, (dead + 2) % members}
		leader = -1
		for deadline := time.Now().Add(15 * time.Second); leader < 0; {
			for _, cand := range survivors {
				if nodes[cand].Campaign() {
					leader = cand
					break
				}
			}
			if leader < 0 {
				if time.Now().After(deadline) {
					t.Fatalf("round %d: survivors failed to elect a leader", round)
				}
				time.Sleep(50 * time.Millisecond)
			}
		}

		// The holder self-heals onto the new leader — no manual re-dial.
		healDeadline := time.Now().Add(15 * time.Second)
		for {
			if _, err := holder.StatsSync(); err == nil {
				break
			}
			if time.Now().After(healDeadline) {
				t.Fatalf("round %d: holder never re-reached a leader", round)
			}
			time.Sleep(20 * time.Millisecond)
		}

		// Exactly-once reclaim: the same names, none lost, none added.
		held := holder.Held()
		if len(held) != holderGrants {
			for i, svc := range svcs {
				if svc != nil {
					t.Logf("debug: node %d positions %v", i, svc.Positions(nil))
				}
			}
			t.Fatalf("round %d: holder holds %d grants, want %d: %v", round, len(held), holderGrants, held)
		}
		for name := range held {
			if !wantNames[name] {
				t.Fatalf("round %d: holder holds name %d it was never granted", round, name)
			}
		}
		hc := holder.Counters()
		if hc.Lost != 0 {
			t.Fatalf("round %d: holder counters %+v — grants lost in failover", round, hc)
		}
		if hc.Reclaimed < prevCounters.Reclaimed+holderGrants {
			t.Fatalf("round %d: reclaimed %d after %d — the full grant set was not re-attached",
				round, hc.Reclaimed, prevCounters.Reclaimed)
		}
		if hc.Reconnects < prevCounters.Reconnects+1 || hc.Reconnects < uint64(round) {
			t.Fatalf("round %d: reconnects %d did not grow monotonically from %d",
				round, hc.Reconnects, prevCounters.Reconnects)
		}
		prevCounters = hc

		// Kill-9 restart: the dead member comes back from its surviving
		// WAL on its old addresses and is resynced by the leader. The
		// rebind retries briefly: the dead server's accept loop releases
		// the address asynchronously.
		rebind := func(addr string) net.Listener {
			t.Helper()
			for deadline := time.Now().Add(10 * time.Second); ; {
				ln, err := net.Listen("tcp", addr)
				if err == nil {
					return ln
				}
				if time.Now().After(deadline) {
					t.Fatalf("round %d: rebinding %s for node %d: %v", round, addr, dead, err)
				}
				time.Sleep(10 * time.Millisecond)
			}
		}
		startMember(dead, rebind(peers[dead].ReplAddr), rebind(clientAddrs[dead]))
	}

	close(stop)
	wg.Wait()

	// Every holder grant releases exactly once on the final leader; churn
	// stragglers (releases that timed out mid-failover) drain too.
	for name := range holder.Held() {
		table.cleared(name, "holder")
		if err := holder.ReleaseSync(name); err != nil {
			t.Fatalf("releasing reclaimed grant %d: %v", name, err)
		}
	}
	for name := range churnSess.Held() {
		table.cleared(name, "churn")
		if err := churnSess.ReleaseSync(name); err != nil {
			t.Fatalf("churn releasing straggler %d: %v", name, err)
		}
	}
	churnSess.Close()
	churnSess.Wait()
	if dups := table.duplicates(); len(dups) != 0 {
		t.Fatalf("duplicate grants across failovers: %v", dups)
	}

	// All three replicas — the twice-restarted members included — end
	// byte-identical.
	c := &cluster{t: t, peers: peers, sinks: sinkSets, svcs: svcs, nodes: nodes, logf: logf}
	c.waitConverged(leader)
	c.assertReplicasMatch()
}
