package repl

import (
	"testing"

	"ballsintoleaves/internal/namesvc/durable"
)

// metaScript is the state sequence the sweep drives through the store —
// the shapes persistMetaLocked actually writes: votes spent, terms
// adopted, freshness raised, the compaction floor advancing. Seq is
// assigned by the driver, as the node does.
var metaScript = []meta{
	{Term: 1, VotedFor: 0, LastRecTerm: 0, CompactFloor: 0},  // vote for self, term 1
	{Term: 1, VotedFor: 0, LastRecTerm: 1, CompactFloor: 0},  // freshness raised on first record
	{Term: 2, VotedFor: -1, LastRecTerm: 1, CompactFloor: 0}, // higher term observed
	{Term: 2, VotedFor: 1, LastRecTerm: 1, CompactFloor: 0},  // vote granted to node 1
	{Term: 2, VotedFor: 1, LastRecTerm: 2, CompactFloor: 0},  // freshness raised again
	{Term: 3, VotedFor: 0, LastRecTerm: 2, CompactFloor: 0},  // vote for self, term 3
	{Term: 3, VotedFor: 0, LastRecTerm: 3, CompactFloor: 7},  // leading: floor advances
	{Term: 3, VotedFor: 0, LastRecTerm: 3, CompactFloor: 19}, // floor advances again
}

// runMetaScript drives the script through a sinkMeta over the given sink
// until a save fails, returning the last acknowledged state.
func runMetaScript(store sinkMeta) (lastGood meta, inFlight meta, crashed bool) {
	lastGood = zeroMeta()
	for _, m := range metaScript {
		m.Seq = lastGood.Seq + 1
		if err := store.save(m); err != nil {
			return lastGood, m, true
		}
		lastGood = m
	}
	return lastGood, meta{}, false
}

// TestMetaCrashSweep kills the meta store at every possible write offset
// and checks what a restart recovers. The contract under any crash:
// recovery yields exactly the last acknowledged state or the single
// in-flight one — never a torn mixture, never an older state. That is
// the no-double-vote guarantee (Term/VotedFor cannot regress to a state
// where a spent vote looks unspent) and the no-resurrection guarantee
// (CompactFloor cannot regress behind a floor whose records were pruned,
// because pruning happens only after the save is acknowledged).
func TestMetaCrashSweep(t *testing.T) {
	// Measure the full run once; then crash at every unit 0..total.
	probe := durable.NewCrashBudget(-1)
	if _, _, crashed := runMetaScript(sinkMeta{sink: probe.Wrap(durable.NewMemSink())}); crashed {
		t.Fatal("unlimited budget crashed")
	}
	total := probe.Units()
	if total == 0 {
		t.Fatal("script consumed no units; the sweep would be vacuous")
	}

	for k := int64(0); k <= total; k++ {
		budget := durable.NewCrashBudget(k)
		inner := durable.NewMemSink()
		lastGood, inFlight, crashed := runMetaScript(sinkMeta{sink: budget.Wrap(inner)})
		if crashed != (k < total) {
			t.Fatalf("budget %d: crashed = %v, want %v", k, crashed, k < total)
		}

		// Recovery reads the torn disk the dead machine left behind.
		got, err := sinkMeta{sink: inner}.load()
		if err != nil {
			t.Fatalf("budget %d: recovery load: %v", k, err)
		}
		if got == lastGood {
			continue
		}
		if crashed && got == inFlight {
			// The dying write made it to disk whole before the sync was
			// acknowledged — "either old or new" allows new.
			continue
		}
		t.Fatalf("budget %d: recovered %+v, want %+v (acknowledged) or %+v (in flight)",
			k, got, lastGood, inFlight)
	}
}

// TestMetaCrashMonotonicity re-runs the sweep asserting the two derived
// invariants by themselves, so a regression names the broken property
// rather than a struct mismatch: the recovered sequence number and
// compaction floor never fall behind what was acknowledged.
func TestMetaCrashMonotonicity(t *testing.T) {
	probe := durable.NewCrashBudget(-1)
	runMetaScript(sinkMeta{sink: probe.Wrap(durable.NewMemSink())})

	for k := int64(0); k <= probe.Units(); k++ {
		budget := durable.NewCrashBudget(k)
		inner := durable.NewMemSink()
		lastGood, _, _ := runMetaScript(sinkMeta{sink: budget.Wrap(inner)})
		got, err := sinkMeta{sink: inner}.load()
		if err != nil {
			t.Fatalf("budget %d: recovery load: %v", k, err)
		}
		if got.Seq < lastGood.Seq {
			t.Fatalf("budget %d: recovered seq %d behind acknowledged %d — a spent vote could be respent",
				k, got.Seq, lastGood.Seq)
		}
		if got.CompactFloor < lastGood.CompactFloor {
			t.Fatalf("budget %d: recovered floor %d behind acknowledged %d — pruned records would resurrect",
				k, got.CompactFloor, lastGood.CompactFloor)
		}
	}
}
