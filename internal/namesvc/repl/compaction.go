package repl

import (
	"time"

	"ballsintoleaves/internal/namesvc"
)

// The leader tick runs two maintenance duties on the heartbeat cadence —
// deliberately independent of the per-shard snapshot cycle:
//
// Check-quorum: a leader that has not heard from a quorum of followers
// (counting itself) within one election timeout steps down on its own,
// fencing in-flight commits, instead of lingering split-brained on the
// minority side of a partition. The same freshness is the leader's read
// lease: stats/journal reads are served only while it holds, which is
// what makes leader reads linearizable — a deposed-but-unaware leader
// stops answering reads within one election timeout of losing its
// followers, before a new leader can have been elected elsewhere.
//
// Compaction: the committed-and-applied-everywhere prefix of the record
// queue is pruned continuously (bounded by the commit index and every
// live follower link's acknowledged index), and a hard retention bound
// caps the queue regardless of unreachable laggards, which re-attach
// through the ordinary snapshot+tail path on return. The floor persists
// in repl-meta *before* the prefix is dropped, so a recovered node can
// never claim records it discarded.

// leaderTick owns one leadership's periodic duties; it exits when the
// leader state is fenced or the node stops.
func (n *Node) leaderTick(l *leaderState) {
	defer n.wg.Done()
	t := time.NewTicker(n.hbInterval)
	defer t.Stop()
	for {
		select {
		case <-l.stopc:
			return
		case <-n.stop:
			return
		case <-t.C:
		}
		n.mu.Lock()
		if l.fenced || n.closed {
			n.mu.Unlock()
			return
		}
		if !n.cfg.LegacyElections && !n.leaseFreshLocked(l) {
			n.electionReason = "check-quorum-stepdown"
			n.logf("repl: node %d stepping down: no quorum heard for %v (term %d)",
				n.cfg.NodeID, n.cfg.ElectionTimeout, l.term)
			n.fenceLocked(l, true)
			n.mu.Unlock()
			return
		}
		n.compactLocked(l)
		n.mu.Unlock()
	}
}

// leaseFreshLocked reports whether a quorum of the cluster (including
// this leader) has been heard from within one election timeout. n.mu
// must be held and l must be n's leader state.
func (n *Node) leaseFreshLocked(l *leaderState) bool {
	fresh := 1 // self
	for id := range n.cfg.Peers {
		if id == n.cfg.NodeID {
			continue
		}
		if time.Since(l.heard[id]) < n.cfg.ElectionTimeout {
			fresh++
		}
	}
	return fresh >= n.quorum
}

// compactLocked advances the compaction floor and prunes the queue
// prefix behind it. The floor is monotone; it is persisted before any
// record is dropped, and a persist failure skips the prune (retried next
// tick) rather than discarding records the durable floor doesn't cover.
// n.mu must be held.
func (n *Node) compactLocked(l *leaderState) {
	// Committed and applied everywhere reachable: bounded by the commit
	// index and by each live follower link's acknowledged index.
	target := l.commit
	for id := range l.links {
		if m := l.match[id]; m < target {
			target = m
		}
	}
	// Hard retention bound: keep at most RetainRecords behind the head,
	// unreachable laggards notwithstanding (they re-attach via snapshot).
	retain := uint64(n.cfg.RetainRecords)
	if qlen := l.nextIdx - l.baseIdx; qlen > retain {
		if hard := l.nextIdx - 1 - retain; hard > target {
			target = hard
		}
	}
	// Emergency front-drops (maxLeaderQueue) may already have discarded a
	// prefix the floor doesn't record yet; fold them in.
	if l.baseIdx > 0 && target < l.baseIdx-1 {
		target = l.baseIdx - 1
	}
	if target <= n.compactFloor {
		return
	}
	old := n.compactFloor
	n.compactFloor = target
	if n.persistMetaLocked() != nil {
		n.compactFloor = old
		return
	}
	if drop := int(target + 1 - l.baseIdx); drop > 0 {
		nq := copy(l.queue, l.queue[drop:])
		for i := nq; i < len(l.queue); i++ {
			l.queue[i] = queuedRecord{}
		}
		l.queue = l.queue[:nq]
		l.baseIdx = target + 1
	}
}

// ReadLeaseValid implements the Server's read-lease extension: a leader
// answers stats/journal reads only while its check-quorum lease is
// fresh. Followers always serve (their reads are locally consistent, not
// linearizable — clients wanting linearizable reads use the leader), and
// LegacyElections disables the gate entirely.
func (n *Node) ReadLeaseValid() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	l := n.ldr
	if l == nil || n.cfg.LegacyElections {
		return true
	}
	return n.leaseFreshLocked(l)
}

// WireReplStats implements the Server's stats extension: the node's
// term, role, the reason for its last term/role change, and the
// compaction floor — what chaos checkers assert term stability against
// instead of grepping logs.
func (n *Node) WireReplStats() (term uint64, role namesvc.Role, reason string, compactFloor uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	role = namesvc.RoleFollower
	if n.ldr != nil {
		role = namesvc.RoleLeader
	}
	return n.term, role, n.electionReason, n.compactFloor
}
