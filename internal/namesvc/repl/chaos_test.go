package repl

import (
	"fmt"
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"ballsintoleaves/internal/faultnet"
	"ballsintoleaves/internal/namesvc"
)

// grantTable is the cross-session duplicate detector. The discipline is
// free-at-release-submit: a name is cleared from the table before its
// release frame is handed to the session, because from that moment the
// server may free and re-grant it at any time — counting it held past
// that point would flag legitimate re-grants as duplicates. A revocation
// (OnGrantLost) also clears, since the server has taken the name back.
// With that discipline, any grant of a name still in the table is a true
// duplicate: two live holders acknowledged for one name.
type grantTable struct {
	mu    sync.Mutex
	owner map[int]string // name -> holder label
	dups  []string
}

func newGrantTable() *grantTable {
	return &grantTable{owner: make(map[int]string)}
}

func (gt *grantTable) granted(name int, who string) {
	gt.mu.Lock()
	defer gt.mu.Unlock()
	if prev, ok := gt.owner[name]; ok {
		gt.dups = append(gt.dups, fmt.Sprintf("name %d granted to %s while held by %s", name, who, prev))
	}
	gt.owner[name] = who
}

func (gt *grantTable) cleared(name int, who string) {
	gt.mu.Lock()
	defer gt.mu.Unlock()
	if gt.owner[name] == who {
		delete(gt.owner, name)
	}
}

func (gt *grantTable) duplicates() []string {
	gt.mu.Lock()
	defer gt.mu.Unlock()
	return append([]string(nil), gt.dups...)
}

// TestChaosLeaderPartitionUnderSessionLoad is the acceptance gate for the
// chaos lab: a 3-node cluster serving real wire traffic through faultnet
// proxies, Session clients churning grants, and the compiled
// partition-leader schedule cutting the leader off mid-load — repl links
// and client link both. A follower is campaigned while the partition
// holds. No client ever re-dials by hand. At the end: zero duplicate
// grants, every pre-fault acknowledged grant still held and releasable on
// the new leader, all three replicas byte-identical after heal, and the
// fired fault sequence equal to the schedule compiled twice from the same
// seed.
func TestChaosLeaderPartitionUnderSessionLoad(t *testing.T) {
	const (
		chaosSeed     = 42
		chaosDuration = 2 * time.Second
		holderGrants  = 8
	)

	// Client-facing listeners and their fault proxies come first: the
	// canonical ClientAddr of each node — the redirect hint — must be the
	// proxied address sessions actually dial.
	clientLns := make([]net.Listener, 3)
	clientLinks := make([]*faultnet.Link, 3)
	clientAddrs := make([]string, 3)
	for i := range clientLns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("binding client listener %d: %v", i, err)
		}
		clientLns[i] = ln
		clientLinks[i] = faultnet.NewLink(fmt.Sprintf("client-%d", i))
		p, err := faultnet.NewProxy("127.0.0.1:0", ln.Addr().String(), clientLinks[i])
		if err != nil {
			t.Fatalf("starting client proxy %d: %v", i, err)
		}
		t.Cleanup(func() { p.Close() })
		clientAddrs[i] = p.Addr()
	}

	fc := startFaultClusterWithClients(t, 3, clientAddrs)
	c := fc.cluster
	for i := range c.nodes {
		srv, err := namesvc.NewServer(namesvc.ServerConfig{
			Service:       c.svcs[i],
			Gate:          c.nodes[i],
			EpochInterval: 10 * time.Millisecond,
			IOTimeout:     2 * time.Second,
			Logf:          c.logf,
		})
		if err != nil {
			t.Fatalf("starting server %d: %v", i, err)
		}
		c.nodes[i].SetServer(srv)
		go srv.Serve(clientLns[i])
		t.Cleanup(func() { srv.Close() })
	}
	if !c.nodes[0].Campaign() {
		t.Fatal("node 0 failed to take leadership")
	}

	table := newGrantTable()
	sessionCfg := func(label string, seed uint64) namesvc.SessionConfig {
		return namesvc.SessionConfig{
			Addrs:          clientAddrs,
			Client:         namesvc.ClientConfig{Timeout: 300 * time.Millisecond},
			OpTimeout:      500 * time.Millisecond,
			ConnectTimeout: 10 * time.Second,
			BackoffBase:    10 * time.Millisecond,
			BackoffMax:     100 * time.Millisecond,
			Seed:           seed,
			OnGrantLost:    func(client uint64, name int) { table.cleared(name, label) },
		}
	}

	// The holder session acquires before the fault and holds across it:
	// its grants are the "every acknowledged grant survives failover"
	// half of the invariant. A keepalive drives ops so the session
	// notices dead connections and self-heals without caller traffic.
	holder, err := namesvc.DialSession(sessionCfg("holder", 1))
	if err != nil {
		t.Fatalf("dialing holder session: %v", err)
	}
	defer func() { holder.Close(); holder.Wait() }()
	heldNames := make([]int, 0, holderGrants)
	for i := 0; i < holderGrants; i++ {
		g, err := holder.AcquireSync(uint64(101 + i))
		if err != nil {
			t.Fatalf("holder acquire %d: %v", i, err)
		}
		table.granted(g.Name, "holder")
		heldNames = append(heldNames, g.Name)
	}

	// Churn workers acquire and release continuously through every fault.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	churn := make([]*namesvc.Session, 2)
	for w := range churn {
		label := fmt.Sprintf("churn-%d", w)
		s, err := namesvc.DialSession(sessionCfg(label, uint64(10+w)))
		if err != nil {
			t.Fatalf("dialing %s: %v", label, err)
		}
		churn[w] = s
		wg.Add(1)
		go func(w int, s *namesvc.Session, label string) {
			defer wg.Done()
			client := uint64((w + 1) * 100000)
			for {
				select {
				case <-stop:
					return
				default:
				}
				client++
				g, err := s.AcquireSync(client)
				if err != nil {
					continue // timeouts and redirects during faults
				}
				table.granted(g.Name, label)
				table.cleared(g.Name, label) // free-at-release-submit
				s.ReleaseSync(g.Name)
			}
		}(w, s, label)
	}
	wg.Add(1)
	go func() { // holder keepalive
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(50 * time.Millisecond):
				holder.StatsSync()
			}
		}
	}()

	// Compile the fault schedule and drive it. The applier maps the
	// scenario's "leader" target onto node 0 — repl links and client
	// link together, so the leader is cut off from peers and clients at
	// the same instant, the way a real network cut behaves.
	events, err := faultnet.Compile("partition-leader", chaosDuration, chaosSeed)
	if err != nil {
		t.Fatalf("compiling schedule: %v", err)
	}
	partitioned := make(chan struct{})
	driver := faultnet.NewDriver(events, faultnet.ApplierFunc(func(e faultnet.Event) {
		switch e.Action {
		case faultnet.ActPartition:
			fc.partitionNode(0)
			clientLinks[0].Partition(e.OneWay)
			close(partitioned)
		case faultnet.ActHeal:
			fc.healNode(0)
			clientLinks[0].Heal()
		}
	}), c.logf)
	driverDone := make(chan struct{})
	go func() { driver.Run(stop); close(driverDone) }()

	// While the partition holds, the majority elects a new leader. The
	// fresher follower wins; a split vote resolves on retry.
	select {
	case <-partitioned:
	case <-time.After(10 * time.Second):
		t.Fatal("schedule never fired the partition")
	}
	newLeader := -1
	for deadline := time.Now().Add(10 * time.Second); newLeader < 0; {
		for _, cand := range []int{1, 2} {
			if c.nodes[cand].Campaign() {
				newLeader = cand
				break
			}
		}
		if newLeader < 0 {
			if time.Now().After(deadline) {
				t.Fatal("majority failed to elect a leader during the partition")
			}
			time.Sleep(50 * time.Millisecond)
		}
	}

	select {
	case <-driverDone:
	case <-time.After(30 * time.Second):
		t.Fatal("schedule driver did not finish")
	}
	// Load continues past the heal so the old leader's fencing and
	// resync happen under traffic, then the churn drains.
	time.Sleep(500 * time.Millisecond)
	close(stop)
	wg.Wait()

	// Invariant: zero duplicate grants across every session and fault.
	if dups := table.duplicates(); len(dups) != 0 {
		t.Fatalf("duplicate grants under chaos: %v", dups)
	}

	// Invariant: every pre-fault acknowledged grant was reclaimed onto
	// the new leader — none lost, all still held, all releasable.
	waitHolder := time.Now().Add(10 * time.Second)
	for {
		if _, err := holder.StatsSync(); err == nil {
			break
		}
		if time.Now().After(waitHolder) {
			t.Fatal("holder session never re-reached a leader")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if hc := holder.Counters(); hc.Lost != 0 {
		t.Fatalf("holder counters %+v: pre-fault grants lost in failover", hc)
	}
	if held := holder.Held(); len(held) != holderGrants {
		t.Fatalf("holder holds %d grants, want %d: %v", len(held), holderGrants, held)
	}
	for _, name := range heldNames {
		table.cleared(name, "holder")
		if err := holder.ReleaseSync(name); err != nil {
			t.Fatalf("releasing reclaimed grant %d on the new leader: %v", name, err)
		}
	}
	// Churn stragglers: releases that timed out mid-fault are still held
	// by their sessions; they must all be releasable too.
	for w, s := range churn {
		for name := range s.Held() {
			table.cleared(name, fmt.Sprintf("churn-%d", w))
			if err := s.ReleaseSync(name); err != nil {
				t.Fatalf("churn-%d releasing straggler %d: %v", w, name, err)
			}
		}
		s.Close()
		s.Wait()
	}

	// Invariant: after heal every replica — the fenced ex-leader
	// included — is byte-identical.
	c.waitConverged(newLeader)
	c.assertReplicasMatch()

	// Invariant: the fault sequence is seed-deterministic — the same
	// compile yields the same events, and what fired is what compiled.
	recompiled, err := faultnet.Compile("partition-leader", chaosDuration, chaosSeed)
	if err != nil {
		t.Fatalf("recompiling schedule: %v", err)
	}
	if !reflect.DeepEqual(events, recompiled) {
		t.Fatalf("same seed compiled different schedules:\n%v\n%v", events, recompiled)
	}
	if fired := driver.Fired(); !reflect.DeepEqual(fired, events) {
		t.Fatalf("fired events diverge from the schedule:\nfired %v\nwant  %v", fired, events)
	}
}
