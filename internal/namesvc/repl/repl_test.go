package repl

import (
	"net"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"ballsintoleaves/internal/namesvc"
	"ballsintoleaves/internal/namesvc/durable"
	"ballsintoleaves/internal/wire"
)

const (
	testShards   = 2
	testShardCap = 64
	testSeed     = 42
)

// testLogf wraps t.Logf so background goroutines that outlive the test
// body (stream managers winding down during cleanup) cannot log after
// the test has completed.
func testLogf(t *testing.T) func(string, ...any) {
	var mu sync.Mutex
	done := false
	t.Cleanup(func() { mu.Lock(); done = true; mu.Unlock() })
	return func(format string, args ...any) {
		mu.Lock()
		defer mu.Unlock()
		if !done {
			t.Logf(format, args...)
		}
	}
}

func memSinks() []durable.Sink {
	sinks := make([]durable.Sink, testShards)
	for i := range sinks {
		sinks[i] = durable.NewMemSink()
	}
	return sinks
}

// openReplica opens a durable service over sinks with the cluster test
// configuration. Reopening over the same sinks models a process restart.
func openReplica(t *testing.T, sinks []durable.Sink) *namesvc.Service {
	t.Helper()
	svc, err := namesvc.Open(namesvc.Config{
		Shards:       testShards,
		ShardCap:     testShardCap,
		Seed:         testSeed,
		Journal:      true,
		JournalLimit: 1024,
		Durable: &namesvc.Durability{
			Sinks:         sinks,
			Fsync:         namesvc.FsyncGroup,
			SnapshotEvery: 8,
		},
	})
	if err != nil {
		t.Fatalf("opening replica service: %v", err)
	}
	return svc
}

// openReference opens the volatile single-service reference: identical
// allocation configuration, no durability, no replication.
func openReference(t *testing.T) *namesvc.Service {
	t.Helper()
	svc, err := namesvc.Open(namesvc.Config{
		Shards:       testShards,
		ShardCap:     testShardCap,
		Seed:         testSeed,
		Journal:      true,
		JournalLimit: 1024,
	})
	if err != nil {
		t.Fatalf("opening reference service: %v", err)
	}
	return svc
}

// cluster is an in-process replication cluster: one Service + Node per
// member, replication listeners on loopback ephemeral ports, elections
// manual so tests pick leaders deterministically.
type cluster struct {
	t     *testing.T
	peers []PeerSpec
	sinks [][]durable.Sink
	svcs  []*namesvc.Service
	nodes []*Node
	logf  func(string, ...any)
}

func startCluster(t *testing.T, size int, opts ...func(*Config)) *cluster {
	t.Helper()
	c := &cluster{t: t, logf: testLogf(t)}
	lns := make([]net.Listener, size)
	for i := 0; i < size; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("binding replication listener: %v", err)
		}
		lns[i] = ln
		c.peers = append(c.peers, PeerSpec{
			ReplAddr:   ln.Addr().String(),
			ClientAddr: "client-" + ln.Addr().String(),
		})
	}
	for i := 0; i < size; i++ {
		sinks := memSinks()
		svc := openReplica(t, sinks)
		cfg := Config{
			NodeID:          i,
			Peers:           c.peers,
			Service:         svc,
			Listener:        lns[i],
			ElectionTimeout: 200 * time.Millisecond,
			ManualElections: true,
			Logf:            c.logf,
		}
		for _, opt := range opts {
			opt(&cfg)
		}
		node, err := Start(cfg)
		if err != nil {
			t.Fatalf("starting node %d: %v", i, err)
		}
		c.sinks = append(c.sinks, sinks)
		c.svcs = append(c.svcs, svc)
		c.nodes = append(c.nodes, node)
	}
	t.Cleanup(c.close)
	return c
}

// legacyElections is the startCluster option that restores the
// pre-hardening election behavior (no pre-vote, no stickiness, no
// check-quorum) for tests pinning the legacy differential.
func legacyElections(cfg *Config) { cfg.LegacyElections = true }

func (c *cluster) close() {
	for _, n := range c.nodes {
		if n != nil {
			n.Close()
		}
	}
	for _, s := range c.svcs {
		if s != nil {
			s.Close()
		}
	}
}

// waitConverged polls until every live replica's position vector equals
// the leader's — stable across two consecutive leader reads, so the
// leader did not advance mid-check.
func (c *cluster) waitConverged(leader int) {
	c.t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		want := c.svcs[leader].Positions(nil)
		ok := true
		for i, svc := range c.svcs {
			if i == leader || svc == nil {
				continue
			}
			if !positionsEqual(svc.Positions(nil), want) {
				ok = false
				break
			}
		}
		if ok && positionsEqual(c.svcs[leader].Positions(nil), want) {
			return
		}
		if time.Now().After(deadline) {
			for i, svc := range c.svcs {
				if svc != nil {
					c.t.Logf("node %d positions: %v", i, svc.Positions(nil))
				}
			}
			c.t.Fatalf("replicas did not converge on leader %d's positions %v", leader, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// assertReplicasMatch requires every live replica to be byte-identical to
// the first live one: per-shard epochs, digests, and journal windows.
func (c *cluster) assertReplicasMatch() {
	c.t.Helper()
	base := -1
	for i, svc := range c.svcs {
		if svc == nil {
			continue
		}
		if base < 0 {
			base = i
			continue
		}
		if got, want := svc.Digest(), c.svcs[base].Digest(); got != want {
			c.t.Fatalf("node %d digest %#x != node %d digest %#x", i, got, base, want)
		}
		for shard := 0; shard < testShards; shard++ {
			if got, want := svc.ShardEpoch(shard), c.svcs[base].ShardEpoch(shard); got != want {
				c.t.Fatalf("node %d shard %d epoch %d != node %d epoch %d", i, shard, got, base, want)
			}
			if got, want := svc.ShardDigest(shard), c.svcs[base].ShardDigest(shard); got != want {
				c.t.Fatalf("node %d shard %d digest %#x != node %d digest %#x", i, shard, got, base, want)
			}
			if got, want := svc.ShardJournal(shard), c.svcs[base].ShardJournal(shard); !reflect.DeepEqual(got, want) {
				c.t.Fatalf("node %d shard %d journal diverges from node %d:\n got %v\nwant %v",
					i, shard, base, got, want)
			}
		}
	}
}

// mustCommit waits for the shard's records to quorum-commit, bounded so a
// broken cluster fails the test instead of hanging it.
func mustCommit(t *testing.T, n *Node, shard int) {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- n.WaitCommitted(shard) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("WaitCommitted(%d): %v", shard, err)
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("WaitCommitted(%d) stalled", shard)
	}
}

// closeEpochs closes one epoch on every shard directly on a leader's
// service and waits for the records to commit.
func closeEpochs(t *testing.T, c *cluster, leader int) {
	t.Helper()
	for shard := 0; shard < testShards; shard++ {
		if _, err := c.svcs[leader].CloseEpoch(shard); err != nil {
			t.Fatalf("closing epoch on shard %d: %v", shard, err)
		}
		mustCommit(t, c.nodes[leader], shard)
	}
}

// TestSingleNodeCommitsAlone: a one-member cluster is its own quorum —
// leadership on demand, every record committed by the leader's own
// durable copy.
func TestSingleNodeCommitsAlone(t *testing.T) {
	c := startCluster(t, 1)
	if !c.nodes[0].Campaign() {
		t.Fatal("single node failed to elect itself")
	}
	if !c.nodes[0].IsLeader() {
		t.Fatal("campaign won but IsLeader is false")
	}
	for client := uint64(1); client <= 8; client++ {
		if _, err := c.svcs[0].Acquire(client, nil); err != nil {
			t.Fatalf("acquire %d: %v", client, err)
		}
	}
	closeEpochs(t, c, 0)
	role, term, commit := c.nodes[0].Status()
	if role != namesvc.RoleLeader || term != 1 {
		t.Fatalf("status = (%v, %d, %d), want leader of term 1", role, term, commit)
	}
	if commit == 0 {
		t.Fatal("epoch records produced but commit index is 0")
	}
}

// TestClusterMatchesVolatileReference is the differential gate: the same
// client trace driven through a real Server+Client against a 3-replica
// cluster, and mirrored directly onto a single volatile Service, must
// produce identical grants — and leave the leader, both followers, and
// the reference with identical ledgers, digests, and journals.
func TestClusterMatchesVolatileReference(t *testing.T) {
	c := startCluster(t, 3)
	if !c.nodes[0].Campaign() {
		t.Fatal("node 0 failed to take leadership")
	}

	srv, err := namesvc.NewServer(namesvc.ServerConfig{
		Service:      c.svcs[0],
		Gate:         c.nodes[0],
		ManualEpochs: true,
		Logf:         c.logf,
	})
	if err != nil {
		t.Fatalf("starting server: %v", err)
	}
	c.nodes[0].SetServer(srv)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("binding client listener: %v", err)
	}
	go srv.Serve(ln)
	defer srv.Close()

	cl, err := namesvc.Dial(ln.Addr().String(), namesvc.ClientConfig{})
	if err != nil {
		t.Fatalf("dialing leader: %v", err)
	}
	defer cl.Close()
	if cl.Role() != namesvc.RoleLeader {
		t.Fatalf("leader welcome role = %v, want %v", cl.Role(), namesvc.RoleLeader)
	}

	ref := openReference(t)
	defer ref.Close()

	var mu sync.Mutex
	clusterGrants := make(map[uint64]namesvc.Grant)
	refGrants := make(map[uint64]namesvc.Grant)

	acquireBoth := func(clients []uint64) {
		t.Helper()
		for _, client := range clients {
			client := client
			err := cl.Acquire(client, func(g namesvc.Grant, err error) {
				if err != nil {
					t.Errorf("cluster acquire %d: %v", client, err)
					return
				}
				mu.Lock()
				clusterGrants[client] = g
				mu.Unlock()
			})
			if err != nil {
				t.Fatalf("submitting acquire %d: %v", client, err)
			}
		}
		for _, client := range clients {
			if _, err := ref.Acquire(client, nil); err != nil {
				t.Fatalf("reference acquire %d: %v", client, err)
			}
		}
	}
	epochBoth := func() {
		t.Helper()
		for shard := 0; shard < testShards; shard++ {
			clEpoch, _, err := cl.EpochSync(shard)
			if err != nil {
				t.Fatalf("cluster epoch on shard %d: %v", shard, err)
			}
			grants, err := ref.CloseEpoch(shard)
			if err != nil {
				t.Fatalf("reference epoch on shard %d: %v", shard, err)
			}
			for _, g := range grants {
				refGrants[g.Client] = g
			}
			if refEpoch := ref.ShardEpoch(shard); clEpoch != refEpoch {
				t.Fatalf("shard %d epoch: cluster %d, reference %d", shard, clEpoch, refEpoch)
			}
		}
	}

	// Round 1: a batch of acquires granted in one epoch per shard.
	round1 := make([]uint64, 0, 24)
	for client := uint64(1); client <= 24; client++ {
		round1 = append(round1, client)
	}
	acquireBoth(round1)
	epochBoth()

	// Round 2: half the holders release; the released names recirculate.
	type holding struct {
		client uint64
		name   int
	}
	mu.Lock()
	released := make([]holding, 0, len(round1)/2)
	for i, client := range round1 {
		if i%2 == 0 {
			released = append(released, holding{client, clusterGrants[client].Name})
		}
	}
	mu.Unlock()
	for _, h := range released {
		if err := cl.ReleaseSync(h.name); err != nil {
			t.Fatalf("cluster release of name %d: %v", h.name, err)
		}
		if err := ref.Release(h.client, h.name); err != nil {
			t.Fatalf("reference release of name %d: %v", h.name, err)
		}
	}

	// Round 3: fresh clients compete for the recirculated names.
	round3 := make([]uint64, 0, 12)
	for client := uint64(101); client <= 112; client++ {
		round3 = append(round3, client)
	}
	acquireBoth(round3)
	epochBoth()

	// The trace is identical, so the grants must be too — same name,
	// shard, and epoch, client by client. (Grant frames on the client
	// wire carry only those three fields; the client id is the map key.)
	mu.Lock()
	defer mu.Unlock()
	if len(clusterGrants) != len(refGrants) {
		t.Fatalf("cluster granted %d clients, reference %d", len(clusterGrants), len(refGrants))
	}
	for client, g := range clusterGrants {
		rg, ok := refGrants[client]
		if !ok || g.Name != rg.Name || g.Shard != rg.Shard || g.Epoch != rg.Epoch {
			t.Fatalf("client %d: cluster grant %+v, reference grant %+v", client, g, rg)
		}
	}

	// Every replica — leader included — must be byte-identical to the
	// unreplicated reference.
	c.waitConverged(0)
	c.assertReplicasMatch()
	if got, want := c.svcs[0].Digest(), ref.Digest(); got != want {
		t.Fatalf("cluster digest %#x != reference digest %#x", got, want)
	}
	for shard := 0; shard < testShards; shard++ {
		if got, want := c.svcs[0].ShardDigest(shard), ref.ShardDigest(shard); got != want {
			t.Fatalf("shard %d: cluster digest %#x != reference digest %#x", shard, got, want)
		}
		if got, want := c.svcs[0].ShardJournal(shard), ref.ShardJournal(shard); !reflect.DeepEqual(got, want) {
			t.Fatalf("shard %d journal diverges from reference:\n got %v\nwant %v", shard, got, want)
		}
	}
}

// TestFailoverFencesDeposedLeader: a new campaign deposes the old leader
// mid-flight — its commit waiters fail, it stops admitting writes and
// redirects to the new leader, and the cluster reconverges under the new
// term. This deliberately pins the *legacy* election path: with pre-vote
// and leader stickiness a healthy leader cannot be deposed by a fresh
// campaign at all (see TestPreVoteProtectsHealthyLeader), so the fencing
// mechanics are exercised through the one mode that still permits the
// deposal.
func TestFailoverFencesDeposedLeader(t *testing.T) {
	c := startCluster(t, 3, legacyElections)
	if !c.nodes[0].Campaign() {
		t.Fatal("node 0 failed to take leadership")
	}
	for client := uint64(1); client <= 16; client++ {
		if _, err := c.svcs[0].Acquire(client, nil); err != nil {
			t.Fatalf("acquire %d: %v", client, err)
		}
	}
	closeEpochs(t, c, 0)
	c.waitConverged(0)

	// Depose: node 1 campaigns at a higher term. Its freshness equals the
	// converged cluster's, so it must win.
	if !c.nodes[1].Campaign() {
		t.Fatal("converged follower failed to take leadership")
	}
	deadline := time.Now().Add(5 * time.Second)
	for c.nodes[0].IsLeader() {
		if time.Now().After(deadline) {
			t.Fatal("deposed leader still claims leadership")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := c.nodes[0].WaitCommitted(0); err == nil {
		t.Fatal("WaitCommitted on the deposed leader returned nil")
	}
	if admit, _ := c.nodes[0].AdmitWrites(); admit {
		t.Fatal("deposed leader still admits writes")
	}
	// Once the new leader's stream reaches node 0, the redirect hint
	// names node 1's client address.
	for {
		role, hint := c.nodes[0].WireRole()
		if role == namesvc.RoleFollower && hint == c.peers[1].ClientAddr {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("node 0 reports (%v, %q), want follower redirecting to %q",
				role, hint, c.peers[1].ClientAddr)
		}
		time.Sleep(2 * time.Millisecond)
	}

	// The new leader serves: fresh clients, fresh epochs, quorum commits.
	for client := uint64(201); client <= 216; client++ {
		if _, err := c.svcs[1].Acquire(client, nil); err != nil {
			t.Fatalf("acquire %d on new leader: %v", client, err)
		}
	}
	closeEpochs(t, c, 1)
	c.waitConverged(1)
	c.assertReplicasMatch()
}

// TestFollowerCatchUpAfterRestart: a follower that was down while the
// cluster moved on restarts from its own WAL, rejoins, and is resynced —
// snapshot plus stream tail — to byte-identical state.
func TestFollowerCatchUpAfterRestart(t *testing.T) {
	c := startCluster(t, 3)
	if !c.nodes[0].Campaign() {
		t.Fatal("node 0 failed to take leadership")
	}
	for client := uint64(1); client <= 12; client++ {
		if _, err := c.svcs[0].Acquire(client, nil); err != nil {
			t.Fatalf("acquire %d: %v", client, err)
		}
	}
	closeEpochs(t, c, 0)
	c.waitConverged(0)

	// Node 2 goes down; a quorum of two keeps committing without it.
	c.nodes[2].Close()
	c.svcs[2].Close()
	c.nodes[2], c.svcs[2] = nil, nil
	for client := uint64(101); client <= 124; client++ {
		if _, err := c.svcs[0].Acquire(client, nil); err != nil {
			t.Fatalf("acquire %d with node 2 down: %v", client, err)
		}
	}
	closeEpochs(t, c, 0)

	// Restart node 2 over the same sinks (its WAL survives) and the same
	// replication address. The leader's stream manager re-attaches it.
	svc2 := openReplica(t, c.sinks[2])
	ln, err := net.Listen("tcp", c.peers[2].ReplAddr)
	if err != nil {
		t.Fatalf("rebinding node 2's replication address: %v", err)
	}
	node2, err := Start(Config{
		NodeID:          2,
		Peers:           c.peers,
		Service:         svc2,
		Listener:        ln,
		ElectionTimeout: 200 * time.Millisecond,
		ManualElections: true,
		Logf:            c.logf,
	})
	if err != nil {
		t.Fatalf("restarting node 2: %v", err)
	}
	c.svcs[2], c.nodes[2] = svc2, node2

	// More traffic lands after the rejoin; everything converges.
	for client := uint64(201); client <= 208; client++ {
		if _, err := c.svcs[0].Acquire(client, nil); err != nil {
			t.Fatalf("acquire %d after rejoin: %v", client, err)
		}
	}
	closeEpochs(t, c, 0)
	c.waitConverged(0)
	c.assertReplicasMatch()
}

// TestStaleCandidateLosesElection: a follower missing quorum-committed
// records must not collect a quorum of votes — the freshness rule at
// work.
func TestStaleCandidateLosesElection(t *testing.T) {
	c := startCluster(t, 3)
	if !c.nodes[0].Campaign() {
		t.Fatal("node 0 failed to take leadership")
	}
	// Node 2 is partitioned off (closed) before any records exist; its
	// slots are cleared so convergence checks cover only the live pair.
	c.nodes[2].Close()
	downSvc := c.svcs[2]
	defer downSvc.Close()
	c.nodes[2], c.svcs[2] = nil, nil
	for client := uint64(1); client <= 8; client++ {
		if _, err := c.svcs[0].Acquire(client, nil); err != nil {
			t.Fatalf("acquire %d: %v", client, err)
		}
	}
	closeEpochs(t, c, 0)
	c.waitConverged(0) // nodes 0 and 1 hold the committed records; node 2 does not

	// Restart node 2's replication endpoint only — same empty service, so
	// it is strictly staler than the quorum.
	ln, err := net.Listen("tcp", c.peers[2].ReplAddr)
	if err != nil {
		t.Fatalf("rebinding node 2: %v", err)
	}
	staleSvc := openReference(t)
	defer staleSvc.Close()
	stale, err := Start(Config{
		NodeID:          2,
		Peers:           c.peers,
		Service:         staleSvc,
		Listener:        ln,
		ElectionTimeout: 200 * time.Millisecond,
		ManualElections: true,
		Logf:            c.logf,
	})
	if err != nil {
		t.Fatalf("restarting node 2: %v", err)
	}
	defer stale.Close()

	if stale.Campaign() {
		t.Fatal("a candidate missing quorum-committed records won an election")
	}
}

func TestWireRoundTrips(t *testing.T) {
	var w wire.Writer

	appendHello(&w, 7, 2)
	if term, id, err := decodeHello(w.Bytes()); err != nil || term != 7 || id != 2 {
		t.Fatalf("hello round-trip: (%d, %d, %v)", term, id, err)
	}

	w.Reset()
	appendHelloAck(&w, 7, 3, []uint64{10, 0, 42})
	term, rec, pos, err := decodeHelloAck(w.Bytes())
	if err != nil || term != 7 || rec != 3 || !positionsEqual(pos, []uint64{10, 0, 42}) {
		t.Fatalf("hello-ack round-trip: (%d, %d, %v, %v)", term, rec, pos, err)
	}

	// A hello-ack claiming more positions than its bytes could hold must
	// be rejected, not allocated.
	w.Reset()
	w.Byte(kHelloAck)
	w.Uvarint(7)
	w.Uvarint(3)
	w.Uvarint(1 << 40)
	if _, _, _, err := decodeHelloAck(w.Bytes()); err == nil {
		t.Fatal("oversized hello-ack position count accepted")
	}

	w.Reset()
	appendVoteReq(&w, 9, 1, 4, 1234)
	if term, id, rec, p, err := decodeVoteReq(w.Bytes()); err != nil || term != 9 || id != 1 || rec != 4 || p != 1234 {
		t.Fatalf("vote-req round-trip: (%d, %d, %d, %d, %v)", term, id, rec, p, err)
	}

	for _, granted := range []bool{true, false} {
		w.Reset()
		appendVoteResp(&w, 9, granted)
		if term, g, err := decodeVoteResp(w.Bytes()); err != nil || term != 9 || g != granted {
			t.Fatalf("vote-resp round-trip: (%d, %v, %v)", term, g, err)
		}
	}

	w.Reset()
	appendSnap(&w, 5, 1, []byte("shard-image"))
	if term, shard, payload, err := decodeSnap(w.Bytes()); err != nil || term != 5 || shard != 1 || string(payload) != "shard-image" {
		t.Fatalf("snap round-trip: (%d, %d, %q, %v)", term, shard, payload, err)
	}

	w.Reset()
	appendSnapEnd(&w, 5, 17, 12, 4)
	if term, idx, commit, rec, err := decodeSnapEnd(w.Bytes()); err != nil || term != 5 || idx != 17 || commit != 12 || rec != 4 {
		t.Fatalf("snap-end round-trip: (%d, %d, %d, %d, %v)", term, idx, commit, rec, err)
	}

	w.Reset()
	appendAppend(&w, 5, 18, 12, 0, []byte("record"))
	if term, idx, commit, shard, payload, err := decodeAppend(w.Bytes()); err != nil || term != 5 || idx != 18 || commit != 12 || shard != 0 || string(payload) != "record" {
		t.Fatalf("append round-trip: (%d, %d, %d, %d, %q, %v)", term, idx, commit, shard, payload, err)
	}

	w.Reset()
	appendHeartbeat(&w, 5, 12)
	if term, commit, err := decodeHeartbeat(w.Bytes()); err != nil || term != 5 || commit != 12 {
		t.Fatalf("heartbeat round-trip: (%d, %d, %v)", term, commit, err)
	}

	w.Reset()
	appendAck(&w, 5, 18)
	if term, idx, err := decodeAck(w.Bytes()); err != nil || term != 5 || idx != 18 {
		t.Fatalf("ack round-trip: (%d, %d, %v)", term, idx, err)
	}

	w.Reset()
	appendNack(&w, 6)
	if term, err := decodeNack(w.Bytes()); err != nil || term != 6 {
		t.Fatalf("nack round-trip: (%d, %v)", term, err)
	}

	w.Reset()
	appendPreVoteReq(&w, 10, 2, 4, 999)
	if term, id, rec, p, err := decodePreVoteReq(w.Bytes()); err != nil || term != 10 || id != 2 || rec != 4 || p != 999 {
		t.Fatalf("pre-vote-req round-trip: (%d, %d, %d, %d, %v)", term, id, rec, p, err)
	}

	for _, granted := range []bool{true, false} {
		w.Reset()
		appendPreVoteResp(&w, 9, granted)
		if term, g, err := decodePreVoteResp(w.Bytes()); err != nil || term != 9 || g != granted {
			t.Fatalf("pre-vote-resp round-trip: (%d, %v, %v)", term, g, err)
		}
	}
}

func TestMetaPersistence(t *testing.T) {
	store := fileMeta{path: filepath.Join(t.TempDir(), "repl-meta")}

	m, err := store.load()
	if err != nil {
		t.Fatalf("loading missing meta: %v", err)
	}
	if m.Term != 0 || m.VotedFor != -1 || m.LastRecTerm != 0 || m.CompactFloor != 0 {
		t.Fatalf("zero meta = %+v, want term 0, no vote, floor 0", m)
	}

	want := meta{Seq: 1, Term: 9, VotedFor: 2, LastRecTerm: 7, CompactFloor: 31}
	if err := store.save(want); err != nil {
		t.Fatalf("saving meta: %v", err)
	}
	got, err := store.load()
	if err != nil {
		t.Fatalf("reloading meta: %v", err)
	}
	if got != want {
		t.Fatalf("meta round-trip: got %+v, want %+v", got, want)
	}

	// Memory-only mode round-trips in place.
	mem := newMemMeta()
	if err := mem.save(meta{Term: 1, VotedFor: 0}); err != nil {
		t.Fatalf("memory-only save: %v", err)
	}
	if m, err := mem.load(); err != nil || m.Term != 1 || m.VotedFor != 0 {
		t.Fatalf("memory-only load: (%+v, %v)", m, err)
	}

	// Sink-backed store: same contract over alternating slots, newest
	// valid slot wins.
	sink := durable.NewMemSink()
	ss := sinkMeta{sink: sink}
	if m, err := ss.load(); err != nil || m.VotedFor != -1 {
		t.Fatalf("empty sink load: (%+v, %v)", m, err)
	}
	for seq := uint64(1); seq <= 3; seq++ {
		if err := ss.save(meta{Seq: seq, Term: seq + 10, VotedFor: 1, CompactFloor: seq * 4}); err != nil {
			t.Fatalf("sink save seq %d: %v", seq, err)
		}
	}
	got, err = ss.load()
	if err != nil {
		t.Fatalf("sink reload: %v", err)
	}
	if want := (meta{Seq: 3, Term: 13, VotedFor: 1, CompactFloor: 12}); got != want {
		t.Fatalf("sink meta round-trip: got %+v, want %+v", got, want)
	}
}
