package repl

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"ballsintoleaves/internal/namesvc"
	"ballsintoleaves/internal/namesvc/durable"
	"ballsintoleaves/internal/transport"
	"ballsintoleaves/internal/wire"
)

// replIOTimeout bounds handshake reads and every stream write; a peer
// that cannot accept a frame for this long is treated as gone.
const replIOTimeout = 5 * time.Second

// maxLeaderQueue bounds the leader's in-memory record queue. A follower
// that falls further behind than this is torn down and re-attached from
// a snapshot instead of being streamed an unbounded backlog.
const maxLeaderQueue = 4096

// defaultRetainRecords is the default compaction retention: how many
// records the leader keeps behind its head for laggard followers before
// pruning forces them onto the snapshot+tail re-attach path.
const defaultRetainRecords = 1024

// errDeposed reports that the node stopped being leader with work in
// flight; the staged grants behind it are discarded undelivered.
var errDeposed = errors.New("repl: node is no longer leader")

// PeerSpec names one cluster member.
type PeerSpec struct {
	// ReplAddr is the member's replication listener (peer traffic).
	ReplAddr string
	// ClientAddr is the member's client-facing server address — the
	// redirect hint handed to clients that reach a non-leader.
	ClientAddr string
}

// Config parameterizes a Node.
type Config struct {
	// NodeID indexes this node in Peers. Required (and Peers[NodeID]
	// must be this node's own addresses).
	NodeID int
	// Peers lists every cluster member, including this node, in a fixed
	// order shared by all members. Quorum is len(Peers)/2 + 1.
	Peers []PeerSpec
	// Service is the replicated allocation core. Required. The node
	// installs its record hook; install nothing else on it.
	Service *namesvc.Service
	// Listener, when non-nil, is the pre-bound replication listener
	// (tests use port 0); nil means listen on Peers[NodeID].ReplAddr.
	Listener net.Listener
	// MetaPath persists term/vote/freshness/compaction state across
	// restarts (required for crash safety); empty keeps it in memory only
	// (tests), unless MetaSink is set.
	MetaPath string
	// MetaSink, when non-nil, persists election state into a durable.Sink
	// (alternating-slot writes) instead of MetaPath. Tests and crash
	// harnesses use it; production daemons use MetaPath.
	MetaSink durable.Sink
	// ElectionTimeout is the follower patience before campaigning;
	// heartbeats flow at a fifth of it. Zero means 500ms.
	ElectionTimeout time.Duration
	// ManualElections disables the election timer: leadership changes
	// only through explicit Campaign calls. Deterministic tests only.
	ManualElections bool
	// LegacyElections disables the pre-vote round, leader stickiness, and
	// the leader's check-quorum step-down and read lease — the
	// pre-hardening election behavior, kept behind an escape hatch so the
	// chaos lab can run the before/after differential.
	LegacyElections bool
	// RetainRecords bounds the leader's replication queue: committed-and-
	// applied-everywhere prefixes are pruned continuously, and the queue
	// never retains more than this many records regardless of laggards
	// (which re-attach via snapshot+tail). Zero means 1024.
	RetainRecords int
	// Logf, when non-nil, receives role transitions and stream errors.
	Logf func(format string, args ...any)
}

// Node is one replication participant. It implements namesvc.CommitGate
// (plus the role reporter extension), so wiring it as the Server's Gate
// is what turns a standalone daemon into a cluster member: writes are
// admitted only on the leader, and grants are delivered only after a
// quorum of replicas holds the records behind them.
type Node struct {
	cfg        Config
	svc        *namesvc.Service
	ln         net.Listener
	quorum     int
	hbInterval time.Duration
	meta       metaStore

	mu             sync.Mutex
	commitCond     *sync.Cond // commit advance, fencing, close
	term           uint64
	votedFor       int
	lastRecTerm    uint64
	leaderID       int // last known leader; -1 unknown
	lastContact    time.Time
	ldr            *leaderState // non-nil while this node leads
	seenCommit     uint64       // highest commit observed as a follower
	metaSeq        uint64       // persisted-write sequence number
	compactFloor   uint64       // highest pruned replication-log index
	electionReason string       // why the node last changed term or role
	srv            *namesvc.Server
	streams        map[*transport.Peer]struct{} // live accepted peer links
	closed         bool

	stop chan struct{}
	wg   sync.WaitGroup
}

// Start loads the persisted election state, binds the replication
// listener, installs the record hook, and begins following. Call
// SetServer before the Service takes traffic, then wire the node as the
// Server's Gate.
func Start(cfg Config) (*Node, error) {
	if cfg.Service == nil {
		return nil, fmt.Errorf("repl: Config.Service is required")
	}
	if cfg.NodeID < 0 || cfg.NodeID >= len(cfg.Peers) {
		return nil, fmt.Errorf("repl: NodeID %d outside 0..%d", cfg.NodeID, len(cfg.Peers)-1)
	}
	if cfg.ElectionTimeout <= 0 {
		cfg.ElectionTimeout = 500 * time.Millisecond
	}
	if cfg.RetainRecords <= 0 {
		cfg.RetainRecords = defaultRetainRecords
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	var store metaStore
	switch {
	case cfg.MetaSink != nil:
		store = sinkMeta{sink: cfg.MetaSink}
	case cfg.MetaPath != "":
		store = fileMeta{path: cfg.MetaPath}
	default:
		store = newMemMeta()
	}
	m, err := store.load()
	if err != nil {
		return nil, err
	}
	ln := cfg.Listener
	if ln == nil {
		ln, err = net.Listen("tcp", cfg.Peers[cfg.NodeID].ReplAddr)
		if err != nil {
			return nil, fmt.Errorf("repl: %w", err)
		}
	}
	n := &Node{
		cfg:            cfg,
		svc:            cfg.Service,
		ln:             ln,
		quorum:         len(cfg.Peers)/2 + 1,
		hbInterval:     cfg.ElectionTimeout / 5,
		meta:           store,
		term:           m.Term,
		votedFor:       m.VotedFor,
		lastRecTerm:    m.LastRecTerm,
		metaSeq:        m.Seq,
		compactFloor:   m.CompactFloor,
		electionReason: "boot",
		leaderID:       -1,
		lastContact:    time.Now(),
		streams:        make(map[*transport.Peer]struct{}),
		stop:           make(chan struct{}),
	}
	n.commitCond = sync.NewCond(&n.mu)
	n.svc.SetRecordHook(n.recordHook)
	n.wg.Add(1)
	go n.acceptLoop()
	if !cfg.ManualElections {
		n.wg.Add(1)
		go n.electionLoop()
	}
	return n, nil
}

// SetServer hands the node the client-facing server it quiesces on
// deposition (DisconnectAll cancels the queued writes that would block a
// catch-up restore). Call it once, before traffic.
func (n *Node) SetServer(srv *namesvc.Server) {
	n.mu.Lock()
	n.srv = srv
	n.mu.Unlock()
}

// Close stops the node: listener, election timer, streams, leadership.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	if l := n.ldr; l != nil {
		n.fenceLocked(l, false)
	}
	for p := range n.streams {
		p.Close()
	}
	n.commitCond.Broadcast()
	n.mu.Unlock()
	close(n.stop)
	n.ln.Close()
	n.wg.Wait()
	return nil
}

func (n *Node) logf(format string, args ...any) { n.cfg.Logf(format, args...) }

// persistMetaLocked writes the durable election state; n.mu must be held.
func (n *Node) persistMetaLocked() error {
	next := n.metaSeq + 1
	err := n.meta.save(meta{
		Seq:          next,
		Term:         n.term,
		VotedFor:     n.votedFor,
		LastRecTerm:  n.lastRecTerm,
		CompactFloor: n.compactFloor,
	})
	if err != nil {
		n.logf("repl: persisting election state: %v", err)
		return err
	}
	n.metaSeq = next
	return nil
}

// stepToTermLocked adopts a higher term observed on any path, fencing
// current leadership; n.mu must be held.
func (n *Node) stepToTermLocked(term uint64) {
	if term <= n.term {
		return
	}
	n.term = term
	n.votedFor = -1
	n.electionReason = "saw-higher-term"
	n.persistMetaLocked()
	if l := n.ldr; l != nil {
		n.fenceLocked(l, true)
	}
}

// fenceLocked ends this node's leadership: commit waiters fail (their
// staged grants are discarded undelivered — no client observed them, so
// the new leader may re-grant the same names), the record hook starts
// dropping, follower links die, and — when quiesce is set — the client
// server is disconnected so teardown cancels every queued write, letting
// the new leader's catch-up snapshot restore over a quiet service.
// n.mu must be held.
func (n *Node) fenceLocked(l *leaderState, quiesce bool) {
	if l.fenced {
		return
	}
	l.fenced = true
	close(l.stopc)
	for _, lk := range l.links {
		lk.peer.Close()
	}
	n.ldr = nil
	n.commitCond.Broadcast()
	n.logf("repl: node %d deposed as leader of term %d (commit %d)", n.cfg.NodeID, l.term, l.commit)
	if quiesce && n.srv != nil {
		srv := n.srv
		go srv.DisconnectAll()
	}
}

// observeTerm adopts a possibly-higher term observed outside n.mu.
func (n *Node) observeTerm(term uint64) {
	n.mu.Lock()
	n.stepToTermLocked(term)
	n.mu.Unlock()
}

// setLastRecTermLocked raises the freshness claim, persisting on change;
// n.mu must be held. It is called before the acknowledgement (or grant)
// that depends on it, so the durable claim never lags what was promised.
func (n *Node) setLastRecTermLocked(term uint64) {
	if term <= n.lastRecTerm {
		return
	}
	n.lastRecTerm = term
	n.persistMetaLocked()
}

// leaderHintLocked is the client address writes should be redirected to.
func (n *Node) leaderHintLocked() string {
	if n.leaderID < 0 || n.leaderID >= len(n.cfg.Peers) || n.leaderID == n.cfg.NodeID {
		return ""
	}
	return n.cfg.Peers[n.leaderID].ClientAddr
}

// AdmitWrites implements namesvc.CommitGate: only an unfenced leader
// serves writes; everyone else redirects to the last known leader.
func (n *Node) AdmitWrites() (bool, string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.ldr != nil {
		return true, ""
	}
	return false, n.leaderHintLocked()
}

// WaitCommitted implements namesvc.CommitGate: it blocks until every
// record the shard has produced is quorum-acknowledged. The leader's own
// copy is made durable first (a group-fsync round in FsyncGroup mode; a
// no-op when every append already syncs), so "committed" always means a
// quorum of durable copies including this one. An error means the node
// was deposed with the records uncommitted.
func (n *Node) WaitCommitted(shard int) error {
	n.svc.SyncGroup()
	n.mu.Lock()
	defer n.mu.Unlock()
	for {
		l := n.ldr
		if n.closed || l == nil {
			return errDeposed
		}
		if l.lastIdxByShard[shard] <= l.commit {
			return nil
		}
		n.commitCond.Wait()
	}
}

// WireRole implements the Server's role reporter: what the welcome
// message tells connecting clients.
func (n *Node) WireRole() (namesvc.Role, string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.ldr != nil {
		return namesvc.RoleLeader, n.cfg.Peers[n.cfg.NodeID].ClientAddr
	}
	return namesvc.RoleFollower, n.leaderHintLocked()
}

// Status reports the node's replication state for logging: its role, the
// current term, and the highest committed stream index it knows of.
func (n *Node) Status() (role namesvc.Role, term, commit uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if l := n.ldr; l != nil {
		return namesvc.RoleLeader, n.term, l.commit
	}
	return namesvc.RoleFollower, n.term, n.seenCommit
}

// IsLeader reports whether this node currently serves writes. Epoch
// drivers use it to keep follower epochs closed only by replication.
func (n *Node) IsLeader() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.ldr != nil
}

// electionLoop campaigns whenever leader contact lapses. The check
// period and the patience are both randomized around ElectionTimeout so
// two followers rarely split the vote twice in a row.
func (n *Node) electionLoop() {
	defer n.wg.Done()
	for {
		patience := n.cfg.ElectionTimeout + time.Duration(rand.Int63n(int64(n.cfg.ElectionTimeout)))
		select {
		case <-n.stop:
			return
		case <-time.After(patience):
		}
		n.mu.Lock()
		stale := !n.closed && n.ldr == nil && time.Since(n.lastContact) >= n.cfg.ElectionTimeout
		n.mu.Unlock()
		if stale {
			n.Campaign()
		}
	}
}

// Campaign runs one election round synchronously: a non-term-bumping
// pre-vote poll first (unless LegacyElections), then term+1, vote for
// self, request votes from every peer, and take leadership on a quorum.
// It reports whether this node leads the new term. Safe to call at any
// time; the election timer calls it automatically unless disabled.
func (n *Node) Campaign() bool {
	n.mu.Lock()
	if n.closed || n.ldr != nil {
		won := n.ldr != nil
		n.mu.Unlock()
		return won
	}
	if !n.cfg.LegacyElections {
		nextTerm := n.term + 1
		recTerm := n.lastRecTerm
		n.mu.Unlock()
		if !n.preVote(nextTerm, recTerm, n.svc.Position()) {
			return false
		}
		n.mu.Lock()
		if n.closed || n.ldr != nil {
			won := n.ldr != nil
			n.mu.Unlock()
			return won
		}
	}
	n.term++
	n.votedFor = n.cfg.NodeID
	if n.persistMetaLocked() != nil {
		n.mu.Unlock()
		return false
	}
	term := n.term
	lastRecTerm := n.lastRecTerm
	n.mu.Unlock()
	position := n.svc.Position()

	type result struct {
		term    uint64
		granted bool
	}
	results := make(chan result, len(n.cfg.Peers))
	voters := 0
	for id, peer := range n.cfg.Peers {
		if id == n.cfg.NodeID {
			continue
		}
		voters++
		go func(addr string) {
			t, granted := n.requestVote(addr, term, lastRecTerm, position)
			results <- result{t, granted}
		}(peer.ReplAddr)
	}
	votes := 1 // self
	deadline := time.After(n.cfg.ElectionTimeout)
	for i := 0; i < voters && votes < n.quorum; i++ {
		select {
		case r := <-results:
			if r.term > term {
				n.observeTerm(r.term)
				return false
			}
			if r.granted {
				votes++
			}
		case <-deadline:
			return false
		case <-n.stop:
			return false
		}
	}
	if votes < n.quorum {
		return false
	}
	return n.becomeLeader(term)
}

// requestVote asks one peer for its vote in term.
func (n *Node) requestVote(addr string, term, lastRecTerm, position uint64) (uint64, bool) {
	p, err := transport.DialPeer(addr, n.cfg.ElectionTimeout)
	if err != nil {
		return 0, false
	}
	defer p.Close()
	var w wire.Writer
	appendVoteReq(&w, term, n.cfg.NodeID, lastRecTerm, position)
	if err := p.SendNow(w.Bytes(), time.Now().Add(replIOTimeout)); err != nil {
		return 0, false
	}
	body, err := p.Recv(time.Now().Add(n.cfg.ElectionTimeout))
	if err != nil || len(body) == 0 || body[0] != kVoteResp {
		return 0, false
	}
	respTerm, granted, err := decodeVoteResp(body)
	if err != nil {
		return 0, false
	}
	return respTerm, granted && respTerm == term
}

// becomeLeader installs leader state for term and starts one stream
// manager per peer plus the leader tick (check-quorum + compaction). The
// freshness claim is raised to the new term before any record exists in
// it (see meta), which only ever makes this node a stricter voter —
// never a less safe one. Record indices resume above the persisted
// compaction floor so the floor stays monotone across this node's
// leaderships.
func (n *Node) becomeLeader(term uint64) bool {
	n.mu.Lock()
	if n.closed || n.term != term || n.ldr != nil {
		n.mu.Unlock()
		return false
	}
	l := &leaderState{
		term:           term,
		nextIdx:        n.compactFloor + 1,
		baseIdx:        n.compactFloor + 1,
		lastIdxByShard: make([]uint64, n.svc.Shards()),
		match:          make(map[int]uint64, len(n.cfg.Peers)),
		links:          make(map[int]*followerLink, len(n.cfg.Peers)),
		heard:          make([]time.Time, len(n.cfg.Peers)),
		stopc:          make(chan struct{}),
	}
	// Check-quorum grace: every peer counts as freshly heard at election,
	// giving the streams one election timeout to attach before the lease
	// can be judged.
	now := time.Now()
	for i := range l.heard {
		l.heard[i] = now
	}
	n.ldr = l
	n.leaderID = n.cfg.NodeID
	n.electionReason = "won-election"
	n.setLastRecTermLocked(term)
	l.advanceCommitLocked(n)
	n.mu.Unlock()
	n.logf("repl: node %d leading term %d", n.cfg.NodeID, term)
	for id := range n.cfg.Peers {
		if id == n.cfg.NodeID {
			continue
		}
		n.wg.Add(1)
		go n.runPeer(l, id)
	}
	n.wg.Add(1)
	go n.leaderTick(l)
	return true
}

// acceptLoop serves the replication listener: each accepted link is a
// vote request or an inbound leader stream.
func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			select {
			case <-n.stop:
			default:
				if !errors.Is(err, net.ErrClosed) {
					n.logf("repl: accept: %v", err)
				}
			}
			return
		}
		if tc, ok := conn.(*net.TCPConn); ok {
			tc.SetNoDelay(true)
		}
		p := transport.NewPeer(conn)
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			p.Close()
			return
		}
		n.streams[p] = struct{}{}
		n.mu.Unlock()
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			n.serveLink(p)
			p.Close()
			n.mu.Lock()
			delete(n.streams, p)
			n.mu.Unlock()
		}()
	}
}

// serveLink dispatches one accepted peer link on its first frame.
func (n *Node) serveLink(p *transport.Peer) {
	body, err := p.Recv(time.Now().Add(replIOTimeout))
	if err != nil || len(body) == 0 {
		return
	}
	switch body[0] {
	case kVoteReq:
		n.serveVote(p, body)
	case kPreVoteReq:
		n.servePreVote(p, body)
	case kHello:
		n.serveStream(p, body)
	default:
		n.logf("repl: unexpected peer frame kind %#x", body[0])
	}
}

// serveVote answers one vote request: grant if the term is current, the
// vote is unspent, and the candidate is at least as fresh — by (last
// record term, total position), so a candidate missing quorum-committed
// records can never collect a quorum of grants. Leader stickiness
// (unless LegacyElections): while this node hears a live leader within
// the election timeout, a higher-term request is refused *without
// adopting its term*, so a returning partitioned node's inflated term
// cannot depose a healthy leader.
func (n *Node) serveVote(p *transport.Peer, body []byte) {
	reqTerm, candidate, candRecTerm, candPos, err := decodeVoteReq(body)
	if err != nil {
		return
	}
	// Our own position is read before taking n.mu (shard locks order
	// before the node lock); it is monotone, so the read covers every
	// record this node has ever acknowledged.
	pos := n.svc.Position()
	n.mu.Lock()
	if !n.cfg.LegacyElections && reqTerm > n.term && n.hearingLeaderLocked() {
		cur := n.term
		n.mu.Unlock()
		var w wire.Writer
		appendVoteResp(&w, cur, false)
		p.SendNow(w.Bytes(), time.Now().Add(replIOTimeout))
		return
	}
	n.stepToTermLocked(reqTerm)
	granted := false
	if reqTerm == n.term && (n.votedFor == -1 || n.votedFor == candidate) &&
		(candRecTerm > n.lastRecTerm || (candRecTerm == n.lastRecTerm && candPos >= pos)) {
		prev := n.votedFor
		n.votedFor = candidate
		if prev == candidate || n.persistMetaLocked() == nil {
			granted = true
			n.lastContact = time.Now()
		}
	}
	term := n.term
	n.mu.Unlock()
	var w wire.Writer
	appendVoteResp(&w, term, granted)
	p.SendNow(w.Bytes(), time.Now().Add(replIOTimeout))
}

// serveStream runs the follower half of a leader stream: answer the
// hello with this replica's positions, then apply snapshots and records,
// acknowledging cumulatively. Applies are coalesced: every frame already
// buffered on the link is processed before the fsync-and-acknowledge
// step, so a burst of records (all shards of one epoch tick) costs one
// group-fsync round and one ack frame, not one per record.
func (n *Node) serveStream(p *transport.Peer, hello []byte) {
	term, leaderID, err := decodeHello(hello)
	if err != nil {
		return
	}
	n.mu.Lock()
	n.stepToTermLocked(term)
	if term < n.term {
		cur, rec := n.term, n.lastRecTerm
		n.mu.Unlock()
		var w wire.Writer
		appendHelloAck(&w, cur, rec, nil)
		p.SendNow(w.Bytes(), time.Now().Add(replIOTimeout))
		return
	}
	n.leaderID = leaderID
	n.lastContact = time.Now()
	myRecTerm := n.lastRecTerm
	n.mu.Unlock()

	positions := n.svc.Positions(nil)
	var w wire.Writer
	appendHelloAck(&w, term, myRecTerm, positions)
	if p.SendNow(w.Bytes(), time.Now().Add(replIOTimeout)) != nil {
		return
	}

	idle := 2 * n.cfg.ElectionTimeout
	var ackIdx uint64
	dirty := false // applied records not yet synced and acknowledged
	for {
		if dirty && !p.Pending() {
			n.svc.SyncGroup()
			w.Reset()
			appendAck(&w, term, ackIdx)
			if p.SendNow(w.Bytes(), time.Now().Add(replIOTimeout)) != nil {
				return
			}
			dirty = false
		}
		body, err := p.Recv(time.Now().Add(idle))
		if err != nil {
			return
		}
		if len(body) == 0 {
			return
		}
		nack := func() {
			n.mu.Lock()
			cur := n.term
			n.mu.Unlock()
			w.Reset()
			appendNack(&w, cur)
			p.SendNow(w.Bytes(), time.Now().Add(replIOTimeout))
		}
		switch body[0] {
		case kSnap:
			t, shard, payload, err := decodeSnap(body)
			if err != nil || !n.streamTerm(t) {
				nack()
				return
			}
			if err := n.svc.RestoreReplicaShard(shard, payload); err != nil {
				n.logf("repl: restoring shard %d: %v", shard, err)
				nack()
				return
			}
		case kSnapEnd:
			t, idx, c, lastRecTerm, err := decodeSnapEnd(body)
			if err != nil || !n.streamTerm(t) {
				nack()
				return
			}
			n.mu.Lock()
			n.setLastRecTermLocked(lastRecTerm)
			if c > n.seenCommit {
				n.seenCommit = c
			}
			n.mu.Unlock()
			if idx > ackIdx {
				ackIdx = idx
			}
			dirty = true
		case kAppend:
			t, idx, c, shard, payload, err := decodeAppend(body)
			if err != nil || !n.streamTerm(t) {
				nack()
				return
			}
			applied, err := n.svc.ApplyReplicated(shard, payload)
			if err != nil {
				n.logf("repl: applying record %d to shard %d: %v", idx, shard, err)
				nack()
				return
			}
			n.mu.Lock()
			if applied {
				n.setLastRecTermLocked(t)
			}
			if c > n.seenCommit {
				n.seenCommit = c
			}
			n.mu.Unlock()
			if idx > ackIdx {
				ackIdx = idx
			}
			dirty = true
		case kHeartbeat:
			t, c, err := decodeHeartbeat(body)
			if err != nil || !n.streamTerm(t) {
				nack()
				return
			}
			n.mu.Lock()
			if c > n.seenCommit {
				n.seenCommit = c
			}
			n.mu.Unlock()
			dirty = true // acknowledge as the liveness pong
		default:
			n.logf("repl: unexpected stream frame kind %#x", body[0])
			return
		}
	}
}

// streamTerm validates one stream frame's term: stale terms condemn the
// stream (the sender was deposed), higher terms are adopted. It also
// refreshes the election timer — frames from the current leader are the
// contact that keeps this follower from campaigning.
func (n *Node) streamTerm(t uint64) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.stepToTermLocked(t)
	if t < n.term {
		return false
	}
	n.lastContact = time.Now()
	return true
}
