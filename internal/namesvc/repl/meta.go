package repl

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
)

// meta is the durable election state. Term and VotedFor are the classic
// Raft pair: persisted before any vote or vote request leaves the node,
// so a restart can never vote twice in one term. LastRecTerm is the term
// of the newest record this replica holds — the WAL itself carries no
// terms, so it must survive restarts separately or a restarted node
// would understate its freshness and hand leadership to a replica
// missing quorum-committed records. It is persisted before the
// corresponding acknowledgement (follower) or before serving (leader),
// keeping "what I claim" always at or above "what I acknowledged".
type meta struct {
	Term        uint64 `json:"term"`
	VotedFor    int    `json:"voted_for"` // -1 = none this term
	LastRecTerm uint64 `json:"last_record_term"`
}

// loadMeta reads the persisted election state; a missing file (first
// boot) is the zero state. An empty path is memory-only mode (tests).
func loadMeta(path string) (meta, error) {
	m := meta{VotedFor: -1}
	if path == "" {
		return m, nil
	}
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return m, nil
	}
	if err != nil {
		return m, fmt.Errorf("repl: reading %s: %w", path, err)
	}
	if err := json.Unmarshal(data, &m); err != nil {
		return m, fmt.Errorf("repl: parsing %s: %w", path, err)
	}
	return m, nil
}

// save persists the election state durably: temp file, fsync, rename,
// directory fsync — the same discipline as the WAL's snapshot writes, so
// a crash leaves either the old state or the new, never a torn file.
func (m meta) save(path string) error {
	if path == "" {
		return nil
	}
	data, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("repl: encoding meta: %w", err)
	}
	dir := filepath.Dir(path)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("repl: writing meta: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("repl: writing meta: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("repl: syncing meta: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("repl: closing meta: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("repl: installing meta: %w", err)
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}
