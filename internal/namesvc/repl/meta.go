package repl

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"

	"ballsintoleaves/internal/namesvc/durable"
)

// meta is the durable election state. Term and VotedFor are the classic
// Raft pair: persisted before any vote or vote request leaves the node,
// so a restart can never vote twice in one term. LastRecTerm is the term
// of the newest record this replica holds — the WAL itself carries no
// terms, so it must survive restarts separately or a restarted node
// would understate its freshness and hand leadership to a replica
// missing quorum-committed records. It is persisted before the
// corresponding acknowledgement (follower) or before serving (leader),
// keeping "what I claim" always at or above "what I acknowledged".
// CompactFloor is the highest replication-log index this node has pruned
// while leading, persisted before the prefix is dropped so a recovered
// node can never claim to still stream records it discarded. Seq orders
// writes for the slotted sink store; every field is monotone across a
// crash because a save is acknowledged only after it is durable.
type meta struct {
	Seq          uint64 `json:"seq"`
	Term         uint64 `json:"term"`
	VotedFor     int    `json:"voted_for"` // -1 = none this term
	LastRecTerm  uint64 `json:"last_record_term"`
	CompactFloor uint64 `json:"compact_floor"`
}

// metaStore persists election state. Two implementations share the
// contract that a save returning nil is durable and a crash mid-save
// recovers to either the previous state or the new one, never a torn
// mixture: fileMeta (temp+fsync+rename on a real path) and sinkMeta
// (alternating slots over a durable.Sink, which has no rename — used by
// tests and the CrashBudget crash-point sweep).
type metaStore interface {
	load() (meta, error)
	save(meta) error
}

func zeroMeta() meta { return meta{VotedFor: -1} }

// memMeta is the memory-only store (tests without restart coverage).
type memMeta struct{ m meta }

func newMemMeta() *memMeta          { return &memMeta{m: zeroMeta()} }
func (s *memMeta) load() (meta, error) { return s.m, nil }
func (s *memMeta) save(m meta) error   { s.m = m; return nil }

// fileMeta persists to one JSON file with the temp file, fsync, rename,
// directory-fsync discipline — the same as the WAL's snapshot writes, so
// a crash leaves either the old state or the new, never a torn file.
type fileMeta struct{ path string }

func (s fileMeta) load() (meta, error) {
	m := zeroMeta()
	data, err := os.ReadFile(s.path)
	if errors.Is(err, fs.ErrNotExist) {
		return m, nil
	}
	if err != nil {
		return m, fmt.Errorf("repl: reading %s: %w", s.path, err)
	}
	if err := json.Unmarshal(data, &m); err != nil {
		return m, fmt.Errorf("repl: parsing %s: %w", s.path, err)
	}
	return m, nil
}

func (s fileMeta) save(m meta) error {
	data, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("repl: encoding meta: %w", err)
	}
	dir := filepath.Dir(s.path)
	tmp := s.path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("repl: writing meta: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("repl: writing meta: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("repl: syncing meta: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("repl: closing meta: %w", err)
	}
	if err := os.Rename(tmp, s.path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("repl: installing meta: %w", err)
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// Slot names for the sink-backed store.
const (
	metaSlotA = "repl-meta.a"
	metaSlotB = "repl-meta.b"
)

// sinkMeta persists over a durable.Sink, which offers no rename: instead
// of install-by-rename it alternates between two slot files by sequence
// number and syncs before acknowledging. A crash tears at most the slot
// being written; the other slot still holds the previous durable state,
// and load picks the newest slot that parses — so recovery is always
// old-state-or-new, exactly like the rename path.
type sinkMeta struct{ sink durable.Sink }

func (s sinkMeta) load() (meta, error) {
	best, found := zeroMeta(), false
	for _, slot := range []string{metaSlotA, metaSlotB} {
		data, err := s.sink.ReadAll(slot)
		if err != nil {
			continue // missing or unreadable slot: the other one decides
		}
		var m meta
		if json.Unmarshal(data, &m) != nil {
			continue // torn write: a strict JSON prefix never parses
		}
		if !found || m.Seq > best.Seq {
			best, found = m, true
		}
	}
	return best, nil
}

func (s sinkMeta) save(m meta) error {
	data, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("repl: encoding meta: %w", err)
	}
	slot := metaSlotA
	if m.Seq%2 == 1 {
		slot = metaSlotB
	}
	f, err := s.sink.Create(slot)
	if err != nil {
		return fmt.Errorf("repl: writing meta slot: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("repl: writing meta slot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("repl: syncing meta slot: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("repl: closing meta slot: %w", err)
	}
	if err := s.sink.Sync(); err != nil {
		return fmt.Errorf("repl: syncing meta dir: %w", err)
	}
	return nil
}
