package repl

import (
	"errors"
	"testing"
	"time"
)

// failMeta is a metaStore whose saves can be made to fail, for pinning
// the persist-before-prune discipline.
type failMeta struct {
	fail  bool
	saves int
	m     meta
}

func (s *failMeta) load() (meta, error) { return s.m, nil }
func (s *failMeta) save(m meta) error {
	if s.fail {
		return errors.New("injected meta failure")
	}
	s.saves++
	s.m = m
	return nil
}

// compactNode builds a minimal leader for exercising compactLocked
// directly: deterministic state, no goroutines, no network.
func compactNode(store metaStore, retain int) (*Node, *leaderState) {
	n := &Node{
		cfg: Config{
			NodeID:        0,
			Peers:         []PeerSpec{{ReplAddr: "a"}, {ReplAddr: "b"}, {ReplAddr: "c"}},
			RetainRecords: retain,
			Logf:          func(string, ...any) {},
		},
		quorum: 2,
		meta:   store,
	}
	l := &leaderState{
		baseIdx: 1,
		nextIdx: 1,
		match:   make(map[int]uint64),
		links:   make(map[int]*followerLink),
	}
	n.ldr = l
	return n, l
}

func fillQueue(l *leaderState, upto uint64) {
	for idx := l.nextIdx; idx <= upto; idx++ {
		l.queue = append(l.queue, queuedRecord{shard: 0, payload: []byte{byte(idx)}})
		l.nextIdx++
	}
}

// TestCompactLockedSoftBound: the continuous prune tracks the committed-
// and-acknowledged-everywhere prefix — bounded by the commit index and by
// the slowest live link, while a partitioned peer (no link) does not hold
// the floor back.
func TestCompactLockedSoftBound(t *testing.T) {
	store := &failMeta{}
	n, l := compactNode(store, 8)
	fillQueue(l, 20)
	l.commit = 15
	l.links[1] = &followerLink{}
	l.match[1] = 12
	l.match[2] = 3 // partitioned: no link, must not pin the floor

	n.compactLocked(l)
	if n.compactFloor != 12 {
		t.Fatalf("floor = %d, want 12 (min of commit 15 and live match 12)", n.compactFloor)
	}
	if l.baseIdx != 13 || len(l.queue) != 8 {
		t.Fatalf("queue = [%d, %d) len %d, want [13, 21) len 8", l.baseIdx, l.nextIdx, len(l.queue))
	}
	if store.m.CompactFloor != 12 {
		t.Fatalf("persisted floor = %d, want 12 (persist before prune)", store.m.CompactFloor)
	}
	// Idempotent: nothing new to prune, nothing saved again.
	saves := store.saves
	n.compactLocked(l)
	if store.saves != saves || n.compactFloor != 12 {
		t.Fatalf("no-op compact changed state: floor %d, saves %d → %d", n.compactFloor, saves, store.saves)
	}
}

// TestCompactLockedHardBound: when laggards keep the soft bound low, the
// retention cap prunes anyway — the queue never holds more than
// RetainRecords, and the laggard is left to the snapshot re-attach path.
func TestCompactLockedHardBound(t *testing.T) {
	store := &failMeta{}
	n, l := compactNode(store, 8)
	fillQueue(l, 20)
	l.commit = 2
	l.links[1] = &followerLink{}
	l.match[1] = 2

	n.compactLocked(l)
	if n.compactFloor != 12 {
		t.Fatalf("floor = %d, want 12 (head 20 minus retention 8, soft bound 2 overridden)", n.compactFloor)
	}
	if qlen := l.nextIdx - l.baseIdx; qlen != 8 {
		t.Fatalf("queue holds %d records after hard-bound prune, want 8", qlen)
	}
}

// TestCompactLockedPersistFailureSkipsPrune: a floor the meta store did
// not acknowledge must not prune anything — the records stay until the
// next tick retries the persist.
func TestCompactLockedPersistFailureSkipsPrune(t *testing.T) {
	store := &failMeta{fail: true}
	n, l := compactNode(store, 8)
	fillQueue(l, 20)
	l.commit = 15
	l.links[1] = &followerLink{}
	l.match[1] = 15

	n.compactLocked(l)
	if n.compactFloor != 0 || l.baseIdx != 1 || len(l.queue) != 20 {
		t.Fatalf("failed persist still pruned: floor %d, base %d, len %d", n.compactFloor, l.baseIdx, len(l.queue))
	}
	// The retry after the store heals picks up where it left off.
	store.fail = false
	n.compactLocked(l)
	if n.compactFloor != 15 || l.baseIdx != 16 {
		t.Fatalf("post-heal compact: floor %d base %d, want 15/16", n.compactFloor, l.baseIdx)
	}
}

// TestCompactLockedFoldsEmergencyDrops: the maxLeaderQueue front-drop
// discards records before the floor records them; the next compact folds
// the discarded prefix into the durable floor.
func TestCompactLockedFoldsEmergencyDrops(t *testing.T) {
	store := &failMeta{}
	n, l := compactNode(store, 8)
	l.baseIdx, l.nextIdx = 10, 10 // records 1..9 were front-dropped
	fillQueue(l, 12)

	n.compactLocked(l)
	if n.compactFloor != 9 {
		t.Fatalf("floor = %d, want 9 (folding the front-dropped prefix)", n.compactFloor)
	}
	if l.baseIdx != 10 || len(l.queue) != 3 {
		t.Fatalf("fold-in pruned live records: base %d len %d", l.baseIdx, len(l.queue))
	}
}

// queueState reads the leader's queue bounds and floor under the lock.
func queueState(t *testing.T, n *Node) (qlen, floor uint64) {
	t.Helper()
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.ldr == nil {
		t.Fatal("node is not leading")
	}
	return n.ldr.nextIdx - n.ldr.baseIdx, n.compactFloor
}

// TestCompactionBoundsQueueUnderPartition: the end-to-end retention
// property. With a follower partitioned for more than two snapshot
// cycles, the leader's replication queue stays within the retention
// bound (the healthy follower keeps the soft prune moving, the cap
// handles the rest), the floor only advances, and the healed laggard
// re-attaches through the snapshot+tail path to a byte-identical
// replica.
func TestCompactionBoundsQueueUnderPartition(t *testing.T) {
	const retain = 16
	fc := startFaultCluster(t, 3, func(cfg *Config) { cfg.RetainRecords = retain })
	c := fc.cluster
	if !c.nodes[0].Campaign() {
		t.Fatal("node 0 failed to take leadership")
	}
	nextClient := uint64(1)
	churn := func(epochs int) {
		t.Helper()
		for e := 0; e < epochs; e++ {
			for k := 0; k < 2; k++ {
				if _, err := c.svcs[0].Acquire(nextClient, nil); err != nil {
					t.Fatalf("acquire %d: %v", nextClient, err)
				}
				nextClient++
			}
			closeEpochs(t, c, 0)
		}
	}

	churn(2)
	c.waitConverged(0)
	c.assertReplicasMatch()

	fc.partitionNode(2)
	// 17 epochs seal 2 records per epoch close per shard pair — far past
	// both the retention bound and two snapshot cycles (SnapshotEvery 8).
	churn(17)

	behind := c.svcs[2].Positions(nil)
	ahead := c.svcs[0].Positions(nil)
	for shard, pos := range ahead {
		if pos < behind[shard]+16 {
			t.Fatalf("shard %d: leader at %d, follower at %d — partition did not span 2 snapshot cycles",
				shard, pos, behind[shard])
		}
	}

	// Compaction runs on the leader tick, asynchronously to the writes;
	// wait for a tick to drain the queue and advance the floor, then
	// hold both to their bounds.
	deadline := time.Now().Add(5 * time.Second)
	var qlen, floor uint64
	for {
		qlen, floor = queueState(t, c.nodes[0])
		if qlen <= retain && floor > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("after the partition window: queue %d (want ≤ %d), floor %d (want > 0)",
				qlen, retain, floor)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// More churn: the floor is monotone and the bound holds steady once
	// the tick catches up with the burst.
	churn(3)
	for {
		qlen2, floor2 := queueState(t, c.nodes[0])
		if floor2 < floor {
			t.Fatalf("compaction floor moved backward: %d → %d", floor, floor2)
		}
		floor = floor2
		if qlen2 <= retain {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("leader queue stuck at %d records past the retention bound %d", qlen2, retain)
		}
		time.Sleep(10 * time.Millisecond)
	}

	fc.healNode(2)
	churn(1)
	c.waitConverged(0)
	c.assertReplicasMatch()
}

// TestCompactionFloorSurvivesReLeadership: record indices of a node's
// next leadership resume above its persisted floor, so the floor stays
// monotone across terms and a pruned record index is never reissued.
func TestCompactionFloorSurvivesReLeadership(t *testing.T) {
	c := startCluster(t, 3)
	if !c.nodes[0].Campaign() {
		t.Fatal("node 0 failed to take leadership")
	}
	for client := uint64(1); client <= 8; client++ {
		if _, err := c.svcs[0].Acquire(client, nil); err != nil {
			t.Fatalf("acquire %d: %v", client, err)
		}
	}
	closeEpochs(t, c, 0)
	c.waitConverged(0)

	// With everyone converged the soft prune tracks the commit index;
	// wait for the floor to move off zero.
	deadline := time.Now().Add(5 * time.Second)
	var floor uint64
	for {
		_, floor = queueState(t, c.nodes[0])
		if floor > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("floor never advanced on a converged cluster")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Fence the leadership with an observed higher term, then win it back.
	c.nodes[0].observeTerm(6)
	if c.nodes[0].IsLeader() {
		t.Fatal("leader survived a higher observed term")
	}
	won := false
	for i := 0; i < 100 && !won; i++ {
		won = c.nodes[0].Campaign()
		if !won {
			time.Sleep(50 * time.Millisecond)
		}
	}
	if !won {
		t.Fatal("node 0 failed to retake leadership")
	}

	c.nodes[0].mu.Lock()
	base, next, newFloor := c.nodes[0].ldr.baseIdx, c.nodes[0].ldr.nextIdx, c.nodes[0].compactFloor
	c.nodes[0].mu.Unlock()
	if newFloor < floor {
		t.Fatalf("floor moved backward across leaderships: %d → %d", floor, newFloor)
	}
	if base != newFloor+1 || next != newFloor+1 {
		t.Fatalf("new leadership indexes from [%d, %d), want resume at floor+1 = %d", base, next, newFloor+1)
	}

	// The resumed stream still commits and converges byte-identically.
	for client := uint64(101); client <= 108; client++ {
		if _, err := c.svcs[0].Acquire(client, nil); err != nil {
			t.Fatalf("acquire %d after re-election: %v", client, err)
		}
	}
	closeEpochs(t, c, 0)
	c.waitConverged(0)
	c.assertReplicasMatch()
}
