package repl

import (
	"time"

	"ballsintoleaves/internal/transport"
	"ballsintoleaves/internal/wire"
)

// Pre-vote: before bumping its term, a candidate polls the cluster with
// the term it *would* campaign at. Responders grant only if they would
// vote for it — same freshness rule as a real vote — *and* they are not
// hearing a live leader. Nothing is persisted and no vote is spent on
// either side, so a node whose election timer fires spuriously (a healed
// flapping follower, a deafened node on a one-way partition) cannot push
// the cluster's term forward and depose a healthy leader: its poll
// simply fails and it keeps following.

// preVote polls every peer at nextTerm and reports whether a quorum
// (including this node) would elect us. A response carrying a term at or
// above nextTerm means we are behind; it is adopted and the poll fails.
func (n *Node) preVote(nextTerm, lastRecTerm, position uint64) bool {
	type result struct {
		term    uint64
		granted bool
	}
	results := make(chan result, len(n.cfg.Peers))
	voters := 0
	for id, peer := range n.cfg.Peers {
		if id == n.cfg.NodeID {
			continue
		}
		voters++
		go func(addr string) {
			t, granted := n.requestPreVote(addr, nextTerm, lastRecTerm, position)
			results <- result{t, granted}
		}(peer.ReplAddr)
	}
	grants := 1 // self: our own timer (or operator) already judged the leader stale
	deadline := time.After(n.cfg.ElectionTimeout)
	for i := 0; i < voters && grants < n.quorum; i++ {
		select {
		case r := <-results:
			if r.term >= nextTerm {
				n.observeTerm(r.term)
				return false
			}
			if r.granted {
				grants++
			}
		case <-deadline:
			return false
		case <-n.stop:
			return false
		}
	}
	return grants >= n.quorum
}

// requestPreVote polls one peer; the returned term is the responder's
// current term, never an adopted one.
func (n *Node) requestPreVote(addr string, nextTerm, lastRecTerm, position uint64) (uint64, bool) {
	p, err := transport.DialPeer(addr, n.cfg.ElectionTimeout)
	if err != nil {
		return 0, false
	}
	defer p.Close()
	var w wire.Writer
	appendPreVoteReq(&w, nextTerm, n.cfg.NodeID, lastRecTerm, position)
	if err := p.SendNow(w.Bytes(), time.Now().Add(replIOTimeout)); err != nil {
		return 0, false
	}
	body, err := p.Recv(time.Now().Add(n.cfg.ElectionTimeout))
	if err != nil || len(body) == 0 || body[0] != kPreVoteResp {
		return 0, false
	}
	respTerm, granted, err := decodePreVoteResp(body)
	if err != nil {
		return 0, false
	}
	return respTerm, granted
}

// servePreVote answers a pre-vote poll without touching term, vote, or
// disk: grant only if the candidate's term would beat ours, we are not
// hearing a live leader (stickiness), and the candidate is at least as
// fresh as this replica.
func (n *Node) servePreVote(p *transport.Peer, body []byte) {
	reqTerm, _, candRecTerm, candPos, err := decodePreVoteReq(body)
	if err != nil {
		return
	}
	// As in serveVote: position is read before n.mu (shard locks order
	// before the node lock).
	pos := n.svc.Position()
	n.mu.Lock()
	granted := reqTerm > n.term && !n.hearingLeaderLocked() &&
		(candRecTerm > n.lastRecTerm || (candRecTerm == n.lastRecTerm && candPos >= pos))
	cur := n.term
	n.mu.Unlock()
	var w wire.Writer
	appendPreVoteResp(&w, cur, granted)
	p.SendNow(w.Bytes(), time.Now().Add(replIOTimeout))
}

// hearingLeaderLocked reports whether this node currently believes a
// live leader exists: it is one itself with a fresh check-quorum lease,
// or it heard from one within the election timeout. n.mu must be held.
func (n *Node) hearingLeaderLocked() bool {
	if l := n.ldr; l != nil && !l.fenced {
		return n.leaseFreshLocked(l)
	}
	return n.leaderID >= 0 && n.leaderID != n.cfg.NodeID &&
		time.Since(n.lastContact) < n.cfg.ElectionTimeout
}
