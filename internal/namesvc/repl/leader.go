package repl

import (
	"fmt"
	"time"

	"ballsintoleaves/internal/transport"
	"ballsintoleaves/internal/wire"
)

// queuedRecord is one sealed record awaiting streaming, owned by the
// leader (the payload is copied out of the service's encode scratch).
type queuedRecord struct {
	shard   int
	payload []byte
}

// leaderState is one term's leadership: the stream of records produced
// under it, indexed from 1, and the acknowledgement state that decides
// commits. Guarded by Node.mu.
type leaderState struct {
	term   uint64
	fenced bool
	stopc  chan struct{} // closed on fencing; wakes every stream manager

	// queue holds records [baseIdx, nextIdx); entries beyond
	// maxLeaderQueue drop from the front, forcing laggards into a
	// snapshot re-attach instead of an unbounded backlog.
	queue          []queuedRecord
	baseIdx        uint64 // stream index of queue[0]
	nextIdx        uint64 // index the next record will take
	lastIdxByShard []uint64

	commit uint64         // highest quorum-acknowledged index
	match  map[int]uint64 // peer -> highest acknowledged index, this term
	links  map[int]*followerLink

	// heard[id] is when peer id was last heard from (hello ack or stream
	// ack) this leadership — the check-quorum / read-lease freshness
	// source. Seeded to the election instant as grace.
	heard []time.Time
}

// followerLink is one live leader→follower stream. sentIdx advances as
// the sender drains the queue; notify (capacity 1) wakes it.
type followerLink struct {
	peer    *transport.Peer
	sentIdx uint64
	notify  chan struct{}
}

func (lk *followerLink) wake() {
	select {
	case lk.notify <- struct{}{}:
	default:
	}
}

// recordHook observes every sealed WAL record the service produces. It
// runs under the shard lock (shard locks order before Node.mu, so taking
// n.mu here is safe — and nothing under n.mu may ever take a shard
// lock). On the leader it assigns the record the next stream index and
// queues it for every follower; anywhere else — follower, deposed, no
// leadership yet — the record is dropped: replication, not this tap,
// feeds follower state, and records a deposed leader produces during its
// teardown are divergent tail by definition, overwritten at re-attach.
func (n *Node) recordHook(shard int, payload []byte) {
	n.mu.Lock()
	defer n.mu.Unlock()
	l := n.ldr
	if l == nil || l.fenced {
		return
	}
	idx := l.nextIdx
	l.nextIdx++
	l.lastIdxByShard[shard] = idx
	if len(l.queue) >= maxLeaderQueue {
		nq := copy(l.queue, l.queue[1:])
		l.queue[nq] = queuedRecord{}
		l.queue = l.queue[:nq]
		l.baseIdx++
	}
	l.queue = append(l.queue, queuedRecord{shard: shard, payload: append([]byte(nil), payload...)})
	l.advanceCommitLocked(n)
	for _, lk := range l.links {
		lk.wake()
	}
}

// advanceCommitLocked recomputes the commit index: the quorum-th highest
// of {this node's last produced index} ∪ {every peer's acknowledged
// index}. Monotone — a quorum that acknowledged an index never
// un-acknowledges it. Node.mu must be held.
func (l *leaderState) advanceCommitLocked(n *Node) {
	var idxs [16]uint64
	have := idxs[:0]
	have = append(have, l.nextIdx-1)
	for id := range n.cfg.Peers {
		if id != n.cfg.NodeID {
			have = append(have, l.match[id])
		}
	}
	// Insertion sort, descending; clusters are small.
	for i := 1; i < len(have); i++ {
		for j := i; j > 0 && have[j] > have[j-1]; j-- {
			have[j], have[j-1] = have[j-1], have[j]
		}
	}
	if c := have[n.quorum-1]; c > l.commit {
		l.commit = c
		n.commitCond.Broadcast()
	}
}

// runPeer keeps one follower attached for the duration of a term:
// dial, hello, catch-up, stream, and on any failure back off and
// re-attach from a fresh snapshot.
func (n *Node) runPeer(l *leaderState, peerID int) {
	defer n.wg.Done()
	backoff := 50 * time.Millisecond
	for {
		select {
		case <-l.stopc:
			return
		case <-n.stop:
			return
		default:
		}
		start := time.Now()
		if err := n.attachFollower(l, peerID); err != nil {
			n.logf("repl: stream to node %d: %v", peerID, err)
		}
		if time.Since(start) > time.Second {
			backoff = 50 * time.Millisecond // the session worked; the failure is fresh
		}
		select {
		case <-l.stopc:
			return
		case <-n.stop:
			return
		case <-time.After(backoff):
		}
		backoff = min(2*backoff, time.Second)
	}
}

// attachFollower runs one stream session to a peer. Catch-up ordering is
// what makes it correct: the attach index is captured under Node.mu
// FIRST, then the per-shard snapshots — so every record with index ≤
// attachIdx had already mutated its shard when the snapshot was taken
// and is covered by it, while records captured beyond attachIdx are
// streamed again and skipped by position on the follower. A follower
// whose position vector already equals the leader's skips the snapshots
// entirely and just acknowledges the attach index.
func (n *Node) attachFollower(l *leaderState, peerID int) error {
	p, err := transport.DialPeer(n.cfg.Peers[peerID].ReplAddr, n.cfg.ElectionTimeout)
	if err != nil {
		return err
	}
	defer p.Close()

	var w wire.Writer
	appendHello(&w, l.term, n.cfg.NodeID)
	if err := p.SendNow(w.Bytes(), time.Now().Add(replIOTimeout)); err != nil {
		return err
	}
	body, err := p.Recv(time.Now().Add(replIOTimeout))
	if err != nil {
		return err
	}
	if len(body) == 0 || body[0] != kHelloAck {
		return fmt.Errorf("unexpected hello reply")
	}
	ackTerm, _, theirPos, err := decodeHelloAck(body)
	if err != nil {
		return err
	}
	if ackTerm > l.term {
		n.observeTerm(ackTerm)
		return errDeposed
	}

	// Register the link and pin the attach point before touching any
	// shard (see the ordering argument above).
	n.mu.Lock()
	if l.fenced {
		n.mu.Unlock()
		return errDeposed
	}
	attachIdx := l.nextIdx - 1
	commit := l.commit
	lk := &followerLink{peer: p, sentIdx: attachIdx, notify: make(chan struct{}, 1)}
	l.links[peerID] = lk
	l.heard[peerID] = time.Now()
	n.mu.Unlock()
	defer func() {
		n.mu.Lock()
		if l.links[peerID] == lk {
			delete(l.links, peerID)
		}
		n.mu.Unlock()
	}()

	myPos := n.svc.Positions(nil)
	if !positionsEqual(theirPos, myPos) {
		for shard := range myPos {
			payload := n.svc.ShardSnapshotPayload(shard)
			w.Reset()
			appendSnap(&w, l.term, shard, payload)
			if err := p.Send(w.Bytes(), time.Now().Add(replIOTimeout)); err != nil {
				return err
			}
		}
	}
	w.Reset()
	appendSnapEnd(&w, l.term, attachIdx, commit, l.term)
	if err := p.SendNow(w.Bytes(), time.Now().Add(replIOTimeout)); err != nil {
		return err
	}

	recvDone := make(chan error, 1)
	go func() { recvDone <- n.recvAcks(l, peerID, p) }()
	sendErr := n.streamRecords(l, lk, p)
	p.Close()
	recvErr := <-recvDone
	if sendErr != nil {
		return sendErr
	}
	return recvErr
}

func positionsEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// streamRecords is the sender half of one stream session: drain the
// queue from the link's cursor, heartbeat when idle, and bail out when
// the link's cursor falls off the bounded queue (the next attach
// resyncs from a snapshot).
func (n *Node) streamRecords(l *leaderState, lk *followerLink, p *transport.Peer) error {
	type outRecord struct {
		idx     uint64
		shard   int
		payload []byte
	}
	var batch []outRecord
	lastSend := time.Now()
	for {
		n.mu.Lock()
		if l.fenced {
			n.mu.Unlock()
			return errDeposed
		}
		if lk.sentIdx+1 < l.baseIdx {
			n.mu.Unlock()
			return fmt.Errorf("follower lags the queue (sent %d, queue from %d); re-attaching",
				lk.sentIdx, l.baseIdx)
		}
		batch = batch[:0]
		for i := lk.sentIdx + 1 - l.baseIdx; i < uint64(len(l.queue)); i++ {
			rec := l.queue[i]
			batch = append(batch, outRecord{idx: l.baseIdx + i, shard: rec.shard, payload: rec.payload})
		}
		if len(batch) > 0 {
			lk.sentIdx = batch[len(batch)-1].idx
		}
		term, commit := l.term, l.commit
		n.mu.Unlock()

		if len(batch) == 0 {
			if time.Since(lastSend) >= n.hbInterval {
				var w wire.Writer
				appendHeartbeat(&w, term, commit)
				if err := p.SendNow(w.Bytes(), time.Now().Add(replIOTimeout)); err != nil {
					return err
				}
				lastSend = time.Now()
			}
			select {
			case <-lk.notify:
			case <-time.After(n.hbInterval):
			case <-l.stopc:
				return errDeposed
			case <-n.stop:
				return errDeposed
			}
			continue
		}
		var w wire.Writer
		for _, rec := range batch {
			w.Reset()
			appendAppend(&w, term, rec.idx, commit, rec.shard, rec.payload)
			if err := p.Send(w.Bytes(), time.Now().Add(replIOTimeout)); err != nil {
				return err
			}
		}
		if err := p.Flush(time.Now().Add(replIOTimeout)); err != nil {
			return err
		}
		lastSend = time.Now()
	}
}

// recvAcks is the receiver half of one stream session: cumulative acks
// advance the peer's match index and possibly the commit; a nack (or a
// higher term) condemns the session.
func (n *Node) recvAcks(l *leaderState, peerID int, p *transport.Peer) error {
	idle := 2 * n.cfg.ElectionTimeout
	for {
		body, err := p.Recv(time.Now().Add(idle))
		if err != nil {
			return err
		}
		if len(body) == 0 {
			return fmt.Errorf("empty ack frame")
		}
		switch body[0] {
		case kAck:
			term, idx, err := decodeAck(body)
			if err != nil {
				return err
			}
			if term > l.term {
				n.observeTerm(term)
				return errDeposed
			}
			if term < l.term {
				continue
			}
			n.mu.Lock()
			l.heard[peerID] = time.Now()
			if idx > l.match[peerID] {
				l.match[peerID] = idx
				l.advanceCommitLocked(n)
			}
			n.mu.Unlock()
		case kNack:
			term, err := decodeNack(body)
			if err != nil {
				return err
			}
			n.mu.Lock()
			l.heard[peerID] = time.Now()
			n.mu.Unlock()
			if term > l.term {
				n.observeTerm(term)
				return errDeposed
			}
			return fmt.Errorf("follower rejected the stream; re-attaching with a snapshot")
		default:
			return fmt.Errorf("unexpected ack frame kind %#x", body[0])
		}
	}
}
