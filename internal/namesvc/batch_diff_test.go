package namesvc

import (
	"math/rand"
	"reflect"
	"testing"
)

// acceptSink is a GrantNotifier with a fixed verdict, standing in for a
// connection that is alive (true) or vanished mid-epoch (false).
type acceptSink bool

// GrantNotify implements GrantNotifier.
func (s acceptSink) GrantNotify(Grant) bool { return bool(s) }

// TestBatchedSubmissionMatchesPerOp is the differential test pinning the
// batched front end to the per-op one: the same randomized multi-shard
// trace — bursts of releases and acquires (some from requesters that
// vanish mid-epoch and have their grants absorbed), mid-epoch cancels,
// epoch closes in random shard order — is driven through Service.Acquire /
// Service.Release one op at a time on one instance and through
// Service.AcquireBatch / Service.ReleaseBatch shard buckets on another.
// Everything observable must be byte-identical: request IDs, every epoch's
// accepted grants, the per-shard journals, the rolling digests, and the
// stats counters. This is the contract that lets the Server ingest
// pipelined bursts as shard buckets without changing the service's
// deterministic replay story.
func TestBatchedSubmissionMatchesPerOp(t *testing.T) {
	t.Parallel()
	const shards = 3
	for seed := int64(1); seed <= 6; seed++ {
		rnd := rand.New(rand.NewSource(seed))
		cfg := Config{Shards: shards, ShardCap: 16, Seed: uint64(seed), Journal: true, MaxBatch: 8}
		perOp, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		batched, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}

		type queuedReq struct {
			client uint64
			id     uint64 // identical on both instances, asserted below
		}
		var queued []queuedReq
		var held []Grant // live grants, from the per-op instance
		nextClient := uint64(0)

		// closeShard closes one epoch on both instances and checks the
		// accepted grants match; the model is updated from them.
		closeShard := func(shard int) {
			t.Helper()
			ga, err := perOp.CloseEpoch(shard)
			if err != nil {
				t.Fatalf("seed %d: per-op epoch: %v", seed, err)
			}
			ga = append([]Grant(nil), ga...)
			gb, err := batched.CloseEpoch(shard)
			if err != nil {
				t.Fatalf("seed %d: batched epoch: %v", seed, err)
			}
			if !reflect.DeepEqual(ga, append([]Grant(nil), gb...)) {
				t.Fatalf("seed %d shard %d: grants diverge:\nper-op  %v\nbatched %v", seed, shard, ga, gb)
			}
			for _, g := range ga {
				held = append(held, g)
				for i, q := range queued {
					if q.client == g.Client {
						queued = append(queued[:i], queued[i+1:]...)
						break
					}
				}
			}
			// Absorbed grants (vanished requesters) also left the queue;
			// they are not in ga, so prune any queued entry the service no
			// longer knows. Cancel of a granted/absorbed ID returns false
			// on both instances, which the cancel step tolerates.
		}

		for step := 0; step < 80; step++ {
			// One burst: releases first, then acquires — the submission
			// order the server's ingestion uses. The per-op instance sees
			// the ops one at a time in exactly the bucketed per-shard
			// order, which is the equivalence AcquireBatch promises.
			nRel := 0
			if len(held) > 0 {
				nRel = rnd.Intn(min(4, len(held)) + 1)
			}
			relByShard := make([][]ReleaseOp, shards)
			for i := 0; i < nRel; i++ {
				pick := rnd.Intn(len(held))
				g := held[pick]
				held = append(held[:pick], held[pick+1:]...)
				shard, err := perOp.ShardOfName(g.Name)
				if err != nil {
					t.Fatal(err)
				}
				relByShard[shard] = append(relByShard[shard], ReleaseOp{Client: g.Client, Name: g.Name})
			}
			nAcq := rnd.Intn(6)
			acqByShard := make([][]AcquireOp, shards)
			for i := 0; i < nAcq; i++ {
				nextClient++
				client := nextClient
				var notify GrantNotifier
				if rnd.Intn(5) == 0 {
					// This requester will vanish before its grant lands:
					// the epoch must absorb it as a crash on both paths.
					notify = acceptSink(false)
				}
				acqByShard[perOp.Shard(client)] = append(acqByShard[perOp.Shard(client)],
					AcquireOp{Client: client, Notify: notify})
			}

			// Per-op instance: one call per op, in bucket order.
			for shard := 0; shard < shards; shard++ {
				for _, op := range relByShard[shard] {
					if err := perOp.Release(op.Client, op.Name); err != nil {
						t.Fatalf("seed %d: per-op release of %d: %v", seed, op.Name, err)
					}
				}
			}
			idsA := make([]uint64, 0, nAcq)
			for shard := 0; shard < shards; shard++ {
				for _, op := range acqByShard[shard] {
					var notify func(Grant) bool
					if op.Notify != nil {
						sink := op.Notify
						notify = func(g Grant) bool { return sink.GrantNotify(g) }
					}
					id, err := perOp.Acquire(op.Client, notify)
					if err != nil {
						t.Fatalf("seed %d: per-op acquire: %v", seed, err)
					}
					idsA = append(idsA, id)
					queued = append(queued, queuedReq{client: op.Client, id: id})
				}
			}

			// Batched instance: one call per non-empty shard bucket.
			for shard := 0; shard < shards; shard++ {
				if len(relByShard[shard]) > 0 {
					errs, err := batched.ReleaseBatch(shard, relByShard[shard], nil)
					if err != nil {
						t.Fatalf("seed %d: release batch: %v", seed, err)
					}
					for i, e := range errs {
						if e != nil {
							t.Fatalf("seed %d: batched release of %d: %v",
								seed, relByShard[shard][i].Name, e)
						}
					}
				}
			}
			idsB := make([]uint64, 0, nAcq)
			for shard := 0; shard < shards; shard++ {
				if len(acqByShard[shard]) > 0 {
					ids, err := batched.AcquireBatch(shard, acqByShard[shard], nil)
					if err != nil {
						t.Fatalf("seed %d: acquire batch: %v", seed, err)
					}
					idsB = append(idsB, ids...)
				}
			}
			if !reflect.DeepEqual(idsA, idsB) {
				t.Fatalf("seed %d: request IDs diverge: per-op %v, batched %v", seed, idsA, idsB)
			}

			// Mid-epoch cancel: revoke the same still-queued request on
			// both instances. The verdicts must agree (false once granted
			// or absorbed — the model prunes lazily).
			if len(queued) > 0 && rnd.Intn(3) == 0 {
				pick := rnd.Intn(len(queued))
				q := queued[pick]
				queued = append(queued[:pick], queued[pick+1:]...)
				ca := perOp.Cancel(q.client, q.id)
				cb := batched.Cancel(q.client, q.id)
				if ca != cb {
					t.Fatalf("seed %d: cancel of req %d diverges: per-op %v, batched %v", seed, q.id, ca, cb)
				}
			}

			if rnd.Intn(2) == 0 {
				closeShard(rnd.Intn(shards))
			}
		}
		// Drain every shard until both instances are quiet.
		for shard := 0; shard < shards; shard++ {
			for perOp.EpochRunnable(shard) || batched.EpochRunnable(shard) {
				closeShard(shard)
			}
		}

		if da, db := perOp.Digest(), batched.Digest(); da != db {
			t.Fatalf("seed %d: digests diverge: per-op %x, batched %x", seed, da, db)
		}
		for shard := 0; shard < shards; shard++ {
			ja, jb := perOp.ShardJournal(shard), batched.ShardJournal(shard)
			if !reflect.DeepEqual(ja, jb) {
				t.Fatalf("seed %d shard %d: journals diverge:\nper-op  %v\nbatched %v", seed, shard, ja, jb)
			}
			if len(ja) == 0 {
				t.Fatalf("seed %d shard %d: journal empty — trace never touched it", seed, shard)
			}
		}
		if sa, sb := perOp.Stats(), batched.Stats(); !reflect.DeepEqual(sa, sb) {
			t.Fatalf("seed %d: stats diverge:\nper-op  %+v\nbatched %+v", seed, sa, sb)
		}
	}
}

// TestAcquireBatchValidation pins the batch entry points' error handling:
// a bad op rejects the whole acquire batch without enqueueing anything,
// and release outcomes are per-op.
func TestAcquireBatchValidation(t *testing.T) {
	t.Parallel()
	svc, err := New(Config{Shards: 2, ShardCap: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Find a client routed to shard 1.
	other := uint64(1)
	for svc.Shard(other) != 1 {
		other++
	}
	if _, err := svc.AcquireBatch(0, []AcquireOp{{Client: 0}}, nil); err == nil {
		t.Fatal("zero client accepted")
	}
	if _, err := svc.AcquireBatch(0, []AcquireOp{{Client: other}}, nil); err == nil {
		t.Fatal("foreign-shard client accepted")
	}
	if _, err := svc.AcquireBatch(5, nil, nil); err == nil {
		t.Fatal("out-of-range shard accepted")
	}
	if st := svc.Stats(); st.Pending != 0 || st.Acquires != 0 {
		t.Fatalf("failed batches enqueued requests: %+v", st)
	}

	if _, err := svc.ReleaseBatch(9, nil, nil); err == nil {
		t.Fatal("out-of-range shard accepted")
	}
	// One valid release among invalid ones: outcomes are per-op.
	ids, err := svc.AcquireBatch(1, []AcquireOp{{Client: other}}, nil)
	if err != nil || len(ids) != 1 {
		t.Fatalf("acquire batch: %v (ids %v)", err, ids)
	}
	grants, err := svc.CloseEpoch(1)
	if err != nil || len(grants) != 1 {
		t.Fatalf("epoch: %v (grants %v)", err, grants)
	}
	errs, err := svc.ReleaseBatch(1, []ReleaseOp{
		{Client: other, Name: grants[0].Name}, // valid
		{Client: other, Name: 1},              // shard 0's name
		{Client: 12345, Name: grants[0].Name}, // released name, wrong holder anyway
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(errs) != 3 || errs[0] != nil || errs[1] == nil || errs[2] == nil {
		t.Fatalf("release outcomes = %v, want [nil, err, err]", errs)
	}
}
