// Package durable is the single-node persistence layer beneath the name
// service: a per-shard write-ahead log plus periodic snapshots, built so
// that a crash at any byte of any write recovers to a state the service
// actually passed through.
//
// The package splits into two halves:
//
//   - Sink is the storage boundary: a flat directory of files with create,
//     append, fsync, list, read, and remove. DirSink backs it with the OS;
//     MemSink backs it with memory for hermetic tests; and CrashBudget
//     wraps any Sink to deterministically kill the run at an exact write
//     offset, which is what the crash-point differential tests iterate
//     over.
//
//   - Store is the log discipline over a Sink: CRC-framed, length-prefixed
//     records (the same framing conventions as internal/wire: a length
//     prefix up front, every failure mode mapped to a clean error) appended
//     to the current WAL segment, and checkpoints that seal a snapshot of
//     the application state, rotate to a fresh segment, and only then prune
//     the artifacts the snapshot supersedes. Open replays whatever a crash
//     left behind: the newest snapshot that validates, then the WAL tail,
//     with a torn or corrupt tail truncated rather than trusted.
//
// The Store knows nothing about ledgers or names; record and snapshot
// payloads are opaque bytes. The namesvc layer encodes ledger events and
// sealed shard state into them and verifies its own digests on recovery.
// That separation keeps the crash machinery reusable for the planned epoch
// replication across coordinators: a replica is, to first order, a Store
// whose records arrive over the network instead of from the local epoch
// loop.
package durable

import "errors"

// ErrCrashed is returned by every operation on a sink whose CrashBudget is
// exhausted: the simulated machine is dead, and nothing written after the
// crash point reaches storage.
var ErrCrashed = errors.New("durable: injected crash")

// ErrCorrupt is returned by Open when the artifacts on disk cannot be
// reconciled into any state the log ever passed through — a record gap, a
// mid-file CRC failure with valid data after it, or a snapshot newer than
// the surviving WAL. A torn tail is NOT corruption; it is truncated
// silently (reported via Recovered.Torn) because a crash mid-append is
// exactly what the log exists to survive.
var ErrCorrupt = errors.New("durable: corrupt log")

// File is one append-only file under a Sink.
type File interface {
	// Write appends p. A short write with a nil error never happens; on
	// error the prefix that reports written may or may not be durable.
	Write(p []byte) (int, error)
	// Sync forces everything written so far to stable storage.
	Sync() error
	// Close releases the handle without syncing.
	Close() error
}

// Sink is a flat directory of files: the storage boundary beneath a Store.
// Implementations need not be safe for concurrent use; each shard's Store
// owns its sink exclusively.
type Sink interface {
	// Create creates (or truncates) a file open for appending.
	Create(name string) (File, error)
	// ReadAll returns a file's full contents.
	ReadAll(name string) ([]byte, error)
	// List returns the names of every file, in any order.
	List() ([]string, error)
	// Remove deletes a file. Removing a missing file is not an error, so
	// a prune interrupted by a crash can simply run again.
	Remove(name string) error
	// Sync forces the directory's own metadata (file creation, removal)
	// to stable storage.
	Sync() error
}
