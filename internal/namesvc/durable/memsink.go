package durable

import (
	"fmt"
	"sort"
)

// MemSink is an in-memory Sink for hermetic tests: same contract as
// DirSink, no filesystem. Data written through a File is visible to
// ReadAll immediately (the torn-write crash model is supplied by
// CrashBudget, not by buffering here).
type MemSink struct {
	files map[string][]byte
}

// NewMemSink returns an empty in-memory sink.
func NewMemSink() *MemSink {
	return &MemSink{files: make(map[string][]byte)}
}

// Clone returns an independent deep copy of the sink's current contents —
// a disk image, for recovery tests that open the same remains twice.
func (s *MemSink) Clone() *MemSink {
	c := NewMemSink()
	for name, b := range s.files {
		c.files[name] = append([]byte(nil), b...)
	}
	return c
}

// memFile appends into its sink's map entry.
type memFile struct {
	s    *MemSink
	name string
}

func (f *memFile) Write(p []byte) (int, error) {
	f.s.files[f.name] = append(f.s.files[f.name], p...)
	return len(p), nil
}

func (f *memFile) Sync() error  { return nil }
func (f *memFile) Close() error { return nil }

// Create implements Sink.
func (s *MemSink) Create(name string) (File, error) {
	s.files[name] = nil
	return &memFile{s: s, name: name}, nil
}

// ReadAll implements Sink.
func (s *MemSink) ReadAll(name string) ([]byte, error) {
	b, ok := s.files[name]
	if !ok {
		return nil, fmt.Errorf("durable: %s: file does not exist", name)
	}
	return append([]byte(nil), b...), nil
}

// List implements Sink.
func (s *MemSink) List() ([]string, error) {
	names := make([]string, 0, len(s.files))
	for name := range s.files {
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// Remove implements Sink; a missing file is not an error.
func (s *MemSink) Remove(name string) error {
	delete(s.files, name)
	return nil
}

// Sync implements Sink.
func (s *MemSink) Sync() error { return nil }
