package durable

// CrashBudget deterministically kills a run of sink writes at an exact
// offset, simulating power loss with torn writes: the machine persists a
// fixed number of "units" — one unit per byte appended to any file, one
// unit per metadata operation (Create, Remove) — and then dies. The write
// that exhausts the budget persists only the prefix that fit; every
// subsequent mutation on every wrapped sink fails with ErrCrashed.
//
// One budget can wrap several sinks (one per shard), because a machine
// crash kills all of them at the same instant. Reads (ReadAll, List) keep
// working after the crash: recovery inspects the disk the dead machine
// left behind.
//
// Units consumed are counted even when the budget is unlimited, so a test
// can measure a full run once and then iterate crash points 0..Units().
type CrashBudget struct {
	limit   int64 // < 0 = unlimited
	used    int64
	crashed bool
}

// NewCrashBudget returns a budget that kills after limit units; a negative
// limit never kills (but still counts).
func NewCrashBudget(limit int64) *CrashBudget {
	return &CrashBudget{limit: limit}
}

// Units returns the units consumed so far.
func (b *CrashBudget) Units() int64 { return b.used }

// Crashed reports whether the budget has been exhausted.
func (b *CrashBudget) Crashed() bool { return b.crashed }

// take consumes up to n units and returns how many were granted; granting
// fewer than n (including zero) marks the budget crashed.
func (b *CrashBudget) take(n int) int {
	if b.crashed {
		return 0
	}
	if b.limit >= 0 && b.used+int64(n) > b.limit {
		granted := int(b.limit - b.used)
		b.used = b.limit
		b.crashed = true
		return granted
	}
	b.used += int64(n)
	return n
}

// Wrap returns a Sink view of inner governed by this budget.
func (b *CrashBudget) Wrap(inner Sink) Sink {
	return &crashSink{b: b, inner: inner}
}

// crashSink applies a CrashBudget to one wrapped sink.
type crashSink struct {
	b     *CrashBudget
	inner Sink
}

func (s *crashSink) Create(name string) (File, error) {
	if s.b.take(1) < 1 {
		return nil, ErrCrashed
	}
	f, err := s.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &crashFile{b: s.b, inner: f}, nil
}

func (s *crashSink) ReadAll(name string) ([]byte, error) { return s.inner.ReadAll(name) }
func (s *crashSink) List() ([]string, error)             { return s.inner.List() }

func (s *crashSink) Remove(name string) error {
	if s.b.take(1) < 1 {
		return ErrCrashed
	}
	return s.inner.Remove(name)
}

func (s *crashSink) Sync() error {
	if s.b.crashed {
		return ErrCrashed
	}
	return s.inner.Sync()
}

// crashFile tears the write that exhausts the budget: the granted prefix
// reaches the inner file, the rest never happened.
type crashFile struct {
	b     *CrashBudget
	inner File
}

func (f *crashFile) Write(p []byte) (int, error) {
	granted := f.b.take(len(p))
	if granted > 0 {
		if n, err := f.inner.Write(p[:granted]); err != nil {
			return n, err
		}
	}
	if granted < len(p) {
		return granted, ErrCrashed
	}
	return granted, nil
}

func (f *crashFile) Sync() error {
	if f.b.crashed {
		return ErrCrashed
	}
	return f.inner.Sync()
}

func (f *crashFile) Close() error { return f.inner.Close() }
