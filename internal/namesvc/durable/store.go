package durable

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// File layout under one Sink (one shard):
//
//	wal-<start>.log    WAL segment holding records start+1, start+2, …
//	snap-<seq>.snap    snapshot sealing the state after record seq
//
// Both numbers are 16-digit lower-case hex, so lexical and numeric order
// agree. A checkpoint at seq S writes snap-<S>.snap, fsyncs it, fsyncs the
// directory, opens wal-<S>.log as the new segment, and only then prunes
// every artifact the snapshot supersedes — so at every instant, some
// (snapshot, segment-suffix) pair on disk reconstructs the state, whichever
// byte the machine died on.

// Options parameterizes a Store.
type Options struct {
	// SyncEachAppend fsyncs the segment after every appended record — the
	// per-epoch fsync policy. Off, the caller either syncs on an interval
	// (Store.Sync) or accepts the OS flush cadence.
	SyncEachAppend bool
	// MaxPayload bounds one record or snapshot payload; larger appends are
	// rejected and larger length prefixes found during recovery are
	// treated as tail damage. Zero means 1<<26 (64 MiB).
	MaxPayload int
}

func (o Options) normalized() Options {
	if o.MaxPayload <= 0 {
		o.MaxPayload = 1 << 26
	}
	return o
}

// Record is one recovered WAL record.
type Record struct {
	Seq     uint64
	Payload []byte
}

// Recovered is what Open found on disk: the newest snapshot that
// validates, and the WAL records after it, in sequence order. The caller
// rebuilds its state by loading Snapshot and applying Records; Seq is the
// sequence number the rebuilt state corresponds to.
type Recovered struct {
	// SnapSeq is the sequence the snapshot seals; 0 with a nil Snapshot
	// means recovery started from an empty state.
	SnapSeq  uint64
	Snapshot []byte // nil if no valid snapshot exists
	// Records is the replayed WAL tail: seqs SnapSeq+1 … Seq, contiguous.
	Records []Record
	// Seq is the state's sequence number after replay: SnapSeq + len(Records).
	Seq uint64
	// Torn reports that a torn or corrupt record tail was found and
	// truncated — the expected residue of a crash mid-append.
	Torn bool
}

// Store is one shard's write-ahead log and snapshot chain over a Sink.
// It is not safe for concurrent use; the owning shard serializes access.
type Store struct {
	sink Sink
	opts Options
	seq  uint64 // last appended (or recovered) record sequence
	seg  File   // current WAL segment
	buf  []byte // framing scratch, reused per append
	err  error  // sticky: after any write failure the stream position is untrusted
}

const (
	segPrefix  = "wal-"
	segSuffix  = ".log"
	snapPrefix = "snap-"
	snapSuffix = ".snap"
)

func segName(start uint64) string { return fmt.Sprintf("%s%016x%s", segPrefix, start, segSuffix) }
func snapName(seq uint64) string  { return fmt.Sprintf("%s%016x%s", snapPrefix, seq, snapSuffix) }
func parseName(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	hex := name[len(prefix) : len(name)-len(suffix)]
	if len(hex) != 16 {
		return 0, false
	}
	v, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// Open scans the sink, reconstructs the recoverable state (newest valid
// snapshot plus the contiguous WAL records after it, truncating a torn
// tail), and opens a fresh segment at the recovered sequence so Append can
// continue. Unknown files are ignored; artifacts that cannot be reconciled
// (a record gap, valid records after a tear) yield ErrCorrupt.
func Open(sink Sink, opts Options) (*Store, *Recovered, error) {
	opts = opts.normalized()
	names, err := sink.List()
	if err != nil {
		return nil, nil, fmt.Errorf("durable: list: %w", err)
	}
	var snaps []uint64 // snapshot seqs, any order
	var segs []uint64  // segment starts
	for _, name := range names {
		if v, ok := parseName(name, snapPrefix, snapSuffix); ok {
			snaps = append(snaps, v)
		} else if v, ok := parseName(name, segPrefix, segSuffix); ok {
			segs = append(segs, v)
		}
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] > snaps[j] }) // newest first
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })    // oldest first

	rec := &Recovered{}
	// Newest snapshot that validates wins; a torn or corrupt snapshot is
	// skipped (its WAL, or an older snapshot's, still covers the state).
	for _, sseq := range snaps {
		data, err := sink.ReadAll(snapName(sseq))
		if err != nil {
			continue
		}
		seq, payload, n, err := decodeRecord(data, opts.MaxPayload)
		if err != nil || n != len(data) || seq != sseq {
			rec.Torn = true // a half-written checkpoint left behind
			continue
		}
		rec.SnapSeq, rec.Snapshot = sseq, payload
		break
	}

	cur := rec.SnapSeq
	torn := false
	for _, start := range segs {
		data, err := sink.ReadAll(segName(start))
		if err != nil {
			return nil, nil, fmt.Errorf("durable: read %s: %w", segName(start), err)
		}
		for len(data) > 0 {
			seq, payload, n, err := decodeRecord(data, opts.MaxPayload)
			if err != nil {
				// Tail damage: legal only as the final thing on disk. Any
				// valid record beyond the current sequence found after
				// this point turns it into ErrCorrupt below.
				torn = true
				break
			}
			data = data[n:]
			switch {
			case seq <= cur:
				// Superseded by the snapshot (or a duplicate segment
				// prefix): already part of the recovered state.
			case seq == cur+1 && !torn:
				rec.Records = append(rec.Records, Record{Seq: seq, Payload: payload})
				cur = seq
			case torn:
				return nil, nil, fmt.Errorf("%w: record %d follows a torn tail at %d", ErrCorrupt, seq, cur)
			default:
				return nil, nil, fmt.Errorf("%w: record gap %d -> %d", ErrCorrupt, cur, seq)
			}
		}
	}
	rec.Seq = cur
	rec.Torn = rec.Torn || torn

	s := &Store{sink: sink, opts: opts, seq: cur}
	// Open a fresh segment at the recovered sequence. If a file of that
	// name exists its contents are dead bytes (empty, fully torn, or
	// superseded — otherwise recovery would have advanced past cur), so
	// truncating is exactly the "recovery truncates torn tails" step.
	seg, err := sink.Create(segName(cur))
	if err != nil {
		return nil, nil, fmt.Errorf("durable: open segment: %w", err)
	}
	if err := sink.Sync(); err != nil {
		seg.Close()
		return nil, nil, fmt.Errorf("durable: sync dir: %w", err)
	}
	s.seg = seg
	return s, rec, nil
}

// Seq returns the sequence number of the last appended record.
func (s *Store) Seq() uint64 { return s.seq }

// Err returns the sticky error, if any: after a failed write the stream
// position is untrusted and every further mutation fails with it.
func (s *Store) Err() error { return s.err }

// Append writes one record with the next sequence number, fsyncing when
// the store was opened with SyncEachAppend. On error the record must be
// assumed lost and the store is poisoned (Err): a torn append leaves bytes
// the next append must not follow.
func (s *Store) Append(payload []byte) (uint64, error) {
	if s.err != nil {
		return s.seq, s.err
	}
	if len(payload) > s.opts.MaxPayload {
		return s.seq, fmt.Errorf("durable: record payload %d exceeds limit %d", len(payload), s.opts.MaxPayload)
	}
	s.buf = appendRecord(s.buf[:0], s.seq+1, payload)
	if _, err := s.seg.Write(s.buf); err != nil {
		s.err = err
		return s.seq, err
	}
	if s.opts.SyncEachAppend {
		if err := s.seg.Sync(); err != nil {
			s.err = err
			return s.seq, err
		}
	}
	s.seq++
	return s.seq, nil
}

// Sync fsyncs the current segment — the interval fsync policy's clock tick.
func (s *Store) Sync() error {
	if s.err != nil {
		return s.err
	}
	if err := s.seg.Sync(); err != nil {
		s.err = err
		return err
	}
	return nil
}

// Checkpoint seals the caller's snapshot of the state after the last
// appended record, rotates to a fresh WAL segment, and prunes everything
// the snapshot supersedes. The snapshot is fsynced (and the directory with
// it) before any old artifact is removed, so a crash at any point leaves
// either the old chain, the new chain, or both — never neither
// (TestCheckpointNeverRemovesBeforeSnapshotSync pins the ordering).
func (s *Store) Checkpoint(snapshot []byte) error {
	if s.err != nil {
		return s.err
	}
	if len(snapshot) > s.opts.MaxPayload {
		return fmt.Errorf("durable: snapshot payload %d exceeds limit %d", len(snapshot), s.opts.MaxPayload)
	}
	seq := s.seq
	fail := func(err error) error {
		s.err = err
		return err
	}
	snap, err := s.sink.Create(snapName(seq))
	if err != nil {
		return fail(fmt.Errorf("durable: create snapshot: %w", err))
	}
	s.buf = appendRecord(s.buf[:0], seq, snapshot)
	if _, err := snap.Write(s.buf); err != nil {
		snap.Close()
		return fail(fmt.Errorf("durable: write snapshot: %w", err))
	}
	if err := snap.Sync(); err != nil {
		snap.Close()
		return fail(fmt.Errorf("durable: sync snapshot: %w", err))
	}
	if err := snap.Close(); err != nil {
		return fail(fmt.Errorf("durable: close snapshot: %w", err))
	}
	if err := s.sink.Sync(); err != nil {
		return fail(fmt.Errorf("durable: sync dir: %w", err))
	}
	// The new chain is durable; rotate, then prune the superseded one.
	if err := s.seg.Close(); err != nil {
		return fail(fmt.Errorf("durable: close segment: %w", err))
	}
	seg, err := s.sink.Create(segName(seq))
	if err != nil {
		return fail(fmt.Errorf("durable: rotate segment: %w", err))
	}
	s.seg = seg
	names, err := s.sink.List()
	if err != nil {
		return fail(fmt.Errorf("durable: list for prune: %w", err))
	}
	for _, name := range names {
		if v, ok := parseName(name, segPrefix, segSuffix); ok && v < seq {
			if err := s.sink.Remove(name); err != nil {
				return fail(fmt.Errorf("durable: prune %s: %w", name, err))
			}
		} else if v, ok := parseName(name, snapPrefix, snapSuffix); ok && v < seq {
			if err := s.sink.Remove(name); err != nil {
				return fail(fmt.Errorf("durable: prune %s: %w", name, err))
			}
		}
	}
	if err := s.sink.Sync(); err != nil {
		return fail(fmt.Errorf("durable: sync dir: %w", err))
	}
	return nil
}

// Close releases the current segment handle without syncing (callers that
// need durability checkpoint or Sync first).
func (s *Store) Close() error {
	if s.seg == nil {
		return nil
	}
	err := s.seg.Close()
	s.seg = nil
	if s.err == nil && err != nil {
		s.err = errors.New("durable: store closed")
		return err
	}
	if s.err == nil {
		s.err = errors.New("durable: store closed")
	}
	return nil
}
