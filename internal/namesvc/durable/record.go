package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Record framing: every WAL record and every snapshot is stored as
//
//	[4-byte big-endian length N] [8-byte big-endian seq] [payload] [4-byte big-endian CRC]
//
// where N = 8 + len(payload) and the CRC (CRC-32C, Castagnoli) covers the
// N bytes between the length prefix and the checksum. The length prefix
// follows internal/wire's framing conventions (and its ErrOversized
// discipline: a hostile or garbage prefix is rejected before any body byte
// is trusted); the trailing CRC is what lets recovery tell a torn append
// from a complete one without trusting anything but arithmetic.
//
// A record decodes atomically or not at all: decodeRecord either returns
// the full (seq, payload) with the exact byte count consumed, or an error
// and nothing — there is no partial application path for a truncated,
// corrupt, or oversized record (FuzzWALRecordDecode pins this).

const (
	recordHeaderLen  = 4 + 8 // length prefix + seq
	recordTrailerLen = 4     // CRC-32C
	recordSeqLen     = 8
)

// crcTable is the Castagnoli table, hardware-accelerated on amd64/arm64.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// errShortRecord reports a record cut off by the end of the data — the
// torn-tail case recovery truncates.
var errShortRecord = errors.New("durable: record cut short")

// errBadCRC reports a record whose checksum does not match its bytes.
var errBadCRC = errors.New("durable: record CRC mismatch")

// errOversizedRecord reports a length prefix above the caller's limit.
var errOversizedRecord = errors.New("durable: record length exceeds limit")

// appendRecord appends one framed record to dst and returns the extended
// slice (the AppendFrame pattern: contiguous frames, one Write).
func appendRecord(dst []byte, seq uint64, payload []byte) []byte {
	var hdr [recordHeaderLen]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(recordSeqLen+len(payload)))
	binary.BigEndian.PutUint64(hdr[4:], seq)
	dst = append(dst, hdr[:]...)
	dst = append(dst, payload...)
	crc := crc32.Update(0, crcTable, dst[len(dst)-recordSeqLen-len(payload):])
	var tr [recordTrailerLen]byte
	binary.BigEndian.PutUint32(tr[:], crc)
	return append(dst, tr[:]...)
}

// recordSize returns the framed size of a payload.
func recordSize(payload []byte) int {
	return recordHeaderLen + len(payload) + recordTrailerLen
}

// decodeRecord decodes the record at the front of data. On success it
// returns the sequence number, the payload (aliasing data), and the total
// bytes consumed. On failure nothing is consumed: errShortRecord means
// data ends mid-record (a torn append), errOversizedRecord means the
// length prefix exceeds max (garbage or hostile bytes — the rest of the
// stream cannot be trusted), and errBadCRC means the record's bytes do not
// match their checksum.
func decodeRecord(data []byte, max int) (seq uint64, payload []byte, n int, err error) {
	if len(data) < 4 {
		return 0, nil, 0, errShortRecord
	}
	length := binary.BigEndian.Uint32(data)
	// Compare before narrowing: a garbage prefix >= 2^31 must not wrap.
	if uint64(length) < recordSeqLen || (max >= 0 && uint64(length) > uint64(max)+recordSeqLen) {
		return 0, nil, 0, fmt.Errorf("%w: %d", errOversizedRecord, length)
	}
	total := 4 + int(length) + recordTrailerLen
	if len(data) < total {
		return 0, nil, 0, errShortRecord
	}
	body := data[4 : 4+length]
	crc := binary.BigEndian.Uint32(data[4+length:])
	if crc32.Update(0, crcTable, body) != crc {
		return 0, nil, 0, errBadCRC
	}
	return binary.BigEndian.Uint64(body), body[recordSeqLen:], total, nil
}
